package gluenail

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential tests: the engine's answers are checked against plain Go
// reference implementations over random inputs, across every optimization
// configuration — the optimizations of §9/§10 must never change results.

// refClosure computes the transitive closure of edges from a source.
func refClosure(edges [][2]int, src int) map[int]bool {
	adj := map[int][]int{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	seen := map[int]bool{}
	stack := append([]int(nil), adj[src]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return seen
}

// allConfigs returns every optimization and storage-engine configuration
// the differential suites sweep; all of them must produce byte-identical
// answers. It is a function because the disk-engine and spill
// configurations need per-test scratch directories (cleaned up by the
// testing package; the stores themselves are closed by the sweeps).
func allConfigs(t *testing.T) map[string][]Option {
	t.Helper()
	return map[string][]Option{
		"default":        nil,
		"materialized":   {WithMaterializedExecution()},
		"no-dedup":       {WithoutDupElimination()},
		"no-reorder":     {WithoutReordering()},
		"greedy-order":   {WithGreedyOrdering()},
		"no-magic":       {WithoutMagicSets()},
		"naive":          {WithNaiveEvaluation()},
		"no-narrow":      {WithoutDispatchNarrowing()},
		"layered":        {WithLayeredBackend()},
		"string-keys":    {WithStringKeyKernels()},
		"scalar-kernels": {WithBatchKernels(false)},
		"no-plan-cache":  {WithPlanCache(false)},
		// Storage-engine sweep: EDB on the disk engine, and scratch tables
		// spilling to disk runs past a deliberately tiny in-memory budget —
		// results must not depend on where rows live.
		"disk-store": {WithBackend("disk")},
		"disk-raw":   {WithBackend("disk"), WithBlockCompression(false), WithBlockCache(4)},
		"spill":      {WithSpill(t.TempDir(), 16)},
	}
}

func TestQuickClosureMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 2 + rng.Intn(10)
		nEdges := rng.Intn(25)
		edges := make([][2]int, nEdges)
		rows := make([][]any, nEdges)
		for i := range edges {
			a, b := rng.Intn(nNodes), rng.Intn(nNodes)
			edges[i] = [2]int{a, b}
			rows[i] = []any{a, b}
		}
		src := rng.Intn(nNodes)
		want := refClosure(edges, src)

		sys := New()
		if err := sys.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`); err != nil {
			t.Fatal(err)
		}
		if nEdges > 0 {
			if err := sys.Assert("edge", rows...); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sys.Query(fmt.Sprintf("tc(%d, X)", src))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(want) {
			t.Logf("seed %d: got %d rows, want %d", seed, len(res.Rows), len(want))
			return false
		}
		for _, r := range res.Rows {
			if !want[int(r[0].Int())] {
				t.Logf("seed %d: unexpected %v", seed, r[0])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickAllConfigsAgreeOnRandomGraphs(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 2 + rng.Intn(8)
		nEdges := rng.Intn(20)
		rows := make([][]any, nEdges)
		for i := range rows {
			rows[i] = []any{rng.Intn(nNodes), rng.Intn(nNodes)}
		}
		src := rng.Intn(nNodes)
		query := fmt.Sprintf("tc(%d, X)", src)
		var ref []int64
		for name, opts := range allConfigs(t) {
			sys := New(opts...)
			if err := sys.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`); err != nil {
				t.Fatal(err)
			}
			if nEdges > 0 {
				if err := sys.Assert("edge", rows...); err != nil {
					t.Fatal(err)
				}
			}
			res, err := sys.Query(query)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := make([]int64, len(res.Rows))
			for i, r := range res.Rows {
				got[i] = r[0].Int()
			}
			sys.Close()
			if ref == nil {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				t.Logf("seed %d %s: %v vs %v", seed, name, got, ref)
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Logf("seed %d %s: %v vs %v", seed, name, got, ref)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// refGroupAgg computes per-group min/max/sum/count for the reference.
type refStats struct {
	min, max, sum, count int64
}

func TestQuickAggregatesMatchReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		rows := make([][]any, n)
		set := map[[2]int64]bool{} // relations have set semantics
		for i := range rows {
			g := int64(rng.Intn(4))
			v := int64(rng.Intn(100) - 50)
			rows[i] = []any{g, v}
			set[[2]int64{g, v}] = true
		}
		ref := map[int64]*refStats{}
		for k := range set {
			g, v := k[0], k[1]
			s := ref[g]
			if s == nil {
				ref[g] = &refStats{min: v, max: v, sum: v, count: 1}
			} else {
				if v < s.min {
					s.min = v
				}
				if v > s.max {
					s.max = v
				}
				s.sum += v
				s.count++
			}
		}
		sys := New()
		if err := sys.Load(`
edb obs(G, V);
stats(G, Mn, Mx, S, C) :-
  obs(G, V) & group_by(G) &
  Mn = min(V) & Mx = max(V) & S = sum(V) & C = count(V).
`); err != nil {
			t.Fatal(err)
		}
		if err := sys.Assert("obs", rows...); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Query("stats(G, Mn, Mx, S, C)")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(ref) {
			t.Logf("seed %d: %d groups, want %d", seed, len(res.Rows), len(ref))
			return false
		}
		for _, r := range res.Rows {
			s := ref[r[0].Int()]
			if s == nil || r[1].Int() != s.min || r[2].Int() != s.max ||
				r[3].Int() != s.sum || r[4].Int() != s.count {
				t.Logf("seed %d: group %v got (%v,%v,%v,%v) want %+v",
					seed, r[0], r[1], r[2], r[3], r[4], s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nA, nB := rng.Intn(15), rng.Intn(15)
		aRows := make([][]any, nA)
		bRows := make([][]any, nB)
		aSet := map[[2]int64]bool{}
		bSet := map[[2]int64]bool{}
		for i := range aRows {
			x, y := int64(rng.Intn(5)), int64(rng.Intn(5))
			aRows[i] = []any{x, y}
			aSet[[2]int64{x, y}] = true
		}
		for i := range bRows {
			x, y := int64(rng.Intn(5)), int64(rng.Intn(5))
			bRows[i] = []any{x, y}
			bSet[[2]int64{x, y}] = true
		}
		want := map[[2]int64]bool{}
		for a := range aSet {
			for b := range bSet {
				if a[1] == b[0] {
					want[[2]int64{a[0], b[1]}] = true
				}
			}
		}
		sys := New()
		sys.Load(`
edb a(X,Y), b(X,Y);
j(X,Z) :- a(X,Y) & b(Y,Z).
`)
		if nA > 0 {
			sys.Assert("a", aRows...)
		}
		if nB > 0 {
			sys.Assert("b", bRows...)
		}
		res, err := sys.Query("j(X, Z)")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(want) {
			return false
		}
		for _, r := range res.Rows {
			if !want[[2]int64{r[0].Int(), r[1].Int()}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
