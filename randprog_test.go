package gluenail

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Differential testing over randomly generated stratified Datalog
// programs: semi-naive, naive, magic, no-magic, and every executor
// configuration must agree on every query. This exercises the NAIL!
// compiler far beyond the hand-written programs — random recursion
// shapes, negation at stratum boundaries, and random binding patterns.

// genProgram builds a random stratified program over binary predicates
// d0..d(n-1) on top of base relations e0, e1. Predicates may recurse on
// themselves; negation only references strictly lower predicates.
func genProgram(rng *rand.Rand, nDerived int) string {
	var sb strings.Builder
	sb.WriteString("edb e0(X,Y), e1(X,Y);\n")
	vars := []string{"X", "Y", "Z", "W"}
	for d := 0; d < nDerived; d++ {
		nRules := 1 + rng.Intn(2)
		if d == 0 {
			nRules = 1 + rng.Intn(2)
		}
		recursive := rng.Intn(2) == 0
		for r := 0; r < nRules; r++ {
			// Body: 2-3 positive atoms over base/lower/self preds.
			nAtoms := 2 + rng.Intn(2)
			var body []string
			bound := map[string]bool{}
			for a := 0; a < nAtoms; a++ {
				var pred string
				switch {
				case a == 0 || !recursive:
					// First atom is always a base relation, so recursion
					// has an exit and stays finite.
					pred = fmt.Sprintf("e%d", rng.Intn(2))
				case rng.Intn(3) == 0 && r > 0:
					pred = fmt.Sprintf("d%d", d) // self-recursion
				case d > 0:
					pred = fmt.Sprintf("d%d", rng.Intn(d))
				default:
					pred = fmt.Sprintf("e%d", rng.Intn(2))
				}
				v1 := vars[rng.Intn(len(vars))]
				v2 := vars[rng.Intn(len(vars))]
				body = append(body, fmt.Sprintf("%s(%s,%s)", pred, v1, v2))
				bound[v1], bound[v2] = true, true
			}
			// Optional stratified negation of a lower predicate with
			// already-bound arguments.
			if d > 0 && rng.Intn(3) == 0 {
				var bv []string
				for v := range bound {
					bv = append(bv, v)
				}
				if len(bv) >= 2 {
					body = append(body, fmt.Sprintf("!d%d(%s,%s)", rng.Intn(d), bv[0], bv[1]))
				}
			}
			// Head vars drawn from the bound set.
			var bv []string
			for _, v := range vars {
				if bound[v] {
					bv = append(bv, v)
				}
			}
			h1 := bv[rng.Intn(len(bv))]
			h2 := bv[rng.Intn(len(bv))]
			fmt.Fprintf(&sb, "d%d(%s,%s) :- %s.\n", d, h1, h2, strings.Join(body, " & "))
		}
	}
	return sb.String()
}

func genFacts(rng *rand.Rand, nNodes, nFacts int) (e0, e1 [][]any) {
	for i := 0; i < nFacts; i++ {
		e0 = append(e0, []any{rng.Intn(nNodes), rng.Intn(nNodes)})
		e1 = append(e1, []any{rng.Intn(nNodes), rng.Intn(nNodes)})
	}
	return
}

func rowsKey(res *Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		for _, v := range row {
			sb.WriteString(v.String())
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

func TestQuickRandomProgramsAllConfigsAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDerived := 1 + rng.Intn(3)
		program := genProgram(rng, nDerived)
		e0, e1 := genFacts(rng, 5, 6+rng.Intn(8))
		target := fmt.Sprintf("d%d", nDerived-1)
		queries := []string{
			fmt.Sprintf("%s(X, Y)", target),
			fmt.Sprintf("%s(%d, Y)", target, rng.Intn(5)),
			fmt.Sprintf("%s(X, %d)", target, rng.Intn(5)),
		}
		var ref []string
		for name, opts := range allConfigs(t) {
			sys := New(opts...)
			if err := sys.Load(program); err != nil {
				t.Fatalf("seed %d: generated program invalid: %v\n%s", seed, err, program)
			}
			sys.Assert("e0", e0...)
			sys.Assert("e1", e1...)
			var got []string
			for _, q := range queries {
				res, err := sys.Query(q)
				if err != nil {
					t.Fatalf("seed %d (%s): query %s: %v\n%s", seed, name, q, err, program)
				}
				got = append(got, rowsKey(res))
			}
			sys.Close()
			if ref == nil {
				ref = got
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Logf("seed %d: config %s disagrees on %s\nprogram:\n%s\ngot:  %s\nwant: %s",
						seed, name, queries[i], program, got[i], ref[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRandomProgramsMatchNaiveReference evaluates the generated
// program with a plain Go fixpoint interpreter and checks the engine's
// all-free answers match exactly.
func TestQuickRandomProgramsMatchNaiveReference(t *testing.T) {
	type atom struct {
		pred   string
		neg    bool
		v1, v2 string
	}
	type rule struct {
		h1, h2 string
		body   []atom
	}
	parseProgram := func(program string) map[string][]rule {
		rules := map[string][]rule{}
		for _, line := range strings.Split(program, "\n") {
			line = strings.TrimSuffix(strings.TrimSpace(line), ".")
			if !strings.Contains(line, ":-") {
				continue
			}
			headBody := strings.SplitN(line, ":-", 2)
			head := strings.TrimSpace(headBody[0])
			name := head[:strings.Index(head, "(")]
			args := strings.Split(head[strings.Index(head, "(")+1:len(head)-1], ",")
			r := rule{h1: args[0], h2: args[1]}
			for _, g := range strings.Split(headBody[1], "&") {
				g = strings.TrimSpace(g)
				a := atom{}
				if strings.HasPrefix(g, "!") {
					a.neg = true
					g = g[1:]
				}
				a.pred = g[:strings.Index(g, "(")]
				gargs := strings.Split(g[strings.Index(g, "(")+1:len(g)-1], ",")
				a.v1, a.v2 = gargs[0], gargs[1]
				r.body = append(r.body, a)
			}
			rules[name] = append(rules[name], r)
		}
		return rules
	}
	evalRef := func(rules map[string][]rule, facts map[string]map[[2]int]bool, nNodes int) map[string]map[[2]int]bool {
		// Stratified naive fixpoint: predicates d0..dk in index order, each
		// to fixpoint (negation only references lower indexes).
		db := map[string]map[[2]int]bool{}
		for k, v := range facts {
			db[k] = v
		}
		names := make([]string, 0, len(rules))
		for i := 0; ; i++ {
			n := fmt.Sprintf("d%d", i)
			if _, ok := rules[n]; !ok {
				break
			}
			names = append(names, n)
		}
		for _, name := range names {
			if db[name] == nil {
				db[name] = map[[2]int]bool{}
			}
			for changed := true; changed; {
				changed = false
				for _, r := range rules[name] {
					// Enumerate all variable assignments (≤4 vars, ≤5 nodes).
					vars := map[string]bool{}
					for _, a := range r.body {
						vars[a.v1] = true
						vars[a.v2] = true
					}
					var vlist []string
					for v := range vars {
						vlist = append(vlist, v)
					}
					n := len(vlist)
					total := 1
					for i := 0; i < n; i++ {
						total *= nNodes
					}
					for enc := 0; enc < total; enc++ {
						env := map[string]int{}
						e := enc
						for i := 0; i < n; i++ {
							env[vlist[i]] = e % nNodes
							e /= nNodes
						}
						ok := true
						for _, a := range r.body {
							rel := db[a.pred]
							holds := rel != nil && rel[[2]int{env[a.v1], env[a.v2]}]
							if holds == a.neg {
								ok = false
								break
							}
						}
						if ok {
							key := [2]int{env[r.h1], env[r.h2]}
							if !db[name][key] {
								db[name][key] = true
								changed = true
							}
						}
					}
				}
			}
		}
		return db
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nNodes = 4
		nDerived := 1 + rng.Intn(2)
		program := genProgram(rng, nDerived)
		e0, e1 := genFacts(rng, nNodes, 5+rng.Intn(5))
		facts := map[string]map[[2]int]bool{
			"e0": {}, "e1": {},
		}
		for _, f := range e0 {
			facts["e0"][[2]int{f[0].(int), f[1].(int)}] = true
		}
		for _, f := range e1 {
			facts["e1"][[2]int{f[0].(int), f[1].(int)}] = true
		}
		rules := parseProgram(program)
		want := evalRef(rules, facts, nNodes)
		target := fmt.Sprintf("d%d", nDerived-1)

		sys := New()
		if err := sys.Load(program); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, program)
		}
		sys.Assert("e0", e0...)
		sys.Assert("e1", e1...)
		res, err := sys.Query(fmt.Sprintf("%s(X, Y)", target))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, program)
		}
		if len(res.Rows) != len(want[target]) {
			t.Logf("seed %d: %d rows, reference %d\n%s", seed, len(res.Rows), len(want[target]), program)
			return false
		}
		for _, row := range res.Rows {
			if !want[target][[2]int{int(row[0].Int()), int(row[1].Int())}] {
				t.Logf("seed %d: unexpected %v\n%s", seed, row, program)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrderIndependence is the safety property of the statistics-driven
// physical planner: textual order (WithoutReordering), the compiler's static
// greedy order (WithGreedyOrdering), and the run-time cost-based order
// (default) must produce byte-identical query results on random stratified
// programs, at every worker count. The planner may only change *how fast*
// answers arrive, never *which* answers.
func TestQuickOrderIndependence(t *testing.T) {
	orderings := map[string][]Option{
		"textual": {WithoutReordering()},
		"greedy":  {WithGreedyOrdering()},
		"stats":   nil,
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDerived := 1 + rng.Intn(3)
		program := genProgram(rng, nDerived)
		e0, e1 := genFacts(rng, 5, 6+rng.Intn(8))
		target := fmt.Sprintf("d%d", nDerived-1)
		queries := []string{
			fmt.Sprintf("%s(X, Y)", target),
			fmt.Sprintf("%s(%d, Y)", target, rng.Intn(5)),
		}
		var ref []string
		var refName string
		for name, opts := range orderings {
			for _, workers := range []int{1, 2, 4, 8} {
				all := append([]Option{WithParallelism(workers), WithParallelThreshold(2)}, opts...)
				sys := New(all...)
				if err := sys.Load(program); err != nil {
					t.Fatalf("seed %d: generated program invalid: %v\n%s", seed, err, program)
				}
				sys.Assert("e0", e0...)
				sys.Assert("e1", e1...)
				var got []string
				for _, q := range queries {
					res, err := sys.Query(q)
					if err != nil {
						t.Fatalf("seed %d (%s/%dw): query %s: %v\n%s",
							seed, name, workers, q, err, program)
					}
					got = append(got, rowsKey(res))
				}
				if ref == nil {
					ref, refName = got, name
					continue
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Logf("seed %d: ordering %s/%dw disagrees with %s on %s\nprogram:\n%s\ngot:  %s\nwant: %s",
							seed, name, workers, refName, queries[i], program, got[i], ref[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
