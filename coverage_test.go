package gluenail

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gluenail/internal/storage"
)

// Focused tests for less-travelled branches found by coverage analysis.

func TestWithInputAndReadLine(t *testing.T) {
	var out bytes.Buffer
	sys := New(WithInput(strings.NewReader("hello\n")), WithOutput(&out))
	sys.Load(`
edb got(L);
proc slurp(:)
  got(L) := read_line(L) & write('read:', L).
  return(:) := got(_).
end
`)
	if _, err := sys.Call("main", "slurp"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "read: hello") {
		t.Errorf("output = %q", out.String())
	}
}

func TestNlBuiltin(t *testing.T) {
	var out bytes.Buffer
	sys := New(WithOutput(&out))
	sys.Load(`
edb x(V), done();
proc go(:)
  done() := x(_) & write('a') & nl() & write('b').
  return(:) := done().
end
`)
	sys.Assert("x", []any{1})
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "a\n\nb\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestWithIndexPolicyOption(t *testing.T) {
	// IndexNever: repeated bound queries never build an index.
	sys := New(WithIndexPolicy(storage.IndexNever))
	sys.Load(`edb e(X,Y);`)
	rows := make([][]any, 100)
	for i := range rows {
		rows[i] = []any{i % 10, i}
	}
	sys.Assert("e", rows...)
	for i := 0; i < 10; i++ {
		if _, err := sys.Query("e(3, Y)"); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Stats().EDB.IndexBuilds != 0 {
		t.Errorf("IndexNever built %d indexes", sys.Stats().EDB.IndexBuilds)
	}
	// Default adaptive policy builds one.
	sys2 := New()
	sys2.Load(`edb e(X,Y);`)
	sys2.Assert("e", rows...)
	for i := 0; i < 10; i++ {
		if _, err := sys2.Query("e(3, Y)"); err != nil {
			t.Fatal(err)
		}
	}
	if sys2.Stats().EDB.IndexBuilds == 0 {
		t.Error("adaptive policy should build an index for repeated lookups")
	}
}

func TestLoadFileAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.glue")
	if err := os.WriteFile(path, []byte("edb p(X);\np(1).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys := New()
	if err := sys.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("p(X)")
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("rows = %v err = %v", res, err)
	}
	if err := sys.LoadFile(filepath.Join(t.TempDir(), "missing.glue")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestUnchangedOnProcedureRejected(t *testing.T) {
	sys := New()
	sys.Load(`
edb e(X);
proc helper(:X)
  return(:X) := e(X).
end
proc go(:)
  repeat
    e(1) += e(_).
  until unchanged(helper(_));
  return(:) := e(_).
end
`)
	_, err := sys.Call("main", "go")
	if err == nil || !strings.Contains(err.Error(), "requires a relation") {
		t.Errorf("unchanged over a procedure should be rejected: %v", err)
	}
}

func TestNegatedDynamicDispatch(t *testing.T) {
	// !S(X) through a predicate variable bound to a set name.
	sys := New()
	sys.Load(`
edb universe(X), banned_set(S), allowed(X);
proc filter(:)
  allowed(X) := universe(X) & banned_set(S) & !S(X).
  return(:) := universe(_).
end
edb bad(X);
`)
	sys.Assert("universe", []any{1}, []any{2}, []any{3})
	sys.Assert("bad", []any{2})
	sys.Assert("banned_set", []any{Str("bad")})
	if _, err := sys.Call("main", "filter"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("allowed", 1)
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 3 {
		t.Errorf("allowed = %v", rows)
	}
}

func TestNegatedFamilyDispatch(t *testing.T) {
	// !S(X) where S names a NAIL! family instance.
	sys := New()
	sys.Load(`
edb attends(N, C), person(N), absent(C, N);
students(C)(N) :- attends(N, C).
proc mark_absent(:)
  absent(C, N) := person(N) & roster(S, C) & !S(N).
  return(:) := person(_).
end
edb roster(S, C);
`)
	sys.Assert("person", []any{"ann"}, []any{"bob"})
	sys.Assert("attends", []any{"ann", "db"})
	sys.Assert("roster", []any{Compound("students", Str("db")), "db"})
	if _, err := sys.Call("main", "mark_absent"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("absent", 2)
	if len(rows) != 1 || rows[0][1].Str() != "bob" {
		t.Errorf("absent = %v", rows)
	}
}

func TestDispatchToUnknownNameYieldsNothing(t *testing.T) {
	sys := New()
	sys.Load(`
edb holder(S), out(X);
proc go(:)
  out(X) := holder(S) & S(X).
  return(:) := holder(_).
end
`)
	sys.Assert("holder", []any{Str("no_such_relation")})
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("out", 1)
	if len(rows) != 0 {
		t.Errorf("dispatch to unknown name should match nothing: %v", rows)
	}
}

func TestRuntimeErrorUnwrap(t *testing.T) {
	sys := New()
	sys.Load(`
edb p(X), out(X);
proc go(:)
  out(Y) := p(X) & Y = X mod 0.
  return(:) := out(_).
end
`)
	sys.Assert("p", []any{1})
	_, err := sys.Call("main", "go")
	if err == nil {
		t.Fatal("expected error")
	}
	// The wrapped chain must expose the root cause to errors.Is-style
	// inspection via Unwrap.
	var last error = err
	for {
		u := errors.Unwrap(last)
		if u == nil {
			break
		}
		last = u
	}
	if !strings.Contains(last.Error(), "mod by zero") {
		t.Errorf("unwrapped cause = %v", last)
	}
}

func TestSaveCSVFileErrorPath(t *testing.T) {
	sys := New()
	sys.Load(`edb p(X);`)
	sys.Assert("p", []any{1})
	if _, err := sys.Query("p(X)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveCSVFile("p", 1, filepath.Join("/nonexistent-dir", "x.csv")); err == nil {
		t.Error("unwritable path should fail")
	}
	if err := sys.SaveCSVFile("absent", 2, filepath.Join(t.TempDir(), "x.csv")); err == nil {
		t.Error("missing relation should fail")
	}
	// Success path.
	path := filepath.Join(t.TempDir(), "p.csv")
	if err := sys.SaveCSVFile("p", 1, path); err != nil {
		t.Error(err)
	}
}

func TestCompoundArgumentsInMagicHeads(t *testing.T) {
	// A rule head with compound bound arguments (binding propagates
	// through the structure in the adornment computation).
	sys := New()
	sys.Load(`
edb seg(P1, P2);
connected(p(A,B), p(C,D)) :- seg(p(A,B), p(C,D)).
connected(P, R) :- connected(P, Q) & seg(Q, R).
`)
	p := func(x, y int64) Value { return Compound("p", Int(x), Int(y)) }
	sys.Assert("seg", []any{p(0, 0), p(1, 1)}, []any{p(1, 1), p(2, 2)})
	res, err := sys.Query("connected(p(0,0), T)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("connected = %v", res.Rows)
	}
}

func TestWriteOnEmptyInputPrintsNothing(t *testing.T) {
	var out bytes.Buffer
	sys := New(WithOutput(&out))
	sys.Load(`
edb none(X), sink(X);
proc go(:)
  sink(X) := none(X) & write(X).
  return(:) := sink(_).
end
`)
	if _, err := sys.Call("main", "go"); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("output = %q", out.String())
	}
}
