// The class-information example of §5: set-valued attributes hold
// predicate names in the HiLog style, so a tuple can carry "the set of
// students of cs99" as the name students(cs99), and a subgoal S(X)
// enumerates the set through the name.
package main

import (
	"fmt"
	"log"
	"os"

	"gluenail"
)

const registrar = `
edb class_instructor(ID, I), class_room(ID, R), class_subject(ID, Subj),
    failed_exam(Person, Subj), attends(Person, ID);

% Families with compound names (§5): one relation per class.
students(ID)(Name) :- attends(Name, ID).
tas(ID)(TA) :-
  class_subject(ID, Subject) &
  failed_exam(TA, Subject).

% class_info carries the set NAMES as attributes, not the members.
class_info(ID, Instructor, Room, tas(ID), students(ID)) :-
  class_instructor(ID, Instructor) &
  class_room(ID, Room).

% Enumerate members through predicate variables.
roster(ID, Student) :- class_info(ID, _, _, _, S) & S(Student).
staff(ID, TA) :- class_info(ID, _, _, T, _) & T(TA).

% The set_eq procedure of §5.1: extensional comparison when name equality
% is not enough.
proc set_eq( S, T: )
rels different(S,T);
  different(S,T):= in(S,T) & S(X) & !T(X).
  different(S,T)+= in(S,T) & T(X) & !S(X).
  return(S,T:):= !different(S,T).
end
`

func main() {
	sys := gluenail.New(gluenail.WithOutput(os.Stdout))
	if err := sys.Load(registrar); err != nil {
		log.Fatal(err)
	}
	// The EDB from §5.
	must(sys.Assert("class_instructor", []any{"cs99", "smith"}, []any{"cs245", "jones"}))
	must(sys.Assert("class_room", []any{"cs99", "mjh460a"}, []any{"cs245", "gates104"}))
	must(sys.Assert("class_subject", []any{"cs99", "databases"}, []any{"cs245", "databases"}))
	must(sys.Assert("failed_exam", []any{"jones", "databases"}))
	must(sys.Assert("attends",
		[]any{"wilson", "cs99"}, []any{"green", "cs99"},
		[]any{"wilson", "cs245"}, []any{"hu", "cs245"}))

	res, err := sys.Query("class_info(cs99, I, R, T, S)")
	if err != nil {
		log.Fatal(err)
	}
	row := res.Rows[0]
	fmt.Printf("cs99: instructor=%v room=%v ta_set=%v student_set=%v\n",
		row[0], row[1], row[2], row[3])

	res, err = sys.Query("roster(cs99, Student)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cs99 roster (via S(Student) dispatch):")
	for _, r := range res.Rows {
		fmt.Printf("  %v\n", r[0])
	}

	res, err = sys.Query("staff(ID, TA)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("teaching assistants:")
	for _, r := range res.Rows {
		fmt.Printf("  %v assists %v\n", r[1], r[0])
	}

	// Name equality vs extensional equality (§5.1): the two classes have
	// different set NAMES but set_eq compares members.
	s99 := gluenail.Compound("students", gluenail.Str("cs99"))
	s245 := gluenail.Compound("students", gluenail.Str("cs245"))
	eq, err := sys.Call("main", "set_eq", []any{s99, s245})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("students(cs99) == students(cs245) extensionally: %v\n", len(eq) == 1)
	eq, err = sys.Call("main", "set_eq", []any{s99, s99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("students(cs99) == students(cs99) extensionally: %v\n", len(eq) == 1)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
