// A flight-network application mixing the two languages the way the paper
// intends (§1): declarative NAIL! rules for the query-oriented parts
// (reachability, per-carrier aggregates) and a Glue procedure for an
// algorithm that wants explicit iteration (breadth-first hop counts).
package main

import (
	"fmt"
	"log"
	"os"

	"gluenail"
)

const flights = `
edb flight(From, To, Miles, Carrier);

% Declarative reachability; queries with a bound origin compile through
% magic sets, so only the relevant part of the network is explored.
reach(X,Y) :- flight(X,Y,_,_).
reach(X,Z) :- reach(X,Y) & flight(Y,Z,_,_).

% Aggregates with grouping (§3.3.1).
carrier_longest(C, M) :- flight(_,_,Miles,C) & group_by(C) & M = max(Miles).
carrier_route_count(C, N) :- flight(_,_,_,C) & group_by(C) & N = count(C).

% Procedural breadth-first search: hop counts from an origin, written in
% Glue because the frontier iteration is naturally stateful.
proc hops(Origin : Dest, N)
rels level(D,N), frontier(D), nextf(D), visited(D);
  frontier(D) := in(Origin) & flight(Origin, D, _, _).
  visited(D) := frontier(D).
  level(D, 1) := frontier(D).
  repeat
    nextf(D2) := frontier(D) & flight(D, D2, _, _) & !visited(D2).
    level(D2, N2) += nextf(D2) & level(_, N) & N = max(N) & N2 = N + 1.
    frontier(D) := nextf(D).
    visited(D) += frontier(D).
  until empty(frontier(_));
  return(Origin : Dest, N) := level(Dest, N).
end
`

func main() {
	sys := gluenail.New(gluenail.WithOutput(os.Stdout))
	if err := sys.Load(flights); err != nil {
		log.Fatal(err)
	}
	must(sys.Assert("flight",
		[]any{"sfo", "lax", 337, "ua"},
		[]any{"sfo", "ord", 1846, "ua"},
		[]any{"ord", "jfk", 740, "aa"},
		[]any{"lax", "jfk", 2475, "aa"},
		[]any{"jfk", "lhr", 3451, "ba"},
		[]any{"lhr", "cdg", 214, "ba"},
		[]any{"syd", "sfo", 7417, "qf"},
	))

	res, err := sys.Query("reach(sfo, X)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reachable from sfo:")
	for _, r := range res.Rows {
		fmt.Printf("  %v\n", r[0])
	}

	res, err = sys.Query("reach(sfo, X) & N = count(X)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("destinations reachable from sfo: %v\n", res.Rows[0][1])

	res, err = sys.Query("carrier_longest(C, M)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("longest flight per carrier:")
	for _, r := range res.Rows {
		fmt.Printf("  %v: %v miles\n", r[0], r[1])
	}

	res, err = sys.Query("carrier_route_count(C, N)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("routes per carrier:")
	for _, r := range res.Rows {
		fmt.Printf("  %v: %v\n", r[0], r[1])
	}

	rows, err := sys.Call("main", "hops", []any{"sfo"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hop counts from sfo (procedural BFS):")
	for _, r := range rows {
		fmt.Printf("  %v: %v hops\n", r[1], r[2])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
