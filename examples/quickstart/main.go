// Quickstart: load a program mixing NAIL! rules and a Glue procedure,
// assert EDB facts from Go, run queries, and call a procedure.
package main

import (
	"fmt"
	"log"
	"os"

	"gluenail"
)

const program = `
edb edge(X,Y);

% NAIL!: declarative transitive closure.
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).

% Glue: the same computation written procedurally (§4 of the paper),
% with per-invocation local relations and a repeat/until loop.
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & edge(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & edge(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
`

func main() {
	sys := gluenail.New(gluenail.WithOutput(os.Stdout))
	if err := sys.Load(program); err != nil {
		log.Fatal(err)
	}
	// A small graph: a cycle 1-2-3 plus a tail 3-4-5.
	err := sys.Assert("edge",
		[]any{1, 2}, []any{2, 3}, []any{3, 1}, []any{3, 4}, []any{4, 5})
	if err != nil {
		log.Fatal(err)
	}

	// Declarative query (compiled with magic sets because the first
	// argument is bound).
	res, err := sys.Query("tc(1, X)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tc(1, X) via NAIL! rules:")
	for _, row := range res.Rows {
		fmt.Printf("  X = %v\n", row[0])
	}

	// The same result through the hand-written Glue procedure, called
	// set-at-a-time on two inputs at once.
	rows, err := sys.Call("main", "tc_e", []any{1}, []any{4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tc_e called on {1, 4}:")
	for _, row := range rows {
		fmt.Printf("  %v reaches %v\n", row[0], row[1])
	}

	// EDB persistence (§10: relations stored on disk between runs).
	path := "quickstart.edb"
	if err := sys.SaveEDB(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EDB saved to %s\n", path)
	os.Remove(path)
}
