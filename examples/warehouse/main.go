// An update-heavy warehouse application: order processing with the modify
// assignment (+=[key], the paper's "update by key ... analogous to UPDATE
// in SQL"), in-body updates, a repeat loop draining a queue in priority
// order, and EDB persistence between runs.
package main

import (
	"fmt"
	"log"
	"os"

	"gluenail"
)

const warehouse = `
edb stock(Item, Qty), order(Id, Item, Qty), shipped(Id), rejected(Id);

proc process(:)
rels pending(Id, Item, Qty), current(Id, Item, Qty);
  pending(Id, Item, Q) := order(Id, Item, Q).
  repeat
    % Take the lowest order id (FIFO).
    current(Id, Item, Q) := pending(Id, Item, Q) & Id = min(Id).
    % Fill it if the stock suffices.
    filled(Id, Item, Q, R) :=
      current(Id, Item, Q) &
      stock(Item, S) & Q <= S & R = S - Q &
      ++shipped(Id) &
      --pending(Id, Item, Q).
    % Update the stock level by key.
    stock(Item, R) +=[Item] filled(_, Item, _, R).
    % Otherwise (still pending) reject it.
    bounced(Id, Item, Q) :=
      current(Id, Item, Q) & pending(Id, Item, Q) &
      ++rejected(Id) &
      --pending(Id, Item, Q).
  until empty(pending(_,_,_));
  return(:) := order(_,_,_).
end

edb filled(Id, Item, Q, R), bounced(Id, Item, Q);

low_stock(Item, Qty) :- stock(Item, Qty) & Qty < 3.
`

func main() {
	sys := gluenail.New(gluenail.WithOutput(os.Stdout))
	if err := sys.Load(warehouse); err != nil {
		log.Fatal(err)
	}
	must(sys.Assert("stock",
		[]any{"widget", 10}, []any{"gadget", 2}, []any{"sprocket", 5}))
	must(sys.Assert("order",
		[]any{1, "widget", 4},
		[]any{2, "gadget", 5}, // more than in stock: rejected
		[]any{3, "widget", 6},
		[]any{4, "sprocket", 5},
		[]any{5, "widget", 1}, // stock exhausted by order 3: rejected
	))
	if _, err := sys.Call("main", "process"); err != nil {
		log.Fatal(err)
	}

	show := func(title, rel string, arity int) {
		rows, err := sys.Relation(rel, arity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(title)
		for _, r := range rows {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = v.String()
			}
			fmt.Printf("  %v\n", parts)
		}
	}
	show("shipped orders:", "shipped", 1)
	show("rejected orders:", "rejected", 1)
	show("remaining stock:", "stock", 2)

	res, err := sys.Query("low_stock(Item, Q)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reorder report (stock < 3):")
	for _, r := range res.Rows {
		fmt.Printf("  %v: %v left\n", r[0], r[1])
	}

	// Persist the post-run EDB, as §10 describes ("storing EDB relations
	// on disk between runs"), then prove it reloads.
	path := "warehouse.edb"
	if err := sys.SaveEDB(path); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	sys2 := gluenail.New()
	must(sys2.Load(warehouse))
	must(sys2.LoadEDB(path))
	res, err = sys2.Query("stock(widget, Q)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("widget stock after reload: %v\n", res.Rows[0][0])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
