// The micro-CAD example of Figure 1 in the paper: the select procedure
// presents graphical elements near a mouse click to the user, one at a
// time in order of increasing distance, until one is confirmed.
//
// The windowing system the paper imports (event, highlight, dehighlight)
// is supplied here as foreign Go procedures with a scripted event queue,
// exercising the same fixed-subgoal code paths without a display.
package main

import (
	"fmt"
	"log"
	"os"

	"gluenail"
)

// The module follows Figure 1, with the paper's typos repaired: the
// distance is bound explicitly in graphic_search, select's return matches
// its 0:1 signature, and the emptiness test names possible at its real
// arity.
const cadModule = `
module example;
export select(:Key);
edb element(Key, Origin, P1, P2, DS), tolerance(T);

proc select(:Key)
rels possible(Key, D), try(Key), confirmed(Key);
  possible( Key, D ):=
        event( mouse, p(X,Y) ) &
        graphic_search( p(X,Y), Key, D ).
  repeat
    try(Key):=
      possible( Key, D ) &
      D = min(D) &
      It = arbitrary(Key) &
      Key = It &
      --possible( It, D ).
    confirmed(K):=
      try(K) &
      highlight(K) &
      write( 'This one?' ) &
      event( keyboard, KeyBuffer ) &
      dehighlight( K ) &
      KeyBuffer = 'y'.
  until {confirmed(K) | empty(possible(_,_)) };
  return(:Key):= confirmed( Key ).
end

graphic_search( p(X,Y), Key, Dist ):-
  element( Key, _, p(Xmin, Ymin), _, _ ) &
  tolerance( T ) &
  Dist = (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin) &
  Dist < T.
end
`

// event is a scripted queue standing in for the windowing system.
type eventQueue struct {
	events [][2]gluenail.Value
}

func (q *eventQueue) next(in [][]gluenail.Value) ([][]gluenail.Value, error) {
	if len(in) == 0 || len(q.events) == 0 {
		return nil, nil
	}
	e := q.events[0]
	q.events = q.events[1:]
	return [][]gluenail.Value{{e[0], e[1]}}, nil
}

func main() {
	queue := &eventQueue{events: [][2]gluenail.Value{
		// The user clicks at (12, 9)...
		{gluenail.Str("mouse"), gluenail.Compound("p", gluenail.Int(12), gluenail.Int(9))},
		// ...rejects the nearest element, then accepts the next.
		{gluenail.Str("keyboard"), gluenail.Str("n")},
		{gluenail.Str("keyboard"), gluenail.Str("y")},
	}}
	sys := gluenail.New(gluenail.WithOutput(os.Stdout))
	must(sys.Register("event", 0, 2, true, queue.next))
	must(sys.Register("highlight", 1, 0, true, func(in [][]gluenail.Value) ([][]gluenail.Value, error) {
		for _, row := range in {
			fmt.Printf("[screen] highlighting %v\n", row[0])
		}
		return in, nil
	}))
	must(sys.Register("dehighlight", 1, 0, true, func(in [][]gluenail.Value) ([][]gluenail.Value, error) {
		for _, row := range in {
			fmt.Printf("[screen] dehighlighting %v\n", row[0])
		}
		return in, nil
	}))
	must(sys.Load(cadModule))

	// A tiny drawing: elements keyed by name with their minimum corner.
	p := func(x, y int64) gluenail.Value {
		return gluenail.Compound("p", gluenail.Int(x), gluenail.Int(y))
	}
	must(sys.Assert("element",
		[]any{"line17", "origin", p(10, 10), p(30, 10), "solid"},
		[]any{"circle3", "origin", p(13, 11), p(18, 16), "dashed"},
		[]any{"box9", "origin", p(40, 40), p(60, 60), "solid"},
	))
	must(sys.Assert("tolerance", []any{50}))

	rows, err := sys.Call("example", "select")
	if err != nil {
		log.Fatal(err)
	}
	if len(rows) == 0 {
		fmt.Println("nothing selected")
		return
	}
	fmt.Printf("selected element: %v\n", rows[0][0])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
