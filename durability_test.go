package gluenail_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gluenail"
)

const durProg = `
edb fact(X, Y);
edb seed(X, Y);

proc grow(N :)
rels step(X);
  step(X) := in(X).
  repeat
    fact(X, Y) += step(X) & Y = X * X.
    step(X) := step(Y) & X = Y + 1 & X < 20.
  until unchanged(fact(_, _));
end
`

// queryDump renders a query result deterministically for comparison.
func queryDump(t *testing.T, sys *gluenail.System, goals string) string {
	t.Helper()
	res, err := sys.Query(goals)
	if err != nil {
		t.Fatalf("query %q: %v", goals, err)
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Vars, ","))
	for _, row := range res.Rows {
		sb.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}

// relDump renders an EDB relation's sorted contents for comparison,
// without needing a loaded program.
func relDump(t *testing.T, sys *gluenail.System, rel string, arity int) string {
	t.Helper()
	rows, err := sys.Relation(rel, arity)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// populate drives the system through the three commit paths: Assert,
// a procedure call (VM statement boundaries), and Retract.
func populate(t *testing.T, sys *gluenail.System) {
	t.Helper()
	if err := sys.Load(durProg); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("seed", []any{int64(1), "one"}, []any{int64(2), "two"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Call("main", "grow", []any{int64(3)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Retract("seed", []any{int64(2), "two"}); err != nil {
		t.Fatal(err)
	}
}

// TestDurableReopenMatchesInMemory is the headline acceptance check: a
// durable run abandoned without Close (simulated crash) re-opens to
// query output byte-identical to the same program run in memory.
func TestDurableReopenMatchesInMemory(t *testing.T) {
	mem := gluenail.New()
	populate(t, mem)
	wantFact := queryDump(t, mem, "fact(X, Y)")
	wantSeed := queryDump(t, mem, "seed(X, Y)")

	dir := filepath.Join(t.TempDir(), "data")
	sys, err := gluenail.Open(dir, gluenail.WithFsync(gluenail.FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	populate(t, sys)
	// Crash: abandon without Close. FsyncAlways means every statement
	// boundary is already durable.

	re, err := gluenail.Open(dir)
	if err != nil {
		t.Fatalf("recovering after simulated crash: %v", err)
	}
	defer re.Close()
	if err := re.Load(durProg); err != nil {
		t.Fatal(err)
	}
	if got := queryDump(t, re, "fact(X, Y)"); got != wantFact {
		t.Errorf("fact after recovery:\ngot  %q\nwant %q", got, wantFact)
	}
	if got := queryDump(t, re, "seed(X, Y)"); got != wantSeed {
		t.Errorf("seed after recovery:\ngot  %q\nwant %q", got, wantSeed)
	}
}

// TestDurableCleanCloseReopens covers the orderly shutdown path under
// the default fsync mode, where Close must flush the batched tail.
func TestDurableCleanCloseReopens(t *testing.T) {
	dir := t.TempDir()
	sys, err := gluenail.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, sys)
	want := queryDump(t, sys, "fact(X, Y)")
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := gluenail.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Load(durProg); err != nil {
		t.Fatal(err)
	}
	if got := queryDump(t, re, "fact(X, Y)"); got != want {
		t.Errorf("after clean close:\ngot  %q\nwant %q", got, want)
	}
}

// TestDurableAutoCheckpoint forces checkpoints with a tiny threshold and
// verifies state survives the rotations.
func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sys, err := gluenail.Open(dir, gluenail.WithCheckpointThreshold(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sys.Assert("tick", []any{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	want := relDump(t, sys, "tick", 1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := gluenail.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := relDump(t, re, "tick", 1); got != want {
		t.Errorf("after auto checkpoints:\ngot  %q\nwant %q", got, want)
	}
}

// TestDurableExplicitCheckpoint exercises the public Checkpoint API.
func TestDurableExplicitCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sys, err := gluenail.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("r", []any{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("r", []any{int64(2)}); err != nil {
		t.Fatal(err)
	}
	want := relDump(t, sys, "r", 1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := gluenail.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := relDump(t, re, "r", 1); got != want {
		t.Errorf("after explicit checkpoint:\ngot  %q\nwant %q", got, want)
	}

	noDur := gluenail.New()
	if err := noDur.Checkpoint(); err == nil {
		t.Error("Checkpoint without durability must fail")
	}
}

// TestDurableLayeredBackend runs durability over the layered storage
// baseline, whose relations delegate to the same journal hooks.
func TestDurableLayeredBackend(t *testing.T) {
	dir := t.TempDir()
	sys, err := gluenail.Open(dir, gluenail.WithLayeredBackend())
	if err != nil {
		t.Fatal(err)
	}
	populate(t, sys)
	want := queryDump(t, sys, "fact(X, Y)")
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := gluenail.Open(dir, gluenail.WithLayeredBackend())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Load(durProg); err != nil {
		t.Fatal(err)
	}
	if got := queryDump(t, re, "fact(X, Y)"); got != want {
		t.Errorf("layered durability:\ngot  %q\nwant %q", got, want)
	}
}

// TestOpenBadPathFails surfaces recovery errors from Open immediately.
func TestOpenBadPathFails(t *testing.T) {
	dir := t.TempDir()
	// A file where the data directory should be.
	path := filepath.Join(dir, "occupied")
	if err := os.WriteFile(path, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gluenail.Open(path); err == nil {
		t.Fatal("Open on a non-directory path must fail")
	}
}

// TestFailedStatementDoesNotCommit proves statement atomicity: a
// procedure that fails mid-statement leaves no partial deltas in the
// durable state.
func TestFailedStatementDoesNotCommit(t *testing.T) {
	prog := `
edb acc(X);

proc boom(N :)
  acc(X) += in(N) & X = N + 1.
  acc(X) += in(N) & X = N / 0.
end
`
	dir := t.TempDir()
	sys, err := gluenail.Open(dir, gluenail.WithFsync(gluenail.FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Call("main", "boom", []any{int64(1)}); err == nil {
		t.Fatal("boom must fail on division by zero")
	}
	want := queryDump(t, sys, "acc(X)")
	// Crash without Close; recovery must agree with the live system: the
	// first statement committed, the failed one contributed nothing.
	re, err := gluenail.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Load(prog); err != nil {
		t.Fatal(err)
	}
	if got := queryDump(t, re, "acc(X)"); got != want {
		t.Errorf("after failed statement:\ngot  %q\nwant %q", got, want)
	}
	if !strings.Contains(want, "2") {
		t.Errorf("first statement should have committed: %q", want)
	}
}
