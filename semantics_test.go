package gluenail

import (
	"strings"
	"testing"
)

// Third-round semantics tests: adornment variants, stratified negation
// under magic, and barrier goals inside statement bodies.

func TestSecondArgumentBoundQuery(t *testing.T) {
	// tc(X, 4): the 'fb' adornment — who can reach node 4?
	sys := New()
	sys.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`)
	sys.Assert("edge", []any{1, 2}, []any{2, 3}, []any{3, 4}, []any{9, 4})
	res, err := sys.Query("tc(X, 4)")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, r := range res.Rows {
		got[r[0].Int()] = true
	}
	for _, want := range []int64{1, 2, 3, 9} {
		if !got[want] {
			t.Errorf("tc(X,4) missing %d: %v", want, res.Rows)
		}
	}
	if len(got) != 4 {
		t.Errorf("tc(X,4) = %v", res.Rows)
	}
}

func TestBothArgumentsBoundQuery(t *testing.T) {
	sys := New()
	sys.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`)
	sys.Assert("edge", []any{1, 2}, []any{2, 3})
	for q, want := range map[string]int{"tc(1, 3)": 1, "tc(3, 1)": 0} {
		res, err := sys.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res.Rows) != want {
			t.Errorf("%s = %v, want %d rows", q, res.Rows, want)
		}
	}
}

func TestNegationUnderMagicIsComplete(t *testing.T) {
	// Magic rewriting must not restrict the extension used for negation:
	// unreachable(X,Y) with X bound negates reach, whose COMPLETE
	// extension is required even though the query is restricted.
	sys := New()
	sys.Load(`
edb edge(X,Y), node(X);
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y) & edge(Y,Z).
unreachable(X,Y) :- node(X) & node(Y) & !reach(X,Y).
`)
	sys.Assert("edge", []any{1, 2}, []any{3, 1})
	sys.Assert("node", []any{1}, []any{2}, []any{3})
	res, err := sys.Query("unreachable(1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	// 1 reaches only 2; it does not reach 1 or 3.
	got := map[int64]bool{}
	for _, r := range res.Rows {
		got[r[0].Int()] = true
	}
	if len(got) != 2 || !got[1] || !got[3] {
		t.Errorf("unreachable(1,Y) = %v", res.Rows)
	}
}

func TestEmptyCheckInsideBody(t *testing.T) {
	sys := New()
	sys.Load(`
edb items(X), errors(E), ok();
proc validate(:)
  ok() := items(_) & empty(errors(_)).
  return(:) := items(_).
end
`)
	sys.Assert("items", []any{1})
	if _, err := sys.Call("main", "validate"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("ok", 0)
	if len(rows) != 1 {
		t.Errorf("ok should hold with no errors: %v", rows)
	}
	// With an error present the statement yields nothing — but := has
	// already run once; build a fresh system to check the negative case.
	sys2 := New()
	sys2.Load(`
edb items(X), errors(E), ok();
proc validate(:)
  ok() := items(_) & empty(errors(_)).
  return(:) := items(_).
end
`)
	sys2.Assert("items", []any{1})
	sys2.Assert("errors", []any{"boom"})
	if _, err := sys2.Call("main", "validate"); err != nil {
		t.Fatal(err)
	}
	rows, _ = sys2.Relation("ok", 0)
	if len(rows) != 0 {
		t.Errorf("ok should be empty with errors present: %v", rows)
	}
}

func TestUnchangedInsideBody(t *testing.T) {
	// unchanged as a body subgoal: false on first execution, true on the
	// second when nothing moved.
	sys := New()
	sys.Load(`
edb src(X), stable(), sink(X);
proc tick(:)
  sink(X) += src(X).
  stable() := src(_) & unchanged(sink(_)).
  return(:) := src(_).
end
`)
	sys.Assert("src", []any{1})
	if _, err := sys.Call("main", "tick"); err != nil {
		t.Fatal(err)
	}
	rows, _ := sys.Relation("stable", 0)
	if len(rows) != 0 {
		t.Error("first execution: unchanged must be false")
	}
	// Second call: sink gains nothing new -> unchanged... but the site
	// memory is per frame, so a fresh call starts cold again.
	if _, err := sys.Call("main", "tick"); err != nil {
		t.Fatal(err)
	}
	rows, _ = sys.Relation("stable", 0)
	if len(rows) != 0 {
		t.Error("unchanged memory is per invocation (§4: per syntactic site, per frame)")
	}
}

func TestUnchangedWithinLoopSeesQuiescence(t *testing.T) {
	sys := New()
	sys.Load(`
edb seed(X), acc(X), rounds(N);
proc fill(:)
  repeat
    acc(X) += seed(X).
    rounds(1) += seed(_).
  until unchanged(acc(_));
  return(:) := seed(_).
end
`)
	sys.Assert("seed", []any{7})
	if _, err := sys.Call("main", "fill"); err != nil {
		t.Fatal(err)
	}
	// Iteration 1: acc gains 7 (changed). Iteration 2: nothing new ->
	// unchanged -> exit.
	rows, _ := sys.Relation("acc", 1)
	if len(rows) != 1 {
		t.Errorf("acc = %v", rows)
	}
}

func TestFamilyReferencedFromNormalPredicate(t *testing.T) {
	// A plain predicate whose rules mention a family with partially bound
	// name arguments (flattening inside the generated program).
	sys := New()
	sys.Load(`
edb attends(N, ID), offered(ID);
students(ID)(N) :- attends(N, ID).
enrolled(ID, N) :- offered(ID) & students(ID)(N).
`)
	sys.Assert("attends", []any{"w", "cs99"}, []any{"g", "cs101"})
	sys.Assert("offered", []any{"cs99"})
	res, err := sys.Query("enrolled(ID, N)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "w" {
		t.Errorf("enrolled = %v", res.Rows)
	}
}

func TestDeepProcRecursion(t *testing.T) {
	// Recursive procedure descending a chain; per-invocation locals (§4).
	// Results accumulate in a local and a single return statement emits
	// them (assigning return exits the procedure, §4, so a second return
	// statement would never run).
	sys2 := New()
	sys2.Load(`
edb next(X,Y);
proc last(X:Y)
rels nxt(Y), res(Y);
  nxt(Y) := in(X) & next(X,Y).
  res(Z) := nxt(Y) & last(Y, Z).
  res(X) += in(X) & !next(X,_).
  return(X:Y) := res(Y).
end
`)
	rows := make([][]any, 0, 60)
	for i := 0; i < 60; i++ {
		rows = append(rows, []any{i, i + 1})
	}
	sys2.Assert("next", rows...)
	out, err := sys2.Call("main", "last", []any{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][1].Int() != 60 {
		t.Errorf("last(0) = %v, want 60", out)
	}
}

func TestStringsAsAtomsEquivalence(t *testing.T) {
	// §2: "In Glue there is no difference between atoms and strings."
	sys := New()
	sys.Load(`edb p(X);`)
	sys.Assert("p", []any{"hello world"})
	res, err := sys.Query(`p('hello world')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Error("quoted string should match stored value")
	}
	sys.Assert("p", []any{"atom"})
	res, _ = sys.Query(`p(atom)`)
	if len(res.Rows) != 1 {
		t.Error("bare atom should match stored string")
	}
	res, _ = sys.Query(`p("atom")`)
	if len(res.Rows) != 1 {
		t.Error("double-quoted string should equal the atom")
	}
}

func TestCompileErrorSurfacesPosition(t *testing.T) {
	sys := New()
	sys.Load(`
module strict;
edb a(X);
proc p(:)
  a(Y) := a(X) & Y < X.
  return(:) := a(_).
end
end
`)
	_, err := sys.QueryIn("strict", "a(X)")
	if err == nil {
		t.Fatal("expected compile error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "module strict") || !strings.Contains(msg, "5:") {
		t.Errorf("error should carry module and line: %q", msg)
	}
}
