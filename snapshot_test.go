package gluenail

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

const snapProgram = `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`

// fmtResult renders a Result canonically so isolation tests can compare
// byte-identical answers.
func fmtResult(r *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Vars, ","))
	for _, row := range r.Rows {
		sb.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}

func chainEdges(from, n int64) [][]any {
	rows := make([][]any, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, []any{from + i, from + i + 1})
	}
	return rows
}

func TestSnapshotIsolationBasic(t *testing.T) {
	sys := New()
	if err := sys.Load(snapProgram); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", chainEdges(1, 5)...); err != nil {
		t.Fatal(err)
	}

	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	res, err := snap.Query("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	before := fmtResult(res)

	// The writer commits more edges and a retraction.
	if err := sys.Assert("edge", []any{6, 7}, []any{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Retract("edge", []any{1, 2}); err != nil {
		t.Fatal(err)
	}

	res, err = snap.Query("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	if after := fmtResult(res); after != before {
		t.Fatalf("snapshot result changed after commit:\nbefore:\n%s\nafter:\n%s", before, after)
	}

	// The live view and a fresh snapshot both see the new state.
	live, err := sys.Query("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	if fmtResult(live) == before {
		t.Fatal("live view did not observe the committed write")
	}
	snap2, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Close()
	res2, err := snap2.Query("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	if fmtResult(res2) != fmtResult(live) {
		t.Fatalf("fresh snapshot disagrees with live view:\nsnap:\n%s\nlive:\n%s",
			fmtResult(res2), fmtResult(live))
	}
	if snap2.CSN() <= snap.CSN() {
		t.Fatalf("CSN did not advance: %d then %d", snap.CSN(), snap2.CSN())
	}
}

// TestSnapshotIsolationUnderWorkers runs the acceptance check: a reader
// opened before a write sees byte-identical recursive-query results before
// and after the write commits, across 1–16 morsel workers, while the
// writer keeps committing concurrently.
func TestSnapshotIsolationUnderWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sys := New(WithParallelism(workers), WithParallelThreshold(1))
			if err := sys.Load(snapProgram); err != nil {
				t.Fatal(err)
			}
			// A chain component the writer never touches (queried) plus a
			// disjoint component it churns.
			if err := sys.Assert("edge", chainEdges(1, 40)...); err != nil {
				t.Fatal(err)
			}
			if err := sys.Assert("edge", chainEdges(1000, 10)...); err != nil {
				t.Fatal(err)
			}

			const sessions = 4
			snaps := make([]*Snapshot, sessions)
			want := make([]string, sessions)
			for i := range snaps {
				snap, err := sys.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				defer snap.Close()
				res, err := snap.Query("tc(1,X)")
				if err != nil {
					t.Fatal(err)
				}
				snaps[i], want[i] = snap, fmtResult(res)
				// Later sessions capture later CSNs, but the queried
				// component is identical in all of them.
				if want[i] != want[0] {
					t.Fatalf("session %d baseline differs", i)
				}
			}

			var wg sync.WaitGroup
			errs := make(chan error, sessions+1)
			stop := make(chan struct{})
			for i, snap := range snaps {
				wg.Add(1)
				go func(i int, snap *Snapshot) {
					defer wg.Done()
					for n := 0; ; n++ {
						select {
						case <-stop:
							return
						default:
						}
						res, err := snap.Query("tc(1,X)")
						if err != nil {
							errs <- fmt.Errorf("session %d iter %d: %v", i, n, err)
							return
						}
						if got := fmtResult(res); got != want[i] {
							errs <- fmt.Errorf("session %d iter %d: isolation violation:\nwant:\n%s\ngot:\n%s",
								i, n, want[i], got)
							return
						}
					}
				}(i, snap)
			}

			// Writer: churn the disjoint component through asserts and
			// retracts, committing each statement.
			for round := int64(0); round < 30; round++ {
				if err := sys.Assert("edge", []any{2000 + round, 2001 + round}); err != nil {
					errs <- err
					break
				}
				if err := sys.Retract("edge", []any{1000 + round%10, 1001 + round%10}); err != nil {
					errs <- err
					break
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
		})
	}
}

// TestSnapshotPrepared executes a shared Prepared handle on snapshot
// sessions, including across a recompile (the handle re-prepares itself).
func TestSnapshotPrepared(t *testing.T) {
	sys := New()
	if err := sys.Load(snapProgram); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", chainEdges(1, 4)...); err != nil {
		t.Fatal(err)
	}
	p, err := sys.Prepare("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	res, err := snap.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	want := fmtResult(res)

	// Recompile (new rule through Load) and commit a chain-extending edge:
	// the old snapshot still answers from its capture through the
	// re-prepared handle. (chainEdges(1, 4) ends at node 5.)
	if err := sys.Load(`tc2(X,Y) :- tc(X,Y).`); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", []any{5, 6}); err != nil {
		t.Fatal(err)
	}
	res, err = snap.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmtResult(res); got != want {
		t.Fatalf("prepared snapshot result changed across recompile:\nwant:\n%s\ngot:\n%s", want, got)
	}
	// On the live system the handle sees the new edge.
	live, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if fmtResult(live) == want {
		t.Fatal("live prepared result did not observe the committed write")
	}
}

// TestSnapshotWriteFails: a query that reaches an EDB update through a
// called procedure must fail with a governed error, not corrupt the
// snapshot.
func TestSnapshotWriteFails(t *testing.T) {
	sys := New()
	err := sys.Load(`
edb counter(X);
counter(0).
proc bump(:X)
  counter(Y) += counter(X) & Y = X + 1.
  return(:X) := counter(X).
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query("counter(X)"); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := snap.Query("bump(X)"); err == nil {
		t.Fatal("EDB update through a snapshot should fail")
	}
	// The session stays usable for reads... (the machine may be poisoned
	// by the contained panic; a fresh snapshot definitely works).
	snap2, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Close()
	res, err := snap2.Query("counter(X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("counter corrupted: %v", res.Rows)
	}
}

// TestSystemConcurrentSessions hammers the public System API from many
// goroutines — queries, prepared executes, asserts/retracts, stats reads,
// snapshot opens — as a -race regression net for the concurrency audit.
func TestSystemConcurrentSessions(t *testing.T) {
	sys := New()
	if err := sys.Load(snapProgram); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", chainEdges(1, 20)...); err != nil {
		t.Fatal(err)
	}
	p, err := sys.Prepare("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	const iters = 25
	// Live queriers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := p.Execute(); err != nil {
					fail(err)
					return
				}
				if _, err := sys.Query("edge(1,X)"); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	// Snapshot sessions.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				snap, err := sys.Snapshot()
				if err != nil {
					fail(err)
					return
				}
				if _, err := snap.Execute(p); err != nil {
					fail(err)
					snap.Close()
					return
				}
				snap.Close()
			}
		}()
	}
	// Writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(10000 + g*1000)
			for i := int64(0); i < iters; i++ {
				if err := sys.Assert("edge", []any{base + i, base + i + 1}); err != nil {
					fail(err)
					return
				}
				if err := sys.Retract("edge", []any{base + i, base + i + 1}); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	// Stats readers (plan-cache counters, exec/storage counters).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters*4; i++ {
				_ = sys.PlanCacheStats()
				_ = sys.Stats()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestSnapshotLayeredBackendRejected: the layered baseline has no MVCC.
func TestSnapshotLayeredBackendRejected(t *testing.T) {
	sys := New(WithLayeredBackend())
	if err := sys.Load(snapProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Fatal("layered backend should reject snapshots")
	}
}
