// Determinism tests for intra-segment morsel parallelism: the same
// program over the same data must produce identical results — including
// bit-identical floating-point aggregates — at every worker count.
package gluenail_test

import (
	"fmt"
	"testing"

	"gluenail"
	"gluenail/internal/bench"
)

// parOpts forces the morsel-parallel code paths even on modest workloads:
// 8 workers with a fan-out threshold far below the row counts used here.
func parOpts() []gluenail.Option {
	return []gluenail.Option{
		gluenail.WithParallelism(8),
		gluenail.WithParallelThreshold(16),
	}
}

func rowsEqual(t *testing.T, label string, seq, par [][]gluenail.Value) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: sequential produced %d rows, parallel %d", label, len(seq), len(par))
	}
	for i := range seq {
		if len(seq[i]) != len(par[i]) {
			t.Fatalf("%s: row %d arity differs", label, i)
		}
		for c := range seq[i] {
			if !seq[i][c].Equal(par[i][c]) {
				t.Fatalf("%s: row %d col %d: sequential %v, parallel %v",
					label, i, c, seq[i][c], par[i][c])
			}
		}
	}
}

// TestParallelJoinDeterminism runs the E10 join workload sequentially and
// with the worker pool and compares the full result relation.
func TestParallelJoinDeterminism(t *testing.T) {
	seq := bench.NewParallelJoinSystem(4000, 4, gluenail.WithParallelism(1))
	par := bench.NewParallelJoinSystem(4000, 4, parOpts()...)
	if err := bench.RunParJoin(seq); err != nil {
		t.Fatal(err)
	}
	if err := bench.RunParJoin(par); err != nil {
		t.Fatal(err)
	}
	sr, err := seq.Relation("out", 2)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := par.Relation("out", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr) == 0 {
		t.Fatal("join produced no rows; workload broken")
	}
	rowsEqual(t, "parjoin", sr, pr)
}

// aggProgram aggregates float measurements per group; mean and std_dev are
// floating-point folds, so any change in evaluation order shows up in the
// low bits of the results.
const aggProgram = `
edb v(G, X), out(G, M, S, C);
proc stats(:)
  out(G, M, S, C) := v(G, X) & group_by(G) & M = mean(X) & S = std_dev(X) & C = count(X).
  return(:) := out(_,_,_,_).
end
`

// TestParallelAggregateDeterminism checks bit-identical float aggregates
// between sequential and parallel execution.
func TestParallelAggregateDeterminism(t *testing.T) {
	build := func(opts ...gluenail.Option) *gluenail.System {
		sys := gluenail.New(opts...)
		if err := sys.Load(aggProgram); err != nil {
			t.Fatal(err)
		}
		rows := make([][]any, 0, 6000)
		for i := 0; i < 6000; i++ {
			rows = append(rows, []any{i % 23, float64(i%997) * 1.0001})
		}
		if err := sys.Assert("v", rows...); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	seq := build(gluenail.WithParallelism(1))
	par := build(parOpts()...)
	if _, err := seq.Call("main", "stats"); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Call("main", "stats"); err != nil {
		t.Fatal(err)
	}
	sr, err := seq.Relation("out", 4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := par.Relation("out", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr) != 23 {
		t.Fatalf("expected 23 groups, got %d", len(sr))
	}
	rowsEqual(t, "aggregate", sr, pr)
}

// TestParallelDedupCallDeterminism exercises duplicate elimination at a
// pipeline break followed by a procedure-call barrier (the E3 workload)
// under the worker pool.
func TestParallelDedupCallDeterminism(t *testing.T) {
	seq := bench.NewDupSystem(500, 8, gluenail.WithParallelism(1))
	par := bench.NewDupSystem(500, 8, parOpts()...)
	if err := bench.RunDup(seq); err != nil {
		t.Fatal(err)
	}
	if err := bench.RunDup(par); err != nil {
		t.Fatal(err)
	}
	sr, err := seq.Relation("out", 2)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := par.Relation("out", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr) == 0 {
		t.Fatal("dup workload produced no rows")
	}
	rowsEqual(t, "dedup+call", sr, pr)
	if s, p := seq.Stats().Exec.RowsDeduped, par.Stats().Exec.RowsDeduped; s != p {
		t.Errorf("RowsDeduped: sequential %d, parallel %d", s, p)
	}
}

// TestParallelRecursionDeterminism runs transitive closure (recursive
// NAIL!, uniondiff deltas, magic sets) under the worker pool and compares
// the sorted answers.
func TestParallelRecursionDeterminism(t *testing.T) {
	edges := bench.RandomEdges(400, 1200, 11)
	seq := bench.NewTCSystem(edges, gluenail.WithParallelism(1))
	par := bench.NewTCSystem(edges, parOpts()...)
	qs, err := seq.Query("tc(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	qp, err := par.Query("tc(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Rows) == 0 {
		t.Fatal("closure is empty")
	}
	rowsEqual(t, "tc", qs.Rows, qp.Rows)
}

// TestWorkerCountSweep pins result equality across a range of worker
// counts, not just 1 vs 8.
func TestWorkerCountSweep(t *testing.T) {
	var base [][]gluenail.Value
	for _, w := range []int{1, 2, 3, 5, 8, 16} {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			sys := bench.NewParallelJoinSystem(2000, 4,
				gluenail.WithParallelism(w), gluenail.WithParallelThreshold(16))
			if err := bench.RunParJoin(sys); err != nil {
				t.Fatal(err)
			}
			rows, err := sys.Relation("out", 2)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = rows
				return
			}
			rowsEqual(t, fmt.Sprintf("workers=%d", w), base, rows)
		})
	}
}
