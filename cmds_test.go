package gluenail

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// CLI integration tests: drive the three command-line tools end to end.

const cliProgram = `
edb edge(X,Y);
edge(1,2). edge(2,3). edge(3,4).
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
proc reach(X:Y)
  return(X:Y) := tc(X,Y).
end
`

func writeTemp(t *testing.T, name, contents string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		t.Fatalf("go %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	src := writeTemp(t, "tc.glue", cliProgram)
	out := runCmd(t, "run", "./cmd/gluenail", "-q", "tc(1,X)", src)
	for _, want := range []string{"X", "2", "3", "4", "(3 answers)"} {
		if !strings.Contains(out, want) {
			t.Errorf("query output missing %q:\n%s", want, out)
		}
	}
	// Boolean query.
	out = runCmd(t, "run", "./cmd/gluenail", "-q", "tc(1,4)", src)
	if !strings.Contains(out, "true") {
		t.Errorf("ground query should print true:\n%s", out)
	}
	out = runCmd(t, "run", "./cmd/gluenail", "-q", "tc(4,1)", src)
	if !strings.Contains(out, "false") {
		t.Errorf("failing ground query should print false:\n%s", out)
	}
}

func TestCLIEDBPersistFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	src := writeTemp(t, "tc.glue", cliProgram)
	edb := filepath.Join(filepath.Dir(src), "state.edb")
	// First run saves the EDB (source facts included).
	runCmd(t, "run", "./cmd/gluenail", "-edb", edb, "-q", "edge(X,Y)", src)
	if _, err := os.Stat(edb); err != nil {
		t.Fatalf("EDB image not written: %v", err)
	}
	// Second run with a fact-free source still sees the data.
	bare := writeTemp(t, "bare.glue", `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`)
	out := runCmd(t, "run", "./cmd/gluenail", "-edb", edb, "-q", "tc(1,X)", bare)
	if !strings.Contains(out, "(3 answers)") {
		t.Errorf("persisted EDB not reloaded:\n%s", out)
	}
}

func TestCLIPlanFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	src := writeTemp(t, "tc.glue", cliProgram)
	out := runCmd(t, "run", "./cmd/gluenail", "-plan", "main.reach", src)
	for _, want := range []string{"proc main.reach (1:1)", "call main.tc@bf"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
}

func TestCLINailc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	src := writeTemp(t, "tc.glue", cliProgram)
	out := runCmd(t, "run", "./cmd/nailc", "-adorn", "bf", "tc", src)
	for _, want := range []string{"proc tc@bf(B0:F0)", "m|tc|bf", "repeat", "until empty"} {
		if !strings.Contains(out, want) {
			t.Errorf("nailc output missing %q:\n%s", want, out)
		}
	}
	// Naive mode swaps the termination test.
	out = runCmd(t, "run", "./cmd/nailc", "-naive", "tc", src)
	if !strings.Contains(out, "unchanged(") {
		t.Errorf("naive nailc should use unchanged:\n%s", out)
	}
}

func TestCLIGlbenchSelect(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runCmd(t, "run", "./cmd/glbench", "-reps", "1", "-e", "E4")
	if !strings.Contains(out, "adaptive run-time index creation") {
		t.Errorf("glbench E4 output:\n%s", out)
	}
}

func TestCLIInteractiveLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	src := writeTemp(t, "tc.glue", cliProgram)
	cmd := exec.Command("go", "run", "./cmd/gluenail", "-i", src)
	cmd.Stdin = strings.NewReader("tc(1,X)\nbad syntax ((\nquit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("repl: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"?-", "(3 answers)", "error:"} {
		if !strings.Contains(text, want) {
			t.Errorf("repl output missing %q:\n%s", want, text)
		}
	}
}

func TestCLICSVFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	dir := t.TempDir()
	srcPath := writeTemp(t, "tc.glue", `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`)
	csvPath := filepath.Join(dir, "edges.csv")
	if err := os.WriteFile(csvPath, []byte("1,2\n2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.csv")
	out := runCmd(t, "run", "./cmd/gluenail",
		"-load-csv", "edge="+csvPath,
		"-save-csv", "edge/2="+outPath,
		"-q", "tc(1,X)", srcPath)
	if !strings.Contains(out, "(2 answers)") {
		t.Errorf("csv query output:\n%s", out)
	}
	saved, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(saved), "1,2") {
		t.Errorf("saved csv:\n%s", saved)
	}
}

func TestCLICall(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	// -call requires a 0-bound procedure.
	src := writeTemp(t, "main.glue", `
edb edge(X,Y);
edge(1,2).
proc dump(:)
  shown(X, Y) := edge(X, Y) & write(X, Y).
  return(:) := edge(_,_).
end
edb shown(X,Y);
`)
	out := runCmd(t, "run", "./cmd/gluenail", "-call", "main.dump", src)
	if !strings.Contains(out, "1 2") {
		t.Errorf("call output:\n%s", out)
	}
}
