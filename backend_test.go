package gluenail

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"testing/quick"
	"time"

	"gluenail/internal/storage"
)

// Storage-engine differential tests: the disk engine and the out-of-core
// spill path must be invisible in results — byte-identical answers to the
// main-memory engine on every program, at every worker count, and across
// a crash mid-spill.

// TestQuickBackendParity sweeps random programs through the main-memory
// engine, the disk engine, and the spill-configured scratch store at 1–8
// workers: every combination must agree row for row.
func TestQuickBackendParity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDerived := 1 + rng.Intn(3)
		program := genProgram(rng, nDerived)
		e0, e1 := genFacts(rng, 5, 6+rng.Intn(8))
		target := fmt.Sprintf("d%d", nDerived-1)
		queries := []string{
			fmt.Sprintf("%s(X, Y)", target),
			fmt.Sprintf("%s(%d, Y)", target, rng.Intn(5)),
		}
		backends := map[string][]Option{
			"mem":   nil,
			"disk":  {WithBackend("disk")},
			"spill": {WithSpill(t.TempDir(), 8)},
		}
		var ref []string
		var refName string
		for name, opts := range backends {
			for _, workers := range []int{1, 2, 4, 8} {
				all := append([]Option{WithParallelism(workers), WithParallelThreshold(2)}, opts...)
				sys := New(all...)
				if err := sys.Load(program); err != nil {
					t.Fatalf("seed %d: generated program invalid: %v\n%s", seed, err, program)
				}
				sys.Assert("e0", e0...)
				sys.Assert("e1", e1...)
				var got []string
				for _, q := range queries {
					res, err := sys.Query(q)
					if err != nil {
						t.Fatalf("seed %d (%s/%dw): query %s: %v\n%s",
							seed, name, workers, q, err, program)
					}
					got = append(got, rowsKey(res))
				}
				sys.Close()
				if ref == nil {
					ref, refName = got, name
					continue
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Errorf("seed %d: %s/%dw disagrees with %s on %q:\n%s\nvs\n%s",
							seed, name, workers, refName, queries[i], got[i], ref[i])
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

const tcProgram = `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`

// TestOutOfCoreRecursion runs a recursive query whose working set is more
// than ten times the scratch memory budget. Without spill the cardinality
// budget aborts the query with ErrMemoryBudget; with spill the same
// budget becomes the spill trigger and the answers are byte-identical to
// an unbudgeted in-memory run.
func TestOutOfCoreRecursion(t *testing.T) {
	const chain = 300
	const budget = 24 // chain/budget > 10: the working set dwarfs memory
	edges := make([][]any, chain)
	for i := range edges {
		edges[i] = []any{i, i + 1}
	}
	run := func(opts ...Option) (*Result, error) {
		sys := New(opts...)
		defer sys.Close()
		if err := sys.Load(tcProgram); err != nil {
			t.Fatal(err)
		}
		if err := sys.Assert("edge", edges...); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Query("tc(0, X)")
		if err != nil {
			return nil, err
		}
		st := sys.Stats()
		if opts != nil {
			t.Logf("scratch: %d runs flushed, %d rows spilled, %d blocks read",
				st.Scratch.RunsFlushed, st.Scratch.RowsSpilled, st.Scratch.BlocksRead)
			if st.Scratch.RunsFlushed == 0 {
				t.Errorf("scratch store never spilled (budget %d, chain %d)", budget, chain)
			}
		}
		return res, nil
	}

	want, err := run() // unbudgeted, in-memory reference
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != chain {
		t.Fatalf("reference run: got %d rows, want %d", len(want.Rows), chain)
	}

	// The same budget without spill must abort: the spill path is what
	// turns the budget trip into out-of-core iteration.
	if _, err := run(WithBudget(Budget{MaxRelRows: budget})); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("budget without spill: got %v, want ErrMemoryBudget", err)
	}

	got, err := run(WithSpill(t.TempDir(), 0), WithBudget(Budget{MaxRelRows: budget}))
	if err != nil {
		t.Fatalf("out-of-core run: %v", err)
	}
	if rowsKey(got) != rowsKey(want) {
		t.Fatalf("out-of-core answers differ from in-memory:\n%s\nvs\n%s",
			rowsKey(got), rowsKey(want))
	}
}

// TestOutOfCoreDiskBackend is TestOutOfCoreRecursion's byte-identity check
// with the EDB itself on the disk engine as well: both stores out of core,
// same answers.
func TestOutOfCoreDiskBackend(t *testing.T) {
	const chain = 200
	edges := make([][]any, chain)
	for i := range edges {
		edges[i] = []any{i, i + 1}
	}
	var ref string
	for _, opts := range [][]Option{
		nil,
		{WithBackend("disk"), WithSpill(t.TempDir(), 16), WithBudget(Budget{MaxRelRows: 16})},
	} {
		sys := New(opts...)
		if err := sys.Load(tcProgram); err != nil {
			t.Fatal(err)
		}
		if err := sys.Assert("edge", edges...); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Query("tc(0, X)")
		if err != nil {
			t.Fatal(err)
		}
		sys.Close()
		if ref == "" {
			ref = rowsKey(res)
			continue
		}
		if rowsKey(res) != ref {
			t.Fatalf("disk+spill answers differ from in-memory:\n%s\nvs\n%s", rowsKey(res), ref)
		}
	}
}

const spillCrashEnv = "GLUENAIL_SPILL_CRASH_CHILD"

// TestSpillCrashChild is the helper process for TestSpillCrashRecovery:
// it grows a chain, re-deriving the full transitive closure into a
// durable relation after every edge, with scratch tables spilling at a
// tiny threshold — then gets SIGKILLed by the parent mid-work.
func TestSpillCrashChild(t *testing.T) {
	if os.Getenv(spillCrashEnv) == "" {
		t.Skip("helper process for TestSpillCrashRecovery")
	}
	dataDir := os.Getenv("GLUENAIL_CRASH_DATA")
	spillDir := os.Getenv("GLUENAIL_CRASH_SPILL")
	sys, err := Open(dataDir,
		WithFsync(FsyncAlways),
		WithSpill(spillDir, 16))
	if err != nil {
		fmt.Println("child-error:", err)
		os.Exit(1)
	}
	if err := sys.Load(`
edb edge(X,Y), out(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
proc step(:)
  out(X,Y) := tc(X,Y).
  return(:) := out(_,_).
end
`); err != nil {
		fmt.Println("child-error:", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		if err := sys.Assert("edge", []any{i, i + 1}); err != nil {
			fmt.Println("child-error:", err)
			os.Exit(1)
		}
		if _, err := sys.Call("main", "step"); err != nil {
			fmt.Println("child-error:", err)
			os.Exit(1)
		}
		fmt.Printf("committed %d\n", i)
	}
}

// TestSpillCrashRecovery SIGKILLs a process mid-spill and checks both
// recovery invariants: the durable state recovers to a statement-boundary
// prefix (the out relation is the exact transitive closure of some prefix
// of the asserted chain — never a partial statement), and the dead
// process's spill directories are swept on the next startup.
func TestSpillCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash test")
	}
	dataDir := t.TempDir()
	spillDir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestSpillCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		spillCrashEnv+"=1",
		"GLUENAIL_CRASH_DATA="+dataDir,
		"GLUENAIL_CRASH_SPILL="+spillDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Let the child commit enough statements that its transitive closure
	// re-derivations are spilling, then kill it without warning.
	sc := bufio.NewScanner(stdout)
	committed := -1
	deadline := time.After(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "child-error:") {
			t.Fatalf("child failed before kill: %s", line)
		}
		if n, err := fmt.Sscanf(line, "committed %d", &committed); n == 1 && err == nil && committed >= 40 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("child never reached 40 committed statements")
		default:
		}
	}
	if committed < 40 {
		t.Fatalf("child exited early (last committed %d): %v", committed, sc.Err())
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	childPid := cmd.Process.Pid

	// The child's spill directories survived the kill.
	orphans := countSpillDirs(t, spillDir, childPid)
	if orphans == 0 {
		t.Fatalf("child (pid %d) left no spill directories; spilling never engaged", childPid)
	}

	// Recover. Startup must sweep the dead child's spill directories.
	sys, err := Open(dataDir, WithSpill(spillDir, 16))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer sys.Close()
	if n := countSpillDirs(t, spillDir, childPid); n != 0 {
		t.Errorf("%d spill directories of dead pid %d survived the startup sweep", n, childPid)
	}

	// The recovered EDB is a statement-boundary prefix: edge is the exact
	// chain 0..k, with at least every edge whose commit the parent saw.
	edgeRows, err := sys.Relation("edge", 2)
	if err != nil {
		t.Fatal(err)
	}
	k := len(edgeRows)
	if k <= committed {
		t.Fatalf("recovered %d edges, child reported %d committed (FsyncAlways)", k, committed)
	}
	for i, row := range edgeRows {
		if row[0].Int() != int64(i) || row[1].Int() != int64(i+1) {
			t.Fatalf("recovered edge[%d] = (%v,%v), want (%d,%d): not a chain prefix",
				i, row[0], row[1], i, i+1)
		}
	}

	// out must be the exact closure of SOME prefix of the chain — the
	// closure over edges 0..j is precisely {(a,b) : 0 <= a < b <= j}, so a
	// torn statement (partial closure) cannot masquerade as a boundary.
	outRows, err := sys.Relation("out", 2)
	if err != nil {
		t.Fatal(err)
	}
	var j int64
	for _, row := range outRows {
		if row[1].Int() > j {
			j = row[1].Int()
		}
	}
	if j > int64(k) {
		t.Fatalf("out reaches node %d but only %d edges recovered", j, k)
	}
	want := map[[2]int64]bool{}
	for a := int64(0); a < j; a++ {
		for b := a + 1; b <= j; b++ {
			want[[2]int64{a, b}] = true
		}
	}
	if len(outRows) != len(want) {
		t.Fatalf("out has %d rows; closure of prefix 0..%d has %d: not a statement boundary",
			len(outRows), j, len(want))
	}
	for _, row := range outRows {
		if !want[[2]int64{row[0].Int(), row[1].Int()}] {
			t.Fatalf("out contains (%v,%v), not in the closure of prefix 0..%d",
				row[0], row[1], j)
		}
	}
}

// countSpillDirs counts spill directories under dir owned by pid.
func countSpillDirs(t *testing.T, dir string, pid int) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), fmt.Sprintf("spill-%d-", pid)) {
			n++
		}
	}
	return n
}

// TestSpillDirOverlapRefused checks the startup-hygiene guard: a spill
// directory that coincides with or nests the data directory is refused
// with an actionable error instead of letting one store's sweep eat the
// other's files.
func TestSpillDirOverlapRefused(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct{ data, spill string }{
		{dir, dir},
		{dir, dir + "/spill"},
		{dir + "/data", dir},
	} {
		sys := New(WithDurability(tc.data), WithSpill(tc.spill, 16))
		_, err := sys.Query("x(1)")
		if err == nil || !strings.Contains(err.Error(), "directory") {
			t.Errorf("data=%s spill=%s: got %v, want overlap refusal", tc.data, tc.spill, err)
		}
		sys.Close()
	}
	// Disjoint directories are fine.
	sys := New(WithDurability(dir+"/a"), WithSpill(dir+"/b", 16))
	if err := sys.Assert("x", []any{1}); err != nil {
		t.Errorf("disjoint dirs refused: %v", err)
	}
	sys.Close()
}

const bulkCrashEnv = "GLUENAIL_BULK_CRASH_CHILD"

// TestBulkCrashChild is the helper process for TestBulkLoadCrashRecovery:
// it asserts batches large enough to take the WAL-bypassing bulk path,
// one batch per statement, until the parent SIGKILLs it.
func TestBulkCrashChild(t *testing.T) {
	if os.Getenv(bulkCrashEnv) == "" {
		t.Skip("helper process for TestBulkLoadCrashRecovery")
	}
	sys, err := Open(os.Getenv("GLUENAIL_BULK_DATA"),
		WithBackend("disk"),
		WithFsync(FsyncAlways))
	if err != nil {
		fmt.Println("child-error:", err)
		os.Exit(1)
	}
	if err := sys.Load(`edb edge(X,Y);`); err != nil {
		fmt.Println("child-error:", err)
		os.Exit(1)
	}
	n := storage.BulkThreshold
	for b := 0; ; b++ {
		rows := make([][]any, n)
		for j := 0; j < n; j++ {
			rows[j] = []any{b*n + j, b}
		}
		if err := sys.Assert("edge", rows...); err != nil {
			fmt.Println("child-error:", err)
			os.Exit(1)
		}
		fmt.Printf("committed %d\n", b)
	}
}

// TestBulkLoadCrashRecovery SIGKILLs a process mid-bulk-ingest and checks
// the recovered store is a statement-boundary prefix: whole batches only
// (the manifest is the bulk path's durability point; a half-built batch
// must be swept), in exact insertion order.
func TestBulkLoadCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash test")
	}
	dataDir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestBulkCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		bulkCrashEnv+"=1",
		"GLUENAIL_BULK_DATA="+dataDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	committed := -1
	deadline := time.After(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "child-error:") {
			t.Fatalf("child failed before kill: %s", line)
		}
		if n, err := fmt.Sscanf(line, "committed %d", &committed); n == 1 && err == nil && committed >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("child never committed 3 bulk batches")
		default:
		}
	}
	if committed < 3 {
		t.Fatalf("child exited early (last committed %d): %v", committed, sc.Err())
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	sys, err := Open(dataDir, WithBackend("disk"))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer sys.Close()
	rows, err := sys.Relation("edge", 2)
	if err != nil {
		t.Fatal(err)
	}
	n := storage.BulkThreshold
	if len(rows)%n != 0 {
		t.Fatalf("recovered %d rows: not a whole number of %d-row batches", len(rows), n)
	}
	if k := len(rows) / n; k <= committed {
		t.Fatalf("recovered %d batches, child reported %d committed (FsyncAlways)", k, committed)
	}
	for i, row := range rows {
		if row[0].Int() != int64(i) || row[1].Int() != int64(i/n) {
			t.Fatalf("recovered row %d = (%v,%v), want (%d,%d): not an insertion-order prefix",
				i, row[0], row[1], i, i/n)
		}
	}
}
