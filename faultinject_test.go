package gluenail

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"gluenail/internal/storage/fsio"
)

// System-level fault containment: a disk fault or corrupt block inside a
// statement must surface as a typed error on that statement only — the
// store degrades to read-only, but the System is NOT poisoned and reads
// keep answering.

// TestDiskFaultDegradesSystemNotPoisoned injects ENOSPC into the disk
// backend's run writes through the public WithFS seam and checks the
// failure contract end to end.
func TestDiskFaultDegradesSystemNotPoisoned(t *testing.T) {
	ffs := fsio.NewFaultFS(fsio.OS)
	sys := New(WithBackend("disk"), WithFS(ffs))
	defer sys.Close()

	if err := sys.Load(`edb edge(X,Y); edb big(X,Y);`); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("edge", []any{1, 2}, []any{2, 3}); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(fsio.Fault{Op: fsio.OpWrite, Path: "run-", Err: syscall.ENOSPC})

	// A bulk-size batch goes through the run-writing path and hits the
	// fault; the statement fails typed, nothing panics out.
	big := make([][]any, 4096)
	for i := range big {
		big[i] = []any{i, i}
	}
	err := sys.Assert("big", big...)
	if !errors.Is(err, ErrDiskFault) {
		t.Fatalf("faulted bulk assert: got %v, want ErrDiskFault", err)
	}
	if sys.Degraded() == nil {
		t.Fatal("System.Degraded() = nil after a write fault")
	}

	// Not poisoned: reads still answer from the surviving state.
	res, qerr := sys.Query("edge(1, X)")
	if qerr != nil {
		t.Fatalf("query after fault: %v", qerr)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("query after fault: %d rows, want 1", len(res.Rows))
	}
	if _, rerr := sys.Relation("edge", 2); rerr != nil {
		t.Fatalf("relation dump after fault: %v", rerr)
	}

	// Further writes are refused typed — read-only degraded, not crashed.
	if err := sys.Assert("edge", []any{9, 9}); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("degraded assert: got %v, want ErrDiskFault", err)
	}
	if err := sys.Retract("edge", []any{1, 2}); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("degraded retract: got %v, want ErrDiskFault", err)
	}
}

// TestCorruptBlockContainedNotPoisoned flips tuple bytes in a durable
// run and checks a query over the damaged relation fails with a typed
// ErrCorrupt while queries over healthy relations keep working — the
// statement is contained at its boundary instead of poisoning the VM.
func TestCorruptBlockContainedNotPoisoned(t *testing.T) {
	dataDir := t.TempDir()
	sys, err := Open(dataDir, WithBackend("disk"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(`edb edge(X,Y); edb ok(X);`); err != nil {
		t.Fatal(err)
	}
	big := make([][]any, 4096)
	for i := range big {
		big[i] = []any{i, i + 1}
	}
	if err := sys.Assert("edge", big...); err != nil {
		t.Fatal(err)
	}
	if err := sys.Assert("ok", []any{7}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	runs, err := filepath.Glob(filepath.Join(dataDir, "store", "run-*.grn"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no durable runs found: %v %v", runs, err)
	}
	f, err := os.OpenFile(runs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the first block's payload: past the run magic,
	// arity varint, and the 8-byte frame header.
	var b [1]byte
	off := int64(len("GLUENAIL-RUN2\n") + 1 + 8 + 5)
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x08
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sys2, err := Open(dataDir, WithBackend("disk"))
	if err != nil {
		t.Fatalf("reopen with lazily-read damage: %v", err)
	}
	defer sys2.Close()
	if err := sys2.Load(`edb edge(X,Y); edb ok(X);`); err != nil {
		t.Fatal(err)
	}

	_, qerr := sys2.Query("edge(X, Y)")
	if !errors.Is(qerr, ErrCorrupt) {
		t.Fatalf("query over corrupt run: got %v, want ErrCorrupt", qerr)
	}

	// The poison line: the next statement must run normally.
	res, qerr := sys2.Query("ok(X)")
	if qerr != nil {
		t.Fatalf("system poisoned by contained corruption: %v", qerr)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 {
		t.Fatalf("healthy relation misread after contained corruption: %v", res.Rows)
	}

	// ScrubEDB names the damage; with repair it quarantines the run and
	// the relation serves its survivors.
	findings, err := sys2.ScrubEDB(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("ScrubEDB found nothing on a damaged store")
	}
	// Quarantine granularity is the run: the damaged run's rows are gone,
	// and the relation answers again without error.
	rows, err := sys2.Relation("edge", 2)
	if err != nil {
		t.Fatalf("relation dump after scrub: %v", err)
	}
	if len(rows) >= 4096 {
		t.Fatalf("scrubbed relation still has all %d rows", len(rows))
	}
	if _, qerr := sys2.Query("edge(X, Y)"); qerr != nil {
		t.Fatalf("query after quarantine: %v", qerr)
	}
}
