package gluenail_test

import (
	"fmt"
	"log"

	"gluenail"
)

// The canonical use: declare an EDB relation, define rules, assert facts,
// query with a bound argument (compiled via magic sets).
func Example() {
	sys := gluenail.New()
	err := sys.Load(`
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`)
	if err != nil {
		log.Fatal(err)
	}
	sys.Assert("edge", []any{1, 2}, []any{2, 3})
	res, err := sys.Query("tc(1, X)")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// 2
	// 3
}

// Glue procedures are called set-at-a-time: one call covers all the input
// bindings (§4 of the paper).
func ExampleSystem_Call() {
	sys := gluenail.New()
	err := sys.Load(`
edb e(X,Y);
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & e(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & e(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
`)
	if err != nil {
		log.Fatal(err)
	}
	sys.Assert("e", []any{1, 2}, []any{2, 3}, []any{7, 8})
	rows, err := sys.Call("main", "tc_e", []any{1}, []any{7})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%v -> %v\n", r[0], r[1])
	}
	// Output:
	// 1 -> 2
	// 1 -> 3
	// 7 -> 8
}

// HiLog set-valued attributes: predicate names are values, and S(X)
// enumerates the named set (§5 of the paper).
func ExampleSystem_Query_hilog() {
	sys := gluenail.New()
	err := sys.Load(`
edb attends(N, ID);
students(ID)(N) :- attends(N, ID).
`)
	if err != nil {
		log.Fatal(err)
	}
	sys.Assert("attends", []any{"wilson", "cs99"}, []any{"green", "cs99"})
	res, err := sys.Query("students(cs99)(N)")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// green
	// wilson
}

// Foreign procedures make Go functions usable as Glue subgoals — the
// foreign-language interface of §10.
func ExampleSystem_Register() {
	sys := gluenail.New()
	err := sys.Register("square", 1, 1, false,
		func(in [][]gluenail.Value) ([][]gluenail.Value, error) {
			var out [][]gluenail.Value
			for _, row := range in {
				n := row[0].Int()
				out = append(out, []gluenail.Value{row[0], gluenail.Int(n * n)})
			}
			return out, nil
		})
	if err != nil {
		log.Fatal(err)
	}
	sys.Load(`edb n(X);`)
	sys.Assert("n", []any{3}, []any{4})
	res, err := sys.Query("n(X) & square(X, Y)")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%v^2 = %v\n", row[0], row[1])
	}
	// Output:
	// 3^2 = 9
	// 4^2 = 16
}

// Aggregation with grouping (§3.3.1).
func ExampleSystem_Query_aggregation() {
	sys := gluenail.New()
	sys.Load(`
edb grade(Course, Student, G);
avg(C, A) :- grade(C, S, G) & group_by(C) & A = mean(G).
`)
	sys.Assert("grade",
		[]any{"db", "ann", 80}, []any{"db", "bob", 90}, []any{"os", "cy", 70})
	res, err := sys.Query("avg(C, A)")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%v: %v\n", row[0], row[1])
	}
	// Output:
	// db: 85.0
	// os: 70.0
}
