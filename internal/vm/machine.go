// Package vm executes compiled Glue programs. It implements both execution
// strategies discussed in §9: the default pipelined (nested-join) strategy,
// which streams each supplementary row through a segment's operators and
// materializes only at pipeline breaks, and a fully materialized baseline
// that stores the supplementary relation after every operator. Procedure
// frames hold per-invocation local relations (§4), created in the temp
// store so back-end experiments see the cost of short-lived temporaries.
package vm

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"

	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// ExecStats counts executor work for the experiments. Counters are bumped
// with atomic adds (worker goroutines account their work concurrently);
// read a snapshot only between statements or after execution finishes.
type ExecStats struct {
	StmtsExecuted  int64
	LoopIterations int64
	PipelineBreaks int64
	// TuplesMaterialized counts rows copied into materialized supplementary
	// relations (every op under the materialized strategy; barriers and
	// parallel driver expansion under the pipelined strategy).
	TuplesMaterialized int64
	RowsDeduped        int64
	ProcCalls          int64
	DynDispatches      int64
	// GovernorChecks counts cooperative governor polls (cancellation +
	// budget checks); E14 uses it to attribute the governor's overhead.
	GovernorChecks int64
}

// Machine executes a compiled program against an EDB store.
type Machine struct {
	Prog     *plan.Program
	EDB      storage.Store
	Temp     storage.Store
	Builtins *Registry
	Out      io.Writer
	In       *bufio.Reader
	// Materialized selects the fully materialized execution strategy
	// (the E2 baseline); the default is pipelined.
	Materialized bool
	// LoopLimit bounds repeat-loop iterations (0 = unlimited); exceeded
	// loops return an error rather than hanging.
	LoopLimit int
	// Parallelism is the worker count for intra-segment morsel
	// parallelism: 0 uses GOMAXPROCS, 1 forces the sequential path, and a
	// negative value is treated as 1. Rows within a segment are
	// independent between pipeline breaks, so segments fan out across
	// workers; per-morsel outputs merge in input order, keeping results
	// byte-identical to sequential execution.
	Parallelism int
	// ParallelThreshold is the minimum (projected) supplementary-row count
	// before a segment fans out to workers (0 = default 128); smaller
	// segments stay sequential so micro-queries don't pay goroutine
	// overhead.
	ParallelThreshold int
	// StatsOrdering enables cost-based reordering of each segment's pipe
	// ops at statement-prepare time, driven by live relation statistics and
	// observed per-op selectivities; New enables it. Disabled, the compiled
	// (greedy or textual) op order executes — still through the
	// physical-plan layer, so instrumentation is identical.
	StatsOrdering bool
	// StringKeyKernels routes duplicate elimination, aggregation grouping,
	// and call-barrier probing through the legacy kernels that materialize
	// an encoded string key per row, instead of the hash-first
	// open-addressing kernels. Kept as the E13 ablation baseline; results
	// are byte-identical either way.
	StringKeyKernels bool
	// PlanCache enables the prepared-plan cache: a statement's physical
	// plan is reused across executions while the stats epochs of its
	// referenced relations hold and executor selectivity feedback stays
	// within the drift threshold, skipping the greedy reorder and op
	// cloning on the repeated-query hot path. New enables it; disabled, the
	// planner re-derives every plan (the pre-cache baseline). Plans are
	// identical either way — a stale plan can only be slower, never wrong.
	PlanCache bool
	// BatchKernels routes segment pipelines through the vectorized
	// batch-at-a-time kernels (batch.go): column-major register vectors,
	// selection vectors for filters, and batched probes, processed
	// op-at-a-time over whole morsels instead of tuple-at-a-time recursion.
	// New enables it; disabled, the scalar nested-loop path runs (the
	// pre-vectorization baseline). Results are byte-identical either way.
	BatchKernels bool
	// Trace, when non-nil, receives one line per statement execution and
	// procedure call — the executor's narration of §3.2's evaluation.
	Trace io.Writer
	// Commit, when non-nil, is invoked after every top-level statement —
	// a statement executed at procedure-call depth 1 — marking the
	// durability commit points: the write-ahead log seals the EDB deltas
	// of the statement into one atomic batch. Statements of nested
	// procedure calls commit with the outer statement that invoked them.
	Commit func() error
	// Abort, when non-nil, is invoked when a top-level statement fails
	// (error, cancellation, budget trip, or contained panic): the WAL
	// recorder discards the statement's partial EDB deltas so the next
	// commit seals only whole statements.
	Abort func()
	// MaxDepth bounds procedure-call nesting (0 = unlimited): a
	// self-recursive procedure fails with ErrDepthLimit instead of
	// overflowing the goroutine stack. The public API defaults it to
	// DefaultMaxDepth.
	MaxDepth int
	// MaxTuples bounds the total tuples inserted (EDB + temp) during one
	// top-level call (0 = unlimited); exceeding it fails with
	// ErrMemoryBudget at the next governor check.
	MaxTuples int64
	// MaxRelRows bounds the cardinality of any single relation written by
	// the program (0 = unlimited); checked after every head application
	// and in-body update.
	MaxRelRows int
	Stats      ExecStats

	frameID   uint64
	callDepth int
	// gov is the active execution governor, installed for the duration of
	// one top-level CallProcContext; nil when the call is ungoverned.
	// curProc/curStmt track the active statement for error labelling.
	// poisoned marks the machine unusable after a contained panic: the
	// panic may have unwound mid-mutation, so storage invariants are no
	// longer trusted and further calls are rejected with ErrPoisoned.
	// Governor and budget errors do NOT poison — they abort at clean
	// boundaries and the machine stays reusable.
	gov          *governor
	curProc      string
	curStmt      string
	poisoned     bool
	poisonDetail string
	// profiles accumulates per-statement execution feedback (per-op tuple
	// counts); lastPhys remembers the physical plan each statement last
	// executed with. Both are touched only by the executing goroutine —
	// statement-level execution is sequential, parallelism lives inside
	// segments.
	profiles map[*plan.Stmt]*plan.StmtProfile
	lastPhys map[*plan.Stmt]*plan.PhysPlan
	// planCache holds the prepared plans served when PlanCache is on; same
	// single-goroutine contract as profiles.
	planCache *plan.PlanCache
}

// New returns a machine over the program and EDB store, with frame-local
// relations allocated from temp. A nil temp uses a private MemStore; a nil
// registry uses the standard builtins.
func New(prog *plan.Program, edb, temp storage.Store, reg *Registry) *Machine {
	if temp == nil {
		temp = storage.NewMemStore(storage.IndexAdaptive)
	}
	if reg == nil {
		reg = NewRegistry()
	}
	return &Machine{
		Prog:          prog,
		EDB:           edb,
		Temp:          temp,
		Builtins:      reg,
		Out:           os.Stdout,
		In:            bufio.NewReader(strings.NewReader("")),
		StatsOrdering: true,
		PlanCache:     true,
		BatchKernels:  true,
		profiles:      make(map[*plan.Stmt]*plan.StmtProfile),
		lastPhys:      make(map[*plan.Stmt]*plan.PhysPlan),
		planCache:     plan.NewPlanCache(),
	}
}

// ResetProfiles clears the accumulated per-op execution counters and the
// cached physical plans, so EXPLAIN ANALYZE measures exactly one run. The
// prepared-plan cache resets with them: its drift check compares cached
// estimates against exactly these profiles.
func (m *Machine) ResetProfiles() {
	m.profiles = make(map[*plan.Stmt]*plan.StmtProfile)
	m.lastPhys = make(map[*plan.Stmt]*plan.PhysPlan)
	m.planCache.Reset()
}

// PlanCacheStats snapshots the prepared-plan cache's hit/miss/invalidation
// counters.
func (m *Machine) PlanCacheStats() plan.CacheStats { return m.planCache.Stats() }

// profileFor returns (allocating on first use) the feedback profile of a
// statement.
func (m *Machine) profileFor(st *plan.Stmt) *plan.StmtProfile {
	p := m.profiles[st]
	if p == nil {
		p = plan.NewStmtProfile(st.Steps)
		m.profiles[st] = p
	}
	return p
}

// planner builds the frame's physical planner: statistics resolve against
// the frame's relation namespace (locals shadow the EDB), so repeat-loop
// re-planning sees semi-naive deltas shrink.
func (f *frame) planner() *plan.Planner {
	return &plan.Planner{Stats: f, Reorder: f.m.StatsOrdering}
}

// RelStats implements plan.StatsSource for statement-prepare-time planning.
// Never called concurrently with a writer: planning happens between
// statements, on the executing goroutine.
func (f *frame) RelStats(ref plan.RelRef) (plan.RelEstimate, bool) {
	if !ref.Name.IsGround() {
		return plan.RelEstimate{}, false
	}
	rel, err := f.resolveRead(ref, nil)
	if err != nil || rel == nil {
		return plan.RelEstimate{}, false
	}
	return relEstimate(rel), true
}

// relEstimate builds the planner's statistics snapshot for one relation:
// cardinality, per-column distinct estimates, and — when the relation's
// backend reports one (storage.Coster, the disk engine) — the per-row
// access-cost factors the greedy orderer weighs estimates with.
func relEstimate(rel storage.Rel) plan.RelEstimate {
	re := plan.RelEstimate{Rows: rel.Len(), Distinct: make([]int, rel.Arity())}
	for i := range re.Distinct {
		re.Distinct[i] = rel.DistinctEst(i)
	}
	if c, ok := rel.(storage.Coster); ok {
		p := c.CostProfile()
		re.ScanCost, re.LookupCost, re.Engine = p.Scan, p.Lookup, p.Engine
	}
	return re
}

// RuntimeError wraps an execution failure with procedure context.
type RuntimeError struct {
	ProcID string
	Err    error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("in %s: %v", e.ProcID, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// tracef writes one trace line when tracing is enabled.
func (m *Machine) tracef(format string, args ...any) {
	if m.Trace != nil {
		fmt.Fprintf(m.Trace, format+"\n", args...)
	}
}

// CallProc invokes a compiled procedure set-at-a-time: in holds the tuples
// of the procedure's in relation (for a 0-bound procedure pass a single
// empty tuple). It returns the tuples assigned to return.
func (m *Machine) CallProc(id string, in []term.Tuple) ([]term.Tuple, error) {
	return m.CallProcContext(context.Background(), id, in)
}

// CallProcContext is CallProc under an execution governor: the context's
// cancellation/deadline and the machine's budgets are polled cooperatively
// at instruction boundaries, repeat-loop iterations, morsel claims, and
// every govCheckRows emitted rows, and a trip aborts at a clean statement
// boundary (the failed statement's WAL deltas are discarded via Abort, so
// durable state stays a statement-boundary prefix). A top-level call also
// arms panic containment: an internal panic is converted to a
// *GovernorError wrapping ErrPanic that carries the active statement
// label, and the machine is poisoned — subsequent calls fail with
// ErrPoisoned because the panic may have unwound mid-mutation. Governor
// and budget failures do not poison; the machine stays reusable.
func (m *Machine) CallProcContext(ctx context.Context, id string, in []term.Tuple) (out []term.Tuple, err error) {
	if m.callDepth == 0 {
		if m.poisoned {
			return nil, &GovernorError{Limit: ErrPoisoned, Detail: m.poisonDetail}
		}
		m.installGovernor(ctx)
		defer func() {
			m.gov = nil
			if r := recover(); r != nil {
				// Storage faults ride the panic channel (the Rel read
				// interface has no error returns) but are not VM bugs:
				// the store already contained the damage — a degraded
				// engine or a typed corruption error — and the machine's
				// own state unwound at a statement boundary like any
				// governed abort. Convert without poisoning so the
				// session keeps serving reads.
				if perr, ok := r.(error); ok &&
					(errors.Is(perr, storage.ErrDiskFault) || errors.Is(perr, storage.ErrCorrupt)) {
					if m.Abort != nil {
						m.Abort()
					}
					out, err = nil, &GovernorError{Limit: perr,
						Proc: m.curProc, Stmt: m.curStmt}
					m.curProc, m.curStmt = "", ""
					return
				}
				m.poisoned = true
				m.poisonDetail = fmt.Sprint(r)
				if m.Abort != nil {
					m.Abort()
				}
				out, err = nil, &GovernorError{Limit: ErrPanic,
					Proc: m.curProc, Stmt: m.curStmt, Detail: fmt.Sprint(r)}
			}
			m.curProc, m.curStmt = "", ""
		}()
	}
	return m.callProc(id, in)
}

func (m *Machine) callProc(id string, in []term.Tuple) ([]term.Tuple, error) {
	proc, ok := m.Prog.Procs[id]
	if !ok {
		return nil, fmt.Errorf("vm: no procedure %q", id)
	}
	m.tracef("call %s with %d input tuple(s)", id, len(in))
	atomic.AddInt64(&m.Stats.ProcCalls, 1)
	m.callDepth++
	defer func() { m.callDepth-- }()
	if m.MaxDepth > 0 && m.callDepth > m.MaxDepth {
		return nil, &RuntimeError{ProcID: id, Err: m.govErr(ErrDepthLimit,
			fmt.Sprintf("call depth %d exceeds limit %d", m.callDepth, m.MaxDepth))}
	}
	m.frameID++
	f := &frame{m: m, proc: proc, id: m.frameID}
	defer f.drop()
	f.inRel = m.Temp.Ensure(f.relName("in"), proc.Bound)
	f.retRel = m.Temp.Ensure(f.relName("return"), proc.Bound+proc.Free)
	for _, t := range in {
		if len(t) != proc.Bound {
			return nil, &RuntimeError{ProcID: id, Err: fmt.Errorf(
				"input tuple arity %d, procedure expects %d", len(t), proc.Bound)}
		}
		f.inRel.Insert(t)
	}
	f.locals = make(map[string]storage.Rel, len(proc.Locals))
	for _, l := range proc.Locals {
		f.locals[l.Name] = m.Temp.Ensure(f.relName(l.Name), l.Arity)
	}
	if err := f.execInstrs(proc.Body); err != nil {
		return nil, &RuntimeError{ProcID: id, Err: err}
	}
	out := f.retRel.All()
	m.tracef("return from %s: %d tuple(s)", id, len(out))
	return out, nil
}

// frame is one procedure invocation.
type frame struct {
	m      *Machine
	proc   *plan.Proc
	id     uint64
	locals map[string]storage.Rel
	inRel  storage.Rel
	retRel storage.Rel
	// unchanged holds per-site version memory for the unchanged builtin.
	unchanged map[int]uint64
	returned  bool
	// scratch pools open-addressing hash tables (hashkit.go) across the
	// statements — and repeat-loop iterations — this frame executes;
	// statements run sequentially per frame, so no locking.
	scratch []*hashTable
	// hashBuf pools the bulk row-hash vector of the batched dedup kernel
	// (batch.go), under the same sequential-per-frame contract.
	hashBuf []uint64
}

// relName builds the unique temp-store name for a frame-local relation.
func (f *frame) relName(local string) term.Value {
	return term.Atom("$frame", term.NewInt(int64(f.id)), term.NewString(local))
}

func (f *frame) drop() {
	f.m.Temp.Drop(f.relName("in"), f.inRel.Arity())
	f.m.Temp.Drop(f.relName("return"), f.retRel.Arity())
	for _, l := range f.proc.Locals {
		f.m.Temp.Drop(f.relName(l.Name), l.Arity)
	}
}

func (f *frame) execInstrs(instrs []plan.Instr) error {
	for _, in := range instrs {
		if f.returned {
			return nil
		}
		// Instruction boundaries are the governor's primary check sites:
		// they bracket every statement and every WAL commit point, so a
		// cancelled call always aborts with whole statements committed.
		if err := f.m.pollGovernor(); err != nil {
			return err
		}
		switch in := in.(type) {
		case *plan.ExecStmt:
			if err := f.execStmt(in.S); err != nil {
				f.m.abortPoint()
				return err
			}
			if err := f.m.commitPoint(); err != nil {
				return err
			}
		case *plan.Loop:
			iters := 0
			for {
				atomic.AddInt64(&f.m.Stats.LoopIterations, 1)
				iters++
				if f.m.LoopLimit > 0 && iters > f.m.LoopLimit {
					return &GovernorError{Limit: ErrLoopLimit, Proc: f.proc.ID,
						Detail: fmt.Sprintf("repeat loop exceeded %d iterations", f.m.LoopLimit)}
				}
				if err := f.m.pollGovernor(); err != nil {
					return err
				}
				if err := f.execInstrs(in.Body); err != nil {
					return err
				}
				if f.returned {
					return nil
				}
				done := false
				for _, cond := range in.Until {
					ok, err := f.evalCond(cond)
					if err != nil {
						return err
					}
					if ok {
						done = true
						break
					}
				}
				if done {
					break
				}
			}
		}
	}
	return nil
}

// localRel resolves a frame-local relation by source name.
func (f *frame) localRel(name string) (storage.Rel, error) {
	switch name {
	case "in":
		return f.inRel, nil
	case "return":
		return f.retRel, nil
	}
	if r, ok := f.locals[name]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("no local relation %q", name)
}

// resolveRead resolves a relation reference for reading; a missing EDB
// relation reads as empty (nil Rel).
func (f *frame) resolveRead(ref plan.RelRef, regs []term.Value) (storage.Rel, error) {
	name, err := ref.Name.Build(regs)
	if err != nil {
		return nil, err
	}
	if ref.Space == plan.SpaceLocal {
		return f.localRel(name.Str())
	}
	rel, ok := f.m.EDB.Get(name, ref.Arity)
	if !ok {
		return nil, nil
	}
	return rel, nil
}

// resolveWrite resolves a relation reference for writing, creating EDB
// relations on demand.
func (f *frame) resolveWrite(ref plan.RelRef, regs []term.Value) (storage.Rel, error) {
	name, err := ref.Name.Build(regs)
	if err != nil {
		return nil, err
	}
	if ref.Space == plan.SpaceLocal {
		return f.localRel(name.Str())
	}
	return f.m.EDB.Ensure(name, ref.Arity), nil
}

// sortTuples orders tuples deterministically (builtin calls, output).
func sortTuples(ts []term.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// workerCount resolves the Parallelism knob to an actual worker count.
func (m *Machine) workerCount() int {
	switch {
	case m.Parallelism > 0:
		return m.Parallelism
	case m.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// fanOutThreshold resolves the ParallelThreshold knob.
func (m *Machine) fanOutThreshold() int {
	if m.ParallelThreshold > 0 {
		return m.ParallelThreshold
	}
	return defaultParallelThreshold
}

// commitPoint runs the Commit hook if this is a top-level statement
// boundary. A failed statement never reaches it, so its partial EDB
// effects stay uncommitted and are lost on crash — recovery always lands
// on a statement-boundary prefix.
func (m *Machine) commitPoint() error {
	if m.Commit == nil || m.callDepth != 1 {
		return nil
	}
	return m.Commit()
}
