package vm

import (
	"testing"

	"gluenail/internal/term"
)

// TestDedupKeyUnboundSentinel is the regression test for the dedup-key
// encoding of unbound registers: an unbound slot must produce a key
// distinct from every bound value, and shifting which register is unbound
// must change the key.
func TestDedupKeyUnboundSentinel(t *testing.T) {
	live := []int{0, 1}
	key := func(a, b term.Value) string {
		return string(appendDedupKey(nil, []term.Value{a, b}, live))
	}
	unbound := term.Value{}
	one := term.NewInt(1)
	if key(unbound, one) == key(one, unbound) {
		t.Error("swapping the unbound register did not change the dedup key")
	}
	if key(unbound, one) == key(one, one) {
		t.Error("unbound register aliased a bound value in the dedup key")
	}
	if key(unbound, unbound) != key(unbound, unbound) {
		t.Error("dedup key is not deterministic")
	}
}

// dedupInput builds rows over two live registers with every 4th row a
// duplicate of an earlier one and a sprinkling of unbound slots.
func dedupInput(n int) ([][]term.Value, []int) {
	rows := make([][]term.Value, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%4 == 3:
			rows = append(rows, cloneRow(rows[i-2]))
		case i%7 == 0:
			rows = append(rows, []term.Value{{}, term.NewInt(int64(i % 50))})
		default:
			rows = append(rows, []term.Value{
				term.NewInt(int64(i % 100)), term.NewInt(int64(i % 13)),
			})
		}
	}
	return rows, []int{0, 1}
}

// TestDedupParallelMatchesSequential checks that the hash-partitioned
// parallel dedup keeps exactly the rows, in exactly the order, of the
// sequential first-occurrence pass.
func TestDedupParallelMatchesSequential(t *testing.T) {
	const n = 2000
	seqRows, live := dedupInput(n)
	parRows, _ := dedupInput(n)

	seqM := &frame{m: &Machine{Parallelism: 1}}
	parM := &frame{m: &Machine{Parallelism: 8, ParallelThreshold: 64}}
	seq := seqM.dedupRows(seqRows, live)
	par := parM.dedupRows(parRows, live)

	if len(seq) != len(par) {
		t.Fatalf("sequential kept %d rows, parallel kept %d", len(seq), len(par))
	}
	for i := range seq {
		for r := range seq[i] {
			sv, pv := seq[i][r], par[i][r]
			if sv.IsZero() != pv.IsZero() || (!sv.IsZero() && !sv.Equal(pv)) {
				t.Fatalf("row %d differs: sequential %v, parallel %v", i, seq[i], par[i])
			}
		}
	}
	if got := seqM.m.Stats.RowsDeduped; got != parM.m.Stats.RowsDeduped {
		t.Errorf("RowsDeduped: sequential %d, parallel %d", got, parM.m.Stats.RowsDeduped)
	}
	if len(seq) == n {
		t.Fatal("test input contained no duplicates; nothing was exercised")
	}
}
