package vm

import (
	"fmt"
	"math"
	"sort"

	"gluenail/internal/ast"
	"gluenail/internal/plan"
	"gluenail/internal/term"
)

// applyAggregate computes the aggregate over the supplementary tuples —
// per §3.3, over every tuple, not over the projection, so duplicates count
// — partitioned by the group_by registers in effect. A bound destination
// register selects tuples whose aggregate equals it; an unbound one is
// extended onto every tuple of the group. Large row sets evaluate the
// per-row work (group keys, aggregate argument) across the worker pool;
// the fold itself stays a sequential in-order reduction so floating-point
// aggregates are bit-identical at every worker count.
func (f *frame) applyAggregate(b *plan.Aggregate, rows [][]term.Value,
	state *stmtState) ([][]term.Value, error) {
	workers := f.m.workerCount()
	par := workers > 1 && len(rows) >= f.m.fanOutThreshold()
	var groups [][]int // row indices per group, groups in first-seen order
	switch {
	case len(state.groupRegs) == 0:
		// No group_by in effect: every row is in the single group.
		all := make([]int, len(rows))
		for ri := range all {
			all[ri] = ri
		}
		groups = [][]int{all}
	case f.m.StringKeyKernels:
		groups = f.groupRowsStringKey(rows, state.groupRegs, par, workers)
	default:
		groups = f.groupRows(rows, state.groupRegs, par, workers)
	}
	vals := make([]term.Value, len(rows))
	evalRow := func(ri int, row []term.Value, _ func([]term.Value)) error {
		v, err := evalExpr(b.Arg, row)
		if err != nil {
			return err
		}
		vals[ri] = v
		return nil
	}
	if par {
		if _, err := f.parMapRows(rows, workers, evalRow); err != nil {
			return nil, err
		}
	} else {
		for ri, row := range rows {
			if err := evalRow(ri, row, nil); err != nil {
				return nil, err
			}
		}
	}
	var out [][]term.Value
	for _, idxs := range groups {
		gv := make([]term.Value, len(idxs))
		for i, ri := range idxs {
			gv[i] = vals[ri]
		}
		agg, err := aggregate(b.Op, gv)
		if err != nil {
			return nil, err
		}
		for _, ri := range idxs {
			row := rows[ri]
			if b.DestBound {
				ok, err := compareValues(ast.CmpEq, row[b.Dest], agg)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, row)
				}
			} else {
				cp := cloneRow(row)
				cp[b.Dest] = agg
				out = append(out, cp)
			}
		}
	}
	return out, nil
}

// groupRows partitions row indices by the values of the grouping
// registers, groups in first-seen order — the hash-first kernel: rows are
// hashed in place (a parallel pass for large row sets), a pooled
// open-addressing table maps each hash to its group, and collisions
// compare the live registers directly. No group-key bytes are built.
func (f *frame) groupRows(rows [][]term.Value, regs []int, par bool, workers int) [][]int {
	hashes := make([]uint64, len(rows))
	if par {
		ms := morsels(len(rows), workers)
		f.m.runMorsels(ms, workers, func(mi int) {
			for ri := ms[mi].start; ri < ms[mi].end; ri++ {
				hashes[ri] = rowHashLive(rows[ri], regs)
			}
		})
		if f.m.govTripped() {
			// Drained pool may have skipped morsels; redo sequentially so
			// grouping stays correct until the abort surfaces.
			for ri := range rows {
				hashes[ri] = rowHashLive(rows[ri], regs)
			}
		}
	} else {
		for ri := range rows {
			hashes[ri] = rowHashLive(rows[ri], regs)
		}
	}
	t := f.grabTable(len(rows))
	var groups [][]int
	cand := 0
	eq := func(g int32) bool { return rowsEqualLive(rows[groups[g][0]], rows[cand], regs) }
	for ri := range rows {
		cand = ri
		if g, found := t.findOrAdd(hashes[ri], int32(len(groups)), eq); found {
			groups[g] = append(groups[g], ri)
		} else {
			groups = append(groups, []int{ri})
		}
	}
	f.releaseTable(t)
	return groups
}

// aggregate computes one aggregate operator over the value list (§3.3).
// The arbitrary operator deterministically returns the smallest value.
func aggregate(op string, vals []term.Value) (term.Value, error) {
	if len(vals) == 0 {
		return term.Value{}, fmt.Errorf("aggregate %s over empty set", op)
	}
	switch op {
	case "count":
		return term.NewInt(int64(len(vals))), nil
	case "min", "arbitrary":
		best := vals[0]
		for _, v := range vals[1:] {
			if less, _ := numericLess(v, best); less {
				best = v
			}
		}
		return best, nil
	case "max":
		best := vals[0]
		for _, v := range vals[1:] {
			if less, _ := numericLess(best, v); less {
				best = v
			}
		}
		return best, nil
	case "sum", "product", "mean", "std_dev":
		fs := make([]float64, len(vals))
		allInt := true
		for i, v := range vals {
			x, ok := v.Num()
			if !ok {
				return term.Value{}, fmt.Errorf("%s over non-numeric value %v", op, v)
			}
			fs[i] = x
			if v.Kind() != term.Int {
				allInt = false
			}
		}
		// Canonical fold order: floating-point folds are not associative,
		// and the row order within a group depends on the join order the
		// physical planner chose. Sorting the values first makes every
		// ordering (textual, greedy, stats-driven) produce bit-identical
		// aggregates.
		sort.Float64s(fs)
		switch op {
		case "sum":
			s := 0.0
			for _, x := range fs {
				s += x
			}
			if allInt {
				return term.NewInt(int64(s)), nil
			}
			return term.NewFloat(s), nil
		case "product":
			p := 1.0
			for _, x := range fs {
				p *= x
			}
			if allInt {
				return term.NewInt(int64(p)), nil
			}
			return term.NewFloat(p), nil
		case "mean":
			s := 0.0
			for _, x := range fs {
				s += x
			}
			return term.NewFloat(s / float64(len(fs))), nil
		default: // std_dev (population)
			s := 0.0
			for _, x := range fs {
				s += x
			}
			mu := s / float64(len(fs))
			ss := 0.0
			for _, x := range fs {
				ss += (x - mu) * (x - mu)
			}
			return term.NewFloat(math.Sqrt(ss / float64(len(fs)))), nil
		}
	}
	return term.Value{}, fmt.Errorf("unknown aggregate operator %q", op)
}

// numericLess orders values: numerics numerically, anything else by the
// term order.
func numericLess(a, b term.Value) (bool, error) {
	af, aok := a.Num()
	bf, bok := b.Num()
	if aok && bok {
		return af < bf, nil
	}
	return a.Compare(b) < 0, nil
}
