package vm

import (
	"bufio"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gluenail/internal/ast"
	"gluenail/internal/plan"
	"gluenail/internal/term"
)

func bufioReader(s string) *bufio.Reader {
	return bufio.NewReader(strings.NewReader(s))
}

func TestEvalArith(t *testing.T) {
	i := func(v int64) term.Value { return term.NewInt(v) }
	f := func(v float64) term.Value { return term.NewFloat(v) }
	cases := []struct {
		op   ast.BinOp
		l, r term.Value
		want term.Value
	}{
		{ast.OpAdd, i(2), i(3), i(5)},
		{ast.OpAdd, i(2), f(0.5), f(2.5)},
		{ast.OpSub, i(2), i(5), i(-3)},
		{ast.OpMul, f(1.5), i(2), f(3)},
		{ast.OpDiv, i(6), i(3), i(2)},
		{ast.OpDiv, i(7), i(2), f(3.5)},
		{ast.OpDiv, f(1), f(4), f(0.25)},
		{ast.OpMod, i(7), i(3), i(1)},
	}
	for _, c := range cases {
		got, err := evalArith(c.op, c.l, c.r)
		if err != nil {
			t.Errorf("%v %v %v: %v", c.l, c.op, c.r, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
	bad := []struct {
		op   ast.BinOp
		l, r term.Value
	}{
		{ast.OpAdd, term.NewString("a"), i(1)},
		{ast.OpDiv, i(1), i(0)},
		{ast.OpMod, f(1), i(2)},
		{ast.OpMod, i(1), i(0)},
	}
	for _, c := range bad {
		if _, err := evalArith(c.op, c.l, c.r); err == nil {
			t.Errorf("%v %v %v should fail", c.l, c.op, c.r)
		}
	}
}

func TestEvalFn(t *testing.T) {
	s := term.NewString
	got, err := evalFn("strcat", []term.Value{s("ab"), s("cd")})
	if err != nil || got.Str() != "abcd" {
		t.Errorf("strcat = %v, %v", got, err)
	}
	got, err = evalFn("strlen", []term.Value{s("abc")})
	if err != nil || got.Int() != 3 {
		t.Errorf("strlen = %v, %v", got, err)
	}
	got, err = evalFn("substr", []term.Value{s("hello"), term.NewInt(2), term.NewInt(3)})
	if err != nil || got.Str() != "ell" {
		t.Errorf("substr = %v, %v", got, err)
	}
	// Clamped end.
	got, err = evalFn("substr", []term.Value{s("hi"), term.NewInt(1), term.NewInt(10)})
	if err != nil || got.Str() != "hi" {
		t.Errorf("substr clamp = %v, %v", got, err)
	}
	got, err = evalFn("abs", []term.Value{term.NewInt(-4)})
	if err != nil || got.Int() != 4 {
		t.Errorf("abs = %v, %v", got, err)
	}
	got, err = evalFn("abs", []term.Value{term.NewFloat(-1.5)})
	if err != nil || got.Float() != 1.5 {
		t.Errorf("abs float = %v, %v", got, err)
	}
	bad := [][]term.Value{
		{term.NewInt(1), s("x")},
	}
	if _, err := evalFn("strcat", bad[0]); err == nil {
		t.Error("strcat on int should fail")
	}
	if _, err := evalFn("strlen", []term.Value{term.NewInt(1)}); err == nil {
		t.Error("strlen on int should fail")
	}
	if _, err := evalFn("substr", []term.Value{s("x"), term.NewInt(9), term.NewInt(1)}); err == nil {
		t.Error("substr out of range should fail")
	}
	if _, err := evalFn("abs", []term.Value{s("x")}); err == nil {
		t.Error("abs on string should fail")
	}
	if _, err := evalFn("nope", nil); err == nil {
		t.Error("unknown fn should fail")
	}
}

func TestCompareValues(t *testing.T) {
	i, f, s := term.NewInt, term.NewFloat, term.NewString
	type c struct {
		op   ast.CmpOp
		l, r term.Value
		want bool
	}
	cases := []c{
		{ast.CmpEq, i(1), i(1), true},
		{ast.CmpEq, i(1), f(1), true}, // numeric equality across kinds
		{ast.CmpNe, i(1), f(1.5), true},
		{ast.CmpLt, i(1), f(1.5), true},
		{ast.CmpGe, f(2), i(2), true},
		{ast.CmpLt, s("abc"), s("abd"), true},
		{ast.CmpEq, s("x"), s("x"), true},
		{ast.CmpEq, s("x"), i(1), false}, // cross-kind equality is false
		{ast.CmpNe, s("x"), i(1), true},
		{ast.CmpEq, term.Atom("f", i(1)), term.Atom("f", i(1)), true},
	}
	for _, cse := range cases {
		got, err := compareValues(cse.op, cse.l, cse.r)
		if err != nil {
			t.Errorf("%v %v %v: %v", cse.l, cse.op, cse.r, err)
			continue
		}
		if got != cse.want {
			t.Errorf("%v %v %v = %v, want %v", cse.l, cse.op, cse.r, got, cse.want)
		}
	}
	if _, err := compareValues(ast.CmpLt, s("x"), i(1)); err == nil {
		t.Error("ordering across kinds should fail")
	}
}

func TestAggregateOps(t *testing.T) {
	i, f := term.NewInt, term.NewFloat
	vals := []term.Value{i(4), i(1), i(4), i(7)}
	check := func(op string, want term.Value) {
		t.Helper()
		got, err := aggregate(op, vals)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s = %v, want %v", op, got, want)
		}
	}
	check("min", i(1))
	check("max", i(7))
	check("sum", i(16))
	check("product", i(112))
	check("count", i(4))
	check("mean", f(4))
	check("arbitrary", i(1)) // deterministic: smallest
	sd, err := aggregate("std_dev", vals)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd.Float()-2.1213) > 1e-3 {
		t.Errorf("std_dev = %v", sd)
	}
	// Mixed numeric kinds promote to float.
	mixed := []term.Value{i(1), f(2.5)}
	got, _ := aggregate("sum", mixed)
	if got.Kind() != term.Float || got.Float() != 3.5 {
		t.Errorf("mixed sum = %v", got)
	}
	// min/max over strings use term order.
	ss := []term.Value{term.NewString("b"), term.NewString("a")}
	got, _ = aggregate("min", ss)
	if got.Str() != "a" {
		t.Errorf("string min = %v", got)
	}
	// Errors.
	if _, err := aggregate("sum", ss); err == nil {
		t.Error("sum of strings should fail")
	}
	if _, err := aggregate("min", nil); err == nil {
		t.Error("aggregate over empty set should fail")
	}
	if _, err := aggregate("nope", vals); err == nil {
		t.Error("unknown aggregate should fail")
	}
}

func TestQuickSumMatchesReference(t *testing.T) {
	prop := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		vals := make([]term.Value, len(xs))
		var want int64
		for i, x := range xs {
			vals[i] = term.NewInt(int64(x))
			want += int64(x)
		}
		got, err := aggregate("sum", vals)
		return err == nil && got.Int() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinMaxAreMembers(t *testing.T) {
	prop := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		vals := make([]term.Value, len(xs))
		for i, x := range xs {
			vals[i] = term.NewInt(int64(x))
		}
		mn, err1 := aggregate("min", vals)
		mx, err2 := aggregate("max", vals)
		if err1 != nil || err2 != nil {
			return false
		}
		foundMin, foundMax := false, false
		for _, v := range vals {
			if v.Equal(mn) {
				foundMin = true
			}
			if v.Equal(mx) {
				foundMax = true
			}
			if v.Int() < mn.Int() || v.Int() > mx.Int() {
				return false
			}
		}
		return foundMin && foundMax
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"write", "writeln", "nl", "read_line"} {
		if !r.Has(name) {
			t.Errorf("standard builtin %s missing", name)
		}
	}
	if err := r.Register("write", plan.BuiltinSig{}, nil); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register("custom", plan.BuiltinSig{Bound: 1}, nil); err != nil {
		t.Error(err)
	}
	sig, ok := r.Sig("custom")
	if !ok || sig.Bound != 1 {
		t.Errorf("sig = %+v, %v", sig, ok)
	}
	if _, ok := r.Sig("nothere"); ok {
		t.Error("Sig should miss unknown names")
	}
}

func TestEvalExprUnboundRegister(t *testing.T) {
	regs := make([]term.Value, 1)
	if _, err := evalExpr(plan.RegE{Reg: 0}, regs); err == nil {
		t.Error("unbound register should fail")
	}
}

func TestValueText(t *testing.T) {
	if valueText(term.NewString("hello world")) != "hello world" {
		t.Error("strings should print raw")
	}
	if valueText(term.NewInt(3)) != "3" {
		t.Error("ints print numerically")
	}
	got := tupleText(term.Tuple{term.NewString("a"), term.NewInt(1)})
	if got != "a 1" {
		t.Errorf("tupleText = %q", got)
	}
}
