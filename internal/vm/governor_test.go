package vm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"gluenail/internal/modsys"
	"gluenail/internal/parser"
	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// compileMachineReg is compileMachine with a caller-supplied registry, so
// tests can install hostile builtins (e.g. one that panics).
func compileMachineReg(t *testing.T, src string, reg *Registry) *Machine {
	t.Helper()
	popts := plan.Options{Builtin: reg.Sig}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lp, err := modsys.LinkWith(prog, modsys.Options{Known: reg.Has})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	c := plan.NewCompiler(lp, popts)
	if err := c.CompileAll(); err != nil {
		t.Fatalf("compile: %v", err)
	}
	edb := storage.NewMemStore(storage.IndexAdaptive)
	return New(c.Program(), edb, nil, reg)
}

// spinSrc is an infinite repeat/until program: flag(1) re-derives itself
// and the until condition never holds.
const spinSrc = `
edb flag(X);
proc spin(:)
  repeat
    flag(1) += flag(1).
  until empty(flag(_));
  return(:) := flag(_).
end
`

// spinJoinSrc is an infinite loop whose body re-derives a cross product —
// big enough to fan out over morsel workers at a low threshold, so
// cancellation exercises the worker-pool drain path.
const spinJoinSrc = `
edb e(X), big(X,Y);
proc spin(:)
  repeat
    big(X,Y) := e(X) & e(Y).
  until empty(e(_));
  return(:) := e(_).
end
`

func TestSelfRecursionDepthLimit(t *testing.T) {
	// A directly self-recursive procedure must fail with ErrDepthLimit
	// instead of overflowing the goroutine stack.
	m := compileMachine(t, `
edb e(X,Y);
proc f(X:Y)
rels r(Y);
  r(Y) := in(X) & f(X, Y).
  return(X:Y) := r(Y).
end
`, plan.Options{})
	m.MaxDepth = 64
	insert(m, "e", []int64{1, 2})
	_, err := m.CallProc("main.f", []term.Tuple{{term.NewInt(1)}})
	if !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("want ErrDepthLimit, got %v", err)
	}
	var ge *GovernorError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GovernorError in chain, got %v", err)
	}
	// The machine stays usable after a budget trip: a new call runs (and
	// trips the same clean limit again — the procedure is unconditionally
	// self-recursive).
	if _, err := m.CallProc("main.f", []term.Tuple{{term.NewInt(9)}}); !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("machine unusable after depth trip: %v", err)
	}
}

func TestTimeoutStopsInfiniteLoop(t *testing.T) {
	// Acceptance: an infinite repeat/until program terminates with
	// ErrTimeout within 2x the configured deadline at every worker count
	// 1..8.
	const deadline = 250 * time.Millisecond
	for workers := 1; workers <= 8; workers++ {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m := compileMachine(t, spinJoinSrc, plan.Options{})
			m.LoopLimit = 0
			m.Parallelism = workers
			m.ParallelThreshold = 1
			for i := int64(0); i < 64; i++ {
				insert(m, "e", []int64{i})
			}
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			_, err := m.CallProcContext(ctx, "main.spin", []term.Tuple{{}})
			elapsed := time.Since(start)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("want ErrTimeout, got %v", err)
			}
			if elapsed > 2*deadline {
				t.Errorf("aborted after %v, budget was %v (2x limit exceeded)", elapsed, deadline)
			}
		})
	}
}

func TestCancelStopsExecution(t *testing.T) {
	m := compileMachine(t, spinSrc, plan.Options{})
	m.LoopLimit = 0
	insert(m, "flag", []int64{1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := m.CallProcContext(ctx, "main.spin", []term.Tuple{{}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// Governed aborts do not poison: the machine accepts new calls (which
	// here run into the loop limit, another clean governed stop).
	m.LoopLimit = 3
	if _, err := m.CallProcContext(context.Background(), "main.spin", []term.Tuple{{}}); !errors.Is(err, ErrLoopLimit) {
		t.Fatalf("machine should still run and hit the loop limit, got %v", err)
	}
}

func TestMaxTuplesBudget(t *testing.T) {
	m := compileMachine(t, `
edb e(X), big(X,Y);
proc blow(:)
  big(X,Y) := e(X) & e(Y).
  return(:) := e(_).
end
`, plan.Options{})
	m.MaxTuples = 1000
	for i := int64(0); i < 100; i++ {
		insert(m, "e", []int64{i})
	}
	_, err := m.CallProc("main.blow", []term.Tuple{{}})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
}

func TestMaxRelRowsBudget(t *testing.T) {
	m := compileMachine(t, `
edb e(X), big(X,Y);
proc blow(:)
  big(X,Y) := e(X) & e(Y).
  return(:) := e(_).
end
`, plan.Options{})
	m.MaxRelRows = 50
	for i := int64(0); i < 40; i++ {
		insert(m, "e", []int64{i})
	}
	_, err := m.CallProc("main.blow", []term.Tuple{{}})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	if !strings.Contains(err.Error(), "big") {
		t.Errorf("error should name the offending relation: %v", err)
	}
}

func TestLoopLimitTypedError(t *testing.T) {
	m := compileMachine(t, spinSrc, plan.Options{})
	m.LoopLimit = 3
	insert(m, "flag", []int64{1})
	_, err := m.CallProc("main.spin", []term.Tuple{{}})
	if !errors.Is(err, ErrLoopLimit) {
		t.Fatalf("want ErrLoopLimit, got %v", err)
	}
	if !strings.Contains(err.Error(), "iterations") {
		t.Errorf("loop-limit error should mention iterations: %v", err)
	}
}

func TestPanicContainmentPoisonsMachine(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("boom", plan.BuiltinSig{Fixed: true},
		func(m *Machine, in []term.Tuple) ([]term.Tuple, error) {
			panic("kernel exploded")
		}); err != nil {
		t.Fatal(err)
	}
	m := compileMachineReg(t, `
edb e(X), out(X);
proc go(:)
  out(X) := e(X) & boom().
  return(:) := e(_).
end
`, reg)
	insert(m, "e", []int64{1})
	_, err := m.CallProc("main.go", []term.Tuple{{}})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	var ge *GovernorError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GovernorError, got %v", err)
	}
	if ge.Stmt == "" || !strings.Contains(ge.Detail, "kernel exploded") {
		t.Errorf("panic error should carry statement label and panic value: %+v", ge)
	}
	// A contained panic may have unwound mid-mutation: the machine is
	// poisoned and rejects further calls.
	if _, err := m.CallProc("main.go", []term.Tuple{{}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("want ErrPoisoned on reuse, got %v", err)
	}
}

func TestWorkerPanicRejoinsPool(t *testing.T) {
	// A panic on a morsel worker must re-raise on the caller's goroutine
	// only after every worker has joined — no goroutine may leak.
	m := compileMachine(t, spinSrc, plan.Options{})
	base := runtime.NumGoroutine()
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("worker panic was swallowed")
			} else if r != "morsel 3" {
				t.Errorf("panic value rewritten: %v", r)
			}
		}()
		ms := morsels(1024, 4)
		m.runMorsels(ms, 4, func(mi int) {
			if mi == 3 {
				panic("morsel 3")
			}
		})
	}()
	waitGoroutines(t, base)
}

func TestMorselErrorDrainsWorkers(t *testing.T) {
	// Satellite: an error in one worker must drain and join the pool —
	// repeated failing parallel segments must not accumulate goroutines.
	m := compileMachine(t, `
edb e(X), out(Z);
proc go(:)
  out(Z) := e(X) & e(Y) & Z = X / (Y - Y).
  return(:) := e(_).
end
`, plan.Options{})
	m.Parallelism = 8
	m.ParallelThreshold = 1
	for i := int64(1); i <= 64; i++ {
		insert(m, "e", []int64{i})
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, err := m.CallProc("main.go", []term.Tuple{{}}); err == nil {
			t.Fatal("expected division-by-zero error")
		}
	}
	waitGoroutines(t, base)
}

// waitGoroutines asserts the goroutine count settles back to (near) base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, started with %d", n, base)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGovernorOverheadCheckCount(t *testing.T) {
	// The governor's per-check cost only matters if checks stay rare
	// relative to row work: a governed run over a joinful statement should
	// poll orders of magnitude less often than it touches tuples.
	m := compileMachine(t, `
edb e(X), big(X,Y);
proc blow(:)
  big(X,Y) := e(X) & e(Y).
  return(:) := e(_).
end
`, plan.Options{})
	for i := int64(0); i < 100; i++ {
		insert(m, "e", []int64{i})
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if _, err := m.CallProcContext(ctx, "main.blow", []term.Tuple{{}}); err != nil {
		t.Fatal(err)
	}
	checks := m.Stats.GovernorChecks
	if checks == 0 {
		t.Fatal("governed run recorded no governor checks")
	}
	if mat := m.Stats.TuplesMaterialized; checks > mat/4+16 {
		t.Errorf("too many governor checks: %d checks for %d materialized tuples", checks, mat)
	}
}
