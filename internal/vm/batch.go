// Vectorized batch kernels for the pipelined segment executor. The scalar
// path (runPipe's rec closure) interprets the operator pipeline once per
// tuple: every row pays a closure call per op, a branch per pattern, and
// the whole interpretive overhead of walking the op list. The batch path
// runs the same segment op-at-a-time over a column-major register file:
// filters refine a selection vector without moving a byte of row data,
// and expansions (index probes and scans) append only their newly bound
// registers column-wise plus a source-row index.
//
// Columns are materialized lazily. An expansion does not gather the
// pass-through columns into the new row space; it records a lineage
// vector (new row -> source row) and leaves every earlier column at the
// level that produced it. An op that reads a register materializes just
// that column in the current row space (memoized), and the final flatten
// resolves each live column through the composed lineage maps once. The
// scalar path copies each surviving register exactly once per emitted
// output row; this path does the same, instead of once per op.
//
// Output order is byte-identical to the scalar path. Depth-first
// tuple-at-a-time emits results in lexicographic (row index, op-0 emission
// index, op-1 emission index, ...) order; breadth-first op-at-a-time
// processes every op over the full batch in that same source order, so
// the final flatten enumerates exactly the same sequence. Dedup, barriers,
// ordered merges, and golden files therefore cannot tell the kernels
// apart — Machine.BatchKernels is a pure performance ablation.
package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// batchScratch recycles the batch kernels' working vectors across
// runPipeBatch calls. Every column, lineage vector, and selection map is
// dead once a segment flattens (the output slab is a fresh allocation),
// so the vectors cycle through these freelists instead of churning the
// allocator once per op. Scratches are drawn from a sync.Pool: the
// sequential path and each concurrent morsel worker own a private one
// for the duration of a call, so no locking is needed inside.
//
// Pooled value vectors are not cleared on release; they may pin the
// previous segment's values until overwritten, which is bounded by one
// batch of scratch and irrelevant next to the relations themselves.
type batchScratch struct {
	state      batchState
	vals       [][]term.Value
	idx        [][]int32
	colArrs    [][][]term.Value
	rowBuf     []term.Value
	regs       []int
	fillerCols [][]term.Value
	maps       [][]int32
	sk         term.Tuple
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// grabVals returns a length-n value vector with arbitrary contents; the
// caller writes every element. An undersized freelist entry is dropped
// rather than searched past — vector sizes within a workload converge,
// so the lists self-size after a call or two.
func (s *batchScratch) grabVals(n int) []term.Value {
	if k := len(s.vals); k > 0 {
		v := s.vals[k-1]
		s.vals = s.vals[:k-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([]term.Value, n)
}

// grabValsCap returns an empty value vector with capacity at least c.
func (s *batchScratch) grabValsCap(c int) []term.Value {
	if k := len(s.vals); k > 0 {
		v := s.vals[k-1]
		s.vals = s.vals[:k-1]
		if cap(v) >= c {
			return v[:0]
		}
	}
	return make([]term.Value, 0, c)
}

func (s *batchScratch) putVals(v []term.Value) { s.vals = append(s.vals, v) }

// grabIdx returns a length-n index vector with arbitrary contents.
func (s *batchScratch) grabIdx(n int) []int32 {
	if k := len(s.idx); k > 0 {
		v := s.idx[k-1]
		s.idx = s.idx[:k-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([]int32, n)
}

// grabIdxCap returns an empty index vector with capacity at least c.
func (s *batchScratch) grabIdxCap(c int) []int32 {
	if k := len(s.idx); k > 0 {
		v := s.idx[k-1]
		s.idx = s.idx[:k-1]
		if cap(v) >= c {
			return v[:0]
		}
	}
	return make([]int32, 0, c)
}

func (s *batchScratch) putIdx(v []int32) { s.idx = append(s.idx, v) }

// grabColArr returns a length-n all-nil column-pointer array. The freelist
// invariant is that every entry in [0:cap] is nil: writes only land inside
// an array's length, and putColArr takes arrays whose used region has been
// nil'd again (release does that as it walks).
func (s *batchScratch) grabColArr(n int) [][]term.Value {
	if k := len(s.colArrs); k > 0 {
		v := s.colArrs[k-1]
		s.colArrs = s.colArrs[:k-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([][]term.Value, n)
}

func (s *batchScratch) putColArr(v [][]term.Value) { s.colArrs = append(s.colArrs, v) }

// batchLevel is one expansion generation of a batch. src maps each row of
// this level to the row of the previous level it came from (nil at level
// 0); cols holds, per register, the column of values bound at this level
// (nil when the register was not bound here).
type batchLevel struct {
	src  []int32
	cols [][]term.Value
}

// batchState is one in-flight batch: the rows of the newest (top) level,
// their lineage back through every expansion, and per register the level
// whose column currently holds its value. sel lists the active top-level
// row indexes in order; nil means all n rows are active (filters shrink
// sel, expansions push a new level and reset it).
type batchState struct {
	n      int
	nregs  int
	scr    *batchScratch
	sel    []int32
	where  []int // per register: level index of its column, -1 if zero everywhere
	levels []batchLevel
	abs    [][]int32 // memoized top-row -> level-row maps; reset on push
}

// newBatchState transposes the incoming rows into level 0. Only registers
// that are non-zero somewhere get a column; at segment start that is
// typically none (the seed row is empty) or the handful of registers
// bound by earlier steps.
func newBatchState(rows [][]term.Value, nregs int, scr *batchScratch) *batchState {
	// The state shell lives in the scratch: its backing arrays (register
	// map, level list, lineage memos) carry over from the previous segment.
	b := &scr.state
	b.n = len(rows)
	b.nregs = nregs
	b.scr = scr
	b.sel = nil
	if cap(b.where) < nregs {
		b.where = make([]int, nregs)
	}
	b.where = b.where[:nregs]
	b.levels = append(b.levels[:0], batchLevel{})
	b.abs = append(b.abs[:0], nil)
	b.levels[0].cols = scr.grabColArr(nregs)
	for r := 0; r < nregs; r++ {
		b.where[r] = -1
		materialize := false
		for i := range rows {
			if !rows[i][r].IsZero() {
				materialize = true
				break
			}
		}
		if !materialize {
			continue
		}
		col := scr.grabVals(len(rows))
		for i := range rows {
			col[i] = rows[i][r]
		}
		b.levels[0].cols[r] = col
		b.where[r] = 0
	}
	return b
}

// release hands every live column, lineage vector, and selection map back
// to the scratch freelists. Called once per runPipeBatch, after flatten
// has copied the surviving values into the fresh output slab — nothing
// the caller sees aliases pooled storage. Safe mid-pipeline too (error
// exits): the state is consistent after every op.
func (b *batchState) release() {
	for li := range b.levels {
		lv := &b.levels[li]
		if lv.src != nil {
			b.scr.putIdx(lv.src)
			lv.src = nil
		}
		if lv.cols != nil {
			for r, c := range lv.cols {
				if c != nil {
					b.scr.putVals(c)
					lv.cols[r] = nil
				}
			}
			b.scr.putColArr(lv.cols)
			lv.cols = nil
		}
	}
	for li, m := range b.abs {
		if m != nil {
			b.scr.putIdx(m)
			b.abs[li] = nil
		}
	}
	if b.sel != nil {
		b.scr.putIdx(b.sel)
		b.sel = nil
	}
}

// active returns the live row count.
func (b *batchState) active() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// absTo returns the lineage map from top-level rows to level-L rows (nil
// means identity, i.e. L is the top). Memoized until the next push.
func (b *batchState) absTo(L int) []int32 {
	top := len(b.levels) - 1
	if L == top {
		return nil
	}
	if b.abs[L] != nil {
		return b.abs[L]
	}
	up := b.absTo(L + 1)
	src := b.levels[L+1].src
	m := b.scr.grabIdx(b.n)
	if up == nil {
		copy(m, src[:b.n])
	} else {
		for i, j := range up {
			m[i] = src[j]
		}
	}
	b.abs[L] = m
	return m
}

// colAt returns register r's column indexed by top-level row, or nil when
// the register is zero for every row. A column living at an older level is
// gathered through the lineage maps once and memoized at the top.
func (b *batchState) colAt(r int) []term.Value {
	L := b.where[r]
	if L < 0 {
		return nil
	}
	top := len(b.levels) - 1
	if L == top {
		return b.levels[top].cols[r]
	}
	m := b.absTo(L)
	src := b.levels[L].cols[r]
	col := b.scr.grabVals(b.n)
	for i, j := range m {
		col[i] = src[j]
	}
	lv := &b.levels[top]
	if lv.cols == nil {
		lv.cols = b.scr.grabColArr(b.nregs)
	}
	lv.cols[r] = col
	b.where[r] = top
	return col
}

// pushLevel installs an expansion's output as the new top level: src is
// the lineage back to the previous level, and each bind register takes
// its freshly emitted column.
func (b *batchState) pushLevel(src []int32, bind []int, bindCols [][]term.Value) {
	lv := batchLevel{src: src, cols: b.scr.grabColArr(b.nregs)}
	b.levels = append(b.levels, lv)
	top := len(b.levels) - 1
	for k, reg := range bind {
		b.levels[top].cols[reg] = bindCols[k]
		b.where[reg] = top
	}
	b.n = len(src)
	// The previous level's selection vector and memoized lineage maps are
	// dead now (src already folds the selection in); recycle them. The
	// recycle loop leaves every abs entry nil, so the array just extends.
	if b.sel != nil {
		b.scr.putIdx(b.sel)
		b.sel = nil
	}
	for li, m := range b.abs {
		if m != nil {
			b.scr.putIdx(m)
			b.abs[li] = nil
		}
	}
	b.abs = append(b.abs, nil)
}

// regFiller loads an op's referenced registers into the shared row buffer
// row by row: the bridge to the per-row helpers (key building, pattern
// matching, expression evaluation) the scalar kernels share with this
// path. Registers the op does not mention are left untouched — the op
// cannot read them.
type regFiller struct {
	regs []int
	cols [][]term.Value
}

// filler resolves the given registers' columns once for the whole batch.
// The column-pointer array is a single per-scratch buffer: at most one
// filler is live at a time (each op builds its own and drops it).
func (b *batchState) filler(regs []int) regFiller {
	cols := b.scr.fillerCols
	if cap(cols) < len(regs) {
		cols = make([][]term.Value, len(regs))
		b.scr.fillerCols = cols
	}
	cols = cols[:len(regs)]
	for k, r := range regs {
		cols[k] = b.colAt(r)
	}
	return regFiller{regs: regs, cols: cols}
}

func (rf *regFiller) fill(i int32, rowBuf []term.Value) {
	for k, r := range rf.regs {
		if c := rf.cols[k]; c != nil {
			rowBuf[r] = c[i]
		} else {
			rowBuf[r] = term.Value{}
		}
	}
}

// exprRegs appends the registers an expression reads to dst (no
// duplicates relative to dst's existing contents).
func exprRegs(e plan.Expr, dst []int) []int {
	switch e := e.(type) {
	case plan.RegE:
		for _, r := range dst {
			if r == e.Reg {
				return dst
			}
		}
		return append(dst, e.Reg)
	case plan.PatE:
		return e.P.Regs(dst)
	case plan.BinE:
		dst = exprRegs(e.L, dst)
		return exprRegs(e.R, dst)
	case plan.CallE:
		for _, a := range e.Args {
			dst = exprRegs(a, dst)
		}
	}
	return dst
}

// runPipeBatch executes a segment's operators batch-at-a-time over the
// given rows, filling the caller's per-op tuple counters exactly like the
// scalar path (cnt[i] counts tuples entering op i, cnt[len(ops)] the
// segment output). Used for both the sequential hot path and each morsel
// of the parallel path.
func (f *frame) runPipeBatch(ops []plan.PipeOp, rels []storage.Rel, have []bool,
	rows [][]term.Value, cnt []int64) ([][]term.Value, error) {
	nregs := len(rows[0])
	scr := batchScratchPool.Get().(*batchScratch)
	b := newBatchState(rows, nregs, scr)
	defer func() {
		b.release()
		batchScratchPool.Put(scr)
	}()
	rowBuf := scr.rowBuf
	if cap(rowBuf) < nregs {
		rowBuf = make([]term.Value, nregs)
		scr.rowBuf = rowBuf
	} else {
		rowBuf = rowBuf[:nregs]
		clear(rowBuf)
	}
	regScratch := scr.regs[:0]
	if cap(regScratch) == 0 {
		regScratch = make([]int, 0, 16)
		scr.regs = regScratch
	}
	for i, op := range ops {
		cnt[i] += int64(b.active())
		if b.active() == 0 {
			return nil, nil
		}
		var err error
		switch op := op.(type) {
		case *plan.Match:
			refRegs := regScratch
			for a := range op.Args {
				refRegs = op.Args[a].Regs(refRegs)
			}
			refRegs = op.Rel.Name.Regs(refRegs)
			// The closure exists only for late-resolved names; the usual
			// pre-resolved case passes the relation directly, so the hot
			// path allocates nothing per op.
			var resolve func([]term.Value) (storage.Rel, error)
			if !have[i] {
				resolve = func(regs []term.Value) (storage.Rel, error) {
					return f.resolveRead(op.Rel, regs)
				}
			}
			if op.Negated {
				err = f.batchFilterMatch(b, op.BoundMask, op.Args, refRegs, rels[i], resolve, rowBuf)
			} else {
				err = f.batchExpandMatch(b, op.BoundMask, op.Args, op.Bind, refRegs, rels[i], resolve, rowBuf)
			}
		case *plan.DynMatch:
			refRegs := regScratch
			for a := range op.Args {
				refRegs = op.Args[a].Regs(refRegs)
			}
			refRegs = op.Pred.Regs(refRegs)
			resolve := func(regs []term.Value) (storage.Rel, error) {
				name, err := op.Pred.Build(regs)
				if err != nil {
					return nil, err
				}
				return f.dynResolve(name, op.Arity, op.Narrowed, op.Candidates), nil
			}
			if op.Negated {
				err = f.batchFilterMatch(b, op.BoundMask, op.Args, refRegs, nil, resolve, rowBuf)
			} else {
				err = f.batchExpandMatch(b, op.BoundMask, op.Args, op.Bind, refRegs, nil, resolve, rowBuf)
			}
		case *plan.Compare:
			err = f.batchFilterCompare(b, op, regScratch, rowBuf)
		case *plan.MatchBind:
			err = f.batchMatchBind(b, op, regScratch, rowBuf)
		default:
			return nil, fmt.Errorf("vm: unknown pipe op %T", op)
		}
		if err != nil {
			return nil, err
		}
	}
	nOut := b.active()
	cnt[len(ops)] += int64(nOut)
	if nOut == 0 {
		return nil, nil
	}
	out := b.flatten(nOut)
	atomic.AddInt64(&f.m.Stats.TuplesMaterialized, int64(nOut))
	if err := f.m.pollGovernor(); err != nil {
		return nil, err
	}
	return out, nil
}

// flatten materializes the surviving rows back to row-major output,
// resolving each live column through the composed lineage maps. One
// backing slab replaces the scalar path's per-row clone; 3-index slicing
// keeps the rows disjoint, so downstream in-place register mutation stays
// row-private. Each register is copied exactly once per output row — the
// same write count as the scalar path's final clone.
func (b *batchState) flatten(nOut int) [][]term.Value {
	top := len(b.levels) - 1
	maps := b.scr.maps
	if cap(maps) < len(b.levels) {
		maps = make([][]int32, len(b.levels))
		b.scr.maps = maps
	}
	maps = maps[:len(b.levels)]
	cur := b.sel // nil = identity over all n rows
	maps[top] = cur
	for L := top; L > 0; L-- {
		src := b.levels[L].src
		next := b.scr.grabIdx(nOut)
		if cur == nil {
			copy(next, src[:nOut])
		} else {
			for k, i := range cur {
				next[k] = src[i]
			}
		}
		maps[L-1] = next
		cur = next
	}
	flat := make([]term.Value, nOut*b.nregs)
	out := make([][]term.Value, nOut)
	for k := range out {
		out[k] = flat[k*b.nregs : (k+1)*b.nregs : (k+1)*b.nregs]
	}
	for r := 0; r < b.nregs; r++ {
		L := b.where[r]
		if L < 0 {
			continue
		}
		col := b.levels[L].cols[r]
		if m := maps[L]; m != nil {
			for k := 0; k < nOut; k++ {
				out[k][r] = col[m[k]]
			}
		} else {
			for k := 0; k < nOut; k++ {
				out[k][r] = col[k]
			}
		}
	}
	// maps[top] is b.sel (released with the state); the composed maps
	// below it were grabbed here and are dead now.
	for L := 0; L < top; L++ {
		if maps[L] != nil {
			b.scr.putIdx(maps[L])
		}
	}
	return out
}

// forActive runs fn over the active rows in order, stopping on error.
func (b *batchState) forActive(fn func(i int32) error) error {
	if b.sel != nil {
		for _, i := range b.sel {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < b.n; i++ {
		if err := fn(int32(i)); err != nil {
			return err
		}
	}
	return nil
}

// newSel returns an empty selection vector with capacity for every active
// row, reusing the current one in place when possible (a filter only ever
// shrinks the active set, and compaction reads ahead of its writes).
func (b *batchState) newSel() []int32 {
	if b.sel != nil {
		return b.sel[:0]
	}
	return b.scr.grabIdxCap(b.n)
}

// batchExpandMatch runs a positive match (index probe or scan) over the
// batch. Per source row it fills the op's referenced registers once,
// builds the probe key with the shared scalar helper, and streams the
// relation's matching tuples; each emission appends the op's bound
// registers column-wise plus the source index, and the batch advances one
// lineage level — no pass-through column is touched. srel is the
// statically resolved relation; a non-nil resolve overrides it per row
// (late-resolved or computed names) and exists so the static hot path
// never allocates a closure.
func (f *frame) batchExpandMatch(b *batchState, mask uint32, args []term.Pattern,
	bind []int, refRegs []int, srel storage.Rel,
	resolve func([]term.Value) (storage.Rel, error), rowBuf []term.Value) error {
	rf := b.filler(refRegs)
	// Pre-size the emission buffers for one output per active row — the
	// common fanout for index probes — so the append loop stays out of
	// growslice for everything but genuinely expanding scans.
	nAct := b.active()
	bindCols := make([][]term.Value, len(bind))
	for k := range bindCols {
		bindCols[k] = b.scr.grabValsCap(nAct)
	}
	src := b.scr.grabIdxCap(nAct)
	var emitted int64
	// The yield closure is hoisted out of the per-row loop (cur carries
	// the current source index) so the probe loop stays allocation-free.
	var cur int32
	var emitErr error
	yield := func(t term.Tuple) bool {
		if matchArgs(args, t, rowBuf) {
			for k, reg := range bind {
				bindCols[k] = append(bindCols[k], rowBuf[reg])
			}
			src = append(src, cur)
			emitted++
			// Same runaway-cross-product guard as the scalar path:
			// a huge expansion must not outrun the governor.
			if emitted&(govCheckRows-1) == 0 {
				if err := f.m.pollGovernor(); err != nil {
					emitErr = err
					unbind(rowBuf, bind)
					return false
				}
			}
		}
		unbind(rowBuf, bind)
		return true
	}
	err := b.forActive(func(i int32) error {
		rf.fill(i, rowBuf)
		rel := srel
		if resolve != nil {
			var err error
			if rel, err = resolve(rowBuf); err != nil {
				return err
			}
		}
		if rel == nil {
			return nil
		}
		key, err := buildKey(&b.scr.sk, mask, args, rowBuf, rel.Arity())
		if err != nil {
			return err
		}
		cur = i
		rel.Lookup(mask, key, yield)
		return emitErr
	})
	if err != nil {
		return err
	}
	b.pushLevel(src, bind, bindCols)
	return nil
}

// batchFilterMatch runs a negated match as a pure filter: rows survive
// when no tuple of the (possibly per-row resolved) relation matches.
// Negated ops bind nothing, so the register file is untouched.
func (f *frame) batchFilterMatch(b *batchState, mask uint32, args []term.Pattern,
	refRegs []int, srel storage.Rel,
	resolve func([]term.Value) (storage.Rel, error), rowBuf []term.Value) error {
	rf := b.filler(refRegs)
	sel := b.newSel()
	// Hoisted existence probe: same semantics as existsIn, but with the
	// yield closure shared across rows so the filter never allocates.
	found := false
	yield := func(t term.Tuple) bool {
		if matchArgs(args, t, rowBuf) {
			found = true
			return false
		}
		return true
	}
	err := b.forActive(func(i int32) error {
		rf.fill(i, rowBuf)
		rel := srel
		if resolve != nil {
			var err error
			if rel, err = resolve(rowBuf); err != nil {
				return err
			}
		}
		if rel == nil {
			sel = append(sel, i)
			return nil
		}
		key, err := buildKey(&b.scr.sk, mask, args, rowBuf, rel.Arity())
		if err != nil {
			return err
		}
		found = false
		rel.Lookup(mask, key, yield)
		if !found {
			sel = append(sel, i)
		}
		return nil
	})
	b.sel = sel
	return err
}

// batchFilterCompare refines the selection vector by a comparison. The
// branch-light fast path reads register columns and constants directly —
// no register-file fill, no expression-tree walk per row; compound
// operands take the fill-and-eval fallback with identical semantics.
func (f *frame) batchFilterCompare(b *batchState, op *plan.Compare,
	regScratch []int, rowBuf []term.Value) error {
	lCol, lConst, lReg, lOK := b.exprCol(op.L)
	rCol, rConst, rReg, rOK := b.exprCol(op.R)
	sel := b.newSel()
	if lOK && rOK {
		err := b.forActive(func(i int32) error {
			l, r := lConst, rConst
			if lReg {
				if lCol != nil {
					l = lCol[i]
				}
				if l.IsZero() {
					return fmt.Errorf("unbound variable in expression")
				}
			}
			if rReg {
				if rCol != nil {
					r = rCol[i]
				}
				if r.IsZero() {
					return fmt.Errorf("unbound variable in expression")
				}
			}
			ok, err := compareValues(op.Op, l, r)
			if err != nil {
				return err
			}
			if ok {
				sel = append(sel, i)
			}
			return nil
		})
		b.sel = sel
		return err
	}
	refRegs := exprRegs(op.R, exprRegs(op.L, regScratch))
	rf := b.filler(refRegs)
	err := b.forActive(func(i int32) error {
		rf.fill(i, rowBuf)
		l, err := evalExpr(op.L, rowBuf)
		if err != nil {
			return err
		}
		r, err := evalExpr(op.R, rowBuf)
		if err != nil {
			return err
		}
		ok, err := compareValues(op.Op, l, r)
		if err != nil {
			return err
		}
		if ok {
			sel = append(sel, i)
		}
		return nil
	})
	b.sel = sel
	return err
}

// exprCol resolves an expression operand to a column source for the fast
// comparison path: a direct column (nil for an everywhere-unbound
// register) or a constant. ok is false for compound expressions, which
// fall back to per-row evaluation over the filled register buffer.
func (b *batchState) exprCol(e plan.Expr) (col []term.Value, konst term.Value, isReg, ok bool) {
	switch e := e.(type) {
	case plan.RegE:
		return b.colAt(e.Reg), term.Value{}, true, true
	case plan.ConstE:
		return nil, e.V, false, true
	}
	return nil, term.Value{}, false, false
}

// batchMatchBind runs an assignment/unification op. Without bind
// registers it is a pure filter (the pattern only checks); with them it
// is a one-to-at-most-one expansion.
func (f *frame) batchMatchBind(b *batchState, op *plan.MatchBind,
	regScratch []int, rowBuf []term.Value) error {
	refRegs := op.Pat.Regs(exprRegs(op.E, regScratch))
	rf := b.filler(refRegs)
	if len(op.Bind) == 0 {
		sel := b.newSel()
		err := b.forActive(func(i int32) error {
			rf.fill(i, rowBuf)
			v, err := evalExpr(op.E, rowBuf)
			if err != nil {
				return err
			}
			if op.Pat.Match(v, rowBuf) {
				sel = append(sel, i)
			}
			return nil
		})
		b.sel = sel
		return err
	}
	nAct := b.active()
	bindCols := make([][]term.Value, len(op.Bind))
	for k := range bindCols {
		bindCols[k] = b.scr.grabValsCap(nAct)
	}
	src := b.scr.grabIdxCap(nAct)
	err := b.forActive(func(i int32) error {
		rf.fill(i, rowBuf)
		v, err := evalExpr(op.E, rowBuf)
		if err != nil {
			unbind(rowBuf, op.Bind)
			return err
		}
		if op.Pat.Match(v, rowBuf) {
			for k, reg := range op.Bind {
				bindCols[k] = append(bindCols[k], rowBuf[reg])
			}
			src = append(src, i)
		}
		unbind(rowBuf, op.Bind)
		return nil
	})
	if err != nil {
		return err
	}
	b.pushLevel(src, op.Bind, bindCols)
	return nil
}

// dedupRowsBatch is the batched sequential dedup kernel: one bulk pass
// computes every row's live-register hash into a flat vector (no
// per-probe interleaving of hashing and table work), then a second pass
// probes the pooled open-addressing table with the precomputed hashes.
// Keeps the first occurrence of each key in input order, exactly like the
// scalar kernel.
func (f *frame) dedupRowsBatch(rows [][]term.Value, live []int) [][]term.Value {
	hashes := f.grabHashes(len(rows))
	for i := range rows {
		hashes[i] = rowHashLive(rows[i], live)
	}
	t := f.grabTable(len(rows))
	out := rows[:0]
	var cand []term.Value
	eq := func(r int32) bool { return rowsEqualLive(out[r], cand, live) }
	var removed int64
	for i, row := range rows {
		cand = row
		if _, found := t.findOrAdd(hashes[i], int32(len(out)), eq); found {
			removed++
			continue
		}
		out = append(out, row)
	}
	f.releaseTable(t)
	f.releaseHashes(hashes)
	if removed != 0 {
		atomic.AddInt64(&f.m.Stats.RowsDeduped, removed)
	}
	return out
}
