package vm

import (
	"bytes"
	"strings"
	"testing"

	"gluenail/internal/modsys"
	"gluenail/internal/parser"
	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// compileMachine builds a machine from source with the standard builtins.
func compileMachine(t *testing.T, src string, popts plan.Options) *Machine {
	t.Helper()
	reg := NewRegistry()
	popts.Builtin = reg.Sig
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lp, err := modsys.LinkWith(prog, modsys.Options{Known: reg.Has})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	c := plan.NewCompiler(lp, popts)
	if err := c.CompileAll(); err != nil {
		t.Fatalf("compile: %v", err)
	}
	edb := storage.NewMemStore(storage.IndexAdaptive)
	return New(c.Program(), edb, nil, reg)
}

func insert(m *Machine, rel string, rows ...[]int64) {
	for _, row := range rows {
		t := make(term.Tuple, len(row))
		for i, v := range row {
			t[i] = term.NewInt(v)
		}
		m.EDB.Ensure(term.NewString(rel), len(row)).Insert(t)
	}
}

func TestCallProcBasic(t *testing.T) {
	m := compileMachine(t, `
edb e(X,Y);
proc succ(X:Y)
  return(X:Y) := in(X) & e(X,Y).
end
`, plan.Options{})
	insert(m, "e", []int64{1, 2}, []int64{1, 3}, []int64{2, 4})
	out, err := m.CallProc("main.succ", []term.Tuple{{term.NewInt(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("succ(1) = %v", out)
	}
	if _, err := m.CallProc("nope", nil); err == nil {
		t.Error("unknown proc should fail")
	}
	if _, err := m.CallProc("main.succ", []term.Tuple{{}}); err == nil {
		t.Error("wrong input arity should fail")
	}
}

func TestFrameLocalsAreDropped(t *testing.T) {
	m := compileMachine(t, `
edb e(X);
proc p(:X)
rels tmp(X);
  tmp(X) := e(X).
  return(:X) := tmp(X).
end
`, plan.Options{})
	insert(m, "e", []int64{1})
	before := m.Temp.Stats().RelsCreated
	if _, err := m.CallProc("main.p", []term.Tuple{{}}); err != nil {
		t.Fatal(err)
	}
	st := m.Temp.Stats()
	if st.RelsCreated <= before {
		t.Error("frame should create temp relations")
	}
	if st.RelsCreated-st.RelsDropped != 0 {
		t.Errorf("temp relations leaked: created=%d dropped=%d", st.RelsCreated, st.RelsDropped)
	}
	if len(m.Temp.Names()) != 0 {
		t.Errorf("temp store not empty: %v", m.Temp.Names())
	}
}

func TestPipelinedAndMaterializedAgree(t *testing.T) {
	src := `
edb a(X,Y), b(Y,Z), c(Z,W), out(X,W);
proc go(:)
  out(X,W) := a(X,Y) & b(Y,Z) & c(Z,W) & X != W.
  return(:) := out(_,_).
end
`
	run := func(materialized bool) ([]term.Tuple, ExecStats) {
		m := compileMachine(t, src, plan.Options{})
		m.Materialized = materialized
		insert(m, "a", []int64{1, 2}, []int64{2, 3})
		insert(m, "b", []int64{2, 5}, []int64{3, 5}, []int64{3, 6})
		insert(m, "c", []int64{5, 1}, []int64{6, 9})
		if _, err := m.CallProc("main.go", []term.Tuple{{}}); err != nil {
			t.Fatal(err)
		}
		rel, _ := m.EDB.Get(term.NewString("out"), 2)
		return storage.Sorted(rel), m.Stats
	}
	pipeRows, pipeStats := run(false)
	matRows, matStats := run(true)
	if len(pipeRows) != len(matRows) {
		t.Fatalf("strategies disagree: %v vs %v", pipeRows, matRows)
	}
	for i := range pipeRows {
		if !pipeRows[i].Equal(matRows[i]) {
			t.Fatalf("strategies disagree: %v vs %v", pipeRows, matRows)
		}
	}
	if matStats.TuplesMaterialized <= pipeStats.TuplesMaterialized {
		t.Errorf("materialized strategy should copy more tuples: %d vs %d",
			matStats.TuplesMaterialized, pipeStats.TuplesMaterialized)
	}
}

func TestDedupAtBreaks(t *testing.T) {
	// A projection-style join producing duplicates ahead of a procedure
	// call: dedup shrinks the input set.
	src := `
edb a(X,Y), out(X);
proc idp(X:)
  return(X:) := in(X).
end
proc go(:)
  out(X) := a(X,_) & idp(X).
  return(:) := out(_).
end
`
	run := func(noDedup bool) ExecStats {
		m := compileMachine(t, src, plan.Options{NoDedup: noDedup})
		insert(m, "a", []int64{1, 1}, []int64{1, 2}, []int64{1, 3}, []int64{2, 1})
		if _, err := m.CallProc("main.go", []term.Tuple{{}}); err != nil {
			t.Fatal(err)
		}
		return m.Stats
	}
	with := run(false)
	without := run(true)
	if with.RowsDeduped == 0 {
		t.Error("dedup should remove duplicate rows")
	}
	if without.RowsDeduped != 0 {
		t.Error("NoDedup should disable dedup")
	}
}

func TestUnchangedSemantics(t *testing.T) {
	// unchanged is always false the first time (§4), so a loop whose body
	// changes nothing still runs exactly once... and terminates on the
	// second check.
	m := compileMachine(t, `
edb x(V), count(V);
proc go(:)
  repeat
    count(1) += x(_).
  until unchanged(count(_));
  return(:) := count(_).
end
`, plan.Options{})
	insert(m, "x", []int64{5})
	if _, err := m.CallProc("main.go", []term.Tuple{{}}); err != nil {
		t.Fatal(err)
	}
	// First iteration inserts (1) (a change). Second iteration inserts
	// nothing -> unchanged -> exit.
	if m.Stats.LoopIterations != 2 {
		t.Errorf("loop iterations = %d, want 2", m.Stats.LoopIterations)
	}
}

func TestReturnExitsEarly(t *testing.T) {
	var buf bytes.Buffer
	m := compileMachine(t, `
edb e(X);
proc go(:X)
  return(:X) := e(X).
  never() := e(X) & write('should not run').
end
edb never();
`, plan.Options{})
	m.Out = &buf
	insert(m, "e", []int64{1})
	out, err := m.CallProc("main.go", []term.Tuple{{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("out = %v", out)
	}
	if buf.Len() != 0 {
		t.Errorf("statement after return executed: %q", buf.String())
	}
}

func TestEmptyBodyStopsSideEffects(t *testing.T) {
	// §3.2: execution stops when a supplementary relation is empty, so the
	// write after an empty match must not run.
	var buf bytes.Buffer
	m := compileMachine(t, `
edb e(X), out(X);
proc go(:)
  out(X) := e(X) & write(X).
  return(:) := out(_).
end
`, plan.Options{})
	m.Out = &buf
	if _, err := m.CallProc("main.go", []term.Tuple{{}}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("write ran on empty supplementary: %q", buf.String())
	}
}

func TestClearingAssignOnEmptyBodyClears(t *testing.T) {
	m := compileMachine(t, `
edb tgt(X), src(X);
proc go(:)
  tgt(X) := src(X).
  return(:) := tgt(_).
end
`, plan.Options{})
	insert(m, "tgt", []int64{9})
	if _, err := m.CallProc("main.go", []term.Tuple{{}}); err != nil {
		t.Fatal(err)
	}
	rel, _ := m.EDB.Get(term.NewString("tgt"), 1)
	if rel.Len() != 0 {
		t.Errorf("tgt should be cleared by := with empty body: %v", rel.All())
	}
}

func TestHiLogHeadCreatesSetRelations(t *testing.T) {
	m := compileMachine(t, `
edb member(G, X);
proc build(:)
  group(G)(X) := member(G, X).
  return(:) := member(_,_).
end
`, plan.Options{})
	m.EDB.Ensure(term.NewString("member"), 2).Insert(
		term.Tuple{term.NewString("a"), term.NewInt(1)})
	m.EDB.Ensure(term.NewString("member"), 2).Insert(
		term.Tuple{term.NewString("b"), term.NewInt(2)})
	if _, err := m.CallProc("main.build", []term.Tuple{{}}); err != nil {
		t.Fatal(err)
	}
	ga, ok := m.EDB.Get(term.Atom("group", term.NewString("a")), 1)
	if !ok || ga.Len() != 1 {
		t.Errorf("group(a) = %v", ga)
	}
	gb, ok := m.EDB.Get(term.Atom("group", term.NewString("b")), 1)
	if !ok || !gb.Contains(term.Tuple{term.NewInt(2)}) {
		t.Error("group(b) missing")
	}
}

func TestRecursiveProcCalls(t *testing.T) {
	// Procedures may be called recursively with per-invocation locals (§4).
	m := compileMachine(t, `
edb e(X,Y);
proc down(X:Y)
rels next(Y), deeper(Y);
  next(Y) := in(X) & e(X,Y).
  deeper(Z) := next(Y) & down(Y, Z).
  return(X:Y) := next(Y).
  return(X:Y) += deeper(Y).
end
`, plan.Options{})
	_ = m
	// Note: return exits after the first return statement; the second is
	// unreachable, so only direct successors are returned. This documents
	// the §4 exit semantics.
	insert(m, "e", []int64{1, 2}, []int64{2, 3})
	out, err := m.CallProc("main.down", []term.Tuple{{term.NewInt(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("down(1) = %v (return should exit the procedure)", out)
	}
}

func TestLoopLimitEnforced(t *testing.T) {
	m := compileMachine(t, `
edb flag(X);
proc spin(:)
  repeat
    flag(1) += flag(1).
  until empty(flag(_));
  return(:) := flag(_).
end
`, plan.Options{})
	m.LoopLimit = 3
	insert(m, "flag", []int64{1})
	_, err := m.CallProc("main.spin", []term.Tuple{{}})
	if err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Errorf("want loop-limit error, got %v", err)
	}
}

func TestRuntimeErrorWrapping(t *testing.T) {
	m := compileMachine(t, `
edb p(X), out(X);
proc go(:)
  out(Y) := p(X) & Y = X / 0.
  return(:) := out(_).
end
`, plan.Options{})
	insert(m, "p", []int64{1})
	_, err := m.CallProc("main.go", []term.Tuple{{}})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division error, got %v", err)
	}
	if !strings.Contains(err.Error(), "main.go") {
		t.Errorf("error should carry proc context: %v", err)
	}
}

func TestReadLineBuiltin(t *testing.T) {
	m := compileMachine(t, `
edb seen(L);
proc slurp(:)
  repeat
    seen(L) += read_line(L).
  until unchanged(seen(_));
  return(:) := seen(_).
end
`, plan.Options{})
	m.In = bufioReader("alpha\nbeta\n")
	if _, err := m.CallProc("main.slurp", []term.Tuple{{}}); err != nil {
		t.Fatal(err)
	}
	rel, _ := m.EDB.Get(term.NewString("seen"), 1)
	if rel.Len() != 2 {
		t.Errorf("seen = %v", rel.All())
	}
}
