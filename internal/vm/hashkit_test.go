package vm

import (
	"fmt"
	"math/rand"
	"testing"

	"gluenail/internal/term"
)

// TestHashTableForcedCollisions drives findOrAdd with entries that all
// share one 64-bit hash: the table must fall back to the caller's equality
// predicate and keep every distinct entry while still finding duplicates.
// This is the collision path every hash-first kernel (dedup, grouping,
// call-barrier prefix index, head grouping) relies on; real 64-bit row
// hashes collide too rarely to exercise it end to end.
func TestHashTableForcedCollisions(t *testing.T) {
	const h = uint64(0xdeadbeefcafef00d)
	entries := make([]int, 0, 100)
	var tbl hashTable
	tbl.reset(4) // force several grows under collision chains
	cand := -1
	eq := func(r int32) bool { return entries[r] == cand }
	for round := 0; round < 2; round++ {
		for v := 0; v < 100; v++ {
			cand = v
			ref, found := tbl.findOrAdd(h, int32(len(entries)), eq)
			if round == 0 {
				if found {
					t.Fatalf("round 0: entry %d reported as duplicate", v)
				}
				entries = append(entries, v)
			} else {
				if !found {
					t.Fatalf("round 1: entry %d not found again", v)
				}
				if entries[ref] != v {
					t.Fatalf("round 1: entry %d resolved to ref %d (=%d)", v, ref, entries[ref])
				}
			}
		}
	}
	if len(entries) != 100 {
		t.Fatalf("kept %d entries, want 100", len(entries))
	}
}

// TestHashTableMixedHashes checks the same invariants when hashes mostly
// differ but the table is small enough that linear-probe chains interleave
// slots of different hashes: eq must only ever see same-hash candidates.
func TestHashTableMixedHashes(t *testing.T) {
	type entry struct {
		h uint64
		v int
	}
	var entries []entry
	var tbl hashTable
	tbl.reset(2)
	var cand entry
	eq := func(r int32) bool {
		if entries[r].h != cand.h {
			t.Fatalf("eq called across different hashes: %#x vs %#x", entries[r].h, cand.h)
		}
		return entries[r].v == cand.v
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		// Only 8 distinct hashes over 40 distinct values: plenty of both
		// genuine duplicates and hash-only collisions.
		cand = entry{h: uint64(rng.Intn(8)) * 0x9e3779b97f4a7c15, v: rng.Intn(40)}
		ref, found := tbl.findOrAdd(cand.h, int32(len(entries)), eq)
		if found {
			if entries[ref] != cand {
				t.Fatalf("lookup of %v returned %v", cand, entries[ref])
			}
		} else {
			entries = append(entries, cand)
		}
	}
	seen := map[entry]bool{}
	for _, e := range entries {
		if seen[e] {
			t.Fatalf("entry %v stored twice", e)
		}
		seen[e] = true
	}
}

// collisionRows builds rows whose live registers collide pairwise under
// truncated comparisons — same string contents in different orders, equal
// strings arriving interned and non-interned, unbound slots — so the
// dedup/group parity tests stress the equality fallback.
func collisionRows(n int, rng *rand.Rand, unbound bool) ([][]term.Value, []int) {
	atoms := []string{"a", "b", "ab", "ba", "", "n001", "n002"}
	rows := make([][]term.Value, n)
	for i := range rows {
		row := make([]term.Value, 3)
		for c := 0; c < 3; c++ {
			switch rng.Intn(4) {
			case 0:
				if !unbound {
					row[c] = term.NewInt(-1)
					continue
				}
				row[c] = term.Value{} // unbound
			case 1:
				row[c] = term.NewInt(int64(rng.Intn(5)))
			case 2:
				row[c] = term.NewString(atoms[rng.Intn(len(atoms))])
			default:
				row[c] = term.Intern(atoms[rng.Intn(len(atoms))])
			}
		}
		rows[i] = row
	}
	return rows, []int{0, 1, 2}
}

// TestDedupMatchesStringKeyReference runs the hash-first dedup kernels
// (sequential and parallel) against the legacy string-key kernel on random
// rows mixing interned and non-interned atoms and unbound slots; kept rows
// and their order must be identical.
func TestDedupMatchesStringKeyReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rows, live := collisionRows(400, rand.New(rand.NewSource(seed)), true)
		clone := func() [][]term.Value {
			c := make([][]term.Value, len(rows))
			copy(c, rows)
			return c
		}
		ref := (&frame{m: &Machine{}}).dedupRowsStringKey(clone(), live)
		for name, f := range map[string]*frame{
			"seq": {m: &Machine{Parallelism: 1}},
			"par": {m: &Machine{Parallelism: 4, ParallelThreshold: 16}},
		} {
			got := f.dedupRows(clone(), live)
			if len(got) != len(ref) {
				t.Fatalf("seed %d %s: kept %d rows, reference kept %d", seed, name, len(got), len(ref))
			}
			for i := range ref {
				if !rowsEqualLive(got[i], ref[i], live) {
					t.Fatalf("seed %d %s: row %d differs", seed, name, i)
				}
			}
		}
	}
}

// TestGroupRowsMatchesStringKeyReference does the same for aggregation
// grouping: identical group partitions in identical first-seen order.
func TestGroupRowsMatchesStringKeyReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rows, regs := collisionRows(400, rand.New(rand.NewSource(seed+100)), false)
		f := &frame{m: &Machine{}}
		ref := f.groupRowsStringKey(rows, regs, false, 1)
		for name, groups := range map[string][][]int{
			"seq": f.groupRows(rows, regs, false, 1),
			"par": f.groupRows(rows, regs, true, 4),
		} {
			if len(groups) != len(ref) {
				t.Fatalf("seed %d %s: %d groups, reference %d", seed, name, len(groups), len(ref))
			}
			for g := range ref {
				if len(groups[g]) != len(ref[g]) {
					t.Fatalf("seed %d %s: group %d has %d rows, reference %d",
						seed, name, g, len(groups[g]), len(ref[g]))
				}
				for i := range ref[g] {
					if groups[g][i] != ref[g][i] {
						t.Fatalf("seed %d %s: group %d row %d: %d vs %d",
							seed, name, g, i, groups[g][i], ref[g][i])
					}
				}
			}
		}
	}
}

// allocRows builds n rows over two live registers with interned string and
// int columns and a duplicate every 4th row — the dedup/group alloc
// benchmark input.
func allocRows(n int) ([][]term.Value, []int) {
	rows := make([][]term.Value, n)
	for i := range rows {
		if i%4 == 3 {
			rows[i] = rows[i-2]
			continue
		}
		rows[i] = []term.Value{
			term.Intern(fmt.Sprintf("n%03d", i%97)),
			term.NewInt(int64(i % 13)),
		}
	}
	return rows, []int{0, 1}
}

// dedupAllocs measures allocations per dedupRows call on n rows. The master
// slice of row headers is copied into a scratch slice each run (copy, no
// allocation) because dedup compacts its argument in place.
func dedupAllocs(f *frame, n int) float64 {
	master, live := allocRows(n)
	work := make([][]term.Value, n)
	return testing.AllocsPerRun(20, func() {
		copy(work, master)
		f.dedupRows(work, live)
	})
}

// TestDedupAllocsPerRow pins the allocation behaviour of the dedup kernels:
// the sequential hash-first kernel must stay O(1) allocations per call
// (pooled table, no key bytes), the 4-worker kernel O(1) per morsel/shard,
// and the legacy string-key kernel must remain ≥ 2× worse per row — the
// E13 acceptance bar — so a regression in either direction is caught.
func TestDedupAllocsPerRow(t *testing.T) {
	const n = 4096
	seq := dedupAllocs(&frame{m: &Machine{Parallelism: 1}}, n)
	if perRow := seq / n; perRow > 0.01 {
		t.Errorf("sequential dedup: %.1f allocs/call (%.4f/row), want ≤ 0.01/row", seq, perRow)
	}
	par := dedupAllocs(&frame{m: &Machine{Parallelism: 4, ParallelThreshold: 64}}, n)
	if perRow := par / n; perRow > 0.05 {
		t.Errorf("4-worker dedup: %.1f allocs/call (%.4f/row), want ≤ 0.05/row", par, perRow)
	}
	legacy := dedupAllocs(&frame{m: &Machine{Parallelism: 1, StringKeyKernels: true}}, n)
	if legacy < 2*seq {
		t.Errorf("string-key dedup allocates %.1f/call vs hash-first %.1f/call; want ≥ 2×", legacy, seq)
	}
	t.Logf("dedup allocs per %d-row call: hash-first seq %.1f, hash-first 4-workers %.1f, string-key %.1f",
		n, seq, par, legacy)
}

// TestGroupRowsAllocsPerRow pins aggregation grouping: allocations scale
// with the number of groups (the group index slices), not the row count.
func TestGroupRowsAllocsPerRow(t *testing.T) {
	const n = 4096 // 97×13 value combinations → ≤ 1261 groups
	rows, regs := allocRows(n)
	for name, f := range map[string]*frame{
		"seq": {m: &Machine{Parallelism: 1}},
		"par": {m: &Machine{Parallelism: 4, ParallelThreshold: 64}},
	} {
		par := name == "par"
		got := testing.AllocsPerRun(20, func() {
			f.groupRows(rows, regs, par, 4)
		})
		// Budget: one hash slice + the groups slices (< 2 per distinct
		// group amortized) + parallel fan-out overhead.
		if limit := 1300 + 2*1261.0; got > limit {
			t.Errorf("%s groupRows: %.1f allocs/call, want ≤ %.0f", name, got, limit)
		}
	}
}
