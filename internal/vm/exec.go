package vm

import (
	"fmt"
	"sync/atomic"

	"gluenail/internal/ast"
	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// stmtState carries per-statement-execution state: the grouping registers
// accumulated by group_by barriers (§3.3.1).
type stmtState struct {
	groupRegs []int
}

func (f *frame) execStmt(st *plan.Stmt) error {
	atomic.AddInt64(&f.m.Stats.StmtsExecuted, 1)
	// Track the active statement for governor errors and panic
	// containment. Restored only on success — a restore during panic
	// unwinding (a defer) would erase the label before the recover at the
	// CallProcContext boundary reads it, and on the error path the failing
	// statement is exactly the right label to keep.
	prevProc, prevStmt := f.m.curProc, f.m.curStmt
	f.m.curProc, f.m.curStmt = f.proc.ID, st.Label
	// Plan or reuse: planning is O(ops²) over live statistics, so repeat
	// iterations adapt their op order as semi-naive deltas shrink and
	// observed selectivities feed the cost model — but the prepared-plan
	// cache (plancache.go) serves the previous plan back whenever the
	// referenced relations' stats epochs and the observed selectivities
	// still match, so the repeated-query hot path skips the reorder and
	// its op clones entirely.
	prof := f.m.profileFor(st)
	pp := f.stmtPlan(st, prof)
	f.m.lastPhys[st] = pp
	prof.Execs++
	rows, err := f.runSteps(st.NRegs, pp.Steps, prof)
	if err == nil {
		if f.m.Trace != nil {
			f.m.tracef("  [%s] %s -> %d row(s)", f.proc.ID, st.Label, len(rows))
		}
		err = f.applyHead(st, rows)
	}
	if err != nil {
		return fmt.Errorf("statement %q: %w", st.Label, err)
	}
	f.m.curProc, f.m.curStmt = prevProc, prevStmt
	return nil
}

func (f *frame) evalCond(c *plan.Cond) (bool, error) {
	psteps := f.condPlan(c)
	rows, err := f.runSteps(c.NRegs, psteps, nil)
	if err != nil {
		return false, err
	}
	return len(rows) > 0, nil
}

// runSteps executes the pipeline segments over the supplementary relation,
// starting from sup_0 = {ε}. Execution stops early when a supplementary
// relation becomes empty (§3.2), skipping any remaining side effects.
// prof (may be nil) accumulates per-op tuple counters.
func (f *frame) runSteps(nregs int, steps []plan.PhysStep, prof *plan.StmtProfile) ([][]term.Value, error) {
	rows := [][]term.Value{make([]term.Value, nregs)}
	state := &stmtState{}
	for i := range steps {
		step := &steps[i]
		var sprof *plan.StepProfile
		if prof != nil && i < len(prof.Steps) {
			sprof = &prof.Steps[i]
		}
		var err error
		rows, err = f.runPipe(step, rows, sprof)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return nil, nil
		}
		if step.Step.Dedup {
			rows = f.dedupRows(rows, step.Step.LiveRegs)
		}
		if step.Step.Barrier != nil {
			atomic.AddInt64(&f.m.Stats.PipelineBreaks, 1)
			rows, err = f.applyBarrier(step.Step.Barrier, rows, state)
			if err != nil {
				return nil, err
			}
			if len(rows) == 0 {
				return nil, nil
			}
		}
	}
	return rows, nil
}

func cloneRow(row []term.Value) []term.Value {
	cp := make([]term.Value, len(row))
	copy(cp, row)
	return cp
}

// runPipe streams rows through the segment's operators. The pipelined
// strategy nests the operators per row and copies only at the segment end;
// the materialized baseline stores the full row set after every operator
// (the extra load and store per tuple of §9). Statically named relations
// are resolved once per segment, not per row — relations only change at
// barriers and heads, never inside a segment. When the segment projects
// enough rows and the machine allows more than one worker, execution fans
// out over morsels (parallel.go); small segments keep the exact
// single-threaded path so micro-queries pay no goroutine overhead.
func (f *frame) runPipe(step *plan.PhysStep, rows [][]term.Value, sprof *plan.StepProfile) ([][]term.Value, error) {
	pops := step.Ops
	if len(pops) == 0 {
		return rows, nil
	}
	ops := make([]plan.PipeOp, len(pops))
	for i := range pops {
		ops[i] = pops[i].Op
	}
	rels := make([]storage.Rel, len(ops))
	have := make([]bool, len(ops))
	for i, op := range ops {
		if m, ok := op.(*plan.Match); ok && m.Rel.Name.IsGround() {
			rel, err := f.resolveRead(m.Rel, nil)
			if err != nil {
				return nil, err
			}
			rels[i], have[i] = rel, true
		}
	}
	// cnt[i] counts tuples entering op i; cnt[len(ops)] counts segment
	// output. The flush attributes them to each op's logical index, so
	// feedback stays attached across re-orderings.
	cnt := make([]int64, len(ops)+1)
	defer func() {
		if sprof == nil {
			return
		}
		for j := range pops {
			if pops[j].LogIdx >= len(sprof.Ops) {
				continue
			}
			op := &sprof.Ops[pops[j].LogIdx]
			op.In += cnt[j]
			op.Out += cnt[j+1]
			op.Mask = plan.OpMask(pops[j].Op)
		}
	}()
	if f.m.Materialized {
		cur := rows
		for i, op := range ops {
			cnt[i] += int64(len(cur))
			out, err := f.materializeOp(op, rels[i], have[i], cur)
			if err != nil {
				return nil, err
			}
			cur = out
			if len(cur) == 0 {
				return nil, nil
			}
		}
		cnt[len(ops)] += int64(len(cur))
		return cur, nil
	}
	if workers := f.m.workerCount(); workers > 1 {
		thr := f.m.fanOutThreshold()
		if projectedRows(ops, rels, have, len(rows), thr) >= thr {
			return f.runPipeParallel(step, ops, rels, have, rows, workers, sprof, cnt)
		}
	}
	if f.m.BatchKernels {
		return f.runPipeBatch(ops, rels, have, rows, cnt)
	}
	var out [][]term.Value
	// One probe-key scratch per op: ops at different pipeline depths hold
	// their keys live simultaneously, but a single op reuses its key
	// across all the rows that reach it.
	scratch := make([]term.Tuple, len(ops))
	var rec func(i int, row []term.Value) error
	rec = func(i int, row []term.Value) error {
		cnt[i]++
		if i == len(ops) {
			out = append(out, cloneRow(row))
			atomic.AddInt64(&f.m.Stats.TuplesMaterialized, 1)
			// Periodic in-segment governor check: a runaway cross product
			// must not outrun the statement-boundary checks.
			if len(out)&(govCheckRows-1) == 0 {
				return f.m.pollGovernor()
			}
			return nil
		}
		return f.applyPipeOp(ops[i], rels[i], have[i], &scratch[i], row, func() error { return rec(i+1, row) })
	}
	for _, row := range rows {
		if err := rec(0, row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// unbind zeroes the registers an op bound; the compiler guarantees they
// were unbound before the op ran, so zeroing restores the pre-op state
// without a snapshot.
func unbind(regs []term.Value, bind []int) {
	for _, r := range bind {
		regs[r] = term.Value{}
	}
}

// buildKey constructs the index-lookup key for the bound argument
// positions in *sk, reusing its backing array across the rows of one op
// (the per-row probe-key allocation used to dominate bound probes). Safe
// because the storage layer never retains a lookup key past Lookup, and
// only mask-selected slots of the key are ever read — an op's mask is
// fixed, so stale unselected slots from a previous row are never seen.
func buildKey(sk *term.Tuple, mask uint32, args []term.Pattern, regs []term.Value, arity int) (term.Tuple, error) {
	if mask == 0 {
		return nil, nil
	}
	var key term.Tuple
	if cap(*sk) >= arity {
		key = (*sk)[:arity]
	} else {
		key = make(term.Tuple, arity)
		*sk = key
	}
	for i := range args {
		if mask&(1<<uint(i)) != 0 {
			v, err := args[i].Build(regs)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
	}
	return key, nil
}

// matchArgs matches every pattern against the tuple, binding registers.
func matchArgs(args []term.Pattern, t term.Tuple, regs []term.Value) bool {
	for i := range args {
		if !args[i].Match(t[i], regs) {
			return false
		}
	}
	return true
}

// scanRel iterates matching tuples of rel, calling emit with the op's
// registers bound per tuple; the op's bind set is zeroed between tuples
// and before returning.
func (f *frame) scanRel(rel storage.Rel, sk *term.Tuple, bind []int, mask uint32,
	args []term.Pattern, regs []term.Value, emit func() error) error {
	if rel == nil {
		return nil
	}
	key, err := buildKey(sk, mask, args, regs, rel.Arity())
	if err != nil {
		return err
	}
	var emitErr error
	rel.Lookup(mask, key, func(t term.Tuple) bool {
		if matchArgs(args, t, regs) {
			if err := emit(); err != nil {
				emitErr = err
				unbind(regs, bind)
				return false
			}
		}
		unbind(regs, bind)
		return true
	})
	return emitErr
}

// existsIn reports whether any tuple of rel matches the (fully bound or
// wildcarded) patterns; negated ops have no unbound registers, so there is
// nothing to restore.
func (f *frame) existsIn(rel storage.Rel, sk *term.Tuple, mask uint32,
	args []term.Pattern, regs []term.Value) (bool, error) {
	if rel == nil {
		return false, nil
	}
	key, err := buildKey(sk, mask, args, regs, rel.Arity())
	if err != nil {
		return false, err
	}
	if mask != 0 && mask == (uint32(1)<<uint(rel.Arity()))-1 {
		// Fully bound probe: membership is the whole question, so ask it
		// directly — Contains is each engine's cheapest path (the disk
		// engine answers most misses from a per-run bloom filter, with no
		// I/O at all).
		return rel.Contains(key), nil
	}
	found := false
	rel.Lookup(mask, key, func(t term.Tuple) bool {
		if matchArgs(args, t, regs) {
			found = true
			return false
		}
		return true
	})
	return found, nil
}

// applyPipeOp runs one streaming operator on one row. rel/haveRel carry a
// segment-level pre-resolved relation for statically named matches.
func (f *frame) applyPipeOp(op plan.PipeOp, rel storage.Rel, haveRel bool,
	sk *term.Tuple, regs []term.Value, emit func() error) error {
	switch op := op.(type) {
	case *plan.Match:
		if !haveRel {
			var err error
			rel, err = f.resolveRead(op.Rel, regs)
			if err != nil {
				return err
			}
		}
		if op.Negated {
			found, err := f.existsIn(rel, sk, op.BoundMask, op.Args, regs)
			if err != nil {
				return err
			}
			if !found {
				return emit()
			}
			return nil
		}
		return f.scanRel(rel, sk, op.Bind, op.BoundMask, op.Args, regs, emit)
	case *plan.DynMatch:
		name, err := op.Pred.Build(regs)
		if err != nil {
			return err
		}
		rel := f.dynResolve(name, op.Arity, op.Narrowed, op.Candidates)
		if op.Negated {
			found, err := f.existsIn(rel, sk, op.BoundMask, op.Args, regs)
			if err != nil {
				return err
			}
			if !found {
				return emit()
			}
			return nil
		}
		return f.scanRel(rel, sk, op.Bind, op.BoundMask, op.Args, regs, emit)
	case *plan.Compare:
		l, err := evalExpr(op.L, regs)
		if err != nil {
			return err
		}
		r, err := evalExpr(op.R, regs)
		if err != nil {
			return err
		}
		ok, err := compareValues(op.Op, l, r)
		if err != nil {
			return err
		}
		if ok {
			return emit()
		}
		return nil
	case *plan.MatchBind:
		v, err := evalExpr(op.E, regs)
		if err != nil {
			return err
		}
		if op.Pat.Match(v, regs) {
			if err := emit(); err != nil {
				unbind(regs, op.Bind)
				return err
			}
		}
		unbind(regs, op.Bind)
		return nil
	}
	return fmt.Errorf("vm: unknown pipe op %T", op)
}

// dynResolve finds the relation a HiLog predicate name denotes. With
// compile-time narrowing, simple names outside the candidate set are
// rejected immediately and the store is probed directly; the baseline
// searches every class linearly, the work the paper's compiler exists to
// avoid (§9).
func (f *frame) dynResolve(name term.Value, arity int, narrowed bool,
	cands map[string]bool) storage.Rel {
	atomic.AddInt64(&f.m.Stats.DynDispatches, 1)
	if narrowed {
		if name.Kind() == term.Str {
			n := name.Str()
			if !cands[n] {
				return nil
			}
			if n == "in" && f.inRel.Arity() == arity {
				return f.inRel
			}
			if r, ok := f.locals[n]; ok && r.Arity() == arity {
				return r
			}
		}
		rel, ok := f.m.EDB.Get(name, arity)
		if !ok {
			return nil
		}
		return rel
	}
	// Baseline: runtime dereferencing checks each class in turn.
	if name.Kind() == term.Str {
		n := name.Str()
		if n == "in" && f.inRel.Arity() == arity {
			return f.inRel
		}
		for lname, r := range f.locals {
			if lname == n && r.Arity() == arity {
				return r
			}
		}
	}
	for _, rn := range f.m.EDB.Names() {
		if rn.Arity == arity && rn.Name.Equal(name) {
			rel, _ := f.m.EDB.Get(name, arity)
			return rel
		}
	}
	return nil
}

// dedupRows removes rows that agree on the live registers (§9: duplicate
// elimination at pipeline breaks). Large row sets shard the work across
// the worker pool; either path keeps the first occurrence of each key in
// input order. The hash-first kernel probes a pooled open-addressing
// table with the 64-bit hash of the live registers and compares rows
// directly on collision; no key bytes are materialized.
func (f *frame) dedupRows(rows [][]term.Value, live []int) [][]term.Value {
	if len(rows) < 2 {
		return rows
	}
	workers := f.m.workerCount()
	par := workers > 1 && len(rows) >= f.m.fanOutThreshold()
	if f.m.StringKeyKernels {
		if par {
			return f.dedupRowsParallelStringKey(rows, live, workers)
		}
		return f.dedupRowsStringKey(rows, live)
	}
	if par {
		return f.dedupRowsParallel(rows, live, workers)
	}
	if f.m.BatchKernels {
		return f.dedupRowsBatch(rows, live)
	}
	t := f.grabTable(len(rows))
	out := rows[:0]
	var cand []term.Value
	eq := func(r int32) bool { return rowsEqualLive(out[r], cand, live) }
	var removed int64
	for _, row := range rows {
		cand = row
		h := rowHashLive(row, live)
		if _, found := t.findOrAdd(h, int32(len(out)), eq); found {
			removed++
			continue
		}
		out = append(out, row)
	}
	f.releaseTable(t)
	if removed != 0 {
		atomic.AddInt64(&f.m.Stats.RowsDeduped, removed)
	}
	return out
}

// buildHeadTuple builds the head tuple for one row.
func buildHeadTuple(st *plan.Stmt, row []term.Value) (term.Tuple, error) {
	tup := make(term.Tuple, len(st.Head.Args))
	for i := range st.Head.Args {
		v, err := st.Head.Args[i].Build(row)
		if err != nil {
			return nil, err
		}
		tup[i] = v
	}
	return tup, nil
}

// applyHeadOp applies the statement's assignment operator to one target
// relation.
func applyHeadOp(st *plan.Stmt, rel storage.Rel, tuples []term.Tuple) {
	switch st.Op {
	case ast.OpAssign:
		rel.Clear()
		for _, t := range tuples {
			rel.Insert(t)
		}
	case ast.OpInsert:
		for _, t := range tuples {
			rel.Insert(t)
		}
	case ast.OpDelete:
		for _, t := range tuples {
			rel.Delete(t)
		}
	case ast.OpModify:
		rel.ModifyByKey(st.KeyMask, tuples)
	}
}

// applyHead applies the statement's assignment operator to the target
// relation(s). HiLog heads may address several relations in one statement;
// rows are grouped by computed relation name. A statically named head — by
// far the common case — resolves its single target once per statement
// execution and skips grouping entirely; computed names group through a
// pooled hash table on the name value, so the per-row canonical name key
// (term.Key) of the legacy kernel is gone from the hot path.
func (f *frame) applyHead(st *plan.Stmt, rows [][]term.Value) error {
	if f.m.StringKeyKernels {
		return f.applyHeadStringKey(st, rows)
	}
	if st.Head.Ref.Name.IsGround() {
		// One static target for the whole statement: it participates even
		// with an empty body (":=" clears it).
		rel, err := f.resolveWrite(st.Head.Ref, nil)
		if err != nil {
			return err
		}
		var tuples []term.Tuple
		if len(rows) > 0 {
			tuples = make([]term.Tuple, 0, len(rows))
		}
		for _, row := range rows {
			tup, err := buildHeadTuple(st, row)
			if err != nil {
				return err
			}
			tuples = append(tuples, tup)
		}
		applyHeadOp(st, rel, tuples)
		if err := f.checkRelBudget(rel); err != nil {
			return err
		}
		if st.Head.IsReturn {
			f.returned = true
		}
		return nil
	}
	type target struct {
		name   term.Value
		rel    storage.Rel
		tuples []term.Tuple
	}
	var targets []*target
	t := f.grabTable(len(rows))
	var candName term.Value
	eq := func(r int32) bool { return targets[r].name.Equal(candName) }
	for _, row := range rows {
		name, err := st.Head.Ref.Name.Build(row)
		if err != nil {
			return err
		}
		candName = name
		var g *target
		if gi, found := t.findOrAdd(name.Hash(), int32(len(targets)), eq); found {
			g = targets[gi]
		} else {
			rel, err := f.resolveWrite(st.Head.Ref, row)
			if err != nil {
				return err
			}
			g = &target{name: name, rel: rel}
			targets = append(targets, g)
		}
		tup, err := buildHeadTuple(st, row)
		if err != nil {
			return err
		}
		g.tuples = append(g.tuples, tup)
	}
	f.releaseTable(t)
	for _, g := range targets {
		applyHeadOp(st, g.rel, g.tuples)
		if err := f.checkRelBudget(g.rel); err != nil {
			return err
		}
	}
	if st.Head.IsReturn {
		f.returned = true
	}
	return nil
}
