package vm

import (
	"fmt"
	"math"
	"strings"

	"gluenail/internal/ast"
	"gluenail/internal/plan"
	"gluenail/internal/term"
)

// evalExpr evaluates a compiled expression over bound registers.
func evalExpr(e plan.Expr, regs []term.Value) (term.Value, error) {
	switch e := e.(type) {
	case plan.ConstE:
		return e.V, nil
	case plan.RegE:
		v := regs[e.Reg]
		if v.IsZero() {
			return term.Value{}, fmt.Errorf("unbound variable in expression")
		}
		return v, nil
	case plan.PatE:
		return e.P.Build(regs)
	case plan.BinE:
		l, err := evalExpr(e.L, regs)
		if err != nil {
			return term.Value{}, err
		}
		r, err := evalExpr(e.R, regs)
		if err != nil {
			return term.Value{}, err
		}
		return evalArith(e.Op, l, r)
	case plan.CallE:
		args := make([]term.Value, len(e.Args))
		for i := range e.Args {
			v, err := evalExpr(e.Args[i], regs)
			if err != nil {
				return term.Value{}, err
			}
			args[i] = v
		}
		return evalFn(e.Fn, args)
	}
	return term.Value{}, fmt.Errorf("vm: unknown expression %T", e)
}

func evalArith(op ast.BinOp, l, r term.Value) (term.Value, error) {
	lf, lok := l.Num()
	rf, rok := r.Num()
	if !lok || !rok {
		return term.Value{}, fmt.Errorf("arithmetic on non-numeric values %v %s %v", l, op, r)
	}
	bothInt := l.Kind() == term.Int && r.Kind() == term.Int
	switch op {
	case ast.OpAdd:
		if bothInt {
			return term.NewInt(l.Int() + r.Int()), nil
		}
		return term.NewFloat(lf + rf), nil
	case ast.OpSub:
		if bothInt {
			return term.NewInt(l.Int() - r.Int()), nil
		}
		return term.NewFloat(lf - rf), nil
	case ast.OpMul:
		if bothInt {
			return term.NewInt(l.Int() * r.Int()), nil
		}
		return term.NewFloat(lf * rf), nil
	case ast.OpDiv:
		if rf == 0 {
			return term.Value{}, fmt.Errorf("division by zero")
		}
		if bothInt && l.Int()%r.Int() == 0 {
			return term.NewInt(l.Int() / r.Int()), nil
		}
		return term.NewFloat(lf / rf), nil
	case ast.OpMod:
		if !bothInt {
			return term.Value{}, fmt.Errorf("mod requires integers")
		}
		if r.Int() == 0 {
			return term.Value{}, fmt.Errorf("mod by zero")
		}
		return term.NewInt(l.Int() % r.Int()), nil
	}
	return term.Value{}, fmt.Errorf("vm: unknown arithmetic op %v", op)
}

// evalFn evaluates the builtin string/number functions (§2: built-in
// operators for concatenation, length, and substring).
func evalFn(fn string, args []term.Value) (term.Value, error) {
	switch fn {
	case "strcat":
		if args[0].Kind() != term.Str || args[1].Kind() != term.Str {
			return term.Value{}, fmt.Errorf("strcat requires strings")
		}
		return term.NewString(args[0].Str() + args[1].Str()), nil
	case "strlen":
		if args[0].Kind() != term.Str {
			return term.Value{}, fmt.Errorf("strlen requires a string")
		}
		return term.NewInt(int64(len(args[0].Str()))), nil
	case "substr":
		if args[0].Kind() != term.Str || args[1].Kind() != term.Int || args[2].Kind() != term.Int {
			return term.Value{}, fmt.Errorf("substr requires (string, int, int)")
		}
		s := args[0].Str()
		start := args[1].Int() - 1 // 1-based
		length := args[2].Int()
		if start < 0 || length < 0 || start > int64(len(s)) {
			return term.Value{}, fmt.Errorf("substr(%q, %d, %d) out of range", s, args[1].Int(), length)
		}
		end := start + length
		if end > int64(len(s)) {
			end = int64(len(s))
		}
		return term.NewString(s[start:end]), nil
	case "abs":
		switch args[0].Kind() {
		case term.Int:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return term.NewInt(v), nil
		case term.Float:
			return term.NewFloat(math.Abs(args[0].Float())), nil
		}
		return term.Value{}, fmt.Errorf("abs requires a number")
	}
	return term.Value{}, fmt.Errorf("vm: unknown function %q", fn)
}

// compareValues evaluates a comparison. Mixed int/float operands compare
// numerically; otherwise both sides must have the same kind and compare by
// the term order (strings lexicographically).
func compareValues(op ast.CmpOp, l, r term.Value) (bool, error) {
	var c int
	lf, lok := l.Num()
	rf, rok := r.Num()
	switch {
	case lok && rok:
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	case l.Kind() == r.Kind():
		c = l.Compare(r)
	default:
		// Cross-kind: only (in)equality is meaningful.
		switch op {
		case ast.CmpEq:
			return false, nil
		case ast.CmpNe:
			return true, nil
		}
		return false, fmt.Errorf("cannot order %v and %v", l, r)
	}
	switch op {
	case ast.CmpEq:
		return c == 0, nil
	case ast.CmpNe:
		return c != 0, nil
	case ast.CmpLt:
		return c < 0, nil
	case ast.CmpLe:
		return c <= 0, nil
	case ast.CmpGt:
		return c > 0, nil
	case ast.CmpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("vm: unknown comparison %v", op)
}

// valueText renders a value for I/O builtins: strings print raw, everything
// else in source syntax.
func valueText(v term.Value) string {
	if v.Kind() == term.Str {
		return v.Str()
	}
	return v.String()
}

func tupleText(t term.Tuple) string {
	parts := make([]string, len(t))
	for i := range t {
		parts[i] = valueText(t[i])
	}
	return strings.Join(parts, " ")
}
