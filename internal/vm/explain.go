package vm

import (
	"fmt"

	"gluenail/internal/plan"
)

// edbStats resolves planning statistics for EDB relations only — the view
// available outside a procedure frame (frame locals exist only during
// execution, so EXPLAIN of an un-run procedure uses defaults for them).
type edbStats struct{ m *Machine }

func (s edbStats) RelStats(ref plan.RelRef) (plan.RelEstimate, bool) {
	if ref.Space != plan.SpaceEDB || !ref.Name.IsGround() {
		return plan.RelEstimate{}, false
	}
	name, err := ref.Name.Build(nil)
	if err != nil {
		return plan.RelEstimate{}, false
	}
	rel, ok := s.m.EDB.Get(name, ref.Arity)
	if !ok {
		return plan.RelEstimate{}, false
	}
	return relEstimate(rel), true
}

// ExplainPhysical renders the physical plan of a compiled procedure.
// With analyze=false the plan is derived fresh from current statistics
// (EXPLAIN); with analyze=true the procedure's last executed plans are
// preferred and annotated with the accumulated per-op actual tuple counts
// (EXPLAIN ANALYZE — run the procedure between ResetProfiles and this
// call).
func (m *Machine) ExplainPhysical(procID string, analyze bool) (string, error) {
	proc, ok := m.Prog.Procs[procID]
	if !ok {
		return "", fmt.Errorf("vm: no procedure %q", procID)
	}
	pl := &plan.Planner{Stats: edbStats{m}, Reorder: m.StatsOrdering}
	f := &plan.PhysFormatter{
		Plan: func(steps []plan.Step, st *plan.Stmt) []plan.PhysStep {
			if analyze && st != nil {
				if pp := m.lastPhys[st]; pp != nil {
					return pp.Steps
				}
			}
			return pl.PlanSteps(steps, nil)
		},
		Profile: func(st *plan.Stmt) *plan.StmtProfile {
			if analyze {
				return m.profiles[st]
			}
			return nil
		},
	}
	return f.Proc(proc), nil
}
