// Execution governor: cooperative cancellation, resource budgets, and
// panic containment for the VM. Glue programs are Turing-complete
// (repeat/until, recursive procedures, §4), so a hostile or buggy program
// can loop forever, recurse without bound, or flood storage; the governor
// bounds all three and turns every trip into a typed, statement-labelled
// error instead of a hang, a stack overflow, or an OOM kill.
//
// The design keeps the per-row hot path untouched: checks run at
// instruction boundaries (which include every WAL commit point), at every
// repeat-loop iteration, at every morsel claim in the worker pool, and —
// so a single enormous segment cannot outrun the boundaries — once every
// govCheckRows emitted rows inside a segment. Each check is a non-blocking
// select on the context's cached Done channel plus two atomic loads for
// the tuple budget, cheap enough that E14 measures the overhead on the
// E13 workload under 2%.
package vm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"gluenail/internal/storage"
)

// Sentinel limit errors. GovernorError wraps exactly one of these, so
// callers classify failures with errors.Is.
var (
	// ErrCanceled reports that the context passed to CallProcContext was
	// canceled.
	ErrCanceled = errors.New("execution canceled")
	// ErrTimeout reports that the context's deadline expired.
	ErrTimeout = errors.New("execution deadline exceeded")
	// ErrMemoryBudget reports that a tuple or relation-cardinality budget
	// was exceeded.
	ErrMemoryBudget = errors.New("memory budget exceeded")
	// ErrDepthLimit reports that procedure calls nested deeper than
	// Machine.MaxDepth (unbounded recursion).
	ErrDepthLimit = errors.New("procedure call depth limit exceeded")
	// ErrLoopLimit reports that a repeat loop ran more than
	// Machine.LoopLimit iterations.
	ErrLoopLimit = errors.New("repeat loop iteration limit exceeded")
	// ErrPanic reports an internal VM/kernel panic contained at the
	// CallProcContext boundary. The machine is poisoned afterwards.
	ErrPanic = errors.New("internal execution panic")
	// ErrPoisoned rejects calls on a machine poisoned by an earlier panic.
	ErrPoisoned = errors.New("machine poisoned by earlier panic")
)

// govCheckRows is the emitted-row interval between in-segment governor
// checks: frequent enough that a runaway cross product is stopped long
// before it exhausts memory, rare enough that the per-row cost is one
// counter mask.
const govCheckRows = 8192

// DefaultMaxDepth is the procedure-call recursion depth the public API
// configures when no budget overrides it — deep enough for any reasonable
// program, shallow enough to fail cleanly long before the goroutine stack
// does.
const DefaultMaxDepth = 4096

// GovernorError is the typed failure the governor raises: Limit is the
// sentinel that tripped (errors.Is-able), Proc and Stmt locate the active
// procedure and statement label, and Detail carries the specifics (the
// budget numbers, the panic value).
type GovernorError struct {
	Limit  error
	Proc   string
	Stmt   string
	Detail string
}

func (e *GovernorError) Error() string {
	msg := e.Limit.Error()
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Proc != "" || e.Stmt != "" {
		loc := e.Proc
		if e.Stmt != "" {
			if loc != "" {
				loc += ", "
			}
			loc += fmt.Sprintf("statement %q", e.Stmt)
		}
		msg += " (in " + loc + ")"
	}
	return msg
}

func (e *GovernorError) Unwrap() error { return e.Limit }

// governor is the per-top-level-call check state: the cached Done channel
// (a non-blocking select per check), the context for deadline/cancel
// classification, and the tuple-budget baseline snapshotted from the
// storage insert counters at entry.
type governor struct {
	ctx       context.Context
	done      <-chan struct{}
	maxTuples int64
	base      int64
	edb, temp *storage.Stats
}

// tuplesUsed returns the tuples inserted (EDB + temp) since the governed
// call entered, read atomically so morsel workers can poll while storage
// writers run on other statements' history.
func (g *governor) tuplesUsed() int64 {
	n := g.edb.TuplesInserted()
	if g.temp != g.edb {
		n += g.temp.TuplesInserted()
	}
	return n - g.base
}

// installGovernor arms the governor for a top-level call. It is a no-op
// (nil governor, zero-cost checks) when neither a cancelable context nor a
// tuple budget is in play.
func (m *Machine) installGovernor(ctx context.Context) {
	done := ctx.Done()
	if done == nil && m.MaxTuples <= 0 {
		m.gov = nil
		return
	}
	g := &governor{
		ctx:       ctx,
		done:      done,
		maxTuples: m.MaxTuples,
		edb:       m.EDB.Stats(),
		temp:      m.Temp.Stats(),
	}
	if g.maxTuples > 0 {
		g.base = g.edb.TuplesInserted()
		if g.temp != g.edb {
			g.base += g.temp.TuplesInserted()
		}
	}
	m.gov = g
}

// pollGovernor is the cooperative check: nil governor means ungoverned
// (one pointer load), otherwise a non-blocking Done select and, when a
// tuple budget is set, two atomic counter loads. Safe to call from morsel
// workers — the executing goroutine is parked in wg.Wait while they run,
// so the location fields it wrote before fan-out are stable.
func (m *Machine) pollGovernor() error {
	g := m.gov
	if g == nil {
		return nil
	}
	atomic.AddInt64(&m.Stats.GovernorChecks, 1)
	if g.done != nil {
		select {
		case <-g.done:
			limit := ErrCanceled
			if errors.Is(g.ctx.Err(), context.DeadlineExceeded) {
				limit = ErrTimeout
			}
			return m.govErr(limit, "")
		default:
		}
	}
	if g.maxTuples > 0 {
		if used := g.tuplesUsed(); used > g.maxTuples {
			return m.govErr(ErrMemoryBudget,
				fmt.Sprintf("%d tuples inserted, budget %d", used, g.maxTuples))
		}
	}
	return nil
}

// govTripped is the morsel workers' drain check: true once the governor
// has a reason to abort, so workers stop claiming morsels and join.
func (m *Machine) govTripped() bool {
	g := m.gov
	if g == nil {
		return false
	}
	if g.done != nil {
		select {
		case <-g.done:
			return true
		default:
		}
	}
	return g.maxTuples > 0 && g.tuplesUsed() > g.maxTuples
}

// govErr builds a GovernorError at the current execution location.
func (m *Machine) govErr(limit error, detail string) error {
	return &GovernorError{Limit: limit, Proc: m.curProc, Stmt: m.curStmt, Detail: detail}
}

// checkRelBudget enforces the max-relation-cardinality budget after a
// write lands in rel. A relation that spills rows beyond the budget to
// disk (storage.MemResident — the spill-backed scratch tables) is charged
// its resident rows, not its total cardinality: its flush threshold is
// capped at the budget, so instead of aborting with ErrMemoryBudget it
// keeps going out of core. Fully memory-resident relations (the default)
// are charged Len as before.
func (f *frame) checkRelBudget(rel storage.Rel) error {
	max := f.m.MaxRelRows
	if max <= 0 || rel == nil {
		return nil
	}
	rows := rel.Len()
	if mr, ok := rel.(storage.MemResident); ok {
		rows = mr.MemRows()
	}
	if rows <= max {
		return nil
	}
	return f.m.govErr(ErrMemoryBudget,
		fmt.Sprintf("relation %v holds %d rows in memory, budget %d", rel.Name(), rows, max))
}

// abortPoint mirrors commitPoint for the failure path: when a top-level
// statement aborts (error, cancel, budget trip, or contained panic), the
// Abort hook discards the statement's partial EDB deltas from the WAL
// recorder so the next commit seals only whole statements — durable state
// stays a statement-boundary prefix.
func (m *Machine) abortPoint() {
	if m.Abort != nil && m.callDepth == 1 {
		m.Abort()
	}
}
