// Hash-first kernels for the executor's tuple-level hot paths. Duplicate
// elimination, aggregation grouping, call-barrier probing, and HiLog head
// grouping used to encode every row into a freshly allocated string map
// key; §10 of the paper observes that evaluation cost "is dominated by the
// cost of the low-level tuple operations", and those key bytes were
// exactly such a cost. The kernels here instead hash live registers
// in place (term.Value.HashInto, with interned atoms contributing a
// precomputed content hash), keep candidates in open-addressing tables
// keyed by the 64-bit row hash, and compare the actual rows on hash
// collision — no key bytes are ever materialized. Scratch tables are
// pooled per frame, so a repeat loop's iterations reuse one allocation.
package vm

import "gluenail/internal/term"

// hashTable is an open-addressing (linear probing) table mapping 64-bit
// entry hashes to caller-defined int32 refs. The table stores refs only;
// the caller owns the entries and supplies an equality predicate on refs,
// so a collision is resolved against the live data it refers to. The
// zero value is ready to use (reset sizes it).
type hashTable struct {
	hashes []uint64
	refs   []int32 // ref+1; 0 marks an empty slot
	mask   int
	used   int
	growAt int
}

// reset prepares the table for about n entries, reusing the backing
// arrays when they are already big enough (the per-frame pool path).
func (t *hashTable) reset(n int) {
	want := 16
	for want*3 < n*4 { // grow at 75% load
		want *= 2
	}
	if len(t.refs) >= want {
		clear(t.refs)
	} else {
		t.hashes = make([]uint64, want)
		t.refs = make([]int32, want)
	}
	t.mask = len(t.refs) - 1
	t.used = 0
	t.growAt = len(t.refs) * 3 / 4
}

// findOrAdd looks up hash h; eq(ref) confirms a same-hash slot really
// holds an equal entry. On a miss the slot records newRef and (newRef,
// false) returns; on a hit the existing ref and true return. eq is only
// invoked on exact 64-bit hash matches.
func (t *hashTable) findOrAdd(h uint64, newRef int32, eq func(int32) bool) (int32, bool) {
	i := int(h) & t.mask
	for {
		r := t.refs[i]
		if r == 0 {
			t.refs[i] = newRef + 1
			t.hashes[i] = h
			t.used++
			if t.used >= t.growAt {
				t.grow()
			}
			return newRef, false
		}
		if t.hashes[i] == h && eq(r-1) {
			return r - 1, true
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table, reinserting refs by their stored hashes (no eq
// needed: existing entries are distinct by construction).
func (t *hashTable) grow() {
	oldH, oldR := t.hashes, t.refs
	t.hashes = make([]uint64, 2*len(oldH))
	t.refs = make([]int32, 2*len(oldR))
	t.mask = len(t.refs) - 1
	t.growAt = len(t.refs) * 3 / 4
	for j, r := range oldR {
		if r == 0 {
			continue
		}
		h := oldH[j]
		i := int(h) & t.mask
		for t.refs[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.hashes[i] = h
		t.refs[i] = r
	}
}

// rowHashLive folds the live registers of a row into a 64-bit hash.
// An unbound register folds its Invalid kind tag, so it can never alias
// any ground value and two rows unbound in the same slots hash equal.
func rowHashLive(row []term.Value, live []int) uint64 {
	h := term.HashSeed
	for _, r := range live {
		h = row[r].HashInto(h)
	}
	return h
}

// rowsEqualLive reports whether two rows agree on the live registers
// (unbound matches only unbound) — the collision check backing every
// row-hash table.
func rowsEqualLive(a, b []term.Value, live []int) bool {
	for _, r := range live {
		if !a[r].Equal(b[r]) {
			return false
		}
	}
	return true
}

// prefixIndex groups call-barrier results by their bound-argument prefix.
// Build (init/add) runs on the sequential barrier path; get is closure-free
// and read-only, so the join-back phase may probe it from concurrent
// morsel workers.
type prefixIndex struct {
	tbl      hashTable
	prefixes []term.Tuple // representative prefix per group
	groups   [][]term.Tuple
}

func (px *prefixIndex) init(n int) { px.tbl.reset(n) }

// add appends result to the group of its prefix, creating the group on
// first sight. prefix must alias result's leading columns.
func (px *prefixIndex) add(prefix, result term.Tuple) {
	eq := func(r int32) bool { return px.prefixes[r].Equal(prefix) }
	if g, found := px.tbl.findOrAdd(prefix.Hash(), int32(len(px.groups)), eq); found {
		px.groups[g] = append(px.groups[g], result)
	} else {
		px.prefixes = append(px.prefixes, prefix)
		px.groups = append(px.groups, []term.Tuple{result})
	}
}

// get returns the result group whose prefix equals key (whose hash is h),
// or nil. No closures, no writes, no allocation: safe and cheap for
// concurrent probes.
func (px *prefixIndex) get(h uint64, key term.Tuple) []term.Tuple {
	i := int(h) & px.tbl.mask
	for {
		r := px.tbl.refs[i]
		if r == 0 {
			return nil
		}
		if px.tbl.hashes[i] == h && px.prefixes[r-1].Equal(key) {
			return px.groups[r-1]
		}
		i = (i + 1) & px.tbl.mask
	}
}

// grabTable takes a scratch table from the frame's pool (or makes one)
// sized for n entries. Frames execute statements sequentially, so the
// pool needs no locking; parallel sections that want private tables
// simply construct their own. Return it with releaseTable so the next
// statement — or the next iteration of a repeat loop — reuses the
// backing arrays instead of reallocating.
func (f *frame) grabTable(n int) *hashTable {
	var t *hashTable
	if k := len(f.scratch); k > 0 {
		t = f.scratch[k-1]
		f.scratch = f.scratch[:k-1]
	} else {
		t = new(hashTable)
	}
	t.reset(n)
	return t
}

func (f *frame) releaseTable(t *hashTable) {
	f.scratch = append(f.scratch, t)
}

// grabHashes takes the frame's pooled bulk-hash vector, sized to n
// (batch.go's dedup kernel). Same sequential-per-frame contract as
// grabTable.
func (f *frame) grabHashes(n int) []uint64 {
	if cap(f.hashBuf) >= n {
		return f.hashBuf[:n]
	}
	f.hashBuf = make([]uint64, n)
	return f.hashBuf
}

func (f *frame) releaseHashes(h []uint64) {
	f.hashBuf = h[:0]
}
