// Morsel-driven intra-segment parallelism. The paper's pipelined strategy
// (§9) eliminates the per-tuple load and store of materialization; this
// file eliminates the single-core limit on top of it. Rows of a segment's
// supplementary relation are independent between pipeline breaks, so the
// executor partitions them into contiguous morsels, fans the morsels out
// to a worker pool (Leis et al.'s morsel-driven model), and runs the same
// nested operator pipeline per worker. Each row is its own register bank,
// each worker owns a private output buffer per morsel, and the per-morsel
// outputs are concatenated in input order — the merged row stream is
// byte-identical to what sequential execution produces, so dedup,
// aggregation, golden files, and sorted query output are unchanged by the
// worker count.
package vm

import (
	"sync"
	"sync/atomic"
	"time"

	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

const (
	// defaultParallelThreshold is the projected row count below which a
	// segment stays on the sequential path (goroutine fan-out costs more
	// than it saves on micro-queries).
	defaultParallelThreshold = 128
	// minMorselRows keeps morsels big enough that dispatch overhead stays
	// negligible next to per-row pipeline work.
	minMorselRows = 16
	// morselsPerWorker oversubscribes the morsel list so workers that draw
	// cheap morsels can steal more work instead of idling (join fan-out is
	// rarely uniform across the driver).
	morselsPerWorker = 4
)

// morsel is a contiguous range of supplementary rows.
type morsel struct{ start, end int }

// morsels splits n rows into contiguous ranges sized for the worker count.
func morsels(n, workers int) []morsel {
	per := n / (workers * morselsPerWorker)
	if per < minMorselRows {
		per = minMorselRows
	}
	if per > n {
		per = n
	}
	ms := make([]morsel, 0, (n+per-1)/per)
	for s := 0; s < n; s += per {
		e := s + per
		if e > n {
			e = n
		}
		ms = append(ms, morsel{start: s, end: e})
	}
	return ms
}

// panicBox carries the first panic out of a worker pool to the caller's
// goroutine: workers `defer box.capture()`, the caller calls rethrow after
// the pool has joined. Re-raising on the caller means the single recover
// at the CallProcContext boundary contains worker panics too, with no
// goroutine left running or leaked.
type panicBox struct {
	p atomic.Pointer[panicVal]
}

type panicVal struct{ v any }

func (b *panicBox) capture() {
	if r := recover(); r != nil {
		b.p.CompareAndSwap(nil, &panicVal{v: r})
	}
}

func (b *panicBox) tripped() bool { return b.p.Load() != nil }

func (b *panicBox) rethrow() {
	if pv := b.p.Load(); pv != nil {
		panic(pv.v)
	}
}

// runMorsels drains the morsel list with up to `workers` goroutines, each
// pulling the next morsel index from a shared cursor. fn runs once per
// morsel; callers keep per-morsel state and merge it in index order.
// Every worker re-checks the governor and the pool's panic flag before
// claiming a morsel, so on cancellation or a sibling's panic the pool
// drains: workers stop claiming, the caller joins all of them in wg.Wait,
// and only then does the first panic re-raise on the caller's goroutine.
// All exits — success, error, cancel, panic — pass through wg.Wait, so no
// error path leaks a worker goroutine.
func (m *Machine) runMorsels(ms []morsel, workers int, fn func(mi int)) {
	if len(ms) == 1 {
		fn(0)
		return
	}
	if workers > len(ms) {
		workers = len(ms)
	}
	var next atomic.Int64
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer box.capture()
			for {
				if box.tripped() || m.govTripped() {
					return
				}
				mi := int(next.Add(1)) - 1
				if mi >= len(ms) {
					return
				}
				fn(mi)
			}
		}()
	}
	wg.Wait()
	box.rethrow()
}

// projectedRows estimates how many driver rows the segment will produce,
// walking the ops the way the greedy reorderer bound them: an unbound scan
// multiplies the estimate by the relation size, a bound probe or filter
// leaves it alone (conservative: join fan-out is not modeled). The
// estimate decides whether fanning out is worth the goroutine overhead.
func projectedRows(ops []plan.PipeOp, rels []storage.Rel, have []bool, rows, cap int) int {
	est := rows
	for i, op := range ops {
		m, ok := op.(*plan.Match)
		if !ok || m.Negated || m.BoundMask != 0 || !have[i] || rels[i] == nil {
			continue
		}
		if n := rels[i].Len(); n > 1 {
			est *= n
		}
		if est >= cap {
			return cap
		}
	}
	return est
}

// materializeOp runs one streaming op over the whole row set, materializing
// its output: the driver-building phase of the morsel dispatch, used while
// the supplementary relation is still too small to split.
func (f *frame) materializeOp(op plan.PipeOp, rel storage.Rel, haveRel bool,
	rows [][]term.Value) ([][]term.Value, error) {
	var out [][]term.Value
	var sk term.Tuple
	for _, row := range rows {
		err := f.applyPipeOp(op, rel, haveRel, &sk, row, func() error {
			out = append(out, cloneRow(row))
			atomic.AddInt64(&f.m.Stats.TuplesMaterialized, 1)
			if len(out)&(govCheckRows-1) == 0 {
				return f.m.pollGovernor()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runPipeParallel executes a segment's operators with morsel parallelism.
// A sequential prefix of ops first expands the supplementary relation until
// it is big enough to split (typically the leading relation scan — the
// driver table of the morsel model); decided indexes for the remaining ops
// are pre-built via the physical plan's hints (masks re-derived for the
// executed order) so workers never race an adaptive index build; then the
// remaining ops run per worker over disjoint morsels. cnt is the caller's
// per-op tuple counter array (len(ops)+1): the prefix accounts whole row
// sets, morsel workers merge their local counters with atomic adds.
func (f *frame) runPipeParallel(step *plan.PhysStep, ops []plan.PipeOp,
	rels []storage.Rel, have []bool, rows [][]term.Value, workers int,
	sprof *plan.StepProfile, cnt []int64) ([][]term.Value, error) {
	thr := f.m.fanOutThreshold()
	start := 0
	for start < len(ops) && len(rows) < thr {
		cnt[start] += int64(len(rows))
		out, err := f.materializeOp(ops[start], rels[start], have[start], rows)
		if err != nil {
			return nil, err
		}
		rows = out
		start++
		if len(rows) == 0 {
			return nil, nil
		}
	}
	if start == len(ops) {
		cnt[len(ops)] += int64(len(rows))
		return rows, nil
	}
	buildStart := time.Now()
	for _, h := range step.Hints {
		if h.Op >= start && have[h.Op] && rels[h.Op] != nil {
			rels[h.Op].PrepareRead(h.Mask, len(rows))
		}
	}
	if sprof != nil {
		sprof.BuildNs += time.Since(buildStart).Nanoseconds()
	}
	opBase := start
	ops, rels, have = ops[start:], rels[start:], have[start:]

	ms := morsels(len(rows), workers)
	results := make([][][]term.Value, len(ms))
	errs := make([]error, len(ms))
	var failed atomic.Bool
	f.m.runMorsels(ms, workers, func(mi int) {
		if failed.Load() {
			return
		}
		var out [][]term.Value
		var stored int64
		local := make([]int64, len(ops)+1)
		if f.m.BatchKernels {
			// Batched morsel: the same column-major kernels as the
			// sequential path, over this morsel's contiguous row range.
			// Per-morsel output order is what the scalar recursion yields,
			// so the in-order merge below stays byte-identical.
			bout, err := f.runPipeBatch(ops, rels, have, rows[ms[mi].start:ms[mi].end], local)
			if err != nil {
				errs[mi] = err
				failed.Store(true)
			}
			results[mi] = bout
			for i, c := range local {
				if c != 0 {
					atomic.AddInt64(&cnt[opBase+i], c)
				}
			}
			return
		}
		scratch := make([]term.Tuple, len(ops)) // per-worker probe keys
		var rec func(i int, row []term.Value) error
		rec = func(i int, row []term.Value) error {
			local[i]++
			if i == len(ops) {
				out = append(out, cloneRow(row))
				stored++
				if stored&(govCheckRows-1) == 0 {
					return f.m.pollGovernor()
				}
				return nil
			}
			return f.applyPipeOp(ops[i], rels[i], have[i], &scratch[i], row,
				func() error { return rec(i+1, row) })
		}
		for _, row := range rows[ms[mi].start:ms[mi].end] {
			if err := rec(0, row); err != nil {
				errs[mi] = err
				failed.Store(true)
				break
			}
		}
		results[mi] = out
		for i, c := range local {
			if c != 0 {
				atomic.AddInt64(&cnt[opBase+i], c)
			}
		}
		atomic.AddInt64(&f.m.Stats.TuplesMaterialized, stored)
	})
	total := 0
	for mi := range results {
		if errs[mi] != nil {
			return nil, errs[mi]
		}
		total += len(results[mi])
	}
	// A governor trip drains the pool mid-list, leaving skipped morsels'
	// results empty; surface the abort before anyone consumes the merge.
	if err := f.m.pollGovernor(); err != nil {
		return nil, err
	}
	merged := make([][]term.Value, 0, total)
	for _, r := range results {
		merged = append(merged, r...)
	}
	return merged, nil
}

// parMapRows applies fn to every row across the worker pool, concatenating
// per-morsel outputs in input order. fn receives the row index and an emit
// callback private to its morsel; it must only touch the given row and
// read-only shared state.
func (f *frame) parMapRows(rows [][]term.Value, workers int,
	fn func(ri int, row []term.Value, emit func([]term.Value)) error) ([][]term.Value, error) {
	ms := morsels(len(rows), workers)
	results := make([][][]term.Value, len(ms))
	errs := make([]error, len(ms))
	var failed atomic.Bool
	f.m.runMorsels(ms, workers, func(mi int) {
		if failed.Load() {
			return
		}
		var out [][]term.Value
		emit := func(row []term.Value) { out = append(out, row) }
		for ri := ms[mi].start; ri < ms[mi].end; ri++ {
			if err := fn(ri, rows[ri], emit); err != nil {
				errs[mi] = err
				failed.Store(true)
				break
			}
		}
		results[mi] = out
	})
	total := 0
	for mi := range results {
		if errs[mi] != nil {
			return nil, errs[mi]
		}
		total += len(results[mi])
	}
	// Skipped morsels from a governor drain must not merge as silently
	// missing rows (callers like applyCall rely on fn's side effects for
	// every row index).
	if err := f.m.pollGovernor(); err != nil {
		return nil, err
	}
	merged := make([][]term.Value, 0, total)
	for _, r := range results {
		merged = append(merged, r...)
	}
	return merged, nil
}

// dedupRowsParallel removes duplicate rows with hash-partitioned workers:
// one parallel pass hashes each row's live registers in place (no key
// bytes), then each worker owns a shard of the hash space and marks the
// later duplicates within it (shards touch disjoint entries of the dup
// vector) using a private open-addressing table that compares rows
// directly on hash collision, and a final in-order compaction keeps
// exactly the rows the sequential pass would keep.
func (f *frame) dedupRowsParallel(rows [][]term.Value, live []int, workers int) [][]term.Value {
	hashes := make([]uint64, len(rows))
	ms := morsels(len(rows), workers)
	f.m.runMorsels(ms, workers, func(mi int) {
		for i := ms[mi].start; i < ms[mi].end; i++ {
			hashes[i] = rowHashLive(rows[i], live)
		}
	})
	if f.m.govTripped() {
		// The pool may have drained mid-pass, leaving zero hashes; dedup
		// has no error path, so redo the pass sequentially — the governed
		// abort itself surfaces at the caller's next check.
		for i := range rows {
			hashes[i] = rowHashLive(rows[i], live)
		}
	}
	shards := workers
	dup := make([]bool, len(rows))
	var removed int64
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(shards)
	for p := 0; p < shards; p++ {
		go func(p int) {
			defer wg.Done()
			defer box.capture()
			var t hashTable
			t.reset(len(rows)/shards + 1)
			cand := 0
			eq := func(r int32) bool { return rowsEqualLive(rows[r], rows[cand], live) }
			var local int64
			for i, h := range hashes {
				if int(h%uint64(shards)) != p {
					continue
				}
				cand = i
				if _, found := t.findOrAdd(h, int32(i), eq); found {
					dup[i] = true
					local++
				}
			}
			atomic.AddInt64(&removed, local)
		}(p)
	}
	wg.Wait()
	box.rethrow()
	out := rows[:0]
	for i, row := range rows {
		if !dup[i] {
			out = append(out, row)
		}
	}
	atomic.AddInt64(&f.m.Stats.RowsDeduped, removed)
	return out
}
