package vm

import (
	"fmt"

	"gluenail/internal/ast"
	"gluenail/internal/plan"
	"gluenail/internal/term"
)

func (f *frame) applyBarrier(b plan.BarrierOp, rows [][]term.Value,
	state *stmtState) ([][]term.Value, error) {
	switch b := b.(type) {
	case *plan.Call:
		return f.applyCall(b, rows)
	case *plan.DynCall:
		return f.applyDynCall(b, rows)
	case *plan.Aggregate:
		return f.applyAggregate(b, rows, state)
	case *plan.GroupBy:
		state.groupRegs = append(state.groupRegs, b.Regs...)
		return rows, nil
	case *plan.Update:
		for _, row := range rows {
			rel, err := f.resolveWrite(b.Rel, row)
			if err != nil {
				return nil, err
			}
			tup := make(term.Tuple, len(b.Args))
			for i := range b.Args {
				v, err := b.Args[i].Build(row)
				if err != nil {
					return nil, err
				}
				tup[i] = v
			}
			switch b.Kind {
			case ast.UpdateInsert:
				rel.Insert(tup)
				if err := f.checkRelBudget(rel); err != nil {
					return nil, err
				}
			case ast.UpdateDelete:
				rel.Delete(tup)
			}
		}
		return rows, nil
	case *plan.UnchangedChk:
		rel, err := f.resolveRead(b.Rel, nil)
		if err != nil {
			return nil, err
		}
		var cur uint64
		if rel != nil {
			cur = rel.Version()
		}
		if f.unchanged == nil {
			f.unchanged = map[int]uint64{}
		}
		prev, seen := f.unchanged[b.Site]
		f.unchanged[b.Site] = cur
		if seen && prev == cur {
			return rows, nil
		}
		return nil, nil
	case *plan.EmptyChk:
		rel, err := f.resolveRead(b.Rel, nil)
		if err != nil {
			return nil, err
		}
		if rel == nil || rel.Len() == 0 {
			return rows, nil
		}
		return nil, nil
	}
	return nil, fmt.Errorf("vm: unknown barrier %T", b)
}

// applyCall runs a procedure/builtin once on all the distinct bindings of
// its input arguments (§4) and joins the results back to the supplementary
// rows. The call itself is sequential (procedures mutate machine state);
// the per-row work around it — building input tuples, joining results back
// — fans out over the worker pool for large row sets, with outputs merged
// in row order.
func (f *frame) applyCall(b *plan.Call, rows [][]term.Value) ([][]term.Value, error) {
	nb := len(b.BoundArgs)
	workers := f.m.workerCount()
	par := workers > 1 && len(rows) >= f.m.fanOutThreshold()
	stringKeys := f.m.StringKeyKernels
	// Build each row's input tuple; the hash-first kernel caches the
	// tuple's 64-bit hash per row (reused by both the distinct pass and
	// the join-back probe), the legacy kernel its encoded string key.
	tuples := make([]term.Tuple, len(rows))
	var rowKeys []string
	var rowHashes []uint64
	if stringKeys {
		rowKeys = make([]string, len(rows))
	} else {
		rowHashes = make([]uint64, len(rows))
	}
	buildIn := func(ri int, row []term.Value, _ func([]term.Value)) error {
		tup := make(term.Tuple, nb)
		for i := range b.BoundArgs {
			v, err := b.BoundArgs[i].Build(row)
			if err != nil {
				return err
			}
			tup[i] = v
		}
		tuples[ri] = tup
		if stringKeys {
			rowKeys[ri] = tupleKey(tup)
		} else {
			rowHashes[ri] = tup.Hash()
		}
		return nil
	}
	if par {
		if _, err := f.parMapRows(rows, workers, buildIn); err != nil {
			return nil, err
		}
	} else {
		for ri, row := range rows {
			if err := buildIn(ri, row, nil); err != nil {
				return nil, err
			}
		}
	}
	// Distinct input tuples, in first-seen order (then sorted).
	var inTuples []term.Tuple
	if stringKeys {
		seen := map[string]bool{}
		for ri := range rows {
			if k := rowKeys[ri]; !seen[k] {
				seen[k] = true
				inTuples = append(inTuples, tuples[ri])
			}
		}
	} else {
		t := f.grabTable(len(rows))
		cand := 0
		eq := func(r int32) bool { return inTuples[r].Equal(tuples[cand]) }
		for ri := range rows {
			cand = ri
			if _, found := t.findOrAdd(rowHashes[ri], int32(len(inTuples)), eq); !found {
				inTuples = append(inTuples, tuples[ri])
			}
		}
		f.releaseTable(t)
	}
	sortTuples(inTuples)
	var results []term.Tuple
	var err error
	if b.ProcID != "" {
		results, err = f.m.CallProc(b.ProcID, inTuples)
	} else {
		impl, ok := f.m.Builtins.impl(b.Builtin)
		if !ok {
			return nil, fmt.Errorf("no builtin %q", b.Builtin)
		}
		results, err = impl(f.m, inTuples)
	}
	if err != nil {
		return nil, err
	}
	// Index results by bound prefix. The prefixIndex is built
	// sequentially here and only probed (closure-free, read-only) inside
	// joinRow, which may run on concurrent morsel workers.
	wantArity := nb + len(b.FreeArgs)
	var byPrefix map[string][]term.Tuple
	var px prefixIndex
	if stringKeys {
		byPrefix = map[string][]term.Tuple{}
	} else {
		px.init(len(results))
	}
	for _, r := range results {
		if len(r) != wantArity {
			return nil, fmt.Errorf("call result arity %d, want %d", len(r), wantArity)
		}
		if stringKeys {
			k := tupleKey(r[:nb])
			byPrefix[k] = append(byPrefix[k], r)
		} else {
			px.add(r[:nb], r)
		}
	}
	joinRow := func(ri int, row []term.Value, emit func([]term.Value)) error {
		var rs []term.Tuple
		if stringKeys {
			rs = byPrefix[rowKeys[ri]]
		} else {
			rs = px.get(rowHashes[ri], tuples[ri])
		}
		if b.Negated {
			exists := false
			for _, r := range rs {
				cp := cloneRow(row)
				if matchArgs(b.FreeArgs, r[nb:], cp) {
					exists = true
					break
				}
			}
			if !exists {
				emit(row)
			}
			return nil
		}
		for _, r := range rs {
			cp := cloneRow(row)
			if matchArgs(b.FreeArgs, r[nb:], cp) {
				emit(cp)
			}
		}
		return nil
	}
	if par {
		return f.parMapRows(rows, workers, joinRow)
	}
	var out [][]term.Value
	emit := func(row []term.Value) { out = append(out, row) }
	for ri, row := range rows {
		if err := joinRow(ri, row, emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// applyDynCall dispatches a HiLog subgoal whose candidates include NAIL!
// families: per row, the computed name either selects a family (whose
// generated procedure is called once and memoized for the barrier) or falls
// back to stored-relation lookup.
func (f *frame) applyDynCall(b *plan.DynCall, rows [][]term.Value) ([][]term.Value, error) {
	famResults := map[string][]term.Tuple{}
	family := func(name term.Value) *plan.FamilyCand {
		if name.Kind() != term.Compound {
			return nil
		}
		fn := name.Functor()
		if fn.Kind() != term.Str {
			return nil
		}
		for i := range b.Families {
			if b.Families[i].Base == fn.Str() && b.Families[i].NameArity == name.NumArgs() {
				return &b.Families[i]
			}
		}
		return nil
	}
	var out [][]term.Value
	var dynKey term.Tuple
	for _, row := range rows {
		name, err := b.Pred.Build(row)
		if err != nil {
			return nil, err
		}
		matched := false
		emit := func(cp []term.Value) {
			if !b.Negated {
				out = append(out, cp)
			}
			matched = true
		}
		if fam := family(name); fam != nil {
			res, ok := famResults[fam.ProcID]
			if !ok {
				res, err = f.m.CallProc(fam.ProcID, []term.Tuple{{}})
				if err != nil {
					return nil, err
				}
				famResults[fam.ProcID] = res
			}
			k := fam.NameArity
			nameArgs := name.Args()
		resultLoop:
			for _, r := range res {
				for i := 0; i < k; i++ {
					if !nameArgs[i].Equal(r[i]) {
						continue resultLoop
					}
				}
				cp := cloneRow(row)
				if matchArgs(b.Args, r[k:], cp) {
					emit(cp)
					if b.Negated {
						break
					}
				}
			}
		} else {
			rel := f.dynResolve(name, len(b.Args), b.Narrowed, b.Candidates)
			if rel != nil {
				err := f.scanRel(rel, &dynKey, b.Bind, 0, b.Args, row, func() error {
					emit(cloneRow(row))
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
		}
		if b.Negated && !matched {
			out = append(out, row)
		}
	}
	return out, nil
}
