package vm

import (
	"testing"

	"gluenail/internal/ast"
	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// batchTestFrame builds a frame over an EDB store holding r/2 with n rows
// (i, i%97), plus the scan→filter→probe segment over it used by the batch
// kernel tests.
func batchTestFrame(n int) (*frame, *plan.PhysStep) {
	store := storage.NewMemStore(storage.IndexAdaptive)
	rel := store.Ensure(term.Intern("r"), 2)
	for i := 0; i < n; i++ {
		rel.Insert(term.Tuple{term.NewInt(int64(i)), term.NewInt(int64(i % 97))})
	}
	f := &frame{m: &Machine{Parallelism: 1, EDB: store}}
	scan := &plan.Match{
		Rel:  plan.RelRef{Space: plan.SpaceEDB, Name: term.Ground(term.Intern("r")), Arity: 2},
		Args: []term.Pattern{term.Var(0), term.Var(1)},
		Bind: []int{0, 1},
	}
	filter := &plan.Compare{Op: ast.CmpLt, L: plan.RegE{Reg: 1}, R: plan.ConstE{V: term.NewInt(48)}}
	probe := &plan.Match{
		Rel:       plan.RelRef{Space: plan.SpaceEDB, Name: term.Ground(term.Intern("r")), Arity: 2},
		Args:      []term.Pattern{term.Var(1), term.Var(2)},
		BoundMask: 1,
		Bind:      []int{2},
	}
	step := &plan.Step{Pipe: []plan.PipeOp{scan, filter, probe}}
	pstep := &plan.PhysStep{
		Step: step,
		Ops: []plan.PhysOp{
			{Op: scan, LogIdx: 0},
			{Op: filter, LogIdx: 1},
			{Op: probe, LogIdx: 2},
		},
	}
	return f, pstep
}

// TestBatchMatchesScalarSegment runs the same scan→filter→probe segment
// through the scalar and the batch kernels and requires byte-identical
// row streams and identical per-op tuple counters.
func TestBatchMatchesScalarSegment(t *testing.T) {
	f, pstep := batchTestFrame(500)
	seed := func() [][]term.Value { return [][]term.Value{make([]term.Value, 3)} }

	f.m.BatchKernels = false
	scalarProf := plan.NewStmtProfile([]plan.Step{*pstep.Step})
	scalar, err := f.runPipe(pstep, seed(), &scalarProf.Steps[0])
	if err != nil {
		t.Fatal(err)
	}
	f.m.BatchKernels = true
	batchProf := plan.NewStmtProfile([]plan.Step{*pstep.Step})
	batch, err := f.runPipe(pstep, seed(), &batchProf.Steps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(scalar) == 0 {
		t.Fatal("segment produced no rows; nothing exercised")
	}
	if len(batch) != len(scalar) {
		t.Fatalf("batch produced %d rows, scalar %d", len(batch), len(scalar))
	}
	for i := range scalar {
		for r := range scalar[i] {
			if !scalar[i][r].Equal(batch[i][r]) {
				t.Fatalf("row %d register %d: batch %v, scalar %v",
					i, r, batch[i][r], scalar[i][r])
			}
		}
	}
	for k := range scalarProf.Steps[0].Ops {
		s, b := scalarProf.Steps[0].Ops[k], batchProf.Steps[0].Ops[k]
		if s.In != b.In || s.Out != b.Out {
			t.Fatalf("op %d counters differ: scalar in=%d out=%d, batch in=%d out=%d",
				k, s.In, s.Out, b.In, b.Out)
		}
	}
}

// TestBatchSegmentAllocsPerRow pins the batch kernels' allocation
// contract: filters and probes must not allocate per row — the whole
// segment's allocations (selection vector, column vectors, output slab)
// must amortize to well under one object per emitted row.
func TestBatchSegmentAllocsPerRow(t *testing.T) {
	const n = 20000
	f, pstep := batchTestFrame(n)
	f.m.BatchKernels = true
	ops := make([]plan.PipeOp, len(pstep.Ops))
	for i := range pstep.Ops {
		ops[i] = pstep.Ops[i].Op
	}
	rels := []storage.Rel{nil, nil, nil}
	have := []bool{false, false, false}
	for i, op := range ops {
		if m, ok := op.(*plan.Match); ok {
			rel, err := f.resolveRead(m.Rel, nil)
			if err != nil {
				t.Fatal(err)
			}
			rels[i], have[i] = rel, true
		}
	}
	cnt := make([]int64, len(ops)+1)
	var produced int
	allocs := testing.AllocsPerRun(5, func() {
		rows := [][]term.Value{make([]term.Value, 3)}
		out, err := f.runPipeBatch(ops, rels, have, rows, cnt)
		if err != nil {
			t.Fatal(err)
		}
		produced = len(out)
	})
	if produced < n/3 {
		t.Fatalf("segment produced only %d rows from %d — workload too small to measure", produced, n)
	}
	perRow := allocs / float64(produced)
	if perRow > 0.05 {
		t.Fatalf("batch segment allocates %.3f objects per emitted row (%.0f total for %d rows); want amortized ~0",
			perRow, allocs, produced)
	}
}
