package vm

import (
	"fmt"
	"io"

	"gluenail/internal/plan"
	"gluenail/internal/term"
)

// BuiltinFunc implements a builtin or foreign procedure: it receives the
// distinct input tuples (the procedure's in relation) and returns full
// result tuples (bound arguments followed by free arguments). This is the
// foreign-language interface §10 lists as required for a complete
// application language.
type BuiltinFunc func(m *Machine, in []term.Tuple) ([]term.Tuple, error)

// Registry holds builtin and foreign procedure signatures and
// implementations. Signatures feed the compiler (fixedness, binding
// checks); implementations run in the executor.
type Registry struct {
	sigs  map[string]plan.BuiltinSig
	impls map[string]BuiltinFunc
}

// NewRegistry returns a registry with the standard I/O builtins: write
// (variadic, prints each input tuple), nl, and read_line.
func NewRegistry() *Registry {
	r := &Registry{
		sigs:  map[string]plan.BuiltinSig{},
		impls: map[string]BuiltinFunc{},
	}
	r.mustRegister("write", plan.BuiltinSig{Variadic: true, Fixed: true}, builtinWrite)
	r.mustRegister("writeln", plan.BuiltinSig{Variadic: true, Fixed: true}, builtinWrite)
	r.mustRegister("nl", plan.BuiltinSig{Fixed: true}, builtinNl)
	r.mustRegister("read_line", plan.BuiltinSig{Free: 1, Fixed: true}, builtinReadLine)
	return r
}

// Register adds a procedure; registering an existing name fails.
func (r *Registry) Register(name string, sig plan.BuiltinSig, fn BuiltinFunc) error {
	if _, dup := r.sigs[name]; dup {
		return fmt.Errorf("vm: builtin %q already registered", name)
	}
	r.sigs[name] = sig
	r.impls[name] = fn
	return nil
}

func (r *Registry) mustRegister(name string, sig plan.BuiltinSig, fn BuiltinFunc) {
	if err := r.Register(name, sig, fn); err != nil {
		panic(err)
	}
}

// Sig reports a procedure's signature; it has the shape plan.Options.Builtin
// expects.
func (r *Registry) Sig(name string) (plan.BuiltinSig, bool) {
	sig, ok := r.sigs[name]
	return sig, ok
}

// Has reports whether the name is registered (modsys auto-EDB exclusion).
func (r *Registry) Has(name string) bool {
	_, ok := r.sigs[name]
	return ok
}

func (r *Registry) impl(name string) (BuiltinFunc, bool) {
	fn, ok := r.impls[name]
	return fn, ok
}

// builtinWrite prints each input tuple on its own line, values separated by
// spaces, strings unquoted. It passes its inputs through, so the subgoal
// succeeds for every supplementary tuple.
func builtinWrite(m *Machine, in []term.Tuple) ([]term.Tuple, error) {
	for _, t := range in {
		if _, err := io.WriteString(m.Out, tupleText(t)+"\n"); err != nil {
			return nil, err
		}
	}
	return in, nil
}

func builtinNl(m *Machine, in []term.Tuple) ([]term.Tuple, error) {
	if len(in) > 0 {
		if _, err := io.WriteString(m.Out, "\n"); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// builtinReadLine reads one line from the machine's input; at end of input
// it returns no tuples, so the enclosing statement stops.
func builtinReadLine(m *Machine, in []term.Tuple) ([]term.Tuple, error) {
	if len(in) == 0 {
		return nil, nil
	}
	line, err := m.In.ReadString('\n')
	if err != nil && line == "" {
		return nil, nil
	}
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	return []term.Tuple{{term.NewString(line)}}, nil
}
