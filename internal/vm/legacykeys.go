// Legacy string-key kernels: duplicate elimination, aggregation grouping,
// and head grouping that materialize an encoded string key per row and
// probe Go maps with it. Retained behind Machine.StringKeyKernels
// (gluenail.WithStringKeyKernels) as the E13 ablation baseline and as a
// reference implementation for the difftests — both kernel families must
// produce byte-identical results on every program.
package vm

import (
	"sync"
	"sync/atomic"

	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// appendDedupKey encodes the live registers of a row as a dedup key. An
// unbound register is marked with term.NonTag, a byte no value encoding
// starts with, so an unbound slot can never alias a bound value's
// encoding.
func appendDedupKey(buf []byte, row []term.Value, live []int) []byte {
	for _, r := range live {
		if row[r].IsZero() {
			buf = append(buf, term.NonTag)
			continue
		}
		buf = term.AppendValue(buf, row[r])
	}
	return buf
}

// dedupRowsStringKey is the legacy sequential dedup kernel: one encoded
// string key per row, probed through a Go map.
func (f *frame) dedupRowsStringKey(rows [][]term.Value, live []int) [][]term.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var buf []byte
	for _, row := range rows {
		buf = appendDedupKey(buf[:0], row, live)
		k := string(buf)
		if seen[k] {
			atomic.AddInt64(&f.m.Stats.RowsDeduped, 1)
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}

// fnvHash is FNV-1a over the key bytes, used to shard legacy dedup keys.
func fnvHash(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// dedupRowsParallelStringKey is the legacy parallel dedup kernel: a
// parallel pass encodes the dedup key per row, each worker owns a shard of
// the key space and marks the later duplicates within it (shards touch
// disjoint entries of the dup vector), and a final in-order compaction
// keeps exactly the rows the sequential pass would keep.
func (f *frame) dedupRowsParallelStringKey(rows [][]term.Value, live []int, workers int) [][]term.Value {
	keys := make([]string, len(rows))
	hashes := make([]uint64, len(rows))
	ms := morsels(len(rows), workers)
	f.m.runMorsels(ms, workers, func(mi int) {
		var buf []byte
		for i := ms[mi].start; i < ms[mi].end; i++ {
			buf = appendDedupKey(buf[:0], rows[i], live)
			keys[i] = string(buf)
			hashes[i] = fnvHash(keys[i])
		}
	})
	if f.m.govTripped() {
		// Drained pool may have skipped morsels; redo sequentially so the
		// dedup stays correct until the abort surfaces at the caller.
		var buf []byte
		for i := range rows {
			buf = appendDedupKey(buf[:0], rows[i], live)
			keys[i] = string(buf)
			hashes[i] = fnvHash(keys[i])
		}
	}
	shards := workers
	dup := make([]bool, len(rows))
	var removed int64
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(shards)
	for p := 0; p < shards; p++ {
		go func(p int) {
			defer wg.Done()
			defer box.capture()
			seen := make(map[string]bool, len(rows)/shards+1)
			var local int64
			for i, h := range hashes {
				if int(h%uint64(shards)) != p {
					continue
				}
				if seen[keys[i]] {
					dup[i] = true
					local++
				} else {
					seen[keys[i]] = true
				}
			}
			atomic.AddInt64(&removed, local)
		}(p)
	}
	wg.Wait()
	box.rethrow()
	out := rows[:0]
	for i, row := range rows {
		if !dup[i] {
			out = append(out, row)
		}
	}
	atomic.AddInt64(&f.m.Stats.RowsDeduped, removed)
	return out
}

// groupRowsStringKey is the legacy aggregation-grouping kernel: group keys
// encoded into strings (a parallel pass for large row sets), grouped
// through a Go map, groups in first-seen order.
func (f *frame) groupRowsStringKey(rows [][]term.Value, regs []int, par bool, workers int) [][]int {
	keys := make([]string, len(rows))
	if par {
		ms := morsels(len(rows), workers)
		f.m.runMorsels(ms, workers, func(mi int) {
			var buf []byte
			for ri := ms[mi].start; ri < ms[mi].end; ri++ {
				buf = buf[:0]
				for _, r := range regs {
					buf = term.AppendValue(buf, rows[ri][r])
				}
				keys[ri] = string(buf)
			}
		})
		if f.m.govTripped() {
			// Drained pool may have skipped morsels; redo sequentially so
			// grouping stays correct until the abort surfaces.
			var buf []byte
			for ri, row := range rows {
				buf = buf[:0]
				for _, r := range regs {
					buf = term.AppendValue(buf, row[r])
				}
				keys[ri] = string(buf)
			}
		}
	} else {
		var buf []byte
		for ri, row := range rows {
			buf = buf[:0]
			for _, r := range regs {
				buf = term.AppendValue(buf, row[r])
			}
			keys[ri] = string(buf)
		}
	}
	byKey := map[string]int{}
	var groups [][]int
	for ri := range rows {
		k := keys[ri]
		if g, ok := byKey[k]; ok {
			groups[g] = append(groups[g], ri)
		} else {
			byKey[k] = len(groups)
			groups = append(groups, []int{ri})
		}
	}
	return groups
}

func tupleKey(t term.Tuple) string {
	var buf []byte
	for i := range t {
		buf = term.AppendValue(buf, t[i])
	}
	return string(buf)
}

// applyHeadStringKey is the legacy head kernel: targets grouped by the
// canonical encoding (term.Key) of the computed relation name, rebuilt
// per row.
func (f *frame) applyHeadStringKey(st *plan.Stmt, rows [][]term.Value) error {
	type target struct {
		rel    storage.Rel
		tuples []term.Tuple
	}
	groups := map[string]*target{}
	order := []string{}
	ensure := func(regs []term.Value) (*target, error) {
		name, err := st.Head.Ref.Name.Build(regs)
		if err != nil {
			return nil, err
		}
		k := term.Key(name)
		if g, ok := groups[k]; ok {
			return g, nil
		}
		rel, err := f.resolveWrite(st.Head.Ref, regs)
		if err != nil {
			return nil, err
		}
		groups[k] = &target{rel: rel}
		order = append(order, k)
		return groups[k], nil
	}
	// A statically named target participates even with an empty body
	// (":=" clears it); a computed name cannot be known without rows.
	if st.Head.Ref.Name.IsGround() {
		if _, err := ensure(nil); err != nil {
			return err
		}
	}
	for _, row := range rows {
		g, err := ensure(row)
		if err != nil {
			return err
		}
		tup, err := buildHeadTuple(st, row)
		if err != nil {
			return err
		}
		g.tuples = append(g.tuples, tup)
	}
	for _, k := range order {
		g := groups[k]
		applyHeadOp(st, g.rel, g.tuples)
		if err := f.checkRelBudget(g.rel); err != nil {
			return err
		}
	}
	if st.Head.IsReturn {
		f.returned = true
	}
	return nil
}
