// Executor side of the prepared-plan cache: resolving a statement's
// referenced relations to their current stats epochs (through the frame,
// so locals shadow the EDB exactly as they do for planning) and arbitrating
// between cache and planner. See internal/plan/cache.go for the cache
// itself and its invalidation rules.
package vm

import (
	"gluenail/internal/plan"
	"gluenail/internal/term"
)

// epochSig folds the current stats epoch of every referenced relation into
// one signature. A missing relation folds a sentinel distinct from every
// epoch, so "was absent" and "exists at epoch k" never collide — creating
// a relation the plan assumed empty is a cache miss. Allocation-free: the
// refs slice is cached per statement, ground names build without copying,
// and store lookups intern their keys.
func (f *frame) epochSig(refs []plan.RelRef) uint64 {
	sig := term.HashSeed
	for i := range refs {
		rel, err := f.resolveRead(refs[i], nil)
		if err != nil || rel == nil {
			sig = plan.SigFold(sig, ^uint64(0))
			continue
		}
		sig = plan.SigFold(sig, rel.StatsEpoch())
	}
	return sig
}

// stmtPlan returns the statement's physical plan: the cached one while its
// epoch signature holds and the executor's selectivity feedback has not
// drifted, a freshly planned (and cached) one otherwise.
func (f *frame) stmtPlan(st *plan.Stmt, prof *plan.StmtProfile) *plan.PhysPlan {
	if !f.m.PlanCache {
		return f.planner().PlanStmt(st, prof)
	}
	c := f.m.planCache
	e := c.StmtEntry(st)
	sig := f.epochSig(e.Refs())
	if pp := c.Lookup(e, sig, prof); pp != nil {
		return pp
	}
	// Miss or invalidation: re-plan with the accumulated profile, so a
	// drift-invalidated plan is immediately replaced by one whose
	// selectivities come from the observed ratios — the next lookup hits.
	pp := f.planner().PlanStmt(st, prof)
	c.Store(e, sig, pp)
	return pp
}

// condPlan is stmtPlan for until-conditions. Conditions accumulate no
// profile, so their cached segments invalidate on epoch changes only.
func (f *frame) condPlan(cond *plan.Cond) []plan.PhysStep {
	if !f.m.PlanCache {
		return f.planner().PlanSteps(cond.Steps, nil)
	}
	c := f.m.planCache
	e := c.CondEntry(cond)
	sig := f.epochSig(e.Refs())
	if steps := c.LookupSteps(e, sig); steps != nil {
		return steps
	}
	steps := f.planner().PlanSteps(cond.Steps, nil)
	c.StoreSteps(e, sig, steps)
	return steps
}
