package nail

import (
	"strings"
	"testing"

	"gluenail/internal/ast"
	"gluenail/internal/modsys"
	"gluenail/internal/parser"
)

func linkSrc(t *testing.T, src string) *modsys.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lp, err := modsys.Link(prog)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return lp
}

const tcSrc = `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`

func TestGeneratePlainAllFree(t *testing.T) {
	lp := linkSrc(t, tcSrc)
	sym := lp.Resolve("main", "tc")
	proc, err := Generate(lp, sym, "ff", Options{Magic: true, SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(proc.BoundParams) != 0 || len(proc.FreeParams) != 2 {
		t.Errorf("params = %v : %v", proc.BoundParams, proc.FreeParams)
	}
	text := ast.FormatProc(proc)
	// Semi-naive structure: a repeat loop with delta relations and an
	// empty-delta termination.
	for _, want := range []string{"repeat", "until", "tc|ff|d", "tc|ff|nd", "empty("} {
		if !strings.Contains(text, want) {
			t.Errorf("generated proc missing %q:\n%s", want, text)
		}
	}
	// No magic relations for the all-free adornment.
	if strings.Contains(text, "m|tc") {
		t.Errorf("all-free proc should not have magic relations:\n%s", text)
	}
}

func TestGenerateMagicBoundFirst(t *testing.T) {
	lp := linkSrc(t, tcSrc)
	sym := lp.Resolve("main", "tc")
	proc, err := Generate(lp, sym, "bf", Options{Magic: true, SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(proc.BoundParams) != 1 || len(proc.FreeParams) != 1 {
		t.Errorf("params = %v : %v", proc.BoundParams, proc.FreeParams)
	}
	text := ast.FormatProc(proc)
	for _, want := range []string{"m|tc|bf", "in(", "tc|bf"} {
		if !strings.Contains(text, want) {
			t.Errorf("magic proc missing %q:\n%s", want, text)
		}
	}
}

func TestGenerateNaive(t *testing.T) {
	lp := linkSrc(t, tcSrc)
	sym := lp.Resolve("main", "tc")
	proc, err := Generate(lp, sym, "ff", Options{SemiNaive: false})
	if err != nil {
		t.Fatal(err)
	}
	text := ast.FormatProc(proc)
	if !strings.Contains(text, "unchanged(") {
		t.Errorf("naive proc should terminate via unchanged:\n%s", text)
	}
	if strings.Contains(text, "|d(") {
		t.Errorf("naive proc should not use delta relations:\n%s", text)
	}
}

func TestGenerateNonRecursive(t *testing.T) {
	lp := linkSrc(t, `
edb parent(X,Y);
grandparent(X,Z) :- parent(X,Y) & parent(Y,Z).
`)
	sym := lp.Resolve("main", "grandparent")
	proc, err := Generate(lp, sym, "ff", Options{Magic: true, SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	text := ast.FormatProc(proc)
	if strings.Contains(text, "repeat") {
		t.Errorf("non-recursive predicate should not generate a loop:\n%s", text)
	}
}

func TestGenerateStratifiedLayers(t *testing.T) {
	lp := linkSrc(t, `
edb edge(X,Y), node(X);
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y) & edge(Y,Z).
unreachable(X,Y) :- node(X) & node(Y) & !reach(X,Y).
`)
	sym := lp.Resolve("main", "unreachable")
	proc, err := Generate(lp, sym, "ff", Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	text := ast.FormatProc(proc)
	if !strings.Contains(text, "!'reach|ff'(") {
		t.Errorf("negation should reference the complete lower stratum:\n%s", text)
	}
}

func TestGenerateRejectsUnstratified(t *testing.T) {
	lp := linkSrc(t, `
edb e(X);
p(X) :- e(X) & !q(X).
q(X) :- e(X) & !p(X).
`)
	sym := lp.Resolve("main", "p")
	_, err := Generate(lp, sym, "f", Options{SemiNaive: true})
	if err == nil || !strings.Contains(err.Error(), "stratified") {
		t.Errorf("expected stratification error, got %v", err)
	}
}

func TestGenerateRejectsAggThroughRecursion(t *testing.T) {
	lp := linkSrc(t, `
edb e(X,Y);
p(X, C) :- e(X, Y) & C = count(Y).
p(X, C) :- p(Y, D) & e(Y, X) & C = sum(D).
`)
	sym := lp.Resolve("main", "p")
	_, err := Generate(lp, sym, "ff", Options{SemiNaive: true})
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Errorf("expected aggregation-through-recursion error, got %v", err)
	}
}

func TestGenerateFamilyFlattening(t *testing.T) {
	lp := linkSrc(t, `
edb attends(N, ID);
students(ID)(N) :- attends(N, ID).
`)
	sym := lp.Resolve("main", "students")
	proc, err := Generate(lp, sym, "ff", Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(proc.FreeParams) != 2 {
		t.Errorf("family proc should have 2 free params, got %v", proc.FreeParams)
	}
	text := ast.FormatProc(proc)
	if !strings.Contains(text, "students|ff") {
		t.Errorf("family should flatten to a binary local:\n%s", text)
	}
}

func TestGenerateMutualRecursion(t *testing.T) {
	lp := linkSrc(t, `
edb e(X,Y);
even(X,Y) :- e(X,Y).
even(X,Z) :- odd(X,Y) & e(Y,Z).
odd(X,Z) :- even(X,Y) & e(Y,Z).
`)
	sym := lp.Resolve("main", "even")
	proc, err := Generate(lp, sym, "ff", Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	text := ast.FormatProc(proc)
	// Hmm: even/odd form one SCC? even depends on odd and e; odd depends
	// on even: yes, one SCC with both.
	for _, want := range []string{"even|ff|d", "odd|ff|d"} {
		if !strings.Contains(text, want) {
			t.Errorf("mutual recursion missing %q:\n%s", want, text)
		}
	}
}

func TestGenerateFactRules(t *testing.T) {
	lp := linkSrc(t, `
base(1).
base(2).
up(X) :- base(X).
`)
	sym := lp.Resolve("main", "up")
	proc, err := Generate(lp, sym, "f", Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	text := ast.FormatProc(proc)
	if !strings.Contains(text, "'base|f'(1)") {
		t.Errorf("fact rules should become assignments:\n%s", text)
	}
}

func TestMagicNegationStaysStratified(t *testing.T) {
	// Regression (found by random-program differential testing): magic
	// rewriting of this stratified program used to create a negative
	// cycle — the magic predicate of d0's adorned variant depended on the
	// prefix of d1's negating rule, which depended back on d0 through the
	// negation. Negated predicates must evaluate through a disconnected
	// plain sub-program.
	lp := linkSrc(t, `
edb e0(X,Y), e1(X,Y);
d0(Y,Y) :- e0(X,Y) & e1(Z,W) & e0(Y,W).
d0(Y,X) :- e0(Y,X) & e1(X,W) & d0(W,X).
d1(Y,Z) :- e1(Z,Y) & d0(Z,X) & d0(Y,Z).
d1(X,W) :- e0(W,Z) & d1(X,W) & d0(Z,Z) & !d0(W,Z).
`)
	sym := lp.Resolve("main", "d1")
	for _, semiNaive := range []bool{true, false} {
		proc, err := Generate(lp, sym, "bf", Options{Magic: true, SemiNaive: semiNaive})
		if err != nil {
			t.Fatalf("semiNaive=%v: %v", semiNaive, err)
		}
		text := ast.FormatProc(proc)
		if !strings.Contains(text, "d0|plain") {
			t.Errorf("negation should route through the plain sub-program:\n%s", text)
		}
	}
}

func TestGenerateAdornMismatch(t *testing.T) {
	lp := linkSrc(t, tcSrc)
	sym := lp.Resolve("main", "tc")
	if _, err := Generate(lp, sym, "b", Options{}); err == nil {
		t.Error("adornment length mismatch should fail")
	}
}
