package nail

import (
	"fmt"
	"sort"

	"gluenail/internal/ast"
	"gluenail/internal/term"
)

// Emission: stratify the flattened rules, then generate Glue statements —
// one batch of += statements per non-recursive predicate, and a
// repeat/until loop per recursive SCC (semi-naive with delta relations, or
// naive re-derivation for the baseline).

func mkConst(name string) *ast.Const {
	return &ast.Const{Val: term.NewString(name)}
}

func mkVar(prefix string, i int) *ast.VarTerm {
	return &ast.VarTerm{Name: fmt.Sprintf("%s%d", prefix, i)}
}

func freshVars(prefix string, n int) []ast.Term {
	out := make([]ast.Term, n)
	for i := range out {
		out[i] = mkVar(prefix, i)
	}
	return out
}

func wildcards(n int) []ast.Term {
	out := make([]ast.Term, n)
	for i := range out {
		out[i] = &ast.VarTerm{Name: "_"}
	}
	return out
}

func trueGoal() dgoal {
	one := &ast.TermExpr{T: &ast.Const{Val: term.NewInt(1)}}
	return dgoal{g: &ast.CmpGoal{Op: ast.CmpEq, L: one, R: one}}
}

func latomAtom(l latom) *ast.AtomTerm {
	return &ast.AtomTerm{Pred: mkConst(l.name), Args: l.args}
}

func dgoalGoal(dg dgoal) ast.Goal {
	if dg.local != nil {
		return &ast.AtomGoal{Atom: latomAtom(*dg.local), Negated: dg.neg}
	}
	return dg.g
}

func assignStmt(op ast.AssignOp, head latom, body []dgoal) ast.Stmt {
	goals := make([]ast.Goal, len(body))
	for i, dg := range body {
		goals[i] = dgoalGoal(dg)
	}
	return &ast.Assign{Op: op, Head: latomAtom(head), Body: goals}
}

// sccInfo is one strongly connected component of the local-predicate graph.
type sccInfo struct {
	members   []string
	memberSet map[string]bool
	recursive bool
}

// condense computes SCCs of the rule graph in dependency-first order.
func (g *generator) condense() []sccInfo {
	nodes := make([]string, 0, len(g.arities))
	for n := range g.arities {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	adj := map[string][]string{}
	selfLoop := map[string]bool{}
	for _, r := range g.rules {
		for _, dg := range r.body {
			if dg.local == nil {
				continue
			}
			adj[r.head.name] = append(adj[r.head.name], dg.local.name)
			if dg.local.name == r.head.name {
				selfLoop[r.head.name] = true
			}
		}
	}
	// Tarjan's algorithm.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps []sccInfo
	counter := 0
	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			comp := sccInfo{memberSet: map[string]bool{}}
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp.members = append(comp.members, w)
				comp.memberSet[w] = true
				if w == v {
					break
				}
			}
			sort.Strings(comp.members)
			comp.recursive = len(comp.members) > 1 ||
				selfLoop[comp.members[0]]
			comps = append(comps, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongConnect(v)
		}
	}
	return comps
}

// emitProc assembles the final procedure.
func (g *generator) emitProc() (*ast.Proc, error) {
	comps := g.condense()
	rulesOf := map[string][]drule{}
	for _, r := range g.rules {
		rulesOf[r.head.name] = append(rulesOf[r.head.name], r)
	}
	extraLocals := map[string]int{}
	var body []ast.Stmt
	body = append(body, g.seeds...)
	for _, comp := range comps {
		// Stratification checks.
		for _, p := range comp.members {
			for _, r := range rulesOf[p] {
				for _, dg := range r.body {
					if dg.local == nil || !comp.memberSet[dg.local.name] {
						continue
					}
					if !comp.recursive {
						continue
					}
					if dg.neg {
						return nil, errf(g.u.module, g.target.Name,
							"not stratified: %s is negated inside its own recursion", dg.local.name)
					}
					if r.agg {
						return nil, errf(g.u.module, g.target.Name,
							"aggregation through recursion on %s is not stratified", p)
					}
				}
			}
		}
		if !comp.recursive {
			p := comp.members[0]
			for _, r := range rulesOf[p] {
				b := r.body
				if len(b) == 0 {
					b = []dgoal{trueGoal()}
				}
				body = append(body, assignStmt(ast.OpInsert, r.head, b))
			}
			continue
		}
		if g.opts.SemiNaive {
			body = append(body, g.emitSemiNaive(comp, rulesOf, extraLocals)...)
		} else {
			body = append(body, g.emitNaive(comp, rulesOf)...)
		}
	}
	// Return statement.
	bc := boundCount(g.adorn)
	headArgs := make([]ast.Term, 0, len(g.adorn))
	flatArgs := make([]ast.Term, len(g.adorn))
	bi, fi := 0, 0
	for i := range flatArgs {
		if g.adorn[i] == 'b' {
			flatArgs[i] = mkVar("B", bi)
			bi++
		} else {
			flatArgs[i] = mkVar("F", fi)
			fi++
		}
	}
	for i := 0; i < bi; i++ {
		headArgs = append(headArgs, mkVar("B", i))
	}
	for i := 0; i < fi; i++ {
		headArgs = append(headArgs, mkVar("F", i))
	}
	body = append(body, &ast.Assign{
		Op:        ast.OpAssign,
		IsReturn:  true,
		HeadBound: bc,
		Head:      &ast.AtomTerm{Pred: mkConst("return"), Args: headArgs},
		Body: []ast.Goal{&ast.AtomGoal{Atom: &ast.AtomTerm{
			Pred: mkConst(g.targetLocal), Args: flatArgs,
		}}},
	})
	// Assemble the procedure.
	proc := &ast.Proc{Name: g.target.Name + "@" + g.adorn}
	for i := 0; i < bc; i++ {
		proc.BoundParams = append(proc.BoundParams, fmt.Sprintf("B%d", i))
	}
	for i := 0; i < len(g.adorn)-bc; i++ {
		proc.FreeParams = append(proc.FreeParams, fmt.Sprintf("F%d", i))
	}
	names := make([]string, 0, len(g.arities)+len(extraLocals))
	for n := range g.arities {
		names = append(names, n)
	}
	for n := range extraLocals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a, ok := g.arities[n]
		if !ok {
			a = extraLocals[n]
		}
		proc.Locals = append(proc.Locals, ast.PredSig{Name: n, Free: a})
	}
	proc.Body = body
	return proc, nil
}

// emitSemiNaive generates the delta-driven loop for one recursive SCC: the
// exit rules initialize the totals, deltas start as the totals, and each
// iteration derives only tuples not yet present — the workload the
// storage-level uniondiff operator supports (§10).
func (g *generator) emitSemiNaive(comp sccInfo, rulesOf map[string][]drule,
	extraLocals map[string]int) []ast.Stmt {
	var out []ast.Stmt
	delta := func(p string) string { return p + "|d" }
	newDelta := func(p string) string { return p + "|nd" }
	for _, p := range comp.members {
		extraLocals[delta(p)] = g.arities[p]
		extraLocals[newDelta(p)] = g.arities[p]
	}
	// Exit rules: no positive occurrence of an SCC member.
	for _, p := range comp.members {
		for _, r := range rulesOf[p] {
			if countSCCOccurrences(r, comp.memberSet) > 0 {
				continue
			}
			b := r.body
			if len(b) == 0 {
				b = []dgoal{trueGoal()}
			}
			out = append(out, assignStmt(ast.OpInsert, r.head, b))
		}
	}
	// Delta initialization.
	for _, p := range comp.members {
		vs := freshVars("V", g.arities[p])
		out = append(out, assignStmt(ast.OpInsert,
			latom{name: delta(p), args: vs},
			[]dgoal{{local: &latom{name: p, args: vs}}}))
	}
	// Loop body: delta-substituted variants, then uniondiff-style fold.
	var loop []ast.Stmt
	firstFor := map[string]bool{}
	for _, p := range comp.members {
		firstFor[p] = true
	}
	for _, p := range comp.members {
		for _, r := range rulesOf[p] {
			n := countSCCOccurrences(r, comp.memberSet)
			if n == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				variant := substituteDelta(r, comp.memberSet, j, delta)
				// Guard: only genuinely new tuples enter the new-delta.
				variant = append(variant, dgoal{
					local: &latom{name: p, args: r.head.args},
					neg:   true,
				})
				op := ast.OpInsert
				if firstFor[p] {
					op = ast.OpAssign
					firstFor[p] = false
				}
				loop = append(loop, assignStmt(op,
					latom{name: newDelta(p), args: r.head.args}, variant))
			}
		}
	}
	for _, p := range comp.members {
		vs := freshVars("V", g.arities[p])
		loop = append(loop, assignStmt(ast.OpAssign,
			latom{name: delta(p), args: vs},
			[]dgoal{{local: &latom{name: newDelta(p), args: vs}}}))
		loop = append(loop, assignStmt(ast.OpInsert,
			latom{name: p, args: vs},
			[]dgoal{{local: &latom{name: delta(p), args: vs}}}))
	}
	// Terminate when every delta is empty.
	var until []ast.Goal
	for _, p := range comp.members {
		until = append(until, &ast.EmptyGoal{Atom: &ast.AtomTerm{
			Pred: mkConst(delta(p)), Args: wildcards(g.arities[p]),
		}})
	}
	out = append(out, &ast.Repeat{Body: loop, Until: [][]ast.Goal{until}})
	return out
}

// emitNaive generates the naive-evaluation loop: every rule re-derives its
// full extension each iteration until nothing changes.
func (g *generator) emitNaive(comp sccInfo, rulesOf map[string][]drule) []ast.Stmt {
	var loop []ast.Stmt
	for _, p := range comp.members {
		for _, r := range rulesOf[p] {
			b := r.body
			if len(b) == 0 {
				b = []dgoal{trueGoal()}
			}
			loop = append(loop, assignStmt(ast.OpInsert, r.head, b))
		}
	}
	var until []ast.Goal
	for _, p := range comp.members {
		until = append(until, &ast.UnchangedGoal{Atom: &ast.AtomTerm{
			Pred: mkConst(p), Args: wildcards(g.arities[p]),
		}})
	}
	return []ast.Stmt{&ast.Repeat{Body: loop, Until: [][]ast.Goal{until}}}
}

func countSCCOccurrences(r drule, members map[string]bool) int {
	n := 0
	for _, dg := range r.body {
		if dg.local != nil && !dg.neg && members[dg.local.name] {
			n++
		}
	}
	return n
}

// substituteDelta returns the rule body with the j-th positive SCC
// occurrence renamed to its delta relation.
func substituteDelta(r drule, members map[string]bool, j int,
	delta func(string) string) []dgoal {
	out := make([]dgoal, len(r.body))
	seen := 0
	for i, dg := range r.body {
		out[i] = dg
		if dg.local != nil && !dg.neg && members[dg.local.name] {
			if seen == j {
				out[i] = dgoal{local: &latom{
					name: delta(dg.local.name),
					args: dg.local.args,
				}}
			}
			seen++
		}
	}
	return out
}
