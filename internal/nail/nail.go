// Package nail compiles NAIL! rule sets into Glue procedures, the central
// system-design simplification of the paper ("NAIL! code is compiled into
// Glue code"). For a queried predicate and binding pattern (adornment) it
// generates a procedure that evaluates the reachable rules bottom-up,
// stratum by stratum, with:
//
//   - semi-naive recursion driven by delta relations — the pattern the
//     back end's uniondiff operator exists to support (§10) — or naive
//     re-derivation as the measured baseline,
//   - magic-set rewriting when the call binds arguments, so that only the
//     relevant part of the IDB is computed (§8.2's magic templates,
//     restricted to ground matching), and
//   - HiLog family flattening: a predicate with a compound name,
//     students(ID)(N), becomes a flat relation over (ID, N) (§5).
//
// Generated procedures use only local relations, EDB relations, imported
// predicates, and the implicit in/return relations, so the ordinary Glue
// compiler and executor run them unchanged.
package nail

import (
	"fmt"
	"strings"

	"gluenail/internal/ast"
	"gluenail/internal/modsys"
	"gluenail/internal/term"
)

// Options selects the generation strategy.
type Options struct {
	// Magic enables magic-set rewriting for adornments with bound
	// arguments.
	Magic bool
	// SemiNaive enables delta-driven recursion; false regenerates the full
	// relations every iteration (the E5 baseline).
	SemiNaive bool
}

// Error is a rule-compilation error.
type Error struct {
	Module string
	Pred   string
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("NAIL! %s.%s: %s", e.Module, e.Pred, e.Msg)
}

func errf(module, pred, format string, args ...any) error {
	return &Error{Module: module, Pred: pred, Msg: fmt.Sprintf(format, args...)}
}

// latom is an atom over a generated local relation.
type latom struct {
	name string
	args []ast.Term
}

// dgoal is one body goal of a flattened rule: either a local atom or a
// passthrough goal (EDB atoms, comparisons, imported predicates, ...).
type dgoal struct {
	local *latom
	neg   bool
	g     ast.Goal // passthrough when local == nil
}

// drule is a flattened rule over local relation names.
type drule struct {
	head latom
	body []dgoal
	agg  bool // body contains aggregation or group_by goals
}

// universe is the set of same-module NAIL! predicates reachable from the
// target, keyed by base name.
type universe struct {
	lp     *modsys.Program
	module string
	syms   map[string]*modsys.Symbol
}

// flatArity returns the arity of the flattened relation for a predicate.
func flatArity(sym *modsys.Symbol) int { return sym.NameArity + sym.Free }

func allFree(sym *modsys.Symbol) string {
	return strings.Repeat("f", flatArity(sym))
}

// Generate compiles the rules reachable from sym into a Glue procedure for
// the given adornment ('b'/'f' per flattened argument).
func Generate(lp *modsys.Program, sym *modsys.Symbol, adorn string, opts Options) (*ast.Proc, error) {
	if len(adorn) != flatArity(sym) {
		return nil, errf(sym.Module, sym.Name,
			"adornment %q does not match arity %d", adorn, flatArity(sym))
	}
	u := collectUniverse(lp, sym)
	g := &generator{u: u, opts: opts, target: sym, adorn: adorn,
		arities: map[string]int{}}
	var err error
	if opts.Magic && strings.ContainsRune(adorn, 'b') {
		err = g.buildMagic()
	} else {
		err = g.buildPlain()
	}
	if err != nil {
		return nil, err
	}
	return g.emitProc()
}

func collectUniverse(lp *modsys.Program, root *modsys.Symbol) *universe {
	u := &universe{lp: lp, module: root.Module, syms: map[string]*modsys.Symbol{}}
	work := []*modsys.Symbol{root}
	for len(work) > 0 {
		sym := work[len(work)-1]
		work = work[:len(work)-1]
		if _, done := u.syms[sym.Name]; done {
			continue
		}
		u.syms[sym.Name] = sym
		for _, rule := range sym.Rules {
			for _, goal := range rule.Body {
				ag, ok := goal.(*ast.AtomGoal)
				if !ok {
					continue
				}
				base := atomBase(ag.Atom)
				if base == "" {
					continue
				}
				ref := lp.Resolve(u.module, base)
				if ref != nil && ref.Class == modsys.ClassNail && ref.Module == u.module {
					work = append(work, ref)
				}
			}
		}
	}
	return u
}

// atomBase returns the base functor name of an atom's predicate term, or ""
// when the predicate is (or starts with) a variable.
func atomBase(a *ast.AtomTerm) string {
	switch pred := a.Pred.(type) {
	case *ast.Const:
		if pred.Val.Kind() == term.Str {
			return pred.Val.Str()
		}
	case *ast.CompTerm:
		if fn, ok := pred.Fn.(*ast.Const); ok && fn.Val.Kind() == term.Str {
			return fn.Val.Str()
		}
	}
	return ""
}

// universeSym resolves an atom to a universe predicate with a matching
// shape.
func (u *universe) universeSym(a *ast.AtomTerm) (*modsys.Symbol, bool) {
	base := atomBase(a)
	if base == "" {
		return nil, false
	}
	sym, ok := u.syms[base]
	if !ok {
		return nil, false
	}
	switch pred := a.Pred.(type) {
	case *ast.Const:
		return sym, sym.NameArity == 0 && len(a.Args) == sym.Free
	case *ast.CompTerm:
		return sym, sym.NameArity == len(pred.Args) && len(a.Args) == sym.Free
	}
	return nil, false
}

// flatten returns the flattened argument list of a universe atom: name
// arguments (for families) followed by value arguments.
func flatten(a *ast.AtomTerm) []ast.Term {
	if comp, ok := a.Pred.(*ast.CompTerm); ok {
		out := make([]ast.Term, 0, len(comp.Args)+len(a.Args))
		out = append(out, comp.Args...)
		return append(out, a.Args...)
	}
	return a.Args
}

type generator struct {
	u       *universe
	opts    Options
	target  *modsys.Symbol
	adorn   string
	rules   []drule
	arities map[string]int // local relation name -> arity
	// targetLocal is the local relation holding the answer.
	targetLocal string
	// seeds are statements emitted before the strata (magic seeding).
	seeds []ast.Stmt
	// magicMode is set during magic-set generation; negated predicates
	// then evaluate through a disconnected "plain" sub-program (see
	// ensurePlain) so the rewritten program stays stratified.
	magicMode bool
	plainDone map[string]bool
}

func (g *generator) declare(name string, arity int) {
	g.arities[name] = arity
}

// localName mangles a predicate + adornment into a local relation name.
func localName(pred, adorn string) string { return pred + "|" + adorn }

// buildPlain flattens every universe rule, computing complete extensions.
func (g *generator) buildPlain() error {
	for _, sym := range g.u.syms {
		name := localName(sym.Name, allFree(sym))
		g.declare(name, flatArity(sym))
		for _, rule := range sym.Rules {
			dr, err := g.flattenRule(sym, rule)
			if err != nil {
				return err
			}
			g.rules = append(g.rules, dr)
		}
	}
	g.targetLocal = localName(g.target.Name, allFree(g.target))
	return nil
}

// ensurePlain adds an unadorned evaluation of the predicates reachable
// from root, under "|plain" local names: every universe atom (positive or
// negated) maps to its plain local. The sub-program has no magic
// predicates, so nothing in it can depend on adorned predicates — it is a
// self-contained lower stratum for negation under magic rewriting.
func (g *generator) ensurePlain(root *modsys.Symbol) {
	if g.plainDone == nil {
		g.plainDone = map[string]bool{}
	}
	work := []*modsys.Symbol{root}
	for len(work) > 0 {
		sym := work[len(work)-1]
		work = work[:len(work)-1]
		if g.plainDone[sym.Name] {
			continue
		}
		g.plainDone[sym.Name] = true
		g.declare(localName(sym.Name, "plain"), flatArity(sym))
		for _, rule := range sym.Rules {
			dr := drule{head: latom{
				name: localName(sym.Name, "plain"),
				args: flatten(rule.Head),
			}}
			bad := false
			for _, goal := range rule.Body {
				if ag, ok := goal.(*ast.AtomGoal); ok {
					if bsym, isU := g.u.universeSym(ag.Atom); isU && ag.Update == ast.UpdateNone {
						dr.body = append(dr.body, dgoal{
							local: &latom{
								name: localName(bsym.Name, "plain"),
								args: flatten(ag.Atom),
							},
							neg: ag.Negated,
						})
						work = append(work, bsym)
						continue
					}
				}
				dg, isAgg, err := g.flattenPassthrough(sym, goal)
				if err != nil {
					bad = true
					break
				}
				dr.agg = dr.agg || isAgg
				dr.body = append(dr.body, dg)
			}
			if !bad {
				g.rules = append(g.rules, dr)
			}
		}
	}
}

// flattenPassthrough handles the non-universe goals of a rule (EDB atoms,
// comparisons, aggregation) identically to flattenGoal's fallthrough.
func (g *generator) flattenPassthrough(sym *modsys.Symbol, goal ast.Goal) (dgoal, bool, error) {
	switch goal := goal.(type) {
	case *ast.AtomGoal:
		if goal.Update != ast.UpdateNone {
			return dgoal{}, false, errf(sym.Module, sym.Name,
				"NAIL! rules cannot contain update subgoals")
		}
		return dgoal{g: goal}, false, nil
	case *ast.AggGoal, *ast.GroupByGoal:
		return dgoal{g: goal}, true, nil
	case *ast.CmpGoal:
		return dgoal{g: goal}, false, nil
	}
	return dgoal{}, false, errf(sym.Module, sym.Name, "goal not allowed in a NAIL! rule")
}

// flattenRule rewrites one rule for plain generation: universe body atoms
// become all-free local atoms.
func (g *generator) flattenRule(sym *modsys.Symbol, rule *ast.Rule) (drule, error) {
	dr := drule{head: latom{
		name: localName(sym.Name, allFree(sym)),
		args: flatten(rule.Head),
	}}
	for _, goal := range rule.Body {
		dg, isAgg, err := g.flattenGoal(sym, goal, nil)
		if err != nil {
			return dr, err
		}
		dr.agg = dr.agg || isAgg
		dr.body = append(dr.body, dg)
	}
	return dr, nil
}

// flattenGoal rewrites one body goal; adornFor (nil in plain mode) chooses
// the adorned local for positive universe atoms.
func (g *generator) flattenGoal(sym *modsys.Symbol, goal ast.Goal,
	adornFor func(bsym *modsys.Symbol, a *ast.AtomTerm) string) (dgoal, bool, error) {
	switch goal := goal.(type) {
	case *ast.AtomGoal:
		if goal.Update != ast.UpdateNone {
			return dgoal{}, false, errf(sym.Module, sym.Name,
				"NAIL! rules cannot contain update subgoals")
		}
		if bsym, ok := g.u.universeSym(goal.Atom); ok {
			var name string
			switch {
			case goal.Negated && g.magicMode:
				// Negated predicates need their complete extension. Under
				// magic rewriting they evaluate through a disconnected
				// unadorned sub-program: sharing adorned locals would let
				// the negated predicate's magic rules depend on the
				// negating rule's prefix, creating a negative cycle in an
				// otherwise stratified program.
				name = localName(bsym.Name, "plain")
				g.ensurePlain(bsym)
			case goal.Negated:
				name = localName(bsym.Name, allFree(bsym))
			case adornFor != nil:
				name = localName(bsym.Name, adornFor(bsym, goal.Atom))
			default:
				name = localName(bsym.Name, allFree(bsym))
			}
			return dgoal{
				local: &latom{name: name, args: flatten(goal.Atom)},
				neg:   goal.Negated,
			}, false, nil
		}
		return dgoal{g: goal}, false, nil
	case *ast.AggGoal, *ast.GroupByGoal:
		return dgoal{g: goal}, true, nil
	case *ast.CmpGoal:
		return dgoal{g: goal}, false, nil
	}
	return dgoal{}, false, errf(sym.Module, sym.Name, "goal not allowed in a NAIL! rule")
}

func markTermVars(ts []ast.Term, bound map[string]bool) {
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch t := t.(type) {
		case *ast.VarTerm:
			if !t.IsAnon() {
				bound[t.Name] = true
			}
		case *ast.CompTerm:
			walk(t.Fn)
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, t := range ts {
		walk(t)
	}
}

func termVarsBound(t ast.Term, bound map[string]bool) bool {
	switch t := t.(type) {
	case *ast.Const:
		return true
	case *ast.VarTerm:
		if t.IsAnon() {
			return false
		}
		return bound[t.Name]
	case *ast.CompTerm:
		if !termVarsBound(t.Fn, bound) {
			return false
		}
		for _, a := range t.Args {
			if !termVarsBound(a, bound) {
				return false
			}
		}
		return true
	}
	return false
}
