package nail

import (
	"strings"

	"gluenail/internal/ast"
	"gluenail/internal/modsys"
)

// Magic-set rewriting (§8.2): given the query adornment, the rule set is
// specialized so that only tuples relevant to the bound arguments are
// derived. Sideways information passing is left to right, matching Glue's
// evaluation order. Negated predicates use complete (all-free) extensions,
// which keeps the rewriting sound under stratified negation.

// magicName names the magic relation for an adorned predicate.
func magicName(pred, adorn string) string { return "m|" + pred + "|" + adorn }

func boundCount(adorn string) int { return strings.Count(adorn, "b") }

// boundArgs selects the terms at 'b' positions.
func boundArgs(args []ast.Term, adorn string) []ast.Term {
	out := make([]ast.Term, 0, boundCount(adorn))
	for i, a := range args {
		if adorn[i] == 'b' {
			out = append(out, a)
		}
	}
	return out
}

func (g *generator) buildMagic() error {
	g.magicMode = true
	type job struct {
		sym   *modsys.Symbol
		adorn string
	}
	done := map[string]bool{}
	var work []job
	request := func(sym *modsys.Symbol, adorn string) string {
		key := localName(sym.Name, adorn)
		if !done[key] {
			done[key] = true
			work = append(work, job{sym, adorn})
		}
		return adorn
	}
	request(g.target, g.adorn)
	for len(work) > 0 {
		j := work[len(work)-1]
		work = work[:len(work)-1]
		sym, adorn := j.sym, j.adorn
		predLocal := localName(sym.Name, adorn)
		g.declare(predLocal, flatArity(sym))
		hasBound := strings.ContainsRune(adorn, 'b')
		if hasBound {
			g.declare(magicName(sym.Name, adorn), boundCount(adorn))
		}
		for _, rule := range sym.Rules {
			headArgs := flatten(rule.Head)
			// Bound variables: those in the head's bound positions.
			bound := map[string]bool{}
			markTermVars(boundArgs(headArgs, adorn), bound)

			dr := drule{head: latom{name: predLocal, args: headArgs}}
			if hasBound {
				dr.body = append(dr.body, dgoal{local: &latom{
					name: magicName(sym.Name, adorn),
					args: boundArgs(headArgs, adorn),
				}})
			}
			for _, goal := range rule.Body {
				adornFor := func(bsym *modsys.Symbol, a *ast.AtomTerm) string {
					fargs := flatten(a)
					ad := make([]byte, len(fargs))
					for i, t := range fargs {
						if termVarsBound(t, bound) {
							ad[i] = 'b'
						} else {
							ad[i] = 'f'
						}
					}
					sub := request(bsym, string(ad))
					if strings.ContainsRune(sub, 'b') {
						// Magic rule: the bound arguments reaching this
						// occurrence, guarded by the rule's own magic and
						// the preceding body goals.
						g.declare(magicName(bsym.Name, sub), boundCount(sub))
						mr := drule{head: latom{
							name: magicName(bsym.Name, sub),
							args: boundArgs(fargs, sub),
						}}
						mr.body = append(mr.body, cloneGoals(dr.body)...)
						if len(mr.body) == 0 {
							mr.body = append(mr.body, trueGoal())
						}
						g.rules = append(g.rules, mr)
					}
					return sub
				}
				dg, isAgg, err := g.flattenGoal(sym, goal, adornFor)
				if err != nil {
					return err
				}
				dr.agg = dr.agg || isAgg
				dr.body = append(dr.body, dg)
				// Binding propagation: positive goals bind their variables.
				if ag, ok := goal.(*ast.AtomGoal); ok && !ag.Negated {
					markTermVars(flatten(ag.Atom), bound)
					markTermVars([]ast.Term{ag.Atom.Pred}, bound)
				}
			}
			g.rules = append(g.rules, dr)
		}
	}
	// Seed: the magic set of the target starts from the in relation.
	seedVars := make([]ast.Term, 0, boundCount(g.adorn))
	for i := 0; i < boundCount(g.adorn); i++ {
		seedVars = append(seedVars, mkVar("B", i))
	}
	g.seeds = append(g.seeds, &ast.Assign{
		Op: ast.OpAssign,
		Head: &ast.AtomTerm{
			Pred: mkConst(magicName(g.target.Name, g.adorn)),
			Args: seedVars,
		},
		Body: []ast.Goal{&ast.AtomGoal{Atom: &ast.AtomTerm{
			Pred: mkConst("in"),
			Args: seedVars,
		}}},
	})
	g.targetLocal = localName(g.target.Name, g.adorn)
	return nil
}

// cloneGoals copies the dgoal slice (shallow: atoms/goals are shared,
// which is safe because the compiler never mutates them).
func cloneGoals(gs []dgoal) []dgoal {
	out := make([]dgoal, len(gs))
	copy(out, gs)
	return out
}
