package plan

import (
	"fmt"
	"strings"

	"gluenail/internal/ast"
	"gluenail/internal/modsys"
	"gluenail/internal/nail"
	"gluenail/internal/term"
)

// Error is a compile-time error with source context.
type Error struct {
	Module string
	Pos    ast.Pos
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("module %s: %d:%d: %s", e.Module, e.Pos.Line, e.Pos.Col, e.Msg)
}

// Compiler compiles a linked program into executable plans. NAIL!
// predicates are compiled to Glue procedures on demand, per binding pattern
// (adornment), with magic-set rewriting when the pattern has bound
// arguments.
type Compiler struct {
	lp     *modsys.Program
	opts   Options
	prog   *Program
	fixed  map[string]bool // "module.proc" -> fixed
	inFly  map[string]bool // NAIL! procs being generated (cycle detection)
	queryN int
}

// NewCompiler returns a compiler over the linked program.
func NewCompiler(lp *modsys.Program, opts Options) *Compiler {
	return &Compiler{
		lp:    lp,
		opts:  opts,
		prog:  &Program{Procs: make(map[string]*Proc)},
		fixed: make(map[string]bool),
		inFly: make(map[string]bool),
	}
}

// Program returns the compiled program (grows as queries are compiled).
func (c *Compiler) Program() *Program { return c.prog }

// CompileAll compiles every procedure of every module.
func (c *Compiler) CompileAll() error {
	c.computeFixedness()
	for _, modName := range c.lp.Order {
		lm := c.lp.Modules[modName]
		for _, proc := range lm.AST.Procs {
			if _, err := c.compileProc(modName, proc, ""); err != nil {
				return err
			}
		}
	}
	return nil
}

// CompileQuery compiles a goal conjunction as a transient procedure in the
// given module's scope. It returns the procedure ID and the answer-variable
// names in first-occurrence order.
func (c *Compiler) CompileQuery(module string, goals []ast.Goal) (string, []string, error) {
	if c.lp.Modules[module] == nil {
		return "", nil, fmt.Errorf("plan: unknown module %q", module)
	}
	vars := goalVars(goals)
	c.queryN++
	name := fmt.Sprintf("$query%d", c.queryN)
	proc := &ast.Proc{Name: name, FreeParams: vars}
	head := &ast.AtomTerm{Pred: constStr("return")}
	for _, v := range vars {
		head.Args = append(head.Args, &ast.VarTerm{Name: v})
	}
	proc.Body = []ast.Stmt{&ast.Assign{
		Op: ast.OpAssign, Head: head, IsReturn: true, HeadBound: 0, Body: goals,
	}}
	id, err := c.compileProc(module, proc, "")
	return id, vars, err
}

// goalVars returns named variables in first-occurrence order.
func goalVars(goals []ast.Goal) []string {
	var order []string
	seen := map[string]bool{}
	add := func(name string) {
		if name == "" || name == "_" || seen[name] {
			return
		}
		seen[name] = true
		order = append(order, name)
	}
	var walkTerm func(t ast.Term)
	walkTerm = func(t ast.Term) {
		switch t := t.(type) {
		case *ast.VarTerm:
			add(t.Name)
		case *ast.CompTerm:
			walkTerm(t.Fn)
			for _, a := range t.Args {
				walkTerm(a)
			}
		}
	}
	var walkExpr func(e ast.Expr)
	walkExpr = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.TermExpr:
			walkTerm(e.T)
		case *ast.BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *ast.NegExpr:
			walkExpr(e.X)
		case *ast.CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	for _, g := range goals {
		switch g := g.(type) {
		case *ast.AtomGoal:
			walkTerm(g.Atom.Pred)
			for _, a := range g.Atom.Args {
				walkTerm(a)
			}
		case *ast.CmpGoal:
			walkExpr(g.L)
			walkExpr(g.R)
		case *ast.AggGoal:
			walkTerm(g.Arg)
			add(g.Var)
		case *ast.GroupByGoal:
			for _, v := range g.Vars {
				add(v)
			}
		}
	}
	return order
}

func constStr(s string) *ast.Const {
	return &ast.Const{Val: term.Intern(s)}
}

// computeFixedness runs the call-graph fixpoint of §3.1: a procedure is
// fixed if it performs I/O, updates a non-local relation, contains an
// update subgoal, or calls a fixed procedure.
func (c *Compiler) computeFixedness() {
	type procInfo struct {
		module string
		proc   *ast.Proc
	}
	var all []procInfo
	for _, modName := range c.lp.Order {
		for _, p := range c.lp.Modules[modName].AST.Procs {
			all = append(all, procInfo{modName, p})
		}
	}
	changed := true
	for changed {
		changed = false
		for _, pi := range all {
			key := pi.module + "." + pi.proc.Name
			if c.fixed[key] {
				continue
			}
			if c.procLooksFixed(pi.module, pi.proc) {
				c.fixed[key] = true
				changed = true
			}
		}
	}
}

func (c *Compiler) procLooksFixed(module string, proc *ast.Proc) bool {
	locals := map[string]bool{}
	for _, l := range proc.Locals {
		locals[l.Name] = true
	}
	goalFixed := func(g ast.Goal) bool {
		ag, ok := g.(*ast.AtomGoal)
		if !ok {
			return false
		}
		if ag.Update != ast.UpdateNone {
			// Updates to locals are frame-private; anything else is an
			// EDB side effect.
			return !locals[ag.Atom.PredName()]
		}
		name := ag.Atom.PredName()
		if name == "" || locals[name] || name == "in" {
			return false
		}
		if sym := c.lp.Resolve(module, name); sym != nil {
			return sym.Class == modsys.ClassProc && c.fixed[sym.Module+"."+sym.Name]
		}
		if c.opts.Builtin != nil {
			if sig, ok := c.opts.Builtin(name); ok {
				return sig.Fixed
			}
		}
		return false
	}
	var stmtsFixed func(stmts []ast.Stmt) bool
	stmtsFixed = func(stmts []ast.Stmt) bool {
		for _, st := range stmts {
			switch st := st.(type) {
			case *ast.Assign:
				if !st.IsReturn {
					name := st.Head.PredName()
					// HiLog heads and non-local simple heads hit the EDB.
					if name == "" || !locals[name] {
						return true
					}
				}
				for _, g := range st.Body {
					if goalFixed(g) {
						return true
					}
				}
			case *ast.Repeat:
				if stmtsFixed(st.Body) {
					return true
				}
				for _, alt := range st.Until {
					for _, g := range alt {
						if goalFixed(g) {
							return true
						}
					}
				}
			}
		}
		return false
	}
	return stmtsFixed(proc.Body)
}

// compileProc compiles one procedure; id overrides the default module.name
// procedure ID (used for generated NAIL! procedures).
func (c *Compiler) compileProc(module string, proc *ast.Proc, id string) (string, error) {
	if id == "" {
		id = module + "." + proc.Name
	}
	if _, done := c.prog.Procs[id]; done {
		return id, nil
	}
	p := &Proc{
		ID:     id,
		Module: module,
		Name:   proc.Name,
		Bound:  len(proc.BoundParams),
		Free:   len(proc.FreeParams),
		Fixed:  c.fixed[module+"."+proc.Name],
	}
	for _, l := range proc.Locals {
		p.Locals = append(p.Locals, LocalDecl{Name: l.Name, Arity: l.Arity()})
	}
	// Install before compiling the body so recursive references resolve.
	c.prog.Procs[id] = p
	pc := &procCompiler{
		c:      c,
		module: module,
		proc:   proc,
		locals: map[string]int{},
	}
	for _, l := range proc.Locals {
		pc.locals[l.Name] = l.Arity()
	}
	body, err := pc.compileStmts(proc.Body)
	if err != nil {
		delete(c.prog.Procs, id)
		return "", err
	}
	p.Body = body
	return id, nil
}

// nailProcID names a generated NAIL! procedure.
func nailProcID(module, pred, adorn string) string {
	return module + "." + pred + "@" + adorn
}

// requestNail ensures the generated procedure for (sym, adornment) exists.
// It returns the procedure ID and the effective adornment, which may be
// all-free when magic-set rewriting is disabled. The adornment has one
// 'b'/'f' per value argument; families are always requested all-free over
// name+value arguments.
func (c *Compiler) requestNail(sym *modsys.Symbol, adorn string) (string, string, error) {
	if c.opts.NoMagic {
		adorn = strings.Repeat("f", len(adorn))
	}
	id := nailProcID(sym.Module, sym.Name, adorn)
	if _, done := c.prog.Procs[id]; done {
		return id, adorn, nil
	}
	if c.inFly[id] {
		return "", "", fmt.Errorf(
			"plan: cross-module NAIL! recursion through %s.%s is not supported",
			sym.Module, sym.Name)
	}
	c.inFly[id] = true
	defer delete(c.inFly, id)
	gen, err := nail.Generate(c.lp, sym, adorn, nail.Options{
		Magic:     !c.opts.NoMagic,
		SemiNaive: !c.opts.Naive,
	})
	if err != nil {
		return "", "", err
	}
	id, err = c.compileProc(sym.Module, gen, id)
	return id, adorn, err
}

// requestFamily ensures the all-free flat procedure for a HiLog family.
func (c *Compiler) requestFamily(sym *modsys.Symbol) (string, error) {
	id, _, err := c.requestNail(sym, strings.Repeat("f", sym.NameArity+sym.Free))
	return id, err
}
