package plan

import (
	"strings"
	"testing"

	"gluenail/internal/ast"
	"gluenail/internal/modsys"
	"gluenail/internal/parser"
)

func compileSrc(t *testing.T, src string, opts Options) *Compiler {
	t.Helper()
	c, err := tryCompile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func tryCompile(src string, opts Options) (*Compiler, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	lp, err := modsys.LinkWith(prog, modsys.Options{Known: func(name string) bool {
		if opts.Builtin == nil {
			return false
		}
		_, ok := opts.Builtin(name)
		return ok
	}})
	if err != nil {
		return nil, err
	}
	c := NewCompiler(lp, opts)
	if err := c.CompileAll(); err != nil {
		return nil, err
	}
	return c, nil
}

func stdBuiltins(name string) (BuiltinSig, bool) {
	switch name {
	case "write":
		return BuiltinSig{Variadic: true, Fixed: true}, true
	case "pure_fn":
		return BuiltinSig{Bound: 1, Free: 1}, true
	}
	return BuiltinSig{}, false
}

func onlyStmt(t *testing.T, c *Compiler, id string) *Stmt {
	t.Helper()
	p := c.Program().Procs[id]
	if p == nil {
		t.Fatalf("no proc %s; have %v", id, procIDs(c))
	}
	for _, in := range p.Body {
		if ex, ok := in.(*ExecStmt); ok {
			return ex.S
		}
	}
	t.Fatalf("proc %s has no statements", id)
	return nil
}

func procIDs(c *Compiler) []string {
	var ids []string
	for id := range c.Program().Procs {
		ids = append(ids, id)
	}
	return ids
}

func TestSimpleJoinIsOnePipeSegment(t *testing.T) {
	c := compileSrc(t, `
edb a(X,Y), b(Y,Z), r(X,Z);
proc go(:)
  r(X,Z) := a(X,Y) & b(Y,Z).
  return(:) := r(_,_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	if len(st.Steps) != 1 {
		t.Fatalf("join should compile to one segment, got %d", len(st.Steps))
	}
	if len(st.Steps[0].Pipe) != 2 {
		t.Errorf("pipe ops = %d, want 2", len(st.Steps[0].Pipe))
	}
	if st.Steps[0].Barrier != nil {
		t.Error("final step should have nil barrier")
	}
	if !st.Steps[0].Dedup {
		t.Error("dedup should be on by default at the final break")
	}
}

func TestAggregatorForcesBreakAndNoDedup(t *testing.T) {
	c := compileSrc(t, `
edb temp(T), out(M);
proc go(:)
  out(M) := temp(T) & M = max(T).
  return(:) := out(_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	if len(st.Steps) != 2 {
		t.Fatalf("aggregator should break the pipeline: %d steps", len(st.Steps))
	}
	if _, ok := st.Steps[0].Barrier.(*Aggregate); !ok {
		t.Errorf("step 0 barrier = %T", st.Steps[0].Barrier)
	}
	if st.Steps[0].Dedup {
		t.Error("dedup before an aggregator is illegal (duplicates are meaningful)")
	}
	if !st.HasAgg {
		t.Error("HasAgg should be set")
	}
}

func TestProcCallIsBarrier(t *testing.T) {
	c := compileSrc(t, `
edb e(X,Y), out(X,Y);
proc helper(X:Y)
  return(X:Y) := e(X,Y).
end
proc go(:)
  out(X,Y) := e(X,_) & helper(X,Y).
  return(:) := out(_,_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	if len(st.Steps) != 2 {
		t.Fatalf("proc call should break the pipeline: %d steps", len(st.Steps))
	}
	call, ok := st.Steps[0].Barrier.(*Call)
	if !ok {
		t.Fatalf("barrier = %T", st.Steps[0].Barrier)
	}
	if call.ProcID != "main.helper" || len(call.BoundArgs) != 1 || len(call.FreeArgs) != 1 {
		t.Errorf("call = %+v", call)
	}
}

func TestReorderingMovesFilterEarly(t *testing.T) {
	// With reordering, the bound-argument lookup b(X,1) and the comparison
	// run before the unbound scan of c.
	src := `
edb a(X), b(X,Y), c(Z), r(X,Z);
proc go(:)
  r(X,Z) := a(X) & c(Z) & b(X,1) & X != Z.
  return(:) := r(_,_).
end
`
	c := compileSrc(t, src, Options{})
	st := onlyStmt(t, c, "main.go")
	pipe := st.Steps[0].Pipe
	// Expected greedy order: a(X) scan first (all scores equal at start,
	// original order tie-break), then b(X,1) (bound arg), then... the
	// comparison needs Z, so c(Z) then X != Z.
	names := pipeShape(pipe)
	// Greedy order: b(X,1) first (a ground argument makes it the most
	// selective), which binds X; then a(X); then c(Z); the comparison runs
	// as soon as Z is bound.
	want := []string{"match:b", "match:a", "match:c", "cmp"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("pipe order = %v, want %v", names, want)
	}
	// Without reordering the textual order is kept.
	c2 := compileSrc(t, src, Options{NoReorder: true})
	st2 := onlyStmt(t, c2, "main.go")
	names2 := pipeShape(st2.Steps[0].Pipe)
	want2 := []string{"match:a", "match:c", "match:b", "cmp"}
	if strings.Join(names2, ",") != strings.Join(want2, ",") {
		t.Errorf("unordered pipe = %v, want %v", names2, want2)
	}
}

func pipeShape(ops []PipeOp) []string {
	var out []string
	for _, op := range ops {
		switch op := op.(type) {
		case *Match:
			out = append(out, "match:"+op.Rel.Name.Val.Str())
		case *DynMatch:
			out = append(out, "dyn")
		case *Compare:
			out = append(out, "cmp")
		case *MatchBind:
			out = append(out, "bind")
		}
	}
	return out
}

func TestNailCallAdornment(t *testing.T) {
	src := `
edb e(X,Y), out(Y);
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y) & e(Y,Z).
proc go(:)
  out(Y) := tc(1, Y).
  return(:) := out(_).
end
`
	c := compileSrc(t, src, Options{})
	st := onlyStmt(t, c, "main.go")
	call := st.Steps[0].Barrier.(*Call)
	if call.ProcID != "main.tc@bf" {
		t.Errorf("adorned call = %q, want main.tc@bf", call.ProcID)
	}
	if _, ok := c.Program().Procs["main.tc@bf"]; !ok {
		t.Error("generated proc main.tc@bf missing")
	}
	// With magic disabled, the call falls back to the all-free variant.
	c2 := compileSrc(t, src, Options{NoMagic: true})
	st2 := onlyStmt(t, c2, "main.go")
	call2 := st2.Steps[0].Barrier.(*Call)
	if call2.ProcID != "main.tc@ff" {
		t.Errorf("no-magic call = %q, want main.tc@ff", call2.ProcID)
	}
	if len(call2.BoundArgs) != 0 || len(call2.FreeArgs) != 2 {
		t.Errorf("no-magic arg split = %d:%d", len(call2.BoundArgs), len(call2.FreeArgs))
	}
}

func TestFixednessPropagation(t *testing.T) {
	c := compileSrc(t, `
edb log(X), data(X), out(X);
proc noisy(X:)
  log(X) += in(X) & write(X).
  return(X:) := in(X).
end
proc caller(:)
  out(X) := data(X) & noisy(X).
  return(:) := out(_).
end
proc quiet(X:Y)
  return(X:Y) := data(Y) & in(X).
end
`, Options{Builtin: stdBuiltins})
	prog := c.Program()
	if !prog.Procs["main.noisy"].Fixed {
		t.Error("noisy writes and updates EDB: should be fixed")
	}
	if !prog.Procs["main.caller"].Fixed {
		t.Error("caller assigns EDB and calls fixed proc: should be fixed")
	}
	if prog.Procs["main.quiet"].Fixed {
		t.Error("quiet is pure: should not be fixed")
	}
}

func TestDynamicDispatchNarrowing(t *testing.T) {
	src := `
edb holder(S), s1(X), s2(X), other(X,Y), out(X);
proc go(:)
  out(X) := holder(S) & S(X).
  return(:) := out(_).
end
`
	c := compileSrc(t, src, Options{})
	st := onlyStmt(t, c, "main.go")
	var dyn *DynMatch
	for _, op := range st.Steps[0].Pipe {
		if d, ok := op.(*DynMatch); ok {
			dyn = d
		}
	}
	if dyn == nil {
		t.Fatal("no DynMatch op")
	}
	if !dyn.Narrowed {
		t.Error("narrowing should be on by default")
	}
	// Candidates: arity-1 relations (holder, s1, s2, out) but not other/2.
	for _, want := range []string{"holder", "s1", "s2", "out"} {
		if !dyn.Candidates[want] {
			t.Errorf("candidate %s missing: %v", want, dyn.Candidates)
		}
	}
	if dyn.Candidates["other"] {
		t.Error("other/2 should not be an arity-1 candidate")
	}
	c2 := compileSrc(t, src, Options{NoNarrow: true})
	st2 := onlyStmt(t, c2, "main.go")
	for _, op := range st2.Steps[0].Pipe {
		if d, ok := op.(*DynMatch); ok && d.Narrowed {
			t.Error("NoNarrow should disable narrowing")
		}
	}
}

func TestFamilyDispatchUsesDynCall(t *testing.T) {
	c := compileSrc(t, `
edb attends(N, ID), holder(S), out(X);
students(ID)(N) :- attends(N, ID).
proc go(:)
  out(X) := holder(S) & S(X).
  return(:) := out(_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	found := false
	for _, step := range st.Steps {
		if dc, ok := step.Barrier.(*DynCall); ok {
			found = true
			if len(dc.Families) != 1 || dc.Families[0].Base != "students" {
				t.Errorf("families = %+v", dc.Families)
			}
		}
	}
	if !found {
		t.Error("family candidates should compile to DynCall")
	}
	if _, ok := c.Program().Procs["main.students@ff"]; !ok {
		t.Errorf("family proc missing: %v", procIDs(c))
	}
}

func TestModifyKeyMask(t *testing.T) {
	c := compileSrc(t, `
edb acc(Id, Bal), delta(Id, D);
proc go(:)
  acc(Id, B2) +=[Id] acc(Id, B) & delta(Id, D) & B2 = B + D.
  return(:) := acc(_,_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	if st.Op != ast.OpModify || st.KeyMask != 0b01 {
		t.Errorf("op=%v mask=%b", st.Op, st.KeyMask)
	}
}

func TestCompileQueryVars(t *testing.T) {
	c := compileSrc(t, `edb e(X,Y);`, Options{})
	goals, err := parser.ParseGoals("e(X, Y) & X != Y")
	if err != nil {
		t.Fatal(err)
	}
	id, vars, err := c.CompileQuery("main", goals)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Y" {
		t.Errorf("vars = %v", vars)
	}
	if _, ok := c.Program().Procs[id]; !ok {
		t.Error("query proc missing")
	}
	if _, _, err := c.CompileQuery("zzz", goals); err == nil {
		t.Error("unknown module should fail")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`edb e(X);
proc p(:)
  out(Y) := e(X) & Y < X.
  return(:) := out(_).
end
edb out(Y);`, "unbound"},
		{`module m;
edb e(X), out(X);
proc p(:)
  out(X) := e(X) & !missing(X).
  return(:) := out(_).
end
end`, "unknown predicate"},
		{`edb e(X);
proc p(:)
  e(X) := e(Y) & X = Y + Z.
  return(:) := e(_).
end`, "unbound"},
		{`edb e(X,Y);
proc p(:)
  e(X,_) := e(X,Y).
  return(:) := e(_,_).
end`, "anonymous"},
		{`edb e(X);
tcp(X) :- e(X).
proc p(:)
  tcp(X) := e(X).
  return(:) := e(_).
end`, "cannot assign"},
		{`edb e(X);
proc p(:)
  in(X) := e(X).
  return(:) := e(_).
end`, "cannot assign"},
		{`edb e(X);
proc p(:)
  out(X) := return(X).
  return(:) := e(_).
end
edb out(X);`, "cannot be read"},
		{`edb e(X,Y);
proc p(:)
  e(X,Y) +=[Z] e(X,Y).
  return(:) := e(_,_).
end`, "key variable"},
		{`edb e(X);
proc p(X,Y:)
  return(X:) := e(X).
end`, "does not match"},
		{`edb e(X);
proc p(:)
  out(S) := e(S) & !S(X).
  return(:) := out(_).
end
edb out(X);`, "not bound"},
	}
	for _, cse := range cases {
		_, err := tryCompile(cse.src, Options{})
		if err == nil {
			t.Errorf("compile should fail for:\n%s", cse.src)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("error %q should contain %q", err, cse.want)
		}
	}
}

func TestVariadicBuiltinArity(t *testing.T) {
	c := compileSrc(t, `
edb e(X), out(X);
proc p(:)
  out(X) := e(X) & write(X, X, X).
  return(:) := out(_).
end
`, Options{Builtin: stdBuiltins})
	st := onlyStmt(t, c, "main.p")
	call, ok := st.Steps[0].Barrier.(*Call)
	if !ok || call.Builtin != "write" || len(call.BoundArgs) != 3 {
		t.Errorf("write call = %+v", st.Steps[0].Barrier)
	}
}

func TestGroundCompoundNameIsEDBRef(t *testing.T) {
	// A ground compound name with no matching family reads a stored HiLog
	// set relation.
	c := compileSrc(t, `
edb out(X);
proc p(:)
  out(X) := myset(a)(X).
  return(:) := out(_).
end
`, Options{})
	st := onlyStmt(t, c, "main.p")
	m, ok := st.Steps[0].Pipe[0].(*Match)
	if !ok {
		t.Fatalf("op = %T", st.Steps[0].Pipe[0])
	}
	if m.Rel.Space != SpaceEDB || !m.Rel.Name.IsGround() {
		t.Errorf("rel = %+v", m.Rel)
	}
}
