// Prepared-plan cache. Physical planning re-derives a PhysPlan on every
// statement execution so op orders track live statistics — but for the
// repeated-query hot path (the same small statement executed thousands of
// times, or a repeat loop in steady state) the statistics rarely change,
// and the O(ops²) greedy reorder plus the op clones and hint slices it
// allocates dominate the execution itself. PlanCache keeps the last
// physical plan per statement, keyed by (statement identity, stats-epoch
// signature of the referenced relations, bound-variable mask signature),
// and serves it back allocation-free while the key matches.
//
// A stale plan is never wrong — any runnable op order yields the same
// result multiset (see the package comment in physical.go) — only possibly
// slow, so the cache can afford coarse invalidation:
//
//   - the epoch signature folds each referenced relation's StatsEpoch, so a
//     plan is dropped (a miss) once any input's cardinality has roughly
//     doubled, halved, or been cleared since planning;
//   - executor selectivity feedback is checked against the cached plan's
//     estimates on every hit, and a per-op drift past driftFactor forces a
//     re-plan (an invalidation) that bakes the observed ratios in.
package plan

import "gluenail/internal/term"

// Drift thresholds for feedback invalidation: an op's observed selectivity
// must differ from the cached plan's estimate by more than driftFactor in
// either direction, over at least driftMinRows observed input rows, before
// the plan is invalidated. The floor keeps one freak row from thrashing the
// cache; the factor is generous because a mis-ordered segment costs at most
// the ratio between the orders, while a re-plan costs O(ops²) every time.
const (
	driftFactor  = 8.0
	driftMinRows = 64
)

// CacheStats counts prepared-plan cache outcomes. Hits served a cached
// plan; Misses planned fresh because no plan was cached under the current
// key (first execution, or a stats-epoch change); Invalidations dropped a
// key-valid plan because observed selectivities drifted past the threshold
// (the re-plan that follows is counted only as an invalidation, not also a
// miss).
type CacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
}

// cacheEntry is the cache line of one statement or condition.
type cacheEntry struct {
	// refs lists the statically named relations the cached object reads or
	// writes — the relations whose stats epochs form the cache key. Computed
	// once per statement (the list is a compile-time property).
	refs []RelRef
	// boundSig folds the bound-register sets of every step (the
	// bound-variable mask component of the cache key). It is determined by
	// the compiled statement and so constant per entry; it is part of the
	// stored signature defensively, documenting that a plan is only valid
	// for the binding pattern it was derived under.
	boundSig uint64
	// sig is the full key the cached plan was stored under: boundSig
	// combined with the epoch signature supplied by the executor.
	sig uint64
	// plan is the cached statement plan; steps the cached condition
	// segments. Exactly one is set (entries are keyed by *Stmt or *Cond).
	plan  *PhysPlan
	steps []PhysStep
}

// PlanCache caches physical plans per statement identity. It is owned by
// one executor and touched only between statements, on the executing
// goroutine — the same single-threaded contract as the profile maps.
type PlanCache struct {
	entries map[any]*cacheEntry
	stats   CacheStats
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[any]*cacheEntry)}
}

// Reset drops every cached plan and zeroes the counters (EXPLAIN ANALYZE
// measures exactly one run; profile resets drop the feedback the drift
// check compares against, so the plans go with it).
func (c *PlanCache) Reset() {
	c.entries = make(map[any]*cacheEntry)
	c.stats = CacheStats{}
}

// Stats returns a snapshot of the hit/miss/invalidation counters.
func (c *PlanCache) Stats() CacheStats { return c.stats }

// StmtEntry returns the statement's cache line, creating it (with its
// relation references and bound signature) on first sight. The executor
// resolves the refs to stats epochs before calling Lookup.
func (c *PlanCache) StmtEntry(st *Stmt) *cacheEntry {
	e := c.entries[st]
	if e == nil {
		e = &cacheEntry{refs: stmtRefs(st), boundSig: stepsBoundSig(st.Steps)}
		c.entries[st] = e
	}
	return e
}

// CondEntry is StmtEntry for until-conditions.
func (c *PlanCache) CondEntry(cond *Cond) *cacheEntry {
	e := c.entries[cond]
	if e == nil {
		e = &cacheEntry{refs: stepsRefs(nil, cond.Steps), boundSig: stepsBoundSig(cond.Steps)}
		c.entries[cond] = e
	}
	return e
}

// Refs lists the relations whose stats epochs key this entry.
func (e *cacheEntry) Refs() []RelRef { return e.refs }

// Lookup returns the cached statement plan for the epoch signature, or nil.
// A missing or key-mismatched plan counts as a miss; a key-valid plan whose
// estimates drifted from the profile's observed selectivities is dropped
// and counted as an invalidation. Allocation-free on every path.
func (c *PlanCache) Lookup(e *cacheEntry, epochSig uint64, prof *StmtProfile) *PhysPlan {
	if e.plan == nil || e.sig != combineSig(e.boundSig, epochSig) {
		c.stats.Misses++
		return nil
	}
	if planDrifted(e.plan.Steps, prof) {
		e.plan = nil
		c.stats.Invalidations++
		return nil
	}
	c.stats.Hits++
	return e.plan
}

// Store caches a statement plan under the epoch signature.
func (c *PlanCache) Store(e *cacheEntry, epochSig uint64, pp *PhysPlan) {
	e.plan, e.steps = pp, nil
	e.sig = combineSig(e.boundSig, epochSig)
}

// LookupSteps returns the cached condition segments for the epoch
// signature, or nil. Conditions carry no profile, so they invalidate on
// epoch changes only.
func (c *PlanCache) LookupSteps(e *cacheEntry, epochSig uint64) []PhysStep {
	if e.steps == nil || e.sig != combineSig(e.boundSig, epochSig) {
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	return e.steps
}

// StoreSteps caches condition segments under the epoch signature.
func (c *PlanCache) StoreSteps(e *cacheEntry, epochSig uint64, steps []PhysStep) {
	e.steps, e.plan = steps, nil
	e.sig = combineSig(e.boundSig, epochSig)
}

// planDrifted reports whether any cached op's estimated selectivity
// disagrees with the profile's observed ratio by more than driftFactor,
// over at least driftMinRows input rows measured under the same bound
// mask. The small additive epsilon keeps a zero on either side from
// triggering on noise alone.
func planDrifted(steps []PhysStep, prof *StmtProfile) bool {
	if prof == nil {
		return false
	}
	const eps = 1e-3
	for k := range steps {
		if k >= len(prof.Steps) {
			break
		}
		ops := prof.Steps[k].Ops
		for i := range steps[k].Ops {
			po := &steps[k].Ops[i]
			if po.LogIdx >= len(ops) {
				continue
			}
			op := ops[po.LogIdx]
			if op.In < driftMinRows || op.Mask != OpMask(po.Op) {
				continue
			}
			obs := float64(op.Out) / float64(op.In)
			if obs > po.Sel*driftFactor+eps || po.Sel > obs*driftFactor+eps {
				return true
			}
		}
	}
	return false
}

// combineSig folds the constant bound signature into the executor's epoch
// signature (splitmix-style finalization via term's hash fold).
func combineSig(boundSig, epochSig uint64) uint64 {
	return SigFold(SigFold(term.HashSeed, boundSig), epochSig)
}

// SigFold mixes one 64-bit component into a signature. Exposed so the
// executor can fold relation stats epochs with the same function the cache
// uses internally (FNV-1a's 64-bit prime; the inputs are counters, so the
// mixing only needs to separate small-integer sequences).
func SigFold(sig, v uint64) uint64 {
	return (sig ^ v) * 1099511628211
}

// stmtRefs collects the statically named relations a statement touches:
// every ground Match target in its steps plus the (ground) head. Computed
// relation names resolve per row and cannot be keyed; they simply do not
// contribute to the signature — their plans already use default estimates.
func stmtRefs(st *Stmt) []RelRef {
	refs := stepsRefs(nil, st.Steps)
	if st.Head.Ref.Name.IsGround() {
		refs = append(refs, st.Head.Ref)
	}
	return refs
}

// stepsRefs appends the ground Match targets of the steps' pipes to refs.
func stepsRefs(refs []RelRef, steps []Step) []RelRef {
	for k := range steps {
		for _, op := range steps[k].Pipe {
			if m, ok := op.(*Match); ok && m.Rel.Name.IsGround() {
				refs = append(refs, m.Rel)
			}
		}
	}
	return refs
}

// stepsBoundSig folds every step's bound-in register set into a signature:
// the bound-variable mask component of the cache key. It is fixed by
// compilation, so per compiled statement it never varies — it exists to
// make the key's validity conditions explicit and future-proof against
// plans being shared across statements.
func stepsBoundSig(steps []Step) uint64 {
	sig := term.HashSeed
	for k := range steps {
		sig = SigFold(sig, uint64(len(steps[k].BoundIn)))
		for _, r := range steps[k].BoundIn {
			sig = SigFold(sig, uint64(r))
		}
	}
	return sig
}
