package plan

import (
	"fmt"

	"gluenail/internal/ast"
	"gluenail/internal/modsys"
	"gluenail/internal/term"
)

// procCompiler compiles the statements of one procedure.
type procCompiler struct {
	c      *Compiler
	module string
	proc   *ast.Proc
	locals map[string]int // declared local name -> arity
	sites  int            // unchanged-site counter
}

func (pc *procCompiler) errf(pos ast.Pos, format string, args ...any) error {
	return &Error{Module: pc.module, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (pc *procCompiler) compileStmts(stmts []ast.Stmt) ([]Instr, error) {
	var out []Instr
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.Assign:
			s, err := pc.compileAssign(st)
			if err != nil {
				return nil, err
			}
			out = append(out, &ExecStmt{S: s})
		case *ast.Repeat:
			body, err := pc.compileStmts(st.Body)
			if err != nil {
				return nil, err
			}
			loop := &Loop{Body: body}
			for _, alt := range st.Until {
				cond, err := pc.compileCond(alt)
				if err != nil {
					return nil, err
				}
				loop.Until = append(loop.Until, cond)
			}
			out = append(out, loop)
		}
	}
	return out, nil
}

// predRefKind classifies what a subgoal's predicate resolved to.
type predRefKind uint8

const (
	refLocal predRefKind = iota
	refEDB
	refProc
	refNail
	refBuiltin
	refDynamic
	refFamilyGround
)

type predRef struct {
	kind      predRefKind
	name      string     // simple name (local/EDB/builtin)
	nameVal   term.Value // ground relation name (EDB; may be compound)
	arity     int
	procID    string // refProc
	bound     int
	free      int
	procFixed bool
	variadic  bool
	sym       *modsys.Symbol // refNail / refFamilyGround
}

// stmtCompiler compiles one assignment statement or condition.
type stmtCompiler struct {
	pc    *procCompiler
	regs  map[string]int
	nreg  int
	bound []bool
	steps []Step
	pipe  []PipeOp
}

func (pc *procCompiler) newStmtCompiler() *stmtCompiler {
	return &stmtCompiler{pc: pc, regs: map[string]int{}}
}

func (sc *stmtCompiler) reg(name string) int {
	if r, ok := sc.regs[name]; ok {
		return r
	}
	r := sc.nreg
	sc.regs[name] = r
	sc.nreg++
	sc.bound = append(sc.bound, false)
	return r
}

// pat compiles a source term to a pattern, allocating registers.
func (sc *stmtCompiler) pat(t ast.Term) term.Pattern {
	switch t := t.(type) {
	case *ast.Const:
		return term.Ground(t.Val)
	case *ast.VarTerm:
		if t.IsAnon() {
			return term.Wild()
		}
		return term.Var(sc.reg(t.Name))
	case *ast.CompTerm:
		args := make([]term.Pattern, len(t.Args))
		for i, a := range t.Args {
			args[i] = sc.pat(a)
		}
		return term.Comp(sc.pat(t.Fn), args...)
	}
	panic("plan: unknown term node")
}

// patBound reports whether every register in p is bound.
func (sc *stmtCompiler) patBound(p term.Pattern) bool {
	for _, r := range p.Regs(nil) {
		if !sc.bound[r] {
			return false
		}
	}
	return true
}

func hasWild(p term.Pattern) bool {
	switch p.Kind {
	case term.PatWild:
		return true
	case term.PatComp:
		if hasWild(*p.Fn) {
			return true
		}
		for _, a := range p.Args {
			if hasWild(a) {
				return true
			}
		}
	}
	return false
}

// unboundRegs returns the registers mentioned by the patterns that are not
// yet bound — the set a matching op will bind at run time.
func (sc *stmtCompiler) unboundRegs(ps ...term.Pattern) []int {
	var all []int
	for _, p := range ps {
		all = p.Regs(all)
	}
	var out []int
	for _, r := range all {
		if !sc.bound[r] {
			out = append(out, r)
		}
	}
	return out
}

// markBound marks every register of p as bound.
func (sc *stmtCompiler) markBound(p term.Pattern) {
	for _, r := range p.Regs(nil) {
		sc.bound[r] = true
	}
}

// firstUnbound names an unbound variable of p for error messages.
func (sc *stmtCompiler) firstUnbound(ps ...term.Pattern) string {
	for _, p := range ps {
		for _, r := range p.Regs(nil) {
			if !sc.bound[r] {
				for name, reg := range sc.regs {
					if reg == r {
						return name
					}
				}
			}
		}
	}
	return "?"
}

// astGroundValue converts a fully ground source term to a value.
func astGroundValue(t ast.Term) (term.Value, bool) {
	switch t := t.(type) {
	case *ast.Const:
		return t.Val, true
	case *ast.CompTerm:
		fn, ok := astGroundValue(t.Fn)
		if !ok {
			return term.Value{}, false
		}
		args := make([]term.Value, len(t.Args))
		for i, a := range t.Args {
			v, ok := astGroundValue(a)
			if !ok {
				return term.Value{}, false
			}
			args[i] = v
		}
		return term.NewCompound(fn, args...), true
	}
	return term.Value{}, false
}

// resolveAtom classifies a subgoal predicate following the scope rules:
// locals (and in) hide module predicates, which hide builtins.
func (pc *procCompiler) resolveAtom(atom *ast.AtomTerm) (*predRef, error) {
	arity := len(atom.Args)
	switch pred := atom.Pred.(type) {
	case *ast.Const:
		if pred.Val.Kind() != term.Str {
			return nil, pc.errf(atom.Pos, "predicate name must be an atom, not %v", pred.Val)
		}
		name := pred.Val.Str()
		if name == "return" {
			return nil, pc.errf(atom.Pos, "the return relation cannot be read")
		}
		if name == "in" {
			want := len(pc.proc.BoundParams)
			if arity != want {
				return nil, pc.errf(atom.Pos, "in has arity %d, used with %d", want, arity)
			}
			return &predRef{kind: refLocal, name: "in", nameVal: term.NewString("in"), arity: arity}, nil
		}
		if la, ok := pc.locals[name]; ok {
			if arity != la {
				return nil, pc.errf(atom.Pos, "local relation %s has arity %d, used with %d", name, la, arity)
			}
			return &predRef{kind: refLocal, name: name, nameVal: pred.Val, arity: arity}, nil
		}
		if sym := pc.c.lp.Resolve(pc.module, name); sym != nil {
			switch sym.Class {
			case modsys.ClassEDB:
				if arity != sym.Arity() {
					return nil, pc.errf(atom.Pos, "EDB relation %s has arity %d, used with %d", name, sym.Arity(), arity)
				}
				return &predRef{kind: refEDB, name: name, nameVal: pred.Val, arity: arity}, nil
			case modsys.ClassProc:
				if arity != sym.Arity() {
					return nil, pc.errf(atom.Pos, "procedure %s has arity %d, used with %d", name, sym.Arity(), arity)
				}
				return &predRef{
					kind: refProc, name: name, arity: arity,
					procID: sym.Module + "." + sym.Name,
					bound:  sym.Bound, free: sym.Free,
					procFixed: pc.c.fixed[sym.Module+"."+sym.Name],
				}, nil
			case modsys.ClassNail:
				if sym.NameArity > 0 {
					return nil, pc.errf(atom.Pos,
						"%s names a HiLog family %s(...)(...); apply it to %d name argument(s)",
						name, name, sym.NameArity)
				}
				if arity != sym.Arity() {
					return nil, pc.errf(atom.Pos, "NAIL! predicate %s has arity %d, used with %d", name, sym.Arity(), arity)
				}
				return &predRef{kind: refNail, name: name, arity: arity, sym: sym}, nil
			}
		}
		if pc.c.opts.Builtin != nil {
			if sig, ok := pc.c.opts.Builtin(name); ok {
				if !sig.Variadic && arity != sig.Bound+sig.Free {
					return nil, pc.errf(atom.Pos, "builtin %s has arity %d, used with %d", name, sig.Bound+sig.Free, arity)
				}
				return &predRef{
					kind: refBuiltin, name: name, arity: arity,
					bound: sig.Bound, free: sig.Free,
					procFixed: sig.Fixed, variadic: sig.Variadic,
				}, nil
			}
		}
		return nil, pc.errf(atom.Pos, "unknown predicate %s/%d", name, arity)
	case *ast.CompTerm:
		if nameVal, ok := astGroundValue(pred); ok {
			// Ground compound name: a NAIL! family instance or a stored
			// HiLog set relation.
			if fn, isConst := pred.Fn.(*ast.Const); isConst && fn.Val.Kind() == term.Str {
				if sym := pc.c.lp.Resolve(pc.module, fn.Val.Str()); sym != nil &&
					sym.Class == modsys.ClassNail && sym.NameArity == len(pred.Args) {
					if arity != sym.Free {
						return nil, pc.errf(atom.Pos, "family %s has value arity %d, used with %d",
							fn.Val.Str(), sym.Free, arity)
					}
					return &predRef{kind: refFamilyGround, arity: arity, sym: sym, nameVal: nameVal}, nil
				}
			}
			return &predRef{kind: refEDB, nameVal: nameVal, arity: arity}, nil
		}
		return &predRef{kind: refDynamic, arity: arity}, nil
	case *ast.VarTerm:
		if pred.IsAnon() {
			return nil, pc.errf(atom.Pos, "predicate position cannot be the anonymous variable")
		}
		return &predRef{kind: refDynamic, arity: arity}, nil
	}
	return nil, pc.errf(atom.Pos, "bad predicate term")
}

// dynCandidates computes the compile-time candidate set for a dynamic
// (HiLog) subgoal of the given arity: visible simple relation names plus
// NAIL! families with matching value arity (§5: "the scoping rules ... give
// the compiler a list of the predicates which a subgoal variable could
// possibly match").
func (pc *procCompiler) dynCandidates(arity int) (map[string]bool, []FamilyCand, error) {
	names := map[string]bool{}
	for name, la := range pc.locals {
		if la == arity {
			names[name] = true
		}
	}
	if len(pc.proc.BoundParams) == arity {
		names["in"] = true
	}
	var fams []FamilyCand
	lm := pc.c.lp.Modules[pc.module]
	for name, sym := range lm.Visible {
		switch sym.Class {
		case modsys.ClassEDB:
			if sym.Arity() == arity {
				names[name] = true
			}
		case modsys.ClassNail:
			if sym.NameArity > 0 && sym.Free == arity {
				procID, err := pc.c.requestFamily(sym)
				if err != nil {
					return nil, nil, err
				}
				fams = append(fams, FamilyCand{
					Base: sym.Name, NameArity: sym.NameArity, ProcID: procID,
				})
			}
		}
	}
	return names, fams, nil
}

// unit is one body goal with its resolution, awaiting scheduling.
type unit struct {
	goal  ast.Goal
	ref   *predRef // AtomGoal only
	fixed bool
	idx   int
}

func (pc *procCompiler) buildUnits(goals []ast.Goal) ([]unit, error) {
	units := make([]unit, 0, len(goals))
	for i, g := range goals {
		u := unit{goal: g, idx: i}
		switch g := g.(type) {
		case *ast.AtomGoal:
			ref, err := pc.resolveAtom(g.Atom)
			if err != nil {
				return nil, err
			}
			u.ref = ref
			if g.Update != ast.UpdateNone {
				u.fixed = true
				if g.Negated {
					return nil, pc.errf(g.Pos, "an update subgoal cannot be negated")
				}
				if ref.kind != refLocal && ref.kind != refEDB {
					return nil, pc.errf(g.Pos, "update subgoal must target a relation")
				}
			}
			if (ref.kind == refProc || ref.kind == refBuiltin) && ref.procFixed {
				u.fixed = true
			}
		case *ast.AggGoal, *ast.GroupByGoal, *ast.UnchangedGoal, *ast.EmptyGoal:
			u.fixed = true
		}
		units = append(units, u)
	}
	return units, nil
}

// exprAllBound reports whether all variables of e are bound.
func (sc *stmtCompiler) exprAllBound(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.TermExpr:
		return sc.patBound(sc.pat(e.T))
	case *ast.BinExpr:
		return sc.exprAllBound(e.L) && sc.exprAllBound(e.R)
	case *ast.NegExpr:
		return sc.exprAllBound(e.X)
	case *ast.CallExpr:
		for _, a := range e.Args {
			if !sc.exprAllBound(a) {
				return false
			}
		}
		return true
	}
	return false
}

// runnable reports whether the goal can execute under the current bindings,
// and a greedy priority score (higher runs earlier).
func (sc *stmtCompiler) runnable(u unit) (bool, int) {
	switch g := u.goal.(type) {
	case *ast.AtomGoal:
		predPat := sc.pat(g.Atom.Pred)
		args := make([]term.Pattern, len(g.Atom.Args))
		boundArgs := 0
		allBound := true
		for i, a := range g.Atom.Args {
			args[i] = sc.pat(a)
			if sc.patBound(args[i]) {
				boundArgs++
			} else {
				allBound = false
			}
		}
		switch u.ref.kind {
		case refLocal, refEDB:
			if g.Negated || g.Update != ast.UpdateNone {
				return allBound, 90
			}
			return true, 50 + boundArgs
		case refDynamic:
			if !sc.patBound(predPat) {
				return false, 0
			}
			if g.Negated {
				return allBound, 88
			}
			return true, 40 + boundArgs
		case refFamilyGround:
			if g.Negated {
				return allBound, 85
			}
			return true, 20 + boundArgs
		case refNail:
			if g.Negated {
				return allBound, 85
			}
			return true, 20 + boundArgs
		case refProc, refBuiltin:
			need := u.ref.bound
			if u.ref.variadic {
				need = len(args)
			}
			for i := 0; i < need; i++ {
				if !sc.patBound(args[i]) {
					return false, 0
				}
			}
			if g.Negated {
				return allBound, 85
			}
			return true, 20 + boundArgs
		}
		return false, 0
	case *ast.CmpGoal:
		lb, rb := sc.exprAllBound(g.L), sc.exprAllBound(g.R)
		if lb && rb {
			return true, 100
		}
		if g.Op != ast.CmpEq {
			return false, 0
		}
		// One side a (possibly compound) term with unbound variables, the
		// other side fully bound: a binding equation.
		if lt, ok := g.L.(*ast.TermExpr); ok && rb && lt != nil {
			return true, 95
		}
		if rt, ok := g.R.(*ast.TermExpr); ok && lb && rt != nil {
			return true, 95
		}
		return false, 0
	}
	// Fixed goals are validated at emission.
	return true, 0
}

func (sc *stmtCompiler) closeStep(b BarrierOp) {
	sc.steps = append(sc.steps, Step{Pipe: sc.pipe, Barrier: b})
	sc.pipe = nil
}

// emitGoals schedules and emits all goals: non-fixed goals are greedily
// reordered within the regions delimited by fixed subgoals (§3.1).
func (sc *stmtCompiler) emitGoals(units []unit) error {
	i := 0
	for i < len(units) {
		var region []unit
		for i < len(units) && !units[i].fixed {
			region = append(region, units[i])
			i++
		}
		if err := sc.emitRegion(region); err != nil {
			return err
		}
		if i < len(units) {
			if err := sc.emitUnit(units[i]); err != nil {
				return err
			}
			i++
		}
	}
	return nil
}

func (sc *stmtCompiler) emitRegion(region []unit) error {
	if sc.pc.c.opts.NoReorder {
		for _, u := range region {
			if ok, _ := sc.runnable(u); !ok {
				return sc.unboundErr(u)
			}
			if err := sc.emitUnit(u); err != nil {
				return err
			}
		}
		return nil
	}
	pending := append([]unit(nil), region...)
	for len(pending) > 0 {
		best, bestScore := -1, -1
		for j, u := range pending {
			ok, score := sc.runnable(u)
			if !ok {
				continue
			}
			if score > bestScore {
				best, bestScore = j, score
			}
		}
		if best < 0 {
			return sc.unboundErr(pending[0])
		}
		u := pending[best]
		pending = append(pending[:best], pending[best+1:]...)
		if err := sc.emitUnit(u); err != nil {
			return err
		}
	}
	return nil
}

func (sc *stmtCompiler) unboundErr(u unit) error {
	pos := u.goal.P()
	switch g := u.goal.(type) {
	case *ast.AtomGoal:
		var pats []term.Pattern
		pats = append(pats, sc.pat(g.Atom.Pred))
		for _, a := range g.Atom.Args {
			pats = append(pats, sc.pat(a))
		}
		return sc.pc.errf(pos, "variable %s is not bound where it is needed", sc.firstUnbound(pats...))
	}
	return sc.pc.errf(pos, "subgoal has unbound variables where bindings are required")
}

func (sc *stmtCompiler) emitUnit(u unit) error {
	switch g := u.goal.(type) {
	case *ast.AtomGoal:
		return sc.emitAtom(g, u.ref)
	case *ast.CmpGoal:
		return sc.emitCmp(g)
	case *ast.AggGoal:
		arg, err := sc.expr(&ast.TermExpr{T: g.Arg})
		if err != nil {
			return err
		}
		if !sc.exprAllBound(&ast.TermExpr{T: g.Arg}) {
			return sc.pc.errf(g.Pos, "aggregate argument has unbound variables")
		}
		dest := sc.reg(g.Var)
		destBound := sc.bound[dest]
		sc.closeStep(&Aggregate{Op: g.Op, Arg: arg, Dest: dest, DestBound: destBound})
		sc.bound[dest] = true
		return nil
	case *ast.GroupByGoal:
		regs := make([]int, len(g.Vars))
		for i, v := range g.Vars {
			r := sc.reg(v)
			if !sc.bound[r] {
				return sc.pc.errf(g.Pos, "group_by variable %s is not bound", v)
			}
			regs[i] = r
		}
		sc.closeStep(&GroupBy{Regs: regs})
		return nil
	case *ast.UnchangedGoal:
		ref, err := sc.staticRel(g.Atom)
		if err != nil {
			return err
		}
		site := sc.pc.sites
		sc.pc.sites++
		sc.closeStep(&UnchangedChk{Site: site, Rel: ref})
		return nil
	case *ast.EmptyGoal:
		ref, err := sc.staticRel(g.Atom)
		if err != nil {
			return err
		}
		sc.closeStep(&EmptyChk{Rel: ref})
		return nil
	}
	return sc.pc.errf(u.goal.P(), "unsupported goal")
}

// staticRel resolves unchanged/empty arguments: a statically named
// relation (local or EDB).
func (sc *stmtCompiler) staticRel(atom *ast.AtomTerm) (RelRef, error) {
	ref, err := sc.pc.resolveAtom(atom)
	if err != nil {
		return RelRef{}, err
	}
	switch ref.kind {
	case refLocal:
		return RelRef{Space: SpaceLocal, Name: term.Ground(term.NewString(ref.name)), Arity: ref.arity}, nil
	case refEDB:
		return RelRef{Space: SpaceEDB, Name: term.Ground(ref.nameVal), Arity: ref.arity}, nil
	}
	return RelRef{}, sc.pc.errf(atom.Pos, "unchanged/empty requires a relation, not a %s",
		kindNoun(ref.kind))
}

func kindNoun(k predRefKind) string {
	switch k {
	case refProc:
		return "procedure"
	case refNail, refFamilyGround:
		return "NAIL! predicate"
	case refBuiltin:
		return "builtin"
	case refDynamic:
		return "dynamic predicate"
	}
	return "relation"
}

func (sc *stmtCompiler) argPatterns(atom *ast.AtomTerm) ([]term.Pattern, uint32) {
	args := make([]term.Pattern, len(atom.Args))
	var mask uint32
	for i, a := range atom.Args {
		args[i] = sc.pat(a)
		if i < 32 && args[i].Kind != term.PatWild && sc.patBound(args[i]) {
			mask |= 1 << uint(i)
		}
	}
	return args, mask
}

func (sc *stmtCompiler) emitAtom(g *ast.AtomGoal, ref *predRef) error {
	args, mask := sc.argPatterns(g.Atom)
	markArgs := func() {
		for _, a := range args {
			sc.markBound(a)
		}
	}
	if g.Update != ast.UpdateNone {
		var rel RelRef
		switch ref.kind {
		case refLocal:
			rel = RelRef{Space: SpaceLocal, Name: term.Ground(term.NewString(ref.name)), Arity: ref.arity}
		case refEDB:
			rel = RelRef{Space: SpaceEDB, Name: term.Ground(ref.nameVal), Arity: ref.arity}
		}
		sc.closeStep(&Update{Kind: g.Update, Rel: rel, Args: args})
		return nil
	}
	switch ref.kind {
	case refLocal:
		sc.pipe = append(sc.pipe, &Match{
			Rel:  RelRef{Space: SpaceLocal, Name: term.Ground(term.NewString(ref.name)), Arity: ref.arity},
			Args: args, Negated: g.Negated, BoundMask: mask,
			Bind: sc.unboundRegs(args...),
		})
		if !g.Negated {
			markArgs()
		}
		return nil
	case refEDB:
		sc.pipe = append(sc.pipe, &Match{
			Rel:  RelRef{Space: SpaceEDB, Name: term.Ground(ref.nameVal), Arity: ref.arity},
			Args: args, Negated: g.Negated, BoundMask: mask,
			Bind: sc.unboundRegs(args...),
		})
		if !g.Negated {
			markArgs()
		}
		return nil
	case refDynamic:
		pred := sc.pat(g.Atom.Pred)
		names, fams, err := sc.pc.dynCandidates(len(args))
		if err != nil {
			return err
		}
		narrowed := !sc.pc.c.opts.NoNarrow
		if len(fams) > 0 {
			sc.closeStep(&DynCall{
				Pred: pred, Args: args, Negated: g.Negated,
				Families: fams, Narrowed: narrowed, Candidates: names,
				Bind: sc.unboundRegs(args...),
			})
		} else {
			sc.pipe = append(sc.pipe, &DynMatch{
				Pred: pred, Arity: len(args), Args: args, Negated: g.Negated,
				Narrowed: narrowed, Candidates: names, BoundMask: mask,
				Bind: sc.unboundRegs(args...),
			})
		}
		if !g.Negated {
			markArgs()
		}
		return nil
	case refFamilyGround:
		procID, err := sc.pc.c.requestFamily(ref.sym)
		if err != nil {
			return err
		}
		pred := g.Atom.Pred.(*ast.CompTerm)
		free := make([]term.Pattern, 0, ref.sym.NameArity+len(args))
		for _, na := range pred.Args {
			free = append(free, sc.pat(na))
		}
		free = append(free, args...)
		sc.closeStep(&Call{ProcID: procID, FreeArgs: free, Negated: g.Negated})
		if !g.Negated {
			for _, p := range free {
				sc.markBound(p)
			}
		}
		return nil
	case refNail:
		adorn := make([]byte, len(args))
		for i := range args {
			if g.Negated || (mask&(1<<uint(i))) != 0 {
				adorn[i] = 'b'
			} else {
				adorn[i] = 'f'
			}
		}
		procID, eff, err := sc.pc.c.requestNail(ref.sym, string(adorn))
		if err != nil {
			return err
		}
		var ba, fa []term.Pattern
		for i := range args {
			if eff[i] == 'b' {
				ba = append(ba, args[i])
			} else {
				fa = append(fa, args[i])
			}
		}
		sc.closeStep(&Call{ProcID: procID, BoundArgs: ba, FreeArgs: fa, Negated: g.Negated})
		if !g.Negated {
			markArgs()
		}
		return nil
	case refProc:
		sc.closeStep(&Call{
			ProcID:    ref.procID,
			BoundArgs: args[:ref.bound], FreeArgs: args[ref.bound:],
			Fixed: ref.procFixed, Negated: g.Negated,
		})
		if !g.Negated {
			markArgs()
		}
		return nil
	case refBuiltin:
		nb := ref.bound
		if ref.variadic {
			nb = len(args)
		}
		sc.closeStep(&Call{
			Builtin:   ref.name,
			BoundArgs: args[:nb], FreeArgs: args[nb:],
			Fixed: ref.procFixed, Negated: g.Negated,
		})
		if !g.Negated {
			markArgs()
		}
		return nil
	}
	return sc.pc.errf(g.Pos, "unresolvable subgoal")
}

func (sc *stmtCompiler) emitCmp(g *ast.CmpGoal) error {
	lb, rb := sc.exprAllBound(g.L), sc.exprAllBound(g.R)
	if lb && rb {
		l, err := sc.expr(g.L)
		if err != nil {
			return err
		}
		r, err := sc.expr(g.R)
		if err != nil {
			return err
		}
		sc.pipe = append(sc.pipe, &Compare{Op: g.Op, L: l, R: r})
		return nil
	}
	if g.Op != ast.CmpEq {
		return sc.pc.errf(g.Pos, "comparison has unbound variables")
	}
	bindSide := func(pat ast.Term, boundSide ast.Expr) error {
		e, err := sc.expr(boundSide)
		if err != nil {
			return err
		}
		p := sc.pat(pat)
		if hasWild(p) {
			return sc.pc.errf(g.Pos, "anonymous variable in a binding equation")
		}
		sc.pipe = append(sc.pipe, &MatchBind{Pat: p, E: e, Bind: sc.unboundRegs(p)})
		sc.markBound(p)
		return nil
	}
	if lt, ok := g.L.(*ast.TermExpr); ok && rb {
		return bindSide(lt.T, g.R)
	}
	if rt, ok := g.R.(*ast.TermExpr); ok && lb {
		return bindSide(rt.T, g.L)
	}
	return sc.pc.errf(g.Pos, "equation has unbound variables on both sides")
}

func (sc *stmtCompiler) expr(e ast.Expr) (Expr, error) {
	switch e := e.(type) {
	case *ast.TermExpr:
		switch t := e.T.(type) {
		case *ast.Const:
			return ConstE{V: t.Val}, nil
		case *ast.VarTerm:
			if t.IsAnon() {
				return nil, sc.pc.errf(t.Pos, "anonymous variable in expression")
			}
			return RegE{Reg: sc.reg(t.Name)}, nil
		case *ast.CompTerm:
			return PatE{P: sc.pat(t)}, nil
		}
	case *ast.BinExpr:
		l, err := sc.expr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := sc.expr(e.R)
		if err != nil {
			return nil, err
		}
		return BinE{Op: e.Op, L: l, R: r}, nil
	case *ast.NegExpr:
		x, err := sc.expr(e.X)
		if err != nil {
			return nil, err
		}
		return BinE{Op: ast.OpSub, L: ConstE{V: term.NewInt(0)}, R: x}, nil
	case *ast.CallExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			x, err := sc.expr(a)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return CallE{Fn: e.Fn, Args: args}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression")
}

// compileAssign compiles one assignment statement.
func (pc *procCompiler) compileAssign(a *ast.Assign) (*Stmt, error) {
	sc := pc.newStmtCompiler()
	goals := a.Body
	if a.IsReturn {
		// The implicit in subgoal (§4) uses the head's bound arguments.
		if a.HeadBound != len(pc.proc.BoundParams) ||
			len(a.Head.Args)-a.HeadBound != len(pc.proc.FreeParams) {
			return nil, pc.errf(a.Pos,
				"return(%d:%d) does not match procedure arity (%d:%d)",
				a.HeadBound, len(a.Head.Args)-a.HeadBound,
				len(pc.proc.BoundParams), len(pc.proc.FreeParams))
		}
		inGoal := &ast.AtomGoal{
			Atom: &ast.AtomTerm{
				Pred: constStr("in"),
				Args: a.Head.Args[:a.HeadBound],
				Pos:  a.Pos,
			},
			Pos: a.Pos,
		}
		goals = append([]ast.Goal{inGoal}, goals...)
	}
	units, err := pc.buildUnits(goals)
	if err != nil {
		return nil, err
	}
	if err := sc.emitGoals(units); err != nil {
		return nil, err
	}
	head, keyMask, err := sc.compileHead(a)
	if err != nil {
		return nil, err
	}
	sc.closeStep(nil) // final segment feeds the head
	st := &Stmt{
		Label: ast.FormatAssign(a),
		NRegs: sc.nreg,
		Steps: sc.steps,
		Head:  head,
		Op:    a.Op,
	}
	st.KeyMask = keyMask
	finalize(st, !pc.c.opts.NoDedup)
	return st, nil
}

// compileCond compiles an until-condition conjunction.
func (pc *procCompiler) compileCond(goals []ast.Goal) (*Cond, error) {
	sc := pc.newStmtCompiler()
	units, err := pc.buildUnits(goals)
	if err != nil {
		return nil, err
	}
	if err := sc.emitGoals(units); err != nil {
		return nil, err
	}
	sc.closeStep(nil)
	st := &Stmt{NRegs: sc.nreg, Steps: sc.steps}
	finalize(st, !pc.c.opts.NoDedup)
	return &Cond{NRegs: st.NRegs, Steps: st.Steps}, nil
}

func (sc *stmtCompiler) compileHead(a *ast.Assign) (HeadSpec, uint32, error) {
	pc := sc.pc
	var head HeadSpec
	args := make([]term.Pattern, len(a.Head.Args))
	for i, t := range a.Head.Args {
		args[i] = sc.pat(t)
		if hasWild(args[i]) {
			return head, 0, pc.errf(a.Pos, "anonymous variable in assignment head")
		}
		if !sc.patBound(args[i]) {
			return head, 0, pc.errf(a.Pos, "head variable %s is not bound by the body",
				sc.firstUnbound(args[i]))
		}
	}
	head.Args = args
	if a.IsReturn {
		head.IsReturn = true
		head.Ref = RelRef{
			Space: SpaceLocal,
			Name:  term.Ground(term.NewString("return")),
			Arity: len(args),
		}
		return head, 0, nil
	}
	// Resolve the target relation.
	switch pred := a.Head.Pred.(type) {
	case *ast.Const:
		if pred.Val.Kind() != term.Str {
			return head, 0, pc.errf(a.Pos, "head predicate must be an atom")
		}
		name := pred.Val.Str()
		if name == "in" {
			return head, 0, pc.errf(a.Pos, "cannot assign to the in relation")
		}
		if la, ok := pc.locals[name]; ok {
			if la != len(args) {
				return head, 0, pc.errf(a.Pos, "local relation %s has arity %d, assigned %d", name, la, len(args))
			}
			head.Ref = RelRef{Space: SpaceLocal, Name: term.Ground(pred.Val), Arity: len(args)}
		} else if sym := pc.c.lp.Resolve(pc.module, name); sym != nil {
			if sym.Class != modsys.ClassEDB {
				return head, 0, pc.errf(a.Pos, "cannot assign to %s %s", sym.Class, name)
			}
			if sym.Arity() != len(args) {
				return head, 0, pc.errf(a.Pos, "EDB relation %s has arity %d, assigned %d", name, sym.Arity(), len(args))
			}
			head.Ref = RelRef{Space: SpaceEDB, Name: term.Ground(pred.Val), Arity: len(args)}
		} else {
			return head, 0, pc.errf(a.Pos, "cannot assign to unknown relation %s/%d", name, len(args))
		}
	case *ast.CompTerm:
		// HiLog head: the relation name is computed per row and lives in
		// the EDB space (set relations, §5).
		namePat := sc.pat(pred)
		if hasWild(namePat) {
			return head, 0, pc.errf(a.Pos, "anonymous variable in head relation name")
		}
		if !sc.patBound(namePat) {
			return head, 0, pc.errf(a.Pos, "head relation name variable %s is not bound",
				sc.firstUnbound(namePat))
		}
		head.Ref = RelRef{Space: SpaceEDB, Name: namePat, Arity: len(args)}
	default:
		return head, 0, pc.errf(a.Pos, "head predicate cannot be a variable")
	}
	// Modify key mask.
	var keyMask uint32
	if a.Op == ast.OpModify {
		if len(args) > 32 {
			return head, 0, pc.errf(a.Pos, "modify assignment limited to 32 columns")
		}
		for _, kv := range a.Key {
			r, ok := sc.regs[kv]
			if !ok {
				return head, 0, pc.errf(a.Pos, "key variable %s does not occur in the statement", kv)
			}
			found := false
			for i, ap := range args {
				if ap.Kind == term.PatVar && ap.Reg == r {
					keyMask |= 1 << uint(i)
					found = true
				}
			}
			if !found {
				return head, 0, pc.errf(a.Pos, "key variable %s is not a head argument", kv)
			}
		}
	}
	return head, keyMask, nil
}

// finalize computes per-step liveness, aggregate presence, and duplicate
// elimination legality: duplicates may be removed at a pipeline break only
// when no aggregator runs at or after the break (§3.3 duplicates are
// meaningful to aggregation; §9 early elimination is otherwise a win).
func finalize(st *Stmt, dedup bool) {
	n := len(st.Steps)
	aggAtOrAfter := make([]bool, n+1)
	for k := n - 1; k >= 0; k-- {
		aggAtOrAfter[k] = aggAtOrAfter[k+1]
		if _, ok := st.Steps[k].Barrier.(*Aggregate); ok {
			aggAtOrAfter[k] = true
		}
	}
	st.HasAgg = aggAtOrAfter[0]
	// Group-by registers stay live everywhere.
	groupRegs := map[int]bool{}
	for _, s := range st.Steps {
		if gb, ok := s.Barrier.(*GroupBy); ok {
			for _, r := range gb.Regs {
				groupRegs[r] = true
			}
		}
	}
	// Liveness from the end: head first.
	live := map[int]bool{}
	for r := range groupRegs {
		live[r] = true
	}
	addPat := func(p term.Pattern) {
		for _, r := range p.Regs(nil) {
			live[r] = true
		}
	}
	var addExpr func(e Expr)
	addExpr = func(e Expr) {
		switch e := e.(type) {
		case RegE:
			live[e.Reg] = true
		case PatE:
			addPat(e.P)
		case BinE:
			addExpr(e.L)
			addExpr(e.R)
		case CallE:
			for _, a := range e.Args {
				addExpr(a)
			}
		}
	}
	addPat(st.Head.Ref.Name)
	for _, p := range st.Head.Args {
		addPat(p)
	}
	liveSet := func() []int {
		out := make([]int, 0, len(live))
		for r := range live {
			out = append(out, r)
		}
		sortInts(out)
		return out
	}
	addBarrier := func(b BarrierOp) {
		switch b := b.(type) {
		case *Call:
			for _, p := range b.BoundArgs {
				addPat(p)
			}
			for _, p := range b.FreeArgs {
				addPat(p)
			}
		case *DynCall:
			addPat(b.Pred)
			for _, p := range b.Args {
				addPat(p)
			}
		case *Aggregate:
			addExpr(b.Arg)
			live[b.Dest] = true
		case *GroupBy:
			for _, r := range b.Regs {
				live[r] = true
			}
		case *Update:
			addPat(b.Rel.Name)
			for _, p := range b.Args {
				addPat(p)
			}
		case *UnchangedChk:
			addPat(b.Rel.Name)
		case *EmptyChk:
			addPat(b.Rel.Name)
		}
	}
	addPipe := func(ops []PipeOp) {
		for _, op := range ops {
			switch op := op.(type) {
			case *Match:
				addPat(op.Rel.Name)
				for _, p := range op.Args {
					addPat(p)
				}
			case *DynMatch:
				addPat(op.Pred)
				for _, p := range op.Args {
					addPat(p)
				}
			case *Compare:
				addExpr(op.L)
				addExpr(op.R)
			case *MatchBind:
				addPat(op.Pat)
				addExpr(op.E)
			}
		}
	}
	for k := n - 1; k >= 0; k-- {
		if st.Steps[k].Barrier != nil {
			addBarrier(st.Steps[k].Barrier)
		}
		st.Steps[k].LiveRegs = liveSet()
		st.Steps[k].Dedup = dedup && !aggAtOrAfter[k]
		st.Steps[k].Hints = lookupHints(st.Steps[k].Pipe)
		addPipe(st.Steps[k].Pipe)
	}
	// Forward pass: record the registers bound at entry to each step, so
	// the physical planner can re-derive bound masks after reordering a
	// step's pipe. Negated ops have empty Bind lists (all their registers
	// are bound already), so unioning Bind across ops is exact.
	bound := map[int]bool{}
	for k := 0; k < n; k++ {
		st.Steps[k].BoundIn = make([]int, 0, len(bound))
		for r := range bound {
			st.Steps[k].BoundIn = append(st.Steps[k].BoundIn, r)
		}
		sortInts(st.Steps[k].BoundIn)
		for _, op := range st.Steps[k].Pipe {
			switch op := op.(type) {
			case *Match:
				for _, r := range op.Bind {
					bound[r] = true
				}
			case *DynMatch:
				for _, r := range op.Bind {
					bound[r] = true
				}
			case *MatchBind:
				for _, r := range op.Bind {
					bound[r] = true
				}
			}
		}
		switch b := st.Steps[k].Barrier.(type) {
		case *Call:
			for _, p := range b.FreeArgs {
				for _, r := range p.Regs(nil) {
					bound[r] = true
				}
			}
		case *DynCall:
			for _, r := range b.Bind {
				bound[r] = true
			}
		case *Aggregate:
			bound[b.Dest] = true
		}
	}
}

// lookupHints collects the bound-column masks of the statically named
// positive matches in a segment, so the executor can pre-build decided
// indexes before fanning the segment out to parallel workers. Negated
// matches probe with the same masks and are included too.
func lookupHints(ops []PipeOp) []LookupHint {
	var hints []LookupHint
	for i, op := range ops {
		if m, ok := op.(*Match); ok && m.Rel.Name.IsGround() && m.BoundMask != 0 {
			hints = append(hints, LookupHint{Op: i, Mask: m.BoundMask})
		}
	}
	return hints
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
