// Physical planning: the compile-time plan (Stmt/Step) is a *logical* plan —
// it fixes segment boundaries, barriers, and register allocation, but the
// order of the streaming ops inside a segment was chosen by static greedy
// scores that cannot tell a 10-tuple relation from a 10M-tuple one (§3.1
// makes subgoal ordering the compiler's central optimisation; LDL++ and
// later bottom-up Datalog systems showed the ordering should consult data).
// A Planner re-derives, at statement-prepare time, a PhysPlan whose pipe ops
// are cost-ordered using live relation statistics (row counts and
// per-column distinct estimates from the storage layer) plus observed
// per-op selectivities fed back by the executor. Re-planning happens on
// every statement execution, so orders adapt between repeat iterations as
// semi-naive deltas shrink.
//
// Reordering is restricted to the ops *within* one segment: barriers (and
// therefore segment boundaries) are fixed subgoals whose order is
// semantically significant (§3.1), and register allocation depends on them.
// Any order of the remaining ops in which each op is runnable — its
// required registers bound — produces the same multiset of supplementary
// rows, so results are identical regardless of the chosen order.
package plan

import (
	"math"

	"gluenail/internal/ast"
	"gluenail/internal/term"
)

// RelEstimate is a live statistics snapshot for one relation.
type RelEstimate struct {
	Rows int
	// Distinct holds per-column distinct-value estimates (may be shorter
	// than the arity; missing columns use the default).
	Distinct []int
	// ScanCost/LookupCost are per-row access-cost factors relative to the
	// main-memory engine (0 means the 1.0 baseline): a disk-resident
	// relation reports higher factors, so the greedy orderer weighs a
	// disk scan heavier than an equal-cardinality in-memory one. Engine
	// names the backing engine for EXPLAIN ("" = main memory, omitted).
	ScanCost, LookupCost float64
	Engine               string
}

// StatsSource supplies live relation statistics at statement-prepare time.
// The executor's frame implements it over the EDB store and frame locals;
// ok=false (relation missing, or its name is computed per row) makes the
// planner fall back to conservative defaults.
type StatsSource interface {
	RelStats(ref RelRef) (RelEstimate, bool)
}

// Cost-model defaults for relations without statistics, and the static
// selectivities of non-relation ops.
const (
	defaultRows     = 64.0
	defaultDistinct = 8.0
	// dynFanout is the assumed per-row fanout of a HiLog dispatch whose
	// relation is only known per row.
	dynFanout = 4.0
	selCmpEq  = 0.1
	selCmpOrd = 0.5
	selCmpNe  = 0.9
)

// PhysOp is one streaming operator of a physical plan: a clone of a logical
// pipe op whose BoundMask and Bind sets were re-derived for its physical
// position, annotated with the cost model's estimates.
type PhysOp struct {
	// Op is the executable op. It is a clone — the shared logical plan is
	// never mutated, so concurrent statements (and the NoReorder baseline)
	// keep seeing the compile-time masks.
	Op PipeOp
	// LogIdx is the op's index in the logical Step.Pipe; per-op runtime
	// counters are recorded under it so feedback survives reordering.
	LogIdx int
	// Access names the chosen access path: scan, probe, anti, dyn, filter,
	// or bind.
	Access string
	// EstIn/EstOut estimate the supplementary rows entering and leaving the
	// op; Sel = EstOut/EstIn is the estimated per-row fanout (selectivity).
	EstIn, EstOut float64
	Sel           float64
	// FromProfile marks a Sel taken from observed executor feedback rather
	// than the static cost model.
	FromProfile bool
	// Cost is the score the greedy orderer compares: EstOut times the
	// relation's per-backend access-cost factor for the chosen path. With
	// the main-memory engine every factor is 1.0, so Cost == EstOut and
	// the ordering is exactly the min-cardinality one.
	Cost float64
	// Store names the backing engine of the accessed relation ("" = main
	// memory); EXPLAIN surfaces it with the access path.
	Store string
}

// PhysStep is one physical segment: the logical step's barrier and
// materialization decisions with a cost-ordered pipe and hints re-derived
// for the physical order.
type PhysStep struct {
	Step *Step // logical step: barrier, dedup, live registers
	Ops  []PhysOp
	// Hints is the LookupHint list recomputed over Ops — positions and
	// masks reflect the physical order, not the compile-time one.
	Hints         []LookupHint
	EstIn, EstOut float64
}

// PhysPlan is the physical plan of one statement (or until-condition).
type PhysPlan struct {
	Stmt  *Stmt // nil for conditions
	Steps []PhysStep
}

// OpProfile is the executor's per-op feedback: tuples that entered and left
// the op, and the bound mask it ran with. Indexed by logical op position so
// it stays attached to the op across re-orderings.
type OpProfile struct {
	In, Out int64
	Mask    uint32
}

// StepProfile carries one segment's op counters plus the time spent
// pre-building indexes for its parallel fan-out.
type StepProfile struct {
	Ops     []OpProfile
	BuildNs int64
}

// StmtProfile accumulates a statement's execution feedback across runs
// (all executions since the last reset).
type StmtProfile struct {
	Steps []StepProfile
	Execs int64
}

// NewStmtProfile allocates a profile shaped for the statement's steps.
func NewStmtProfile(steps []Step) *StmtProfile {
	p := &StmtProfile{Steps: make([]StepProfile, len(steps))}
	for k := range steps {
		p.Steps[k].Ops = make([]OpProfile, len(steps[k].Pipe))
	}
	return p
}

// Planner derives physical plans from logical steps and live statistics.
type Planner struct {
	// Stats supplies live relation statistics; nil uses defaults only.
	Stats StatsSource
	// Reorder enables cost-based reordering of each segment's pipe; false
	// keeps the compiled order but still annotates estimates (the logical
	// orderings — textual or greedy — stay selectable as ablations).
	Reorder bool
}

// PlanStmt builds the physical plan for a statement, consulting prof (may
// be nil) for observed per-op selectivities.
func (pl *Planner) PlanStmt(st *Stmt, prof *StmtProfile) *PhysPlan {
	return &PhysPlan{Stmt: st, Steps: pl.PlanSteps(st.Steps, prof)}
}

// PlanSteps builds physical segments for a step list (statement bodies and
// until-conditions share the shape).
func (pl *Planner) PlanSteps(steps []Step, prof *StmtProfile) []PhysStep {
	out := make([]PhysStep, len(steps))
	est := 1.0 // sup_0 = {ε}, §3.2
	for k := range steps {
		var ops []OpProfile
		if prof != nil && k < len(prof.Steps) {
			ops = prof.Steps[k].Ops
		}
		out[k] = pl.planStep(&steps[k], est, ops)
		est = barrierEst(steps[k].Barrier, out[k].EstOut)
	}
	return out
}

// planStep orders one segment's pipe. Greedy: among the runnable pending
// ops, pick the one with the smallest estimated output cardinality; ties
// break toward the logical order. The loop cannot stall — the earliest
// pending op in logical order always has its compile-time predecessors
// executed (everything before it is no longer pending), so the registers it
// needs are bound.
func (pl *Planner) planStep(s *Step, estIn float64, prof []OpProfile) PhysStep {
	bound := make(map[int]bool, len(s.BoundIn))
	for _, r := range s.BoundIn {
		bound[r] = true
	}
	ps := PhysStep{Step: s, Ops: make([]PhysOp, 0, len(s.Pipe)), EstIn: estIn}
	pending := make([]int, len(s.Pipe))
	for i := range pending {
		pending[i] = i
	}
	est := estIn
	for len(pending) > 0 {
		best := -1
		var bestOp PhysOp
		for pi, li := range pending {
			po, ok := pl.analyzeOp(s.Pipe[li], li, bound, est, prof)
			if !ok {
				continue
			}
			if best < 0 || po.Cost < bestOp.Cost {
				best, bestOp = pi, po
			}
			if !pl.Reorder {
				break // keep logical order; pending is ascending
			}
		}
		if best < 0 {
			// Unreachable for well-formed plans; fall back to logical order
			// without binding requirements rather than dropping ops.
			li := pending[0]
			bestOp, _ = pl.analyzeOp(s.Pipe[li], li, bound, est, prof)
			bestOp.Op = s.Pipe[li]
			best = 0
		}
		pending = append(pending[:best], pending[best+1:]...)
		markOpBound(bestOp.Op, bound)
		est = bestOp.EstOut
		ps.Ops = append(ps.Ops, bestOp)
	}
	ps.EstOut = est
	if len(s.Pipe) == 0 {
		ps.EstOut = estIn
	}
	ps.Hints = physHints(ps.Ops)
	return ps
}

// physHints recomputes the executor's index pre-build hints over the
// physical op order: statically named matches with a non-zero bound mask
// (negated ones probe with the same masks and are included too).
func physHints(ops []PhysOp) []LookupHint {
	var hints []LookupHint
	for i, po := range ops {
		if m, ok := po.Op.(*Match); ok && m.Rel.Name.IsGround() && m.BoundMask != 0 {
			hints = append(hints, LookupHint{Op: i, Mask: m.BoundMask})
		}
	}
	return hints
}

// analyzeOp checks whether op can run under the bound-register set and, if
// so, returns its physical clone with re-derived mask/bind and estimates.
func (pl *Planner) analyzeOp(op PipeOp, li int, bound map[int]bool, est float64,
	prof []OpProfile) (PhysOp, bool) {
	po := PhysOp{LogIdx: li, EstIn: est}
	costFactor := 1.0
	switch op := op.(type) {
	case *Match:
		mask, bind := rebindArgs(op.Args, bound)
		if op.Negated && len(bind) > 0 {
			return po, false // negation needs every argument bound
		}
		re, haveStats := pl.relStats(op.Rel)
		fanout := matchFanout(re, haveStats, op.Args, mask)
		po.Store = re.Engine
		if op.Negated {
			po.Access = "anti"
			po.Sel = 1 / (1 + fanout)
			costFactor = re.LookupCost
		} else if mask != 0 {
			po.Access = "probe"
			po.Sel = fanout
			costFactor = re.LookupCost
		} else {
			po.Access = "scan"
			po.Sel = fanout
			costFactor = re.ScanCost
		}
		c := *op
		c.BoundMask, c.Bind = mask, bind
		po.Op = &c
	case *DynMatch:
		if !patBoundIn(op.Pred, bound) {
			return po, false // dispatch name must be computable
		}
		mask, bind := rebindArgs(op.Args, bound)
		if op.Negated {
			if len(bind) > 0 {
				return po, false
			}
			po.Sel = 1 / (1 + dynFanout)
		} else {
			po.Sel = dynFanout
		}
		po.Access = "dyn"
		c := *op
		c.BoundMask, c.Bind = mask, bind
		po.Op = &c
	case *Compare:
		if !exprBoundIn(op.L, bound) || !exprBoundIn(op.R, bound) {
			return po, false
		}
		po.Access = "filter"
		po.Sel = cmpSel(op)
		po.Op = op // order-insensitive; no clone needed
	case *MatchBind:
		if !exprBoundIn(op.E, bound) {
			return po, false
		}
		po.Access = "bind"
		po.Sel = 1
		c := *op
		c.Bind = unboundPatRegs(op.Pat, bound)
		po.Op = &c
	default:
		po.Op = op
		po.Sel = 1
	}
	// Observed feedback overrides the static estimate — but only when the
	// op would run with the same mask it was measured with, so a changed
	// access path falls back to the model instead of a stale ratio.
	if li < len(prof) && prof[li].In > 0 && prof[li].Mask == OpMask(po.Op) {
		po.Sel = float64(prof[li].Out) / float64(prof[li].In)
		po.FromProfile = true
	}
	po.EstOut = est * po.Sel
	if costFactor <= 0 {
		costFactor = 1
	}
	po.Cost = po.EstOut * costFactor
	return po, true
}

// matchFanout estimates tuples produced per input row: R / Π d_i over the
// bound columns, i.e. the uniform-distribution join fanout.
func matchFanout(re RelEstimate, ok bool, args []term.Pattern, mask uint32) float64 {
	rows := float64(re.Rows)
	if !ok {
		rows = defaultRows
	}
	sel := 1.0
	for i := range args {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		d := defaultDistinct
		if ok && i < len(re.Distinct) && re.Distinct[i] > 0 {
			d = float64(re.Distinct[i])
		}
		sel *= math.Max(d, 1)
	}
	return rows / sel
}

// relStats resolves live statistics for a statically named relation.
func (pl *Planner) relStats(ref RelRef) (RelEstimate, bool) {
	if pl.Stats == nil || !ref.Name.IsGround() {
		return RelEstimate{}, false
	}
	return pl.Stats.RelStats(ref)
}

// barrierEst propagates the cardinality estimate across a pipeline break.
// Deliberately crude: barriers are fixed, so the estimate only labels the
// next segment's input for EXPLAIN and the next pipe's within-segment
// ordering is unaffected by its absolute scale.
func barrierEst(b BarrierOp, est float64) float64 {
	switch b.(type) {
	case *Aggregate:
		// One row per group; without group statistics, assume heavy
		// collapse but never below one row.
		return math.Max(1, est/8)
	case nil:
		return est
	}
	return est
}

// cmpSel is the static selectivity of a comparison filter.
func cmpSel(c *Compare) float64 {
	switch c.Op {
	case ast.CmpEq:
		return selCmpEq
	case ast.CmpNe:
		return selCmpNe
	}
	return selCmpOrd
}

// OpMask returns the bound mask a physical op runs with (0 for ops without
// one); profile feedback is keyed to it so a changed access path falls back
// to the static model instead of a stale observed ratio.
func OpMask(op PipeOp) uint32 {
	switch op := op.(type) {
	case *Match:
		return op.BoundMask
	case *DynMatch:
		return op.BoundMask
	}
	return 0
}

// rebindArgs re-derives BoundMask and Bind for a match's argument patterns
// under the bound set, with exactly the compile-time rules (argPatterns and
// unboundRegs in stmt.go): mask bit i is set iff the argument is not a
// wildcard and all its registers are bound; Bind lists the unbound
// registers in traversal order (duplicates preserved — unbinding twice is
// harmless, and the executor zeroes exactly this set).
func rebindArgs(args []term.Pattern, bound map[int]bool) (uint32, []int) {
	var mask uint32
	for i := range args {
		if i < 32 && args[i].Kind != term.PatWild && patBoundIn(args[i], bound) {
			mask |= 1 << uint(i)
		}
	}
	var all []int
	for _, a := range args {
		all = a.Regs(all)
	}
	var bind []int
	for _, r := range all {
		if !bound[r] {
			bind = append(bind, r)
		}
	}
	return mask, bind
}

// patBoundIn reports whether every register of p is in the bound set.
func patBoundIn(p term.Pattern, bound map[int]bool) bool {
	for _, r := range p.Regs(nil) {
		if !bound[r] {
			return false
		}
	}
	return true
}

// unboundPatRegs lists the registers of p not yet bound, in traversal order.
func unboundPatRegs(p term.Pattern, bound map[int]bool) []int {
	var out []int
	for _, r := range p.Regs(nil) {
		if !bound[r] {
			out = append(out, r)
		}
	}
	return out
}

// exprBoundIn reports whether every register read by e is bound.
func exprBoundIn(e Expr, bound map[int]bool) bool {
	switch e := e.(type) {
	case RegE:
		return bound[e.Reg]
	case PatE:
		return patBoundIn(e.P, bound)
	case BinE:
		return exprBoundIn(e.L, bound) && exprBoundIn(e.R, bound)
	case CallE:
		for _, a := range e.Args {
			if !exprBoundIn(a, bound) {
				return false
			}
		}
		return true
	}
	return true // ConstE
}

// markOpBound adds the registers op binds at run time to the bound set:
// positive matches bind every argument register, MatchBind binds its
// pattern; negated ops and comparisons bind nothing (mirroring markBound in
// the statement compiler).
func markOpBound(op PipeOp, bound map[int]bool) {
	switch op := op.(type) {
	case *Match:
		if op.Negated {
			return
		}
		for _, a := range op.Args {
			for _, r := range a.Regs(nil) {
				bound[r] = true
			}
		}
	case *DynMatch:
		if op.Negated {
			return
		}
		for _, a := range op.Args {
			for _, r := range a.Regs(nil) {
				bound[r] = true
			}
		}
	case *MatchBind:
		for _, r := range op.Pat.Regs(nil) {
			bound[r] = true
		}
	}
}
