// Package plan compiles resolved Glue statements into an executable plan:
// the supplementary-relation pipeline of §3.2 broken into segments at fixed
// subgoals (§9). The compiler performs the paper's "do as much as possible
// at compile time" work: predicate-class resolution, binding analysis,
// reordering of non-fixed subgoals, HiLog dispatch narrowing, and placement
// of duplicate elimination at pipeline breaks.
package plan

import (
	"gluenail/internal/ast"
	"gluenail/internal/term"
)

// Space says which relation namespace a reference lives in.
type Space uint8

const (
	// SpaceEDB is the persistent store (and dynamically created HiLog set
	// relations).
	SpaceEDB Space = iota
	// SpaceLocal is the current procedure frame: declared locals plus the
	// special in/return relations.
	SpaceLocal
)

// RelRef names a relation at plan level. Name is a pattern because HiLog
// heads and subgoals may compute the relation name per row
// (tas(ID)(TA) := ...).
type RelRef struct {
	Space Space
	Name  term.Pattern
	Arity int
}

// Program is a compiled program: procedures by ID. Procedure IDs are
// "module.name" for user procs and "module.pred@adornment" for generated
// NAIL! procs.
type Program struct {
	Procs map[string]*Proc
}

// Proc is one compiled procedure.
type Proc struct {
	ID     string
	Module string
	Name   string
	Bound  int
	Free   int
	Fixed  bool
	Locals []LocalDecl
	Body   []Instr
}

// LocalDecl declares a frame-local relation.
type LocalDecl struct {
	Name  string
	Arity int
}

// Instr is a procedure-body instruction.
type Instr interface{ instr() }

// ExecStmt runs one compiled assignment statement.
type ExecStmt struct{ S *Stmt }

func (*ExecStmt) instr() {}

// Loop is repeat ... until: run Body, evaluate the Until disjunction, exit
// when any alternative holds.
type Loop struct {
	Body  []Instr
	Until []*Cond
}

func (*Loop) instr() {}

// Cond is a compiled until-condition conjunction; it is true when at least
// one supplementary row survives all steps.
type Cond struct {
	NRegs int
	Steps []Step
}

// Stmt is a compiled assignment statement.
type Stmt struct {
	// Label is the statement's source rendering, for tracing.
	Label string
	NRegs int
	Steps []Step
	Head  HeadSpec
	Op    ast.AssignOp
	// KeyMask selects the head columns forming the +=[key] update key.
	KeyMask uint32
	// HasAgg reports whether any step aggregates; used by executors to
	// decide whether duplicate elimination is legal anywhere.
	HasAgg bool
}

// HeadSpec describes the assignment target and the tuples built per row.
type HeadSpec struct {
	Ref      RelRef
	Args     []term.Pattern
	IsReturn bool
}

// Step is one pipeline segment: streaming ops, then an optional
// materialization barrier. After the Pipe ops run, rows are materialized;
// if Dedup is set (legal only when no aggregator follows, §3.3) duplicates
// over LiveRegs are removed; then the Barrier op consumes the whole set.
// The final step of a statement has a nil Barrier — its rows feed the head.
type Step struct {
	Pipe     []PipeOp
	Barrier  BarrierOp
	Dedup    bool
	LiveRegs []int
	// Hints lists, for every statically named positive Match in Pipe, the
	// bound-column mask its index lookups will use. The executor uses them
	// to pre-build decided indexes at the boundary of a parallel section,
	// before worker goroutines fan out over the segment.
	Hints []LookupHint
	// BoundIn lists the registers already bound when the step's first pipe
	// op runs (bound by earlier steps of the statement). The physical
	// planner seeds its binding analysis from it when re-deriving masks
	// after a cost-based reorder of Pipe.
	BoundIn []int
}

// LookupHint pairs a pipe-op position with the bound-column mask that op
// probes its relation with (known at compile time from binding analysis).
type LookupHint struct {
	Op   int // index into Step.Pipe
	Mask uint32
}

// PipeOp is a streaming operator: given one row, it yields zero or more
// extended rows without needing the whole supplementary relation.
type PipeOp interface{ pipeOp() }

// Match scans or index-probes a relation, matching argument patterns.
type Match struct {
	Rel     RelRef
	Args    []term.Pattern
	Negated bool
	// BoundMask marks argument positions known to be fully bound when the
	// op runs; the executor builds a lookup key from them (index access).
	BoundMask uint32
	// Bind lists the registers this op binds (statically known from the
	// binding analysis); the executor restores them by zeroing.
	Bind []int
}

func (*Match) pipeOp() {}

// DynMatch is a HiLog dispatch over stored relations: the predicate name is
// computed per row and resolved against the frame locals and the EDB store.
type DynMatch struct {
	Pred    term.Pattern
	Arity   int
	Args    []term.Pattern
	Negated bool
	// Narrowed enables the compile-time candidate narrowing of §5/§9:
	// names outside the visible candidate set are rejected without
	// searching every class. Candidates lists the visible simple relation
	// names; compound names fall through to store lookup.
	Narrowed   bool
	Candidates map[string]bool
	BoundMask  uint32
	Bind       []int
}

func (*DynMatch) pipeOp() {}

// Compare filters rows by a comparison between two bound expressions.
type Compare struct {
	Op   ast.CmpOp
	L, R Expr
}

func (*Compare) pipeOp() {}

// MatchBind evaluates E and matches the result against Pat, binding any
// unbound registers in Pat (the X = expr and f(X,Y) = Z forms).
type MatchBind struct {
	Pat  term.Pattern
	E    Expr
	Bind []int
}

func (*MatchBind) pipeOp() {}

// BarrierOp consumes the materialized supplementary relation and produces
// the next one. Every barrier is a pipeline break (§9).
type BarrierOp interface{ barrierOp() }

// Call invokes a Glue procedure, generated NAIL! procedure, builtin, or
// registered foreign procedure: once on all the distinct bindings of its
// input arguments (§4), then joins the results back.
type Call struct {
	ProcID    string // compiled procedure ID, or ""
	Builtin   string // builtin/FFI name when ProcID == ""
	BoundArgs []term.Pattern
	FreeArgs  []term.Pattern
	Fixed     bool
	// Negated keeps only the rows whose input tuple yields no results; all
	// arguments must be bound.
	Negated bool
}

func (*Call) barrierOp() {}

// DynCall is HiLog dispatch whose candidates include NAIL! families: per
// distinct predicate-name value it either calls the family procedure or
// falls back to stored-relation lookup.
type DynCall struct {
	Pred       term.Pattern
	Args       []term.Pattern
	Negated    bool
	Families   []FamilyCand
	Narrowed   bool
	Candidates map[string]bool
	Bind       []int
}

func (*DynCall) barrierOp() {}

// FamilyCand is a candidate NAIL! family for dynamic dispatch.
type FamilyCand struct {
	Base      string // functor of the compound predicate name
	NameArity int
	ProcID    string // all-free generated procedure
}

// Aggregate computes Op over Arg for every row of the supplementary
// relation (per group when group_by is in effect) and binds or filters
// against register Dest (§3.3).
type Aggregate struct {
	Op        string
	Arg       Expr
	Dest      int
	DestBound bool
}

func (*Aggregate) barrierOp() {}

// GroupBy extends the grouping key for subsequent aggregators (§3.3.1);
// cascading group_by goals accumulate registers.
type GroupBy struct {
	Regs []int
}

func (*GroupBy) barrierOp() {}

// Update applies an in-body EDB update subgoal (++p / --p) set-at-a-time;
// rows pass through unchanged.
type Update struct {
	Kind ast.UpdateKind
	Rel  RelRef
	Args []term.Pattern
}

func (*Update) barrierOp() {}

// UnchangedChk implements unchanged(P): true when P's version equals the
// version recorded the last time this site executed; always false on first
// execution (§4). Site indexes frame-local memory.
type UnchangedChk struct {
	Site int
	Rel  RelRef
}

func (*UnchangedChk) barrierOp() {}

// EmptyChk implements empty(p(...)): rows pass iff the relation holds no
// tuples.
type EmptyChk struct {
	Rel RelRef
}

func (*EmptyChk) barrierOp() {}

// Expr is a compiled expression.
type Expr interface{ exprNode() }

// ConstE is a constant.
type ConstE struct{ V term.Value }

func (ConstE) exprNode() {}

// RegE reads a register.
type RegE struct{ Reg int }

func (RegE) exprNode() {}

// PatE builds a ground value from a pattern whose registers are all bound.
type PatE struct{ P term.Pattern }

func (PatE) exprNode() {}

// BinE is binary arithmetic.
type BinE struct {
	Op   ast.BinOp
	L, R Expr
}

func (BinE) exprNode() {}

// CallE is a builtin expression function (strcat, strlen, substr, abs).
type CallE struct {
	Fn   string
	Args []Expr
}

func (CallE) exprNode() {}

// BuiltinSig describes a builtin or foreign procedure to the compiler.
type BuiltinSig struct {
	Bound int
	Free  int
	// Variadic accepts any number of bound arguments (write/writeln).
	Variadic bool
	Fixed    bool
}

// Options configures compilation; the zero value enables every
// optimization the paper describes.
type Options struct {
	// Builtin reports the signature of a builtin/foreign procedure.
	Builtin func(name string) (BuiltinSig, bool)
	// NoReorder disables non-fixed subgoal reordering (ablation).
	NoReorder bool
	// NoDedup disables duplicate elimination at pipeline breaks (E3).
	NoDedup bool
	// NoMagic disables magic-set rewriting of bound NAIL! calls (E9).
	NoMagic bool
	// Naive replaces semi-naive (uniondiff) recursion with naive
	// re-derivation in generated NAIL! procedures (E5).
	Naive bool
	// NoNarrow disables compile-time HiLog dispatch narrowing (E6).
	NoNarrow bool
}
