package plan

import (
	"fmt"
	"strings"
)

// Rendering of physical plans for EXPLAIN and EXPLAIN ANALYZE: the logical
// rendering of print.go extended with the planner's chosen order, access
// paths, and cardinality estimates, plus the executor's observed per-op
// actuals when a profile is present.

// PhysFormatter renders procedures with their physical plans.
type PhysFormatter struct {
	// Plan supplies the physical segments for a statement body or an
	// until-condition (st is nil for conditions).
	Plan func(steps []Step, st *Stmt) []PhysStep
	// Profile supplies observed actuals for EXPLAIN ANALYZE; nil (or a nil
	// result) renders estimates only.
	Profile func(st *Stmt) *StmtProfile
}

// Proc renders one procedure with physical plans.
func (f *PhysFormatter) Proc(p *Proc) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "proc %s (%d:%d)", p.ID, p.Bound, p.Free)
	if p.Fixed {
		sb.WriteString(" fixed")
	}
	sb.WriteByte('\n')
	if len(p.Locals) > 0 {
		sb.WriteString("  locals:")
		for _, l := range p.Locals {
			fmt.Fprintf(&sb, " %s/%d", l.Name, l.Arity)
		}
		sb.WriteByte('\n')
	}
	f.writeInstrs(&sb, p.Body, 1)
	return sb.String()
}

func (f *PhysFormatter) writeInstrs(sb *strings.Builder, instrs []Instr, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, in := range instrs {
		switch in := in.(type) {
		case *ExecStmt:
			st := in.S
			sb.WriteString(ind)
			fmt.Fprintf(sb, "stmt %s %s", headText(st.Head), st.Op)
			if st.KeyMask != 0 {
				fmt.Fprintf(sb, " key=%b", st.KeyMask)
			}
			fmt.Fprintf(sb, " (%d regs", st.NRegs)
			if st.HasAgg {
				sb.WriteString(", aggregates")
			}
			sb.WriteString(")\n")
			var prof *StmtProfile
			if f.Profile != nil {
				prof = f.Profile(st)
			}
			f.writePhysSteps(sb, f.Plan(st.Steps, st), prof, depth+1)
		case *Loop:
			sb.WriteString(ind)
			sb.WriteString("loop {\n")
			f.writeInstrs(sb, in.Body, depth+1)
			sb.WriteString(ind)
			sb.WriteString("} until any of:\n")
			for _, c := range in.Until {
				sb.WriteString(ind)
				fmt.Fprintf(sb, "  cond (%d regs):\n", c.NRegs)
				f.writePhysSteps(sb, f.Plan(c.Steps, nil), nil, depth+2)
			}
		}
	}
}

func (f *PhysFormatter) writePhysSteps(sb *strings.Builder, steps []PhysStep,
	prof *StmtProfile, depth int) {
	ind := strings.Repeat("  ", depth)
	for k, s := range steps {
		sb.WriteString(ind)
		fmt.Fprintf(sb, "segment %d", k)
		if s.Step.Dedup {
			fmt.Fprintf(sb, " dedup(live=%v)", s.Step.LiveRegs)
		}
		fmt.Fprintf(sb, " rows=%s", estText(s.EstIn))
		if prof != nil && k < len(prof.Steps) && prof.Steps[k].BuildNs > 0 {
			fmt.Fprintf(sb, " index-build=%.3fms", float64(prof.Steps[k].BuildNs)/1e6)
		}
		sb.WriteByte('\n')
		for _, po := range s.Ops {
			sb.WriteString(ind)
			sb.WriteString("  ")
			sb.WriteString(pipeOpText(po.Op))
			fmt.Fprintf(sb, " [%s est=%s", po.Access, estText(po.EstOut))
			if po.FromProfile {
				sb.WriteString("*")
			}
			if po.Store != "" {
				fmt.Fprintf(sb, " store=%s", po.Store)
			}
			if prof != nil && k < len(prof.Steps) && po.LogIdx < len(prof.Steps[k].Ops) {
				op := prof.Steps[k].Ops[po.LogIdx]
				fmt.Fprintf(sb, " act_in=%d act_out=%d", op.In, op.Out)
			}
			sb.WriteString("]\n")
		}
		if s.Step.Barrier != nil {
			sb.WriteString(ind)
			sb.WriteString("  break: ")
			sb.WriteString(barrierText(s.Step.Barrier))
			sb.WriteByte('\n')
		}
	}
}

// estText renders a cardinality estimate compactly and stably: whole
// numbers without a fraction, everything else with one decimal.
func estText(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// CalledProcs returns the IDs of the procedures transitively called from
// rootID (Call barriers and DynCall family candidates), excluding the root
// itself, in sorted order — the set EXPLAIN renders alongside the root so
// recursive NAIL! plans are visible.
func CalledProcs(prog *Program, rootID string) []string {
	seen := map[string]bool{rootID: true}
	var visit func(id string)
	var visitInstrs func(instrs []Instr)
	visitSteps := func(steps []Step) {
		for _, s := range steps {
			switch b := s.Barrier.(type) {
			case *Call:
				if b.ProcID != "" && !seen[b.ProcID] {
					seen[b.ProcID] = true
					visit(b.ProcID)
				}
			case *DynCall:
				for _, fc := range b.Families {
					if !seen[fc.ProcID] {
						seen[fc.ProcID] = true
						visit(fc.ProcID)
					}
				}
			}
		}
	}
	visitInstrs = func(instrs []Instr) {
		for _, in := range instrs {
			switch in := in.(type) {
			case *ExecStmt:
				visitSteps(in.S.Steps)
			case *Loop:
				visitInstrs(in.Body)
				for _, c := range in.Until {
					visitSteps(c.Steps)
				}
			}
		}
	}
	visit = func(id string) {
		if p, ok := prog.Procs[id]; ok {
			visitInstrs(p.Body)
		}
	}
	visit(rootID)
	delete(seen, rootID)
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
