package plan

import (
	"strings"
	"testing"
)

func TestFormatProcShowsStructure(t *testing.T) {
	c := compileSrc(t, `
edb a(X,Y), big(X,Y,V), out(X);
proc helper(X:Y)
  return(X:Y) := a(X,Y).
end
proc go(:)
rels tmp(X);
  tmp(X) := a(X,Y) & helper(Y, Z) & Z != X.
  repeat
    tmp(X) += a(X,_) & ++out(X).
  until { unchanged(tmp(_)) | empty(a(_,_)) };
  big(X, Y, M) := a(X,Y) & group_by(X) & M = count(Y).
  return(:) := tmp(_).
end
`, Options{})
	text := FormatProc(c.Program().Procs["main.go"])
	for _, want := range []string{
		"proc main.go (0:0) fixed",
		"locals: tmp/1",
		"match edb:a/2",
		"call main.helper",
		"compare",
		"loop {",
		"} until any of:",
		"unchanged site=",
		"empty edb:a/2",
		"update insert edb:out/1",
		"group-by",
		"aggregate",
		"dedup",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatProc missing %q:\n%s", want, text)
		}
	}
}

func TestFormatProcDynamicOps(t *testing.T) {
	c := compileSrc(t, `
edb holder(S), s1(X), out(X), attends(N, ID);
students(ID)(N) :- attends(N, ID).
proc go(:)
  out(X) := holder(S) & S(X).
  return(:) := out(_).
end
`, Options{})
	text := FormatProc(c.Program().Procs["main.go"])
	if !strings.Contains(text, "dyn-call") {
		t.Errorf("missing dyn-call:\n%s", text)
	}
	fam := FormatProc(c.Program().Procs["main.students@ff"])
	if !strings.Contains(fam, "proc main.students@ff (0:2)") {
		t.Errorf("family proc header wrong:\n%s", fam)
	}
}

func TestFormatExprAndHeadKinds(t *testing.T) {
	c := compileSrc(t, `
edb src(X), tgt(K, V);
proc go(:)
  tgt(X, Y) +=[X] src(X) & Y = strcat('a', 'b') & wrap(X)(Y) = wrap(X)(Y).
  return(:) := src(_).
end
`, Options{})
	text := FormatProc(c.Program().Procs["main.go"])
	for _, want := range []string{"key=", "strcat("} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
}
