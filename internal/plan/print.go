package plan

import (
	"fmt"
	"strings"

	"gluenail/internal/ast"
	"gluenail/internal/term"
)

// Formatting of compiled plans, for the -plan flag of cmd/gluenail and for
// tests: it shows the pipeline segments, break placement, duplicate
// elimination decisions, and index masks the compiler chose — the
// compile-time work §9 of the paper describes.

// FormatProc renders a compiled procedure.
func FormatProc(p *Proc) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "proc %s (%d:%d)", p.ID, p.Bound, p.Free)
	if p.Fixed {
		sb.WriteString(" fixed")
	}
	sb.WriteByte('\n')
	if len(p.Locals) > 0 {
		sb.WriteString("  locals:")
		for _, l := range p.Locals {
			fmt.Fprintf(&sb, " %s/%d", l.Name, l.Arity)
		}
		sb.WriteByte('\n')
	}
	writeInstrs(&sb, p.Body, 1)
	return sb.String()
}

func writeInstrs(sb *strings.Builder, instrs []Instr, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, in := range instrs {
		switch in := in.(type) {
		case *ExecStmt:
			writeStmtPlan(sb, in.S, depth)
		case *Loop:
			sb.WriteString(ind)
			sb.WriteString("loop {\n")
			writeInstrs(sb, in.Body, depth+1)
			sb.WriteString(ind)
			sb.WriteString("} until any of:\n")
			for _, c := range in.Until {
				sb.WriteString(ind)
				fmt.Fprintf(sb, "  cond (%d regs):\n", c.NRegs)
				writeSteps(sb, c.Steps, depth+2)
			}
		}
	}
}

func writeStmtPlan(sb *strings.Builder, st *Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	sb.WriteString(ind)
	fmt.Fprintf(sb, "stmt %s %s", headText(st.Head), st.Op)
	if st.KeyMask != 0 {
		fmt.Fprintf(sb, " key=%b", st.KeyMask)
	}
	fmt.Fprintf(sb, " (%d regs", st.NRegs)
	if st.HasAgg {
		sb.WriteString(", aggregates")
	}
	sb.WriteString(")\n")
	writeSteps(sb, st.Steps, depth+1)
}

func writeSteps(sb *strings.Builder, steps []Step, depth int) {
	ind := strings.Repeat("  ", depth)
	for i, s := range steps {
		sb.WriteString(ind)
		fmt.Fprintf(sb, "segment %d", i)
		if s.Dedup {
			fmt.Fprintf(sb, " dedup(live=%v)", s.LiveRegs)
		}
		sb.WriteByte('\n')
		for _, op := range s.Pipe {
			sb.WriteString(ind)
			sb.WriteString("  ")
			sb.WriteString(pipeOpText(op))
			sb.WriteByte('\n')
		}
		if s.Barrier != nil {
			sb.WriteString(ind)
			sb.WriteString("  break: ")
			sb.WriteString(barrierText(s.Barrier))
			sb.WriteByte('\n')
		}
	}
}

func headText(h HeadSpec) string {
	if h.IsReturn {
		return "return" + patsText(h.Args)
	}
	return h.Ref.Name.String() + patsText(h.Args)
}

func relText(r RelRef) string {
	space := "edb"
	if r.Space == SpaceLocal {
		space = "local"
	}
	return fmt.Sprintf("%s:%s/%d", space, r.Name, r.Arity)
}

func patsText(ps []term.Pattern) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func pipeOpText(op PipeOp) string {
	switch op := op.(type) {
	case *Match:
		neg := ""
		if op.Negated {
			neg = "not-"
		}
		return fmt.Sprintf("%smatch %s%s mask=%b bind=%v",
			neg, relText(op.Rel), patsText(op.Args), op.BoundMask, op.Bind)
	case *DynMatch:
		mode := "narrowed"
		if !op.Narrowed {
			mode = "runtime"
		}
		neg := ""
		if op.Negated {
			neg = "not-"
		}
		return fmt.Sprintf("%sdyn-match %s%s %s candidates=%d",
			neg, op.Pred, patsText(op.Args), mode, len(op.Candidates))
	case *Compare:
		return fmt.Sprintf("compare %s %s %s", exprText(op.L), op.Op, exprText(op.R))
	case *MatchBind:
		return fmt.Sprintf("bind %s = %s", op.Pat, exprText(op.E))
	}
	return fmt.Sprintf("%T", op)
}

func barrierText(b BarrierOp) string {
	switch b := b.(type) {
	case *Call:
		target := b.ProcID
		if target == "" {
			target = "builtin " + b.Builtin
		}
		neg := ""
		if b.Negated {
			neg = "not-"
		}
		fixed := ""
		if b.Fixed {
			fixed = " fixed"
		}
		return fmt.Sprintf("%scall %s%s->%s%s",
			neg, target, patsText(b.BoundArgs), patsText(b.FreeArgs), fixed)
	case *DynCall:
		return fmt.Sprintf("dyn-call %s%s families=%d", b.Pred, patsText(b.Args), len(b.Families))
	case *Aggregate:
		mode := "bind"
		if b.DestBound {
			mode = "select"
		}
		return fmt.Sprintf("aggregate $%d %s %s(%s)", b.Dest, mode, b.Op, exprText(b.Arg))
	case *GroupBy:
		return fmt.Sprintf("group-by %v", b.Regs)
	case *Update:
		verb := "insert"
		if b.Kind == ast.UpdateDelete {
			verb = "delete"
		}
		return fmt.Sprintf("update %s %s%s", verb, relText(b.Rel), patsText(b.Args))
	case *UnchangedChk:
		return fmt.Sprintf("unchanged site=%d %s", b.Site, relText(b.Rel))
	case *EmptyChk:
		return fmt.Sprintf("empty %s", relText(b.Rel))
	}
	return fmt.Sprintf("%T", b)
}

func exprText(e Expr) string {
	switch e := e.(type) {
	case ConstE:
		return e.V.String()
	case RegE:
		return fmt.Sprintf("$%d", e.Reg)
	case PatE:
		return e.P.String()
	case BinE:
		return fmt.Sprintf("(%s %s %s)", exprText(e.L), e.Op, exprText(e.R))
	case CallE:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = exprText(a)
		}
		return e.Fn + "(" + strings.Join(parts, ",") + ")"
	}
	return fmt.Sprintf("%T", e)
}
