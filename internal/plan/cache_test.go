package plan

import (
	"testing"

	"gluenail/internal/term"
)

// cacheStmt builds a minimal statement reading relation r/2, with one
// comparison op, for cache-key tests.
func cacheStmt() *Stmt {
	match := &Match{
		Rel:  RelRef{Space: SpaceEDB, Name: term.Ground(term.Intern("r")), Arity: 2},
		Args: []term.Pattern{term.Var(0), term.Var(1)},
		Bind: []int{0, 1},
	}
	cmp := &Compare{L: RegE{Reg: 0}, R: ConstE{V: term.NewInt(1)}}
	return &Stmt{
		Label: "t",
		NRegs: 2,
		Steps: []Step{{Pipe: []PipeOp{match, cmp}}},
		Head: HeadSpec{
			Ref:  RelRef{Space: SpaceEDB, Name: term.Ground(term.Intern("out")), Arity: 1},
			Args: []term.Pattern{term.Var(0)},
		},
	}
}

// cachePlan builds a physical plan for the statement with the given
// estimated selectivity on its comparison op.
func cachePlan(st *Stmt, cmpSel float64) *PhysPlan {
	step := &st.Steps[0]
	return &PhysPlan{
		Stmt: st,
		Steps: []PhysStep{{
			Step: step,
			Ops: []PhysOp{
				{Op: step.Pipe[0], LogIdx: 0, Sel: 1.0},
				{Op: step.Pipe[1], LogIdx: 1, Sel: cmpSel},
			},
		}},
	}
}

func TestPlanCacheHitMissEpoch(t *testing.T) {
	c := NewPlanCache()
	st := cacheStmt()
	e := c.StmtEntry(st)
	if len(e.Refs()) != 2 {
		t.Fatalf("entry refs = %d, want 2 (body match + head)", len(e.Refs()))
	}
	if got := c.Lookup(e, 42, nil); got != nil {
		t.Fatal("empty entry returned a plan")
	}
	pp := cachePlan(st, 0.5)
	c.Store(e, 42, pp)
	if got := c.Lookup(e, 42, nil); got != pp {
		t.Fatal("same epoch signature did not hit")
	}
	if got := c.Lookup(e, 43, nil); got != nil {
		t.Fatal("changed epoch signature still hit")
	}
	stats := c.Stats()
	if stats.Hits != 1 || stats.Misses != 2 || stats.Invalidations != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 0 invalidations", stats)
	}
}

func TestPlanCacheDriftInvalidation(t *testing.T) {
	c := NewPlanCache()
	st := cacheStmt()
	e := c.StmtEntry(st)
	pp := cachePlan(st, 0.5)
	c.Store(e, 7, pp)

	// Observed selectivity within driftFactor of the estimate: still a hit.
	prof := NewStmtProfile(st.Steps)
	op := &prof.Steps[0].Ops[1]
	op.In, op.Out, op.Mask = 1000, 400, 0
	if c.Lookup(e, 7, prof) == nil {
		t.Fatal("in-threshold selectivity was invalidated")
	}

	// Observed far below the estimate: invalidation, and the entry is gone.
	op.In, op.Out = 100000, 100
	if c.Lookup(e, 7, prof) != nil {
		t.Fatal("drifted selectivity still hit")
	}
	stats := c.Stats()
	if stats.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", stats.Invalidations)
	}
	if c.Lookup(e, 7, nil) != nil {
		t.Fatal("invalidated entry still holds a plan")
	}

	// Too few observed rows must never invalidate (noise guard).
	c.Store(e, 7, pp)
	op.In, op.Out = driftMinRows-1, 0
	if c.Lookup(e, 7, prof) == nil {
		t.Fatal("below-floor observation invalidated the plan")
	}
}

func TestPlanCacheReset(t *testing.T) {
	c := NewPlanCache()
	st := cacheStmt()
	e := c.StmtEntry(st)
	c.Store(e, 1, cachePlan(st, 0.5))
	c.Lookup(e, 1, nil)
	c.Reset()
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("stats after reset = %+v, want zero", s)
	}
	e2 := c.StmtEntry(st)
	if c.Lookup(e2, 1, nil) != nil {
		t.Fatal("reset cache still serves plans")
	}
}

// TestPlanCacheLookupNoAllocs pins the hot path's allocation contract: a
// cache hit — including its drift check against a live profile — must not
// allocate. The repeated-query fast path depends on it.
func TestPlanCacheLookupNoAllocs(t *testing.T) {
	c := NewPlanCache()
	st := cacheStmt()
	e := c.StmtEntry(st)
	c.Store(e, 9, cachePlan(st, 0.5))
	prof := NewStmtProfile(st.Steps)
	op := &prof.Steps[0].Ops[1]
	op.In, op.Out = 1000, 400
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Lookup(e, 9, prof) == nil {
			t.Fatal("lookup missed during alloc run")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f objects/op, want 0", allocs)
	}
}
