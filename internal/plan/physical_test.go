package plan

import (
	"strings"
	"testing"
)

// tableStats is a StatsSource backed by a fixed name→estimate table.
type tableStats map[string]RelEstimate

func (s tableStats) RelStats(ref RelRef) (RelEstimate, bool) {
	if !ref.Name.IsGround() {
		return RelEstimate{}, false
	}
	name, err := ref.Name.Build(nil)
	if err != nil {
		return RelEstimate{}, false
	}
	re, ok := s[name.String()]
	return re, ok
}

func physShape(ops []PhysOp) []string {
	pipe := make([]PipeOp, len(ops))
	for i, po := range ops {
		pipe[i] = po.Op
	}
	return pipeShape(pipe)
}

// TestStatsReorderPicksSmallRelationFirst checks the planner's core
// decision: with a tiny relation and a huge one in one segment, the
// cost-based order starts from the tiny one even though the compiler's
// static greedy order (which cannot see row counts) chose the other.
func TestStatsReorderPicksSmallRelationFirst(t *testing.T) {
	c := compileSrc(t, `
edb big(X,Y), tiny(Y,Z), r(X,Z);
proc go(:)
  r(X,Z) := big(X,Y) & tiny(Y,Z).
  return(:) := r(_,_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	stats := tableStats{
		"big":  {Rows: 100000, Distinct: []int{1000, 2}},
		"tiny": {Rows: 3, Distinct: []int{2, 3}},
	}
	pl := &Planner{Stats: stats, Reorder: true}
	ps := pl.PlanStmt(st, nil)
	got := physShape(ps.Steps[0].Ops)
	want := []string{"match:tiny", "match:big"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("stats order = %v, want %v", got, want)
	}
	// The big match now runs with column Y bound; its clone must carry the
	// re-derived mask while the shared logical op keeps the compile-time one.
	bigOp := ps.Steps[0].Ops[1].Op.(*Match)
	if bigOp.BoundMask == 0 {
		t.Error("reordered big match should probe on the bound join column")
	}
	for _, op := range st.Steps[0].Pipe {
		if m, ok := op.(*Match); ok && m == bigOp {
			t.Error("physical plan must clone ops, not mutate the logical plan")
		}
	}
	// Without Reorder the compiled order is kept but still annotated.
	pl2 := &Planner{Stats: stats, Reorder: false}
	ps2 := pl2.PlanStmt(st, nil)
	got2 := physShape(ps2.Steps[0].Ops)
	logical := pipeShape(st.Steps[0].Pipe)
	if strings.Join(got2, ",") != strings.Join(logical, ",") {
		t.Errorf("Reorder=false order = %v, want logical %v", got2, logical)
	}
}

// TestPhysHintsMatchFinalMasks is the regression test for the executor's
// index pre-build hints: after stats-driven reordering, every hint must
// point at a *Match op in the physical op list whose final BoundMask equals
// the hint's mask — a stale compile-time hint would pre-build the wrong
// index (or probe an unbuilt one) after the order changed.
func TestPhysHintsMatchFinalMasks(t *testing.T) {
	c := compileSrc(t, `
edb big(X,Y), tiny(Y,Z), other(X,W), r(X,Z);
proc go(:)
  r(W,Z) := big(X,Y) & tiny(Y,Z) & other(X,W) & !r(W,Z).
  return(:) := r(_,_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	for name, stats := range map[string]tableStats{
		"defaults": nil,
		"skewed": {
			"big":   {Rows: 50000, Distinct: []int{500, 2}},
			"tiny":  {Rows: 2, Distinct: []int{2, 2}},
			"other": {Rows: 400, Distinct: []int{400, 80}},
		},
		"inverse": {
			"big":   {Rows: 2, Distinct: []int{2, 2}},
			"tiny":  {Rows: 9000, Distinct: []int{10, 9000}},
			"other": {Rows: 5, Distinct: []int{5, 5}},
		},
	} {
		t.Run(name, func(t *testing.T) {
			pl := &Planner{Stats: stats, Reorder: true}
			for _, ps := range pl.PlanStmt(st, nil).Steps {
				checkHints(t, ps)
			}
		})
	}
}

func checkHints(t *testing.T, ps PhysStep) {
	t.Helper()
	want := map[int]uint32{}
	for i, po := range ps.Ops {
		if m, ok := po.Op.(*Match); ok && m.Rel.Name.IsGround() && m.BoundMask != 0 {
			want[i] = m.BoundMask
		}
	}
	got := map[int]uint32{}
	for _, h := range ps.Hints {
		m, ok := ps.Ops[h.Op].Op.(*Match)
		if !ok {
			t.Fatalf("hint %+v points at %T, want *Match", h, ps.Ops[h.Op].Op)
		}
		if m.BoundMask != h.Mask {
			t.Fatalf("hint mask %b != op's final BoundMask %b at physical pos %d",
				h.Mask, m.BoundMask, h.Op)
		}
		got[h.Op] = h.Mask
	}
	if len(got) != len(want) {
		t.Fatalf("hints cover %v, want every non-zero-mask match %v", got, want)
	}
}

// TestProfileFeedbackOverridesModel checks the executor-feedback loop: an
// observed selectivity replaces the static estimate when the op runs with
// the mask it was measured under, and is ignored after the mask changes.
func TestProfileFeedbackOverridesModel(t *testing.T) {
	c := compileSrc(t, `
edb a(X), b(X,Y), r(X,Y);
proc go(:)
  r(X,Y) := a(X) & b(X,Y).
  return(:) := r(_,_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	pl := &Planner{Reorder: true}
	base := pl.PlanStmt(st, nil)
	prof := NewStmtProfile(st.Steps)
	for k := range base.Steps {
		for _, po := range base.Steps[k].Ops {
			prof.Steps[k].Ops[po.LogIdx] = OpProfile{
				In: 10, Out: 70, Mask: OpMask(po.Op),
			}
		}
	}
	fed := pl.PlanStmt(st, prof)
	for _, po := range fed.Steps[0].Ops {
		if !po.FromProfile {
			t.Errorf("op %d: profile with matching mask not applied", po.LogIdx)
		}
		if po.Sel != 7 {
			t.Errorf("op %d: Sel = %v, want observed 7", po.LogIdx, po.Sel)
		}
	}
	// A mask mismatch (access path changed since measurement) must fall
	// back to the static model.
	for k := range prof.Steps {
		for i := range prof.Steps[k].Ops {
			prof.Steps[k].Ops[i].Mask ^= 1 << 20
		}
	}
	stale := pl.PlanStmt(st, prof)
	for _, po := range stale.Steps[0].Ops {
		if po.FromProfile {
			t.Errorf("op %d: stale profile (changed mask) applied", po.LogIdx)
		}
	}
}

// TestBoundInForwardPass checks the segment-entry bound sets the compiler
// records for the physical planner: each segment's BoundIn must hold
// exactly the registers bound by earlier segments.
func TestBoundInForwardPass(t *testing.T) {
	c := compileSrc(t, `
edb temp(T), out(M,T);
proc go(:)
  out(M,T) := temp(T) & M = max(T).
  return(:) := out(_,_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	if len(st.Steps) != 2 {
		t.Fatalf("want 2 segments, got %d", len(st.Steps))
	}
	if len(st.Steps[0].BoundIn) != 0 {
		t.Errorf("segment 0 BoundIn = %v, want empty (sup_0 = {ε})", st.Steps[0].BoundIn)
	}
	if len(st.Steps[1].BoundIn) == 0 {
		t.Error("segment 1 BoundIn empty; aggregate inputs should be bound")
	}
}

// TestPlannerOrderIndependentResults checks the safety property the
// reordering rests on (any runnable order yields the same rows) at the
// plan level: every op appears exactly once, and each op's required
// registers are bound by the ops placed before it.
func TestPlannerOrderIndependentResults(t *testing.T) {
	c := compileSrc(t, `
edb a(X), b(X,Y), c(Y,Z), r(X,Z);
proc go(:)
  r(X,Z) := a(X) & b(X,Y) & c(Y,Z) & X != Z & !r(X,Z).
  return(:) := r(_,_).
end
`, Options{})
	st := onlyStmt(t, c, "main.go")
	stats := tableStats{
		"a": {Rows: 7, Distinct: []int{7}},
		"b": {Rows: 900, Distinct: []int{30, 40}},
		"c": {Rows: 13, Distinct: []int{5, 13}},
	}
	pl := &Planner{Stats: stats, Reorder: true}
	ps := pl.PlanStmt(st, nil).Steps[0]
	if len(ps.Ops) != len(st.Steps[0].Pipe) {
		t.Fatalf("physical plan has %d ops, logical %d", len(ps.Ops), len(st.Steps[0].Pipe))
	}
	seen := map[int]bool{}
	bound := map[int]bool{}
	for _, r := range st.Steps[0].BoundIn {
		bound[r] = true
	}
	for _, po := range ps.Ops {
		if seen[po.LogIdx] {
			t.Fatalf("logical op %d placed twice", po.LogIdx)
		}
		seen[po.LogIdx] = true
		switch op := po.Op.(type) {
		case *Match:
			if op.Negated && len(op.Bind) > 0 {
				t.Fatalf("negated match placed with unbound registers %v", op.Bind)
			}
		case *Compare:
			if !exprBoundIn(op.L, bound) || !exprBoundIn(op.R, bound) {
				t.Fatal("comparison placed before its registers are bound")
			}
		}
		markOpBound(po.Op, bound)
	}
}
