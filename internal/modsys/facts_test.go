package modsys

import (
	"testing"

	"gluenail/internal/parser"
	"gluenail/internal/term"
)

func TestExtractEDBFacts(t *testing.T) {
	prog, err := parser.Parse(`
edb edge(X,Y), tagged(K);
edge(1,2).
edge(2,3).
tagged(f(a,1)).
derived(X) :- tagged(X).
edge(X, X).
`)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Modules[0]
	facts := ExtractEDBFacts(m)
	if len(facts) != 3 {
		t.Fatalf("facts = %d, want 3 (ground EDB-headed bodyless rules)", len(facts))
	}
	if facts[0].Name != "edge" || !facts[0].Tuple.Equal(term.Tuple{term.NewInt(1), term.NewInt(2)}) {
		t.Errorf("fact 0 = %+v", facts[0])
	}
	if facts[2].Name != "tagged" ||
		!facts[2].Tuple[0].Equal(term.Atom("f", term.NewString("a"), term.NewInt(1))) {
		t.Errorf("fact 2 = %+v", facts[2])
	}
	// Remaining rules: derived/1 and the non-ground edge(X,X).
	if len(m.Rules) != 2 {
		t.Fatalf("rules left = %d", len(m.Rules))
	}
	// The non-ground edge(X,X) stays a rule, so linking now fails with a
	// conflict — that is the user's error to fix, reported clearly.
	if _, err := Link(prog); err == nil {
		t.Error("non-ground EDB-headed rule should still conflict at link time")
	}
}

func TestExtractEDBFactsLeavesNailFacts(t *testing.T) {
	prog, err := parser.Parse(`
edb other(X);
base(1).
base(2).
`)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Modules[0]
	facts := ExtractEDBFacts(m)
	if len(facts) != 0 {
		t.Errorf("facts for undeclared relation should stay NAIL! fact rules: %v", facts)
	}
	if len(m.Rules) != 2 {
		t.Errorf("rules = %d", len(m.Rules))
	}
}
