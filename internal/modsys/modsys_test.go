package modsys

import (
	"strings"
	"testing"

	"gluenail/internal/parser"
)

func link(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lp, err := Link(prog)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return lp
}

func linkErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Link(prog)
	if err == nil {
		t.Fatalf("link should fail for:\n%s", src)
	}
	return err
}

func TestLinkBasicModule(t *testing.T) {
	lp := link(t, `
module m;
export tc(X:Y);
edb e(X,Y);
p(X,Y) :- e(X,Y).
proc tc(X:Y)
  return(X:Y) := e(X,Y).
end
end
`)
	m := lp.Modules["m"]
	if m == nil {
		t.Fatal("module m missing")
	}
	e := m.Defs["e"]
	if e == nil || e.Class != ClassEDB || e.Arity() != 2 {
		t.Errorf("e = %+v", e)
	}
	p := m.Defs["p"]
	if p == nil || p.Class != ClassNail || len(p.Rules) != 1 {
		t.Errorf("p = %+v", p)
	}
	tc := m.Defs["tc"]
	if tc == nil || tc.Class != ClassProc || tc.Bound != 1 || tc.Free != 1 {
		t.Errorf("tc = %+v", tc)
	}
	if !tc.Exported || e.Exported {
		t.Errorf("export flags: tc=%v e=%v", tc.Exported, e.Exported)
	}
	if lp.Resolve("m", "tc") != tc {
		t.Error("Resolve failed")
	}
	if lp.Resolve("m", "nothing") != nil || lp.Resolve("zzz", "tc") != nil {
		t.Error("Resolve should miss")
	}
}

func TestImportsResolve(t *testing.T) {
	lp := link(t, `
module base;
export reach(X:Y);
edb edge(X,Y);
proc reach(X:Y)
  return(X:Y) := edge(X,Y).
end
end
module client;
from base import reach(X:Y);
proc go(:Y)
  return(:Y) := reach(1,Y).
end
end
`)
	c := lp.Modules["client"]
	sym := c.Visible["reach"]
	if sym == nil || sym.Module != "base" || sym.Class != ClassProc {
		t.Errorf("imported reach = %+v", sym)
	}
	// edge is not visible in client.
	if c.Visible["edge"] != nil {
		t.Error("edge should not be visible in client")
	}
}

func TestHiLogFamilyShape(t *testing.T) {
	lp := link(t, `
module sets;
edb attends(N, ID);
students(ID)(N) :- attends(N, ID).
end
`)
	sym := lp.Modules["sets"].Defs["students"]
	if sym == nil || sym.Class != ClassNail {
		t.Fatalf("students = %+v", sym)
	}
	if sym.NameArity != 1 || sym.Free != 1 {
		t.Errorf("family shape: nameArity=%d free=%d", sym.NameArity, sym.Free)
	}
}

func TestRulesAccumulate(t *testing.T) {
	lp := link(t, `
module m;
edb e(X,Y);
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y) & e(Y,Z).
end
`)
	sym := lp.Modules["m"].Defs["tc"]
	if len(sym.Rules) != 2 {
		t.Errorf("rules = %d", len(sym.Rules))
	}
}

func TestImplicitMainAutoEDB(t *testing.T) {
	lp := link(t, `
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
proc build(:)
  marked(X) := edge(X,_).
  return(:) := marked(1).
end
`)
	m := lp.Modules["main"]
	edge := m.Defs["edge"]
	if edge == nil || edge.Class != ClassEDB || edge.Arity() != 2 {
		t.Errorf("auto-declared edge = %+v", edge)
	}
	marked := m.Defs["marked"]
	if marked == nil || marked.Class != ClassEDB || marked.Arity() != 1 {
		t.Errorf("auto-declared head relation marked = %+v", marked)
	}
	if !m.Defs["tc"].Exported {
		t.Error("implicit module should export everything")
	}
}

func TestKnownNamesNotAutoDeclared(t *testing.T) {
	prog, err := parser.Parse(`
proc hello(:)
  done() := greet('world').
  return(:) := done().
end
`)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LinkWith(prog, Options{Known: func(name string) bool { return name == "greet" }})
	if err != nil {
		t.Fatal(err)
	}
	m := lp.Modules["main"]
	if m.Defs["greet"] != nil {
		t.Error("known name greet should not be auto-declared")
	}
	if m.Defs["done"] == nil {
		t.Error("done should be auto-declared")
	}
}

func TestLocalsNotAutoDeclared(t *testing.T) {
	lp := link(t, `
proc p(:)
rels tmp(X);
  tmp(X) := base(X).
  return(:) := tmp(1).
end
`)
	m := lp.Modules["main"]
	if m.Defs["tmp"] != nil {
		t.Error("proc local should not be auto-declared as EDB")
	}
	if m.Defs["base"] == nil {
		t.Error("base should be auto-declared")
	}
}

func TestLinkErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantMsg string
	}{
		{`module m; edb p(X); end module m; edb q(X); end`, "duplicate module"},
		{`module m; edb p(X), p(X,Y); end`, "redefines"},
		{`module m; edb p(X); proc p(:) return(:) := q(1). end end`, "redefines"},
		{`module m; edb p(X); p(X) :- p(X). end`, "conflicts"},
		{`module m; export nothere(:X); end`, "not defined"},
		{`module m; export p(X,Y:); edb pp(X); proc p(X:Y) return(X:Y):= pp(X). end end`, "arity"},
		{`module m; from missing import p(:X); end`, "not found"},
		{`module a; edb p(X); end module b; from a import q(:X); end`, "does not define"},
		{`module a; edb p(X); end module b; from a import p(X); end`, "does not export"},
		{`module a; export p(X:); proc p(X:) return(X:):= x(X). end edb x(X); end
		  module b; from a import p(X,Y:); end`, "arity"},
		{`module a; export p(X:); proc p(X:) return(X:):= x(X). end edb x(X); end
		  module b; edb p(X); from a import p(X:); end`, "collides"},
		{`module m; tc(X) :- e(X). tc(X,Y) :- e(X) & e(Y). edb e(X); end`, "inconsistent"},
		{`module m; edb e(X); X(Y) :- e(Y). end`, "variable"},
	}
	for _, c := range cases {
		err := linkErr(t, c.src)
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("error %q should contain %q", err, c.wantMsg)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassEDB.String() != "EDB relation" || ClassProc.String() != "Glue procedure" ||
		ClassNail.String() != "NAIL! predicate" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class name wrong")
	}
}
