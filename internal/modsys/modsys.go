// Package modsys implements the Glue-Nail module system (§6). Modules are a
// purely compile-time concept: linking resolves imports against exports and
// produces per-module symbol tables that tell the compiler which predicates
// a name can refer to — the information that lets predicate dereferencing
// (including HiLog predicate variables) happen at compile time.
package modsys

import (
	"fmt"

	"gluenail/internal/ast"
	"gluenail/internal/term"
)

// Class classifies a predicate symbol.
type Class uint8

const (
	// ClassEDB is a stored extensional relation.
	ClassEDB Class = iota
	// ClassProc is a Glue procedure.
	ClassProc
	// ClassNail is a NAIL! predicate defined by rules; families with HiLog
	// compound names (students(ID)) have NameArity > 0.
	ClassNail
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassEDB:
		return "EDB relation"
	case ClassProc:
		return "Glue procedure"
	case ClassNail:
		return "NAIL! predicate"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Symbol describes one predicate visible in some module.
type Symbol struct {
	Name      string
	Class     Class
	Module    string // defining module
	Bound     int    // procs: bound arity
	Free      int    // procs: free arity; EDB/NAIL!: value arity
	NameArity int    // NAIL! families: arity of the compound predicate name
	Exported  bool
	Proc      *ast.Proc   // ClassProc
	Rules     []*ast.Rule // ClassNail
}

// Arity returns the total argument count of the predicate (excluding the
// name arguments of a family).
func (s *Symbol) Arity() int { return s.Bound + s.Free }

// Module is a linked module: its AST plus the symbols it defines and sees.
type Module struct {
	AST *ast.Module
	// Defs are the symbols defined in this module, keyed by name.
	Defs map[string]*Symbol
	// Visible maps names to symbols usable in this module's code: its own
	// definitions plus imports.
	Visible map[string]*Symbol
}

// Program is a linked program.
type Program struct {
	Modules map[string]*Module
	// Order is the module declaration order, for deterministic iteration.
	Order []string
}

// Resolve finds the symbol a name refers to in the given module, or nil.
func (p *Program) Resolve(module, name string) *Symbol {
	m := p.Modules[module]
	if m == nil {
		return nil
	}
	return m.Visible[name]
}

// Error is a link-time error.
type Error struct {
	Module string
	Pos    ast.Pos
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("module %s: %d:%d: %s", e.Module, e.Pos.Line, e.Pos.Col, e.Msg)
}

func errf(mod string, pos ast.Pos, format string, args ...any) error {
	return &Error{Module: mod, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Options adjusts linking.
type Options struct {
	// Known reports names resolved outside the module system (builtins and
	// registered foreign procedures); auto-EDB declaration skips them.
	Known func(name string) bool
}

// Link resolves a parsed program into symbol tables using default options.
func Link(prog *ast.Program) (*Program, error) {
	return LinkWith(prog, Options{})
}

// LinkWith resolves a parsed program into symbol tables. The implicit
// "main" module (a bare script) gets two conveniences: every definition is
// exported, and predicates referenced but never defined are auto-declared
// as EDB relations.
func LinkWith(prog *ast.Program, opts Options) (*Program, error) {
	lp := &Program{Modules: make(map[string]*Module)}
	// Pass 1: collect definitions per module.
	for _, m := range prog.Modules {
		if _, dup := lp.Modules[m.Name]; dup {
			return nil, errf(m.Name, m.Pos, "duplicate module %s", m.Name)
		}
		lm := &Module{
			AST:     m,
			Defs:    make(map[string]*Symbol),
			Visible: make(map[string]*Symbol),
		}
		if err := collectDefs(lm); err != nil {
			return nil, err
		}
		lp.Modules[m.Name] = lm
		lp.Order = append(lp.Order, m.Name)
	}
	// Pass 2: mark exports.
	for _, name := range lp.Order {
		lm := lp.Modules[name]
		implicit := lm.AST.Name == "main" && len(lm.AST.Exports) == 0
		if implicit {
			for _, sym := range lm.Defs {
				sym.Exported = true
			}
			continue
		}
		for _, sig := range lm.AST.Exports {
			sym, ok := lm.Defs[sig.Name]
			if !ok {
				return nil, errf(name, sig.Pos, "exported predicate %s is not defined", sig.Name)
			}
			if sym.Class == ClassProc && (sym.Bound != sig.Bound || sym.Free != sig.Free) {
				return nil, errf(name, sig.Pos,
					"export %s has arity %d:%d but procedure is %d:%d",
					sig.Name, sig.Bound, sig.Free, sym.Bound, sym.Free)
			}
			sym.Exported = true
		}
	}
	// Pass 3: resolve imports and build visibility.
	for _, name := range lp.Order {
		lm := lp.Modules[name]
		for n, sym := range lm.Defs {
			lm.Visible[n] = sym
		}
		for _, imp := range lm.AST.Imports {
			src, ok := lp.Modules[imp.From]
			if !ok {
				return nil, errf(name, imp.Pos, "imported module %q not found", imp.From)
			}
			for _, sig := range imp.Sigs {
				sym, ok := src.Defs[sig.Name]
				if !ok {
					return nil, errf(name, sig.Pos,
						"module %s does not define %s", imp.From, sig.Name)
				}
				if !sym.Exported {
					return nil, errf(name, sig.Pos,
						"module %s does not export %s", imp.From, sig.Name)
				}
				if sym.Arity() != sig.Arity() {
					return nil, errf(name, sig.Pos,
						"import %s has arity %d but %s exports arity %d",
						sig.Name, sig.Arity(), imp.From, sym.Arity())
				}
				if prev, dup := lm.Visible[sig.Name]; dup {
					return nil, errf(name, sig.Pos,
						"import %s collides with %s from module %s",
						sig.Name, prev.Class, prev.Module)
				}
				lm.Visible[sig.Name] = sym
			}
		}
	}
	// Pass 4: implicit-EDB convenience for the script module.
	if lm, ok := lp.Modules["main"]; ok {
		autoDeclareEDB(lm, opts.Known)
	}
	return lp, nil
}

func collectDefs(lm *Module) error {
	m := lm.AST
	define := func(sym *Symbol, pos ast.Pos) error {
		if prev, dup := lm.Defs[sym.Name]; dup {
			if prev.Class == ClassNail && sym.Class == ClassNail {
				return nil // rules accumulate
			}
			return errf(m.Name, pos, "%s redefines %s (%s)", sym.Name, prev.Name, prev.Class)
		}
		lm.Defs[sym.Name] = sym
		return nil
	}
	for _, sig := range m.EDB {
		if err := define(&Symbol{
			Name: sig.Name, Class: ClassEDB, Module: m.Name, Free: sig.Free,
		}, sig.Pos); err != nil {
			return err
		}
	}
	for _, proc := range m.Procs {
		if err := define(&Symbol{
			Name: proc.Name, Class: ClassProc, Module: m.Name,
			Bound: len(proc.BoundParams), Free: len(proc.FreeParams), Proc: proc,
		}, proc.Pos); err != nil {
			return err
		}
	}
	for _, rule := range m.Rules {
		name, nameArity, err := headShape(m.Name, rule)
		if err != nil {
			return err
		}
		if sym, ok := lm.Defs[name]; ok {
			if sym.Class != ClassNail {
				return errf(m.Name, rule.Pos, "rule head %s conflicts with %s", name, sym.Class)
			}
			if sym.NameArity != nameArity || sym.Free != len(rule.Head.Args) {
				return errf(m.Name, rule.Pos,
					"rule head %s has inconsistent shape (name arity %d/%d, arity %d/%d)",
					name, nameArity, sym.NameArity, len(rule.Head.Args), sym.Free)
			}
			sym.Rules = append(sym.Rules, rule)
			continue
		}
		sym := &Symbol{
			Name: name, Class: ClassNail, Module: m.Name,
			Free: len(rule.Head.Args), NameArity: nameArity,
			Rules: []*ast.Rule{rule},
		}
		if err := define(sym, rule.Pos); err != nil {
			return err
		}
	}
	return nil
}

// headShape extracts the base name and name-arity of a rule head, e.g.
// tc(X,Y) -> ("tc", 0) and students(ID)(N) -> ("students", 1).
func headShape(mod string, rule *ast.Rule) (string, int, error) {
	switch pred := rule.Head.Pred.(type) {
	case *ast.Const:
		if name := rule.Head.PredName(); name != "" {
			return name, 0, nil
		}
	case *ast.CompTerm:
		if fn, ok := pred.Fn.(*ast.Const); ok {
			return fn.Val.Str(), len(pred.Args), nil
		}
		return "", 0, errf(mod, rule.Pos, "rule head predicate name must start with an atom")
	case *ast.VarTerm:
		return "", 0, errf(mod, rule.Pos, "rule head predicate cannot be a variable")
	}
	return "", 0, errf(mod, rule.Pos, "bad rule head")
}

// Fact is one EDB tuple extracted from source by ExtractEDBFacts.
type Fact struct {
	Name  string
	Tuple term.Tuple
}

// ExtractEDBFacts removes ground, bodyless rules whose head names a
// relation declared edb in the same module and returns them as data, so
// sources can carry facts next to their declarations:
//
//	edb edge(X,Y);
//	edge(1,2). edge(2,3).
//
// Callers that only need the code (e.g. cmd/nailc) may discard the result;
// the System loads them into the store.
func ExtractEDBFacts(m *ast.Module) []Fact {
	edb := map[string]int{}
	for _, sig := range m.EDB {
		edb[sig.Name] = sig.Arity()
	}
	var facts []Fact
	var rules []*ast.Rule
	for _, r := range m.Rules {
		name := r.Head.PredName()
		if len(r.Body) != 0 || name == "" || edb[name] != len(r.Head.Args) {
			rules = append(rules, r)
			continue
		}
		tup := make(term.Tuple, len(r.Head.Args))
		ground := true
		for i, a := range r.Head.Args {
			v, ok := groundTermValue(a)
			if !ok {
				ground = false
				break
			}
			tup[i] = v
		}
		if !ground {
			rules = append(rules, r)
			continue
		}
		facts = append(facts, Fact{Name: name, Tuple: tup})
	}
	m.Rules = rules
	return facts
}

func groundTermValue(t ast.Term) (term.Value, bool) {
	switch t := t.(type) {
	case *ast.Const:
		return t.Val, true
	case *ast.CompTerm:
		fn, ok := groundTermValue(t.Fn)
		if !ok {
			return term.Value{}, false
		}
		args := make([]term.Value, len(t.Args))
		for i, a := range t.Args {
			v, ok := groundTermValue(a)
			if !ok {
				return term.Value{}, false
			}
			args[i] = v
		}
		return term.NewCompound(fn, args...), true
	}
	return term.Value{}, false
}

// autoDeclareEDB scans the script module for predicate atoms that resolve to
// nothing and declares them as EDB relations, so quick scripts need no edb
// declarations.
func autoDeclareEDB(lm *Module, known func(string) bool) {
	seen := func(name string, arity int) {
		if name == "" || name == "in" || name == "return" {
			return
		}
		if known != nil && known(name) {
			return
		}
		if _, ok := lm.Visible[name]; ok {
			return
		}
		sym := &Symbol{Name: name, Class: ClassEDB, Module: lm.AST.Name, Free: arity, Exported: true}
		lm.Defs[name] = sym
		lm.Visible[name] = sym
	}
	var scanGoals func(goals []ast.Goal, locals map[string]bool)
	scanAtom := func(a *ast.AtomTerm, locals map[string]bool) {
		name := a.PredName()
		if name == "" || locals[name] {
			return
		}
		seen(name, len(a.Args))
	}
	scanGoals = func(goals []ast.Goal, locals map[string]bool) {
		for _, g := range goals {
			switch g := g.(type) {
			case *ast.AtomGoal:
				scanAtom(g.Atom, locals)
			case *ast.UnchangedGoal:
				scanAtom(g.Atom, locals)
			case *ast.EmptyGoal:
				scanAtom(g.Atom, locals)
			}
		}
	}
	for _, rule := range lm.AST.Rules {
		scanGoals(rule.Body, nil)
	}
	for _, proc := range lm.AST.Procs {
		locals := map[string]bool{}
		for _, l := range proc.Locals {
			locals[l.Name] = true
		}
		var scanStmts func(stmts []ast.Stmt)
		scanStmts = func(stmts []ast.Stmt) {
			for _, st := range stmts {
				switch st := st.(type) {
				case *ast.Assign:
					// Assigned-to relations materialize as EDB too.
					if !st.IsReturn {
						scanAtom(st.Head, locals)
					}
					scanGoals(st.Body, locals)
				case *ast.Repeat:
					scanStmts(st.Body)
					for _, alt := range st.Until {
						scanGoals(alt, locals)
					}
				}
			}
		}
		scanStmts(proc.Body)
	}
}
