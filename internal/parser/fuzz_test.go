package parser

import (
	"testing"

	"gluenail/internal/ast"
)

// FuzzParse checks the parser never panics and that anything it accepts can
// be formatted and reparsed (print/parse stability). The seed corpus covers
// every syntactic construct; `go test` runs the seeds, `go test -fuzz` digs
// deeper.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"p(X) :- q(X).",
		"edb e(X,Y);\ntc(X,Y) :- e(X,Y).\ntc(X,Z) :- tc(X,Y) & e(Y,Z).",
		"module m;\nexport p(X:Y);\nedb e(A,B);\nproc p(X:Y)\n  return(X:Y) := e(X,Y).\nend\nend",
		"proc p(:)\nrels t(A);\n  repeat\n    t(X) += s(X).\n  until unchanged(t(_));\n  return(:) := t(_).\nend",
		"a(X) :- b(X) & !c(X) & X > 1+2*3 & Y = min(X) & group_by(X).",
		"s(I)(N) :- a(N, I).",
		"q(E) :- d(toy, S) & S(E).",
		"p(X) := q(X) & --r(X) & ++w(X).",
		"h('it\\'s', \"dq\", 1.5e2, -3) :- t(_).",
		"x(X) :- y(X) & Z = strcat('a', 'b') & L = strlen(Z) & S = substr(Z, 1, 1).",
		"proc f(:)\n  return(:) := g(1).\nend",
		"until(X) :- weird(X).",
		"p(f(g(h(1)))(2)) :- q(_).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil || prog == nil {
			return
		}
		for _, m := range prog.Modules {
			text := ast.FormatModule(m)
			// Formatted output of an accepted module must reparse, except
			// when a name needed quoting (generated-code names); those
			// print quoted and still reparse, so any failure is a bug.
			if _, err := Parse(text); err != nil {
				t.Fatalf("reparse of formatted module failed: %v\noriginal: %q\nformatted:\n%s",
					err, src, text)
			}
		}
	})
}

// FuzzParseGoals checks the query-goal parser.
func FuzzParseGoals(f *testing.F) {
	for _, s := range []string{
		"p(X)", "p(X) & q(X, Y).", "X = 1 + 2", "!p(X) & X != Y",
		"min(T) = M & daily(N, T)", "S(X) & T(X)", "empty(p(_))",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseGoals(src) // must not panic
	})
}
