package parser

import (
	"strings"
	"testing"

	"gluenail/internal/ast"
	"gluenail/internal/term"
)

func parseOne(t *testing.T, src string) *ast.Module {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	if len(prog.Modules) != 1 {
		t.Fatalf("got %d modules, want 1", len(prog.Modules))
	}
	return prog.Modules[0]
}

func TestImplicitModule(t *testing.T) {
	m := parseOne(t, `
edb e(X,Y);
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y) & e(Y,Z).
`)
	if m.Name != "main" {
		t.Errorf("implicit module name = %q", m.Name)
	}
	if len(m.EDB) != 1 || m.EDB[0].Name != "e" || m.EDB[0].Arity() != 2 {
		t.Errorf("EDB = %+v", m.EDB)
	}
	if len(m.Rules) != 2 {
		t.Fatalf("rules = %d", len(m.Rules))
	}
	if m.Rules[0].Head.PredName() != "tc" {
		t.Errorf("rule head = %q", m.Rules[0].Head.PredName())
	}
	if len(m.Rules[1].Body) != 2 {
		t.Errorf("rule 2 body has %d goals", len(m.Rules[1].Body))
	}
}

func TestExplicitModuleHeader(t *testing.T) {
	m := parseOne(t, `
module example;
export select(:Key);
from windows import event(:Type, Data);
from graphics import highlight(Key:), dehighlight(Key:);
edb element(Key, Origin, P1, P2, DS), tolerance(T);
end
`)
	if m.Name != "example" {
		t.Errorf("name = %q", m.Name)
	}
	if len(m.Exports) != 1 || m.Exports[0].Bound != 0 || m.Exports[0].Free != 1 {
		t.Errorf("exports = %+v", m.Exports)
	}
	if len(m.Imports) != 2 {
		t.Fatalf("imports = %d", len(m.Imports))
	}
	if m.Imports[0].From != "windows" || m.Imports[0].Sigs[0].Name != "event" {
		t.Errorf("import 0 = %+v", m.Imports[0])
	}
	if m.Imports[0].Sigs[0].Bound != 0 || m.Imports[0].Sigs[0].Free != 2 {
		t.Errorf("event sig = %+v", m.Imports[0].Sigs[0])
	}
	if m.Imports[1].Sigs[0].Bound != 1 || m.Imports[1].Sigs[0].Free != 0 {
		t.Errorf("highlight sig = %+v", m.Imports[1].Sigs[0])
	}
	if len(m.EDB) != 2 || m.EDB[0].Arity() != 5 || m.EDB[1].Arity() != 1 {
		t.Errorf("edb = %+v", m.EDB)
	}
}

func TestPaperTcProcedure(t *testing.T) {
	// The tc_e procedure from §4, lightly normalized.
	m := parseOne(t, `
module tcmod;
edb e(X,Y);
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & e(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & e(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
end
`)
	if len(m.Procs) != 1 {
		t.Fatalf("procs = %d", len(m.Procs))
	}
	p := m.Procs[0]
	if p.Name != "tc_e" || len(p.BoundParams) != 1 || len(p.FreeParams) != 1 {
		t.Errorf("proc sig: %s (%v:%v)", p.Name, p.BoundParams, p.FreeParams)
	}
	if len(p.Locals) != 1 || p.Locals[0].Name != "connected" {
		t.Errorf("locals = %+v", p.Locals)
	}
	if len(p.Body) != 3 {
		t.Fatalf("body stmts = %d", len(p.Body))
	}
	rep, ok := p.Body[1].(*ast.Repeat)
	if !ok {
		t.Fatalf("stmt 1 is %T, want Repeat", p.Body[1])
	}
	if len(rep.Body) != 1 || len(rep.Until) != 1 {
		t.Errorf("repeat: body=%d until=%d", len(rep.Body), len(rep.Until))
	}
	if _, ok := rep.Until[0][0].(*ast.UnchangedGoal); !ok {
		t.Errorf("until goal is %T", rep.Until[0][0])
	}
	ret, ok := p.Body[2].(*ast.Assign)
	if !ok || !ret.IsReturn || ret.HeadBound != 1 {
		t.Errorf("return stmt: %+v", p.Body[2])
	}
}

func TestAssignmentOperators(t *testing.T) {
	m := parseOne(t, `
edb row(X), matrix(X,Y,V);
proc fill(:)
  matrix(X,X, 1.0):= row(X).
  matrix(X,Y, 0.0)+= row(X) & row(Y) & X != Y.
  matrix(X,Y,V) +=[X,Y] row(X) & row(Y) & V = X*Y.
  matrix(X,Y,V) -= matrix(X,Y,V) & V = 0.0.
  return(:):= row(1).
end
`)
	p := m.Procs[0]
	ops := []ast.AssignOp{ast.OpAssign, ast.OpInsert, ast.OpModify, ast.OpDelete}
	for i, want := range ops {
		a := p.Body[i].(*ast.Assign)
		if a.Op != want {
			t.Errorf("stmt %d op = %v, want %v", i, a.Op, want)
		}
	}
	mod := p.Body[2].(*ast.Assign)
	if len(mod.Key) != 2 || mod.Key[0] != "X" || mod.Key[1] != "Y" {
		t.Errorf("modify key = %v", mod.Key)
	}
	// matrix(X,X, 1.0) head: third arg is the float constant 1.0.
	a0 := p.Body[0].(*ast.Assign)
	c, ok := a0.Head.Args[2].(*ast.Const)
	if !ok || c.Val.Kind() != term.Float || c.Val.Float() != 1.0 {
		t.Errorf("head const = %#v", a0.Head.Args[2])
	}
}

func TestAggregationGoals(t *testing.T) {
	m := parseOne(t, `
edb daily_temp(Name, T);
coldest_city(Name) :- daily_temp(Name,T) & MinT = min(T) & T = MinT.
course_average(C, Avg) :- course_student_grade(C,S,G) & group_by(C) & Avg = mean(G).
`)
	r := m.Rules[0]
	agg, ok := r.Body[1].(*ast.AggGoal)
	if !ok || agg.Op != "min" || agg.Var != "MinT" {
		t.Fatalf("goal 1 = %#v", r.Body[1])
	}
	if v, ok := agg.Arg.(*ast.VarTerm); !ok || v.Name != "T" {
		t.Errorf("agg arg = %#v", agg.Arg)
	}
	if cmp, ok := r.Body[2].(*ast.CmpGoal); !ok || cmp.Op != ast.CmpEq {
		t.Errorf("goal 2 = %#v", r.Body[2])
	}
	r2 := m.Rules[1]
	gb, ok := r2.Body[1].(*ast.GroupByGoal)
	if !ok || len(gb.Vars) != 1 || gb.Vars[0] != "C" {
		t.Fatalf("group_by = %#v", r2.Body[1])
	}
	if agg2, ok := r2.Body[2].(*ast.AggGoal); !ok || agg2.Op != "mean" {
		t.Errorf("mean goal = %#v", r2.Body[2])
	}
}

func TestAggFlippedSides(t *testing.T) {
	// min(T) = MinT should also parse as an aggregation goal.
	goals, err := ParseGoals("daily_temp(N,T) & min(T) = MinT")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := goals[1].(*ast.AggGoal); !ok {
		t.Errorf("flipped agg = %#v", goals[1])
	}
}

func TestHiLogTerms(t *testing.T) {
	m := parseOne(t, `
edb dept_employees(D, S);
q(E) :- dept_employees(toy, E_set) & E_set(E).
students(ID)(N) :- attends(N, ID).
`)
	// E_set(E): predicate position is a variable.
	g := m.Rules[0].Body[1].(*ast.AtomGoal)
	if v, ok := g.Atom.Pred.(*ast.VarTerm); !ok || v.Name != "E_set" {
		t.Errorf("pred var = %#v", g.Atom.Pred)
	}
	// students(ID)(N): head predicate is a compound term.
	h := m.Rules[1].Head
	cp, ok := h.Pred.(*ast.CompTerm)
	if !ok {
		t.Fatalf("head pred = %#v", h.Pred)
	}
	if fn, ok := cp.Fn.(*ast.Const); !ok || fn.Val.Str() != "students" {
		t.Errorf("head pred functor = %#v", cp.Fn)
	}
	if len(h.Args) != 1 {
		t.Errorf("head args = %d", len(h.Args))
	}
}

func TestCompoundArgsInSubgoals(t *testing.T) {
	// r(X,Y) += s(X,W) & t(f(W,X),Y). from §3.1.
	goals, err := ParseGoals("s(X,W) & t(f(W,X),Y)")
	if err != nil {
		t.Fatal(err)
	}
	tg := goals[1].(*ast.AtomGoal)
	comp, ok := tg.Atom.Args[0].(*ast.CompTerm)
	if !ok {
		t.Fatalf("arg 0 = %#v", tg.Atom.Args[0])
	}
	if fn := comp.Fn.(*ast.Const); fn.Val.Str() != "f" {
		t.Errorf("functor = %v", fn.Val)
	}
}

func TestArithmeticComparison(t *testing.T) {
	// From Figure 1: (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin) < T.
	goals, err := ParseGoals("(X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin) < T")
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := goals[0].(*ast.CmpGoal)
	if !ok || cmp.Op != ast.CmpLt {
		t.Fatalf("goal = %#v", goals[0])
	}
	add, ok := cmp.L.(*ast.BinExpr)
	if !ok || add.Op != ast.OpAdd {
		t.Fatalf("lhs = %#v", cmp.L)
	}
	if mul, ok := add.L.(*ast.BinExpr); !ok || mul.Op != ast.OpMul {
		t.Errorf("lhs.l = %#v", add.L)
	}
}

func TestPrecedence(t *testing.T) {
	goals, err := ParseGoals("X = 1 + 2 * 3 - 4 mod 2")
	if err != nil {
		t.Fatal(err)
	}
	cmp := goals[0].(*ast.CmpGoal)
	// ((1 + (2*3)) - (4 mod 2))
	sub, ok := cmp.R.(*ast.BinExpr)
	if !ok || sub.Op != ast.OpSub {
		t.Fatalf("top = %#v", cmp.R)
	}
	add := sub.L.(*ast.BinExpr)
	if add.Op != ast.OpAdd {
		t.Errorf("add = %v", add.Op)
	}
	if mul := add.R.(*ast.BinExpr); mul.Op != ast.OpMul {
		t.Errorf("mul = %v", mul.Op)
	}
	if m := sub.R.(*ast.BinExpr); m.Op != ast.OpMod {
		t.Errorf("mod = %v", m.Op)
	}
}

func TestNegativeLiterals(t *testing.T) {
	goals, err := ParseGoals("p(X) & X > -5")
	if err != nil {
		t.Fatal(err)
	}
	cmp := goals[1].(*ast.CmpGoal)
	te := cmp.R.(*ast.TermExpr)
	c := te.T.(*ast.Const)
	if c.Val.Int() != -5 {
		t.Errorf("folded literal = %v", c.Val)
	}
}

func TestStringBuiltins(t *testing.T) {
	goals, err := ParseGoals("R = strcat(A, B) & L = strlen(R) & S = substr(R, 1, 3)")
	if err != nil {
		t.Fatal(err)
	}
	for i, fn := range []string{"strcat", "strlen", "substr"} {
		cmp, ok := goals[i].(*ast.CmpGoal)
		if !ok {
			t.Fatalf("goal %d = %#v", i, goals[i])
		}
		call, ok := cmp.R.(*ast.CallExpr)
		if !ok || call.Fn != fn {
			t.Errorf("goal %d rhs = %#v", i, cmp.R)
		}
	}
	if _, err := ParseGoals("R = strcat(A)"); err == nil {
		t.Error("strcat/1 should be an arity error")
	}
}

func TestUpdateSubgoals(t *testing.T) {
	// --possible(It, D) from Figure 1, plus ++.
	goals, err := ParseGoals("try(K) & --possible(It, D) & ++log(K)")
	if err != nil {
		t.Fatal(err)
	}
	del := goals[1].(*ast.AtomGoal)
	if del.Update != ast.UpdateDelete {
		t.Errorf("update kind = %v", del.Update)
	}
	ins := goals[2].(*ast.AtomGoal)
	if ins.Update != ast.UpdateInsert {
		t.Errorf("update kind = %v", ins.Update)
	}
}

func TestNegatedGoal(t *testing.T) {
	goals, err := ParseGoals("in(S,T) & S(X) & !T(X)")
	if err != nil {
		t.Fatal(err)
	}
	neg := goals[2].(*ast.AtomGoal)
	if !neg.Negated {
		t.Error("expected negated goal")
	}
	if _, ok := neg.Atom.Pred.(*ast.VarTerm); !ok {
		t.Errorf("negated HiLog pred = %#v", neg.Atom.Pred)
	}
}

func TestRepeatUntilDisjunction(t *testing.T) {
	m := parseOne(t, `
proc p(:)
rels confirmed(K), possible(K);
  repeat
    confirmed(K) := possible(K).
  until {confirmed(K) | empty(possible(K)) };
  return(:):= confirmed(1).
end
`)
	rep := m.Procs[0].Body[0].(*ast.Repeat)
	if len(rep.Until) != 2 {
		t.Fatalf("until alternatives = %d", len(rep.Until))
	}
	if _, ok := rep.Until[1][0].(*ast.EmptyGoal); !ok {
		t.Errorf("alt 1 = %#v", rep.Until[1][0])
	}
}

func TestMultipleModules(t *testing.T) {
	prog, err := Parse(`
module a;
edb p(X);
end
module b;
from a import p(X);
q(X) :- p(X).
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Modules) != 2 || prog.Modules[0].Name != "a" || prog.Modules[1].Name != "b" {
		t.Errorf("modules = %+v", prog.Modules)
	}
}

func TestParseGoalsTrailingDot(t *testing.T) {
	for _, src := range []string{"p(X)", "p(X)."} {
		goals, err := ParseGoals(src)
		if err != nil || len(goals) != 1 {
			t.Errorf("ParseGoals(%q) = %v, %v", src, goals, err)
		}
	}
}

func TestBareAtomGoal(t *testing.T) {
	goals, err := ParseGoals("done")
	if err != nil {
		t.Fatal(err)
	}
	g := goals[0].(*ast.AtomGoal)
	if g.Atom.PredName() != "done" || g.Atom.Arity() != 0 {
		t.Errorf("bare atom = %#v", g.Atom)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"module ; end",              // missing name
		"module m",                  // missing semi
		"module m; proc p(X:Y) end", // unterminated module
		"edb p(X:Y);",               // bound args in EDB
		"proc p(:) rels l(X:Y); return(:):= t. end",  // bound args in local
		"proc p(:) q(X) ?= r(X). return(:):= t. end", // bad operator
		"p(X) :- q(X)",                  // missing dot
		"p(X) :- 1+2.",                  // arithmetic as goal
		"proc p(:) q(X) +=[] r(X). end", // empty modify key
		"p(f(X+1)).",                    // arithmetic inside term args
		"p(X) :- X(Y) & X.",             // bare predicate variable
		"return(X:Y:Z) := p(X).",        // second colon — parses head as rule? ensure error
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	for _, src := range []string{"p(X) q(Y)", "p(X) & ", "& p(X)", "3 < "} {
		if _, err := ParseGoals(src); err == nil {
			t.Errorf("ParseGoals(%q) should fail", src)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("p(X) :-\n  q(X) ??")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should mention line 2: %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	// Formatting a parsed module and reparsing it reproduces the shape.
	src := `
module m;
export tc(B1:F1);
edb e(A1,A2);
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y) & e(Y,Z).
proc tc_e(X:Y)
rels connected(X,Y);
  connected(X,Y) := in(X) & e(X,Y).
  repeat
    connected(X,Y) += connected(X,Z) & e(Z,Y).
  until unchanged(connected(_,_));
  return(X:Y) := connected(X,Y).
end
end
`
	m1 := parseOne(t, src)
	text := ast.FormatModule(m1)
	m2 := parseOne(t, text)
	if ast.FormatModule(m2) != text {
		t.Errorf("format not stable:\nfirst:\n%s\nsecond:\n%s", text, ast.FormatModule(m2))
	}
}
