package parser

import "testing"

const benchSrc = `
module sample;
export reach(X:Y);
edb edge(A,B), weight(A,B,W);
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y) & edge(Y,Z).
heavy(X,Y) :- weight(X,Y,W) & W > 100.
proc scan(X:Y)
rels seen(A);
  seen(Y) := in(X) & edge(X,Y).
  repeat
    seen(Z) += seen(Y) & edge(Y,Z) & Z != X.
  until unchanged(seen(_));
  return(X:Y) := seen(Y).
end
end
`

func BenchmarkParseModule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseGoals(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseGoals("reach(X,Y) & weight(X,Y,W) & W > 10 & M = max(W)"); err != nil {
			b.Fatal(err)
		}
	}
}
