// Package parser builds the AST for Glue and NAIL! source. A file contains
// either explicit modules (`module m; ... end`) or, as a convenience for
// scripts and the REPL, bare items that are wrapped in an implicit module
// named "main" with everything exported.
package parser

import (
	"fmt"

	"gluenail/internal/ast"
	"gluenail/internal/lexer"
	"gluenail/internal/term"
)

// Error is a syntax error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks []lexer.Token
	pos  int
}

// Parse parses a complete source file.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	if p.peekIdent("module") {
		for !p.atEOF() {
			m, err := p.parseModule()
			if err != nil {
				return nil, err
			}
			prog.Modules = append(prog.Modules, m)
		}
		return prog, nil
	}
	// Implicit script module.
	m := &ast.Module{Name: "main", Pos: p.posHere()}
	for !p.atEOF() {
		if err := p.parseItem(m); err != nil {
			return nil, err
		}
	}
	prog.Modules = append(prog.Modules, m)
	return prog, nil
}

// ParseGoals parses a conjunction of goals, as typed at the query prompt;
// a trailing '.' is optional.
func ParseGoals(src string) ([]ast.Goal, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	goals, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	if p.peekKind(lexer.Dot) {
		p.next()
	}
	if !p.atEOF() {
		return nil, p.errHere("unexpected %s after query", p.cur())
	}
	return goals, nil
}

func (p *parser) cur() lexer.Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	if len(p.toks) == 0 {
		return lexer.Token{Kind: lexer.EOF, Line: 1, Col: 1}
	}
	last := p.toks[len(p.toks)-1]
	return lexer.Token{Kind: lexer.EOF, Line: last.Line, Col: last.Col + 1}
}

func (p *parser) next() lexer.Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.cur().Kind == lexer.EOF }

func (p *parser) peekKind(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *parser) peekIdent(name string) bool {
	t := p.cur()
	return t.Kind == lexer.Ident && t.Text == name
}

func (p *parser) posHere() ast.Pos {
	t := p.cur()
	return ast.Pos{Line: t.Line, Col: t.Col}
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if !p.peekKind(k) {
		return lexer.Token{}, p.errHere("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectIdent(name string) error {
	if !p.peekIdent(name) {
		return p.errHere("expected %q, found %s", name, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) parseModule() (*ast.Module, error) {
	m := &ast.Module{Pos: p.posHere()}
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	m.Name = name.Text
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	for {
		if p.peekIdent("end") {
			p.next()
			// Optional trailing semicolon or dot after module end.
			if p.peekKind(lexer.Semi) || p.peekKind(lexer.Dot) {
				p.next()
			}
			return m, nil
		}
		if p.atEOF() {
			return nil, p.errHere("unexpected end of input in module %s", m.Name)
		}
		if err := p.parseItem(m); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseItem(m *ast.Module) error {
	t := p.cur()
	if t.Kind == lexer.Ident {
		switch t.Text {
		case "export":
			return p.parseExport(m)
		case "from":
			return p.parseImport(m)
		case "edb":
			return p.parseEDB(m)
		case "proc", "procedure":
			proc, err := p.parseProc()
			if err != nil {
				return err
			}
			m.Procs = append(m.Procs, proc)
			return nil
		}
	}
	// Otherwise it must be a NAIL! rule.
	r, err := p.parseRule()
	if err != nil {
		return err
	}
	m.Rules = append(m.Rules, r)
	return nil
}

// parseSig parses name(B1,..:F1,..) or name(A1,..) (all free).
func (p *parser) parseSig() (ast.PredSig, error) {
	sig := ast.PredSig{Pos: p.posHere()}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return sig, err
	}
	sig.Name = name.Text
	if _, err := p.expect(lexer.LParen); err != nil {
		return sig, err
	}
	bound, sawColon, err := p.parseSigVars()
	if err != nil {
		return sig, err
	}
	if sawColon {
		free, sawColon2, err := p.parseSigVars()
		if err != nil {
			return sig, err
		}
		if sawColon2 {
			return sig, p.errHere("unexpected second ':' in signature")
		}
		sig.Bound, sig.Free = bound, free
	} else {
		sig.Free = bound
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return sig, err
	}
	return sig, nil
}

// parseSigVars counts variables up to ':' or ')'.
func (p *parser) parseSigVars() (n int, sawColon bool, err error) {
	for {
		switch {
		case p.peekKind(lexer.RParen):
			return n, false, nil
		case p.peekKind(lexer.Colon):
			p.next()
			return n, true, nil
		case p.peekKind(lexer.Var), p.peekKind(lexer.Ident):
			p.next()
			n++
			if p.peekKind(lexer.Comma) {
				p.next()
			}
		default:
			return 0, false, p.errHere("expected argument name, found %s", p.cur())
		}
	}
}

func (p *parser) parseExport(m *ast.Module) error {
	p.next() // export
	for {
		sig, err := p.parseSig()
		if err != nil {
			return err
		}
		m.Exports = append(m.Exports, sig)
		if p.peekKind(lexer.Comma) {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(lexer.Semi)
	return err
}

func (p *parser) parseImport(m *ast.Module) error {
	pos := p.posHere()
	p.next() // from
	from, err := p.expect(lexer.Ident)
	if err != nil {
		return err
	}
	if err := p.expectIdent("import"); err != nil {
		return err
	}
	imp := ast.Import{From: from.Text, Pos: pos}
	for {
		sig, err := p.parseSig()
		if err != nil {
			return err
		}
		imp.Sigs = append(imp.Sigs, sig)
		if p.peekKind(lexer.Comma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return err
	}
	m.Imports = append(m.Imports, imp)
	return nil
}

func (p *parser) parseEDB(m *ast.Module) error {
	p.next() // edb
	for {
		sig, err := p.parseSig()
		if err != nil {
			return err
		}
		if sig.Bound != 0 {
			return p.errHere("EDB relation %s cannot have bound arguments", sig.Name)
		}
		m.EDB = append(m.EDB, sig)
		if p.peekKind(lexer.Comma) {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(lexer.Semi)
	return err
}

func (p *parser) parseProc() (*ast.Proc, error) {
	proc := &ast.Proc{Pos: p.posHere()}
	p.next() // proc / procedure
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	proc.Name = name.Text
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	proc.BoundParams, err = p.parseParamList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	proc.FreeParams, err = p.parseParamList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	if p.peekIdent("rels") {
		p.next()
		for {
			sig, err := p.parseSig()
			if err != nil {
				return nil, err
			}
			if sig.Bound != 0 {
				return nil, p.errHere("local relation %s cannot have bound arguments", sig.Name)
			}
			proc.Locals = append(proc.Locals, sig)
			if p.peekKind(lexer.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
	}
	proc.Body, err = p.parseStmtsUntil("end")
	if err != nil {
		return nil, err
	}
	p.next() // end
	return proc, nil
}

func (p *parser) parseParamList() ([]string, error) {
	var out []string
	for p.peekKind(lexer.Var) {
		out = append(out, p.next().Text)
		if p.peekKind(lexer.Comma) {
			p.next()
		} else {
			break
		}
	}
	return out, nil
}

// parseStmtsUntil parses statements until the terminator identifier.
func (p *parser) parseStmtsUntil(terms ...string) ([]ast.Stmt, error) {
	var out []ast.Stmt
	for {
		for _, t := range terms {
			if p.peekIdent(t) {
				return out, nil
			}
		}
		if p.atEOF() {
			return nil, p.errHere("unexpected end of input, expected %q", terms[0])
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	if p.peekIdent("repeat") {
		return p.parseRepeat()
	}
	return p.parseAssign()
}

func (p *parser) parseRepeat() (ast.Stmt, error) {
	rep := &ast.Repeat{Pos: p.posHere()}
	p.next() // repeat
	body, err := p.parseStmtsUntil("until")
	if err != nil {
		return nil, err
	}
	rep.Body = body
	p.next() // until
	if p.peekKind(lexer.LBrace) {
		p.next()
		for {
			conj, err := p.parseConj()
			if err != nil {
				return nil, err
			}
			rep.Until = append(rep.Until, conj)
			if p.peekKind(lexer.Bar) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(lexer.RBrace); err != nil {
			return nil, err
		}
	} else {
		conj, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		rep.Until = [][]ast.Goal{conj}
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return rep, nil
}

func (p *parser) parseAssign() (ast.Stmt, error) {
	a := &ast.Assign{Pos: p.posHere()}
	// Head: return(B..:F..) or atom.
	if p.peekIdent("return") {
		pos := p.posHere()
		p.next()
		if _, err := p.expect(lexer.LParen); err != nil {
			return nil, err
		}
		a.IsReturn = true
		var args []ast.Term
		sawColon := false
		for !p.peekKind(lexer.RParen) {
			if p.peekKind(lexer.Colon) {
				if sawColon {
					return nil, p.errHere("second ':' in return head")
				}
				sawColon = true
				a.HeadBound = len(args)
				p.next()
				continue
			}
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			args = append(args, t)
			if p.peekKind(lexer.Comma) {
				p.next()
			}
		}
		p.next() // )
		if !sawColon {
			a.HeadBound = 0
		}
		a.Head = &ast.AtomTerm{
			Pred: &ast.Const{Val: term.Intern("return"), Pos: pos},
			Args: args, Pos: pos,
		}
	} else {
		head, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		a.Head = head
	}
	// Operator.
	switch p.cur().Kind {
	case lexer.Assign:
		a.Op = ast.OpAssign
		p.next()
	case lexer.PlusEq:
		a.Op = ast.OpInsert
		p.next()
		if p.peekKind(lexer.LBracket) {
			a.Op = ast.OpModify
			p.next()
			for p.peekKind(lexer.Var) {
				a.Key = append(a.Key, p.next().Text)
				if p.peekKind(lexer.Comma) {
					p.next()
				} else {
					break
				}
			}
			if _, err := p.expect(lexer.RBracket); err != nil {
				return nil, err
			}
			if len(a.Key) == 0 {
				return nil, p.errHere("modify assignment needs at least one key variable")
			}
		}
	case lexer.MinusEq:
		a.Op = ast.OpDelete
		p.next()
	default:
		return nil, p.errHere("expected assignment operator, found %s", p.cur())
	}
	body, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	a.Body = body
	if _, err := p.expect(lexer.Dot); err != nil {
		return nil, err
	}
	return a, nil
}

func (p *parser) parseRule() (*ast.Rule, error) {
	r := &ast.Rule{Pos: p.posHere()}
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	r.Head = head
	if p.peekKind(lexer.Implies) {
		p.next()
		body, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		r.Body = body
	}
	if _, err := p.expect(lexer.Dot); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseConj() ([]ast.Goal, error) {
	var goals []ast.Goal
	for {
		g, err := p.parseGoal()
		if err != nil {
			return nil, err
		}
		goals = append(goals, g)
		if p.peekKind(lexer.Amp) {
			p.next()
			continue
		}
		return goals, nil
	}
}

func (p *parser) parseGoal() (ast.Goal, error) {
	pos := p.posHere()
	switch p.cur().Kind {
	case lexer.Bang:
		p.next()
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &ast.AtomGoal{Atom: atom, Negated: true, Pos: pos}, nil
	case lexer.PlusPlus:
		p.next()
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &ast.AtomGoal{Atom: atom, Update: ast.UpdateInsert, Pos: pos}, nil
	case lexer.MinusMinus:
		p.next()
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &ast.AtomGoal{Atom: atom, Update: ast.UpdateDelete, Pos: pos}, nil
	}
	// Special builtins with goal arguments.
	if p.cur().Kind == lexer.Ident {
		switch p.cur().Text {
		case "group_by":
			p.next()
			if _, err := p.expect(lexer.LParen); err != nil {
				return nil, err
			}
			var vars []string
			for {
				v, err := p.expect(lexer.Var)
				if err != nil {
					return nil, err
				}
				vars = append(vars, v.Text)
				if p.peekKind(lexer.Comma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return nil, err
			}
			return &ast.GroupByGoal{Vars: vars, Pos: pos}, nil
		case "unchanged", "empty":
			kind := p.next().Text
			if _, err := p.expect(lexer.LParen); err != nil {
				return nil, err
			}
			atom, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return nil, err
			}
			if kind == "unchanged" {
				return &ast.UnchangedGoal{Atom: atom, Pos: pos}, nil
			}
			return &ast.EmptyGoal{Atom: atom, Pos: pos}, nil
		}
	}
	// General case: parse an expression; a following comparison operator
	// makes this a comparison/aggregation goal, otherwise it must be a
	// predicate atom.
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOpFor(p.cur().Kind); ok {
		p.next()
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// V = agg(T) is an aggregation goal (§3.3).
		if op == ast.CmpEq {
			if g := asAggGoal(left, right, pos); g != nil {
				return g, nil
			}
			if g := asAggGoal(right, left, pos); g != nil {
				return g, nil
			}
		}
		return &ast.CmpGoal{Op: op, L: left, R: right, Pos: pos}, nil
	}
	atom, err := exprToAtom(left)
	if err != nil {
		return nil, &Error{Line: pos.Line, Col: pos.Col, Msg: err.Error()}
	}
	return &ast.AtomGoal{Atom: atom, Pos: pos}, nil
}

// asAggGoal recognizes Var = aggop(Term).
func asAggGoal(varSide, aggSide ast.Expr, pos ast.Pos) ast.Goal {
	vt, ok := varSide.(*ast.TermExpr)
	if !ok {
		return nil
	}
	v, ok := vt.T.(*ast.VarTerm)
	if !ok {
		return nil
	}
	at, ok := aggSide.(*ast.TermExpr)
	if !ok {
		return nil
	}
	c, ok := at.T.(*ast.CompTerm)
	if !ok || len(c.Args) != 1 {
		return nil
	}
	fn, ok := c.Fn.(*ast.Const)
	if !ok || fn.Val.Kind() != term.Str || !ast.AggOps[fn.Val.Str()] {
		return nil
	}
	return &ast.AggGoal{Var: v.Name, Op: fn.Val.Str(), Arg: c.Args[0], Pos: pos}
}

func cmpOpFor(k lexer.Kind) (ast.CmpOp, bool) {
	switch k {
	case lexer.Eq:
		return ast.CmpEq, true
	case lexer.Ne:
		return ast.CmpNe, true
	case lexer.Lt:
		return ast.CmpLt, true
	case lexer.Le:
		return ast.CmpLe, true
	case lexer.Gt:
		return ast.CmpGt, true
	case lexer.Ge:
		return ast.CmpGe, true
	}
	return 0, false
}

// exprToAtom reinterprets a parsed expression as a predicate atom.
func exprToAtom(e ast.Expr) (*ast.AtomTerm, error) {
	te, ok := e.(*ast.TermExpr)
	if !ok {
		return nil, fmt.Errorf("expected a predicate subgoal, found an arithmetic expression")
	}
	switch t := te.T.(type) {
	case *ast.CompTerm:
		return &ast.AtomTerm{Pred: t.Fn, Args: t.Args, Pos: t.Pos}, nil
	case *ast.Const:
		if t.Val.Kind() == term.Str {
			// Bare arity-0 predicate, e.g. `until done`.
			return &ast.AtomTerm{Pred: t, Pos: t.Pos}, nil
		}
	}
	return nil, fmt.Errorf("expected a predicate subgoal")
}

// parseAtom parses pred(args...) where pred may be an atom, a variable, or
// a compound term (HiLog).
func (p *parser) parseAtom() (*ast.AtomTerm, error) {
	pos := p.posHere()
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	switch t := t.(type) {
	case *ast.CompTerm:
		return &ast.AtomTerm{Pred: t.Fn, Args: t.Args, Pos: pos}, nil
	case *ast.Const:
		if t.Val.Kind() == term.Str {
			return &ast.AtomTerm{Pred: t, Pos: pos}, nil
		}
	case *ast.VarTerm:
		return nil, p.errHere("predicate variable %s must be applied to arguments", t.Name)
	}
	return nil, p.errHere("expected a predicate atom")
}

// parseTerm parses a term: constant, variable, or compound with HiLog
// application chains.
func (p *parser) parseTerm() (ast.Term, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	t, err := exprToTerm(e)
	if err != nil {
		return nil, p.errHere("%v", err)
	}
	return t, nil
}

// exprToTerm converts an expression to a pure term, rejecting arithmetic.
func exprToTerm(e ast.Expr) (ast.Term, error) {
	switch e := e.(type) {
	case *ast.TermExpr:
		return e.T, nil
	case *ast.NegExpr:
		if te, ok := e.X.(*ast.TermExpr); ok {
			if c, ok := te.T.(*ast.Const); ok {
				switch c.Val.Kind() {
				case term.Int:
					return &ast.Const{Val: term.NewInt(-c.Val.Int()), Pos: c.Pos}, nil
				case term.Float:
					return &ast.Const{Val: term.NewFloat(-c.Val.Float()), Pos: c.Pos}, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("arithmetic is not allowed inside term arguments; bind it with '=' first")
}

// Expression grammar with precedence: add < mul < unary < postfix.
func (p *parser) parseExpr() (ast.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinOp
		switch p.cur().Kind {
		case lexer.Plus:
			op = ast.OpAdd
		case lexer.Minus:
			op = ast.OpSub
		default:
			return left, nil
		}
		pos := p.posHere()
		p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &ast.BinExpr{Op: op, L: left, R: right, Pos: pos}
	}
}

func (p *parser) parseMul() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinOp
		switch {
		case p.peekKind(lexer.Star):
			op = ast.OpMul
		case p.peekKind(lexer.Slash):
			op = ast.OpDiv
		case p.peekIdent("mod"):
			op = ast.OpMod
		default:
			return left, nil
		}
		pos := p.posHere()
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ast.BinExpr{Op: op, L: left, R: right, Pos: pos}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.peekKind(lexer.Minus) {
		pos := p.posHere()
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals immediately.
		if te, ok := x.(*ast.TermExpr); ok {
			if c, ok := te.T.(*ast.Const); ok {
				switch c.Val.Kind() {
				case term.Int:
					return &ast.TermExpr{T: &ast.Const{Val: term.NewInt(-c.Val.Int()), Pos: c.Pos}}, nil
				case term.Float:
					return &ast.TermExpr{T: &ast.Const{Val: term.NewFloat(-c.Val.Float()), Pos: c.Pos}}, nil
				}
			}
		}
		return &ast.NegExpr{X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	pos := p.posHere()
	t := p.cur()
	switch t.Kind {
	case lexer.Int:
		p.next()
		return &ast.TermExpr{T: &ast.Const{Val: term.NewInt(t.I), Pos: pos}}, nil
	case lexer.Float:
		p.next()
		return &ast.TermExpr{T: &ast.Const{Val: term.NewFloat(t.F), Pos: pos}}, nil
	case lexer.Str:
		p.next()
		e := ast.Expr(&ast.TermExpr{T: &ast.Const{Val: term.Intern(t.Text), Pos: pos}})
		return p.parseApplications(e)
	case lexer.Ident:
		p.next()
		e := ast.Expr(&ast.TermExpr{T: &ast.Const{Val: term.Intern(t.Text), Pos: pos}})
		return p.parseApplications(e)
	case lexer.Var:
		p.next()
		e := ast.Expr(&ast.TermExpr{T: &ast.VarTerm{Name: t.Text, Pos: pos}})
		return p.parseApplications(e)
	case lexer.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errHere("expected a term, found %s", p.cur())
}

// parseApplications parses zero or more HiLog application suffixes
// "(args...)" and builtin-function calls.
func (p *parser) parseApplications(e ast.Expr) (ast.Expr, error) {
	for p.peekKind(lexer.LParen) {
		pos := p.posHere()
		p.next()
		var args []ast.Expr
		for !p.peekKind(lexer.RParen) {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.peekKind(lexer.Comma) {
				p.next()
			} else {
				break
			}
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		// A builtin expression function (strcat etc.) stays a CallExpr;
		// anything else must have pure-term arguments and becomes a
		// compound term.
		if te, ok := e.(*ast.TermExpr); ok {
			if c, ok := te.T.(*ast.Const); ok && c.Val.Kind() == term.Str {
				if want, isFn := ast.ExprFns[c.Val.Str()]; isFn {
					if len(args) != want {
						return nil, &Error{Line: pos.Line, Col: pos.Col,
							Msg: fmt.Sprintf("%s expects %d arguments, got %d", c.Val.Str(), want, len(args))}
					}
					e = &ast.CallExpr{Fn: c.Val.Str(), Args: args, Pos: pos}
					continue
				}
			}
		}
		fnTerm, err := exprToTerm(e)
		if err != nil {
			return nil, &Error{Line: pos.Line, Col: pos.Col, Msg: err.Error()}
		}
		termArgs := make([]ast.Term, len(args))
		for i, a := range args {
			ta, err := exprToTerm(a)
			if err != nil {
				return nil, &Error{Line: pos.Line, Col: pos.Col, Msg: err.Error()}
			}
			termArgs[i] = ta
		}
		e = &ast.TermExpr{T: &ast.CompTerm{Fn: fnTerm, Args: termArgs, Pos: pos}}
	}
	return e, nil
}
