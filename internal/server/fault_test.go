package server

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"

	"gluenail"
	"gluenail/internal/storage/fsio"
)

// Server-side failure semantics: a degraded disk store keeps answering
// reads while writes come back with the disk_fault wire code, and the
// client survives a dropped connection on idempotent ops via its bounded
// reconnect (never on non-idempotent ones).

// TestServerDegradedModeServesReads injects a disk fault under a served
// system and checks the wire contract.
func TestServerDegradedModeServesReads(t *testing.T) {
	ffs := fsio.NewFaultFS(fsio.OS)
	sys := gluenail.New(gluenail.WithBackend("disk"), gluenail.WithFS(ffs))
	if err := sys.Load(`edb edge(X,Y); edb big(X,Y);` + "\ntc(X,Y) :- edge(X,Y).\n"); err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startServer(t, Config{System: sys})
	c := dial(t, addr)

	if err := c.Assert("edge", []any{1, 2}, []any{2, 3}); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(fsio.Fault{Op: fsio.OpWrite, Path: "run-", Err: syscall.ENOSPC})

	// A bulk-size write hits the fault: the session must answer with the
	// disk_fault code, not a poisoned or panic code, and must stay up.
	big := make([][]any, 4096)
	for i := range big {
		big[i] = []any{i, i}
	}
	err := c.Assert("big", big...)
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeDiskFault {
		t.Fatalf("faulted assert over the wire: got %v, want code %q", err, CodeDiskFault)
	}

	// Reads keep serving on the same session.
	res, err := c.Query("tc(1, X)")
	if err != nil {
		t.Fatalf("read on degraded store: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("read on degraded store returned nothing")
	}
	if _, err := c.Relation("edge", 2); err != nil {
		t.Fatalf("relation dump on degraded store: %v", err)
	}

	// Every further write is refused with the same typed code.
	err = c.Assert("edge", []any{9, 9})
	if !errors.As(err, &we) || we.Code != CodeDiskFault {
		t.Fatalf("degraded assert: got %v, want code %q", err, CodeDiskFault)
	}
}

// TestClientReconnectIdempotent kills the client's connection out from
// under it and checks an idempotent Query transparently redials while a
// non-idempotent Assert reports a typed ErrConnLost without retrying.
func TestClientReconnectIdempotent(t *testing.T) {
	addr, _, sys := startServer(t, Config{})
	if err := sys.Assert("edge", []any{1, 2}); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)

	// Sever the transport: the next send fails, the reconnect loop dials
	// a fresh session and re-sends.
	c.conn.Close()
	res, err := c.Query("edge(1, X)")
	if err != nil {
		t.Fatalf("query across a dropped connection: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("reconnected query rows = %d, want 1", len(res.Rows))
	}

	// Non-idempotent ops never retry: sever again and Assert must fail
	// typed, leaving the retry decision to the caller.
	c.conn.Close()
	err = c.Assert("edge", []any{3, 4})
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("assert across a dropped connection: got %v, want ErrConnLost", err)
	}
	// The server never saw the write.
	if rows, err := sys.Relation("edge", 2); err != nil || len(rows) != 1 {
		t.Fatalf("non-idempotent op was applied anyway: %v rows, %v", rows, err)
	}

	// The client object recovers for the next idempotent call.
	if _, _, err := c.Stats(); err != nil {
		t.Fatalf("stats after failed assert: %v", err)
	}
}

// TestClientReconnectExhaustion points a client at a dead address and
// checks the bounded retry gives up with ErrConnLost instead of hanging.
func TestClientReconnectExhaustion(t *testing.T) {
	addr, srv, _ := startServer(t, Config{})
	c := dial(t, addr)
	// Stop the server so redials fail outright.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	c.conn.Close()

	start := time.Now()
	_, err := c.Query("edge(1, X)")
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("query against dead server: got %v, want ErrConnLost", err)
	}
	// Backoff is bounded: 4 attempts at 10ms base must finish well under
	// the cap-sized worst case.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("reconnect exhaustion took %v", elapsed)
	}
}
