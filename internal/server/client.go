package server

import (
	"fmt"
	"net"
	"time"

	"gluenail"
	"gluenail/internal/term"
)

// Client is a minimal gluenaild client for tests, benchmarks, and the
// examples: synchronous request/response over one connection. It is not
// safe for concurrent use — open one client per concurrent session,
// exactly as the server models it.
type Client struct {
	conn   net.Conn
	nextID uint64
}

// QueryResult is a decoded query answer.
type QueryResult struct {
	Vars []string
	Rows [][]term.Value
	// CSN is the snapshot the query executed at.
	CSN uint64
}

// Dial connects to a gluenaild server and performs the hello handshake.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	if _, err := c.roundTrip(&Request{Op: "hello"}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close ends the session and closes the connection.
func (c *Client) Close() error {
	_, _ = c.roundTrip(&Request{Op: "close"})
	return c.conn.Close()
}

// roundTrip sends one request and reads its response, surfacing wire
// errors as *WireError.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.nextID++
	req.ID = c.nextID
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("server: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		if resp.Err == nil {
			return nil, fmt.Errorf("server: failure without error payload")
		}
		return nil, resp.Err
	}
	return &resp, nil
}

func decodeResult(resp *Response) (*QueryResult, error) {
	res := &QueryResult{Vars: resp.Vars, CSN: resp.CSN}
	res.Rows = make([][]term.Value, len(resp.Rows))
	for i, row := range resp.Rows {
		r := make([]term.Value, len(row))
		for j, w := range row {
			v, err := DecodeValue(w)
			if err != nil {
				return nil, err
			}
			r[j] = v
		}
		res.Rows[i] = r
	}
	return res, nil
}

// Query evaluates a goal conjunction on a server-side snapshot.
func (c *Client) Query(goals string) (*QueryResult, error) {
	resp, err := c.roundTrip(&Request{Op: "query", Goals: goals})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Prepare compiles a query server-side under a session-scoped name.
func (c *Client) Prepare(name, goals string) ([]string, error) {
	resp, err := c.roundTrip(&Request{Op: "prepare", Name: name, Goals: goals})
	if err != nil {
		return nil, err
	}
	return resp.Vars, nil
}

// Execute runs a prepared query on a server-side snapshot.
func (c *Client) Execute(name string) (*QueryResult, error) {
	resp, err := c.roundTrip(&Request{Op: "execute", Name: name})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Begin opens a read transaction: every read until End answers from one
// pinned snapshot, regardless of concurrent commits. Returns the
// snapshot's CSN.
func (c *Client) Begin() (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: "begin"})
	if err != nil {
		return 0, err
	}
	return resp.CSN, nil
}

// End closes the read transaction.
func (c *Client) End() error {
	_, err := c.roundTrip(&Request{Op: "end"})
	return err
}

// encodeAnyRows converts Go rows to wire rows via the term conversions.
func encodeAnyRows(rows [][]any) ([][]WireValue, error) {
	out := make([][]WireValue, len(rows))
	for i, row := range rows {
		r := make([]WireValue, len(row))
		for j, v := range row {
			switch v := v.(type) {
			case int:
				r[j] = WireValue{K: "i", I: int64(v)}
			case int64:
				r[j] = WireValue{K: "i", I: v}
			case float64:
				r[j] = EncodeValue(gluenail.Float(v))
			case string:
				r[j] = WireValue{K: "s", S: v}
			case term.Value:
				r[j] = EncodeValue(v)
			default:
				return nil, fmt.Errorf("server: cannot encode %T", v)
			}
		}
		out[i] = r
	}
	return out, nil
}

// Assert inserts EDB facts through the live system.
func (c *Client) Assert(relation string, rows ...[]any) error {
	wr, err := encodeAnyRows(rows)
	if err != nil {
		return err
	}
	rel := WireValue{K: "s", S: relation}
	_, err = c.roundTrip(&Request{Op: "assert", Rel: &rel, Rows: wr})
	return err
}

// Retract deletes EDB facts through the live system.
func (c *Client) Retract(relation string, rows ...[]any) error {
	wr, err := encodeAnyRows(rows)
	if err != nil {
		return err
	}
	rel := WireValue{K: "s", S: relation}
	_, err = c.roundTrip(&Request{Op: "retract", Rel: &rel, Rows: wr})
	return err
}

// Load loads Glue/NAIL! source into the system.
func (c *Client) Load(src string) error {
	_, err := c.roundTrip(&Request{Op: "load", Src: src})
	return err
}

// Relation dumps an EDB relation (sorted) from a snapshot.
func (c *Client) Relation(relation string, arity int) (*QueryResult, error) {
	rel := WireValue{K: "s", S: relation}
	resp, err := c.roundTrip(&Request{Op: "relation", Rel: &rel, Arity: arity})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Stats fetches server counters and the current CSN.
func (c *Client) Stats() (map[string]int64, uint64, error) {
	resp, err := c.roundTrip(&Request{Op: "stats"})
	if err != nil {
		return nil, 0, err
	}
	return resp.Counters, resp.CSN, nil
}
