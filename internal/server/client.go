package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"gluenail"
	"gluenail/internal/term"
)

// ErrConnLost is the typed failure for a dropped server connection: every
// transport-level error (dial, write, read, EOF) surfaces wrapped in it,
// so callers classify with errors.Is instead of matching io.EOF or
// net.OpError by hand. Idempotent reads (hello, query, relation, stats)
// retry through a bounded reconnect first and only report ErrConnLost
// once the retries are exhausted; writes and session-stateful ops never
// retry — the caller must decide whether re-issuing is safe.
var ErrConnLost = errors.New("server: connection lost")

// Reconnect policy: attempts are spaced by an exponential backoff with
// jitter so a restarting server is not hammered in lockstep by every
// client.
const (
	reconnectAttempts = 4
	backoffBase       = 10 * time.Millisecond
	backoffCap        = time.Second
)

// Client is a minimal gluenaild client for tests, benchmarks, and the
// examples: synchronous request/response over one connection. It is not
// safe for concurrent use — open one client per concurrent session,
// exactly as the server models it.
type Client struct {
	conn    net.Conn
	nextID  uint64
	addr    string
	timeout time.Duration
	// noReconnect disables the idempotent-op reconnect loop (tests that
	// assert on first-failure behavior).
	noReconnect bool
}

// QueryResult is a decoded query answer.
type QueryResult struct {
	Vars []string
	Rows [][]term.Value
	// CSN is the snapshot the query executed at.
	CSN uint64
}

// Dial connects to a gluenaild server and performs the hello handshake.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, addr: addr, timeout: timeout}
	if _, err := c.send(&Request{Op: "hello"}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close ends the session and closes the connection.
func (c *Client) Close() error {
	_, _ = c.send(&Request{Op: "close"})
	return c.conn.Close()
}

// send performs one request/response exchange on the current connection,
// surfacing wire errors as *WireError and transport failures raw.
func (c *Client) send(req *Request) (*Response, error) {
	c.nextID++
	req.ID = c.nextID
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("server: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		if resp.Err == nil {
			return nil, fmt.Errorf("server: failure without error payload")
		}
		return nil, resp.Err
	}
	return &resp, nil
}

// isWireErr reports whether err is a server-reported failure (the request
// arrived and was answered) as opposed to a transport failure.
func isWireErr(err error) bool {
	var we *WireError
	return errors.As(err, &we)
}

// roundTrip is the exchange for non-idempotent operations (writes, loads,
// prepare/execute, begin/end): a transport failure is never retried —
// the request may or may not have been applied server-side, so only the
// caller can decide whether re-issuing is safe — and surfaces as a typed
// ErrConnLost instead of a raw io.EOF or net error.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	resp, err := c.send(req)
	if err != nil && !isWireErr(err) {
		return nil, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return resp, err
}

// roundTripIdempotent is the exchange for idempotent reads (hello, query,
// relation, stats): a transport failure triggers a bounded reconnect —
// exponential backoff with jitter, a fresh dial, a new hello handshake —
// and one re-send per attempt. Reconnecting opens a new server session,
// which is sound exactly because these operations carry no session state.
func (c *Client) roundTripIdempotent(req *Request) (*Response, error) {
	resp, err := c.send(req)
	if c.noReconnect {
		return c.finish(resp, err)
	}
	for attempt := 0; err != nil && !isWireErr(err) && attempt < reconnectAttempts; attempt++ {
		time.Sleep(backoff(attempt))
		if derr := c.redial(); derr != nil {
			err = derr
			continue
		}
		resp, err = c.send(req)
	}
	return c.finish(resp, err)
}

// finish types any remaining transport failure as ErrConnLost.
func (c *Client) finish(resp *Response, err error) (*Response, error) {
	if err != nil && !isWireErr(err) {
		return nil, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return resp, err
}

// backoff returns the pause before reconnect attempt n: an exponential
// base with up to 50% random jitter, capped at backoffCap.
func backoff(n int) time.Duration {
	d := backoffBase << n
	if d > backoffCap {
		d = backoffCap
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// redial replaces the connection with a fresh dial + hello handshake.
func (c *Client) redial() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	old := c.conn
	c.conn = conn
	if old != nil {
		old.Close()
	}
	if _, err := c.send(&Request{Op: "hello"}); err != nil {
		conn.Close()
		return err
	}
	return nil
}

func decodeResult(resp *Response) (*QueryResult, error) {
	res := &QueryResult{Vars: resp.Vars, CSN: resp.CSN}
	res.Rows = make([][]term.Value, len(resp.Rows))
	for i, row := range resp.Rows {
		r := make([]term.Value, len(row))
		for j, w := range row {
			v, err := DecodeValue(w)
			if err != nil {
				return nil, err
			}
			r[j] = v
		}
		res.Rows[i] = r
	}
	return res, nil
}

// Query evaluates a goal conjunction on a server-side snapshot.
func (c *Client) Query(goals string) (*QueryResult, error) {
	resp, err := c.roundTripIdempotent(&Request{Op: "query", Goals: goals})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Prepare compiles a query server-side under a session-scoped name.
func (c *Client) Prepare(name, goals string) ([]string, error) {
	resp, err := c.roundTrip(&Request{Op: "prepare", Name: name, Goals: goals})
	if err != nil {
		return nil, err
	}
	return resp.Vars, nil
}

// Execute runs a prepared query on a server-side snapshot.
func (c *Client) Execute(name string) (*QueryResult, error) {
	resp, err := c.roundTrip(&Request{Op: "execute", Name: name})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Begin opens a read transaction: every read until End answers from one
// pinned snapshot, regardless of concurrent commits. Returns the
// snapshot's CSN.
func (c *Client) Begin() (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: "begin"})
	if err != nil {
		return 0, err
	}
	return resp.CSN, nil
}

// End closes the read transaction.
func (c *Client) End() error {
	_, err := c.roundTrip(&Request{Op: "end"})
	return err
}

// encodeAnyRows converts Go rows to wire rows via the term conversions.
func encodeAnyRows(rows [][]any) ([][]WireValue, error) {
	out := make([][]WireValue, len(rows))
	for i, row := range rows {
		r := make([]WireValue, len(row))
		for j, v := range row {
			switch v := v.(type) {
			case int:
				r[j] = WireValue{K: "i", I: int64(v)}
			case int64:
				r[j] = WireValue{K: "i", I: v}
			case float64:
				r[j] = EncodeValue(gluenail.Float(v))
			case string:
				r[j] = WireValue{K: "s", S: v}
			case term.Value:
				r[j] = EncodeValue(v)
			default:
				return nil, fmt.Errorf("server: cannot encode %T", v)
			}
		}
		out[i] = r
	}
	return out, nil
}

// Assert inserts EDB facts through the live system.
func (c *Client) Assert(relation string, rows ...[]any) error {
	wr, err := encodeAnyRows(rows)
	if err != nil {
		return err
	}
	rel := WireValue{K: "s", S: relation}
	_, err = c.roundTrip(&Request{Op: "assert", Rel: &rel, Rows: wr})
	return err
}

// Retract deletes EDB facts through the live system.
func (c *Client) Retract(relation string, rows ...[]any) error {
	wr, err := encodeAnyRows(rows)
	if err != nil {
		return err
	}
	rel := WireValue{K: "s", S: relation}
	_, err = c.roundTrip(&Request{Op: "retract", Rel: &rel, Rows: wr})
	return err
}

// Load loads Glue/NAIL! source into the system.
func (c *Client) Load(src string) error {
	_, err := c.roundTrip(&Request{Op: "load", Src: src})
	return err
}

// Relation dumps an EDB relation (sorted) from a snapshot.
func (c *Client) Relation(relation string, arity int) (*QueryResult, error) {
	rel := WireValue{K: "s", S: relation}
	resp, err := c.roundTripIdempotent(&Request{Op: "relation", Rel: &rel, Arity: arity})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Stats fetches server counters and the current CSN.
func (c *Client) Stats() (map[string]int64, uint64, error) {
	resp, err := c.roundTripIdempotent(&Request{Op: "stats"})
	if err != nil {
		return nil, 0, err
	}
	return resp.Counters, resp.CSN, nil
}
