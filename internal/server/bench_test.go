package server

// Benchmarks for the E16 workload's building blocks: wire round-trip
// latency for snapshot reads, the prepared-execute hot path, and mixed
// sessions with a concurrent writer. `glbench -e E16` measures the full
// sustained-QPS/p99 sweep and records BENCH_E16.json; these track the
// per-op costs behind it.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gluenail"
)

// benchServer starts a server over a tc chain and returns its address.
func benchServer(b *testing.B, chain int) string {
	b.Helper()
	sys := gluenail.New()
	if err := sys.Load(tcProgram); err != nil {
		b.Fatal(err)
	}
	rows := make([][]any, chain)
	for i := range rows {
		rows[i] = []any{i + 1, i + 2}
	}
	if err := sys.Assert("edge", rows...); err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{System: sys})
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return lis.Addr().String()
}

// BenchmarkServerQueryRoundTrip: one session, autocommit recursive reads
// — each op takes a fresh snapshot, runs tc(1,X), and frames the answer.
func BenchmarkServerQueryRoundTrip(b *testing.B) {
	addr := benchServer(b, 64)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("tc(1,X)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerExecutePrepared: the server hot path — compile once,
// execute many times on fresh snapshots.
func BenchmarkServerExecutePrepared(b *testing.B) {
	addr := benchServer(b, 64)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Prepare("q", "tc(1,X)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Execute("q"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerMixedSessions: n pinned reader sessions sharing the
// statement gate while a writer churns a disjoint component; reports
// reader ops. The per-op time is the latency a reader sees under
// contention — E16's p50, in benchmark clothing.
func BenchmarkServerMixedSessions(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", n), func(b *testing.B) {
			addr := benchServer(b, 64)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // writer: assert/retract cycle far from the readers
				defer wg.Done()
				c, err := Dial(addr, 2*time.Second)
				if err != nil {
					return
				}
				defer c.Close()
				for i := int64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := int64(100000 + i%64)
					_ = c.Assert("edge", []any{k, k + 1})
					_ = c.Retract("edge", []any{k, k + 1})
				}
			}()

			readers := make([]*Client, n)
			for i := range readers {
				c, err := Dial(addr, 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if _, err := c.Begin(); err != nil {
					b.Fatal(err)
				}
				readers[i] = c
			}
			b.ResetTimer()
			// Round-robin the sessions so all n stay pinned and active.
			var rwg sync.WaitGroup
			per := b.N / n
			for _, c := range readers {
				rwg.Add(1)
				go func(c *Client) {
					defer rwg.Done()
					for i := 0; i < per; i++ {
						if _, err := c.Query("tc(1,X)"); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			rwg.Wait()
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}
