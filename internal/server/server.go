package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"gluenail"
)

// Config tunes a Server. The zero value of every field picks a sensible
// default; System is required.
type Config struct {
	// System is the database the server fronts. The server owns its use
	// (sessions write through it and snapshot from it) but not its
	// lifecycle: the caller still Checkpoints/Closes it after Shutdown.
	System *gluenail.System
	// SessionBudget is the per-session QoS budget: every statement a
	// session runs is governed by these limits (zero value = the
	// system's configured budget).
	SessionBudget gluenail.Budget
	// MaxSessions caps concurrent connections; further connects are
	// turned away with an admission error (0 = 1024).
	MaxSessions int
	// MaxStatements caps statements executing at once across all
	// sessions — the admission gate. Excess statements queue on the
	// gate (FIFO by goroutine wakeup) rather than failing (0 =
	// 2×GOMAXPROCS).
	MaxStatements int
	// Workers is the morsel-worker pool the active statements share
	// fairly: each executing read gets max(1, Workers/active) workers
	// (0 = GOMAXPROCS).
	Workers int
	// Logf, when non-nil, receives one line per session lifecycle event
	// and per accept/serve error.
	Logf func(format string, args ...any)
}

// Server accepts gluenaild sessions over a listener. Reads execute on
// MVCC snapshots concurrently; writes serialize through the System.
// Shutdown drains in-flight statements (the governor cancels stragglers)
// and closes every session.
type Server struct {
	cfg Config

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	sessions int
	nextID   uint64

	admit    chan struct{} // admission gate: one slot per executing statement
	active   atomic.Int64  // executing statements, for fair worker sharing
	totals   counters
	draining atomic.Bool
	// stmts tracks in-flight statements so Shutdown can drain them;
	// connWG tracks session goroutines so Shutdown can join them.
	stmts  sync.WaitGroup
	connWG sync.WaitGroup
	// baseCtx parents every statement context; cancelBase aborts
	// stragglers through the governor when the drain deadline passes.
	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// counters aggregates server-lifetime statistics, reported by the stats
// op.
type counters struct {
	statements atomic.Int64
	reads      atomic.Int64
	writes     atomic.Int64
	errors     atomic.Int64
	sessions   atomic.Int64
}

// New creates a server over cfg.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("server: Config.System is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.MaxStatements <= 0 {
		cfg.MaxStatements = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		conns:      make(map[net.Conn]struct{}),
		admit:      make(chan struct{}, cfg.MaxStatements),
		baseCtx:    ctx,
		cancelBase: cancel,
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts sessions on lis until Shutdown (or a permanent accept
// error). It blocks; run it on its own goroutine.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() || s.sessions >= s.cfg.MaxSessions {
			code := CodeShutdown
			if !s.draining.Load() {
				code = CodeAdmission
			}
			s.mu.Unlock()
			_ = WriteFrame(conn, &Response{Err: &WireError{
				Code: code, Message: "server not accepting sessions"}})
			conn.Close()
			continue
		}
		s.sessions++
		s.nextID++
		id := s.nextID
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.totals.sessions.Add(1)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			sess := newSession(s, conn, id)
			sess.serve()
			s.mu.Lock()
			delete(s.conns, conn)
			s.sessions--
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Shutdown drains the server: stop accepting, reject new statements,
// wait for in-flight statements up to ctx's deadline, cancel stragglers
// through the governor, then close every connection and join the session
// goroutines. Safe to call once; the System is left quiescent for the
// caller to checkpoint and close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	// Drain in-flight statements; past the deadline, cancel them (the
	// governor aborts each at its next cooperative check, discarding the
	// interrupted statement's WAL deltas).
	done := make(chan struct{})
	go func() { s.stmts.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.logf("shutdown: drain deadline passed, cancelling in-flight statements")
		s.cancelBase()
		<-done
		err = ctx.Err()
	}
	s.cancelBase()

	// All statements finished: sever the sessions (unblocks reads) and
	// join their goroutines.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return err
}

// beginStatement passes the admission gate and registers an in-flight
// statement: the returned context governs it, and done must run when it
// finishes. A draining server, a cancelled caller context, or a closed
// gate admits nothing.
func (s *Server) beginStatement(ctx context.Context) (context.Context, func(), *WireError) {
	if s.draining.Load() {
		return nil, nil, &WireError{Code: CodeShutdown, Message: "server is shutting down"}
	}
	select {
	case s.admit <- struct{}{}:
	case <-ctx.Done():
		return nil, nil, &WireError{Code: CodeCanceled, Message: "statement cancelled while queued for admission"}
	case <-s.baseCtx.Done():
		return nil, nil, &WireError{Code: CodeShutdown, Message: "server is shutting down"}
	}
	if s.draining.Load() {
		<-s.admit
		return nil, nil, &WireError{Code: CodeShutdown, Message: "server is shutting down"}
	}
	s.stmts.Add(1)
	s.active.Add(1)
	s.totals.statements.Add(1)
	stmtCtx, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(s.baseCtx, cancel)
	done := func() {
		stop()
		cancel()
		s.active.Add(-1)
		s.stmts.Done()
		<-s.admit
	}
	return stmtCtx, done, nil
}

// fairShare returns the morsel workers one statement may use right now:
// the pool divided by the executing statements, never below one.
func (s *Server) fairShare() int {
	n := int(s.active.Load())
	if n < 1 {
		n = 1
	}
	share := s.cfg.Workers / n
	if share < 1 {
		share = 1
	}
	return share
}

// ErrServerClosed reports an operation on a draining server.
var ErrServerClosed = errors.New("server: shutting down")
