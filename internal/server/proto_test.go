package server

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gluenail"
	"gluenail/internal/term"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare checks got against testdata/<name>.golden, rewriting it
// under -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// hexDump renders one frame as "length-hex payload-json" lines so the
// golden file is both byte-exact and reviewable.
func hexDump(frame []byte) string {
	return fmt.Sprintf("%s %s\n", hex.EncodeToString(frame[:4]), frame[4:])
}

// TestFramingGolden locks the wire representation of representative
// requests and responses: the 4-byte big-endian length prefix and the
// exact JSON payload.
func TestFramingGolden(t *testing.T) {
	comp := EncodeValue(term.Atom("students", term.Intern("cs99")))
	msgs := []any{
		&Request{Op: "hello", ID: 1},
		&Request{Op: "query", ID: 2, Goals: "tc(1,X)"},
		&Request{Op: "prepare", ID: 3, Name: "q1", Goals: "tc(X,Y)", Module: "main"},
		&Request{Op: "execute", ID: 4, Name: "q1"},
		&Request{Op: "begin", ID: 5},
		&Request{Op: "end", ID: 6},
		&Request{Op: "assert", ID: 7,
			Rel:  &WireValue{K: "s", S: "edge"},
			Rows: [][]WireValue{{{K: "i", I: 1}, {K: "i", I: 2}}}},
		&Request{Op: "retract", ID: 8,
			Rel:  &WireValue{K: "s", S: "edge"},
			Rows: [][]WireValue{{{K: "i", I: 1}, {K: "i", I: 2}}}},
		&Request{Op: "relation", ID: 9, Rel: &comp, Arity: 2},
		&Request{Op: "load", ID: 10, Src: "edb p(X);"},
		&Request{Op: "stats", ID: 11},
		&Request{Op: "close", ID: 12},
		&Response{ID: 2, OK: true, Vars: []string{"X"},
			Rows: [][]WireValue{{{K: "i", I: 2}}, {{K: "i", I: 3}}}, CSN: 7},
		&Response{ID: 4, Err: &WireError{Code: CodeTimeout,
			Message: "execution deadline exceeded", Proc: "main.$query1", Stmt: "s1"}},
	}
	var sb strings.Builder
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
		sb.WriteString(hexDump(buf.Bytes()))
	}
	goldenCompare(t, "frames", sb.String())
}

// TestFrameRoundTrip: WriteFrame output reads back identically, and the
// length prefix matches the payload.
func TestFrameRoundTrip(t *testing.T) {
	req := &Request{Op: "query", ID: 42, Goals: "tc(1,X)"}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if n := binary.BigEndian.Uint32(raw[:4]); int(n) != len(raw)-4 {
		t.Fatalf("length prefix %d, payload %d", n, len(raw)-4)
	}
	var got Request
	if err := ReadFrame(bytes.NewReader(raw), &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.ID != req.ID || got.Goals != req.Goals {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestFrameTooLarge: an announced length beyond MaxFrame is rejected
// without allocating it.
func TestFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var v any
	if err := ReadFrame(bytes.NewReader(hdr[:]), &v); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestErrorMappingGolden locks the wire code for every GovernorError
// sentinel plus the plain-error fallback.
func TestErrorMappingGolden(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"canceled", &gluenail.GovernorError{Limit: gluenail.ErrCanceled, Proc: "main.p", Stmt: "s2"}},
		{"timeout", &gluenail.GovernorError{Limit: gluenail.ErrTimeout, Proc: "main.p"}},
		{"memory_budget", &gluenail.GovernorError{Limit: gluenail.ErrMemoryBudget, Detail: "10000 tuples > budget 100"}},
		{"depth_limit", &gluenail.GovernorError{Limit: gluenail.ErrDepthLimit}},
		{"loop_limit", &gluenail.GovernorError{Limit: gluenail.ErrLoopLimit, Stmt: "repeat@3"}},
		{"panic", &gluenail.GovernorError{Limit: gluenail.ErrPanic, Detail: "index out of range"}},
		{"poisoned", &gluenail.GovernorError{Limit: gluenail.ErrPoisoned}},
		{"plain", errors.New("no procedure main.nope")},
	}
	var sb strings.Builder
	for _, c := range cases {
		we := ToWireError(c.err)
		fmt.Fprintf(&sb, "%s: code=%s proc=%q stmt=%q message=%q\n",
			c.name, we.Code, we.Proc, we.Stmt, we.Message)
	}
	goldenCompare(t, "errors", sb.String())
}

// TestWireValueRoundTrip covers every kind, including float bit patterns
// JSON numbers cannot carry.
func TestWireValueRoundTrip(t *testing.T) {
	vals := []term.Value{
		term.NewInt(0),
		term.NewInt(-9007199254740993), // beyond float53: JSON numbers would mangle it
		term.NewFloat(3.14159),
		term.NewFloat(math.NaN()),
		term.NewFloat(math.Inf(1)),
		term.NewFloat(math.Inf(-1)),
		term.NewFloat(math.Copysign(0, -1)),
		term.Intern("hello world"),
		term.Intern(""),
		term.Atom("students", term.Intern("cs99")),
		term.NewCompound(term.Atom("f", term.NewInt(1)), term.NewInt(2)), // compound functor
	}
	for _, v := range vals {
		w := EncodeValue(v)
		got, err := DecodeValue(w)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		// NaN != NaN, so compare the canonical renderings.
		if got.String() != v.String() {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

// TestWireValueBadInput: malformed wire values fail cleanly.
func TestWireValueBadInput(t *testing.T) {
	for _, w := range []WireValue{
		{K: "x"},
		{K: "f", F: "not-a-float"},
		{K: "c"}, // compound without functor
	} {
		if _, err := DecodeValue(w); err == nil {
			t.Fatalf("decoded invalid %+v", w)
		}
	}
}
