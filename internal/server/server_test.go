package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gluenail"
)

const tcProgram = `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`

// startServer spins up a server over a fresh System on a loopback
// listener and tears both down with the test.
func startServer(t *testing.T, cfg Config) (addr string, srv *Server, sys *gluenail.System) {
	t.Helper()
	if cfg.System == nil {
		cfg.System = gluenail.New()
		if err := cfg.System.Load(tcProgram); err != nil {
			t.Fatal(err)
		}
	}
	sys = cfg.System
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return lis.Addr().String(), srv, sys
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// fmtRows renders a result canonically for byte-identity checks.
func fmtRows(res *QueryResult) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Vars, ","))
	for _, row := range res.Rows {
		sb.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}

func assertChain(t *testing.T, c *Client, from, n int64) {
	t.Helper()
	rows := make([][]any, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, []any{from + i, from + i + 1})
	}
	if err := c.Assert("edge", rows...); err != nil {
		t.Fatal(err)
	}
}

func TestServerRoundTrip(t *testing.T) {
	addr, _, _ := startServer(t, Config{})
	c := dial(t, addr)
	assertChain(t, c, 1, 4)

	res, err := c.Query("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Vars[0] != "X" {
		t.Fatalf("tc(1,X) = %s", fmtRows(res))
	}

	// Prepared round trip.
	vars, err := c.Prepare("q1", "tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 || vars[0] != "X" {
		t.Fatalf("prepare vars = %v", vars)
	}
	res2, err := c.Execute("q1")
	if err != nil {
		t.Fatal(err)
	}
	if fmtRows(res2) != fmtRows(res) {
		t.Fatal("prepared result differs from direct query")
	}

	// Retract shrinks the closure.
	if err := c.Retract("edge", []any{4, 5}); err != nil {
		t.Fatal(err)
	}
	res3, err := c.Execute("q1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Rows) != 3 {
		t.Fatalf("after retract: %s", fmtRows(res3))
	}

	// Relation dump.
	rel, err := c.Relation("edge", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("edge has %d rows", len(rel.Rows))
	}

	// Stats.
	counters, csn, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if counters["reads"] == 0 || counters["writes"] == 0 || csn == 0 {
		t.Fatalf("stats: %v csn=%d", counters, csn)
	}
}

// TestServerSnapshotIsolationOverWire: a read transaction pins one
// snapshot; commits from another session never change its answers.
func TestServerSnapshotIsolationOverWire(t *testing.T) {
	addr, _, _ := startServer(t, Config{})
	reader := dial(t, addr)
	writer := dial(t, addr)
	assertChain(t, writer, 1, 5)

	csn, err := reader.Begin()
	if err != nil {
		t.Fatal(err)
	}
	res, err := reader.Query("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	if res.CSN != csn {
		t.Fatalf("read at CSN %d inside transaction pinned at %d", res.CSN, csn)
	}
	before := fmtRows(res)

	assertChain(t, writer, 6, 3) // extends the chain
	if err := writer.Retract("edge", []any{1, 2}); err != nil {
		t.Fatal(err)
	}

	res, err = reader.Query("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	if got := fmtRows(res); got != before {
		t.Fatalf("isolation violation inside txn:\nbefore:\n%s\nafter:\n%s", before, got)
	}

	if err := reader.End(); err != nil {
		t.Fatal(err)
	}
	// Autocommit read now sees the writer's state.
	res, err = reader.Query("tc(1,X)")
	if err != nil {
		t.Fatal(err)
	}
	if fmtRows(res) == before {
		t.Fatal("post-transaction read still sees the old state")
	}
}

// TestServerWriteInReadTxnRejected: every write op bounces inside
// begin/end with the read_only_txn code.
func TestServerWriteInReadTxnRejected(t *testing.T) {
	addr, _, _ := startServer(t, Config{})
	c := dial(t, addr)
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	for _, try := range []func() error{
		func() error { return c.Assert("edge", []any{1, 2}) },
		func() error { return c.Retract("edge", []any{1, 2}) },
		func() error { return c.Load("edb extra(X);") },
	} {
		err := try()
		var we *WireError
		if !errors.As(err, &we) || we.Code != CodeReadOnlyTxn {
			t.Fatalf("write in read txn: got %v, want code %s", err, CodeReadOnlyTxn)
		}
	}
	if err := c.End(); err != nil {
		t.Fatal(err)
	}
	if err := c.Assert("edge", []any{1, 2}); err != nil {
		t.Fatal(err)
	}
}

// TestServerConcurrentSessions drives parallel readers (pinned
// transactions byte-comparing their answers) against a concurrent
// writer: the acceptance scenario, over the wire, race-detected.
func TestServerConcurrentSessions(t *testing.T) {
	addr, _, _ := startServer(t, Config{Workers: 4})
	seed := dial(t, addr)
	assertChain(t, seed, 1, 20)
	assertChain(t, seed, 1000, 5)

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Begin(); err != nil {
				errs <- err
				return
			}
			res, err := c.Query("tc(1,X)")
			if err != nil {
				errs <- err
				return
			}
			want := fmtRows(res)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := c.Query("tc(1,X)")
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d: %v", r, i, err)
					return
				}
				if got := fmtRows(res); got != want {
					errs <- fmt.Errorf("reader %d iter %d: isolation violation", r, i)
					return
				}
			}
		}(r)
	}
	// Writer churns the disjoint component.
	for i := int64(0); i < 40; i++ {
		if err := seed.Assert("edge", []any{2000 + i, 2001 + i}); err != nil {
			errs <- err
			break
		}
		if err := seed.Retract("edge", []any{1000 + i%5, 1001 + i%5}); err != nil {
			errs <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestServerSessionBudget: the per-session governor budget maps to a
// typed wire error.
func TestServerSessionBudget(t *testing.T) {
	sys := gluenail.New()
	if err := sys.Load(tcProgram); err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startServer(t, Config{
		System:        sys,
		SessionBudget: gluenail.Budget{MaxTuples: 50},
	})
	c := dial(t, addr)
	assertChain(t, c, 1, 30)

	_, err := c.Query("tc(X,Y)") // closure of a 30-chain: 465 tuples
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeMemoryBudget {
		t.Fatalf("budgeted query: got %v, want code %s", err, CodeMemoryBudget)
	}
	// Small queries still fit the budget.
	if _, err := c.Query("edge(1,X)"); err != nil {
		t.Fatal(err)
	}
}

// TestServerSessionCap: connections past MaxSessions are turned away.
func TestServerSessionCap(t *testing.T) {
	addr, _, _ := startServer(t, Config{MaxSessions: 1})
	_ = dial(t, addr) // occupies the only slot
	if _, err := Dial(addr, 2*time.Second); err == nil {
		t.Fatal("second session admitted past MaxSessions=1")
	}
}

// TestServerBadRequests: malformed operands map to bad_request without
// killing the session.
func TestServerBadRequests(t *testing.T) {
	addr, _, _ := startServer(t, Config{})
	c := dial(t, addr)
	for _, req := range []*Request{
		{Op: "query"},
		{Op: "execute", Name: "nope"},
		{Op: "end"},
		{Op: "assert"},
		{Op: "frobnicate"},
	} {
		_, err := c.roundTrip(req)
		var we *WireError
		if !errors.As(err, &we) || we.Code != CodeBadRequest {
			t.Fatalf("%s: got %v, want code %s", req.Op, err, CodeBadRequest)
		}
	}
	// The session still works.
	if err := c.Assert("edge", []any{1, 2}); err != nil {
		t.Fatal(err)
	}
	// A parse error in goals maps to query_error.
	_, err := c.Query("tc(1,")
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeQueryError {
		t.Fatalf("parse error: got %v, want code %s", err, CodeQueryError)
	}
}
