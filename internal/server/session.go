package server

import (
	"context"
	"fmt"
	"net"
	"strconv"

	"gluenail"
)

// Version identifies the protocol revision in the hello response.
const Version = "1"

// session is one client connection: a request/response loop with
// session-scoped state — an optional pinned snapshot (read transaction)
// and named prepared queries. One goroutine per session; statements from
// one session execute sequentially, statements from different sessions
// concurrently.
type session struct {
	srv  *Server
	conn net.Conn
	id   uint64
	// snap pins a snapshot between begin and end; outside a transaction
	// every read takes (and drops) a fresh snapshot, so autocommit reads
	// always see the latest committed state.
	snap     *gluenail.Snapshot
	prepared map[string]*gluenail.Prepared
	budget   gluenail.Budget
}

func newSession(s *Server, conn net.Conn, id uint64) *session {
	return &session{
		srv:      s,
		conn:     conn,
		id:       id,
		prepared: make(map[string]*gluenail.Prepared),
		budget:   s.cfg.SessionBudget,
	}
}

// serve runs the request loop until the peer disconnects, sends close,
// or the server severs the connection during shutdown.
func (c *session) serve() {
	defer func() {
		if c.snap != nil {
			c.snap.Close()
			c.snap = nil
		}
	}()
	for {
		var req Request
		if err := ReadFrame(c.conn, &req); err != nil {
			return // disconnect, shutdown, or a framing error: drop the session
		}
		resp := c.dispatch(&req)
		resp.ID = req.ID
		if !resp.OK {
			c.srv.totals.errors.Add(1)
		}
		if err := WriteFrame(c.conn, resp); err != nil {
			return
		}
		if req.Op == "close" {
			return
		}
	}
}

// dispatch executes one request and shapes its response.
func (c *session) dispatch(req *Request) *Response {
	switch req.Op {
	case "hello":
		return &Response{OK: true, Server: "gluenaild", CSN: c.srv.cfg.System.CSN(),
			Info: map[string]string{
				"version":  Version,
				"session":  strconv.FormatUint(c.id, 10),
				"workers":  strconv.Itoa(c.srv.cfg.Workers),
				"max_stmt": strconv.Itoa(c.srv.cfg.MaxStatements),
			}}
	case "query":
		if req.Goals == "" {
			return badRequest("query requires goals")
		}
		return c.read(func(ctx context.Context, snap *gluenail.Snapshot) (*gluenail.Result, error) {
			return snap.QueryInContext(ctx, moduleOf(req), req.Goals)
		})
	case "prepare":
		if req.Name == "" || req.Goals == "" {
			return badRequest("prepare requires name and goals")
		}
		p, err := c.srv.cfg.System.PrepareIn(moduleOf(req), req.Goals)
		if err != nil {
			return fail(err)
		}
		c.prepared[req.Name] = p
		return &Response{OK: true, Vars: p.Vars()}
	case "execute":
		p := c.prepared[req.Name]
		if p == nil {
			return badRequest(fmt.Sprintf("no prepared query %q", req.Name))
		}
		return c.read(func(ctx context.Context, snap *gluenail.Snapshot) (*gluenail.Result, error) {
			return snap.ExecuteContext(ctx, p)
		})
	case "begin":
		if c.snap != nil {
			return badRequest("transaction already open")
		}
		snap, err := c.openSnapshot()
		if err != nil {
			return fail(err)
		}
		c.snap = snap
		return &Response{OK: true, CSN: snap.CSN()}
	case "end":
		if c.snap == nil {
			return badRequest("no open transaction")
		}
		c.snap.Close()
		c.snap = nil
		return &Response{OK: true}
	case "assert", "retract":
		return c.write(req)
	case "load":
		if c.snap != nil {
			return readOnlyTxn()
		}
		if req.Src == "" {
			return badRequest("load requires src")
		}
		ctx, done, werr := c.srv.beginStatement(context.Background())
		if werr != nil {
			return &Response{Err: werr}
		}
		defer done()
		c.srv.totals.writes.Add(1)
		if err := c.srv.cfg.System.LoadContext(ctx, req.Src); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case "relation":
		if req.Rel == nil {
			return badRequest("relation requires rel")
		}
		name, err := DecodeValue(*req.Rel)
		if err != nil {
			return fail(err)
		}
		// A pinned snapshot answers from its capture; otherwise a fresh
		// snapshot gives the latest committed state.
		snap := c.snap
		if snap == nil {
			var err error
			snap, err = c.openSnapshot()
			if err != nil {
				return fail(err)
			}
			defer snap.Close()
		}
		rows, err := snap.Relation(name, req.Arity)
		if err != nil {
			return fail(err)
		}
		return &Response{OK: true, Rows: EncodeRows(rows), CSN: snap.CSN()}
	case "stats":
		cs := c.srv.cfg.System.PlanCacheStats()
		return &Response{OK: true, CSN: c.srv.cfg.System.CSN(), Counters: map[string]int64{
			"statements":       c.srv.totals.statements.Load(),
			"reads":            c.srv.totals.reads.Load(),
			"writes":           c.srv.totals.writes.Load(),
			"errors":           c.srv.totals.errors.Load(),
			"sessions":         c.srv.totals.sessions.Load(),
			"active":           c.srv.active.Load(),
			"plan_hits":        cs.Hits,
			"plan_misses":      cs.Misses,
			"plan_invalidated": cs.Invalidations,
		}}
	case "close":
		return &Response{OK: true}
	default:
		return badRequest(fmt.Sprintf("unknown op %q", req.Op))
	}
}

// read executes one read statement on the session's pinned snapshot (in
// a transaction) or a fresh one (autocommit), under admission control,
// the session budget, and the fair worker share.
func (c *session) read(run func(context.Context, *gluenail.Snapshot) (*gluenail.Result, error)) *Response {
	ctx, done, werr := c.srv.beginStatement(context.Background())
	if werr != nil {
		return &Response{Err: werr}
	}
	defer done()
	c.srv.totals.reads.Add(1)

	snap := c.snap
	if snap == nil {
		var err error
		snap, err = c.openSnapshot()
		if err != nil {
			return fail(err)
		}
		defer snap.Close()
	}
	snap.SetParallelism(c.srv.fairShare())
	res, err := run(ctx, snap)
	if err != nil {
		return fail(err)
	}
	return &Response{OK: true, Vars: res.Vars, Rows: EncodeRows(res.Rows), CSN: snap.CSN()}
}

// write executes an assert or retract on the live system under admission
// control. Writes inside a read transaction are rejected: the pinned
// snapshot could never see them, which is a confusion no one wants.
func (c *session) write(req *Request) *Response {
	if c.snap != nil {
		return readOnlyTxn()
	}
	if req.Rel == nil {
		return badRequest(req.Op + " requires rel")
	}
	name, err := DecodeValue(*req.Rel)
	if err != nil {
		return fail(err)
	}
	rows, err := DecodeRows(req.Rows)
	if err != nil {
		return fail(err)
	}
	_, done, werr := c.srv.beginStatement(context.Background())
	if werr != nil {
		return &Response{Err: werr}
	}
	defer done()
	c.srv.totals.writes.Add(1)
	sys := c.srv.cfg.System
	if req.Op == "assert" {
		err = sys.Assert(name, rows...)
	} else {
		err = sys.Retract(name, rows...)
	}
	if err != nil {
		return fail(err)
	}
	return &Response{OK: true, CSN: sys.CSN()}
}

// openSnapshot captures a snapshot configured with the session budget.
func (c *session) openSnapshot() (*gluenail.Snapshot, error) {
	snap, err := c.srv.cfg.System.Snapshot()
	if err != nil {
		return nil, err
	}
	if c.budget != (gluenail.Budget{}) {
		snap.SetBudget(c.budget)
	}
	return snap, nil
}

func moduleOf(req *Request) string {
	if req.Module != "" {
		return req.Module
	}
	return "main"
}

func badRequest(msg string) *Response {
	return &Response{Err: &WireError{Code: CodeBadRequest, Message: msg}}
}

func readOnlyTxn() *Response {
	return &Response{Err: &WireError{Code: CodeReadOnlyTxn, Message: "writes are not allowed inside a read transaction"}}
}

func fail(err error) *Response {
	return &Response{Err: ToWireError(err)}
}
