package server

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"gluenail"
)

// gatedSystem builds a System with a Go builtin gate(X) that blocks
// until released — a statement that is deterministically "in flight"
// for drain tests. entered signals each time a statement reaches the
// gate; release unblocks all of them.
func gatedSystem(t *testing.T) (sys *gluenail.System, entered chan struct{}, release func()) {
	t.Helper()
	sys = gluenail.New()
	entered = make(chan struct{}, 16)
	gate := make(chan struct{})
	var once atomic.Bool
	release = func() {
		if once.CompareAndSwap(false, true) {
			close(gate)
		}
	}
	err := sys.Register("gate", 0, 1, false, func([][]gluenail.Value) ([][]gluenail.Value, error) {
		entered <- struct{}{}
		<-gate
		return [][]gluenail.Value{{gluenail.Int(1)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(tcProgram); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(release)
	return sys, entered, release
}

// TestServerShutdownDrain: an in-flight statement completes under a
// generous drain budget, statements arriving during the drain are
// rejected with the shutdown code, and Shutdown joins every session
// goroutine before returning.
func TestServerShutdownDrain(t *testing.T) {
	sys, entered, release := gatedSystem(t)
	srv, err := New(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	addr := lis.Addr().String()

	inflight, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer inflight.conn.Close()
	late, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer late.conn.Close()

	// Park a statement at the gate.
	inflightDone := make(chan error, 1)
	var inflightRes *QueryResult
	go func() {
		res, err := inflight.Query("gate(X)")
		inflightRes = res
		inflightDone <- err
	}()
	<-entered

	// Begin the drain; it must block on the parked statement.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	for !srv.draining.Load() {
		time.Sleep(time.Millisecond)
	}

	// A statement arriving mid-drain is turned away, not executed.
	_, err = late.Query("tc(1,X)")
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeShutdown {
		t.Fatalf("statement during drain: got %v, want code %s", err, CodeShutdown)
	}
	// So is a fresh connection (the listener is closed).
	if _, err := Dial(addr, 500*time.Millisecond); err == nil {
		t.Fatal("new session admitted during drain")
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned %v with a statement still in flight", err)
	default:
	}

	// Release the gate: the parked statement finishes cleanly and the
	// drain completes within its budget.
	release()
	if err := <-inflightDone; err != nil {
		t.Fatalf("in-flight statement during graceful drain: %v", err)
	}
	if len(inflightRes.Rows) != 1 || inflightRes.Rows[0][0].String() != "1" {
		t.Fatalf("in-flight result: %+v", inflightRes)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// The server is quiescent: the system still answers directly and can
	// close cleanly.
	if _, err := sys.Query("tc(1,X)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerShutdownCancelsStragglers: past the drain deadline the
// governor aborts in-flight statements instead of hanging forever.
func TestServerShutdownCancelsStragglers(t *testing.T) {
	sys, entered, release := gatedSystem(t)
	srv, err := New(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)

	c, err := Dial(lis.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()

	stmtDone := make(chan error, 1)
	go func() {
		// The straggler: parked at the gate, then a recursive join the
		// governor can abort at a cooperative check.
		_, err := c.Query("gate(X) & tc(X,Y)")
		stmtDone <- err
	}()
	<-entered

	// The drain budget is already exhausted: Shutdown cancels the
	// statement's context and waits for it to notice.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Let the deadline pass while the statement is still parked, then
	// release it into the cancelled context.
	time.Sleep(100 * time.Millisecond)
	release()

	if err := <-shutdownDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown: got %v, want deadline exceeded", err)
	}
	// The straggler observed the cancellation (or its connection was
	// severed after the abort) — it must not have hung.
	select {
	case <-stmtDone:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler statement never finished after forced shutdown")
	}
}
