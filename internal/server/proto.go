// Package server implements gluenaild: a multi-session network front end
// over a gluenail.System. Sessions speak a length-prefixed JSON protocol;
// reads execute on MVCC snapshots (never blocking, never blocked by, the
// single writer), writes serialize through the system's WAL group-commit
// path, and the PR 5 execution governor is repurposed as per-request QoS:
// per-session budgets, admission control on concurrent statements, and
// fair sharing of the morsel workers across active queries.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"gluenail"
	"gluenail/internal/term"
)

// Frame layout: a 4-byte big-endian payload length followed by that many
// bytes of JSON. MaxFrame bounds a single request or response; a peer
// announcing a larger frame is cut off (a corrupt length would otherwise
// read gigabytes).
const MaxFrame = 16 << 20

// WriteFrame writes one length-prefixed JSON message.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed JSON message into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

// Request is one client statement. Op selects the operation; the other
// fields are its operands (unused fields stay empty):
//
//	hello                     — handshake; returns server info and the CSN
//	query    Goals[, Module]  — evaluate a goal conjunction on a snapshot
//	prepare  Name, Goals[, Module] — compile and remember a query
//	execute  Name             — run a prepared query on a snapshot
//	begin                     — open a read transaction (pin one snapshot)
//	end                       — close the read transaction
//	assert   Rel, Rows        — insert EDB facts (write; live system)
//	retract  Rel, Rows        — delete EDB facts (write; live system)
//	load     Src              — load Glue/NAIL! source (write; live system)
//	relation Rel, Arity       — dump an EDB relation from a snapshot
//	stats                     — server and plan-cache counters
//	close    —                — end the session
type Request struct {
	Op     string        `json:"op"`
	ID     uint64        `json:"id"`
	Module string        `json:"module,omitempty"`
	Goals  string        `json:"goals,omitempty"`
	Name   string        `json:"name,omitempty"`
	Rel    *WireValue    `json:"rel,omitempty"`
	Arity  int           `json:"arity,omitempty"`
	Rows   [][]WireValue `json:"rows,omitempty"`
	Src    string        `json:"src,omitempty"`
}

// Response answers the request with the same ID. Exactly one of Err or
// the payload fields is meaningful; OK distinguishes them.
type Response struct {
	ID   uint64        `json:"id"`
	OK   bool          `json:"ok"`
	Err  *WireError    `json:"error,omitempty"`
	Vars []string      `json:"vars,omitempty"`
	Rows [][]WireValue `json:"rows,omitempty"`
	// CSN reports the snapshot a read executed at (query/execute/relation/
	// begin) or the current commit sequence number (hello/stats).
	CSN uint64 `json:"csn,omitempty"`
	// Hello / stats payloads.
	Server   string            `json:"server,omitempty"`
	Counters map[string]int64  `json:"counters,omitempty"`
	Info     map[string]string `json:"info,omitempty"`
}

// Error codes. Every GovernorError sentinel maps to its own code so
// clients can classify failures without parsing messages; the remaining
// codes cover protocol and server states.
const (
	CodeCanceled     = "canceled"
	CodeTimeout      = "timeout"
	CodeMemoryBudget = "memory_budget"
	CodeDepthLimit   = "depth_limit"
	CodeLoopLimit    = "loop_limit"
	CodePanic        = "panic"
	CodePoisoned     = "poisoned"
	CodeBadRequest   = "bad_request"   // malformed operands or unknown op
	CodeQueryError   = "query_error"   // parse/compile/semantic failure
	CodeReadOnlyTxn  = "read_only_txn" // write attempted inside begin/end
	CodeAdmission    = "admission"     // too many concurrent statements
	CodeShutdown     = "shutting_down" // server is draining
	CodeDiskFault    = "disk_fault"    // an I/O fault; the store is read-only degraded
	CodeCorrupt      = "corrupt"       // stored bytes failed checksum verification
)

// WireError is the error payload: a stable code, the human-readable
// message, and — for governed failures — the procedure and statement that
// tripped the limit.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Proc    string `json:"proc,omitempty"`
	Stmt    string `json:"stmt,omitempty"`
}

func (e *WireError) Error() string {
	return fmt.Sprintf("%s (%s)", e.Message, e.Code)
}

// ToWireError maps any server-side failure to its wire form. Governed
// failures keep their classification and location; storage faults map to
// their own codes whether or not the governor wrapped them (a degraded
// write fails directly with ErrDiskFault, a corrupt block read inside a
// query arrives wrapped in a GovernorError); everything else becomes
// CodeQueryError (the statement failed) with the message intact.
func ToWireError(err error) *WireError {
	var we *WireError
	if errors.As(err, &we) {
		return we
	}
	var ge *gluenail.GovernorError
	if errors.As(err, &ge) {
		return &WireError{Code: governorCode(ge), Message: ge.Error(), Proc: ge.Proc, Stmt: ge.Stmt}
	}
	if code := storageCode(err); code != "" {
		return &WireError{Code: code, Message: err.Error()}
	}
	return &WireError{Code: CodeQueryError, Message: err.Error()}
}

// storageCode classifies a storage-fault error chain; "" means neither
// sentinel is present.
func storageCode(err error) string {
	switch {
	case errors.Is(err, gluenail.ErrCorrupt):
		return CodeCorrupt
	case errors.Is(err, gluenail.ErrDiskFault):
		return CodeDiskFault
	default:
		return ""
	}
}

// governorCode maps a GovernorError's sentinel to its wire code.
func governorCode(ge *gluenail.GovernorError) string {
	switch {
	case errors.Is(ge.Limit, gluenail.ErrCanceled):
		return CodeCanceled
	case errors.Is(ge.Limit, gluenail.ErrTimeout):
		return CodeTimeout
	case errors.Is(ge.Limit, gluenail.ErrMemoryBudget):
		return CodeMemoryBudget
	case errors.Is(ge.Limit, gluenail.ErrDepthLimit):
		return CodeDepthLimit
	case errors.Is(ge.Limit, gluenail.ErrLoopLimit):
		return CodeLoopLimit
	case errors.Is(ge.Limit, gluenail.ErrPoisoned):
		return CodePoisoned
	default:
		if code := storageCode(ge.Limit); code != "" {
			return code
		}
		return CodePanic
	}
}

// WireValue is the JSON encoding of one ground term. Kind tags keep the
// four kinds unambiguous; floats travel as strconv strings so NaN, the
// infinities, and every bit pattern round-trip exactly (JSON numbers
// cannot carry them). A compound term's functor is itself a value (HiLog
// functors may be compound), so it nests.
type WireValue struct {
	K    string      `json:"k"`              // "i" | "f" | "s" | "c"
	I    int64       `json:"i,omitempty"`    // K == "i"
	F    string      `json:"f,omitempty"`    // K == "f": strconv 'g' -1
	S    string      `json:"s,omitempty"`    // K == "s"
	Fn   *WireValue  `json:"fn,omitempty"`   // K == "c"
	Args []WireValue `json:"args,omitempty"` // K == "c"
}

// EncodeValue converts a term value to its wire form.
func EncodeValue(v term.Value) WireValue {
	switch v.Kind() {
	case term.Int:
		return WireValue{K: "i", I: v.Int()}
	case term.Float:
		return WireValue{K: "f", F: strconv.FormatFloat(v.Float(), 'g', -1, 64)}
	case term.Str:
		return WireValue{K: "s", S: v.Str()}
	default:
		fn := EncodeValue(v.Functor())
		args := make([]WireValue, v.NumArgs())
		for i := range args {
			args[i] = EncodeValue(v.Arg(i))
		}
		return WireValue{K: "c", Fn: &fn, Args: args}
	}
}

// DecodeValue converts a wire value back to a term value.
func DecodeValue(w WireValue) (term.Value, error) {
	switch w.K {
	case "i":
		return term.NewInt(w.I), nil
	case "f":
		f, err := strconv.ParseFloat(w.F, 64)
		if err != nil {
			return term.Value{}, fmt.Errorf("server: bad float %q: %v", w.F, err)
		}
		return term.NewFloat(f), nil
	case "s":
		return term.Intern(w.S), nil
	case "c":
		if w.Fn == nil {
			return term.Value{}, fmt.Errorf("server: compound value without functor")
		}
		fn, err := DecodeValue(*w.Fn)
		if err != nil {
			return term.Value{}, err
		}
		args := make([]term.Value, len(w.Args))
		for i, a := range w.Args {
			v, err := DecodeValue(a)
			if err != nil {
				return term.Value{}, err
			}
			args[i] = v
		}
		return term.NewCompound(fn, args...), nil
	default:
		return term.Value{}, fmt.Errorf("server: unknown value kind %q", w.K)
	}
}

// EncodeRows converts result rows to wire form.
func EncodeRows(rows [][]gluenail.Value) [][]WireValue {
	out := make([][]WireValue, len(rows))
	for i, row := range rows {
		wr := make([]WireValue, len(row))
		for j, v := range row {
			wr[j] = EncodeValue(v)
		}
		out[i] = wr
	}
	return out
}

// DecodeRows converts wire rows to the []any rows Assert/Retract take.
func DecodeRows(rows [][]WireValue) ([][]any, error) {
	out := make([][]any, len(rows))
	for i, row := range rows {
		r := make([]any, len(row))
		for j, w := range row {
			v, err := DecodeValue(w)
			if err != nil {
				return nil, err
			}
			r[j] = v
		}
		out[i] = r
	}
	return out, nil
}
