// Package bench builds the workloads for the paper's experiments (see
// DESIGN.md §4 and EXPERIMENTS.md). Both the testing.B benchmarks at the
// repository root and the cmd/glbench table harness drive these builders,
// so the measured code paths are identical.
package bench

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"gluenail"
	"gluenail/internal/modsys"
	"gluenail/internal/parser"
	"gluenail/internal/plan"
	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// ---------- E1: compiler throughput ----------

// SyntheticProgram generates a module with nStmts assignment statements
// spread over procedures, shaped like application code: joins, filters,
// arithmetic, and an occasional aggregate.
func SyntheticProgram(nStmts int) string {
	var sb strings.Builder
	sb.WriteString("module synth;\n")
	sb.WriteString("edb r0(A,B), r1(A,B), r2(A,B), r3(A,B);\n")
	perProc := 8
	stmt := 0
	proc := 0
	for stmt < nStmts {
		fmt.Fprintf(&sb, "proc p%d(:)\nrels t%d(A,B);\n", proc, proc)
		for j := 0; j < perProc && stmt < nStmts; j++ {
			switch stmt % 4 {
			case 0:
				fmt.Fprintf(&sb, "  t%d(X,Z) := r%d(X,Y) & r%d(Y,Z).\n", proc, stmt%4, (stmt+1)%4)
			case 1:
				fmt.Fprintf(&sb, "  t%d(X,Y) += r%d(X,Y) & X != Y.\n", proc, stmt%4)
			case 2:
				fmt.Fprintf(&sb, "  t%d(X,W) += r%d(X,Y) & W = X*2 + Y.\n", proc, stmt%4)
			case 3:
				fmt.Fprintf(&sb, "  t%d(X,M) := r%d(X,Y) & group_by(X) & M = max(Y).\n", proc, stmt%4)
			}
			stmt++
		}
		fmt.Fprintf(&sb, "  return(:) := t%d(_,_).\nend\n", proc)
		proc++
	}
	sb.WriteString("end\n")
	return sb.String()
}

// CompileSource runs the full compilation pipeline — lex, parse, link,
// plan — over one source string: the E1 unit of work.
func CompileSource(src string) error {
	prog, err := parser.Parse(src)
	if err != nil {
		return err
	}
	lp, err := modsys.Link(prog)
	if err != nil {
		return err
	}
	c := plan.NewCompiler(lp, plan.Options{})
	return c.CompileAll()
}

// ---------- graph generators ----------

// ChainEdges returns the edges of the path 1 -> 2 -> ... -> n.
func ChainEdges(n int) [][]any {
	out := make([][]any, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, []any{i, i + 1})
	}
	return out
}

// RandomEdges returns m random edges over n nodes (deterministic by seed).
func RandomEdges(n, m int, seed int64) [][]any {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]any, 0, m)
	for i := 0; i < m; i++ {
		out = append(out, []any{rng.Intn(n) + 1, rng.Intn(n) + 1})
	}
	return out
}

// ---------- E5/E9: transitive closure systems ----------

const tcRules = `
edb edge(X,Y);
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- tc(X,Y) & edge(Y,Z).
`

// NewTCSystem loads the transitive-closure rules and asserts the edges.
func NewTCSystem(edges [][]any, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(tcRules); err != nil {
		panic(err)
	}
	if err := sys.Assert("edge", edges...); err != nil {
		panic(err)
	}
	return sys
}

// ---------- E2: pipelined vs materialized join chains ----------

const joinChain = `
edb a(X,Y), b(X,Y), c(X,Y), out(X,Y);
proc chain(:)
  out(X,W) := a(X,Y) & b(Y,Z) & c(Z,W).
  return(:) := out(_,_).
end
`

// NewJoinSystem builds a 3-way join over relations of n rows each with the
// given fanout (rows per join key).
func NewJoinSystem(n, fanout int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(joinChain); err != nil {
		panic(err)
	}
	keys := n / fanout
	if keys == 0 {
		keys = 1
	}
	var a, b, c [][]any
	for i := 0; i < n; i++ {
		k := i % keys
		a = append(a, []any{k, (k + 1) % keys})
		b = append(b, []any{k, (k + i) % keys})
		c = append(c, []any{k, i})
	}
	must(sys.Assert("a", a...))
	must(sys.Assert("b", b...))
	must(sys.Assert("c", c...))
	return sys
}

// RunJoin executes the chain procedure once.
func RunJoin(sys *gluenail.System) error {
	_, err := sys.Call("main", "chain")
	return err
}

// ---------- E11: durability (WAL-on vs WAL-off statement throughput) ----------

// durableProgram runs EDB insert statements inside a repeat loop; every
// top-level statement is a WAL commit point, so the loop measures commit
// overhead rather than compile or assert cost.
const durableProgram = `
edb ev(X,Y);
proc pump(Lo, Hi :)
rels cursor(X);
  cursor(X) := in(X, _).
  repeat
    ev(X, Y) += cursor(X) & Y = X * 2.
    cursor(X) := cursor(Y) & X = Y + 1.
  until cursor(X) & in(_, H) & X > H;
  return(Lo, Hi :) := in(Lo, Hi).
end
`

// NewDurableSystem builds the E11 workload system. dir == "" disables
// durability (the WAL-off baseline); otherwise the directory is wiped
// first so every run starts from an empty store.
func NewDurableSystem(dir string, mode gluenail.FsyncMode, opts ...gluenail.Option) (*gluenail.System, error) {
	var sys *gluenail.System
	if dir == "" {
		sys = gluenail.New(opts...)
	} else {
		if err := os.RemoveAll(dir); err != nil {
			return nil, err
		}
		var err error
		sys, err = gluenail.Open(dir, append(opts, gluenail.WithFsync(mode))...)
		if err != nil {
			return nil, err
		}
	}
	if err := sys.Load(durableProgram); err != nil {
		return nil, err
	}
	return sys, nil
}

// RunDurable executes n loop iterations of EDB insert statements (each a
// commit point when durability is on).
func RunDurable(sys *gluenail.System, n int) error {
	_, err := sys.Call("main", "pump", []any{0, n})
	return err
}

// ---------- E10: intra-segment morsel parallelism ----------

const parJoinProgram = `
edb a(X,Y), b(X,Y), c(X,Y), out(X,W);
proc parjoin(:)
  out(X,W) := a(X,Y) & b(Y,Z) & c(Z,W) & V = X*Y + Z*W & V >= 0 & X + W < ` + "%d" + `.
  return(:) := out(_,_).
end
`

// NewParallelJoinSystem builds the E10 workload: a 3-way join driven by an
// n-row scan of a, with fanout matching b and c rows per key, per-row
// arithmetic, and a selective filter keeping roughly 1%% of the join
// output so the measured time is the segment pipeline, not head insertion.
// Worker count comes through opts (WithParallelism).
func NewParallelJoinSystem(n, fanout int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(fmt.Sprintf(parJoinProgram, n/8)); err != nil {
		panic(err)
	}
	keys := n / fanout
	if keys == 0 {
		keys = 1
	}
	aRows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		aRows = append(aRows, []any{i, i % keys})
	}
	var bRows, cRows [][]any
	for k := 0; k < keys; k++ {
		for j := 0; j < fanout; j++ {
			bRows = append(bRows, []any{k, (k*7 + j) % keys})
			cRows = append(cRows, []any{k, (k*13 + j*997) % n})
		}
	}
	must(sys.Assert("a", aRows...))
	must(sys.Assert("b", bRows...))
	must(sys.Assert("c", cRows...))
	return sys
}

// RunParJoin executes the parallel-join procedure once.
func RunParJoin(sys *gluenail.System) error {
	_, err := sys.Call("main", "parjoin")
	return err
}

// ---------- E3: duplicate elimination at breaks ----------

const dupProgram = `
edb wide(X, K), follow(X, Y), out(X, Y);
proc ident(X:)
  return(X:) := in(X).
end
proc project(:)
  out(X, Y) := wide(X, _) & ident(X) & follow(X, Y).
  return(:) := out(_,_).
end
`

// NewDupSystem builds a relation with nKeys distinct keys, each duplicated
// dup times; the project procedure projects the key ahead of a procedure
// call (a pipeline break), so dedup there shrinks both the call input and
// the rows carried into the follow join by the duplicate factor.
func NewDupSystem(nKeys, dup int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(dupProgram); err != nil {
		panic(err)
	}
	rows := make([][]any, 0, nKeys*dup)
	for k := 0; k < nKeys; k++ {
		for d := 0; d < dup; d++ {
			rows = append(rows, []any{k, d})
		}
	}
	must(sys.Assert("wide", rows...))
	fol := make([][]any, 0, nKeys*4)
	for k := 0; k < nKeys; k++ {
		for j := 0; j < 4; j++ {
			fol = append(fol, []any{k, j})
		}
	}
	must(sys.Assert("follow", fol...))
	return sys
}

// RunDup executes the projecting procedure once.
func RunDup(sys *gluenail.System) error {
	_, err := sys.Call("main", "project")
	return err
}

// ---------- E4: adaptive indexing (storage level) ----------

// AdaptiveResult reports one adaptive-indexing run.
type AdaptiveResult struct {
	RowsScanned int64
	RowsProbed  int64
	IndexBuilds int64
}

// RunSelections performs q equality selections on column 0 of a fresh
// nRows-row relation under the given index policy, returning the back-end
// work counters. Matching rows per selection = nRows/keys.
func RunSelections(policy storage.IndexPolicy, nRows, keys, q int) AdaptiveResult {
	stats := &storage.Stats{}
	rel := storage.NewRelation(term.NewString("r"), 2, policy, stats)
	for i := 0; i < nRows; i++ {
		rel.Insert(term.Tuple{term.NewInt(int64(i % keys)), term.NewInt(int64(i))})
	}
	stats.RowsScanned = 0 // ignore load-time work
	for i := 0; i < q; i++ {
		key := term.Tuple{term.NewInt(int64(i % keys)), {}}
		rel.Lookup(0b01, key, func(term.Tuple) bool { return true })
	}
	return AdaptiveResult{
		RowsScanned: stats.RowsScanned,
		RowsProbed:  stats.RowsProbed,
		IndexBuilds: stats.IndexBuilds,
	}
}

// ---------- E6: HiLog dispatch narrowing ----------

// NewDispatchSystem builds holder/1 naming nSets set relations of setSize
// elements each, plus noise relations that only the unnarrowed baseline
// has to wade through.
func NewDispatchSystem(nSets, setSize, noise int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	var decls strings.Builder
	decls.WriteString("edb holder(S)")
	for i := 0; i < nSets; i++ {
		fmt.Fprintf(&decls, ", set%d(X)", i)
	}
	decls.WriteString(";\n")
	decls.WriteString(`
edb out(X);
proc sweep(:)
  out(X) := holder(S) & S(X).
  return(:) := out(_).
end
`)
	if err := sys.Load(decls.String()); err != nil {
		panic(err)
	}
	for i := 0; i < nSets; i++ {
		name := fmt.Sprintf("set%d", i)
		rows := make([][]any, setSize)
		for j := 0; j < setSize; j++ {
			rows[j] = []any{i*setSize + j}
		}
		must(sys.Assert(name, rows...))
		must(sys.Assert("holder", []any{gluenail.Str(name)}))
	}
	// Noise relations in the store (different arity, so never candidates).
	for i := 0; i < noise; i++ {
		must(sys.Assert(fmt.Sprintf("noise%d", i), []any{i, i, i}))
	}
	return sys
}

// RunDispatch executes the dispatching sweep once.
func RunDispatch(sys *gluenail.System) error {
	_, err := sys.Call("main", "sweep")
	return err
}

// ---------- E7: set equality by name vs extensionally ----------

const setEqProgram = `
edb pair(S,T), same(S,T);
proc set_eq(S, T:)
rels different(S,T);
  different(S,T):= in(S,T) & S(X) & !T(X).
  different(S,T)+= in(S,T) & T(X) & !S(X).
  return(S,T:):= !different(S,T).
end
proc by_name(:)
  same(S,T) := pair(S,T) & S = T.
  return(:) := pair(_,_).
end
proc by_members(:)
  same(S,T) := pair(S,T) & set_eq(S,T).
  return(:) := pair(_,_).
end
`

// NewSetEqSystem builds nPairs pairs of set names over sets of setSize
// elements; half the pairs are identical names, half differ.
func NewSetEqSystem(nPairs, setSize int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(setEqProgram); err != nil {
		panic(err)
	}
	for i := 0; i < nPairs; i++ {
		name := gluenail.Compound("s", gluenail.Int(int64(i)))
		rows := make([][]any, setSize)
		for j := 0; j < setSize; j++ {
			rows[j] = []any{j}
		}
		must(sys.Assert(name, rows...))
		if i%2 == 0 {
			must(sys.Assert("pair", []any{name, name}))
		} else {
			other := gluenail.Compound("s", gluenail.Int(int64((i+1)%nPairs)))
			must(sys.Assert("pair", []any{name, other}))
		}
	}
	return sys
}

// RunSetEqByName compares the pairs by name equality.
func RunSetEqByName(sys *gluenail.System) error {
	_, err := sys.Call("main", "by_name")
	return err
}

// RunSetEqByMembers compares the pairs extensionally via set_eq.
func RunSetEqByMembers(sys *gluenail.System) error {
	_, err := sys.Call("main", "by_members")
	return err
}

// ---------- E8: backend layering ----------

const temporariesProgram = `
edb edge(X,Y);
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & edge(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & edge(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
`

// NewTemporariesSystem builds the paper's tc_e procedure over a chain;
// every call creates and drops frame-local temporaries, the workload the
// tailored main-memory back end exists for (§10).
func NewTemporariesSystem(chain int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(temporariesProgram); err != nil {
		panic(err)
	}
	must(sys.Assert("edge", ChainEdges(chain)...))
	return sys
}

// RunTemporaries calls tc_e once per origin, forcing calls*<locals> ephemeral
// relations through the store.
func RunTemporaries(sys *gluenail.System, calls int) error {
	for i := 1; i <= calls; i++ {
		if _, err := sys.Call("main", "tc_e", []any{i}); err != nil {
			return err
		}
	}
	return nil
}

// ---------- A1: subgoal reordering ablation ----------

const reorderProgram = `
edb a(X), cross(Z), sel(X, Tag), out(X,Z);
proc go(:)
  out(X,Z) := a(X) & cross(Z) & sel(X, 5).
  return(:) := a(_).
end
`

// NewReorderSystem builds a statement whose source order forms a cross
// product before a selective constant-argument lookup; the greedy
// reordering of §3.1 moves the lookup first.
func NewReorderSystem(n int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(reorderProgram); err != nil {
		panic(err)
	}
	var aRows, crossRows, selRows [][]any
	for i := 0; i < n; i++ {
		aRows = append(aRows, []any{i})
		crossRows = append(crossRows, []any{i})
	}
	for i := 0; i < n; i += 100 {
		selRows = append(selRows, []any{i, 5})
	}
	must(sys.Assert("a", aRows...))
	must(sys.Assert("cross", crossRows...))
	must(sys.Assert("sel", selRows...))
	return sys
}

// RunReorder executes the statement once.
func RunReorder(sys *gluenail.System) error {
	_, err := sys.Call("main", "go")
	return err
}

// ---------- F1: the Figure 1 micro-CAD select ----------

const cadModule = `
module example;
export select(:Key);
edb element(Key, Origin, P1, P2, DS), tolerance(T);

proc select(:Key)
rels possible(Key, D), try(Key), confirmed(Key);
  possible( Key, D ):=
        event( mouse, p(X,Y) ) &
        graphic_search( p(X,Y), Key, D ).
  repeat
    try(Key):=
      possible( Key, D ) &
      D = min(D) &
      It = arbitrary(Key) &
      Key = It &
      --possible( It, D ).
    confirmed(K):=
      try(K) &
      highlight(K) &
      write( 'This one?' ) &
      event( keyboard, KeyBuffer ) &
      dehighlight( K ) &
      KeyBuffer = 'y'.
  until {confirmed(K) | empty(possible(_,_)) };
  return(:Key):= confirmed( Key ).
end

graphic_search( p(X,Y), Key, Dist ):-
  element( Key, _, p(Xmin, Ymin), _, _ ) &
  tolerance( T ) &
  Dist = (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin) &
  Dist < T.
end
`

// CadRun holds a prepared select invocation over nElements, with a
// scripted event queue that rejects the first candidate and accepts the
// second.
type CadRun struct {
	sys    *gluenail.System
	events [][2]gluenail.Value
	queue  [][2]gluenail.Value
}

// NewCadRun builds the Figure 1 module with nElements on a grid and a
// scripted user.
func NewCadRun(nElements int, opts ...gluenail.Option) *CadRun {
	r := &CadRun{}
	r.events = [][2]gluenail.Value{
		{gluenail.Str("mouse"), gluenail.Compound("p", gluenail.Int(5), gluenail.Int(5))},
		{gluenail.Str("keyboard"), gluenail.Str("n")},
		{gluenail.Str("keyboard"), gluenail.Str("y")},
	}
	var discard strings.Builder
	sys := gluenail.New(append([]gluenail.Option{gluenail.WithOutput(&discard)}, opts...)...)
	must(sys.Register("event", 0, 2, true, func(in [][]gluenail.Value) ([][]gluenail.Value, error) {
		if len(in) == 0 || len(r.queue) == 0 {
			return nil, nil
		}
		e := r.queue[0]
		r.queue = r.queue[1:]
		return [][]gluenail.Value{{e[0], e[1]}}, nil
	}))
	passthrough := func(in [][]gluenail.Value) ([][]gluenail.Value, error) { return in, nil }
	must(sys.Register("highlight", 1, 0, true, passthrough))
	must(sys.Register("dehighlight", 1, 0, true, passthrough))
	must(sys.Load(cadModule))
	rows := make([][]any, nElements)
	for i := range rows {
		x, y := int64(i%100), int64(i/100)
		rows[i] = []any{
			fmt.Sprintf("el%d", i), "origin",
			gluenail.Compound("p", gluenail.Int(x), gluenail.Int(y)),
			gluenail.Compound("p", gluenail.Int(x+1), gluenail.Int(y+1)),
			"solid",
		}
	}
	must(sys.Assert("element", rows...))
	must(sys.Assert("tolerance", []any{18}))
	r.sys = sys
	return r
}

// Select runs one scripted selection, returning the chosen element key.
func (r *CadRun) Select() (string, error) {
	r.queue = append([][2]gluenail.Value(nil), r.events...)
	rows, err := r.sys.Call("example", "select")
	if err != nil {
		return "", err
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("nothing selected")
	}
	return rows[0][0].Str(), nil
}

// ---------- E12: statistics-driven physical ordering on skewed joins ----------

const skewJoinProgram = `
edb big(X,Y), probe(Y,Z), out(X,Z);
proc go(:)
  out(X,Z) := big(X,Y) & probe(Y,Z).
  return(:) := out(_,_).
end
`

// NewSkewJoinSystem builds the E12 workload: big(X,Y) holds n rows whose
// join column Y is heavily skewed (only every rare-th row carries the key
// the k-row probe relation selects; the rest share a never-matching key).
// No subgoal has a constant argument, so the compiler's static greedy
// scores tie and keep the textual order — scan big, probe tiny — for both
// the textual and greedy ablations. Only live row counts reveal that
// starting from probe and index-probing big touches a fraction of the
// data; that is exactly the statistic the run-time planner consults.
func NewSkewJoinSystem(n, rare, k int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(skewJoinProgram); err != nil {
		panic(err)
	}
	bigRows := make([][]any, n)
	for i := range bigRows {
		y := 0
		if i%rare == 0 {
			y = 1
		}
		bigRows[i] = []any{i, y}
	}
	probeRows := make([][]any, k)
	for j := range probeRows {
		probeRows[j] = []any{1, fmt.Sprintf("z%d", j)}
	}
	must(sys.Assert("big", bigRows...))
	must(sys.Assert("probe", probeRows...))
	return sys
}

// RunSkewJoin executes the join statement once.
func RunSkewJoin(sys *gluenail.System) error {
	_, err := sys.Call("main", "go")
	return err
}

// SkewJoinResult returns the materialized join output in sorted order, for
// checking that every ordering mode computes identical results.
func SkewJoinResult(sys *gluenail.System) (string, error) {
	if err := RunSkewJoin(sys); err != nil {
		return "", err
	}
	rows, err := sys.Relation("out", 2)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, row := range rows {
		for _, v := range row {
			sb.WriteString(v.String())
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
	}
	return sb.String(), nil
}

// ---------- E13: hash-first hot-path kernels ----------

// tcGroupProgram is the E13 workload: hand-written semi-naive transitive
// closure followed by a group-by count. Every repeat iteration funnels the
// join output through duplicate elimination (the projection X,Z has one
// row per path), the closure feeds an aggregation grouping, and the head
// inserts probe the tc relation — together the tuple-level hot paths the
// hash-first data layer (interned atoms, cached row hashes,
// open-addressing kernels) attacks.
const tcGroupProgram = `
edb edge(X,Y), reach(X,C);
proc spread(:)
rels tc(X,Y), delta(X,Y), nxt(X,Y);
  tc(X,Y) := edge(X,Y).
  delta(X,Y) := edge(X,Y).
  repeat
    nxt(X,Z) := delta(X,Y) & edge(Y,Z) & !tc(X,Z).
    tc(X,Z) += nxt(X,Z).
    delta(X,Z) := nxt(X,Z).
  until empty(nxt(_,_));
  reach(X,C) := tc(X,Y) & group_by(X) & C = count(Y).
  return(:) := reach(_,_).
end
`

// NewTCGroupSystem builds the E13 system: a random graph over n
// string-labelled nodes (atoms, so tuple hashing exercises the string
// path) with m edges.
func NewTCGroupSystem(n, m int, seed int64, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(tcGroupProgram); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]any, 0, m)
	for i := 0; i < m; i++ {
		rows = append(rows, []any{
			fmt.Sprintf("n%03d", rng.Intn(n)),
			fmt.Sprintf("n%03d", rng.Intn(n)),
		})
	}
	must(sys.Assert("edge", rows...))
	return sys
}

// RunTCGroup executes the closure + group-by procedure once.
func RunTCGroup(sys *gluenail.System) error {
	_, err := sys.Call("main", "spread")
	return err
}

// TCGroupResult renders the reach relation in sorted order, for checking
// that kernel variants and worker counts agree byte-for-byte.
func TCGroupResult(sys *gluenail.System) (string, error) {
	rows, err := sys.Relation("reach", 2)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, row := range rows {
		for _, v := range row {
			sb.WriteString(v.String())
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
	}
	return sb.String(), nil
}

// ---------- E15: repeated small bound queries (prepared plans + batch kernels) ----------

// repeatedQueryProgram is the E15 schema: an order/items/stock/supplier/
// region star. The workload issues the same bound customer lookup over
// and over — the interactive pattern of §4's set-at-a-time procedure
// calls — so per-query planning overhead, not data volume, dominates
// unless plans are reused.
const repeatedQueryProgram = `
edb orders(C, O), items(O, I, P), stock(I, S), supplier(I, U), region(U, R);
`

// RepeatedQueryGoals is the E15 query text: a bound-customer probe feeding
// a four-deep index-probe chain through selective range filters. The
// statement is long enough that the statistics-driven physical planner
// does real work per query; identical text every time, so the compiled
// statement is shared and the plan cache can serve every run after the
// first.
const RepeatedQueryGoals = "orders(42, O) & items(O, I, P) & P > 30 & P < 90 & " +
	"stock(I, S) & S > 0 & S < 5 & supplier(I, U) & U != 13 & region(U, R) & R > 1"

// NewRepeatedQuerySystem builds the E15 system: customers x ordersPer
// orders, itemsPer items per order with deterministic pseudo-random
// prices, and one stock, supplier, and region row per item.
func NewRepeatedQuerySystem(customers, ordersPer, itemsPer int, opts ...gluenail.Option) *gluenail.System {
	sys := gluenail.New(opts...)
	if err := sys.Load(repeatedQueryProgram); err != nil {
		panic(err)
	}
	nItems := customers * ordersPer
	var ord, it, st, su, re [][]any
	o := 0
	for c := 0; c < customers; c++ {
		for k := 0; k < ordersPer; k++ {
			ord = append(ord, []any{c, o})
			for j := 0; j < itemsPer; j++ {
				item := (o*7 + j*13) % nItems
				it = append(it, []any{o, item, (item*17 + j*29) % 120})
			}
			o++
		}
	}
	for i := 0; i < nItems; i++ {
		st = append(st, []any{i, i % 7})
		su = append(su, []any{i, i % 97})
	}
	for u := 0; u < 97; u++ {
		re = append(re, []any{u, u % 4})
	}
	must(sys.Assert("orders", ord...))
	must(sys.Assert("items", it...))
	must(sys.Assert("stock", st...))
	must(sys.Assert("supplier", su...))
	must(sys.Assert("region", re...))
	return sys
}

// RunRepeatedQuery issues the E15 query once, returning the row count so
// harnesses can verify every configuration answers identically.
func RunRepeatedQuery(sys *gluenail.System) (int, error) {
	res, err := sys.Query(RepeatedQueryGoals)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
