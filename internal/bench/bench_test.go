package bench

import (
	"testing"

	"gluenail"
	"gluenail/internal/storage"
)

func TestSyntheticProgramCompiles(t *testing.T) {
	for _, n := range []int{1, 10, 100} {
		src := SyntheticProgram(n)
		if err := CompileSource(src); err != nil {
			t.Errorf("SyntheticProgram(%d) does not compile: %v", n, err)
		}
	}
}

func TestChainAndRandomEdges(t *testing.T) {
	if got := len(ChainEdges(10)); got != 9 {
		t.Errorf("ChainEdges(10) = %d edges", got)
	}
	e1 := RandomEdges(50, 100, 42)
	e2 := RandomEdges(50, 100, 42)
	if len(e1) != 100 {
		t.Errorf("RandomEdges = %d edges", len(e1))
	}
	for i := range e1 {
		if e1[i][0] != e2[i][0] || e1[i][1] != e2[i][1] {
			t.Fatal("RandomEdges should be deterministic by seed")
		}
	}
}

func TestTCSystemAnswers(t *testing.T) {
	sys := NewTCSystem(ChainEdges(10))
	res, err := sys.Query("tc(1, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Errorf("tc(1,X) over chain(10) = %d rows, want 9", len(res.Rows))
	}
	// Naive and magic-less systems agree.
	for _, opts := range [][]gluenail.Option{
		{gluenail.WithNaiveEvaluation()},
		{gluenail.WithoutMagicSets()},
	} {
		s2 := NewTCSystem(ChainEdges(10), opts...)
		r2, err := s2.Query("tc(1, X)")
		if err != nil {
			t.Fatal(err)
		}
		if len(r2.Rows) != 9 {
			t.Errorf("baseline tc rows = %d", len(r2.Rows))
		}
	}
}

func TestJoinSystemStrategiesAgree(t *testing.T) {
	run := func(opts ...gluenail.Option) [][]gluenail.Value {
		sys := NewJoinSystem(200, 4, opts...)
		if err := RunJoin(sys); err != nil {
			t.Fatal(err)
		}
		rows, err := sys.Relation("out", 2)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	pipe := run()
	mat := run(gluenail.WithMaterializedExecution())
	if len(pipe) == 0 || len(pipe) != len(mat) {
		t.Fatalf("strategy disagreement: %d vs %d rows", len(pipe), len(mat))
	}
}

func TestDupSystemAgree(t *testing.T) {
	run := func(opts ...gluenail.Option) int {
		sys := NewDupSystem(50, 8, opts...)
		if err := RunDup(sys); err != nil {
			t.Fatal(err)
		}
		rows, _ := sys.Relation("out", 2)
		return len(rows)
	}
	with := run()
	without := run(gluenail.WithoutDupElimination())
	if with != without || with != 200 {
		t.Errorf("dup-elim changed answers: %d vs %d (want 200)", with, without)
	}
}

func TestRunSelectionsPolicies(t *testing.T) {
	const rows, keys, q = 2000, 50, 16
	adaptive := RunSelections(storage.IndexAdaptive, rows, keys, q)
	never := RunSelections(storage.IndexNever, rows, keys, q)
	always := RunSelections(storage.IndexAlways, rows, keys, q)
	if never.IndexBuilds != 0 || never.RowsScanned != rows*q {
		t.Errorf("never: %+v", never)
	}
	if always.IndexBuilds != 1 || always.RowsScanned != 0 {
		t.Errorf("always: %+v", always)
	}
	if adaptive.IndexBuilds != 1 {
		t.Errorf("adaptive should build exactly one index: %+v", adaptive)
	}
	if adaptive.RowsScanned == 0 || adaptive.RowsScanned >= never.RowsScanned {
		t.Errorf("adaptive scan cost should sit between always and never: %+v", adaptive)
	}
}

func TestDispatchSystemAgree(t *testing.T) {
	run := func(opts ...gluenail.Option) int {
		sys := NewDispatchSystem(8, 20, 30, opts...)
		if err := RunDispatch(sys); err != nil {
			t.Fatal(err)
		}
		rows, _ := sys.Relation("out", 1)
		return len(rows)
	}
	narrowed := run()
	baseline := run(gluenail.WithoutDispatchNarrowing())
	if narrowed != 8*20 || narrowed != baseline {
		t.Errorf("dispatch rows: narrowed=%d baseline=%d want %d", narrowed, baseline, 8*20)
	}
}

func TestSetEqSystems(t *testing.T) {
	sys := NewSetEqSystem(10, 20)
	if err := RunSetEqByName(sys); err != nil {
		t.Fatal(err)
	}
	byName, _ := sys.Relation("same", 2)
	sys2 := NewSetEqSystem(10, 20)
	if err := RunSetEqByMembers(sys2); err != nil {
		t.Fatal(err)
	}
	byMembers, _ := sys2.Relation("same", 2)
	// All sets have identical members, so the extensional comparison finds
	// every pair equal; name comparison finds only the identical names.
	if len(byName) != 5 {
		t.Errorf("by-name pairs = %d, want 5", len(byName))
	}
	if len(byMembers) != 10 {
		t.Errorf("by-members pairs = %d, want 10", len(byMembers))
	}
}

func TestTemporariesBackendsAgree(t *testing.T) {
	mem := NewTemporariesSystem(30)
	if err := RunTemporaries(mem, 10); err != nil {
		t.Fatal(err)
	}
	lay := NewTemporariesSystem(30, gluenail.WithLayeredBackend())
	if err := RunTemporaries(lay, 10); err != nil {
		t.Fatal(err)
	}
	if lay.Stats().Scratch.LogBytes == 0 {
		t.Error("layered backend should log temporary-relation traffic")
	}
	if mem.Stats().Scratch.LogBytes != 0 {
		t.Error("tailored backend should not log")
	}
}

func TestReorderSystemAgree(t *testing.T) {
	run := func(opts ...gluenail.Option) int {
		sys := NewReorderSystem(200, opts...)
		if err := RunReorder(sys); err != nil {
			t.Fatal(err)
		}
		rows, _ := sys.Relation("out", 2)
		return len(rows)
	}
	ordered := run()
	source := run(gluenail.WithoutReordering())
	if ordered != source || ordered != 2*200 {
		t.Errorf("reorder results: ordered=%d source=%d want %d", ordered, source, 400)
	}
}

func TestCadRunSelects(t *testing.T) {
	r := NewCadRun(400)
	key, err := r.Select()
	if err != nil {
		t.Fatal(err)
	}
	if key == "" {
		t.Error("no element selected")
	}
	// Repeatable.
	key2, err := r.Select()
	if err != nil {
		t.Fatal(err)
	}
	if key != key2 {
		t.Errorf("selection not deterministic: %q vs %q", key, key2)
	}
}

// TestSkewJoinOrderingsAgree checks E12's correctness side: textual,
// greedy, and statistics-driven orderings produce byte-identical join
// results on the skewed workload.
func TestSkewJoinOrderingsAgree(t *testing.T) {
	modes := map[string][]gluenail.Option{
		"textual": {gluenail.WithoutReordering()},
		"greedy":  {gluenail.WithGreedyOrdering()},
		"stats":   nil,
	}
	var ref, refName string
	for name, opts := range modes {
		sys := NewSkewJoinSystem(2000, 50, 3, opts...)
		got, err := SkewJoinResult(sys)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == "" {
			t.Fatalf("%s: empty join result", name)
		}
		if ref == "" {
			ref, refName = got, name
			continue
		}
		if got != ref {
			t.Errorf("%s result differs from %s", name, refName)
		}
	}
}
