package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"gluenail/internal/term"
)

// EDB persistence (§10: the back end manages "relations in main memory as
// much as possible, storing EDB relations on disk between runs").

// magic identifies a Glue-Nail EDB image; the trailing digit is the format
// version.
var magic = []byte("GLUENAIL-EDB1\n")

// Save writes every relation of the store to w in a deterministic order.
func Save(w io.Writer, s Store) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	names := s.Names()
	sort.Slice(names, func(i, j int) bool {
		if c := names[i].Name.Compare(names[j].Name); c != 0 {
			return c < 0
		}
		return names[i].Arity < names[j].Arity
	})
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, rn := range names {
		rel, _ := s.Get(rn.Name, rn.Arity)
		buf = buf[:0]
		buf = term.AppendValue(buf, rn.Name)
		buf = binary.AppendUvarint(buf, uint64(rn.Arity))
		buf = binary.AppendUvarint(buf, uint64(rel.Len()))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		tuples := Sorted(rel)
		for _, t := range tuples {
			if err := term.WriteTuple(bw, t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads an EDB image from r into the store, adding to any existing
// contents.
func Load(r io.Reader, s Store) error {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("storage: reading EDB header: %w", err)
	}
	if string(head) != string(magic) {
		return fmt.Errorf("storage: not a Glue-Nail EDB image")
	}
	nRels, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("storage: reading relation count: %w", err)
	}
	for i := uint64(0); i < nRels; i++ {
		name, err := term.ReadValue(br)
		if err != nil {
			return fmt.Errorf("storage: reading relation name: %w", err)
		}
		arity, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("storage: reading arity of %v: %w", name, err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("storage: reading tuple count of %v: %w", name, err)
		}
		bulk, _ := s.(BulkLoader)
		if bulk != nil && n >= BulkThreshold {
			rows := make([]term.Tuple, 0, n)
			for j := uint64(0); j < n; j++ {
				t, err := term.ReadTuple(br)
				if err != nil {
					return fmt.Errorf("storage: reading tuple %d of %v: %w", j, name, err)
				}
				if len(t) != int(arity) {
					return fmt.Errorf("storage: tuple arity %d != %d in %v", len(t), arity, name)
				}
				rows = append(rows, t)
			}
			if _, err := bulk.BulkLoad(name, int(arity), rows); err != nil {
				return fmt.Errorf("storage: bulk loading %v: %w", name, err)
			}
			continue
		}
		rel := s.Ensure(name, int(arity))
		for j := uint64(0); j < n; j++ {
			t, err := term.ReadTuple(br)
			if err != nil {
				return fmt.Errorf("storage: reading tuple %d of %v: %w", j, name, err)
			}
			if len(t) != int(arity) {
				return fmt.Errorf("storage: tuple arity %d != %d in %v", len(t), arity, name)
			}
			rel.Insert(t)
		}
	}
	return nil
}

// SaveFile writes the store to path atomically (write temp file, rename).
func SaveFile(path string, s Store) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads an EDB image from path into the store.
func LoadFile(path string, s Store) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, s)
}
