// Multi-version snapshot reads: SnapStore/SnapRel give a concurrent read
// session an immutable, statement-boundary view of a MemStore while the
// (single) writer keeps committing.
//
// The mechanism is copy-on-write through the garbage collector rather than
// copy-on-read: capturing a snapshot copies only slice headers (tuples,
// cached hashes, dead stamps) under the writer's statement-boundary lock.
// Appends by the writer land beyond the captured length; structural
// rewrites (compact, Clear) swap in fresh backing arrays; and deletions
// stamp the shared dead slice with the deleting statement's CSN, which
// snapshot readers load atomically and compare against their snapshot CSN.
// A slot is visible at snapshot CSN S iff its dead stamp is 0 or > S. The
// writer never blocks on readers, readers never block the writer, and a
// snapshot's memory is reclaimed by the GC once the last reader drops it.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gluenail/internal/term"
)

// Snapshot captures an immutable view of every relation in the store at
// the current committed CSN. It must be called at a statement boundary —
// while no writer is mutating the store — which the public API guarantees
// by holding the system's writer lock; the returned view may then be read
// concurrently with later writers.
func (s *MemStore) Snapshot() *SnapStore {
	ss := &SnapStore{
		csn:  s.commitCSN.Load(),
		rels: make(map[string]*SnapRel, len(s.rels)),
	}
	for k, r := range s.rels {
		ss.rels[k] = newSnapRel(r, ss.csn, &ss.stats)
	}
	return ss
}

// SnapStore is the Store view a snapshot session reads: every relation is
// a SnapRel frozen at the capture CSN, relations created later do not
// exist, and mutation through it is a programming error (it panics).
type SnapStore struct {
	csn   uint64
	stats Stats
	// mu guards rels: reads come from resolve paths (possibly concurrent
	// morsel workers), and Ensure may install an empty placeholder.
	mu   sync.RWMutex
	rels map[string]*SnapRel
}

var _ Store = (*SnapStore)(nil)

// CSN returns the commit sequence number the snapshot was captured at.
func (s *SnapStore) CSN() uint64 { return s.csn }

// Ensure implements Store. A missing relation yields an empty read-only
// placeholder (writes to it panic, as on every snapshot relation).
func (s *SnapStore) Ensure(name term.Value, arity int) Rel {
	k := relKey(name, arity)
	s.mu.RLock()
	r, ok := s.rels[k]
	s.mu.RUnlock()
	if ok {
		return r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rels[k]; ok {
		return r
	}
	r = &SnapRel{name: name, arity: arity, csn: s.csn, stats: &s.stats}
	s.rels[k] = r
	return r
}

// Get implements Store.
func (s *SnapStore) Get(name term.Value, arity int) (Rel, bool) {
	s.mu.RLock()
	r, ok := s.rels[relKey(name, arity)]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return r, true
}

// Drop implements Store as a no-op: the snapshot is immutable.
func (s *SnapStore) Drop(name term.Value, arity int) {}

// Names implements Store.
func (s *SnapStore) Names() []RelName {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RelName, 0, len(s.rels))
	for _, r := range s.rels {
		out = append(out, RelName{Name: r.name, Arity: r.arity})
	}
	return out
}

// Stats implements Store; a snapshot session accounts its reads here, not
// against the live store.
func (s *SnapStore) Stats() *Stats { return &s.stats }

// SetJournal implements Store as a no-op: snapshots never mutate, so there
// is nothing to journal.
func (s *SnapStore) SetJournal(j Journal) {}

// SnapRel is one relation frozen at a snapshot CSN: the captured slice
// headers plus the visibility rule. Read methods filter by the shared
// dead stamps; write methods panic — the executor only routes reads at a
// snapshot (queries cannot contain EDB updates), so a write reaching here
// is a bug worth failing loudly on, and the VM's panic containment turns
// it into a typed error on the session's private machine.
type SnapRel struct {
	name  term.Value
	arity int
	csn   uint64
	// Captured headers; the writer appends past len and rewrites via
	// fresh arrays, so everything below len is frozen except the dead
	// stamps, which are loaded atomically.
	tuples []term.Tuple
	hashes []uint64
	dead   []uint64
	// src is the live relation, consulted only for planner statistics
	// (DistinctEst/StatsEpoch, both safe against the writer); nil for
	// empty placeholders.
	src     *Relation
	version uint64
	stats   *Stats

	// lenOnce lazily counts visible tuples: the planner asks Len, most
	// relations in a snapshot are never read, and the count is O(slots).
	lenOnce sync.Once
	n       int

	// Snapshot-local adaptive indexes: the live relation's indexes are
	// writer-maintained and unversioned, so a snapshot builds its own on
	// the same scan-credit policy. mu guards the maps; builds serialize
	// per mask through onces; credit accrues atomically so concurrent
	// morsel readers never lose updates.
	mu      sync.RWMutex
	indexes map[uint32]*hashIndex
	onces   map[uint32]*sync.Once
	credit  map[uint32]*atomic.Int64
}

var _ Rel = (*SnapRel)(nil)

func newSnapRel(r *Relation, csn uint64, stats *Stats) *SnapRel {
	return &SnapRel{
		name:    r.name,
		arity:   r.arity,
		csn:     csn,
		tuples:  r.tuples,
		hashes:  r.hashes,
		dead:    r.dead,
		src:     r,
		version: r.version,
		stats:   stats,
	}
}

// visible reports whether slot i exists at the snapshot CSN: live (stamp
// 0) or deleted by a statement that committed after the capture.
func (r *SnapRel) visible(i int) bool {
	d := atomic.LoadUint64(&r.dead[i])
	return d == 0 || d > r.csn
}

// Name implements Rel.
func (r *SnapRel) Name() term.Value { return r.name }

// Arity implements Rel.
func (r *SnapRel) Arity() int { return r.arity }

// Len implements Rel; the visible-tuple count is computed on first use.
func (r *SnapRel) Len() int {
	r.lenOnce.Do(func() {
		for i := range r.tuples {
			if r.visible(i) {
				r.n++
			}
		}
	})
	return r.n
}

// Version implements Rel with the version captured at the snapshot: the
// view never changes, so neither does its version.
func (r *SnapRel) Version() uint64 { return r.version }

// StatsEpoch implements Rel, delegating to the live relation: planner
// statistics describe the present, and any plan is correct against the
// snapshot — only its cost model benefits from freshness.
func (r *SnapRel) StatsEpoch() uint64 {
	if r.src == nil {
		return 0
	}
	return r.src.StatsEpoch()
}

// DistinctEst implements Rel, delegating to the live relation (guarded
// against the writer by its stats mutex).
func (r *SnapRel) DistinctEst(col int) int {
	if r.src == nil {
		return 0
	}
	return r.src.DistinctEst(col)
}

func (r *SnapRel) readOnly(op string) string {
	return fmt.Sprintf("storage: %s on relation %v/%d of a read-only snapshot (CSN %d)",
		op, r.name, r.arity, r.csn)
}

// Insert implements Rel by panicking: snapshots are read-only.
func (r *SnapRel) Insert(t term.Tuple) bool { panic(r.readOnly("Insert")) }

// Delete implements Rel by panicking: snapshots are read-only.
func (r *SnapRel) Delete(t term.Tuple) bool { panic(r.readOnly("Delete")) }

// Clear implements Rel by panicking: snapshots are read-only.
func (r *SnapRel) Clear() { panic(r.readOnly("Clear")) }

// UnionDiff implements Rel by panicking: snapshots are read-only.
func (r *SnapRel) UnionDiff(batch []term.Tuple) []term.Tuple {
	panic(r.readOnly("UnionDiff"))
}

// ModifyByKey implements Rel by panicking: snapshots are read-only.
func (r *SnapRel) ModifyByKey(mask uint32, rows []term.Tuple) {
	panic(r.readOnly("ModifyByKey"))
}

// Contains implements Rel: a hash-assisted scan over the captured slots
// (the live hash chains are writer-owned and unversioned), with scan
// credit accruing toward a snapshot-local whole-tuple index.
func (r *SnapRel) Contains(t term.Tuple) bool {
	full := fullColsMask(r.arity)
	if ix := r.index(full); ix != nil {
		found := false
		r.probe(ix, full, t, func(term.Tuple) bool { found = true; return false })
		return found
	}
	r.creditAndMaybeBuild(full, 1)
	h := t.Hash()
	for i := range r.tuples {
		if r.hashes[i] == h && r.visible(i) && r.tuples[i].Equal(t) {
			return true
		}
	}
	return false
}

// Scan implements Rel; visible tuples are visited in insertion order.
func (r *SnapRel) Scan(yield func(term.Tuple) bool) {
	atomic.AddInt64(&r.stats.RowsScanned, int64(len(r.tuples)))
	for i, t := range r.tuples {
		if !r.visible(i) {
			continue
		}
		if !yield(t) {
			return
		}
	}
}

// Lookup implements Rel: through a snapshot-local index when one has been
// built (probes enumerate insertion order, like the live relation's), a
// filtered scan otherwise, accruing credit toward building one.
func (r *SnapRel) Lookup(mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	if mask == 0 || len(r.tuples) == 0 {
		r.Scan(yield)
		return
	}
	if ix := r.index(mask); ix != nil {
		r.probe(ix, mask, key, yield)
		return
	}
	if once := r.creditAndMaybeBuild(mask, 1); once != nil {
		if ix := r.index(mask); ix != nil {
			r.probe(ix, mask, key, yield)
			return
		}
	}
	atomic.AddInt64(&r.stats.RowsScanned, int64(len(r.tuples)))
	for i, t := range r.tuples {
		if r.visible(i) && t.EqualCols(key, mask) {
			if !yield(t) {
				return
			}
		}
	}
}

// PrepareRead implements Rel: it pre-pays the adaptive accounting for the
// imminent lookups and builds the snapshot-local index now if the policy
// decides it should exist, so concurrent morsel readers find it published.
func (r *SnapRel) PrepareRead(mask uint32, lookups int) {
	if mask == 0 || len(r.tuples) == 0 || lookups <= 0 {
		return
	}
	if ix := r.index(mask); ix != nil {
		return
	}
	r.creditAndMaybeBuild(mask, int64(lookups))
}

// All implements Rel; the visible tuples in insertion order.
func (r *SnapRel) All() []term.Tuple {
	out := make([]term.Tuple, 0, len(r.tuples))
	for i, t := range r.tuples {
		if r.visible(i) {
			out = append(out, t)
		}
	}
	return out
}

// index returns the published snapshot-local index for mask, if any.
func (r *SnapRel) index(mask uint32) *hashIndex {
	r.mu.RLock()
	ix := r.indexes[mask]
	r.mu.RUnlock()
	return ix
}

// creditAndMaybeBuild charges `scans` full scans toward building a
// snapshot-local index on mask and builds it (exactly once, possibly
// racing other readers onto the same sync.Once) when the accumulated
// credit crosses the adaptive threshold — the same policy the live
// relation applies, minus the per-store knob: a snapshot always indexes
// adaptively, since it cannot fall back on the writer's indexes.
func (r *SnapRel) creditAndMaybeBuild(mask uint32, scans int64) *sync.Once {
	rows := int64(len(r.tuples))
	if rows == 0 {
		return nil
	}
	r.mu.RLock()
	c := r.credit[mask]
	r.mu.RUnlock()
	if c == nil {
		r.mu.Lock()
		if c = r.credit[mask]; c == nil {
			if r.credit == nil {
				r.credit = make(map[uint32]*atomic.Int64)
			}
			c = new(atomic.Int64)
			r.credit[mask] = c
		}
		r.mu.Unlock()
	}
	if c.Add(scans*rows) < adaptiveFactor*rows {
		return nil
	}
	once := r.buildGuard(mask)
	once.Do(func() { r.publishIndex(mask) })
	return once
}

// buildGuard returns the per-mask sync.Once serializing snapshot-local
// index builds.
func (r *SnapRel) buildGuard(mask uint32) *sync.Once {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.onces == nil {
		r.onces = make(map[uint32]*sync.Once)
	}
	once := r.onces[mask]
	if once == nil {
		once = new(sync.Once)
		r.onces[mask] = once
	}
	return once
}

// publishIndex builds the snapshot-local index over the visible tuples in
// insertion order and publishes it.
func (r *SnapRel) publishIndex(mask uint32) {
	ix := &hashIndex{mask: mask, buckets: make(map[uint64][]term.Tuple)}
	for i, t := range r.tuples {
		if r.visible(i) {
			ix.add(t)
		}
	}
	atomic.AddInt64(&r.stats.IndexBuilds, 1)
	r.mu.Lock()
	if r.indexes == nil {
		r.indexes = make(map[uint32]*hashIndex)
	}
	r.indexes[mask] = ix
	delete(r.credit, mask)
	r.mu.Unlock()
}

// probe answers a lookup from a snapshot-local index.
func (r *SnapRel) probe(ix *hashIndex, mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	for _, t := range ix.buckets[key.HashCols(mask)] {
		if t.EqualCols(key, mask) {
			atomic.AddInt64(&r.stats.RowsProbed, 1)
			if !yield(t) {
				return
			}
		}
	}
}

// fullColsMask returns the bitmask selecting every column of an
// arity-column relation.
func fullColsMask(arity int) uint32 { return (uint32(1) << uint(arity)) - 1 }
