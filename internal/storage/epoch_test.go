package storage

import (
	"testing"

	"gluenail/internal/term"
)

func intTuple(vals ...int64) term.Tuple {
	t := make(term.Tuple, len(vals))
	for i, v := range vals {
		t[i] = term.NewInt(v)
	}
	return t
}

// TestStatsEpochGeometricBumps checks the prepared-plan cache's invalidation
// contract: the epoch advances on doublings, halvings, and Clear, but stays
// put across the small steady-state deltas a repeat loop produces.
func TestStatsEpochGeometricBumps(t *testing.T) {
	r := NewRelation(term.Intern("r"), 1, IndexAdaptive, nil)
	if r.StatsEpoch() != 0 {
		t.Fatalf("fresh relation has epoch %d, want 0", r.StatsEpoch())
	}
	for i := int64(0); i < 1000; i++ {
		r.Insert(intTuple(i))
	}
	grown := r.StatsEpoch()
	if grown == 0 {
		t.Fatal("growing 0 -> 1000 rows never advanced the epoch")
	}
	if grown > 16 {
		t.Fatalf("1000 inserts advanced the epoch %d times; want O(log n)", grown)
	}

	// Steady state: insert/delete churn that never doubles or halves the
	// cardinality must keep the epoch (cached plans stay valid).
	for i := int64(0); i < 200; i++ {
		r.Insert(intTuple(2000 + i))
		r.Delete(intTuple(2000 + i))
	}
	if r.StatsEpoch() != grown {
		t.Errorf("steady-state churn moved the epoch %d -> %d", grown, r.StatsEpoch())
	}

	// Shrinking far enough must advance it. The reference point is the
	// cardinality at the last bump (at most the current count, at least
	// half of it), so dropping below a quarter of the peak is always past
	// the halving threshold.
	for i := int64(0); i < 800; i++ {
		r.Delete(intTuple(i))
	}
	shrunk := r.StatsEpoch()
	if shrunk == grown {
		t.Error("shrinking 1000 -> 200 rows never advanced the epoch")
	}

	r.Clear()
	if r.StatsEpoch() == shrunk {
		t.Error("Clear did not advance the epoch")
	}
}

// TestStatsEpochLayered checks the layered baseline forwards the epoch.
func TestStatsEpochLayered(t *testing.T) {
	s := NewLayeredStore(IndexAdaptive)
	rel := s.Ensure(term.Intern("r"), 1)
	before := rel.StatsEpoch()
	for i := int64(0); i < 100; i++ {
		rel.Insert(intTuple(i))
	}
	if rel.StatsEpoch() == before {
		t.Error("layered relation epoch did not advance on growth")
	}
}
