package storage

import (
	"sync"
	"testing"

	"gluenail/internal/term"
)

func itup(vals ...int64) term.Tuple {
	t := make(term.Tuple, len(vals))
	for i, v := range vals {
		t[i] = term.NewInt(v)
	}
	return t
}

// TestCompactionPreservesInsertionOrder deletes enough tuples to cross
// the tombstone threshold (dead > live && dead > 32) and checks the
// survivors still enumerate in their original insertion order.
func TestCompactionPreservesInsertionOrder(t *testing.T) {
	for _, policy := range []IndexPolicy{IndexNever, IndexAdaptive, IndexAlways} {
		r := NewRelation(term.NewString("c"), 2, policy, nil)
		const total = 100
		for i := 0; i < total; i++ {
			r.Insert(itup(int64(i), int64(i%7)))
		}
		// Warm an index so compaction also exercises index maintenance.
		r.Lookup(0b10, itup(0, 3), func(term.Tuple) bool { return true })
		// Delete every even row: 50 tombstones > 50 live is false, so keep
		// going past it — delete rows 0..65 to force dead > n && dead > 32.
		deleted := map[int64]bool{}
		for i := 0; i < 66; i++ {
			if !r.Delete(itup(int64(i), int64(i%7))) {
				t.Fatalf("policy %v: delete %d failed", policy, i)
			}
			deleted[int64(i)] = true
		}
		if r.Len() != total-66 {
			t.Fatalf("policy %v: Len=%d want %d", policy, r.Len(), total-66)
		}
		// Survivors must be 66..99 in insertion order.
		var got []int64
		r.Scan(func(tp term.Tuple) bool {
			got = append(got, tp[0].Int())
			return true
		})
		if len(got) != total-66 {
			t.Fatalf("policy %v: scan saw %d tuples, want %d", policy, len(got), total-66)
		}
		for i, v := range got {
			if want := int64(66 + i); v != want {
				t.Fatalf("policy %v: position %d has %d, want %d (insertion order broken by compaction)",
					policy, i, v, want)
			}
		}
		// Membership and lookups agree after compaction.
		for i := int64(0); i < total; i++ {
			want := !deleted[i]
			if r.Contains(itup(i, i%7)) != want {
				t.Errorf("policy %v: Contains(%d)=%v, want %v", policy, i, !want, want)
			}
		}
		n := 0
		r.Lookup(0b10, itup(0, 3), func(tp term.Tuple) bool {
			if tp[1].Int() != 3 {
				t.Errorf("policy %v: lookup yielded key %d, want 3", policy, tp[1].Int())
			}
			n++
			return true
		})
		want := 0
		for i := int64(66); i < total; i++ {
			if i%7 == 3 {
				want++
			}
		}
		if n != want {
			t.Errorf("policy %v: lookup found %d rows, want %d", policy, n, want)
		}
	}
}

// TestCompactionWithConcurrentReaders interleaves writer-driven
// compaction cycles with concurrent Scan/Lookup readers. Readers and the
// writer alternate through a mutex — the Rel contract allows concurrent
// readers but not a reader racing a writer — so under -race this checks
// the index rebuild and bucket swap in compact leave no torn state
// visible between mutations.
func TestCompactionWithConcurrentReaders(t *testing.T) {
	r := NewRelation(term.NewString("cc"), 2, IndexAdaptive, nil)
	var mu sync.RWMutex
	const rounds = 40
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				prev := int64(-1)
				n := 0
				r.Scan(func(tp term.Tuple) bool {
					if tp[0].Int() <= prev {
						t.Errorf("scan out of insertion order: %d after %d", tp[0].Int(), prev)
					}
					prev = tp[0].Int()
					n++
					return true
				})
				if n != r.Len() {
					t.Errorf("scan saw %d tuples, Len says %d", n, r.Len())
				}
				r.Lookup(0b10, itup(0, int64(g%5)), func(tp term.Tuple) bool {
					if tp[1].Int() != int64(g%5) {
						t.Errorf("lookup yielded wrong key %d", tp[1].Int())
					}
					return true
				})
				mu.RUnlock()
			}
		}(g)
	}
	next := int64(0)
	for round := 0; round < rounds; round++ {
		mu.Lock()
		// Grow by 50, then delete enough old rows to trip compaction.
		for i := 0; i < 50; i++ {
			r.Insert(itup(next, next%5))
			next++
		}
		for i := next - 50; i < next-10; i++ {
			r.Delete(itup(i, i%5))
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	if r.Len() != rounds*10 {
		t.Errorf("Len=%d, want %d", r.Len(), rounds*10)
	}
}
