package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gluenail/internal/term"
)

// TestQuickPersistenceRoundTrip: any randomly populated store survives a
// Save/Load cycle with identical contents.
func TestQuickPersistenceRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := NewMemStore(IndexAdaptive)
		nRels := 1 + rng.Intn(5)
		for r := 0; r < nRels; r++ {
			var name term.Value
			if rng.Intn(2) == 0 {
				name = term.NewString(string(rune('a' + r)))
			} else {
				name = term.Atom("fam", term.NewInt(int64(r)))
			}
			arity := 1 + rng.Intn(3)
			rel := src.Ensure(name, arity)
			for i := 0; i < rng.Intn(30); i++ {
				tup := make(term.Tuple, arity)
				for j := range tup {
					switch rng.Intn(4) {
					case 0:
						tup[j] = term.NewInt(int64(rng.Intn(100)))
					case 1:
						tup[j] = term.NewFloat(float64(rng.Intn(20)) / 4)
					case 2:
						tup[j] = term.NewString(string(rune('x' + rng.Intn(3))))
					default:
						tup[j] = term.Atom("g", term.NewInt(int64(rng.Intn(5))))
					}
				}
				rel.Insert(tup)
			}
		}
		var buf bytes.Buffer
		if err := Save(&buf, src); err != nil {
			return false
		}
		dst := NewMemStore(IndexAdaptive)
		if err := Load(&buf, dst); err != nil {
			return false
		}
		if len(dst.Names()) != len(src.Names()) {
			return false
		}
		for _, rn := range src.Names() {
			srcRel, _ := src.Get(rn.Name, rn.Arity)
			dstRel, ok := dst.Get(rn.Name, rn.Arity)
			if !ok || dstRel.Len() != srcRel.Len() {
				return false
			}
			for _, tup := range srcRel.All() {
				if !dstRel.Contains(tup) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionDiffInvariant: uniondiff's delta is exactly the batch
// minus what was already present, and the relation afterwards equals the
// union.
func TestQuickUnionDiffInvariant(t *testing.T) {
	prop := func(existing, batch []int8) bool {
		rel := NewRelation(term.NewString("u"), 1, IndexAdaptive, nil)
		before := map[int8]bool{}
		for _, v := range existing {
			rel.Insert(term.Tuple{term.NewInt(int64(v))})
			before[v] = true
		}
		tuples := make([]term.Tuple, len(batch))
		for i, v := range batch {
			tuples[i] = term.Tuple{term.NewInt(int64(v))}
		}
		delta := rel.UnionDiff(tuples)
		// Delta contains only genuinely new values, each exactly once.
		seen := map[int64]bool{}
		for _, d := range delta {
			v := d[0].Int()
			if before[int8(v)] || seen[v] {
				return false
			}
			seen[v] = true
		}
		// Union correctness.
		want := map[int8]bool{}
		for v := range before {
			want[v] = true
		}
		for _, v := range batch {
			want[v] = true
		}
		if rel.Len() != len(want) {
			return false
		}
		for v := range want {
			if !rel.Contains(term.Tuple{term.NewInt(int64(v))}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickModifyByKeyInvariant: after ModifyByKey, every row's key maps to
// exactly its new tuple, and unrelated keys are untouched.
func TestQuickModifyByKeyInvariant(t *testing.T) {
	prop := func(initial [][2]int8, updates [][2]int8) bool {
		rel := NewRelation(term.NewString("m"), 2, IndexAdaptive, nil)
		for _, kv := range initial {
			rel.Insert(term.Tuple{term.NewInt(int64(kv[0])), term.NewInt(int64(kv[1]))})
		}
		rows := make([]term.Tuple, len(updates))
		for i, kv := range updates {
			rows[i] = term.Tuple{term.NewInt(int64(kv[0])), term.NewInt(int64(kv[1]))}
		}
		rel.ModifyByKey(0b01, rows)
		// Model: later updates win per key; untouched keys keep all values.
		final := map[int8]map[int8]bool{}
		for _, kv := range initial {
			if final[kv[0]] == nil {
				final[kv[0]] = map[int8]bool{}
			}
			final[kv[0]][kv[1]] = true
		}
		for _, kv := range updates {
			final[kv[0]] = map[int8]bool{kv[1]: true}
		}
		n := 0
		for k, vs := range final {
			for v := range vs {
				n++
				if !rel.Contains(term.Tuple{term.NewInt(int64(k)), term.NewInt(int64(v))}) {
					return false
				}
			}
		}
		return rel.Len() == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
