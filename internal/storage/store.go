package storage

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"gluenail/internal/term"
)

// Store manages a namespace of relations keyed by HiLog name and arity. The
// executor uses one store for the persistent EDB and creates short-lived
// relations in it for procedure locals and supplementary materialization.
type Store interface {
	// Ensure returns the relation for (name, arity), creating it if absent.
	Ensure(name term.Value, arity int) Rel
	// Get returns the relation if it exists.
	Get(name term.Value, arity int) (Rel, bool)
	// Drop removes the relation; dropping a missing relation is a no-op.
	Drop(name term.Value, arity int)
	// Names returns the (name, arity) pairs of all live relations.
	Names() []RelName
	// Stats returns the shared back-end counters.
	Stats() *Stats
	// SetJournal attaches j to every current and future relation of the
	// store so successful mutations are observed for write-ahead logging;
	// nil detaches. Attach only while no mutation is in flight (the
	// executor mutates only at barriers and statement heads, which run
	// sequentially).
	SetJournal(j Journal)
}

// Journal observes successful EDB mutations. Callbacks fire only for
// mutations that changed state: an Insert of a present tuple, a Delete of
// a missing one, or a Clear of an empty relation is not reported. Tuples
// are passed by reference and must not be mutated (the Rel contract
// already forbids mutating stored tuples).
type Journal interface {
	// JournalCreate reports that a relation was created.
	JournalCreate(name term.Value, arity int)
	// JournalClear reports that a non-empty relation was emptied.
	JournalClear(name term.Value, arity int)
	// JournalInsert reports a tuple newly added to the relation.
	JournalInsert(name term.Value, arity int, t term.Tuple)
	// JournalDelete reports a tuple removed from the relation.
	JournalDelete(name term.Value, arity int, t term.Tuple)
}

// RelName identifies a relation in a store.
type RelName struct {
	Name  term.Value
	Arity int
}

// String renders "name/arity".
func (rn RelName) String() string {
	return rn.Name.String() + "/" + strconv.Itoa(rn.Arity)
}

func relKey(name term.Value, arity int) string {
	return term.Key(name) + "/" + strconv.Itoa(arity)
}

// MemStore is the tailored main-memory store (§10): no locking, no logging,
// relations are created and dropped in constant time.
//
// The store also owns the commit sequence number (CSN) that versions its
// relations: every mutation is stamped with commitCSN+1 (the CSN the
// statement in flight will commit as), AdvanceCSN publishes a statement
// boundary, and Snapshot captures an immutable view of every relation at
// the current committed CSN for concurrent readers.
type MemStore struct {
	rels    map[string]*Relation
	policy  IndexPolicy
	stats   Stats
	journal Journal
	// commitCSN is the last committed statement's sequence number; shared
	// with every relation as the deletion-stamp source.
	commitCSN atomic.Uint64
}

// NewMemStore returns an empty store whose relations follow the given index
// policy.
func NewMemStore(policy IndexPolicy) *MemStore {
	return &MemStore{rels: make(map[string]*Relation), policy: policy}
}

// Ensure implements Store.
func (s *MemStore) Ensure(name term.Value, arity int) Rel {
	return s.ensure(name, arity)
}

func (s *MemStore) ensure(name term.Value, arity int) *Relation {
	k := relKey(name, arity)
	if r, ok := s.rels[k]; ok {
		return r
	}
	r := NewRelation(name, arity, s.policy, &s.stats)
	r.journal = s.journal
	r.csn = &s.commitCSN
	s.rels[k] = r
	atomic.AddInt64(&s.stats.RelsCreated, 1)
	if s.journal != nil {
		s.journal.JournalCreate(name, arity)
	}
	return r
}

// Get implements Store.
func (s *MemStore) Get(name term.Value, arity int) (Rel, bool) {
	r, ok := s.rels[relKey(name, arity)]
	if !ok {
		return nil, false
	}
	return r, true
}

// Drop implements Store.
func (s *MemStore) Drop(name term.Value, arity int) {
	k := relKey(name, arity)
	if _, ok := s.rels[k]; ok {
		delete(s.rels, k)
		atomic.AddInt64(&s.stats.RelsDropped, 1)
	}
}

// Names implements Store.
func (s *MemStore) Names() []RelName {
	out := make([]RelName, 0, len(s.rels))
	for _, r := range s.rels {
		out = append(out, RelName{Name: r.name, Arity: r.arity})
	}
	return out
}

// Stats implements Store.
func (s *MemStore) Stats() *Stats { return &s.stats }

// SetJournal implements Store.
func (s *MemStore) SetJournal(j Journal) {
	s.journal = j
	for _, r := range s.rels {
		r.journal = j
	}
}

// CommitCSN returns the last committed statement's sequence number.
func (s *MemStore) CommitCSN() uint64 { return s.commitCSN.Load() }

// AdvanceCSN publishes a statement boundary: mutations stamped since the
// previous boundary become part of the returned CSN, and snapshots taken
// from here on see them. Called by the (single) writer at commit points.
func (s *MemStore) AdvanceCSN() uint64 { return s.commitCSN.Add(1) }

// String summarizes the store for diagnostics.
func (s *MemStore) String() string {
	return fmt.Sprintf("MemStore(%d relations)", len(s.rels))
}
