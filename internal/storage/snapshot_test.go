package storage

import (
	"fmt"
	"sync"
	"testing"

	"gluenail/internal/term"
)

// snapAll drains a snapshot relation through Scan.
func snapAll(r Rel) []term.Tuple {
	var out []term.Tuple
	r.Scan(func(t term.Tuple) bool { out = append(out, t); return true })
	return out
}

func tuplesEqual(a, b []term.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestSnapshotSeesCaptureState(t *testing.T) {
	s := NewMemStore(IndexAdaptive)
	name := term.NewString("e")
	r := s.Ensure(name, 2)
	for i := int64(0); i < 10; i++ {
		r.Insert(it(i, i+1))
	}
	s.AdvanceCSN()

	snap := s.Snapshot()
	before := snapAll(mustSnapRel(t, snap, name, 2))

	// Writer keeps going: deletes, inserts, commits.
	r.Delete(it(3, 4))
	r.Insert(it(100, 101))
	s.AdvanceCSN()

	after := snapAll(mustSnapRel(t, snap, name, 2))
	if !tuplesEqual(before, after) {
		t.Fatalf("snapshot changed under writer:\nbefore %v\nafter  %v", before, after)
	}
	if len(before) != 10 {
		t.Fatalf("snapshot sees %d tuples, want 10", len(before))
	}
	// The live view sees the new state.
	if r.Contains(it(3, 4)) || !r.Contains(it(100, 101)) {
		t.Fatal("live view missing writer's changes")
	}
	// A fresh snapshot sees the new state too.
	snap2 := s.Snapshot()
	sr2 := mustSnapRel(t, snap2, name, 2)
	if sr2.Contains(it(3, 4)) || !sr2.Contains(it(100, 101)) {
		t.Fatal("fresh snapshot missing committed changes")
	}
}

func TestSnapshotUncommittedDeleteInvisibleToNewSnapshot(t *testing.T) {
	// A delete stamped at commitCSN+1 must stay invisible to snapshots taken
	// at the current CSN until AdvanceCSN publishes it... but snapshots are
	// only captured at statement boundaries (no writer in flight), so the
	// observable contract is: a snapshot taken BEFORE the delete commits
	// still sees the tuple; one taken after does not.
	s := NewMemStore(IndexAdaptive)
	name := term.NewString("e")
	r := s.Ensure(name, 1)
	r.Insert(it(1))
	r.Insert(it(2))
	s.AdvanceCSN()

	old := s.Snapshot()
	r.Delete(it(1))
	s.AdvanceCSN()
	fresh := s.Snapshot()

	if got := len(snapAll(mustSnapRel(t, old, name, 1))); got != 2 {
		t.Fatalf("old snapshot sees %d tuples, want 2", got)
	}
	if got := len(snapAll(mustSnapRel(t, fresh, name, 1))); got != 1 {
		t.Fatalf("fresh snapshot sees %d tuples, want 1", got)
	}
}

func TestSnapshotSurvivesCompactionAndClear(t *testing.T) {
	s := NewMemStore(IndexAdaptive)
	name := term.NewString("e")
	r := s.Ensure(name, 1)
	for i := int64(0); i < 100; i++ {
		r.Insert(it(i))
	}
	s.AdvanceCSN()
	snap := s.Snapshot()
	before := snapAll(mustSnapRel(t, snap, name, 1))

	// Delete enough to trigger compaction (tombs > n && tombs > 32).
	for i := int64(0); i < 80; i++ {
		r.Delete(it(i))
	}
	s.AdvanceCSN()
	if got := snapAll(mustSnapRel(t, snap, name, 1)); !tuplesEqual(before, got) {
		t.Fatalf("snapshot changed across compaction: %d vs %d tuples", len(before), len(got))
	}

	r.Clear()
	s.AdvanceCSN()
	if got := snapAll(mustSnapRel(t, snap, name, 1)); !tuplesEqual(before, got) {
		t.Fatalf("snapshot changed across Clear: %d vs %d tuples", len(before), len(got))
	}
	if live := r.Len(); live != 0 {
		t.Fatalf("live Len = %d after Clear", live)
	}
}

func TestSnapshotLookupAndIndexes(t *testing.T) {
	s := NewMemStore(IndexAdaptive)
	name := term.NewString("e")
	r := s.Ensure(name, 2)
	for i := int64(0); i < 50; i++ {
		r.Insert(it(i%5, i))
	}
	s.AdvanceCSN()
	snap := s.Snapshot()
	sr := mustSnapRel(t, snap, name, 2)

	// Writer deletes some rows the snapshot must keep serving.
	for i := int64(0); i < 50; i += 2 {
		r.Delete(it(i%5, i))
	}
	s.AdvanceCSN()

	count := func() int {
		n := 0
		sr.Lookup(1, it(2, 0), func(t term.Tuple) bool { n++; return true })
		return n
	}
	first := count()
	if first != 10 {
		t.Fatalf("snapshot lookup returned %d rows, want 10", first)
	}
	// Hammer the same mask until the snapshot-local index builds, and check
	// the answer is identical through the index.
	sr.(*SnapRel).PrepareRead(1, 1000)
	if sr.(*SnapRel).index(1) == nil {
		t.Fatal("snapshot-local index not built after PrepareRead")
	}
	if got := count(); got != first {
		t.Fatalf("indexed lookup returned %d rows, want %d", got, first)
	}
	// Contains consults visibility too.
	if !sr.Contains(it(0, 0)) {
		t.Fatal("snapshot lost a tuple deleted after capture")
	}
	if sr.Contains(it(99, 99)) {
		t.Fatal("snapshot invented a tuple")
	}
	// Len counts visible tuples at capture.
	if sr.Len() != 50 {
		t.Fatalf("snapshot Len = %d, want 50", sr.Len())
	}
}

func TestSnapshotMissingRelationIsEmpty(t *testing.T) {
	s := NewMemStore(IndexAdaptive)
	snap := s.Snapshot()
	r := snap.Ensure(term.NewString("ghost"), 3)
	if r.Len() != 0 {
		t.Fatal("placeholder relation not empty")
	}
	if _, ok := snap.Get(term.NewString("ghost2"), 1); ok {
		t.Fatal("Get invented a relation")
	}
	var n int
	r.Scan(func(term.Tuple) bool { n++; return true })
	if n != 0 {
		t.Fatal("placeholder scan yielded tuples")
	}
}

func TestSnapshotWritesPanic(t *testing.T) {
	s := NewMemStore(IndexAdaptive)
	name := term.NewString("e")
	s.Ensure(name, 1).Insert(it(1))
	snap := s.Snapshot()
	sr := mustSnapRel(t, snap, name, 1)
	for op, fn := range map[string]func(){
		"Insert":      func() { sr.Insert(it(9)) },
		"Delete":      func() { sr.Delete(it(1)) },
		"Clear":       func() { sr.Clear() },
		"UnionDiff":   func() { sr.UnionDiff([]term.Tuple{it(9)}) },
		"ModifyByKey": func() { sr.ModifyByKey(1, []term.Tuple{it(9)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on snapshot relation did not panic", op)
				}
			}()
			fn()
		}()
	}
}

// TestSnapshotConcurrentWithWriter races 8 snapshot readers (scans, lookups,
// Contains, index builds) against a committing writer; run with -race.
func TestSnapshotConcurrentWithWriter(t *testing.T) {
	s := NewMemStore(IndexAdaptive)
	name := term.NewString("e")
	r := s.Ensure(name, 2)
	for i := int64(0); i < 200; i++ {
		r.Insert(it(i%10, i))
	}
	s.AdvanceCSN()

	snap := s.Snapshot()
	want := len(snapAll(mustSnapRel(t, snap, name, 2)))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sr := mustSnapRel(nil, snap, name, 2)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				if got := len(snapAll(sr)); got != want {
					errs <- fmt.Errorf("worker %d iter %d: scan saw %d tuples, want %d", w, iter, got, want)
					return
				}
				n := 0
				sr.Lookup(1, it(int64(iter%10), 0), func(term.Tuple) bool { n++; return true })
				if n != want/10 {
					errs <- fmt.Errorf("worker %d iter %d: lookup saw %d rows, want %d", w, iter, n, want/10)
					return
				}
				if !sr.Contains(it(int64(iter%10), int64(iter%200/10*10+iter%10))) {
					// Tuple layout: it(i%10, i) for i in [0,200); probe one
					// that exists: (k, i) with i%10==k.
					_ = n
				}
			}
		}(w)
	}

	// Writer: interleave deletes, inserts, commits, compaction, a Clear at
	// the end.
	for round := 0; round < 50; round++ {
		for i := int64(0); i < 4; i++ {
			r.Delete(it((int64(round)+i)%10, int64(round)*4+i))
			r.Insert(it(int64(round)%10, 1000+int64(round)*4+i))
		}
		s.AdvanceCSN()
	}
	r.Clear()
	s.AdvanceCSN()
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func mustSnapRel(t *testing.T, snap *SnapStore, name term.Value, arity int) Rel {
	r, ok := snap.Get(name, arity)
	if !ok {
		if t != nil {
			t.Helper()
			t.Fatalf("snapshot missing relation %v/%d", name, arity)
		}
		panic("snapshot missing relation")
	}
	return r
}
