package fsio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSRoundTrip exercises the pass-through FS end to end: every method
// the persistence stack relies on must behave exactly like package os.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.bin")
	f, err := OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("HELLO"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if f.Name() != path {
		t.Fatalf("Name = %q, want %q", f.Name(), path)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("ReadAt = %q", buf)
	}
	st, err := f.Stat()
	if err != nil || st.Size() != 11 {
		t.Fatalf("Stat = %v, %v", st, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "HELLO" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.bin")); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.bin" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Remove(filepath.Join(dir, "b.bin")); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "x", "y")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp, err := OS.MkdirTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := OS.RemoveAll(tmp); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(sub); err != nil {
		t.Fatal(err)
	}
}

// TestFaultAfterWindow verifies the deterministic After/Count window: the
// rule skips the first After matches, then trips Count times, then stops.
func TestFaultAfterWindow(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.Inject(Fault{Op: OpWrite, After: 1, Count: 1, Err: syscall.EIO})
	f, err := ffs.Create(filepath.Join(dir, "w"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1 (inside After window): %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write 2: got %v, want EIO", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3 (Count exhausted): %v", err)
	}
	if got := ffs.Trips(); got != 1 {
		t.Fatalf("Trips = %d, want 1", got)
	}
	if sites := ffs.TripSites(); len(sites) != 1 {
		t.Fatalf("TripSites = %v", sites)
	}
}

// TestFaultPathFilter verifies path-substring matching.
func TestFaultPathFilter(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.Inject(Fault{Op: OpCreate, Path: "run-", Err: syscall.ENOSPC})
	if _, err := ffs.Create(filepath.Join(dir, "manifest")); err != nil {
		t.Fatalf("non-matching create: %v", err)
	}
	if _, err := ffs.Create(filepath.Join(dir, "run-7.grn")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("matching create: got %v, want ENOSPC", err)
	}
}

// TestShortWrite verifies the torn-write semantics: the prefix really
// lands, the call still fails.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	ffs := NewFaultFS(OS)
	ffs.Inject(Fault{Op: OpWrite, ShortWrite: 4, Err: syscall.EIO})
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.EIO) || n != 4 {
		t.Fatalf("torn write: n=%d err=%v, want 4, EIO", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "0123" {
		t.Fatalf("on-disk prefix = %q, want %q", data, "0123")
	}
}

// TestShortWriteDefaultErr verifies a ShortWrite rule with no Err fails
// with io.ErrShortWrite.
func TestShortWriteDefaultErr(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.Inject(Fault{Op: OpWrite, ShortWrite: 1})
	f, err := ffs.Create(filepath.Join(dir, "t"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("xy")); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("got %v, want ErrShortWrite", err)
	}
}

// TestFlipBit verifies silent read-path bit rot on both ReadAt and
// ReadFile, and that the file itself is untouched.
func TestFlipBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rot")
	if err := os.WriteFile(path, []byte{0x00, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS)
	ffs.Inject(Fault{Op: OpRead, FlipBit: 9, Count: 1})
	data, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0x00 || data[1] != 0x02 {
		t.Fatalf("ReadFile = %x, want 0002", data)
	}
	// Count exhausted: the next read is clean.
	data, err = ffs.ReadFile(path)
	if err != nil || data[1] != 0x00 {
		t.Fatalf("second ReadFile = %x, %v", data, err)
	}
	ffs.Reset()
	ffs.Inject(Fault{Op: OpRead, FlipBit: 0, Count: 1})
	f, err := ffs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x01 {
		t.Fatalf("ReadAt = %x, want bit 0 flipped", buf)
	}
	// The stored bytes are pristine: rot is injected on the read path only.
	disk, _ := os.ReadFile(path)
	if disk[0] != 0x00 || disk[1] != 0x00 {
		t.Fatalf("on-disk bytes changed: %x", disk)
	}
}

// TestErrRuleDoesNotFlip verifies the zero-value FlipBit on an error rule
// is disarmed rather than silently flipping bit 0.
func TestErrRuleDoesNotFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte{0xFF}, 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS)
	ffs.Inject(Fault{Op: OpRead, Err: syscall.EIO, Count: 1})
	if _, err := ffs.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("got %v, want EIO", err)
	}
	data, err := ffs.ReadFile(path)
	if err != nil || data[0] != 0xFF {
		t.Fatalf("clean read after EIO rule: %x, %v", data, err)
	}
}

// TestSyncLie verifies a lying fsync reports success and counts as a trip.
func TestSyncLie(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.Inject(Fault{Op: OpSync, SyncLie: true})
	ffs.Inject(Fault{Op: OpSyncDir, SyncLie: true})
	f, err := ffs.Create(filepath.Join(dir, "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync returned %v", err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatalf("lying syncdir returned %v", err)
	}
	if got := ffs.Trips(); got != 2 {
		t.Fatalf("Trips = %d, want 2", got)
	}
}

// TestOpsSeen verifies the observation counters a harness sweeps After
// against, and that ClearRules keeps them while Reset clears them.
func TestOpsSeen(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	f, err := ffs.Create(filepath.Join(dir, "c"))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Write([]byte("y"))
	f.Sync()
	f.Close()
	if got := ffs.OpsSeen(OpWrite); got != 2 {
		t.Fatalf("OpsSeen(write) = %d, want 2", got)
	}
	if got := ffs.OpsSeen(OpSync); got != 1 {
		t.Fatalf("OpsSeen(sync) = %d, want 1", got)
	}
	ffs.ClearRules()
	if got := ffs.OpsSeen(OpWrite); got != 2 {
		t.Fatalf("OpsSeen after ClearRules = %d, want 2", got)
	}
	ffs.Reset()
	if got := ffs.OpsSeen(OpWrite); got != 0 {
		t.Fatalf("OpsSeen after Reset = %d, want 0", got)
	}
}

// TestOpenVsCreateClassification verifies O_CREATE routes through the
// OpCreate counter, plain opens through OpOpen.
func TestOpenVsCreateClassification(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	f, err := ffs.OpenFile(filepath.Join(dir, "n"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ffs.Open(filepath.Join(dir, "n")); err != nil {
		t.Fatal(err)
	}
	if ffs.OpsSeen(OpCreate) != 1 || ffs.OpsSeen(OpOpen) != 1 {
		t.Fatalf("create=%d open=%d, want 1/1", ffs.OpsSeen(OpCreate), ffs.OpsSeen(OpOpen))
	}
}

// TestCloseFault verifies an injected close error still closes the inner
// handle (no fd leak) and surfaces the error.
func TestCloseFault(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.Inject(Fault{Op: OpClose, Err: syscall.EIO})
	f, err := ffs.Create(filepath.Join(dir, "c"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("close: got %v, want EIO", err)
	}
}
