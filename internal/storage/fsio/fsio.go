// Package fsio is the filesystem seam under the persistence stack.
//
// Every file the WAL, the disk engine, and the checkpointer touch is
// opened through an FS and manipulated through its Files, so a test can
// swap the real filesystem for a fault-injecting one (FaultFS) and drive
// EIO, ENOSPC, torn writes, lying fsyncs, and read-time bit rot through
// the exact code paths production runs — the SQLite test-VFS method.
// The default implementation, OS, forwards straight to package os; the
// indirection is two words per call (an interface dispatch) and does not
// show on the E17/E18 profiles.
//
// The package sits below internal/storage on purpose: storage (and its
// engines) import fsio, never the reverse, so the seam carries no policy
// — classification of an injected error into the typed ErrDiskFault /
// ErrCorrupt family happens in the layers above.
package fsio

import (
	"io"
	"os"
)

// File is the per-handle surface the persistence stack uses: positional
// and streaming reads/writes, metadata, durability, and close. It is a
// strict subset of *os.File's method set, so osFile is a trivial wrapper.
type File interface {
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Stat returns the file's metadata.
	Stat() (os.FileInfo, error)
	// Sync flushes the file's data and metadata to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS is the directory-level surface: everything the stack does to the
// filesystem that is not through an open File.
type FS interface {
	// Open opens a file read-only.
	Open(name string) (File, error)
	// OpenFile opens a file with the given flags and mode.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Create creates (or truncates) a file for writing.
	Create(name string) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat returns a path's metadata.
	Stat(name string) (os.FileInfo, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file or empty directory.
	Remove(name string) error
	// RemoveAll deletes a path and everything under it.
	RemoveAll(path string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// MkdirTemp creates a fresh temporary directory.
	MkdirTemp(dir, pattern string) (string, error)
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(dir string) error
}

// OS is the production filesystem: straight pass-through to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}

// SyncDir makes renames within dir durable: metadata operations reach
// the disk only when the directory itself is synced. The close error is
// checked — a directory close failure is as much an I/O error as any.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
