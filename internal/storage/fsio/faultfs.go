package fsio

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Op classifies a filesystem operation for fault matching. OpRead covers
// both positional reads and whole-file reads; OpWrite covers Write and
// WriteAt.
type Op uint8

const (
	OpOpen Op = iota
	OpCreate
	OpRead
	OpWrite
	OpSync
	OpClose
	OpTruncate
	OpRename
	OpRemove
	OpReadDir
	OpMkdir
	OpStat
	OpSyncDir
	opMax
)

var opNames = [...]string{
	OpOpen: "open", OpCreate: "create", OpRead: "read", OpWrite: "write",
	OpSync: "sync", OpClose: "close", OpTruncate: "truncate",
	OpRename: "rename", OpRemove: "remove", OpReadDir: "readdir",
	OpMkdir: "mkdir", OpStat: "stat", OpSyncDir: "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", o)
}

// Fault is one injection rule. A rule matches an operation by kind and
// path substring; the After/Count window makes injection deterministic —
// "fail the third write to a run file" is a (OpWrite, "run-", After: 2)
// rule, and a harness enumerates every injection site by sweeping After
// from 0 to the op count of a clean run.
type Fault struct {
	// Op is the operation kind the rule matches.
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it.
	Path string
	// After skips the first After matching operations before tripping.
	After int
	// Count bounds how many times the rule trips; 0 means no bound.
	Count int
	// Err is the error to inject (syscall.EIO, syscall.ENOSPC, ...).
	// Rules with FlipBit >= 0 or SyncLie set leave it nil.
	Err error
	// ShortWrite, with OpWrite, truncates the write to this many bytes
	// before failing it — a torn write. The prefix really is written.
	ShortWrite int
	// FlipBit, with OpRead, flips the given bit (counted from the start
	// of the returned buffer) and reports success — silent bit rot on
	// the read path. A rule with none of Err/ShortWrite/SyncLie set is
	// a bit-flip rule; otherwise FlipBit is ignored.
	FlipBit int64
	// SyncLie, with OpSync or OpSyncDir, reports success without
	// syncing — a drive that acknowledges a flush it dropped.
	SyncLie bool
}

// FaultFS wraps an FS and injects scripted faults. All matching and
// counting is under one mutex, so concurrent use (the engine's
// background compactor, the WAL's writers) stays deterministic with
// respect to each rule's own counter.
type FaultFS struct {
	inner FS

	mu    sync.Mutex
	rules []*faultRule
	seen  [opMax]int
	sites map[string]int
}

type faultRule struct {
	Fault
	matched int
	tripped int
}

// NewFaultFS wraps inner (usually OS) for fault injection.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, sites: map[string]int{}}
}

// Inject adds a rule. Rules are independent; the first one that matches
// an operation and is inside its trip window fires.
func (f *FaultFS) Inject(ft Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ft.Err != nil || ft.SyncLie || ft.ShortWrite > 0 {
		// An error-type rule: disarm the bit flip so the FlipBit zero
		// value doesn't silently also corrupt bit 0 of reads.
		ft.FlipBit = -1
	}
	f.rules = append(f.rules, &faultRule{Fault: ft})
}

// Reset clears all rules and counters.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.seen = [opMax]int{}
	f.sites = map[string]int{}
}

// ClearRules drops the injection rules but keeps the observation
// counters — a harness observes a clean run, then scripts against it.
func (f *FaultFS) ClearRules() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// OpsSeen returns how many operations of kind op have been observed
// (matching or not, tripped or not). A harness runs the workload once on
// a clean FaultFS, reads OpsSeen, and then knows the sweep range for
// After.
func (f *FaultFS) OpsSeen(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen[op]
}

// Trips returns the total number of injected faults so far.
func (f *FaultFS) Trips() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, r := range f.rules {
		n += r.tripped
	}
	return n
}

// TripSites returns "op path" → trip count for every site that fired,
// sorted by site string. The per-site counters are what lets a test
// assert not just that a fault fired but where.
func (f *FaultFS) TripSites() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	sites := make([]string, 0, len(f.sites))
	for s, n := range f.sites {
		sites = append(sites, fmt.Sprintf("%s ×%d", s, n))
	}
	sort.Strings(sites)
	return sites
}

// match records an operation and returns the rule to apply, if any.
func (f *FaultFS) match(op Op, path string) *faultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seen[op]++
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		if r.Count > 0 && r.tripped >= r.Count {
			continue
		}
		r.tripped++
		f.sites[op.String()+" "+path]++
		return r
	}
	return nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if r := f.match(OpOpen, name); r != nil && r.Err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: r.Err}
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: name}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if flag&os.O_CREATE != 0 {
		op = OpCreate
	}
	if r := f.match(op, name); r != nil && r.Err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: r.Err}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: name}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if r := f.match(OpCreate, name); r != nil && r.Err != nil {
		return nil, &os.PathError{Op: "create", Path: name, Err: r.Err}
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	r := f.match(OpRead, name)
	if r != nil && r.Err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: r.Err}
	}
	data, err := f.inner.ReadFile(name)
	if err == nil && r != nil && r.FlipBit >= 0 {
		flipBit(data, r.FlipBit)
	}
	return data, err
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if r := f.match(OpReadDir, name); r != nil && r.Err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: r.Err}
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if r := f.match(OpStat, name); r != nil && r.Err != nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: r.Err}
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if r := f.match(OpRename, newpath); r != nil && r.Err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: r.Err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if r := f.match(OpRemove, name); r != nil && r.Err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: r.Err}
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) RemoveAll(path string) error {
	if r := f.match(OpRemove, path); r != nil && r.Err != nil {
		return &os.PathError{Op: "removeall", Path: path, Err: r.Err}
	}
	return f.inner.RemoveAll(path)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if r := f.match(OpMkdir, path); r != nil && r.Err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: r.Err}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) MkdirTemp(dir, pattern string) (string, error) {
	if r := f.match(OpMkdir, dir); r != nil && r.Err != nil {
		return "", &os.PathError{Op: "mkdirtemp", Path: dir, Err: r.Err}
	}
	return f.inner.MkdirTemp(dir, pattern)
}

func (f *FaultFS) SyncDir(dir string) error {
	if r := f.match(OpSyncDir, dir); r != nil {
		if r.SyncLie {
			return nil
		}
		if r.Err != nil {
			return &os.PathError{Op: "syncdir", Path: dir, Err: r.Err}
		}
	}
	return f.inner.SyncDir(dir)
}

// faultFile consults the parent FaultFS on every call, so rules injected
// after the file was opened still apply.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
}

func (f *faultFile) Name() string               { return f.path }
func (f *faultFile) Stat() (os.FileInfo, error) { return f.inner.Stat() }
func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	r := f.fs.match(OpRead, f.path)
	if r != nil && r.Err != nil {
		return 0, &os.PathError{Op: "read", Path: f.path, Err: r.Err}
	}
	n, err := f.inner.ReadAt(p, off)
	if r != nil && r.FlipBit >= 0 && r.FlipBit < int64(n)*8 {
		flipBit(p[:n], r.FlipBit)
	}
	return n, err
}

func (f *faultFile) Write(p []byte) (int, error) {
	if r := f.fs.match(OpWrite, f.path); r != nil {
		return f.tornWrite(p, r, func(q []byte) (int, error) { return f.inner.Write(q) })
	}
	return f.inner.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if r := f.fs.match(OpWrite, f.path); r != nil {
		return f.tornWrite(p, r, func(q []byte) (int, error) { return f.inner.WriteAt(q, off) })
	}
	return f.inner.WriteAt(p, off)
}

// tornWrite applies a write-path rule: short-write the prefix if asked,
// then fail. A torn write's prefix really lands, exactly like a sector
// boundary cutting a write(2) short.
func (f *faultFile) tornWrite(p []byte, r *faultRule, write func([]byte) (int, error)) (int, error) {
	err := r.Err
	if err == nil {
		err = io.ErrShortWrite
	}
	n := 0
	if r.ShortWrite > 0 {
		cut := r.ShortWrite
		if cut > len(p) {
			cut = len(p)
		}
		var werr error
		n, werr = write(p[:cut])
		if werr != nil {
			return n, werr
		}
	}
	return n, &os.PathError{Op: "write", Path: f.path, Err: err}
}

func (f *faultFile) Sync() error {
	if r := f.fs.match(OpSync, f.path); r != nil {
		if r.SyncLie {
			return nil
		}
		if r.Err != nil {
			return &os.PathError{Op: "sync", Path: f.path, Err: r.Err}
		}
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if r := f.fs.match(OpTruncate, f.path); r != nil && r.Err != nil {
		return &os.PathError{Op: "truncate", Path: f.path, Err: r.Err}
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error {
	if r := f.fs.match(OpClose, f.path); r != nil && r.Err != nil {
		_ = f.inner.Close()
		return &os.PathError{Op: "close", Path: f.path, Err: r.Err}
	}
	return f.inner.Close()
}

func flipBit(p []byte, bit int64) {
	if bit < 0 || bit >= int64(len(p))*8 {
		return
	}
	p[bit/8] ^= 1 << uint(bit%8)
}
