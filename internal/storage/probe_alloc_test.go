package storage

import (
	"fmt"
	"testing"

	"gluenail/internal/term"
)

// TestLookupProbeAllocs pins the probe path at zero allocations per lookup:
// both the whole-tuple chain walk (cached primary hashes) and a built
// column-mask index answer probes without materializing keys or buckets.
func TestLookupProbeAllocs(t *testing.T) {
	r := newRel(t, 2, IndexAdaptive)
	for i := 0; i < 500; i++ {
		r.Insert(term.Tuple{
			term.Intern(fmt.Sprintf("n%03d", i%100)),
			term.NewInt(int64(i)),
		})
	}
	r.PrepareRead(1, 1<<20) // force the col-0 index
	if !r.HasIndex(1) {
		t.Fatal("col-0 index was not built")
	}

	var hits int
	yield := func(term.Tuple) bool { hits++; return true }
	fullKey := term.Tuple{term.Intern("n042"), term.NewInt(42)}
	colKey := term.Tuple{term.Intern("n042"), {}}

	if got := testing.AllocsPerRun(50, func() {
		r.Lookup(r.fullMask(), fullKey, yield)
	}); got != 0 {
		t.Errorf("whole-tuple Lookup: %.1f allocs/probe, want 0", got)
	}
	if got := testing.AllocsPerRun(50, func() {
		r.Lookup(1, colKey, yield)
	}); got != 0 {
		t.Errorf("indexed column Lookup: %.1f allocs/probe, want 0", got)
	}
	if hits == 0 {
		t.Fatal("probes never matched; nothing was exercised")
	}
}

// TestInsertAllocsAmortized pins Insert at O(1) amortized allocations per
// tuple: the intrusive hash chain adds no per-bucket slice, so steady-state
// inserts only pay the amortized growth of the tuple/hash/next arrays and
// the buckets map.
func TestInsertAllocsAmortized(t *testing.T) {
	r := newRel(t, 2, IndexNever)
	tuples := make([]term.Tuple, 4096)
	for i := range tuples {
		tuples[i] = term.Tuple{term.NewInt(int64(i)), term.NewInt(int64(i % 7))}
	}
	next := 0
	got := testing.AllocsPerRun(len(tuples)-1, func() {
		r.Insert(tuples[next])
		next++
	})
	// Amortized slice/map growth stays well under one allocation per
	// insert; the old map[uint64][]int buckets paid ≥ 1 every time.
	if got > 0.5 {
		t.Errorf("Insert: %.3f allocs/tuple amortized, want ≤ 0.5", got)
	}
}
