package storage

import "fmt"

// Finding is one scrub/fsck observation about a persistent artifact. The
// WAL verifier and the disk engine's scrubber both produce them, and the
// fsck CLI renders them, so the type lives on the shared storage surface.
type Finding struct {
	// Artifact is the damaged structure class (same vocabulary as
	// CorruptError.Artifact).
	Artifact string
	// Path is the file the finding is about.
	Path string
	// Relation names the owning relation, when known.
	Relation string
	// Run is the owning run sequence number, when the artifact is part
	// of a run file.
	Run uint64
	// Offset is the byte offset of the damaged region; -1 if unknown.
	Offset int64
	// Detail says what failed.
	Detail string
	// Benign marks damage the recovery protocol already tolerates (a
	// torn tail the next open truncates). Benign findings are reported
	// but do not fail a verify-on-open.
	Benign bool
	// Healed reports that a repair pass rebuilt the artifact from
	// surviving data.
	Healed bool
	// Quarantined reports that a repair pass set the damaged file aside
	// because its tuple data could not be recovered.
	Quarantined bool
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s %s", f.Artifact, f.Path)
	if f.Relation != "" {
		s += fmt.Sprintf(" relation=%s", f.Relation)
	}
	if f.Run != 0 {
		s += fmt.Sprintf(" run=%d", f.Run)
	}
	if f.Offset >= 0 {
		s += fmt.Sprintf(" offset=%d", f.Offset)
	}
	if f.Detail != "" {
		s += ": " + f.Detail
	}
	switch {
	case f.Healed:
		s += " [healed]"
	case f.Quarantined:
		s += " [quarantined]"
	case f.Benign:
		s += " [benign]"
	}
	return s
}

// CountSerious returns how many findings are real damage (not benign,
// not already healed).
func CountSerious(fs []Finding) int {
	n := 0
	for _, f := range fs {
		if !f.Benign && !f.Healed {
			n++
		}
	}
	return n
}
