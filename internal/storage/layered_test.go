package storage

import (
	"testing"

	"gluenail/internal/term"
)

// TestLayeredFunctionalEquivalence drives both backends through the same
// workload and checks they agree; the layered store only differs in cost.
func TestLayeredFunctionalEquivalence(t *testing.T) {
	mem := NewMemStore(IndexAdaptive)
	lay := NewLayeredStore(IndexAdaptive)
	name := term.NewString("r")
	for _, s := range []Store{mem, lay} {
		r := s.Ensure(name, 2)
		for i := int64(0); i < 30; i++ {
			r.Insert(it(i%5, i))
		}
		r.Delete(it(0, 5))
		r.ModifyByKey(0b01, []term.Tuple{it(2, 777)})
	}
	a, _ := mem.Get(name, 2)
	b, _ := lay.Get(name, 2)
	if a.Len() != b.Len() {
		t.Fatalf("Len mismatch: mem=%d layered=%d", a.Len(), b.Len())
	}
	for _, tp := range a.All() {
		if !b.Contains(tp) {
			t.Errorf("layered missing %v", tp)
		}
	}
	// Lookup parity.
	count := func(r Rel) int {
		n := 0
		r.Lookup(0b01, it(3, 0), func(term.Tuple) bool { n++; return true })
		return n
	}
	if count(a) != count(b) {
		t.Errorf("lookup mismatch: mem=%d layered=%d", count(a), count(b))
	}
}

func TestLayeredChargesOverhead(t *testing.T) {
	lay := NewLayeredStore(IndexAdaptive)
	r := lay.Ensure(term.NewString("tmp"), 1)
	for i := int64(0); i < 10; i++ {
		r.Insert(it(i))
	}
	r.Scan(func(term.Tuple) bool { return true })
	lay.Drop(term.NewString("tmp"), 1)
	st := lay.Stats()
	if st.LogBytes == 0 {
		t.Error("layered store should write log bytes")
	}
	if st.LatchAcquires == 0 {
		t.Error("layered store should acquire latches")
	}
	if st.CatalogProbes == 0 {
		t.Error("layered store should probe the catalog")
	}
}

func TestLayeredVersionAndClear(t *testing.T) {
	lay := NewLayeredStore(IndexNever)
	r := lay.Ensure(term.NewString("r"), 1)
	v0 := r.Version()
	r.Insert(it(1))
	if r.Version() == v0 {
		t.Error("version should bump through the layered wrapper")
	}
	r.Clear()
	if r.Len() != 0 {
		t.Error("Clear through wrapper failed")
	}
	if r.Name().Str() != "r" || r.Arity() != 1 {
		t.Error("identity accessors wrong")
	}
}

func TestLayeredUnionDiffAndNames(t *testing.T) {
	lay := NewLayeredStore(IndexNever)
	r := lay.Ensure(term.NewString("r"), 1)
	r.Insert(it(1))
	delta := r.UnionDiff([]term.Tuple{it(1), it(2)})
	if len(delta) != 1 || !delta[0].Equal(it(2)) {
		t.Errorf("UnionDiff = %v", delta)
	}
	if len(lay.Names()) != 1 {
		t.Errorf("Names = %v", lay.Names())
	}
	if _, ok := lay.Get(term.NewString("nope"), 1); ok {
		t.Error("Get should miss")
	}
	got, ok := lay.Get(term.NewString("r"), 1)
	if !ok || got.Len() != 2 {
		t.Error("Get should return live relation")
	}
}

// BenchmarkStoreTemporaries measures the paper's E8 claim at the storage
// level: creating, filling, scanning and dropping many short-lived
// temporaries is much cheaper on the tailored backend.
func benchTemporaries(b *testing.B, s Store) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		name := term.Atom("tmp", term.NewInt(int64(i%97)))
		r := s.Ensure(name, 2)
		for j := int64(0); j < 20; j++ {
			r.Insert(it(j, j*2))
		}
		n := 0
		r.Scan(func(term.Tuple) bool { n++; return true })
		s.Drop(name, 2)
	}
}

func BenchmarkMemStoreTemporaries(b *testing.B) {
	benchTemporaries(b, NewMemStore(IndexAdaptive))
}

func BenchmarkLayeredStoreTemporaries(b *testing.B) {
	benchTemporaries(b, NewLayeredStore(IndexAdaptive))
}
