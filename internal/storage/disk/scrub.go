// Scrubbing and offline fsck: every persistent artifact the engine
// writes is checksummed, and this file is where the checksums get
// re-checked after the fact — because a CRC only helps against silent
// bit rot if something eventually reads it.
//
// Three entry points share the same verification core:
//
//   - Store.Scrub(repair) walks a live store end to end. With repair set,
//     runs whose auxiliary structures (hash section, bloom filter, footer,
//     trailer) are damaged but whose tuple blocks verify are rebuilt in
//     place from the decoded rows — queries are byte-identical before and
//     after — and runs with unrecoverable tuple damage are quarantined
//     (renamed aside, dropped from the relation) so reads keep serving
//     everything that still verifies.
//   - Store.startScrubber runs the same verification in the background at
//     low priority, one run per tick, reporting (never repairing) so an
//     operator learns about rot long before a query trips over it.
//   - FsckDir verifies a store directory offline, without opening the
//     store — usable exactly when corruption prevents opening it. With
//     repair set it performs the same aux-rebuild/quarantine, rewriting
//     the manifest when a quarantined run must leave it.
//
// The repair rule is strict: only artifacts that are pure functions of
// the surviving tuple data (hashes, blooms, footers, the manifest's run
// list) are ever rebuilt. Damaged tuple bytes are never guessed at — the
// file is set aside intact for forensics and the damage is reported.
package disk

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

// runImage is the result of verifying one run's bytes: the findings, and
// — when every tuple block decoded — the rows and recomputed hashes a
// repair pass rebuilds from.
type runImage struct {
	findings []storage.Finding
	arity    int
	rows     []term.Tuple
	hashes   []uint64
	tupleOK  bool
}

// decodeFrame verifies and decodes one CRC-framed block (8-byte header +
// payload). A non-empty detail means the frame failed.
func decodeFrame(dict *atomDict, frame []byte, arity int, legacy bool) ([]term.Tuple, string) {
	if len(frame) < 8 {
		return nil, "truncated block frame"
	}
	size := int(binary.LittleEndian.Uint32(frame[0:4]))
	if size != len(frame)-8 {
		return nil, "frame length does not match block metadata"
	}
	if crc32.ChecksumIEEE(frame[8:]) != binary.LittleEndian.Uint32(frame[4:8]) {
		return nil, "block checksum mismatch"
	}
	var rows []term.Tuple
	var err error
	if legacy {
		rows, err = decodeLegacyBlock(frame[8:])
	} else {
		rows, err = decodeBlockPayload(dict, frame[8:], arity)
	}
	if err != nil {
		return nil, err.Error()
	}
	return rows, ""
}

// appendHashSection renders the hash section exactly as encodeRun does.
func appendHashSection(dst []byte, hashes []uint64) []byte {
	start := len(dst)
	for _, h := range hashes {
		dst = binary.LittleEndian.AppendUint64(dst, h)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// ---- live scrub ----

// Scrub verifies every persistent artifact the store owns — manifest,
// intern table, and each run's blocks, hash section, bloom filter,
// footer and trailer — and reports one Finding per damaged region. With
// repair set, aux-only damage is healed in place and tuple damage is
// quarantined (see the package comment); repairs that changed the run
// lists are made durable with a manifest rewrite.
func (s *Store) Scrub(repair bool) []storage.Finding {
	var findings []storage.Finding
	if !s.opts.Ephemeral {
		findings = append(findings, verifyManifestFile(s.fsys, s.dir)...)
		findings = append(findings, verifyInternFile(s.fsys, s.dir)...)
	}
	s.mu.RLock()
	rels := append([]*Rel(nil), s.order...)
	s.mu.RUnlock()
	changed := false
	for _, r := range rels {
		for _, rn := range *r.runs.Load() {
			fs, c := s.scrubRun(r, rn, repair)
			findings = append(findings, fs...)
			changed = changed || c
		}
	}
	if changed && !s.opts.Ephemeral && s.Degraded() == nil {
		if err := s.persistManifest(rels); err != nil {
			findings = append(findings, storage.Finding{
				Artifact: "manifest", Path: filepath.Join(s.dir, manifestName), Offset: -1,
				Detail: fmt.Sprintf("rewrite after repair failed: %v", err),
			})
		}
	}
	return findings
}

func (s *Store) scrubRun(r *Rel, rn *run, repair bool) ([]storage.Finding, bool) {
	// Retain under mu: retireRuns releases its references under the same
	// lock, so the handle cannot close mid-verify.
	s.mu.RLock()
	rn.retain()
	s.mu.RUnlock()
	defer rn.release()
	v := verifyRunHandle(rn, fmt.Sprint(r.name))
	if len(v.findings) == 0 {
		return nil, false
	}
	if !repair || s.Degraded() != nil {
		return v.findings, false
	}
	if v.tupleOK {
		if s.healRun(r, rn, v) {
			for i := range v.findings {
				v.findings[i].Healed = true
			}
			return v.findings, true
		}
	} else if s.quarantineRun(r, rn) {
		for i := range v.findings {
			v.findings[i].Quarantined = true
		}
		return v.findings, true
	}
	return v.findings, false
}

// verifyRunHandle re-verifies one open run's on-disk bytes end to end:
// every block frame is read back and decoded, the hash section is
// CRC-checked and compared against hashes recomputed from the decoded
// rows, the bloom filter is probed with every recomputed hash (a false
// negative would silently drop rows from membership checks), and the
// footer/trailer seals are re-read.
func verifyRunHandle(rn *run, rel string) runImage {
	v := runImage{tupleOK: true, arity: rn.arity}
	bad := func(artifact string, off int64, detail string) {
		v.findings = append(v.findings, storage.Finding{
			Artifact: artifact, Path: rn.path, Relation: rel, Run: rn.seq,
			Offset: off, Detail: detail,
		})
	}
	for bi, bm := range rn.blocks {
		buf := make([]byte, bm.size)
		if _, err := rn.f.ReadAt(buf, bm.off); err != nil {
			bad("run-block", bm.off, fmt.Sprintf("block %d unreadable: %v", bi, err))
			v.tupleOK = false
			continue
		}
		rows, detail := decodeFrame(rn.dict, buf, rn.arity, !rn.v2)
		if detail != "" {
			bad("run-block", bm.off, fmt.Sprintf("block %d: %s", bi, detail))
			v.tupleOK = false
			continue
		}
		v.rows = append(v.rows, rows...)
		for _, t := range rows {
			v.hashes = append(v.hashes, t.Hash())
		}
	}
	if rn.v2 {
		hb := make([]byte, int(rn.nrows)*8+4)
		if _, err := rn.f.ReadAt(hb, rn.hashOff); err != nil {
			bad("run-hash-section", rn.hashOff, fmt.Sprintf("unreadable: %v", err))
		} else if crc32.ChecksumIEEE(hb[:len(hb)-4]) != binary.LittleEndian.Uint32(hb[len(hb)-4:]) {
			bad("run-hash-section", rn.hashOff, "hash section checksum mismatch")
		} else if v.tupleOK && len(v.hashes) == int(rn.nrows) {
			for i, h := range v.hashes {
				if binary.LittleEndian.Uint64(hb[i*8:]) != h {
					bad("run-hash-section", rn.hashOff+int64(i*8), "stored row hash does not match tuple data")
					break
				}
			}
		}
		verifyRunSeal(rn, bad)
	} else if v.tupleOK && len(rn.hashes) == len(v.hashes) {
		for i, h := range v.hashes {
			if rn.hashes[i] != h {
				bad("run-hash-section", -1, "resident row hash does not match tuple data")
				break
			}
		}
	}
	if v.tupleOK && rn.bloom != nil {
		for _, h := range v.hashes {
			if !rn.bloom.mayContain(h) {
				bad("run-bloom", -1, "bloom filter misses a stored row hash")
				break
			}
		}
	}
	return v
}

// verifyRunSeal re-reads a RUN2 file's trailer and footer seals.
func verifyRunSeal(rn *run, bad func(artifact string, off int64, detail string)) {
	fi, err := rn.f.Stat()
	if err != nil {
		bad("run-trailer", -1, fmt.Sprintf("stat: %v", err))
		return
	}
	if fi.Size() < int64(runTrailerLen) {
		bad("run-trailer", fi.Size(), "truncated run trailer")
		return
	}
	toff := fi.Size() - int64(runTrailerLen)
	var tr [runTrailerLen]byte
	if _, err := rn.f.ReadAt(tr[:], toff); err != nil {
		bad("run-trailer", toff, fmt.Sprintf("unreadable: %v", err))
		return
	}
	if string(tr[16:]) != runTrailerMagic {
		bad("run-trailer", toff, "bad run trailer magic")
		return
	}
	fo := int64(binary.LittleEndian.Uint64(tr[0:8]))
	fl := int64(binary.LittleEndian.Uint32(tr[8:12]))
	sum := binary.LittleEndian.Uint32(tr[12:16])
	if fo < int64(len(runMagic2)) || fo+fl+int64(runTrailerLen) != fi.Size() {
		bad("run-trailer", toff, "bad run footer bounds")
		return
	}
	foot := make([]byte, fl)
	if _, err := rn.f.ReadAt(foot, fo); err != nil {
		bad("run-footer", fo, fmt.Sprintf("unreadable: %v", err))
		return
	}
	if crc32.ChecksumIEEE(foot) != sum {
		bad("run-footer", fo, "run footer checksum mismatch")
	}
}

// healRun replaces a run whose auxiliary structures are damaged but whose
// tuple blocks all verified: a fresh run with the same rows — hence the
// same slots, so tombstones carry over — is installed in its position.
// Content-identical, like a compaction install, and guarded the same way:
// if the run list moved under us the healed file is discarded and the
// next scrub retries.
func (s *Store) healRun(r *Rel, rn *run, v runImage) bool {
	seq := s.nextRunSeq()
	nr, err := createRun(s, seq, rn.arity, v.rows, v.hashes, true)
	if err != nil {
		s.setDegraded(err)
		return false
	}
	r.relMu.Lock()
	cur := *r.runs.Load()
	idx := -1
	for i, x := range cur {
		if x == rn {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.relMu.Unlock()
		_ = s.fsys.Remove(nr.path)
		nr.release()
		return false
	}
	if tm := rn.tombs.Load(); tm != nil {
		cp := make(map[int32]uint64, len(*tm))
		for k, csn := range *tm {
			cp[k] = csn
		}
		nr.tombs.Store(&cp)
	}
	nl := append([]*run(nil), cur...)
	nl[idx] = nr
	r.runs.Store(&nl)
	r.relMu.Unlock()
	s.retireRuns([]*run{rn})
	return true
}

// quarantineRun sets aside a run whose tuple data failed verification:
// the file is renamed out of the run namespace — never deleted; the
// surviving bytes may matter — and the run leaves the relation, so reads
// keep serving everything that still verifies. The distinct digest keeps
// counting the lost rows (it is an estimate; staying conservative is
// fine), but partial-mask indexes are dropped so no decoded copy of a
// quarantined row survives in memory.
func (s *Store) quarantineRun(r *Rel, rn *run) bool {
	r.relMu.Lock()
	cur := *r.runs.Load()
	idx := -1
	for i, x := range cur {
		if x == rn {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.relMu.Unlock()
		return false
	}
	nl := make([]*run, 0, len(cur)-1)
	nl = append(nl, cur[:idx]...)
	nl = append(nl, cur[idx+1:]...)
	r.runs.Store(&nl)
	r.diskLive -= rn.liveNow()
	r.version++
	r.relMu.Unlock()
	r.statsEpoch.Add(1)
	r.ixMu.Lock()
	r.ixs, r.ixCredit, r.ixOnces = nil, nil, nil
	r.ixMu.Unlock()
	if err := s.fsys.Rename(rn.path, rn.path+".quarantined"); err != nil {
		fmt.Fprintf(os.Stderr, "gluenail: disk: quarantining %s: %v\n", rn.path, err)
	}
	s.retireRuns([]*run{rn})
	return true
}

// ---- background scrubber ----

// startScrubber verifies one run per interval in the background,
// reporting findings to stderr. Verification only — repair changes run
// lists and is the operator's call (Scrub(true) or gluenail fsck).
func (s *Store) startScrubber(interval time.Duration) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-tick.C:
			}
			for _, f := range s.scrubOne() {
				fmt.Fprintf(os.Stderr, "gluenail: disk: scrub: %s\n", f.String())
			}
		}
	}()
}

// scrubOne verifies the run with the smallest sequence above the cursor,
// wrapping to the smallest overall when the cursor passes the end.
func (s *Store) scrubOne() []storage.Finding {
	s.mu.RLock()
	var pick, first *run
	var pickRel, firstRel *Rel
	bestSeq, firstSeq := ^uint64(0), ^uint64(0)
	for _, r := range s.order {
		for _, rn := range *r.runs.Load() {
			if rn.seq < firstSeq {
				firstSeq, first, firstRel = rn.seq, rn, r
			}
			if rn.seq > s.scrubCursor && rn.seq < bestSeq {
				bestSeq, pick, pickRel = rn.seq, rn, r
			}
		}
	}
	if pick == nil {
		pick, pickRel = first, firstRel
	}
	if pick != nil {
		pick.retain()
	}
	s.mu.RUnlock()
	if pick == nil {
		return nil
	}
	defer pick.release()
	s.mu.Lock()
	s.scrubCursor = pick.seq
	s.mu.Unlock()
	return verifyRunHandle(pick, fmt.Sprint(pickRel.name)).findings
}

// ---- shared file verifiers ----

// verifyManifestFile checks the manifest's envelope and decodes its
// payload; a missing manifest (fresh store) is fine.
func verifyManifestFile(fsys fsio.FS, dir string) []storage.Finding {
	path := filepath.Join(dir, manifestName)
	data, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return []storage.Finding{{Artifact: "manifest", Path: path, Offset: -1,
			Detail: fmt.Sprintf("unreadable: %v", err)}}
	}
	if _, err := parseManifestImage(data); err != nil {
		return []storage.Finding{{Artifact: "manifest", Path: path, Offset: 0,
			Detail: err.Error()}}
	}
	return nil
}

// verifyInternFile walks the intern table's records. A record the file
// cuts short is a torn append (benign: load truncates it); a complete
// record with a failing CRC — or an impossible prefix length — is rot,
// and everything after it is unrecoverable because prefix compression
// chains each record to its predecessor.
func verifyInternFile(fsys fsio.FS, dir string) []storage.Finding {
	path := filepath.Join(dir, internFileName)
	data, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return []storage.Finding{{Artifact: "intern", Path: path, Offset: -1,
			Detail: fmt.Sprintf("unreadable: %v", err)}}
	}
	if len(data) == 0 {
		return nil
	}
	if len(data) < len(internMagic) || string(data[:len(internMagic)]) != internMagic {
		return []storage.Finding{{Artifact: "intern", Path: path, Offset: 0,
			Detail: "bad intern table header"}}
	}
	prev := ""
	pos := len(internMagic)
	for pos < len(data) {
		rec, next, ok := parseInternRecord(data, pos, prev)
		if !ok {
			if internTailTorn(data, pos, prev) {
				return []storage.Finding{{Artifact: "intern", Path: path, Offset: int64(pos),
					Detail: "torn trailing record", Benign: true}}
			}
			return []storage.Finding{{Artifact: "intern", Path: path, Offset: int64(pos),
				Detail: "record checksum mismatch; this and later entries are unrecoverable"}}
		}
		prev = rec.s
		pos = next
	}
	return nil
}

// internTailTorn reports whether the invalid record at pos is explainable
// as a torn append — the bytes run out mid-record — rather than in-place
// damage to a complete record.
func internTailTorn(data []byte, pos int, prev string) bool {
	pfx, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return true
	}
	p := pos + n
	sfx, n2 := binary.Uvarint(data[p:])
	if n2 <= 0 {
		return true
	}
	p += n2
	if int(pfx) > len(prev) {
		// A record is appended whole with a valid prefix length; a
		// complete varint claiming an impossible prefix means the bytes
		// changed after the write.
		return false
	}
	return p+int(sfx)+12 > len(data)
}

// ---- offline fsck ----

// FsckDir verifies a disk store's directory without opening the store —
// usable exactly when corruption prevents opening it. With repair set,
// runs with aux-only damage are rebuilt in place from their intact tuple
// blocks, runs with tuple damage (or missing files) are quarantined and
// dropped from the manifest, and the manifest is rewritten atomically.
func FsckDir(dir string, repair bool) ([]storage.Finding, error) {
	return FsckDirFS(fsio.OS, dir, repair)
}

// FsckDirFS is FsckDir over an explicit filesystem.
func FsckDirFS(fsys fsio.FS, dir string, repair bool) ([]storage.Finding, error) {
	if _, err := fsys.Stat(dir); err != nil {
		return nil, storage.IOFault("fsck", dir, err)
	}
	var findings []storage.Finding

	manifestPath := filepath.Join(dir, manifestName)
	var img *manifestImage
	if mdata, err := fsys.ReadFile(manifestPath); err == nil {
		img, err = parseManifestImage(mdata)
		if err != nil {
			// Report-only: the manifest is the durability root, and
			// rebuilding it would be guessing which runs form the
			// statement-boundary state.
			findings = append(findings, storage.Finding{Artifact: "manifest",
				Path: manifestPath, Offset: 0, Detail: err.Error()})
		}
	} else if !os.IsNotExist(err) {
		findings = append(findings, storage.Finding{Artifact: "manifest",
			Path: manifestPath, Offset: -1, Detail: fmt.Sprintf("unreadable: %v", err)})
	}

	findings = append(findings, verifyInternFile(fsys, dir)...)
	dict := loadDictReadOnly(fsys, dir)

	// Run -> relation attribution from the manifest, when it parsed.
	owner := map[uint64]string{}
	named := map[uint64]bool{}
	if img != nil {
		for _, r := range img.rels {
			for _, seq := range r.runs {
				owner[seq] = fmt.Sprint(r.name)
				named[seq] = true
			}
		}
	}

	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return findings, storage.IOFault("fsck", dir, err)
	}
	present := map[uint64]bool{}
	quarantined := map[uint64]bool{}
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "run-%d.grn", &seq); err != nil || e.Name() != runName(seq) {
			continue
		}
		present[seq] = true
		if img != nil && !named[seq] {
			// Orphan of an interrupted flush: the next open sweeps it.
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := fsys.ReadFile(path)
		if err != nil {
			f := storage.Finding{Artifact: "run-header", Path: path, Relation: owner[seq],
				Run: seq, Offset: -1, Detail: fmt.Sprintf("unreadable: %v", err)}
			if repair && img != nil {
				quarantined[seq] = true
				f.Quarantined = true
			}
			findings = append(findings, f)
			continue
		}
		v := verifyRunBytes(dict, path, owner[seq], seq, data)
		if len(v.findings) == 0 {
			continue
		}
		if repair {
			if v.tupleOK {
				if err := rewriteRunFile(fsys, path, v.arity, v.rows, v.hashes); err != nil {
					findings = append(findings, storage.Finding{Artifact: "run-header",
						Path: path, Relation: owner[seq], Run: seq, Offset: -1,
						Detail: fmt.Sprintf("rebuild failed: %v", err)})
				} else {
					for i := range v.findings {
						v.findings[i].Healed = true
					}
				}
			} else if img != nil && named[seq] {
				if err := fsys.Rename(path, path+".quarantined"); err == nil {
					quarantined[seq] = true
					for i := range v.findings {
						v.findings[i].Quarantined = true
					}
				}
			}
		}
		findings = append(findings, v.findings...)
	}
	if img != nil {
		for _, r := range img.rels {
			for _, seq := range r.runs {
				if present[seq] || quarantined[seq] {
					continue
				}
				f := storage.Finding{Artifact: "run-header", Path: filepath.Join(dir, runName(seq)),
					Relation: fmt.Sprint(r.name), Run: seq, Offset: -1, Detail: "run file missing"}
				if repair {
					quarantined[seq] = true
					f.Quarantined = true
				}
				findings = append(findings, f)
			}
		}
	}
	if repair && img != nil && len(quarantined) > 0 {
		for i := range img.rels {
			kept := img.rels[i].runs[:0]
			for _, seq := range img.rels[i].runs {
				if !quarantined[seq] {
					kept = append(kept, seq)
				}
			}
			img.rels[i].runs = kept
		}
		if err := writeManifestImage(fsys, dir, img); err != nil {
			findings = append(findings, storage.Finding{Artifact: "manifest",
				Path: manifestPath, Offset: -1,
				Detail: fmt.Sprintf("rewrite after quarantine failed: %v", err)})
		}
	}
	return findings, nil
}

// verifyRunBytes verifies one run file image end to end, offline. When
// the footer is unusable, blocks are recovered by frame-walking from the
// header — each frame is individually CRC-sealed, so a walk that ends
// exactly at the (recomputed) hash section has provably found every
// block.
func verifyRunBytes(dict *atomDict, path, rel string, seq uint64, data []byte) runImage {
	v := runImage{tupleOK: true}
	bad := func(artifact string, off int64, detail string) {
		v.findings = append(v.findings, storage.Finding{
			Artifact: artifact, Path: path, Relation: rel, Run: seq,
			Offset: off, Detail: detail,
		})
	}
	if len(data) < len(runMagic2) {
		bad("run-header", 0, "file truncated below header")
		v.tupleOK = false
		return v
	}
	legacy := false
	switch string(data[:len(runMagic2)]) {
	case runMagic2:
	case runMagic1:
		legacy = true
	default:
		bad("run-header", 0, "bad run magic")
		v.tupleOK = false
		return v
	}
	pos := len(runMagic2)
	arity, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		bad("run-header", int64(pos), "truncated arity")
		v.tupleOK = false
		return v
	}
	v.arity = int(arity)
	dataStart := pos + n

	walkFrames := func(limit int) int {
		p := dataStart
		for p+8 <= limit {
			size := int(binary.LittleEndian.Uint32(data[p : p+4]))
			if p+8+size > limit {
				break
			}
			if crc32.ChecksumIEEE(data[p+8:p+8+size]) != binary.LittleEndian.Uint32(data[p+4:p+8]) {
				break
			}
			rows, detail := decodeFrame(dict, data[p:p+8+size], v.arity, legacy)
			if detail != "" {
				bad("run-block", int64(p), detail)
				v.tupleOK = false
				break
			}
			v.rows = append(v.rows, rows...)
			for _, t := range rows {
				v.hashes = append(v.hashes, t.Hash())
			}
			p += 8 + size
		}
		return p
	}

	if legacy {
		// Legacy runs are frames to EOF, nothing else.
		end := walkFrames(len(data))
		if v.tupleOK && end != len(data) {
			bad("run-block", int64(end), "truncated or corrupt block")
			v.tupleOK = false
		}
		return v
	}

	// Trailer and footer.
	var rf runFooter
	footerOK := false
	var footOff int64 = -1
	toff := int64(len(data) - runTrailerLen)
	if len(data) < dataStart+runTrailerLen || string(data[len(data)-len(runTrailerMagic):]) != runTrailerMagic {
		bad("run-trailer", max64(0, toff), "truncated or bad run trailer")
	} else {
		tr := data[toff:]
		fo := int64(binary.LittleEndian.Uint64(tr[0:8]))
		fl := int64(binary.LittleEndian.Uint32(tr[8:12]))
		sum := binary.LittleEndian.Uint32(tr[12:16])
		switch {
		case fo < int64(dataStart) || fo+fl+int64(runTrailerLen) != int64(len(data)):
			bad("run-trailer", toff, "bad run footer bounds")
		case crc32.ChecksumIEEE(data[fo:fo+fl]) != sum:
			bad("run-footer", fo, "run footer checksum mismatch")
		default:
			var artifact, detail string
			rf, artifact, detail = parseRunFooter(data[fo:fo+fl], int64(dataStart))
			if detail != "" {
				bad(artifact, fo, detail)
			} else {
				footerOK = true
				footOff = fo
			}
		}
	}

	if footerOK {
		for bi, bm := range rf.blocks {
			if bm.off < int64(dataStart) || bm.off+int64(bm.size) > int64(len(data)) {
				bad("run-block", bm.off, fmt.Sprintf("block %d out of bounds", bi))
				v.tupleOK = false
				continue
			}
			rows, detail := decodeFrame(dict, data[bm.off:bm.off+int64(bm.size)], v.arity, false)
			if detail != "" {
				bad("run-block", bm.off, fmt.Sprintf("block %d: %s", bi, detail))
				v.tupleOK = false
				continue
			}
			v.rows = append(v.rows, rows...)
			for _, t := range rows {
				v.hashes = append(v.hashes, t.Hash())
			}
		}
		if v.tupleOK && int32(len(v.rows)) != rf.nrows {
			bad("run-footer", footOff, "footer row count does not match block contents")
		}
		hend := rf.hashOff + int64(rf.nrows)*8 + 4
		if rf.hashOff < int64(dataStart) || hend > int64(len(data)) {
			bad("run-footer", footOff, "hash section out of bounds")
		} else {
			hsec := data[rf.hashOff:hend]
			if crc32.ChecksumIEEE(hsec[:len(hsec)-4]) != binary.LittleEndian.Uint32(hsec[len(hsec)-4:]) {
				bad("run-hash-section", rf.hashOff, "hash section checksum mismatch")
			} else if v.tupleOK && int32(len(v.hashes)) == rf.nrows {
				for i, h := range v.hashes {
					if binary.LittleEndian.Uint64(hsec[i*8:]) != h {
						bad("run-hash-section", rf.hashOff+int64(i*8), "stored row hash does not match tuple data")
						break
					}
				}
			}
		}
		if v.tupleOK && rf.bloom != nil {
			for _, h := range v.hashes {
				if !rf.bloom.mayContain(h) {
					bad("run-bloom", footOff, "bloom filter misses a stored row hash")
					break
				}
			}
		}
		return v
	}

	// Footer unusable: recover blocks by frame-walking. The walk is
	// validated by requiring the recomputed hash section to appear
	// verbatim at the stop position — a frame boundary that drifted into
	// the hash section cannot satisfy both the frame CRCs and this check.
	end := walkFrames(len(data))
	if v.tupleOK {
		want := appendHashSection(nil, v.hashes)
		if end+len(want) > len(data) || !bytes.Equal(data[end:end+len(want)], want) {
			bad("run-block", int64(end), "cannot locate remaining blocks without the footer")
			v.tupleOK = false
		}
	}
	return v
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// rewriteRunFile rebuilds a run file in place from its surviving tuple
// data: blocks are re-encoded raw — no new dictionary entries can be
// staged — and the hash section, bloom filter, footer and trailer are
// regenerated. The sequence number is unchanged, so the manifest needs
// no rewrite.
func rewriteRunFile(fsys fsio.FS, path string, arity int, rows []term.Tuple, hashes []uint64) error {
	data, _, _ := encodeRun(nil, arity, rows, hashes, false)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return storage.IOFault("fsck", tmp, err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return storage.IOFault("fsck", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return storage.IOFault("fsck", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return storage.IOFault("fsck", path, err)
	}
	return storage.IOFault("fsck", filepath.Dir(path), fsys.SyncDir(filepath.Dir(path)))
}

// loadDictReadOnly parses the intern table without opening it for write
// (fsck must not modify anything it was not asked to repair). Torn or
// corrupt trailing records are simply not loaded; blocks referencing the
// lost entries fail to decode and are reported as block damage.
func loadDictReadOnly(fsys fsio.FS, dir string) *atomDict {
	d := &atomDict{ids: make(map[string]uint32)}
	d.publish()
	data, err := fsys.ReadFile(filepath.Join(dir, internFileName))
	if err != nil || len(data) < len(internMagic) || string(data[:len(internMagic)]) != internMagic {
		return d
	}
	pos := len(internMagic)
	for pos < len(data) {
		rec, next, ok := parseInternRecord(data, pos, d.prev)
		if !ok {
			break
		}
		d.appendMem(rec.s, rec.h)
		pos = next
	}
	return d
}

// ---- manifest image (offline parse/rewrite) ----

type manifestRel struct {
	name  term.Value
	arity int
	dist  *storage.DistinctTracker
	runs  []uint64
}

type manifestImage struct {
	runSeq uint64
	rels   []manifestRel
}

// parseManifestImage decodes a manifest file image (either format) into
// a rewritable form, verifying the envelope CRC.
func parseManifestImage(data []byte) (*manifestImage, error) {
	mlen := len(manifestMagic2)
	if len(data) < mlen+8 {
		return nil, fmt.Errorf("truncated manifest")
	}
	v2 := false
	switch string(data[:mlen]) {
	case manifestMagic2:
		v2 = true
	case manifestMagic1:
	default:
		return nil, fmt.Errorf("bad manifest header")
	}
	plen := int(binary.LittleEndian.Uint32(data[mlen : mlen+4]))
	sum := binary.LittleEndian.Uint32(data[mlen+4 : mlen+8])
	rest := data[mlen+8:]
	if len(rest) < plen || crc32.ChecksumIEEE(rest[:plen]) != sum {
		return nil, fmt.Errorf("manifest checksum mismatch")
	}
	rd := newByteScanner(bytes.NewReader(rest[:plen]))
	img := &manifestImage{}
	var err error
	if img.runSeq, err = binary.ReadUvarint(rd); err != nil {
		return nil, fmt.Errorf("manifest payload: %w", err)
	}
	nrels, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("manifest payload: %w", err)
	}
	for i := uint64(0); i < nrels; i++ {
		var mr manifestRel
		name, err := term.ReadValue(rd.buf)
		if err != nil {
			return nil, fmt.Errorf("manifest payload: %w", err)
		}
		mr.name = name
		arity, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("manifest payload: %w", err)
		}
		mr.arity = int(arity)
		mr.dist = storage.NewDistinctTracker(mr.arity)
		if v2 {
			if err := mr.dist.ReadDigest(rd.buf); err != nil {
				return nil, fmt.Errorf("manifest digest: %w", err)
			}
		}
		nruns, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("manifest payload: %w", err)
		}
		for j := uint64(0); j < nruns; j++ {
			seq, err := binary.ReadUvarint(rd)
			if err != nil {
				return nil, fmt.Errorf("manifest payload: %w", err)
			}
			mr.runs = append(mr.runs, seq)
		}
		img.rels = append(img.rels, mr)
	}
	return img, nil
}

// writeManifestImage writes img atomically in the current (MAN2) format,
// mirroring Store.writeManifest's temp/fsync/rename protocol.
func writeManifestImage(fsys fsio.FS, dir string, img *manifestImage) error {
	var payload []byte
	payload = binary.AppendUvarint(payload, img.runSeq)
	payload = binary.AppendUvarint(payload, uint64(len(img.rels)))
	for _, r := range img.rels {
		payload = term.AppendValue(payload, r.name)
		payload = binary.AppendUvarint(payload, uint64(r.arity))
		payload = r.dist.AppendDigest(payload)
		payload = binary.AppendUvarint(payload, uint64(len(r.runs)))
		for _, seq := range r.runs {
			payload = binary.AppendUvarint(payload, seq)
		}
	}
	var buf bytes.Buffer
	buf.WriteString(manifestMagic2)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf.Write(hdr[:])
	buf.Write(payload)

	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return storage.IOFault("manifest", tmp, err)
	}
	_, err = f.Write(buf.Bytes())
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return storage.IOFault("manifest", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return storage.IOFault("manifest", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return storage.IOFault("manifest", path, err)
	}
	return storage.IOFault("manifest", dir, fsys.SyncDir(dir))
}
