// Per-run bloom filters: every run persists a bloom filter built from its
// rows' whole-tuple hashes at flush time, and membership probes
// (Insert-dedup, Contains, full-mask Lookup, Delete) consult it before
// walking a run's hash chains. A negative answer — the overwhelmingly
// common case when semi-naive evaluation dedups fresh deltas against
// spilled state — costs a few cache-resident bit tests and skips the run
// entirely: no chain walk, no lazy index load, no block fetch.
//
// Sizing is the classic ~10 bits per key with 6 probes (false-positive
// rate ≈ 0.8%); probe positions come from double hashing over the already
// cached 64-bit tuple hash, so building and querying never touch tuple
// bytes.
package disk

import "encoding/binary"

const (
	bloomBitsPerKey = 10
	bloomHashes     = 6
)

// bloomFilter is a fixed-size bloom filter over 64-bit tuple hashes.
// Immutable after the run is built; queries are lock-free.
type bloomFilter struct {
	mbits uint64
	k     uint32
	bits  []uint64
}

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	m := (uint64(n)*bloomBitsPerKey + 63) &^ 63
	if m < 64 {
		m = 64
	}
	return &bloomFilter{mbits: m, k: bloomHashes, bits: make([]uint64, m/64)}
}

// bloomMix is the splitmix64 finalizer, decorrelating the second probe
// stride from FNV's regular low bits.
func bloomMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (b *bloomFilter) add(h uint64) {
	h1, h2 := h, bloomMix(h)|1
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.mbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloomFilter) mayContain(h uint64) bool {
	h1, h2 := h, bloomMix(h)|1
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.mbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// bloomFrom builds a filter over a run's row hashes.
func bloomFrom(hashes []uint64) *bloomFilter {
	b := newBloom(len(hashes))
	for _, h := range hashes {
		b.add(h)
	}
	return b
}

// appendBloom serializes b (m, k, words LE) into dst.
func appendBloom(dst []byte, b *bloomFilter) []byte {
	dst = binary.AppendUvarint(dst, b.mbits)
	dst = binary.AppendUvarint(dst, uint64(b.k))
	for _, w := range b.bits {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// readBloom deserializes a filter from buf, returning the remaining bytes.
func readBloom(buf []byte) (*bloomFilter, []byte, bool) {
	m, n := binary.Uvarint(buf)
	if n <= 0 || m == 0 || m%64 != 0 {
		return nil, nil, false
	}
	buf = buf[n:]
	k, n := binary.Uvarint(buf)
	if n <= 0 || k == 0 || k > 64 {
		return nil, nil, false
	}
	buf = buf[n:]
	words := int(m / 64)
	if len(buf) < words*8 {
		return nil, nil, false
	}
	b := &bloomFilter{mbits: m, k: uint32(k), bits: make([]uint64, words)}
	for i := range b.bits {
		b.bits[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return b, buf[words*8:], true
}
