package disk

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

// Tests for the fast-engine pieces: bloom filters, block compression,
// size-tiered compaction, the WAL-bypassing bulk load, and the reopen
// path (footer-only opens, legacy-format upgrade, crash prefixes).

// TestBloomFPRBound checks the filter's false-positive rate stays near
// its design point (~0.8% at 10 bits/key, 6 hashes); 2% is the alarm
// threshold for a sizing or mixing regression.
func TestBloomFPRBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nKeys, nProbes = 10000, 100000
	keys := make([]uint64, nKeys)
	present := make(map[uint64]bool, nKeys)
	for i := range keys {
		keys[i] = rng.Uint64()
		present[keys[i]] = true
	}
	b := bloomFrom(keys)
	for _, h := range keys {
		if !b.mayContain(h) {
			t.Fatalf("bloom lost inserted key %#x", h)
		}
	}
	fp := 0
	for i := 0; i < nProbes; i++ {
		h := rng.Uint64()
		if present[h] {
			continue
		}
		if b.mayContain(h) {
			fp++
		}
	}
	if rate := float64(fp) / nProbes; rate > 0.02 {
		t.Fatalf("false-positive rate %.4f exceeds 2%% bound", rate)
	}
}

// sameValue is structural equality with bit-exact floats: NaN payloads
// and the sign of zero must survive a round trip even though term.Equal
// (IEEE semantics) says NaN != NaN.
func sameValue(a, b term.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case term.Float:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case term.Compound:
		if a.NumArgs() != b.NumArgs() || !sameValue(a.Functor(), b.Functor()) {
			return false
		}
		for i := 0; i < a.NumArgs(); i++ {
			if !sameValue(a.Arg(i), b.Arg(i)) {
				return false
			}
		}
		return true
	}
	return a.Equal(b)
}

// randomValue generates a value of any persistable shape, including the
// awkward ones: extreme ints (delta coding must wrap correctly), float
// bit patterns, oversized strings, and nested HiLog compounds whose
// functor is itself compound.
func randomValue(rng *rand.Rand, depth int) term.Value {
	kinds := 6
	if depth <= 0 {
		kinds = 4
	}
	switch rng.Intn(kinds) {
	case 0:
		switch rng.Intn(4) {
		case 0:
			return term.NewInt(math.MaxInt64 - int64(rng.Intn(3)))
		case 1:
			return term.NewInt(math.MinInt64 + int64(rng.Intn(3)))
		default:
			return term.NewInt(rng.Int63n(2000) - 1000)
		}
	case 1:
		bits := []float64{
			rng.NormFloat64(), math.NaN(), math.Inf(1), math.Inf(-1),
			math.Copysign(0, -1), math.SmallestNonzeroFloat64,
		}
		return term.NewFloat(bits[rng.Intn(len(bits))])
	case 2:
		return term.Intern(fmt.Sprintf("atom_%d", rng.Intn(40)))
	case 3:
		// Past internInlineLimit: stays inline, never enters the dict.
		return term.Intern(strings.Repeat("x", internInlineLimit+1+rng.Intn(64)))
	case 4:
		fn := term.Intern(fmt.Sprintf("f%d", rng.Intn(4)))
		nargs := 1 + rng.Intn(3)
		args := make([]term.Value, nargs)
		for i := range args {
			args[i] = randomValue(rng, depth-1)
		}
		return term.NewCompound(fn, args...)
	default:
		// HiLog: compound in functor position.
		inner := term.NewCompound(term.Intern("g"), randomValue(rng, 0))
		return term.NewCompound(inner, randomValue(rng, depth-1))
	}
}

// TestBlockPayloadRoundTrip is the compression property test: random
// blocks survive encode/decode bit-exactly under both encodings, and the
// packed form actually engages for the data it targets.
func TestBlockPayloadRoundTrip(t *testing.T) {
	d, err := newAtomDict(fsio.OS, "")
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		arity := 1 + rng.Intn(4)
		rows := make([]term.Tuple, rng.Intn(40))
		for i := range rows {
			tup := make(term.Tuple, arity)
			for j := range tup {
				tup[j] = randomValue(rng, 2)
			}
			rows[i] = tup
		}
		for _, compress := range []bool{true, false} {
			payload := encodeBlockPayload(d, rows, compress)
			if !compress && payload[0] != blockEncRaw {
				t.Fatalf("iter %d: compression disabled but block is packed", iter)
			}
			got, err := decodeBlockPayload(d, payload, arity)
			if err != nil {
				t.Fatalf("iter %d compress=%v: %v", iter, compress, err)
			}
			if len(got) != len(rows) {
				t.Fatalf("iter %d: %d rows, want %d", iter, len(got), len(rows))
			}
			for i := range rows {
				for j := range rows[i] {
					if !sameValue(got[i][j], rows[i][j]) {
						t.Fatalf("iter %d compress=%v row %d col %d: %v != %v",
							iter, compress, i, j, got[i][j], rows[i][j])
					}
				}
			}
		}
	}
	// Dense integer keys and repeated atoms are the target workload: the
	// packed encoding must win (and by a wide margin for sequential ints).
	dense := make([]term.Tuple, 256)
	for i := range dense {
		dense[i] = term.Tuple{term.NewInt(int64(i)), term.Intern("label")}
	}
	packed := encodeBlockPayload(d, dense, true)
	raw := encodeBlockPayload(d, dense, false)
	if packed[0] != blockEncPacked {
		t.Fatal("dense block did not choose the packed encoding")
	}
	if len(packed)*2 >= len(raw) {
		t.Fatalf("packed %dB vs raw %dB: expected >2x on dense keys", len(packed), len(raw))
	}
}

// TestTierPolicy pins the tier function and the window picker: the
// compactor must select the longest lowest-tier contiguous window, not
// the whole list.
func TestTierPolicy(t *testing.T) {
	for _, tc := range []struct{ rows, tier int }{
		{0, 0}, {3, 0}, {4, 1}, {15, 1}, {16, 2}, {63, 2}, {64, 3}, {4096, 6},
	} {
		if got := runTier(tc.rows); got != tc.tier {
			t.Errorf("runTier(%d) = %d, want %d", tc.rows, got, tc.tier)
		}
	}

	st := openTest(t, t.TempDir(), Options{FlushRows: 1000})
	defer st.Close()
	rel := st.Ensure(term.Intern("edge"), 2)
	r := rel.(*Rel)
	next := 0
	mkRun := func(n int) {
		for i := 0; i < n; i++ {
			rel.Insert(pair(next, next+1))
			next++
		}
		if err := r.flush(false); err != nil {
			t.Fatal(err)
		}
	}
	// Run sizes 20, 2×6, 30: tiers 2, 0×6, 2. The six tier-0 runs form
	// the only window reaching the threshold (6).
	mkRun(20)
	for i := 0; i < 6; i++ {
		mkRun(2)
	}
	mkRun(30)
	want := allRows(rel)

	pr, lo, hi := st.pickCompactable()
	if pr != r || lo != 1 || hi != 7 {
		t.Fatalf("pickCompactable = (%v, %d, %d), want (edge, 1, 7)", pr, lo, hi)
	}
	if !st.compactOne(r, lo, hi) {
		t.Fatal("compactOne reported no progress")
	}
	runs := *r.runs.Load()
	if len(runs) != 3 {
		t.Fatalf("%d runs after tiered compaction, want 3 (large runs untouched)", len(runs))
	}
	if runs[0].nrows != 20 || runs[1].nrows != 12 || runs[2].nrows != 30 {
		t.Fatalf("run sizes %d,%d,%d after compaction, want 20,12,30",
			runs[0].nrows, runs[1].nrows, runs[2].nrows)
	}
	if got := allRows(rel); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tiered compaction changed enumeration:\n got %v\nwant %v", got, want)
	}
	// The merged window is tier 1 now; no window reaches the threshold.
	if pr, _, _ := st.pickCompactable(); pr != nil {
		t.Fatal("pickCompactable found a window in a settled store")
	}
}

// TestTieredCompactionUnderSnapshot captures a view, compacts a middle
// window beneath it (with a pending delete in the window), and checks
// both the snapshot and the live store keep exact content and order.
func TestTieredCompactionUnderSnapshot(t *testing.T) {
	st := openTest(t, t.TempDir(), Options{FlushRows: 1000})
	defer st.Close()
	rel := st.Ensure(term.Intern("edge"), 2)
	r := rel.(*Rel)
	for i := 0; i < 24; i++ {
		rel.Insert(pair(i, i+1))
		if i%3 == 2 {
			if err := r.flush(false); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.AdvanceCSN()
	view, err := st.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	snapRel, _ := view.Get(term.Intern("edge"), 2)

	rel.Delete(pair(7, 8)) // run-resident, inside the window, uncommitted
	if !st.compactOne(r, 1, 5) {
		t.Fatal("compactOne reported no progress")
	}
	if n := len(*r.runs.Load()); n != 5 {
		t.Fatalf("%d runs after windowed compaction, want 5", n)
	}
	snapRows := allRows(snapRel)
	if len(snapRows) != 24 {
		t.Fatalf("snapshot sees %d rows, want 24", len(snapRows))
	}
	for i, row := range snapRows {
		if row != [2]int64{int64(i), int64(i + 1)} {
			t.Fatalf("snapshot row %d = %v after compaction", i, row)
		}
	}
	live := allRows(rel)
	if len(live) != 23 || rel.Contains(pair(7, 8)) {
		t.Fatalf("live store: %d rows, contains(7,8)=%v; want 23, false",
			len(live), rel.Contains(pair(7, 8)))
	}
	// The uncommitted tombstone must have been carried into the merged
	// run, not silently dropped.
	st.AdvanceCSN()
	if rel.Contains(pair(7, 8)) {
		t.Fatal("deleted row resurfaced after compaction + commit")
	}
	if err := view.(*snapStore).Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenEquivalence is the golden round trip: a store with mixed
// value shapes, deletes, and several runs must reopen byte-identical —
// same enumeration order, same planner digests — without decoding a
// single block until something actually reads.
func TestReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{FlushRows: 8})
	rel := st.Ensure(term.Intern("fact"), 2)
	for i := 0; i < 60; i++ {
		var v term.Value
		switch i % 4 {
		case 0:
			v = term.NewInt(int64(i * 7))
		case 1:
			v = term.NewFloat(float64(i) / 3)
		case 2:
			v = term.Intern(fmt.Sprintf("node_%d", i%9))
		default:
			v = term.NewCompound(term.Intern("p"), term.NewInt(int64(i)), term.Intern("tag"))
		}
		rel.Insert(term.Tuple{term.NewInt(int64(i)), v})
	}
	rel.Delete(term.Tuple{term.NewInt(13), term.NewFloat(13.0 / 3)})
	st.AdvanceCSN()
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	want := rel.All()
	wantDist := [2]int{rel.DistinctEst(0), rel.DistinctEst(1)}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTest(t, dir, Options{FlushRows: 8})
	defer st2.Close()
	if got := atomic.LoadInt64(&st2.Stats().BlocksRead); got != 0 {
		t.Fatalf("reopen decoded %d blocks; RUN2 opens must be footer-only", got)
	}
	rel2, ok := st2.Get(term.Intern("fact"), 2)
	if !ok {
		t.Fatal("relation missing after reopen")
	}
	if d := [2]int{rel2.DistinctEst(0), rel2.DistinctEst(1)}; d != wantDist {
		t.Fatalf("distinct digests %v after reopen, want %v", d, wantDist)
	}
	got := rel2.All()
	if len(got) != len(want) {
		t.Fatalf("%d rows after reopen, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity changed", i)
		}
		for j := range want[i] {
			if !sameValue(got[i][j], want[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if atomic.LoadInt64(&st2.Stats().BlocksRead) == 0 {
		t.Fatal("enumeration read no blocks; stat accounting broken")
	}
}

// TestReopenUncompressedReadsCompressed flips the compression setting
// between opens: blocks written packed must read fine from a store
// configured raw, and vice versa.
func TestReopenUncompressedReadsCompressed(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{FlushRows: 8})
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 40; i++ {
		rel.Insert(pair(i, i+1))
	}
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openTest(t, dir, Options{FlushRows: 8, NoCompress: true})
	rel2, _ := st2.Get(term.Intern("edge"), 2)
	rows := allRows(rel2)
	if len(rows) != 40 {
		t.Fatalf("%d rows reading packed blocks from a raw-configured store, want 40", len(rows))
	}
	for i := 40; i < 60; i++ {
		rel2.Insert(pair(i, i+1))
	}
	if err := st2.FlushBase(); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3 := openTest(t, dir, Options{FlushRows: 8})
	defer st3.Close()
	rel3, _ := st3.Get(term.Intern("edge"), 2)
	rows = allRows(rel3)
	if len(rows) != 60 {
		t.Fatalf("%d rows after mixed-encoding reopen, want 60", len(rows))
	}
	for i, row := range rows {
		if row != [2]int64{int64(i), int64(i + 1)} {
			t.Fatalf("row %d = %v after mixed-encoding reopen", i, row)
		}
	}
}

// TestBloomScreensMissProbes reopens a multi-run store and probes absent
// keys: blooms must answer without loading a single chain index, while
// the NoBloom ablation pays one index load per run. This is the unit-
// level form of the E18 membership-miss experiment.
func TestBloomScreensMissProbes(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{FlushRows: 64})
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 512; i++ {
		rel.Insert(pair(i, i+1))
	}
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	nruns := len(*rel.(*Rel).runs.Load())
	if nruns < 8 {
		t.Fatalf("need >= 8 runs, have %d", nruns)
	}
	st.Close()

	probe := func(opts Options) (loads, checks, skips int64) {
		s, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		r, _ := s.Get(term.Intern("edge"), 2)
		for i := 0; i < 10; i++ {
			if r.Contains(pair(1000000+i, i)) {
				t.Fatalf("absent key %d reported present", i)
			}
		}
		stats := s.Stats()
		return atomic.LoadInt64(&stats.RunIndexLoads),
			atomic.LoadInt64(&stats.BloomChecks),
			atomic.LoadInt64(&stats.BloomSkips)
	}

	loads, checks, skips := probe(Options{FlushRows: 64, NoCompactor: true})
	if checks == 0 || skips != checks {
		t.Fatalf("blooms: %d checks, %d skips; every miss probe must be screened", checks, skips)
	}
	if loads != 0 {
		t.Fatalf("blooms: %d index loads on misses, want 0", loads)
	}
	ablLoads, _, ablSkips := probe(Options{FlushRows: 64, NoCompactor: true, NoBloom: true})
	if ablSkips != 0 {
		t.Fatalf("NoBloom ablation skipped %d probes", ablSkips)
	}
	if ablLoads != int64(nruns) {
		t.Fatalf("NoBloom: %d index loads, want one per run (%d)", ablLoads, nruns)
	}
}

// TestBulkLoadDedupAndOrder checks the WAL-bypassing path deduplicates
// against the memtable, existing runs, and within the batch, and that
// enumeration order matches what row-at-a-time inserts would produce.
func TestBulkLoadDedupAndOrder(t *testing.T) {
	st := openTest(t, t.TempDir(), Options{FlushRows: 16})
	defer st.Close()
	name := term.Intern("edge")
	rel := st.Ensure(name, 2)
	rel.Insert(pair(0, 1)) // memtable-resident before the bulk
	rel.Insert(pair(1, 2))

	batch := []term.Tuple{
		pair(0, 1),   // dup vs memtable
		pair(5, 6),   // fresh
		pair(5, 6),   // in-batch dup
		pair(6, 7),   // fresh
		pair(1, 2),   // dup vs memtable
		pair(100, 0), // fresh
	}
	added, err := st.BulkLoad(name, 2, batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 {
		t.Fatalf("bulk added %d rows, want 3", added)
	}
	if rel.Len() != 5 {
		t.Fatalf("Len() = %d after bulk, want 5", rel.Len())
	}
	want := [][2]int64{{0, 1}, {1, 2}, {5, 6}, {6, 7}, {100, 0}}
	if got := allRows(rel); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("bulk order:\n got %v\nwant %v", got, want)
	}
	// Second bulk dedups against the runs the first one built.
	added, err = st.BulkLoad(name, 2, []term.Tuple{pair(5, 6), pair(7, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || rel.Len() != 6 {
		t.Fatalf("second bulk: added=%d len=%d, want 1 and 6", added, rel.Len())
	}
	if bulk := atomic.LoadInt64(&st.Stats().BulkRows); bulk != 4 {
		t.Fatalf("BulkRows stat = %d, want 4", bulk)
	}
}

// TestBulkLoadCrashPrefix simulates a crash between BulkLoad and the
// manifest commit: the bulk runs are durable files but unreferenced, so
// reopen must sweep them and recover exactly the pre-statement state —
// the all-or-nothing half of the statement-boundary-prefix guarantee.
func TestBulkLoadCrashPrefix(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{FlushRows: 16})
	name := term.Intern("edge")
	rel := st.Ensure(name, 2)
	for i := 0; i < 10; i++ {
		rel.Insert(pair(i, i+1))
	}
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	batch := make([]term.Tuple, 64)
	for i := range batch {
		batch[i] = pair(1000+i, i)
	}
	if _, err := st.BulkLoad(name, 2, batch); err != nil {
		t.Fatal(err)
	}
	// Crash before FlushBase: abandon without writing a manifest.
	st.Close()

	st2 := openTest(t, dir, Options{FlushRows: 16})
	defer st2.Close()
	rel2, ok := st2.Get(name, 2)
	if !ok {
		t.Fatal("baseline relation missing after crash reopen")
	}
	if rel2.Len() != 10 {
		t.Fatalf("recovered %d rows, want the 10-row pre-bulk prefix", rel2.Len())
	}
	if rel2.Contains(pair(1000, 0)) {
		t.Fatal("half-loaded bulk row visible after crash recovery")
	}
	// The orphaned bulk runs must be gone from disk, not just unreferenced.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	nruns := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".grn") {
			nruns++
		}
	}
	if durable := len(*rel2.(*Rel).runs.Load()); nruns != durable {
		t.Fatalf("%d run files on disk but %d referenced; orphan sweep missed bulk runs", nruns, durable)
	}
}

// TestLegacyFormatUpgrade hand-writes a RUN1 file and a MAN1 manifest (the
// formats before footers, blooms, and digests) and opens them: content
// must load, digests rebuild from the scan, and the next checkpoint
// upgrades the manifest in place.
func TestLegacyFormatUpgrade(t *testing.T) {
	dir := t.TempDir()
	name := term.Intern("edge")
	rows := []term.Tuple{pair(1, 2), pair(3, 4), pair(5, 6)}

	var payload bytes.Buffer
	payload.Write(binary.AppendUvarint(nil, uint64(len(rows))))
	for _, tu := range rows {
		if err := term.WriteTuple(&payload, tu); err != nil {
			t.Fatal(err)
		}
	}
	var runFile bytes.Buffer
	runFile.WriteString(runMagic1)
	runFile.Write(binary.AppendUvarint(nil, 2)) // arity
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload.Bytes()))
	runFile.Write(hdr[:])
	runFile.Write(payload.Bytes())
	if err := os.WriteFile(filepath.Join(dir, runName(1)), runFile.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var man []byte
	man = binary.AppendUvarint(man, 1) // runSeq
	man = binary.AppendUvarint(man, 1) // nrels
	man = term.AppendValue(man, name)
	man = binary.AppendUvarint(man, 2) // arity
	man = binary.AppendUvarint(man, 1) // nruns
	man = binary.AppendUvarint(man, 1) // run seq 1
	var manFile bytes.Buffer
	manFile.WriteString(manifestMagic1)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(man)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(man))
	manFile.Write(hdr[:])
	manFile.Write(man)
	if err := os.WriteFile(filepath.Join(dir, manifestName), manFile.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	st := openTest(t, dir, Options{})
	rel, ok := st.Get(name, 2)
	if !ok {
		t.Fatal("relation missing from legacy manifest")
	}
	want := [][2]int64{{1, 2}, {3, 4}, {5, 6}}
	if got := allRows(rel); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("legacy run content: %v, want %v", got, want)
	}
	if !rel.Contains(pair(3, 4)) || rel.Contains(pair(2, 3)) {
		t.Fatal("membership probes wrong on a legacy run")
	}
	if rel.DistinctEst(0) < 2 {
		t.Fatalf("digest not rebuilt from legacy scan: DistinctEst(0)=%d", rel.DistinctEst(0))
	}
	// Upgrade: a checkpoint writes a MAN2 manifest over the MAN1 one.
	rel.Insert(pair(7, 8))
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	rel2, _ := st2.Get(name, 2)
	if got := allRows(rel2); fmt.Sprint(got) != fmt.Sprint(append(want, [2]int64{7, 8})) {
		t.Fatalf("post-upgrade content: %v", got)
	}
	if rel2.DistinctEst(0) < 3 {
		t.Fatalf("digest lost in manifest upgrade: DistinctEst(0)=%d", rel2.DistinctEst(0))
	}
}

// TestInternTablePersists checks the dictionary round trip: atoms packed
// into blocks resolve after reopen without re-interning from row bytes,
// and a torn tail (half-written record) truncates cleanly.
func TestInternTablePersists(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{FlushRows: 4})
	rel := st.Ensure(term.Intern("tag"), 2)
	atoms := []string{"alpha", "alphabet", "alphabetical", "beta", "betamax"}
	for i, a := range atoms {
		rel.Insert(term.Tuple{term.NewInt(int64(i)), term.Intern(a)})
	}
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt: append a torn half-record to the intern file.
	internPath := filepath.Join(dir, internFileName)
	f, err := os.OpenFile(internPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x05, 'h', 'a'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := openTest(t, dir, Options{FlushRows: 4})
	defer st2.Close()
	rel2, _ := st2.Get(term.Intern("tag"), 2)
	got := rel2.All()
	if len(got) != len(atoms) {
		t.Fatalf("%d rows after reopen, want %d", len(got), len(atoms))
	}
	for i, a := range atoms {
		if got[i][1].Str() != a {
			t.Fatalf("row %d atom %q, want %q", i, got[i][1].Str(), a)
		}
	}
}
