// Direct bulk load: large EDB batches build runs straight from the input,
// bypassing both the memtable and the WAL. Writing a row through the
// normal path costs a journal append plus a memtable insert plus its share
// of a flush; the bulk path writes each row exactly once, into a durable
// run, and makes the whole batch durable at the next manifest commit
// (FlushBase) instead of per-statement.
//
// The caller owns the crash-safety fence (see storage.BulkLoader): the WAL
// is checkpointed before the load, so its log is empty and replay can
// never double-apply over the bulk-built base, and FlushBase runs after,
// making the manifest the batch's durability point. A crash in between
// reverts to the pre-statement manifest — the orphaned runs are swept on
// reopen — which preserves the statement-boundary-prefix recovery
// guarantee: the load either happened entirely or not at all.
package disk

import (
	"fmt"
	"sync/atomic"

	"gluenail/internal/storage"
	"gluenail/internal/term"
)

var _ storage.BulkLoader = (*Store)(nil)

// bulkRunRows caps the rows per bulk-built run. Runs this size keep the
// whole-batch encode buffer in the tens of megabytes while still writing
// almost every batch as a single run.
const bulkRunRows = 1 << 20

// BulkLoad implements storage.BulkLoader. Rows are deduplicated (against
// the relation's existing contents — bloom filters make the common miss
// cheap — and within the batch), then written as durable runs of the
// normal flush size, appended in input order so enumeration stays
// byte-identical with the row-at-a-time path.
func (s *Store) BulkLoad(name term.Value, arity int, rows []term.Tuple) (int, error) {
	if err := s.Degraded(); err != nil {
		return 0, err
	}
	r := s.ensure(name, arity, false)
	// Order parity with the row-at-a-time path: rows already sitting in
	// the memtable were inserted earlier, so they must enumerate before
	// the batch. Flushing them to a run first keeps runs-then-memtable
	// order correct once the batch lands in runs of its own.
	if err := r.flush(true); err != nil {
		return 0, s.failWrite(err)
	}
	// The dedup targets are fixed up front: the memtable (just flushed,
	// so normally empty) and the runs that predate the batch. Runs the
	// batch itself builds never need probing — the batch-wide seen index
	// below already covers every row they hold.
	preRuns := *r.runs.Load()
	// The flush left the memtable empty unless it raced a concurrent
	// insert; skip the per-row probe when there is nothing to probe
	// (the common case for a fresh bulk-built relation).
	probeMem := r.mem.Len() > 0
	// In-batch dedup, intrusive and allocation-free per row: an open-
	// addressed table maps a hash to its latest accepted slot (1-based)
	// and seenNext chains earlier slots with the same hash — the run
	// index's layout. A plain map[hash]slot measurably dominates the
	// loop's profile at bulk sizes; linear probing over the hashes the
	// loop computes anyway does not.
	kept := make([]term.Tuple, 0, len(rows))
	keptH := make([]uint64, 0, len(rows))
	seenNext := make([]int32, 0, len(rows))
	tabSize := 1
	for tabSize < 2*len(rows) {
		tabSize <<= 1
	}
	table := make([]int32, tabSize)
	mask := uint64(tabSize - 1)
nextRow:
	for _, t := range rows {
		if t == nil {
			t = term.Tuple{}
		}
		if len(t) != arity {
			return 0, fmt.Errorf("disk: bulk row arity %d != %d in %v", len(t), arity, name)
		}
		h := t.Hash()
		pos := h & mask
		var head int32
		for {
			e := table[pos]
			if e == 0 {
				break
			}
			if keptH[e-1] == h {
				head = e
				break
			}
			pos = (pos + 1) & mask
		}
		for i := head; i != 0; i = seenNext[i-1] {
			if kept[i-1].Equal(t) {
				continue nextRow
			}
		}
		if (probeMem && r.mem.Contains(t)) ||
			(len(preRuns) > 0 && r.runsContainIn(preRuns, h, t)) {
			continue
		}
		seenNext = append(seenNext, head)
		kept = append(kept, t)
		keptH = append(keptH, h)
		table[pos] = int32(len(kept))
	}
	r.dist.AddBatch(kept)
	// Bulk runs are as large as the batch allows (capped to bound the
	// encode buffer), not flush-sized: the batch is already deduplicated
	// and ordered, so fragmenting it into flush-sized runs would only
	// raise read amplification and hand the compactor a merge it must
	// immediately redo. One big run lands at a higher tier, where fresh
	// flush-sized runs never window with it.
	chunk := bulkRunRows
	if fr := s.opts.flushRows(); chunk < fr {
		chunk = fr
	}
	for lo := 0; lo < len(kept); lo += chunk {
		hi := lo + chunk
		if hi > len(kept) {
			hi = len(kept)
		}
		seq := s.nextRunSeq()
		rn, err := createRun(s, seq, arity, kept[lo:hi], keptH[lo:hi], true)
		if err != nil {
			return lo, s.failWrite(err)
		}
		r.relMu.Lock()
		old := *r.runs.Load()
		nr := make([]*run, len(old)+1)
		copy(nr, old)
		nr[len(old)] = rn
		r.runs.Store(&nr)
		r.diskLive += hi - lo
		r.relMu.Unlock()
		atomic.AddInt64(&s.stats.RunsFlushed, 1)
		atomic.AddInt64(&s.stats.RowsSpilled, int64(hi-lo))
	}
	added := len(kept)
	if added > 0 {
		r.version++
		r.noteEpoch()
		// Partial-mask run indexes no longer cover every run-resident row.
		r.ixMu.Lock()
		r.ixs, r.ixCredit, r.ixOnces = nil, nil, nil
		r.ixMu.Unlock()
		atomic.AddInt64(&s.stats.Inserts, int64(added))
		atomic.AddInt64(&s.stats.BulkRows, int64(added))
		s.maybeCompact(r, len(*r.runs.Load()))
	}
	return added, nil
}
