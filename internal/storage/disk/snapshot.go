// Snapshot views over the disk engine. Capturing a snapshot pins the run
// manifest — the current run list of every relation, by reference count —
// plus a copy-on-write view of each memtable (storage.CaptureRel). The
// visibility rule is the same on both layers: a row is visible at snapshot
// CSN S if its dead stamp / tombstone CSN is 0 or > S, loaded atomically
// against the live writer. Pinned runs stay readable even after compaction
// replaces and unlinks them (the reference count holds the file handle
// open); closing the view releases the pins.
package disk

import (
	"fmt"
	"sync"

	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// SnapshotView implements storage.Backend. Must be called at a statement
// boundary; the view may then be read concurrently with later writers.
func (s *Store) SnapshotView() (storage.SnapshotStore, error) {
	ss := &snapStore{
		csn:  s.commitCSN.Load(),
		rels: make(map[string]storage.Rel),
	}
	s.mu.RLock()
	order := append([]*Rel(nil), s.order...)
	s.mu.RUnlock()
	for _, r := range order {
		// relMu makes the load-and-retain atomic against a concurrent
		// compactor install releasing the runs it just replaced.
		r.relMu.Lock()
		runs := append([]*run(nil), *r.runs.Load()...)
		for _, rn := range runs {
			rn.retain()
		}
		r.relMu.Unlock()
		ss.pinned = append(ss.pinned, runs...)
		sr := &snapRel{
			src:     r,
			csn:     ss.csn,
			runs:    runs,
			mem:     storage.CaptureRel(r.memtable(), ss.csn, &ss.stats),
			version: r.version,
			stats:   &ss.stats,
		}
		ss.rels[relKey(r.name, r.arity)] = sr
	}
	return ss, nil
}

// memtable returns the current memtable (for snapshot capture at a
// statement boundary).
func (r *Rel) memtable() *storage.Relation { return r.mem }

// snapStore is the storage.SnapshotStore over a disk store.
type snapStore struct {
	csn   uint64
	stats storage.Stats
	mu    sync.RWMutex
	rels  map[string]storage.Rel

	pinned    []*run
	closeOnce sync.Once
}

var _ storage.SnapshotStore = (*snapStore)(nil)

// CSN implements storage.SnapshotStore.
func (s *snapStore) CSN() uint64 { return s.csn }

// Ensure implements storage.Store: a missing relation yields an empty
// read-only placeholder.
func (s *snapStore) Ensure(name term.Value, arity int) storage.Rel {
	k := relKey(name, arity)
	s.mu.RLock()
	r, ok := s.rels[k]
	s.mu.RUnlock()
	if ok {
		return r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rels[k]; ok {
		return r
	}
	r = storage.PlaceholderRel(name, arity, s.csn, &s.stats)
	s.rels[k] = r
	return r
}

// Get implements storage.Store.
func (s *snapStore) Get(name term.Value, arity int) (storage.Rel, bool) {
	s.mu.RLock()
	r, ok := s.rels[relKey(name, arity)]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return r, true
}

// Drop implements storage.Store as a no-op: the snapshot is immutable.
func (s *snapStore) Drop(name term.Value, arity int) {}

// Names implements storage.Store.
func (s *snapStore) Names() []storage.RelName {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]storage.RelName, 0, len(s.rels))
	for _, r := range s.rels {
		out = append(out, storage.RelName{Name: r.Name(), Arity: r.Arity()})
	}
	return out
}

// Stats implements storage.Store.
func (s *snapStore) Stats() *storage.Stats { return &s.stats }

// SetJournal implements storage.Store as a no-op.
func (s *snapStore) SetJournal(j storage.Journal) {}

// Close releases the pinned runs. Unlike a main-memory snapshot — where
// abandonment only costs memory until the GC runs — a disk snapshot holds
// run file handles open, so sessions should close their views.
func (s *snapStore) Close() error {
	s.closeOnce.Do(func() {
		for _, rn := range s.pinned {
			rn.release()
		}
		s.pinned = nil
	})
	return nil
}

// snapRel is one disk relation frozen at a snapshot CSN.
type snapRel struct {
	src     *Rel
	csn     uint64
	runs    []*run
	mem     storage.Rel
	version uint64
	stats   *storage.Stats

	lenOnce sync.Once
	n       int
}

var _ storage.Rel = (*snapRel)(nil)

// visible applies the snapshot visibility rule to a run slot, reading the
// live tombstone map (later deletions carry CSNs above the capture point
// and filter out here).
func (r *snapRel) visible(rn *run, slot int32) bool {
	d := rn.tombAt(slot)
	return d == 0 || d > r.csn
}

// Name implements storage.Rel.
func (r *snapRel) Name() term.Value { return r.src.name }

// Arity implements storage.Rel.
func (r *snapRel) Arity() int { return r.src.arity }

// Len implements storage.Rel, counted lazily.
func (r *snapRel) Len() int {
	r.lenOnce.Do(func() {
		n := r.mem.Len()
		for _, rn := range r.runs {
			n += rn.liveAt(r.csn)
		}
		r.n = n
	})
	return r.n
}

// Version implements storage.Rel (the value at capture).
func (r *snapRel) Version() uint64 { return r.version }

// StatsEpoch implements storage.Rel, delegating to the live relation (an
// epoch is planner guidance, not part of the captured state).
func (r *snapRel) StatsEpoch() uint64 { return r.src.StatsEpoch() }

// DistinctEst implements storage.Rel from the live digest, like the
// main-memory snapshot relation.
func (r *snapRel) DistinctEst(col int) int { return r.src.DistinctEst(col) }

// CostProfile implements storage.Coster from the live relation, so session
// planners weigh snapshot reads with the same disk-access factors.
func (r *snapRel) CostProfile() storage.CostProfile { return r.src.CostProfile() }

func (r *snapRel) readOnly(op string) string {
	return fmt.Sprintf("storage: %s on relation %v/%d of a read-only snapshot (CSN %d)",
		op, r.src.name, r.src.arity, r.csn)
}

// Insert implements storage.Rel by panicking: snapshots are read-only.
func (r *snapRel) Insert(t term.Tuple) bool { panic(r.readOnly("Insert")) }

// Delete implements storage.Rel by panicking: snapshots are read-only.
func (r *snapRel) Delete(t term.Tuple) bool { panic(r.readOnly("Delete")) }

// Clear implements storage.Rel by panicking: snapshots are read-only.
func (r *snapRel) Clear() { panic(r.readOnly("Clear")) }

// UnionDiff implements storage.Rel by panicking: snapshots are read-only.
func (r *snapRel) UnionDiff(batch []term.Tuple) []term.Tuple {
	panic(r.readOnly("UnionDiff"))
}

// ModifyByKey implements storage.Rel by panicking: snapshots are read-only.
func (r *snapRel) ModifyByKey(mask uint32, rows []term.Tuple) {
	panic(r.readOnly("ModifyByKey"))
}

// Contains implements storage.Rel.
func (r *snapRel) Contains(t term.Tuple) bool {
	if r.mem.Contains(t) {
		return true
	}
	h := t.Hash()
	for _, rn := range r.runs {
		if !rn.mayContain(r.stats, h) {
			continue
		}
		if err := rn.ensureIndex(r.stats); err != nil {
			panic(err)
		}
		for i := rn.buckets[h]; i != 0; i = rn.next[i-1] {
			slot := i - 1
			if rn.hashes[slot] != h || !r.visible(rn, slot) {
				continue
			}
			u, err := rn.tupleAt(r.src.st.cache, r.stats, slot)
			if err != nil {
				panic(err)
			}
			if u.Equal(t) {
				return true
			}
		}
	}
	return false
}

// Scan implements storage.Rel: pinned runs in flush order, then the
// captured memtable — the insertion order of the captured state.
func (r *snapRel) Scan(yield func(term.Tuple) bool) {
	for _, rn := range r.runs {
		more, err := rn.scan(r.src.st.cache, r.stats, func(slot int32) bool {
			return r.visible(rn, slot)
		}, yield)
		if err != nil {
			panic(err)
		}
		if !more {
			return
		}
	}
	r.mem.Scan(yield)
}

// Lookup implements storage.Rel. Run-resident rows are answered by hash
// probe (full mask) or filtered scan; the captured memtable view brings
// its own snapshot-local adaptive indexes.
func (r *snapRel) Lookup(mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	if mask == 0 || r.Len() == 0 {
		r.Scan(yield)
		return
	}
	full := (uint32(1) << uint(r.src.arity)) - 1
	if mask == full {
		h := key.Hash()
		for _, rn := range r.runs {
			if !rn.mayContain(r.stats, h) {
				continue
			}
			if err := rn.ensureIndex(r.stats); err != nil {
				panic(err)
			}
			for i := rn.buckets[h]; i != 0; i = rn.next[i-1] {
				slot := i - 1
				if rn.hashes[slot] != h || !r.visible(rn, slot) {
					continue
				}
				u, err := rn.tupleAt(r.src.st.cache, r.stats, slot)
				if err != nil {
					panic(err)
				}
				if u.Equal(key) && !yield(u) {
					return
				}
			}
		}
		r.mem.Lookup(mask, key, yield)
		return
	}
	stopped := false
	for _, rn := range r.runs {
		more, err := rn.scan(r.src.st.cache, r.stats, func(slot int32) bool {
			return r.visible(rn, slot)
		}, func(t term.Tuple) bool {
			if t.EqualCols(key, mask) && !yield(t) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			panic(err)
		}
		if !more || stopped {
			return
		}
	}
	r.mem.Lookup(mask, key, yield)
}

// PrepareRead implements storage.Rel for the memtable layer; run-resident
// lookups on snapshots stay scan-based.
func (r *snapRel) PrepareRead(mask uint32, lookups int) {
	r.mem.PrepareRead(mask, lookups)
}

// All implements storage.Rel.
func (r *snapRel) All() []term.Tuple {
	out := make([]term.Tuple, 0, r.Len())
	r.Scan(func(t term.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}
