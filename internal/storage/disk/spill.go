// Spill stores: out-of-core VM scratch tables are ordinary ephemeral disk
// stores whose flush threshold is the scratch memory budget. A scratch
// relation lives purely in its memtable until it reaches the budget, then
// spills to runs and keeps going — the execution governor charges such
// relations their resident rows (storage.MemResident), so the budget
// becomes the spill trigger instead of an abort.
//
// Each spill store gets a private directory named after the owning
// process, and creating one first sweeps directories left by processes
// that died mid-spill (the crash-recovery convention the WAL uses for its
// temp files, applied to whole scratch directories).
package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
)

var spillSeq atomic.Uint64

// NewScratch creates an ephemeral spill store under parentDir with the
// given scratch row budget as its flush threshold. Stale spill directories
// of dead processes under parentDir are swept first. Close removes the
// store's directory.
func NewScratch(parentDir string, budgetRows int, policy storage.IndexPolicy, stats *storage.Stats) (*Store, error) {
	return NewScratchFS(nil, parentDir, budgetRows, policy, stats)
}

// NewScratchFS is NewScratch over an explicit filesystem (nil selects the
// real one), so fault-injection tests can reach the spill path too.
func NewScratchFS(fsys fsio.FS, parentDir string, budgetRows int, policy storage.IndexPolicy, stats *storage.Stats) (*Store, error) {
	if fsys == nil {
		fsys = fsio.OS
	}
	if err := fsys.MkdirAll(parentDir, 0o755); err != nil {
		return nil, storage.IOFault("spill", parentDir, err)
	}
	sweepStaleSpills(fsys, parentDir)
	dir := filepath.Join(parentDir, fmt.Sprintf("spill-%d-%d", os.Getpid(), spillSeq.Add(1)))
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, storage.IOFault("spill", dir, err)
	}
	return Open(dir, Options{
		FS:        fsys,
		Policy:    policy,
		FlushRows: budgetRows,
		Ephemeral: true,
		Stats:     stats,
		// Scratch caches stay small: the cache itself is resident memory,
		// which is what the budget is bounding.
		CacheBlocks: 128,
		// No background compactor: scratch relations are cleared (and the
		// whole store dropped) at statement granularity, so runs never
		// live long enough to be worth merging — and a writer-sequenced
		// store needs no cross-thread run retirement at all.
		NoCompactor: true,
	})
}

// SweepStaleSpills removes spill directories under parentDir whose owning
// process is gone — leftovers of a crash or kill. The live process's own
// directories (and those of any other live process sharing the spill
// root) are left alone. The whole directory is scanned in one batch and
// each pid is probed at most once, however many directories it left
// behind; removal failures (a permission oddity on a shared spill root,
// say) are logged and skipped — a stale directory costs disk space, not
// correctness, and must not fail the session creating a fresh scratch.
func SweepStaleSpills(parentDir string) {
	sweepStaleSpills(fsio.OS, parentDir)
}

func sweepStaleSpills(fsys fsio.FS, parentDir string) {
	entries, err := fsys.ReadDir(parentDir)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "gluenail: disk: spill sweep of %s: %v\n", parentDir, err)
		}
		return
	}
	alive := map[int]bool{os.Getpid(): true}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "spill-") {
			continue
		}
		var pid, seq int
		if _, err := fmt.Sscanf(e.Name(), "spill-%d-%d", &pid, &seq); err != nil {
			continue
		}
		live, probed := alive[pid]
		if !probed {
			live = processAlive(pid)
			alive[pid] = live
		}
		if live {
			continue
		}
		if err := fsys.RemoveAll(filepath.Join(parentDir, e.Name())); err != nil {
			fmt.Fprintf(os.Stderr, "gluenail: disk: removing stale spill %s: %v (skipped)\n", e.Name(), err)
		}
	}
}

// processAlive reports whether a process with the given pid exists (signal
// 0 probe; EPERM still means it exists).
func processAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}

// CheckDirOverlap returns an error when two directories coincide or nest —
// the -data-dir / -spill-dir misconfiguration that would let a spill sweep
// or an orphan sweep eat the other store's files.
func CheckDirOverlap(dataDir, spillDir string) error {
	if dataDir == "" || spillDir == "" {
		return nil
	}
	a, err := filepath.Abs(dataDir)
	if err != nil {
		return err
	}
	b, err := filepath.Abs(spillDir)
	if err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("disk: data directory and spill directory are the same path (%s); give the spill store its own directory (for example %s)", a, a+"-spill")
	}
	if within(a, b) {
		return fmt.Errorf("disk: spill directory %s is inside the data directory %s; recovery's orphan sweep would remove spill files — give the spill store a directory outside the data directory", b, a)
	}
	if within(b, a) {
		return fmt.Errorf("disk: data directory %s is inside the spill directory %s; the stale-spill sweep could remove durable data — give the spill store a directory outside the data directory", a, b)
	}
	return nil
}

// within reports whether path is strictly inside dir.
func within(dir, path string) bool {
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		return false
	}
	return rel != "." && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}
