package disk

import (
	"testing"

	"gluenail/internal/term"
)

// FuzzDecodeBlockPayload throws arbitrary bytes at the RUN2 block
// decoder — the first parser any stored tuple byte passes through. The
// contract under fuzzing: never panic, never loop; either a typed error
// or rows of the requested arity. CRC framing normally screens the input,
// but the decoder must hold on its own (a block can be corrupted in
// memory after the CRC check, and fsck feeds it frame-walk guesses).
func FuzzDecodeBlockPayload(f *testing.F) {
	dict := &atomDict{ids: make(map[string]uint32)}
	dict.publish()
	rows := []term.Tuple{
		{term.NewInt(1), term.Intern("a")},
		{term.NewInt(2), term.Intern("b")},
	}
	for _, row := range rows {
		dict.idFor(row[1])
	}
	f.Add(encodeBlockPayload(dict, rows, true), 2)
	f.Add(encodeBlockPayload(dict, rows, false), 2)
	f.Add([]byte{blockEncPacked, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 1)
	f.Add([]byte{}, 0)

	f.Fuzz(func(t *testing.T, payload []byte, arity int) {
		if arity < 0 || arity > 8 {
			arity = (arity%8 + 8) % 8
		}
		out, err := decodeBlockPayload(dict, payload, arity)
		if err != nil {
			return
		}
		for _, row := range out {
			if len(row) != arity {
				t.Fatalf("decoded row of arity %d, asked for %d", len(row), arity)
			}
		}
	})
}
