package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

// Fault-injection and corruption tests: every write fault must leave the
// store read-only degraded at a statement boundary, every flipped bit
// must surface as a typed ErrCorrupt naming the damaged artifact (never
// a wrong answer, never an untyped panic), and the scrubber must heal
// auxiliary damage and quarantine tuple damage.

// catchStorage runs fn, converting a typed storage panic (ErrDiskFault /
// ErrCorrupt) into an error exactly like the VM containment layer does.
// Any other panic propagates — an untyped escape is a test failure.
func catchStorage(fn func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		perr, ok := r.(error)
		if !ok || (!errors.Is(perr, storage.ErrDiskFault) && !errors.Is(perr, storage.ErrCorrupt)) {
			panic(r)
		}
		err = perr
	}()
	fn()
	return nil
}

// strRow builds an (int, string) tuple so flushed runs exercise the
// packed block encoding and the intern dictionary.
func strRow(i int) term.Tuple {
	return term.Tuple{term.NewInt(int64(i)), term.Intern(fmt.Sprintf("atom-%03d", i))}
}

// rowsKey renders a relation's full contents in scan order, for
// byte-identical comparisons across reopen/heal cycles.
func rowsKey(r storage.Rel) string {
	var sb strings.Builder
	r.Scan(func(t term.Tuple) bool {
		for _, v := range t {
			sb.WriteString(v.String())
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
		return true
	})
	return sb.String()
}

// flipBit flips one bit of the byte at off in path, on disk.
func flipBit(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x04
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// copyDir copies the regular files of src into dst (the store layout is
// flat), giving each corruption case a pristine store image.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// buildGolden populates dir with a durable store: two manifest-named
// runs of string-bearing rows plus a memtable remainder flushed by
// FlushBase. Returns the full contents key.
func buildGolden(t *testing.T, dir string, n int) string {
	t.Helper()
	st := openTest(t, dir, Options{})
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < n; i++ {
		if !rel.Insert(strRow(i)) {
			t.Fatalf("insert %d rejected", i)
		}
	}
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	key := rowsKey(rel)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return key
}

// TestWriteFaultDegradesReadOnly injects an I/O error into the flush
// path and checks the fail-safe contract: the failing write surfaces as
// a typed ErrDiskFault, the store flips read-only, reads keep serving,
// and later writes are rejected without touching the device again.
func TestWriteFaultDegradesReadOnly(t *testing.T) {
	ffs := fsio.NewFaultFS(fsio.OS)
	st := openTest(t, t.TempDir(), Options{FS: ffs})
	defer st.Close()
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 3; i++ {
		rel.Insert(strRow(i))
	}
	ffs.Inject(fsio.Fault{Op: fsio.OpCreate, Path: "run-", Err: syscall.ENOSPC})

	// The 4th insert crosses FlushRows and the run create fails.
	err := catchStorage(func() { rel.Insert(strRow(3)) })
	if !errors.Is(err, storage.ErrDiskFault) {
		t.Fatalf("faulted insert: got %v, want ErrDiskFault", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("fault cause lost: %v", err)
	}
	if st.Degraded() == nil {
		t.Fatal("store did not degrade after a write-path disk fault")
	}

	// Reads keep serving: the failed flush left the rows in the memtable.
	if got := rel.Len(); got != 4 {
		t.Fatalf("Len after degraded = %d, want 4", got)
	}
	var n int
	rel.Scan(func(term.Tuple) bool { n++; return true })
	if n != 4 {
		t.Fatalf("Scan after degraded saw %d rows, want 4", n)
	}
	if !rel.Contains(strRow(2)) {
		t.Fatal("Contains lost a row after degrading")
	}

	// Further writes fail typed via checkWritable, without another device
	// touch: the create counter must not move.
	creates := ffs.OpsSeen(fsio.OpCreate)
	for _, w := range []func(){
		func() { rel.Insert(strRow(9)) },
		func() { rel.Delete(strRow(0)) },
		func() { rel.Clear() },
	} {
		if err := catchStorage(w); !errors.Is(err, storage.ErrDiskFault) {
			t.Fatalf("degraded write: got %v, want ErrDiskFault", err)
		}
	}
	if got := ffs.OpsSeen(fsio.OpCreate); got != creates {
		t.Fatalf("degraded writes touched the device: %d creates, had %d", got, creates)
	}
	if ffs.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", ffs.Trips())
	}
}

// TestManifestFaultKeepsPriorBoundary faults the manifest write of a
// second FlushBase and checks reopening on a healthy filesystem recovers
// exactly the previous durable statement boundary.
func TestManifestFaultKeepsPriorBoundary(t *testing.T) {
	dir := t.TempDir()
	golden := buildGolden(t, dir, 8)

	ffs := fsio.NewFaultFS(fsio.OS)
	st := openTest(t, dir, Options{FS: ffs})
	rel, ok := st.Get(term.Intern("edge"), 2)
	if !ok {
		t.Fatal("relation lost on reopen")
	}
	for i := 8; i < 12; i++ {
		catchStorage(func() { rel.Insert(strRow(i)) })
	}
	ffs.Inject(fsio.Fault{Op: fsio.OpRename, Path: "MANIFEST", Err: syscall.EIO})
	err := catchStorage(func() {
		if e := st.FlushBase(); e != nil {
			panic(e)
		}
	})
	if !errors.Is(err, storage.ErrDiskFault) {
		t.Fatalf("faulted FlushBase: got %v, want ErrDiskFault", err)
	}
	if st.Degraded() == nil {
		t.Fatal("store did not degrade after manifest fault")
	}
	_ = st.Close()

	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	rel2, ok := st2.Get(term.Intern("edge"), 2)
	if !ok {
		t.Fatal("relation lost after recovery")
	}
	if got := rowsKey(rel2); got != golden {
		t.Fatalf("recovered contents differ from the durable boundary:\n got %q\nwant %q", got, golden)
	}
	// The epoch-2 runs are orphans and must have been swept.
	findings, err := FsckDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := storage.CountSerious(findings); n != 0 {
		t.Fatalf("fsck after recovery: %d serious findings: %v", n, findings)
	}
}

// TestFaultSweepEveryWriteSite injects a single EIO at every create,
// write, sync, and rename the full insert+FlushBase workload performs —
// including the ones during Open — and checks the contract at each site:
// the workload either completes or fails typed, and a clean reopen
// always lands on a consistent statement boundary (here: nothing durable
// or everything durable, since the workload has one FlushBase).
func TestFaultSweepEveryWriteSite(t *testing.T) {
	const rows = 10
	workload := func(st *Store) error {
		return catchStorage(func() {
			rel := st.Ensure(term.Intern("edge"), 2)
			for i := 0; i < rows; i++ {
				rel.Insert(strRow(i))
			}
			if err := st.FlushBase(); err != nil {
				panic(err)
			}
		})
	}

	// Calibration pass: count the ops a clean run performs.
	calib := fsio.NewFaultFS(fsio.OS)
	st := openTest(t, t.TempDir(), Options{FS: calib})
	if err := workload(st); err != nil {
		t.Fatal(err)
	}
	sweep := map[fsio.Op]int{
		fsio.OpCreate: calib.OpsSeen(fsio.OpCreate),
		fsio.OpWrite:  calib.OpsSeen(fsio.OpWrite),
		fsio.OpSync:   calib.OpsSeen(fsio.OpSync),
		fsio.OpRename: calib.OpsSeen(fsio.OpRename),
	}
	st.Close()

	for op, n := range sweep {
		if n == 0 {
			t.Fatalf("calibration saw no %v ops: the sweep is not covering the workload", op)
		}
		for after := 0; after < n; after++ {
			dir := t.TempDir()
			ffs := fsio.NewFaultFS(fsio.OS)
			ffs.Inject(fsio.Fault{Op: op, After: after, Count: 1, Err: syscall.EIO})
			st, err := Open(dir, Options{FS: ffs, FlushRows: 4, NoCompactor: true})
			if err != nil {
				if !errors.Is(err, storage.ErrDiskFault) {
					t.Fatalf("%v@%d: Open failed untyped: %v", op, after, err)
				}
			} else {
				if werr := workload(st); werr != nil && !errors.Is(werr, storage.ErrDiskFault) {
					t.Fatalf("%v@%d: workload failed untyped: %v", op, after, werr)
				}
				_ = st.Close()
			}

			// Clean reopen: the store must come back consistent.
			st2, err := Open(dir, Options{FlushRows: 4, NoCompactor: true})
			if err != nil {
				t.Fatalf("%v@%d: reopen after fault failed: %v", op, after, err)
			}
			got := 0
			if rel, ok := st2.Get(term.Intern("edge"), 2); ok {
				got = rel.Len()
			}
			if got != 0 && got != rows {
				t.Fatalf("%v@%d: reopened with %d rows; want 0 (pre-boundary) or %d (post)", op, after, got, rows)
			}
			findings, err := FsckDir(dir, false)
			if err != nil {
				t.Fatalf("%v@%d: fsck: %v", op, after, err)
			}
			if storage.CountSerious(findings) != 0 {
				t.Fatalf("%v@%d: fsck found damage after clean reopen: %v", op, after, findings)
			}
			_ = st2.Close()
		}
	}
}

// runLayout describes the byte regions of the first durable run file,
// recovered by parsing its trailer and resident metadata.
type runLayout struct {
	path       string
	block0Off  int64 // first frame's length prefix
	block0Size int64
	hashOff    int64
	footOff    int64
	trailerOff int64
	size       int64
}

// layoutOf opens the golden store read-only and maps the first run.
func layoutOf(t *testing.T, dir string) runLayout {
	t.Helper()
	st := openTest(t, dir, Options{})
	defer st.Close()
	rel, ok := st.Get(term.Intern("edge"), 2)
	if !ok {
		t.Fatal("golden relation missing")
	}
	runs := *rel.(*Rel).runs.Load()
	if len(runs) == 0 {
		t.Fatal("golden store has no runs")
	}
	rn := runs[0]
	fi, err := os.Stat(rn.path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(rn.path)
	if err != nil {
		t.Fatal(err)
	}
	trailerOff := fi.Size() - int64(runTrailerLen)
	footOff := int64(binary.LittleEndian.Uint64(data[trailerOff : trailerOff+8]))
	return runLayout{
		path:       rn.path,
		block0Off:  rn.blocks[0].off,
		block0Size: int64(rn.blocks[0].size),
		hashOff:    rn.hashOff,
		footOff:    footOff,
		trailerOff: trailerOff,
		size:       fi.Size(),
	}
}

// TestBitFlipMatrix flips one bit in every artifact offset class — run
// block payload, block frame header, hash section, footer, trailer,
// manifest record, intern record — and asserts each read or open fails
// with a typed ErrCorrupt naming the artifact. A silent wrong answer or
// an untyped panic fails the test.
func TestBitFlipMatrix(t *testing.T) {
	golden := t.TempDir()
	buildGolden(t, golden, 8)
	gl := layoutOf(t, golden)
	rel := filepath.Base(gl.path)

	cases := []struct {
		name     string
		file     string // base name of the file to damage
		off      int64
		artifact string
		openErr  bool // damage detected at Open rather than first read
		probe    func(t *testing.T, st *Store) error
	}{
		{
			name: "block-payload", file: rel, off: gl.block0Off + 8 + 3,
			artifact: "run-block",
			probe: func(t *testing.T, st *Store) error {
				r, _ := st.Get(term.Intern("edge"), 2)
				return catchStorage(func() { r.Scan(func(term.Tuple) bool { return true }) })
			},
		},
		{
			name: "block-frame-header", file: rel, off: gl.block0Off + 1,
			artifact: "block-header",
			probe: func(t *testing.T, st *Store) error {
				r, _ := st.Get(term.Intern("edge"), 2)
				return catchStorage(func() { r.Scan(func(term.Tuple) bool { return true }) })
			},
		},
		{
			name: "hash-section", file: rel, off: gl.hashOff + 5,
			artifact: "run-hash-section",
			probe: func(t *testing.T, st *Store) error {
				r, _ := st.Get(term.Intern("edge"), 2)
				// Contains forces the lazy index load from hashOff.
				return catchStorage(func() { r.Contains(strRow(1)) })
			},
		},
		{
			name: "footer", file: rel, off: gl.footOff + 2,
			artifact: "run-footer", openErr: true,
		},
		{
			name: "trailer", file: rel, off: gl.trailerOff + 16, // magic bytes
			artifact: "run-trailer", openErr: true,
		},
		{
			name: "manifest-record", file: manifestName, off: 20,
			artifact: "manifest", openErr: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, golden, dir)
			flipBit(t, filepath.Join(dir, tc.file), tc.off)

			st, err := Open(dir, Options{FlushRows: 4, NoCompactor: true})
			if tc.openErr {
				if st != nil {
					st.Close()
				}
				requireCorrupt(t, err, tc.artifact)
				return
			}
			if err != nil {
				t.Fatalf("Open: %v (damage should surface on read, not open)", err)
			}
			defer st.Close()
			requireCorrupt(t, tc.probe(t, st), tc.artifact)
		})
	}

	// Intern record rot: the live open truncates the unrecoverable tail
	// (reads then fail typed on any block referencing a lost atom), so the
	// detection contract is checked through the offline verifier, which
	// must name the intern artifact without mutating anything.
	t.Run("intern-record", func(t *testing.T) {
		dir := t.TempDir()
		copyDir(t, golden, dir)
		ip := filepath.Join(dir, internFileName)
		fi, err := os.Stat(ip)
		if err != nil {
			t.Fatal(err)
		}
		flipBit(t, ip, fi.Size()-6) // inside the final record's hash/CRC
		findings, err := FsckDir(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		var hit bool
		for _, f := range findings {
			if f.Artifact == "intern" && !f.Benign {
				hit = true
			}
		}
		if !hit {
			t.Fatalf("intern rot not reported: %v", findings)
		}
	})
}

// requireCorrupt asserts err is a typed ErrCorrupt naming artifact.
func requireCorrupt(t *testing.T, err error, artifact string) {
	t.Helper()
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt(%s)", err, artifact)
	}
	var ce *storage.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("no CorruptError in chain: %v", err)
	}
	if ce.Artifact != artifact {
		t.Fatalf("artifact = %q, want %q (err: %v)", ce.Artifact, artifact, err)
	}
}

// TestScrubDetectsEveryBitFlip is the exhaustive detection check: for a
// small run file, every single-bit flip at every byte offset must
// produce at least one verifier finding. This is the acceptance bar for
// the scrub subsystem — no undetectable single-bit rot anywhere in a
// run image.
func TestScrubDetectsEveryBitFlip(t *testing.T) {
	dir := t.TempDir()
	buildGolden(t, dir, 4) // one run: keeps the image small
	gl := layoutOf(t, dir)
	pristine, err := os.ReadFile(gl.path)
	if err != nil {
		t.Fatal(err)
	}
	dict := loadDictReadOnly(fsio.OS, dir)
	img := verifyRunBytes(dict, gl.path, "edge", 1, pristine)
	if len(img.findings) != 0 {
		t.Fatalf("pristine image has findings: %v", img.findings)
	}
	data := make([]byte, len(pristine))
	for off := 0; off < len(pristine); off++ {
		for bit := 0; bit < 8; bit++ {
			copy(data, pristine)
			data[off] ^= 1 << bit
			v := verifyRunBytes(dict, gl.path, "edge", 1, data)
			if len(v.findings) == 0 {
				t.Fatalf("flip of byte %d bit %d went undetected", off, bit)
			}
		}
	}
}

// TestScrubHealsAuxDamage damages the hash section (pure function of the
// surviving tuples) and checks a repairing scrub heals it in place: the
// finding is marked healed, the relation's contents are byte-identical,
// and a follow-up scrub is clean.
func TestScrubHealsAuxDamage(t *testing.T) {
	dir := t.TempDir()
	golden := buildGolden(t, dir, 8)
	gl := layoutOf(t, dir)
	flipBit(t, gl.path, gl.hashOff+2)

	st := openTest(t, dir, Options{})
	defer st.Close()
	findings := st.Scrub(true)
	var healed bool
	for _, f := range findings {
		if f.Healed {
			healed = true
		}
		if f.Quarantined {
			t.Fatalf("aux damage was quarantined instead of healed: %v", f)
		}
	}
	if !healed {
		t.Fatalf("no healed finding: %v", findings)
	}
	rel, _ := st.Get(term.Intern("edge"), 2)
	if got := rowsKey(rel); got != golden {
		t.Fatalf("healed contents differ:\n got %q\nwant %q", got, golden)
	}
	if again := st.Scrub(false); len(again) != 0 {
		t.Fatalf("scrub after heal still finds damage: %v", again)
	}
	// The repair must be durable: reopen and compare again.
	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	rel2, _ := st2.Get(term.Intern("edge"), 2)
	if got := rowsKey(rel2); got != golden {
		t.Fatalf("healed contents lost on reopen:\n got %q\nwant %q", got, golden)
	}
}

// TestScrubQuarantinesTupleDamage damages tuple bytes (block payload) —
// which no repair may guess at — and checks the run is quarantined: the
// file is set aside under .quarantined, the relation serves the
// surviving rows, and the state survives reopen.
func TestScrubQuarantinesTupleDamage(t *testing.T) {
	dir := t.TempDir()
	buildGolden(t, dir, 8)
	gl := layoutOf(t, dir)
	flipBit(t, gl.path, gl.block0Off+8+2)

	st := openTest(t, dir, Options{})
	defer st.Close()
	findings := st.Scrub(true)
	var quarantined bool
	for _, f := range findings {
		if f.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("tuple damage not quarantined: %v", findings)
	}
	if _, err := os.Stat(gl.path + ".quarantined"); err != nil {
		t.Fatalf("quarantined file not set aside: %v", err)
	}
	rel, _ := st.Get(term.Intern("edge"), 2)
	survivors := rowsKey(rel)
	if strings.Count(survivors, ";") == 0 || strings.Count(survivors, ";") >= 8 {
		t.Fatalf("unexpected survivor count in %q", survivors)
	}
	if err := catchStorage(func() { rel.Scan(func(term.Tuple) bool { return true }) }); err != nil {
		t.Fatalf("scan after quarantine failed: %v", err)
	}
	_ = st.Close()

	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	rel2, ok := st2.Get(term.Intern("edge"), 2)
	if !ok {
		t.Fatal("relation lost after quarantine + reopen")
	}
	if got := rowsKey(rel2); got != survivors {
		t.Fatalf("quarantine not durable:\n got %q\nwant %q", got, survivors)
	}
}

// TestFsckRepairHeal exercises the offline path: fsck reports aux damage
// without repair, heals it with -repair, and the healed store serves
// byte-identical contents.
func TestFsckRepairHeal(t *testing.T) {
	dir := t.TempDir()
	golden := buildGolden(t, dir, 8)
	gl := layoutOf(t, dir)
	flipBit(t, gl.path, gl.hashOff+1)

	findings, err := FsckDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if storage.CountSerious(findings) == 0 {
		t.Fatalf("fsck missed the damage: %v", findings)
	}
	repaired, err := FsckDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var healed bool
	for _, f := range repaired {
		if f.Healed {
			healed = true
		}
	}
	if !healed {
		t.Fatalf("fsck -repair did not heal: %v", repaired)
	}
	clean, err := FsckDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Fatalf("fsck after repair still reports: %v", clean)
	}
	st := openTest(t, dir, Options{})
	defer st.Close()
	rel, _ := st.Get(term.Intern("edge"), 2)
	if got := rowsKey(rel); got != golden {
		t.Fatalf("fsck-healed contents differ:\n got %q\nwant %q", got, golden)
	}
}

// TestFsckFooterLossRecovery destroys the trailer (so the footer index
// is unreachable) and checks fsck's frame-walk rebuilds it from the
// tuple data, restoring the full contents.
func TestFsckFooterLossRecovery(t *testing.T) {
	dir := t.TempDir()
	golden := buildGolden(t, dir, 8)
	gl := layoutOf(t, dir)
	flipBit(t, gl.path, gl.trailerOff+18) // trailer magic

	if _, err := Open(dir, Options{FlushRows: 4, NoCompactor: true}); err == nil {
		t.Fatal("open succeeded with a destroyed trailer")
	}
	repaired, err := FsckDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var healed bool
	for _, f := range repaired {
		if f.Healed {
			healed = true
		}
	}
	if !healed {
		t.Fatalf("footer loss not healed by frame walk: %v", repaired)
	}
	st := openTest(t, dir, Options{})
	defer st.Close()
	rel, _ := st.Get(term.Intern("edge"), 2)
	if got := rowsKey(rel); got != golden {
		t.Fatalf("frame-walk recovery lost rows:\n got %q\nwant %q", got, golden)
	}
}

// TestFsckQuarantineTupleDamage checks the offline repair path sets
// tuple-damaged runs aside and rewrites the manifest so a normal open
// serves the survivors.
func TestFsckQuarantineTupleDamage(t *testing.T) {
	dir := t.TempDir()
	buildGolden(t, dir, 8)
	gl := layoutOf(t, dir)
	flipBit(t, gl.path, gl.block0Off+8+1)

	repaired, err := FsckDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var quarantined bool
	for _, f := range repaired {
		if f.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("fsck -repair did not quarantine: %v", repaired)
	}
	if _, err := os.Stat(gl.path + ".quarantined"); err != nil {
		t.Fatalf("quarantined file not set aside: %v", err)
	}
	st := openTest(t, dir, Options{})
	defer st.Close()
	rel, ok := st.Get(term.Intern("edge"), 2)
	if !ok {
		t.Fatal("relation lost after offline quarantine")
	}
	if err := catchStorage(func() { rel.Scan(func(term.Tuple) bool { return true }) }); err != nil {
		t.Fatalf("scan after offline quarantine: %v", err)
	}
	if rel.Len() >= 8 || rel.Len() == 0 {
		t.Fatalf("Len = %d after quarantining one run of 8 rows", rel.Len())
	}
}

// TestBackgroundScrubber is a liveness smoke: a store with a fast scrub
// interval keeps serving reads and shuts down cleanly while the
// background verifier walks its runs.
func TestBackgroundScrubber(t *testing.T) {
	dir := t.TempDir()
	golden := buildGolden(t, dir, 8)
	st, err := Open(dir, Options{FlushRows: 4, NoCompactor: true, ScrubInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := st.Get(term.Intern("edge"), 2)
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		if got := rowsKey(rel); got != golden {
			t.Fatalf("contents changed under the scrubber: %q", got)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepsTolerateFaults checks the hygiene sweeps degrade gracefully:
// a failing Remove or ReadDir is logged and skipped, never fatal to the
// open or the sweep, and a later healthy pass finishes the job.
func TestSweepsTolerateFaults(t *testing.T) {
	dir := t.TempDir()
	buildGolden(t, dir, 8)
	orphan := filepath.Join(dir, runName(99))
	if err := os.WriteFile(orphan, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stale.tmp"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	ffs := fsio.NewFaultFS(fsio.OS)
	ffs.Inject(fsio.Fault{Op: fsio.OpRemove, Err: syscall.EIO})
	st, err := Open(dir, Options{FS: ffs, FlushRows: 4, NoCompactor: true})
	if err != nil {
		t.Fatalf("open with failing removes: %v", err)
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Fatal("orphan removed despite injected fault (or sweep crashed)")
	}
	_ = st.Close()

	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("healthy sweep left the orphan behind")
	}
	if _, err := os.Stat(filepath.Join(dir, "stale.tmp")); !os.IsNotExist(err) {
		t.Fatal("healthy sweep left the temp file behind")
	}

	// Spill sweep: a failing ReadDir is reported, not fatal.
	spillParent := t.TempDir()
	ffs2 := fsio.NewFaultFS(fsio.OS)
	ffs2.Inject(fsio.Fault{Op: fsio.OpReadDir, Err: syscall.EIO, Count: 1})
	scratch, err := NewScratchFS(ffs2, spillParent, 4, storage.IndexPolicy(0), nil)
	if err != nil {
		t.Fatalf("scratch create with failing sweep: %v", err)
	}
	_ = scratch.Close()
}

// TestBulkLoadFaultDegrades checks the bulk-load path shares the
// fail-safe contract: a fault during its run writes surfaces typed and
// degrades the store.
func TestBulkLoadFaultDegrades(t *testing.T) {
	ffs := fsio.NewFaultFS(fsio.OS)
	st := openTest(t, t.TempDir(), Options{FS: ffs})
	defer st.Close()
	rows := make([]term.Tuple, 64)
	for i := range rows {
		rows[i] = strRow(i)
	}
	ffs.Inject(fsio.Fault{Op: fsio.OpWrite, Path: "run-", Err: syscall.ENOSPC})
	err := catchStorage(func() {
		if _, e := st.BulkLoad(term.Intern("bulk"), 2, rows); e != nil {
			panic(e)
		}
	})
	if !errors.Is(err, storage.ErrDiskFault) {
		t.Fatalf("bulk load fault: got %v, want ErrDiskFault", err)
	}
	if st.Degraded() == nil {
		t.Fatal("store not degraded after bulk-load fault")
	}
}
