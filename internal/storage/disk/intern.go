// Persistent intern table: a per-store append-only dictionary of atom
// strings with their precomputed content hashes. Two jobs:
//
//  1. Compressed run blocks reference atoms by dictionary ID instead of
//     repeating their bytes; IDs are stable because the file is
//     append-only and entries are never reordered or removed.
//  2. Reopening a store replays the file through term.InternWithHash, so
//     every stored atom re-enters the process-wide intern table with its
//     hash already computed — cold-open never re-folds atom bytes.
//
// Records are prefix-compressed against the previous entry (shared-prefix
// length + suffix) and individually checksummed; a torn tail — a crash
// mid-append — is truncated away on load, which is safe because the
// dictionary is synced before any run or manifest that references its
// entries becomes durable. Ephemeral stores (spill scratch) keep the
// dictionary in memory only.
package disk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

const (
	internFileName = "INTERN.gri"
	internMagic    = "GLUENAIL-ITN1\n"
	// internInlineLimit bounds dictionary entries: strings longer than
	// this are stored inline in their blocks instead, so one huge
	// distinct payload cannot bloat the dictionary every reopen must
	// replay.
	internInlineLimit = 1024
)

// atomDict maps interned atoms to stable uint32 IDs and back. A single
// mutex covers the writer side (flush, bulk load, and the background
// compactor all encode blocks); decoding is lock-free through the
// published value slice.
type atomDict struct {
	mu   sync.Mutex
	ids  map[string]uint32
	vals []term.Value                 // id -> interned atom, writer-owned
	pub  atomic.Pointer[[]term.Value] // reader-visible snapshot of vals
	prev string                       // last appended string, for prefix coding

	f     fsio.File // nil = memory-only (ephemeral store)
	path  string
	pend  []byte // records appended since the last sync
	dirty bool
}

// newAtomDict opens (or creates) the dictionary under dir. An empty dir
// keeps it memory-only. Corrupt or torn trailing records are truncated
// away with a warning; preceding records stay valid.
func newAtomDict(fsys fsio.FS, dir string) (*atomDict, error) {
	d := &atomDict{ids: make(map[string]uint32)}
	d.publish()
	if dir == "" {
		return d, nil
	}
	path := filepath.Join(dir, internFileName)
	data, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, storage.IOFault("intern", path, err)
	}
	good := 0
	if len(data) >= len(internMagic) && string(data[:len(internMagic)]) == internMagic {
		good = len(internMagic)
		pos := good
		for pos < len(data) {
			rec, next, ok := parseInternRecord(data, pos, d.prev)
			if !ok {
				fmt.Fprintf(os.Stderr, "gluenail: disk: %s: truncating torn intern record at %d\n", path, pos)
				break
			}
			d.appendMem(rec.s, rec.h)
			pos = next
			good = pos
		}
	} else if len(data) > 0 {
		fmt.Fprintf(os.Stderr, "gluenail: disk: %s: bad intern table header, rebuilding\n", path)
		good = 0
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, storage.IOFault("intern", path, err)
	}
	if good == 0 {
		// Fresh or unreadable file: (re)write the header. Entries already
		// referenced by compressed runs cannot exist in this case — runs
		// are only durable after the dictionary naming their atoms is.
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return nil, storage.IOFault("intern", path, err)
		}
		if _, err := f.WriteAt([]byte(internMagic), 0); err != nil {
			_ = f.Close()
			return nil, storage.IOFault("intern", path, err)
		}
		good = len(internMagic)
	}
	if err := f.Truncate(int64(good)); err != nil {
		_ = f.Close()
		return nil, storage.IOFault("intern", path, err)
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		_ = f.Close()
		return nil, storage.IOFault("intern", path, err)
	}
	d.f = f
	d.path = path
	return d, nil
}

type internRecord struct {
	s string
	h uint64
}

// parseInternRecord decodes one record at pos: uvarint shared-prefix len
// (vs the previous entry), uvarint suffix len, suffix bytes, 8-byte LE
// hash, 4-byte CRC over the preceding record bytes.
func parseInternRecord(data []byte, pos int, prev string) (internRecord, int, bool) {
	start := pos
	pfx, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return internRecord{}, 0, false
	}
	pos += n
	sfx, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return internRecord{}, 0, false
	}
	pos += n
	if int(pfx) > len(prev) || pos+int(sfx)+12 > len(data) {
		return internRecord{}, 0, false
	}
	suffix := data[pos : pos+int(sfx)]
	pos += int(sfx)
	h := binary.LittleEndian.Uint64(data[pos:])
	pos += 8
	sum := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	if crc32.ChecksumIEEE(data[start:pos-4]) != sum {
		return internRecord{}, 0, false
	}
	return internRecord{s: prev[:pfx] + string(suffix), h: h}, pos, true
}

// appendMem adds one entry to the in-memory maps (load path and writer
// path share it) and publishes the new snapshot.
func (d *atomDict) appendMem(s string, h uint64) {
	v := term.InternWithHash(s, h)
	d.ids[s] = uint32(len(d.vals))
	d.vals = append(d.vals, v)
	d.prev = s
	d.publish()
}

func (d *atomDict) publish() {
	hdr := d.vals
	d.pub.Store(&hdr)
}

// sharedPrefix returns the length of the common prefix of a and b.
func sharedPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// idFor returns the dictionary ID for atom v, appending it (and staging
// the file record) on first sight. Callers hold no lock.
func (d *atomDict) idFor(v term.Value) uint32 {
	s := v.Str()
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	if d.f != nil {
		pfx := sharedPrefix(d.prev, s)
		start := len(d.pend)
		d.pend = binary.AppendUvarint(d.pend, uint64(pfx))
		d.pend = binary.AppendUvarint(d.pend, uint64(len(s)-pfx))
		d.pend = append(d.pend, s[pfx:]...)
		d.pend = binary.LittleEndian.AppendUint64(d.pend, v.StrHash())
		d.pend = binary.LittleEndian.AppendUint32(d.pend, crc32.ChecksumIEEE(d.pend[start:]))
		d.dirty = true
	}
	id := uint32(len(d.vals))
	d.appendMem(s, v.StrHash())
	return id
}

// atom returns the value for id. Lock-free: IDs only ever come from
// blocks encoded against this dictionary, so id < len(published).
func (d *atomDict) atom(id uint32) (term.Value, bool) {
	vals := *d.pub.Load()
	if int(id) >= len(vals) {
		return term.Value{}, false
	}
	return vals[id], true
}

// sync makes all staged records durable. Must run before any run file or
// manifest that references the new entries is fsynced — createRun and
// writeManifest call it. No-op when clean or memory-only.
func (d *atomDict) sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.dirty || d.f == nil {
		return nil
	}
	if _, err := d.f.Write(d.pend); err != nil {
		return storage.IOFault("intern", d.path, err)
	}
	if err := d.f.Sync(); err != nil {
		return storage.IOFault("intern", d.path, err)
	}
	d.pend = d.pend[:0]
	d.dirty = false
	return nil
}

// close releases the file handle (staged but unsynced records are
// discarded: nothing durable references them).
func (d *atomDict) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return nil
	}
	err := d.f.Close()
	d.f = nil
	if err != nil {
		return storage.IOFault("intern", d.path, err)
	}
	return nil
}
