// Package disk implements the disk-resident storage engine: an
// index-organized store of immutable runs plus a per-relation in-memory
// memtable, registered as backend "disk".
//
// Layout per relation: new rows go to the memtable (a full
// storage.Relation — intrusive hash chains, cached hashes, MVCC dead
// stamps); when it reaches the flush threshold its live rows are written
// out as a run and the memtable starts fresh. Reads merge runs (flush
// order) with the memtable, which reproduces the main-memory engine's
// insertion-order enumeration exactly. Deleting a run-resident row stamps
// a tombstone (slot -> deleting CSN) instead of rewriting the run, the
// same multi-version visibility rule as the memtable's dead stamps. A
// background compactor merges runs once they pile up.
//
// Durability composes with the existing WAL: every mutation is journaled
// as before, and at checkpoint the WAL calls FlushBase, which makes the
// engine's own base state durable (flush memtables, drop tombstones,
// write the manifest atomically) and then logs an empty snapshot image in
// place of a full one. Recovery loads the manifest first and replays only
// the log tail on top, idempotently.
//
// I/O errors on read paths panic: the Rel read interface has no error
// channel, and the VM's panic containment turns the panic into a typed
// governed error at the statement boundary.
package disk

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

func init() {
	storage.RegisterBackend("disk", func(cfg storage.BackendConfig) (storage.Backend, error) {
		return Open(cfg.Dir, Options{
			Policy:        cfg.Policy,
			CacheBlocks:   cfg.CacheBlocks,
			NoCompress:    cfg.NoCompress,
			FS:            cfg.FS,
			ScrubInterval: cfg.ScrubInterval,
		})
	})
}

// Options tunes a disk store beyond the backend-independent config.
type Options struct {
	// Policy is the adaptive-index policy for memtables and run indexes.
	Policy storage.IndexPolicy
	// FlushRows is the memtable row count that triggers an automatic
	// flush to a run; <= 0 selects the default (32768). A spill store
	// sets it to the scratch budget.
	FlushRows int
	// CacheBlocks caps the shared decoded-block cache; <= 0 selects 512.
	CacheBlocks int
	// CompactAfter is the per-relation run count that wakes the
	// compactor; <= 0 selects 6.
	CompactAfter int
	// Ephemeral marks a scratch store: no manifest or fsync, and Close
	// removes the directory. FlushBase must not be called on it.
	Ephemeral bool
	// NoCompactor disables background compaction (tests, deterministic
	// benchmarks).
	NoCompactor bool
	// NoCompress stores run blocks raw instead of packed (see
	// compress.go). Reads handle both forms regardless, so the setting
	// can change between opens of the same store.
	NoCompress bool
	// NoBloom skips building and consulting per-run bloom filters
	// (benchmark ablation only).
	NoBloom bool
	// Stats, when non-nil, is the shared counter block to account into
	// (a spill store accounts into the executor's scratch stats).
	Stats *storage.Stats
	// FS routes all file I/O; nil selects the real filesystem (fsio.OS).
	// Tests swap in a fault-injecting implementation.
	FS fsio.FS
	// ScrubInterval, when positive, starts a background scrubber that
	// verifies one run's checksums per interval at low priority.
	ScrubInterval time.Duration
}

func (o Options) flushRows() int {
	if o.FlushRows > 0 {
		return o.FlushRows
	}
	return 32768
}

func (o Options) compactAfter() int {
	if o.CompactAfter > 0 {
		return o.CompactAfter
	}
	return 6
}

func (o Options) compress() bool { return !o.NoCompress }

func (o Options) fs() fsio.FS {
	if o.FS != nil {
		return o.FS
	}
	return fsio.OS
}

const (
	manifestName   = "MANIFEST.grm"
	manifestMagic1 = "GLUENAIL-MAN1\n"
	// MAN2 adds per-relation distinct digests after the arity, so reopen
	// restores planner statistics without decoding any run.
	manifestMagic2 = "GLUENAIL-MAN2\n"
)

// Store is the disk engine. It implements storage.Backend plus the
// composition hooks (storage.BaseFlusher) the WAL checkpoint uses.
type Store struct {
	dir   string
	opts  Options
	fsys  fsio.FS
	stats *storage.Stats
	cache *blockCache

	// degraded holds the first write-path disk fault. Once set the store
	// is read-only: reads keep serving the in-memory state and the last
	// durable manifest, writes fail typed with the stored fault instead
	// of stacking new damage on a failing device. Reopening the store is
	// the only way out — the manifest protocol guarantees the durable
	// state is the previous statement-boundary manifest.
	degraded atomic.Pointer[degradedState]
	// dict is the persistent intern dictionary packed blocks reference;
	// memory-only on ephemeral stores.
	dict *atomDict

	journal   storage.Journal
	commitCSN atomic.Uint64

	// mu guards rels/order/runSeq/durable/obsolete. The writer is single-
	// threaded per the Rel contract; the lock exists for the background
	// compactor and concurrent snapshot capture.
	mu      sync.RWMutex
	rels    map[string]*Rel
	order   []*Rel // creation order, for deterministic manifests
	runSeq  uint64
	durable map[uint64]bool // run seqs named by the current manifest
	// obsolete holds replaced manifest-listed runs whose files must
	// survive until the next manifest stops naming them (crash recovery
	// reads the old manifest until then). Non-manifest runs are unlinked
	// immediately on replacement instead.
	obsolete []*run
	// graveyard holds runs the compactor replaced whose store reference
	// cannot be released yet: live readers load a relation's run list
	// lock-free, so a reader that picked up the old list may still be
	// probing these files. The release (and with it the file close) is
	// deferred to the next statement boundary — AdvanceCSN or Close —
	// when no live-store reader can be in flight. Snapshots are
	// unaffected: they hold their own retains.
	graveyard []*run

	// compactMu serializes compactor cycles against FlushBase and Close.
	compactMu    sync.Mutex
	compactCh    chan struct{}
	compactStart sync.Once
	stopCh       chan struct{}
	wg           sync.WaitGroup
	closed       atomic.Bool

	// scrubCursor is the run sequence the background scrubber verified
	// last (guarded by mu); it walks the store one run per tick.
	scrubCursor uint64
}

var (
	_ storage.Backend     = (*Store)(nil)
	_ storage.BaseFlusher = (*Store)(nil)
)

type degradedState struct{ err error }

// Degraded returns the disk fault that flipped the store read-only, or
// nil while the store is healthy.
func (s *Store) Degraded() error {
	if d := s.degraded.Load(); d != nil {
		return d.err
	}
	return nil
}

// setDegraded flips the store read-only on its first write-path disk
// fault. Later faults keep the first cause (the one that did the
// damage); corruption and non-I/O errors do not degrade.
func (s *Store) setDegraded(err error) {
	if err == nil || !errors.Is(err, storage.ErrDiskFault) {
		return
	}
	s.degraded.CompareAndSwap(nil, &degradedState{err: err})
}

// failWrite classifies a write-path error: disk faults degrade the
// store; everything passes through for the caller to surface.
func (s *Store) failWrite(err error) error {
	s.setDegraded(err)
	return err
}

// checkWritable panics with the degrading fault if the store is
// read-only. Write entry points call it first, so a degraded store
// rejects mutations without touching the failing device again. The
// panic is typed (errors.Is ErrDiskFault) and converted back into an
// error by the VM's containment or the public API's recover.
func (s *Store) checkWritable() {
	if d := s.degraded.Load(); d != nil {
		panic(d.err)
	}
}

// Open opens (or creates) a disk store rooted at dir. With an empty dir a
// private temp directory is created and treated as ephemeral. Opening
// loads the manifest and every run it names — rebuilding the in-memory
// run indexes and distinct digests — and sweeps orphaned temp and run
// files left by a crash (their contents, if committed, are still in the
// WAL, which replays on top after this returns).
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.fs()
	if dir == "" {
		tmp, err := fsys.MkdirTemp("", "gluenail-disk-")
		if err != nil {
			return nil, storage.IOFault("open", "", err)
		}
		dir = tmp
		opts.Ephemeral = true
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, storage.IOFault("open", dir, err)
	}
	st := &Store{
		dir:     dir,
		opts:    opts,
		fsys:    fsys,
		stats:   opts.Stats,
		cache:   newBlockCache(opts.CacheBlocks),
		rels:    make(map[string]*Rel),
		durable: make(map[uint64]bool),
		stopCh:  make(chan struct{}),
	}
	if st.stats == nil {
		st.stats = &storage.Stats{}
	}
	st.compactCh = make(chan struct{}, 1)
	// The intern dictionary loads before the manifest: packed blocks in
	// manifest-named runs reference its entries. Ephemeral stores keep it
	// in memory only.
	dictDir := dir
	if opts.Ephemeral {
		dictDir = ""
	}
	dict, err := newAtomDict(fsys, dictDir)
	if err != nil {
		return nil, err
	}
	st.dict = dict
	if err := st.loadManifest(); err != nil {
		_ = dict.close()
		return nil, err
	}
	st.sweepOrphans()
	if opts.ScrubInterval > 0 && !opts.Ephemeral {
		st.startScrubber(opts.ScrubInterval)
	}
	return st, nil
}

// compress reports whether new blocks should try the packed encoding.
func (s *Store) compress() bool { return s.opts.compress() }

// relKey mirrors the storage package's relation key.
func relKey(name term.Value, arity int) string {
	return term.Key(name) + "/" + fmt.Sprint(arity)
}

// Rel is one disk-resident relation: immutable runs plus a memtable.
type Rel struct {
	st    *Store
	name  term.Value
	arity int

	// mem is the memtable; replaced wholesale on flush (snapshots keep
	// the captured view alive through the GC, as with the main-memory
	// engine's copy-on-write arrays).
	mem *storage.Relation
	// runs is copy-on-write: the writer (and the compactor's install)
	// swaps in a fresh slice; readers and snapshot capture load it
	// atomically.
	runs     atomic.Pointer[[]*run]
	diskLive int // live rows across runs (excludes tombstoned)

	version    uint64
	statsEpoch atomic.Uint64
	epochRows  int
	dist       *storage.DistinctTracker

	// relMu serializes structure changes that the background compactor
	// could interleave with: run-list swaps and run tombstones. The
	// writer's per-row paths never contend (the compactor holds it only
	// for a pointer-compare-and-swap install).
	relMu sync.Mutex

	// Adaptive partial-mask indexes over run-resident rows, mirroring
	// the main-memory relation's scan-credit policy. The index holds
	// decoded tuples (probes must not touch disk), is invalidated by
	// flush (writer-side), updated by Delete, and untouched by
	// compaction (content-preserving).
	ixMu     sync.RWMutex
	ixs      map[uint32]*hashIx
	ixCredit map[uint32]*atomic.Int64
	ixOnces  map[uint32]*sync.Once
}

var (
	_ storage.Rel         = (*Rel)(nil)
	_ storage.MemResident = (*Rel)(nil)
	_ storage.Coster      = (*Rel)(nil)
)

type hashIx struct {
	mask    uint32
	buckets map[uint64][]term.Tuple
}

// Ensure implements storage.Store.
func (s *Store) Ensure(name term.Value, arity int) storage.Rel {
	return s.ensure(name, arity, true)
}

func (s *Store) ensure(name term.Value, arity int, journal bool) *Rel {
	k := relKey(name, arity)
	s.mu.RLock()
	r, ok := s.rels[k]
	s.mu.RUnlock()
	if ok {
		return r
	}
	r = &Rel{
		st:    s,
		name:  name,
		arity: arity,
		mem:   storage.NewRelationCSN(name, arity, s.opts.Policy, s.stats, &s.commitCSN),
		dist:  storage.NewDistinctTracker(arity),
	}
	empty := []*run{}
	r.runs.Store(&empty)
	s.mu.Lock()
	s.rels[k] = r
	s.order = append(s.order, r)
	s.mu.Unlock()
	atomic.AddInt64(&s.stats.RelsCreated, 1)
	if journal && s.journal != nil {
		s.journal.JournalCreate(name, arity)
	}
	return r
}

// Get implements storage.Store.
func (s *Store) Get(name term.Value, arity int) (storage.Rel, bool) {
	s.mu.RLock()
	r, ok := s.rels[relKey(name, arity)]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return r, true
}

// Drop implements storage.Store: the relation's runs are released and
// their files scheduled for removal (immediately unless the current
// manifest still names them, in which case the next checkpoint removes
// them).
func (s *Store) Drop(name term.Value, arity int) {
	k := relKey(name, arity)
	s.mu.Lock()
	r, ok := s.rels[k]
	if ok {
		delete(s.rels, k)
		for i, o := range s.order {
			if o == r {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	r.relMu.Lock()
	runs := *r.runs.Load()
	empty := []*run{}
	r.runs.Store(&empty)
	r.diskLive = 0
	r.relMu.Unlock()
	s.retireRuns(runs)
	atomic.AddInt64(&s.stats.RelsDropped, 1)
}

// retireRuns releases ownership of replaced/dropped runs and removes their
// files unless the durable manifest still needs them. With a background
// compactor running, the final release is deferred to the graveyard (see
// the field comment): a lock-free reader may still hold the replaced run
// list. Without one, every retire is writer-sequenced against all readers
// and the reference can drop immediately.
func (s *Store) retireRuns(runs []*run) {
	if len(runs) == 0 {
		return
	}
	s.mu.Lock()
	for _, rn := range runs {
		if s.durable[rn.seq] {
			s.obsolete = append(s.obsolete, rn)
		} else {
			_ = s.fsys.Remove(rn.path)
		}
		s.cache.dropRun(rn.seq)
		if s.opts.NoCompactor {
			rn.release()
		} else {
			s.graveyard = append(s.graveyard, rn)
		}
	}
	s.mu.Unlock()
}

// drainGraveyard releases deferred run references. Must only be called
// when no live-store reader can be in flight (statement boundaries and
// Close).
func (s *Store) drainGraveyard() {
	s.mu.Lock()
	dead := s.graveyard
	s.graveyard = nil
	s.mu.Unlock()
	for _, rn := range dead {
		rn.release()
	}
}

// Names implements storage.Store.
func (s *Store) Names() []storage.RelName {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]storage.RelName, 0, len(s.rels))
	for _, r := range s.rels {
		out = append(out, storage.RelName{Name: r.name, Arity: r.arity})
	}
	return out
}

// Stats implements storage.Store.
func (s *Store) Stats() *storage.Stats { return s.stats }

// SetJournal implements storage.Store.
func (s *Store) SetJournal(j storage.Journal) { s.journal = j }

// CommitCSN implements storage.Backend.
func (s *Store) CommitCSN() uint64 { return s.commitCSN.Load() }

// AdvanceCSN implements storage.Backend. Called at statement boundaries,
// which are also the moments no live reader holds a stale run list — so
// compactor-retired runs deferred in the graveyard close here.
func (s *Store) AdvanceCSN() uint64 {
	csn := s.commitCSN.Add(1)
	s.drainGraveyard()
	return csn
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close stops the compactor, closes every run file, and removes the
// directory if the store is ephemeral.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stopCh)
	s.wg.Wait()
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.drainGraveyard()
	s.mu.Lock()
	rels := append([]*Rel(nil), s.order...)
	s.obsolete = nil // released via the graveyard; files kept for the manifest
	s.mu.Unlock()
	for _, r := range rels {
		for _, rn := range *r.runs.Load() {
			rn.release()
		}
	}
	err := s.dict.close()
	if s.opts.Ephemeral {
		if rerr := s.fsys.RemoveAll(s.dir); err == nil {
			err = rerr
		}
	}
	return err
}

// ---- Rel: identity and statistics ----

// Name implements storage.Rel.
func (r *Rel) Name() term.Value { return r.name }

// Arity implements storage.Rel.
func (r *Rel) Arity() int { return r.arity }

// Len implements storage.Rel.
func (r *Rel) Len() int { return r.diskLive + r.mem.Len() }

// MemRows implements storage.MemResident: only the memtable is resident.
func (r *Rel) MemRows() int { return r.mem.Len() }

// Version implements storage.Rel.
func (r *Rel) Version() uint64 { return r.version }

// StatsEpoch implements storage.Rel.
func (r *Rel) StatsEpoch() uint64 { return r.statsEpoch.Load() }

func (r *Rel) noteEpoch() {
	n := r.Len()
	if n > 2*r.epochRows || 2*n < r.epochRows {
		r.statsEpoch.Add(1)
		r.epochRows = n
	}
}

// DistinctEst implements storage.Rel from the relation-wide digest (the
// memtable's own digest covers only resident rows).
func (r *Rel) DistinctEst(col int) int { return r.dist.Estimate(col) }

// CostProfile implements storage.Coster: access costs scale with the
// fraction of rows that live on disk rather than in the memtable.
func (r *Rel) CostProfile() storage.CostProfile {
	total := r.diskLive + r.mem.Len()
	frac := 0.0
	if total > 0 {
		frac = float64(r.diskLive) / float64(total)
	}
	return storage.CostProfile{
		Engine: "disk",
		Scan:   1 + 7*frac,
		// Lookup weighs cheaper than before the bloom filters: most
		// membership misses now cost one filter check, no I/O.
		Lookup: 1 + 2*frac,
	}
}

func (r *Rel) fullMask() uint32 { return (uint32(1) << uint(r.arity)) - 1 }

func (r *Rel) deadStamp() uint64 { return r.st.commitCSN.Load() + 1 }

// ---- Rel: mutation ----

// Insert implements storage.Rel: dedup against the runs by cached hash
// (disk touched only on a hash match), then against and into the memtable.
func (r *Rel) Insert(t term.Tuple) bool {
	r.st.checkWritable()
	if t == nil {
		t = term.Tuple{}
	}
	if r.runsContain(t.Hash(), t) {
		return false
	}
	if !r.mem.Insert(t) {
		return false
	}
	r.dist.Add(t)
	r.version++
	r.noteEpoch()
	if j := r.st.journal; j != nil {
		j.JournalInsert(r.name, r.arity, t)
	}
	if r.mem.Len() >= r.st.opts.flushRows() {
		if err := r.flush(false); err != nil {
			// A failed flush leaves the rows in the memtable and the
			// store degraded (read-only): the panic is typed and the VM
			// or public API converts it back to an error at the
			// statement boundary instead of poisoning the system.
			panic(r.st.failWrite(err))
		}
	}
	return true
}

// Delete implements storage.Rel. A memtable row is dead-stamped there; a
// run row gets a tombstone at the same CSN semantics.
func (r *Rel) Delete(t term.Tuple) bool {
	r.st.checkWritable()
	if r.mem.Delete(t) {
		r.dist.Remove(t)
		r.version++
		r.noteEpoch()
		if j := r.st.journal; j != nil {
			j.JournalDelete(r.name, r.arity, t)
		}
		return true
	}
	// The whole probe-and-stamp runs under relMu: a concurrent compactor
	// install between finding the slot and stamping it would strand the
	// tombstone on a replaced run.
	r.relMu.Lock()
	defer r.relMu.Unlock()
	h := t.Hash()
	for _, rn := range *r.runs.Load() {
		if !rn.mayContain(r.st.stats, h) {
			continue
		}
		if err := rn.ensureIndex(r.st.stats); err != nil {
			panic(err)
		}
		for i := rn.buckets[h]; i != 0; i = rn.next[i-1] {
			slot := i - 1
			if rn.tombAt(slot) != 0 {
				continue
			}
			u, err := rn.tupleAt(r.st.cache, r.st.stats, slot)
			if err != nil {
				panic(err)
			}
			if !u.Equal(t) {
				continue
			}
			rn.setTomb(slot, r.deadStamp())
			r.diskLive--
			r.version++
			r.noteEpoch()
			r.dist.Remove(u)
			atomic.AddInt64(&r.st.stats.Deletes, 1)
			r.ixMu.Lock()
			for _, ix := range r.ixs {
				ixRemove(ix, u)
			}
			r.ixMu.Unlock()
			if j := r.st.journal; j != nil {
				j.JournalDelete(r.name, r.arity, u)
			}
			return true
		}
	}
	return false
}

// Clear implements storage.Rel.
func (r *Rel) Clear() {
	r.st.checkWritable()
	if r.Len() == 0 {
		return
	}
	r.relMu.Lock()
	runs := *r.runs.Load()
	empty := []*run{}
	r.runs.Store(&empty)
	r.diskLive = 0
	r.relMu.Unlock()
	r.st.retireRuns(runs)
	r.mem.Clear() // journal-free: the memtable has no journal attached
	r.dist.Reset()
	r.version++
	r.statsEpoch.Add(1)
	r.epochRows = 0
	r.ixMu.Lock()
	r.ixs, r.ixCredit, r.ixOnces = nil, nil, nil
	r.ixMu.Unlock()
	if j := r.st.journal; j != nil {
		j.JournalClear(r.name, r.arity)
	}
}

// UnionDiff implements storage.Rel.
func (r *Rel) UnionDiff(batch []term.Tuple) []term.Tuple {
	var delta []term.Tuple
	for _, t := range batch {
		if r.Insert(t) {
			delta = append(delta, t)
		}
	}
	return delta
}

// ModifyByKey implements storage.Rel.
func (r *Rel) ModifyByKey(mask uint32, rows []term.Tuple) {
	for _, row := range rows {
		var victims []term.Tuple
		r.Lookup(mask, row, func(t term.Tuple) bool {
			victims = append(victims, t)
			return true
		})
		for _, v := range victims {
			r.Delete(v)
		}
		r.Insert(row)
	}
}

// flush writes the memtable's live rows out as a new run and starts a
// fresh memtable. Content-preserving: Version is not bumped, and a
// snapshot captured before the flush keeps reading its captured arrays.
// sync makes the run durable before it is visible (checkpoint); auto
// flushes skip it because their rows are still replayable from the WAL.
func (r *Rel) flush(sync bool) error {
	rows := r.mem.All()
	if len(rows) == 0 {
		return nil
	}
	hashes := make([]uint64, len(rows))
	for i, t := range rows {
		hashes[i] = t.Hash()
	}
	seq := r.st.nextRunSeq()
	rn, err := createRun(r.st, seq, r.arity, rows, hashes, sync)
	if err != nil {
		return err
	}
	r.relMu.Lock()
	old := *r.runs.Load()
	nr := make([]*run, len(old)+1)
	copy(nr, old)
	nr[len(old)] = rn
	r.runs.Store(&nr)
	r.diskLive += len(rows)
	nruns := len(nr)
	r.relMu.Unlock()
	r.mem = storage.NewRelationCSN(r.name, r.arity, r.st.opts.Policy, r.st.stats, &r.st.commitCSN)
	// Run indexes no longer cover every run-resident row: rebuild on
	// demand.
	r.ixMu.Lock()
	r.ixs, r.ixCredit, r.ixOnces = nil, nil, nil
	r.ixMu.Unlock()
	atomic.AddInt64(&r.st.stats.RunsFlushed, 1)
	atomic.AddInt64(&r.st.stats.RowsSpilled, int64(len(rows)))
	r.st.maybeCompact(r, nruns)
	return nil
}

func (s *Store) nextRunSeq() uint64 {
	s.mu.Lock()
	s.runSeq++
	seq := s.runSeq
	s.mu.Unlock()
	return seq
}

// ---- Rel: reads ----

// runsContain probes the runs for t: the bloom filter first (a miss skips
// the run with no I/O at all), then the hash chains, loading a reopened
// run's index on first need.
func (r *Rel) runsContain(h uint64, t term.Tuple) bool {
	return r.runsContainIn(*r.runs.Load(), h, t)
}

// runsContainIn probes an explicit run list — the bulk loader passes the
// runs that predate its batch, skipping the ones the batch itself built.
func (r *Rel) runsContainIn(runs []*run, h uint64, t term.Tuple) bool {
	for _, rn := range runs {
		if !rn.mayContain(r.st.stats, h) {
			continue
		}
		if err := rn.ensureIndex(r.st.stats); err != nil {
			panic(err)
		}
		for i := rn.buckets[h]; i != 0; i = rn.next[i-1] {
			slot := i - 1
			if rn.hashes[slot] != h || rn.tombAt(slot) != 0 {
				continue
			}
			u, err := rn.tupleAt(r.st.cache, r.st.stats, slot)
			if err != nil {
				panic(err)
			}
			if u.Equal(t) {
				return true
			}
		}
	}
	return false
}

// Contains implements storage.Rel.
func (r *Rel) Contains(t term.Tuple) bool {
	return r.mem.Contains(t) || r.runsContain(t.Hash(), t)
}

// Scan implements storage.Rel: runs in flush order, then the memtable —
// global insertion order, matching the main-memory engine.
func (r *Rel) Scan(yield func(term.Tuple) bool) {
	atomic.AddInt64(&r.st.stats.RowsScanned, int64(r.diskLive))
	for _, rn := range *r.runs.Load() {
		more, err := rn.scan(r.st.cache, r.st.stats, nil, yield)
		if err != nil {
			panic(err)
		}
		if !more {
			return
		}
	}
	r.mem.Scan(yield)
}

// Lookup implements storage.Rel: run-resident matches first (insertion
// order), then the memtable's.
func (r *Rel) Lookup(mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	if mask == 0 || r.Len() == 0 {
		r.Scan(yield)
		return
	}
	if mask == r.fullMask() {
		// At most one live copy exists across runs + memtable.
		h := key.Hash()
		for _, rn := range *r.runs.Load() {
			if !rn.mayContain(r.st.stats, h) {
				continue
			}
			if err := rn.ensureIndex(r.st.stats); err != nil {
				panic(err)
			}
			for i := rn.buckets[h]; i != 0; i = rn.next[i-1] {
				slot := i - 1
				if rn.hashes[slot] != h || rn.tombAt(slot) != 0 {
					continue
				}
				u, err := rn.tupleAt(r.st.cache, r.st.stats, slot)
				if err != nil {
					panic(err)
				}
				if u.Equal(key) {
					atomic.AddInt64(&r.st.stats.RowsProbed, 1)
					if !yield(u) {
						return
					}
				}
			}
		}
		r.mem.Lookup(mask, key, yield)
		return
	}
	if r.diskLive == 0 {
		r.mem.Lookup(mask, key, yield)
		return
	}
	ix := r.runIx(mask)
	if ix == nil {
		if once := r.creditRunScan(mask, 1); once != nil {
			once.Do(func() { r.publishRunIx(mask) })
			ix = r.runIx(mask)
		}
	}
	if ix != nil {
		for _, t := range ix.buckets[key.HashCols(mask)] {
			if t.EqualCols(key, mask) {
				atomic.AddInt64(&r.st.stats.RowsProbed, 1)
				if !yield(t) {
					return
				}
			}
		}
		r.mem.Lookup(mask, key, yield)
		return
	}
	atomic.AddInt64(&r.st.stats.RowsScanned, int64(r.diskLive))
	stopped := false
	for _, rn := range *r.runs.Load() {
		more, err := rn.scan(r.st.cache, r.st.stats, nil, func(t term.Tuple) bool {
			if t.EqualCols(key, mask) && !yield(t) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			panic(err)
		}
		if !more || stopped {
			return
		}
	}
	r.mem.Lookup(mask, key, yield)
}

// PrepareRead implements storage.Rel: pre-pays adaptive accounting on both
// layers so parallel readers find published indexes.
func (r *Rel) PrepareRead(mask uint32, lookups int) {
	r.mem.PrepareRead(mask, lookups)
	if mask == 0 || mask == r.fullMask() || r.diskLive == 0 || lookups <= 0 {
		return
	}
	if r.runIx(mask) != nil {
		return
	}
	if once := r.creditRunScan(mask, int64(lookups)); once != nil {
		once.Do(func() { r.publishRunIx(mask) })
	}
}

// All implements storage.Rel.
func (r *Rel) All() []term.Tuple {
	out := make([]term.Tuple, 0, r.Len())
	r.Scan(func(t term.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ---- Rel: adaptive run indexes ----

func (r *Rel) runIx(mask uint32) *hashIx {
	r.ixMu.RLock()
	ix := r.ixs[mask]
	r.ixMu.RUnlock()
	return ix
}

// creditRunScan mirrors the main-memory relation's scan-credit policy for
// the run-resident rows.
func (r *Rel) creditRunScan(mask uint32, scans int64) *sync.Once {
	r.ixMu.RLock()
	if _, ok := r.ixs[mask]; ok {
		once := r.ixOnces[mask]
		r.ixMu.RUnlock()
		return once
	}
	c := r.ixCredit[mask]
	r.ixMu.RUnlock()
	switch r.st.opts.Policy {
	case storage.IndexNever:
		return nil
	case storage.IndexAlways:
		return r.runIxGuard(mask)
	}
	if c == nil {
		r.ixMu.Lock()
		if c = r.ixCredit[mask]; c == nil {
			if r.ixCredit == nil {
				r.ixCredit = make(map[uint32]*atomic.Int64)
			}
			c = new(atomic.Int64)
			r.ixCredit[mask] = c
		}
		r.ixMu.Unlock()
	}
	n := int64(r.diskLive)
	if c.Add(scans*n) >= 2*n {
		return r.runIxGuard(mask)
	}
	return nil
}

func (r *Rel) runIxGuard(mask uint32) *sync.Once {
	r.ixMu.Lock()
	defer r.ixMu.Unlock()
	if r.ixOnces == nil {
		r.ixOnces = make(map[uint32]*sync.Once)
	}
	once := r.ixOnces[mask]
	if once == nil {
		once = new(sync.Once)
		r.ixOnces[mask] = once
	}
	return once
}

// publishRunIx scans the runs once and publishes a decoded-tuple index in
// insertion order, so probes enumerate matches exactly as a scan would.
func (r *Rel) publishRunIx(mask uint32) {
	ix := &hashIx{mask: mask, buckets: make(map[uint64][]term.Tuple)}
	for _, rn := range *r.runs.Load() {
		_, err := rn.scan(r.st.cache, r.st.stats, nil, func(t term.Tuple) bool {
			h := t.HashCols(mask)
			ix.buckets[h] = append(ix.buckets[h], t)
			return true
		})
		if err != nil {
			panic(err)
		}
	}
	atomic.AddInt64(&r.st.stats.IndexBuilds, 1)
	r.ixMu.Lock()
	if r.ixs == nil {
		r.ixs = make(map[uint32]*hashIx)
	}
	r.ixs[mask] = ix
	delete(r.ixCredit, mask)
	r.ixMu.Unlock()
}

func ixRemove(ix *hashIx, t term.Tuple) {
	h := t.HashCols(ix.mask)
	bucket := ix.buckets[h]
	for i, u := range bucket {
		if u.Equal(t) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket = bucket[:last]
			if len(bucket) == 0 {
				delete(ix.buckets, h)
			} else {
				ix.buckets[h] = bucket
			}
			return
		}
	}
}

// ---- manifest, recovery, checkpoint ----

// FlushBase implements storage.BaseFlusher: called by the WAL at
// checkpoint, at a statement boundary. It flushes every memtable, rewrites
// any run set carrying tombstones (the manifest format has none — at a
// boundary every tombstone is safely droppable, and snapshots pin the old
// runs), writes the manifest atomically, and only then removes files the
// new manifest no longer names.
func (s *Store) FlushBase() error {
	if s.opts.Ephemeral {
		return fmt.Errorf("disk: FlushBase on ephemeral store")
	}
	if err := s.Degraded(); err != nil {
		return err
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.RLock()
	rels := append([]*Rel(nil), s.order...)
	s.mu.RUnlock()
	for _, r := range rels {
		if err := r.flush(true); err != nil {
			return s.failWrite(err)
		}
		if err := r.dropTombs(); err != nil {
			return s.failWrite(err)
		}
	}
	return s.persistManifest(rels)
}

// persistManifest makes the current run lists durable: every straggler
// run is fsynced (auto-flushed runs skip the sync because their rows are
// WAL-covered, but a manifest must never name a non-durable file), the
// manifest is written atomically, and files the new manifest no longer
// names are removed. Shared by the checkpoint (FlushBase) and the
// scrubber's heal/quarantine paths, which rewrite run lists between
// checkpoints — safe mid-generation because WAL replay over the new
// manifest is idempotent.
func (s *Store) persistManifest(rels []*Rel) error {
	for _, r := range rels {
		for _, rn := range *r.runs.Load() {
			if rn.synced.Load() {
				continue
			}
			if err := rn.f.Sync(); err != nil {
				return s.failWrite(storage.IOFault("flush", rn.path, err))
			}
			rn.synced.Store(true)
		}
	}
	if err := s.writeManifest(); err != nil {
		return s.failWrite(err)
	}
	// The new manifest is durable: files it no longer names — replaced
	// durable runs and every auto-flushed run now superseded — can go.
	s.mu.Lock()
	obsolete := s.obsolete
	s.obsolete = nil
	durable := make(map[uint64]bool)
	for _, r := range rels {
		for _, rn := range *r.runs.Load() {
			durable[rn.seq] = true
		}
	}
	s.durable = durable
	s.mu.Unlock()
	for _, rn := range obsolete {
		_ = s.fsys.Remove(rn.path)
	}
	return nil
}

// dropTombs rewrites each run that carries tombstones without its
// tombstoned rows, in place in the run list — runs without tombstones
// are untouched, so the size-tiered structure compaction built is
// preserved. Called only at statement boundaries (checkpoint), where
// every tombstone is committed; snapshots captured earlier keep the old
// run objects alive.
func (r *Rel) dropTombs() error {
	runs := *r.runs.Load()
	var nr []*run
	var retired []*run
	for _, rn := range runs {
		if rn.ntombs() == 0 {
			nr = append(nr, rn)
			continue
		}
		rewritten, err := r.mergeRuns([]*run{rn}, ^uint64(0), true)
		if err != nil {
			return err
		}
		if rewritten != nil {
			nr = append(nr, rewritten)
		}
		retired = append(retired, rn)
	}
	if len(retired) == 0 {
		return nil
	}
	if nr == nil {
		nr = []*run{}
	}
	r.relMu.Lock()
	r.runs.Store(&nr)
	r.relMu.Unlock()
	r.st.retireRuns(retired)
	return nil
}

// mergeRuns writes the rows of runs that are live below dropBelow (tomb
// CSN <= dropBelow is dropped; others are carried with their tombstones)
// into one new run, preserving order. Returns nil if no rows survive.
func (r *Rel) mergeRuns(runs []*run, dropBelow uint64, sync bool) (*run, error) {
	var rows []term.Tuple
	var hashes []uint64
	type carried struct {
		slot int32
		csn  uint64
	}
	var carry []carried
	for _, rn := range runs {
		if err := rn.ensureIndex(r.st.stats); err != nil {
			return nil, err
		}
		slot := int32(0)
		for bi := range rn.blocks {
			decoded, err := rn.block(r.st.cache, r.st.stats, bi)
			if err != nil {
				return nil, err
			}
			for _, t := range decoded {
				d := rn.tombAt(slot)
				if d != 0 && d <= dropBelow {
					slot++
					continue
				}
				if d != 0 {
					carry = append(carry, carried{slot: int32(len(rows)), csn: d})
				}
				rows = append(rows, t)
				hashes = append(hashes, rn.hashes[int(slot)])
				slot++
			}
		}
	}
	if len(rows) == 0 {
		return nil, nil
	}
	seq := r.st.nextRunSeq()
	merged, err := createRun(r.st, seq, r.arity, rows, hashes, sync)
	if err != nil {
		return nil, err
	}
	if len(carry) > 0 {
		tm := make(map[int32]uint64, len(carry))
		for _, c := range carry {
			tm[c.slot] = c.csn
		}
		merged.tombs.Store(&tm)
	}
	return merged, nil
}

// writeManifest writes the manifest atomically: temp file, fsync, rename,
// directory fsync. The intern dictionary is synced first — manifest-named
// packed runs must never reference atoms the dictionary could lose.
func (s *Store) writeManifest() error {
	if err := s.dict.sync(); err != nil {
		return err
	}
	var payload []byte
	s.mu.RLock()
	payload = binary.AppendUvarint(payload, s.runSeq)
	payload = binary.AppendUvarint(payload, uint64(len(s.order)))
	for _, r := range s.order {
		payload = term.AppendValue(payload, r.name)
		payload = binary.AppendUvarint(payload, uint64(r.arity))
		payload = r.dist.AppendDigest(payload)
		runs := *r.runs.Load()
		payload = binary.AppendUvarint(payload, uint64(len(runs)))
		for _, rn := range runs {
			payload = binary.AppendUvarint(payload, rn.seq)
		}
	}
	s.mu.RUnlock()
	var buf bytes.Buffer
	buf.WriteString(manifestMagic2)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf.Write(hdr[:])
	buf.Write(payload)

	path := filepath.Join(s.dir, manifestName)
	tmpPath := path + ".tmp"
	f, err := s.fsys.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return storage.IOFault("manifest", tmpPath, err)
	}
	_, err = f.Write(buf.Bytes())
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = s.fsys.Remove(tmpPath)
		return storage.IOFault("manifest", tmpPath, err)
	}
	if err := f.Close(); err != nil {
		_ = s.fsys.Remove(tmpPath)
		return storage.IOFault("manifest", tmpPath, err)
	}
	if err := s.fsys.Rename(tmpPath, path); err != nil {
		_ = s.fsys.Remove(tmpPath)
		return storage.IOFault("manifest", path, err)
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return storage.IOFault("manifest", s.dir, err)
	}
	return nil
}

// loadManifest restores relations and runs from the manifest, if present.
// MAN2 manifests carry persisted distinct digests, so reopening decodes no
// run data at all; legacy MAN1 manifests rebuild the digests by scanning
// each run once through the openRun observe callback.
func (s *Store) loadManifest() error {
	path := filepath.Join(s.dir, manifestName)
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return storage.IOFault("manifest", path, err)
	}
	mlen := len(manifestMagic2)
	v2 := false
	switch {
	case len(data) >= mlen+8 && string(data[:mlen]) == manifestMagic2:
		v2 = true
	case len(data) >= mlen+8 && string(data[:mlen]) == manifestMagic1:
	default:
		return &storage.CorruptError{Artifact: "manifest", Path: path, Offset: 0,
			Detail: "bad manifest header"}
	}
	plen := int(binary.LittleEndian.Uint32(data[mlen : mlen+4]))
	sum := binary.LittleEndian.Uint32(data[mlen+4 : mlen+8])
	rest := data[mlen+8:]
	if len(rest) < plen || crc32.ChecksumIEEE(rest[:plen]) != sum {
		return &storage.CorruptError{Artifact: "manifest", Path: path, Offset: int64(mlen + 8),
			Detail: "manifest checksum mismatch"}
	}
	br := bytes.NewReader(rest[:plen])
	rd := newByteScanner(br)
	runSeq, err := binary.ReadUvarint(rd)
	if err != nil {
		return err
	}
	nrels, err := binary.ReadUvarint(rd)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nrels; i++ {
		name, err := term.ReadValue(rd.buf)
		if err != nil {
			return err
		}
		arity, err := binary.ReadUvarint(rd)
		if err != nil {
			return err
		}
		r := s.ensure(name, int(arity), false)
		var observe func(term.Tuple)
		if v2 {
			if err := r.dist.ReadDigest(rd.buf); err != nil {
				return fmt.Errorf("disk: %s: manifest digest for %v/%d: %w", s.dir, name, arity, err)
			}
		} else {
			observe = func(t term.Tuple) { r.dist.Add(t) }
		}
		nruns, err := binary.ReadUvarint(rd)
		if err != nil {
			return err
		}
		var runs []*run
		live := 0
		for j := uint64(0); j < nruns; j++ {
			seq, err := binary.ReadUvarint(rd)
			if err != nil {
				return err
			}
			rn, err := openRun(s, filepath.Join(s.dir, runName(seq)), seq, observe)
			if err != nil {
				return err
			}
			runs = append(runs, rn)
			live += int(rn.nrows)
			s.durable[seq] = true
		}
		r.runs.Store(&runs)
		r.diskLive = live
		r.epochRows = live
	}
	if runSeq > s.runSeq {
		s.runSeq = runSeq
	}
	return nil
}

// sweepOrphans removes temp files and run files the manifest does not
// name: leftovers of an interrupted flush, compaction, or checkpoint.
// Committed rows among them are still in the WAL, which replays after the
// store opens. The sweep is best-effort: an unremovable orphan (a
// permission oddity, say) costs disk space, not correctness, so failures
// are logged rather than failing the open.
func (s *Store) sweepOrphans() {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gluenail: disk: orphan sweep of %s: %v\n", s.dir, err)
		return
	}
	for _, e := range entries {
		name := e.Name()
		if len(name) > 4 && name[len(name)-4:] == ".tmp" {
			if err := s.fsys.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "gluenail: disk: removing orphan %s: %v\n", name, err)
			}
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "run-%d.grn", &seq); err == nil && name == runName(seq) {
			if !s.durable[seq] {
				if err := s.fsys.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
					fmt.Fprintf(os.Stderr, "gluenail: disk: removing orphan %s: %v\n", name, err)
				}
			}
			if seq > s.runSeq {
				s.runSeq = seq // never reuse a swept sequence number
			}
		}
	}
}

// byteScanner adapts a bytes.Reader for both ReadUvarint (io.ByteReader)
// and term.ReadValue (*bufio.Reader) without losing position.
type byteScanner struct {
	buf *bufio.Reader
}

func newByteScanner(r *bytes.Reader) *byteScanner {
	return &byteScanner{buf: bufio.NewReader(r)}
}

func (b *byteScanner) ReadByte() (byte, error) { return b.buf.ReadByte() }
