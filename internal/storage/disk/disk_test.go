package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// Unit tests for the disk engine internals: flush-ordered runs,
// tombstones, manifest reopen, orphan sweep, compaction, snapshot
// pinning, and the spill-directory hygiene helpers.

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.FlushRows == 0 {
		opts.FlushRows = 4
	}
	opts.NoCompactor = true
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func pair(a, b int) term.Tuple {
	return term.Tuple{term.NewInt(int64(a)), term.NewInt(int64(b))}
}

func allRows(r storage.Rel) [][2]int64 {
	var out [][2]int64
	r.Scan(func(t term.Tuple) bool {
		out = append(out, [2]int64{t[0].Int(), t[1].Int()})
		return true
	})
	return out
}

// TestDiskFlushScanOrder checks that enumeration order across flushed
// runs and the live memtable is insertion order — the invariant every
// byte-identical guarantee in the system rests on.
func TestDiskFlushScanOrder(t *testing.T) {
	st := openTest(t, t.TempDir(), Options{})
	defer st.Close()
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 10; i++ {
		if !rel.Insert(pair(i, i+1)) {
			t.Fatalf("insert %d rejected", i)
		}
	}
	r := rel.(*Rel)
	if n := len(*r.runs.Load()); n < 2 {
		t.Fatalf("expected multiple runs at FlushRows=4, got %d", n)
	}
	if rel.Len() != 10 {
		t.Fatalf("Len = %d, want 10", rel.Len())
	}
	rows := allRows(rel)
	for i, row := range rows {
		if row != [2]int64{int64(i), int64(i + 1)} {
			t.Fatalf("row %d = %v: scan is not insertion-ordered", i, row)
		}
	}
	// Dedup must see through runs: re-inserting a flushed row is a no-op.
	if rel.Insert(pair(0, 1)) {
		t.Fatal("re-insert of run-resident row was accepted")
	}
	if !rel.Contains(pair(7, 8)) || rel.Contains(pair(7, 9)) {
		t.Fatal("Contains wrong across runs/memtable")
	}
	// Full-mask and single-column lookups over run-resident rows.
	var hits int
	rel.Lookup(3, pair(2, 3), func(term.Tuple) bool { hits++; return true })
	if hits != 1 {
		t.Fatalf("full-mask lookup: %d hits, want 1", hits)
	}
	hits = 0
	rel.PrepareRead(1, 1<<20)
	rel.Lookup(1, term.Tuple{term.NewInt(5), {}}, func(t term.Tuple) bool {
		if t[1].Int() != 6 {
			return false
		}
		hits++
		return true
	})
	if hits != 1 {
		t.Fatalf("col-0 lookup: %d hits, want 1", hits)
	}
}

// TestDiskDeleteTombstones deletes both a memtable-resident and a
// run-resident row and checks every read path agrees.
func TestDiskDeleteTombstones(t *testing.T) {
	st := openTest(t, t.TempDir(), Options{})
	defer st.Close()
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 10; i++ {
		rel.Insert(pair(i, i+1))
	}
	if !rel.Delete(pair(1, 2)) { // run-resident (flushed at row 4)
		t.Fatal("delete of run-resident row failed")
	}
	if !rel.Delete(pair(9, 10)) { // memtable-resident
		t.Fatal("delete of memtable row failed")
	}
	if rel.Delete(pair(1, 2)) {
		t.Fatal("double delete succeeded")
	}
	if rel.Len() != 8 {
		t.Fatalf("Len = %d after deletes, want 8", rel.Len())
	}
	if rel.Contains(pair(1, 2)) || rel.Contains(pair(9, 10)) {
		t.Fatal("deleted row still Contains")
	}
	for _, row := range allRows(rel) {
		if row == [2]int64{1, 2} || row == [2]int64{9, 10} {
			t.Fatalf("deleted row %v still scanned", row)
		}
	}
	// A tombstoned run row can be re-inserted; it lands in the memtable
	// and enumerates at its new position (set semantics, new insertion).
	if !rel.Insert(pair(1, 2)) {
		t.Fatal("re-insert of deleted row rejected")
	}
	rows := allRows(rel)
	if last := rows[len(rows)-1]; last != [2]int64{1, 2} {
		t.Fatalf("re-inserted row enumerates at %v, want last", last)
	}
}

// TestDiskReopenFromManifest round-trips contents, order, and distinct
// estimates through FlushBase + Close + Open.
func TestDiskReopenFromManifest(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{})
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 10; i++ {
		rel.Insert(pair(i%3, i))
	}
	rel.Delete(pair(0, 0))
	want := allRows(rel)
	wantD0, wantD1 := rel.DistinctEst(0), rel.DistinctEst(1)
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	rel2, ok := st2.Get(term.Intern("edge"), 2)
	if !ok {
		t.Fatal("relation missing after reopen")
	}
	got := allRows(rel2)
	if len(got) != len(want) {
		t.Fatalf("reopen: %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reopen row %d = %v, want %v", i, got[i], want[i])
		}
	}
	if d0, d1 := rel2.DistinctEst(0), rel2.DistinctEst(1); d0 != wantD0 || d1 != wantD1 {
		t.Fatalf("distinct estimates (%d,%d) after reopen, want (%d,%d)", d0, d1, wantD0, wantD1)
	}
}

// TestDiskOrphanSweep plants stray run and temp files (as a crash between
// run creation and manifest install would) and checks reopen removes them
// without touching manifest-listed runs.
func TestDiskOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{})
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 6; i++ {
		rel.Insert(pair(i, i+1))
	}
	if err := st.FlushBase(); err != nil {
		t.Fatal(err)
	}
	want := allRows(rel)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	orphanRun := filepath.Join(dir, runName(99999999))
	orphanTmp := filepath.Join(dir, "run-00000042.grn.tmp")
	for _, p := range []string{orphanRun, orphanTmp} {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	for _, p := range []string{orphanRun, orphanTmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived reopen", filepath.Base(p))
		}
	}
	rel2, _ := st2.Get(term.Intern("edge"), 2)
	got := allRows(rel2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("content changed by sweep: %v vs %v", got, want)
	}
}

// TestDiskCompactOne merges a relation's runs directly and checks the
// merge is content-identical, collapses to one run, and drops committed
// tombstones.
func TestDiskCompactOne(t *testing.T) {
	st := openTest(t, t.TempDir(), Options{})
	defer st.Close()
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 12; i++ {
		rel.Insert(pair(i, i+1))
	}
	rel.Delete(pair(2, 3)) // run-resident tombstone
	st.AdvanceCSN()        // commit it: compaction may now drop the row
	want := allRows(rel)

	r := rel.(*Rel)
	before := len(*r.runs.Load())
	if before < 2 {
		t.Fatalf("need >= 2 runs to compact, have %d", before)
	}
	if !st.compactOne(r, 0, before) {
		t.Fatal("compactOne reported no progress")
	}
	runs := *r.runs.Load()
	if len(runs) != 1 {
		t.Fatalf("%d runs after compaction, want 1", len(runs))
	}
	if n := runs[0].ntombs(); n != 0 {
		t.Fatalf("merged run carries %d tombstones, want 0 (all committed)", n)
	}
	got := allRows(rel)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("compaction changed content: %v vs %v", got, want)
	}
	// A second cycle has a single run and must decline.
	if st.compactOne(r, 0, len(*r.runs.Load())) {
		t.Fatal("compactOne claimed progress on a single run")
	}
}

// TestDiskSnapshotPinsRuns captures a view, then deletes and compacts
// underneath it: the view must keep reading the replaced (unlinked) run
// files, and the live store must see the new state.
func TestDiskSnapshotPinsRuns(t *testing.T) {
	st := openTest(t, t.TempDir(), Options{})
	defer st.Close()
	rel := st.Ensure(term.Intern("edge"), 2)
	for i := 0; i < 12; i++ {
		rel.Insert(pair(i, i+1))
	}
	st.AdvanceCSN()
	view, err := st.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	snapRel, ok := view.Get(term.Intern("edge"), 2)
	if !ok {
		t.Fatal("relation missing from snapshot")
	}

	rel.Delete(pair(4, 5))
	st.AdvanceCSN()
	if !st.compactOne(rel.(*Rel), 0, len(*rel.(*Rel).runs.Load())) {
		t.Fatal("compactOne reported no progress")
	}

	snapRows := allRows(snapRel)
	if len(snapRows) != 12 {
		t.Fatalf("snapshot sees %d rows after compaction, want 12", len(snapRows))
	}
	for i, row := range snapRows {
		if row != [2]int64{int64(i), int64(i + 1)} {
			t.Fatalf("snapshot row %d = %v", i, row)
		}
	}
	if !snapRel.Contains(pair(4, 5)) {
		t.Fatal("snapshot lost the row deleted after capture")
	}
	if live := allRows(rel); len(live) != 11 {
		t.Fatalf("live store sees %d rows, want 11", len(live))
	}
	if err := view.(*snapStore).Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepStaleSpillDirs checks the crash-hygiene sweep removes spill
// directories whose owning process is gone and keeps live ones.
func TestSweepStaleSpillDirs(t *testing.T) {
	parent := t.TempDir()
	dead := filepath.Join(parent, "spill-999999999-1")
	live := filepath.Join(parent, fmt.Sprintf("spill-%d-7", os.Getpid()))
	other := filepath.Join(parent, "not-a-spill-dir")
	for _, d := range []string{dead, live, other} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dead, runName(1)), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	SweepStaleSpills(parent)
	if _, err := os.Stat(dead); !os.IsNotExist(err) {
		t.Error("dead-pid spill dir survived the sweep")
	}
	for _, d := range []string{live, other} {
		if _, err := os.Stat(d); err != nil {
			t.Errorf("%s removed by sweep: %v", filepath.Base(d), err)
		}
	}
}

// TestCheckDirOverlapUnit exercises the data-dir/spill-dir collision
// guard directly.
func TestCheckDirOverlapUnit(t *testing.T) {
	base := t.TempDir()
	data := filepath.Join(base, "data")
	spill := filepath.Join(base, "spill")
	if err := CheckDirOverlap(data, spill); err != nil {
		t.Errorf("disjoint dirs rejected: %v", err)
	}
	if err := CheckDirOverlap("", spill); err != nil {
		t.Errorf("empty data dir rejected: %v", err)
	}
	for _, tc := range [][2]string{
		{data, data},
		{data, filepath.Join(data, "spill")},
		{filepath.Join(spill, "data"), spill},
	} {
		err := CheckDirOverlap(tc[0], tc[1])
		if err == nil {
			t.Errorf("CheckDirOverlap(%q, %q) allowed overlap", tc[0], tc[1])
		} else if !strings.Contains(err.Error(), "directory") {
			t.Errorf("overlap error not actionable: %v", err)
		}
	}
}
