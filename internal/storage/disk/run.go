// Run files: the disk engine's unit of storage. A run is an immutable,
// insertion-ordered sequence of tuples written out in CRC-framed blocks of
// a fixed row count, so a slot number maps to its block arithmetically.
// Rows live on disk; what stays in memory per run is the index — one cached
// whole-tuple hash per row plus the same intrusive bucket/chain layout the
// main-memory engine uses — so membership probes touch disk only to confirm
// an actual hash match, through the shared block cache.
//
// Runs are ordered by flush sequence, not by value: global enumeration
// order (runs in flush order, then the memtable) reproduces the main-memory
// engine's insertion order exactly, which is what keeps results
// byte-identical across engines and worker counts. See DESIGN.md for the
// runs-vs-B-tree decision.
package disk

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gluenail/internal/term"
)

const (
	runMagic = "GLUENAIL-RUN1\n"
	// rowsPerBlock is fixed so slot -> block is a shift, not a search.
	rowsPerBlock = 256
)

// runName returns the file name of run seq.
func runName(seq uint64) string { return fmt.Sprintf("run-%08d.grn", seq) }

type blockMeta struct {
	off   int64 // frame start (length prefix) within the file
	size  int32 // frame size in bytes including the 8-byte header
	nrows int32
}

// run is one immutable on-disk segment plus its resident index. All fields
// except tombs and refs are frozen after construction; tombs is a
// copy-on-write map (slot -> deleting CSN) swapped atomically by the single
// writer and read lock-free by concurrent snapshot sessions and the
// compactor; refs counts the owners (store, snapshots) holding the file
// open.
type run struct {
	seq    uint64
	path   string
	f      *os.File
	arity  int
	nrows  int32
	blocks []blockMeta
	// hashes caches each row's whole-tuple hash; buckets/next chain rows by
	// hash exactly like the main-memory Relation (slot+1 links).
	hashes  []uint64
	buckets map[uint64]int32
	next    []int32
	tombs   atomic.Pointer[map[int32]uint64]
	refs    atomic.Int32
}

func (r *run) retain() { r.refs.Add(1) }

// release drops one reference; the file handle closes with the last one.
// The file itself may already be unlinked (POSIX keeps the data readable
// through the open handle), so close order and unlink order are
// independent.
func (r *run) release() {
	if r.refs.Add(-1) == 0 {
		r.f.Close()
	}
}

// tombAt returns the CSN slot was deleted at (0 = live), safe to call
// concurrently with the writer.
func (r *run) tombAt(slot int32) uint64 {
	m := r.tombs.Load()
	if m == nil {
		return 0
	}
	return (*m)[slot]
}

// setTomb stamps slot deleted at csn. Writer-only; readers follow the old
// or new map, both consistent.
func (r *run) setTomb(slot int32, csn uint64) {
	old := r.tombs.Load()
	var nm map[int32]uint64
	if old == nil {
		nm = map[int32]uint64{slot: csn}
	} else {
		nm = make(map[int32]uint64, len(*old)+1)
		for k, v := range *old {
			nm[k] = v
		}
		nm[slot] = csn
	}
	r.tombs.Store(&nm)
}

// ntombs returns the current tombstone count.
func (r *run) ntombs() int {
	m := r.tombs.Load()
	if m == nil {
		return 0
	}
	return len(*m)
}

// liveAt counts rows visible at snapshot CSN csn (tomb 0 or > csn).
func (r *run) liveAt(csn uint64) int {
	n := int(r.nrows)
	m := r.tombs.Load()
	if m == nil {
		return n
	}
	for _, d := range *m {
		if d != 0 && d <= csn {
			n--
		}
	}
	return n
}

// encodeRun renders the full run file image for rows.
func encodeRun(arity int, rows []term.Tuple) []byte {
	var buf bytes.Buffer
	buf.WriteString(runMagic)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(arity))])
	for start := 0; start < len(rows); start += rowsPerBlock {
		end := start + rowsPerBlock
		if end > len(rows) {
			end = len(rows)
		}
		var payload bytes.Buffer
		payload.Write(tmp[:binary.PutUvarint(tmp[:], uint64(end-start))])
		for _, t := range rows[start:end] {
			term.WriteTuple(&payload, t)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
		buf.Write(hdr[:])
		buf.Write(payload.Bytes())
	}
	return buf.Bytes()
}

// createRun writes rows (live tuples, insertion order; hashes parallel) as
// run seq under dir — temp file first, renamed into place so a crash never
// leaves a partial run under a run name — and returns it opened with one
// reference. sync fsyncs the file before the rename (checkpoint runs must
// be durable before the manifest names them; auto-flush runs may skip it,
// their rows are still in the WAL).
func createRun(dir string, seq uint64, arity int, rows []term.Tuple, hashes []uint64, sync bool) (*run, error) {
	data := encodeRun(arity, rows)
	path := filepath.Join(dir, runName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(data); err == nil && sync {
		err = f.Sync()
	} else if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	rf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &run{seq: seq, path: path, f: rf, arity: arity, nrows: int32(len(rows)), hashes: hashes}
	// Block metadata mirrors encodeRun's layout without re-parsing.
	off := int64(len(runMagic))
	var tmpv [binary.MaxVarintLen64]byte
	off += int64(binary.PutUvarint(tmpv[:], uint64(arity)))
	pos := off
	for start := 0; start < len(rows); start += rowsPerBlock {
		end := start + rowsPerBlock
		if end > len(rows) {
			end = len(rows)
		}
		var payload bytes.Buffer
		payload.Write(tmpv[:binary.PutUvarint(tmpv[:], uint64(end-start))])
		for _, t := range rows[start:end] {
			term.WriteTuple(&payload, t)
		}
		r.blocks = append(r.blocks, blockMeta{off: pos, size: int32(payload.Len()) + 8, nrows: int32(end - start)})
		pos += int64(payload.Len()) + 8
	}
	r.buildIndex()
	r.refs.Store(1)
	return r, nil
}

// openRun reopens a run file after restart: it re-scans every block to
// rebuild the offsets, row hashes, and bucket chains (the file format has
// no footer — the index is cheaper to rebuild than to keep in sync), and
// feeds each decoded row to observe (distinct-value digests). Corruption
// is an error: runs reachable from a manifest were fsynced before the
// manifest named them, and unreachable ones are swept before opening.
func openRun(path string, seq uint64, observe func(term.Tuple)) (*run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(runMagic) || string(data[:len(runMagic)]) != runMagic {
		return nil, fmt.Errorf("disk: %s: bad run magic", path)
	}
	pos := len(runMagic)
	arityU, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("disk: %s: truncated arity", path)
	}
	pos += n
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &run{seq: seq, path: path, f: f, arity: int(arityU)}
	for pos < len(data) {
		if pos+8 > len(data) {
			f.Close()
			return nil, fmt.Errorf("disk: %s: truncated block header at %d", path, pos)
		}
		size := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if pos+8+size > len(data) {
			f.Close()
			return nil, fmt.Errorf("disk: %s: truncated block at %d", path, pos)
		}
		payload := data[pos+8 : pos+8+size]
		if crc32.ChecksumIEEE(payload) != sum {
			f.Close()
			return nil, fmt.Errorf("disk: %s: block checksum mismatch at %d", path, pos)
		}
		rows, err := decodeBlock(payload, int(arityU))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: %s: %w", path, err)
		}
		r.blocks = append(r.blocks, blockMeta{off: int64(pos), size: int32(size) + 8, nrows: int32(len(rows))})
		for _, t := range rows {
			r.hashes = append(r.hashes, t.Hash())
			if observe != nil {
				observe(t)
			}
		}
		r.nrows += int32(len(rows))
		pos += 8 + size
	}
	r.buildIndex()
	r.refs.Store(1)
	return r, nil
}

// decodeBlock decodes one block payload into its rows. Strings re-enter
// interned (term.ReadValue), carrying their precomputed hashes into the
// block cache.
func decodeBlock(payload []byte, arity int) ([]term.Tuple, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	rows := make([]term.Tuple, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		t, err := term.ReadTuple(br)
		if err != nil {
			return nil, err
		}
		rows = append(rows, t)
	}
	return rows, nil
}

// buildIndex chains the rows by cached hash, identical in layout to the
// main-memory Relation's intrusive buckets.
func (r *run) buildIndex() {
	r.buckets = make(map[uint64]int32, len(r.hashes))
	r.next = make([]int32, len(r.hashes))
	for i, h := range r.hashes {
		r.next[i] = r.buckets[h]
		r.buckets[h] = int32(i) + 1
	}
}

// block returns the decoded rows of block bi, via the cache.
func (r *run) block(c *blockCache, counter *int64, bi int) ([]term.Tuple, error) {
	if rows, ok := c.get(r.seq, int32(bi)); ok {
		return rows, nil
	}
	bm := r.blocks[bi]
	buf := make([]byte, bm.size)
	if _, err := r.f.ReadAt(buf, bm.off); err != nil {
		return nil, fmt.Errorf("disk: reading %s block %d: %w", r.path, bi, err)
	}
	size := int(binary.LittleEndian.Uint32(buf[0:4]))
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if size != len(buf)-8 || crc32.ChecksumIEEE(buf[8:]) != sum {
		return nil, fmt.Errorf("disk: %s block %d failed checksum", r.path, bi)
	}
	rows, err := decodeBlock(buf[8:], r.arity)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(counter, 1)
	c.put(r.seq, int32(bi), rows)
	return rows, nil
}

// tupleAt returns the row at slot, via the cache.
func (r *run) tupleAt(c *blockCache, counter *int64, slot int32) (term.Tuple, error) {
	bi := int(slot) / rowsPerBlock
	rows, err := r.block(c, counter, bi)
	if err != nil {
		return nil, err
	}
	return rows[int(slot)%rowsPerBlock], nil
}

// scan yields every row with tomb visibility decided by visible (nil =
// live view: any tombstone hides the row), in slot order. Returns false if
// the consumer stopped early.
func (r *run) scan(c *blockCache, counter *int64, visible func(slot int32) bool, yield func(term.Tuple) bool) (bool, error) {
	slot := int32(0)
	for bi := range r.blocks {
		rows, err := r.block(c, counter, bi)
		if err != nil {
			return false, err
		}
		for _, t := range rows {
			ok := false
			if visible == nil {
				ok = r.tombAt(slot) == 0
			} else {
				ok = visible(slot)
			}
			if ok && !yield(t) {
				return false, nil
			}
			slot++
		}
	}
	return true, nil
}

// blockKey identifies a cached block; run sequence numbers are unique per
// store, so the cache is shared across all of a store's relations.
type blockKey struct {
	run   uint64
	block int32
}

// blockCache is a small mutex-guarded LRU of decoded blocks. Decoded rows
// are immutable and may be handed to any number of concurrent readers; the
// mutex covers only the map/list bookkeeping.
type blockCache struct {
	mu    sync.Mutex
	cap   int
	m     map[blockKey]*cacheEnt
	head  *cacheEnt // most recently used
	tail  *cacheEnt
	count int
}

type cacheEnt struct {
	key        blockKey
	rows       []term.Tuple
	prev, next *cacheEnt
}

func newBlockCache(capacity int) *blockCache {
	if capacity <= 0 {
		capacity = 512
	}
	return &blockCache{cap: capacity, m: make(map[blockKey]*cacheEnt, capacity)}
}

func (c *blockCache) get(run uint64, block int32) ([]term.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.m[blockKey{run, block}]
	if e == nil {
		return nil, false
	}
	c.moveFront(e)
	return e.rows, true
}

func (c *blockCache) put(run uint64, block int32, rows []term.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := blockKey{run, block}
	if e := c.m[k]; e != nil {
		e.rows = rows
		c.moveFront(e)
		return
	}
	e := &cacheEnt{key: k, rows: rows}
	c.m[k] = e
	c.pushFront(e)
	c.count++
	for c.count > c.cap {
		old := c.tail
		c.unlink(old)
		delete(c.m, old.key)
		c.count--
	}
}

// dropRun evicts every cached block of a run (the run was deleted).
func (c *blockCache) dropRun(run uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.m {
		if k.run == run {
			c.unlink(e)
			delete(c.m, k)
			c.count--
		}
	}
}

func (c *blockCache) pushFront(e *cacheEnt) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *blockCache) unlink(e *cacheEnt) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *blockCache) moveFront(e *cacheEnt) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
