// Run files: the disk engine's unit of storage. A run is an immutable,
// insertion-ordered sequence of tuples written out in CRC-framed blocks of
// a fixed row count, so a slot number maps to its block arithmetically.
// Blocks are stored raw or packed (see compress.go); what stays in memory
// per run after open is only the small stuff — block offsets and a bloom
// filter over the rows' whole-tuple hashes. The chain index (one cached
// hash per row plus the same intrusive bucket layout the main-memory
// engine uses) is loaded lazily from the run's hash section the first time
// a bloom filter lets a probe through.
//
// The current format (RUN2) is footer-indexed: block metadata, the row
// hashes, and the bloom filter are persisted at the tail and sealed by a
// fixed trailer, so reopening a store reads a few KB per run instead of
// decoding every block. RUN1 files (no footer) are still readable — they
// open the old way, by scanning — so a store written before the format
// change upgrades in place at its next checkpoint.
//
// Runs are ordered by flush sequence, not by value: global enumeration
// order (runs in flush order, then the memtable) reproduces the main-memory
// engine's insertion order exactly, which is what keeps results
// byte-identical across engines and worker counts. See DESIGN.md for the
// runs-vs-B-tree decision.
package disk

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

const (
	runMagic1 = "GLUENAIL-RUN1\n"
	runMagic2 = "GLUENAIL-RUN2\n"
	// runTrailerMagic seals a RUN2 footer; the fixed-size trailer is what
	// openRun finds by seeking to the end.
	runTrailerMagic = "GNRUN2F\n"
	runTrailerLen   = 8 + 4 + 4 + len(runTrailerMagic)
	// rowsPerBlock is fixed so slot -> block is a shift, not a search.
	rowsPerBlock = 256
)

// runName returns the file name of run seq.
func runName(seq uint64) string { return fmt.Sprintf("run-%08d.grn", seq) }

type blockMeta struct {
	off   int64 // frame start (length prefix) within the file
	size  int32 // frame size in bytes including the 8-byte header
	nrows int32
}

// run is one immutable on-disk segment plus its resident metadata. All
// fields except the lazy index, tombs, and refs are frozen after
// construction; tombs is a copy-on-write map (slot -> deleting CSN)
// swapped atomically by the single writer and read lock-free by concurrent
// snapshot sessions and the compactor; refs counts the owners (store,
// snapshots) holding the file open.
type run struct {
	seq    uint64
	path   string
	f      fsio.File
	arity  int
	nrows  int32
	blocks []blockMeta
	v2     bool      // footer-indexed format; false = legacy RUN1
	dict   *atomDict // owning store's intern dictionary (packed blocks)
	// bloom screens membership probes; built at create, persisted in the
	// footer, reloaded with it.
	bloom *bloomFilter
	// Chain index: hashes caches each row's whole-tuple hash; buckets/next
	// chain rows by hash exactly like the main-memory Relation (slot+1
	// links). Resident from creation for freshly written runs; loaded on
	// demand from hashOff for reopened RUN2 runs (idxReady gates access,
	// its Store/Load ordering publishes the slices).
	hashOff  int64
	idxMu    sync.Mutex
	idxReady atomic.Bool
	hashes   []uint64
	buckets  map[uint64]int32
	next     []int32
	// synced records that the file's contents are durable (fsynced);
	// FlushBase syncs any stragglers before the manifest names them.
	synced atomic.Bool
	tombs  atomic.Pointer[map[int32]uint64]
	refs   atomic.Int32
}

func (r *run) retain() { r.refs.Add(1) }

// release drops one reference; the file handle closes with the last one.
// The file itself may already be unlinked (POSIX keeps the data readable
// through the open handle), so close order and unlink order are
// independent.
func (r *run) release() {
	if r.refs.Add(-1) == 0 {
		// Read-only handle over durable (or already-retired) bytes: a
		// close failure can lose nothing, so it is deliberately dropped.
		_ = r.f.Close()
	}
}

// tombAt returns the CSN slot was deleted at (0 = live), safe to call
// concurrently with the writer.
func (r *run) tombAt(slot int32) uint64 {
	m := r.tombs.Load()
	if m == nil {
		return 0
	}
	return (*m)[slot]
}

// setTomb stamps slot deleted at csn. Writer-only; readers follow the old
// or new map, both consistent.
func (r *run) setTomb(slot int32, csn uint64) {
	old := r.tombs.Load()
	var nm map[int32]uint64
	if old == nil {
		nm = map[int32]uint64{slot: csn}
	} else {
		nm = make(map[int32]uint64, len(*old)+1)
		for k, v := range *old {
			nm[k] = v
		}
		nm[slot] = csn
	}
	r.tombs.Store(&nm)
}

// ntombs returns the current tombstone count.
func (r *run) ntombs() int {
	m := r.tombs.Load()
	if m == nil {
		return 0
	}
	return len(*m)
}

// liveNow returns the rows not hidden by any tombstone.
func (r *run) liveNow() int { return int(r.nrows) - r.ntombs() }

// liveAt counts rows visible at snapshot CSN csn (tomb 0 or > csn).
func (r *run) liveAt(csn uint64) int {
	n := int(r.nrows)
	m := r.tombs.Load()
	if m == nil {
		return n
	}
	for _, d := range *m {
		if d != 0 && d <= csn {
			n--
		}
	}
	return n
}

// mayContain consults the run's bloom filter, accounting the check. A
// false return is definitive: the run holds no row with this hash, so the
// probe can skip the chain walk (and any index load) entirely.
func (r *run) mayContain(st *storage.Stats, h uint64) bool {
	atomic.AddInt64(&st.BloomChecks, 1)
	if r.bloom != nil && !r.bloom.mayContain(h) {
		atomic.AddInt64(&st.BloomSkips, 1)
		return false
	}
	return true
}

// ensureIndex makes the chain index resident: freshly created runs carry
// it from birth; reopened RUN2 runs load the hash section and build the
// buckets here, on the first probe a bloom filter lets through.
func (r *run) ensureIndex(st *storage.Stats) error {
	if r.idxReady.Load() {
		return nil
	}
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if r.idxReady.Load() {
		return nil
	}
	buf := make([]byte, int(r.nrows)*8+4)
	if _, err := r.f.ReadAt(buf, r.hashOff); err != nil {
		return storage.IOFault("run-read", r.path, err)
	}
	if crc32.ChecksumIEEE(buf[:len(buf)-4]) != binary.LittleEndian.Uint32(buf[len(buf)-4:]) {
		return &storage.CorruptError{Artifact: "run-hash-section", Path: r.path, Run: r.seq,
			Offset: r.hashOff, Detail: "hash section checksum mismatch"}
	}
	hashes := make([]uint64, r.nrows)
	for i := range hashes {
		hashes[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	r.hashes = hashes
	r.buildIndex()
	atomic.AddInt64(&st.RunIndexLoads, 1)
	r.idxReady.Store(true)
	return nil
}

// encodeRun renders the full RUN2 file image for rows: magic, arity,
// CRC-framed blocks (raw or packed), the hash section, and the sealed
// footer. Returns the image plus the block metadata and hash-section
// offset that mirror it.
func encodeRun(d *atomDict, arity int, rows []term.Tuple, hashes []uint64, compress bool) ([]byte, []blockMeta, int64) {
	var buf bytes.Buffer
	buf.WriteString(runMagic2)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(arity))])
	var blocks []blockMeta
	for start := 0; start < len(rows); start += rowsPerBlock {
		end := start + rowsPerBlock
		if end > len(rows) {
			end = len(rows)
		}
		payload := encodeBlockPayload(d, rows[start:end], compress)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		blocks = append(blocks, blockMeta{off: int64(buf.Len()), size: int32(len(payload)) + 8, nrows: int32(end - start)})
		buf.Write(hdr[:])
		buf.Write(payload)
	}
	hashOff := int64(buf.Len())
	var hsec []byte
	for _, h := range hashes {
		hsec = binary.LittleEndian.AppendUint64(hsec, h)
	}
	hsec = binary.LittleEndian.AppendUint32(hsec, crc32.ChecksumIEEE(hsec))
	buf.Write(hsec)

	footOff := int64(buf.Len())
	var foot []byte
	foot = binary.AppendUvarint(foot, uint64(len(blocks)))
	for _, bm := range blocks {
		foot = binary.AppendUvarint(foot, uint64(bm.size-8))
		foot = binary.AppendUvarint(foot, uint64(bm.nrows))
	}
	foot = binary.AppendUvarint(foot, uint64(len(rows)))
	foot = binary.AppendUvarint(foot, uint64(hashOff))
	foot = appendBloom(foot, bloomFrom(hashes))
	buf.Write(foot)

	var trailer [runTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(footOff))
	binary.LittleEndian.PutUint32(trailer[8:12], uint32(len(foot)))
	binary.LittleEndian.PutUint32(trailer[12:16], crc32.ChecksumIEEE(foot))
	copy(trailer[16:], runTrailerMagic)
	buf.Write(trailer[:])
	return buf.Bytes(), blocks, hashOff
}

// createRun writes rows (live tuples, insertion order; hashes parallel) as
// run seq for store s — temp file first, renamed into place so a crash
// never leaves a partial run under a run name — and returns it opened with
// one reference. sync fsyncs the file before the rename (checkpoint and
// bulk-load runs must be durable before the manifest names them; auto-
// flush runs may skip it, their rows are still in the WAL). The intern
// dictionary is synced first when the run is: a durable run must never
// reference atoms the dictionary could lose.
func createRun(s *Store, seq uint64, arity int, rows []term.Tuple, hashes []uint64, sync bool) (*run, error) {
	data, blocks, hashOff := encodeRun(s.dict, arity, rows, hashes, s.compress())
	if sync {
		if err := s.dict.sync(); err != nil {
			return nil, err
		}
	}
	path := filepath.Join(s.dir, runName(seq))
	tmp := path + ".tmp"
	f, err := s.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, storage.IOFault("run-write", tmp, err)
	}
	_, err = f.Write(data)
	if err == nil && sync {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = s.fsys.Remove(tmp)
		return nil, storage.IOFault("run-write", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = s.fsys.Remove(tmp)
		return nil, storage.IOFault("run-write", tmp, err)
	}
	if err := s.fsys.Rename(tmp, path); err != nil {
		_ = s.fsys.Remove(tmp)
		return nil, storage.IOFault("run-write", path, err)
	}
	rf, err := s.fsys.Open(path)
	if err != nil {
		return nil, storage.IOFault("run-write", path, err)
	}
	r := &run{
		seq: seq, path: path, f: rf, arity: arity,
		nrows: int32(len(rows)), blocks: blocks,
		v2: true, dict: s.dict, hashOff: hashOff,
		hashes: hashes,
	}
	if !s.opts.NoBloom {
		r.bloom = bloomFrom(hashes)
	}
	r.buildIndex()
	r.idxReady.Store(true)
	r.synced.Store(sync)
	r.refs.Store(1)
	return r, nil
}

// openRun reopens a run file after restart. RUN2 files read only the
// trailer and footer — block offsets, row count, bloom filter — and defer
// the chain index until a probe needs it; nothing decodes tuple bytes.
// Legacy RUN1 files (no footer) re-scan every block the old way, feeding
// each decoded row to observe (distinct-value digests, for manifests that
// predate digest persistence). Corruption is an error: runs reachable
// from a manifest were fsynced before the manifest named them, and
// unreachable ones are swept before opening.
func openRun(s *Store, path string, seq uint64, observe func(term.Tuple)) (*run, error) {
	f, err := s.fsys.Open(path)
	if err != nil {
		return nil, storage.IOFault("run-open", path, err)
	}
	var magic [len(runMagic2)]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		_ = f.Close()
		return nil, storage.IOFault("run-open", path, err)
	}
	switch string(magic[:]) {
	case runMagic2:
		r, err := openRun2(s, f, path, seq)
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		return r, nil
	case runMagic1:
		r, err := openRun1(s, f, path, seq, observe)
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		return r, nil
	}
	_ = f.Close()
	return nil, &storage.CorruptError{Artifact: "run-header", Path: path, Run: seq,
		Offset: 0, Detail: "bad run magic"}
}

// openRun2 loads a footer-indexed run from its tail.
func openRun2(s *Store, f fsio.File, path string, seq uint64) (*run, error) {
	corrupt := func(artifact string, off int64, detail string) error {
		return &storage.CorruptError{Artifact: artifact, Path: path, Run: seq,
			Offset: off, Detail: detail}
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, storage.IOFault("run-open", path, err)
	}
	if fi.Size() < int64(runTrailerLen) {
		return nil, corrupt("run-trailer", fi.Size(), "truncated run trailer")
	}
	trailerOff := fi.Size() - int64(runTrailerLen)
	var trailer [runTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], trailerOff); err != nil {
		return nil, storage.IOFault("run-open", path, err)
	}
	if string(trailer[16:]) != runTrailerMagic {
		return nil, corrupt("run-trailer", trailerOff, "bad run trailer magic")
	}
	footOff := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	footLen := int64(binary.LittleEndian.Uint32(trailer[8:12]))
	sum := binary.LittleEndian.Uint32(trailer[12:16])
	if footOff < int64(len(runMagic2)) || footOff+footLen+int64(runTrailerLen) != fi.Size() {
		return nil, corrupt("run-trailer", trailerOff, "bad run footer bounds")
	}
	foot := make([]byte, footLen)
	if _, err := f.ReadAt(foot, footOff); err != nil {
		return nil, storage.IOFault("run-open", path, err)
	}
	if crc32.ChecksumIEEE(foot) != sum {
		return nil, corrupt("run-footer", footOff, "run footer checksum mismatch")
	}
	// Arity lives in the header; it is a handful of bytes.
	var head [len(runMagic2) + binary.MaxVarintLen64]byte
	n, err := f.ReadAt(head[:], 0)
	if err != nil && n < len(runMagic2)+1 {
		return nil, storage.IOFault("run-open", path, err)
	}
	arity, an := binary.Uvarint(head[len(runMagic2):n])
	if an <= 0 {
		return nil, corrupt("run-header", int64(len(runMagic2)), "truncated arity")
	}
	r := &run{seq: seq, path: path, f: f, arity: int(arity), v2: true, dict: s.dict}

	rf, artifact, detail := parseRunFooter(foot, int64(len(runMagic2)+an))
	if detail != "" {
		return nil, corrupt(artifact, footOff, detail)
	}
	r.blocks = rf.blocks
	r.nrows = rf.nrows
	r.hashOff = rf.hashOff
	if !s.opts.NoBloom {
		r.bloom = rf.bloom
	}
	r.synced.Store(true) // manifest-reachable, so it was fsynced
	r.refs.Store(1)
	return r, nil
}

// runFooter is the parsed form of a RUN2 footer.
type runFooter struct {
	blocks  []blockMeta
	nrows   int32
	hashOff int64
	bloom   *bloomFilter
}

// parseRunFooter decodes a (CRC-verified) RUN2 footer whose first block
// starts at dataStart. On failure it returns the artifact class
// ("run-footer" or "run-bloom") and a non-empty detail.
func parseRunFooter(foot []byte, dataStart int64) (runFooter, string, string) {
	var rf runFooter
	rd := foot
	nblocks, n := binary.Uvarint(rd)
	if n <= 0 {
		return rf, "run-footer", "truncated run footer"
	}
	rd = rd[n:]
	off := dataStart
	for i := uint64(0); i < nblocks; i++ {
		psize, n2 := binary.Uvarint(rd)
		if n2 <= 0 {
			return rf, "run-footer", "truncated run footer"
		}
		rd = rd[n2:]
		brows, n3 := binary.Uvarint(rd)
		if n3 <= 0 {
			return rf, "run-footer", "truncated run footer"
		}
		rd = rd[n3:]
		rf.blocks = append(rf.blocks, blockMeta{off: off, size: int32(psize) + 8, nrows: int32(brows)})
		off += int64(psize) + 8
	}
	nrows, n := binary.Uvarint(rd)
	if n <= 0 {
		return rf, "run-footer", "truncated run footer"
	}
	rd = rd[n:]
	rf.nrows = int32(nrows)
	hashOff, n := binary.Uvarint(rd)
	if n <= 0 {
		return rf, "run-footer", "truncated run footer"
	}
	rd = rd[n:]
	rf.hashOff = int64(hashOff)
	bloom, _, ok := readBloom(rd)
	if !ok {
		return rf, "run-bloom", "bad run bloom filter"
	}
	rf.bloom = bloom
	return rf, "", ""
}

// openRun1 loads a legacy run by scanning it: offsets, hashes, and chains
// are rebuilt from the decoded blocks, and a bloom filter is built in
// memory so probe paths treat both formats alike.
func openRun1(s *Store, f fsio.File, path string, seq uint64, observe func(term.Tuple)) (*run, error) {
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		return nil, storage.IOFault("run-open", path, err)
	}
	corrupt := func(artifact string, off int64, detail string) error {
		return &storage.CorruptError{Artifact: artifact, Path: path, Run: seq,
			Offset: off, Detail: detail}
	}
	pos := len(runMagic1)
	arityU, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, corrupt("run-header", int64(pos), "truncated arity")
	}
	pos += n
	r := &run{seq: seq, path: path, f: f, arity: int(arityU), dict: s.dict}
	for pos < len(data) {
		if pos+8 > len(data) {
			return nil, corrupt("run-block", int64(pos), "truncated block header")
		}
		size := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if pos+8+size > len(data) {
			return nil, corrupt("run-block", int64(pos), "truncated block")
		}
		payload := data[pos+8 : pos+8+size]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, corrupt("run-block", int64(pos), "block checksum mismatch")
		}
		rows, err := decodeLegacyBlock(payload)
		if err != nil {
			return nil, corrupt("run-block", int64(pos), err.Error())
		}
		r.blocks = append(r.blocks, blockMeta{off: int64(pos), size: int32(size) + 8, nrows: int32(len(rows))})
		for _, t := range rows {
			r.hashes = append(r.hashes, t.Hash())
			if observe != nil {
				observe(t)
			}
		}
		r.nrows += int32(len(rows))
		pos += 8 + size
	}
	if !s.opts.NoBloom {
		r.bloom = bloomFrom(r.hashes)
	}
	r.buildIndex()
	r.idxReady.Store(true)
	r.synced.Store(true)
	r.refs.Store(1)
	return r, nil
}

// decodeLegacyBlock decodes one RUN1 block payload (length-prefixed
// tuples, no encoding byte).
func decodeLegacyBlock(payload []byte) ([]term.Tuple, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// Legacy blocks carry no fixed row bound, but every row costs at
	// least one byte — clamp the pre-allocation so a corrupt count cannot
	// size an arbitrary slice (the decode loop then fails naturally when
	// the stream runs dry).
	capHint := nrows
	if capHint > uint64(len(payload)) {
		capHint = uint64(len(payload))
	}
	rows := make([]term.Tuple, 0, capHint)
	for i := uint64(0); i < nrows; i++ {
		t, err := term.ReadTuple(br)
		if err != nil {
			return nil, err
		}
		rows = append(rows, t)
	}
	return rows, nil
}

// buildIndex chains the rows by cached hash, identical in layout to the
// main-memory Relation's intrusive buckets.
func (r *run) buildIndex() {
	r.buckets = make(map[uint64]int32, len(r.hashes))
	r.next = make([]int32, len(r.hashes))
	for i, h := range r.hashes {
		r.next[i] = r.buckets[h]
		r.buckets[h] = int32(i) + 1
	}
}

// block returns the decoded rows of block bi, via the cache.
func (r *run) block(c *blockCache, st *storage.Stats, bi int) ([]term.Tuple, error) {
	if rows, ok := c.get(r.seq, int32(bi)); ok {
		atomic.AddInt64(&st.CacheHits, 1)
		return rows, nil
	}
	bm := r.blocks[bi]
	buf := make([]byte, bm.size)
	if _, err := r.f.ReadAt(buf, bm.off); err != nil {
		return nil, storage.IOFault("run-read", r.path, err)
	}
	size := int(binary.LittleEndian.Uint32(buf[0:4]))
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if size != len(buf)-8 {
		return nil, &storage.CorruptError{Artifact: "block-header", Path: r.path, Run: r.seq,
			Offset: bm.off, Detail: fmt.Sprintf("block %d length field does not match footer", bi)}
	}
	if crc32.ChecksumIEEE(buf[8:]) != sum {
		return nil, &storage.CorruptError{Artifact: "run-block", Path: r.path, Run: r.seq,
			Offset: bm.off, Detail: fmt.Sprintf("block %d checksum mismatch", bi)}
	}
	var rows []term.Tuple
	var err error
	if r.v2 {
		rows, err = decodeBlockPayload(r.dict, buf[8:], r.arity)
	} else {
		rows, err = decodeLegacyBlock(buf[8:])
	}
	if err != nil {
		return nil, &storage.CorruptError{Artifact: "run-block", Path: r.path, Run: r.seq,
			Offset: bm.off, Detail: fmt.Sprintf("block %d: %v", bi, err)}
	}
	atomic.AddInt64(&st.BlocksRead, 1)
	c.put(r.seq, int32(bi), rows)
	return rows, nil
}

// tupleAt returns the row at slot, via the cache.
func (r *run) tupleAt(c *blockCache, st *storage.Stats, slot int32) (term.Tuple, error) {
	bi := int(slot) / rowsPerBlock
	rows, err := r.block(c, st, bi)
	if err != nil {
		return nil, err
	}
	return rows[int(slot)%rowsPerBlock], nil
}

// scan yields every row with tomb visibility decided by visible (nil =
// live view: any tombstone hides the row), in slot order. Returns false if
// the consumer stopped early.
func (r *run) scan(c *blockCache, st *storage.Stats, visible func(slot int32) bool, yield func(term.Tuple) bool) (bool, error) {
	slot := int32(0)
	for bi := range r.blocks {
		rows, err := r.block(c, st, bi)
		if err != nil {
			return false, err
		}
		for _, t := range rows {
			ok := false
			if visible == nil {
				ok = r.tombAt(slot) == 0
			} else {
				ok = visible(slot)
			}
			if ok && !yield(t) {
				return false, nil
			}
			slot++
		}
	}
	return true, nil
}

// blockKey identifies a cached block; run sequence numbers are unique per
// store, so the cache is shared across all of a store's relations.
type blockKey struct {
	run   uint64
	block int32
}

// blockCache is a small mutex-guarded LRU of decoded blocks. Decoded rows
// are immutable and may be handed to any number of concurrent readers; the
// mutex covers only the map/list bookkeeping.
type blockCache struct {
	mu    sync.Mutex
	cap   int
	m     map[blockKey]*cacheEnt
	head  *cacheEnt // most recently used
	tail  *cacheEnt
	count int
}

type cacheEnt struct {
	key        blockKey
	rows       []term.Tuple
	prev, next *cacheEnt
}

func newBlockCache(capacity int) *blockCache {
	if capacity <= 0 {
		capacity = 512
	}
	return &blockCache{cap: capacity, m: make(map[blockKey]*cacheEnt, capacity)}
}

func (c *blockCache) get(run uint64, block int32) ([]term.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.m[blockKey{run, block}]
	if e == nil {
		return nil, false
	}
	c.moveFront(e)
	return e.rows, true
}

func (c *blockCache) put(run uint64, block int32, rows []term.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := blockKey{run, block}
	if e := c.m[k]; e != nil {
		e.rows = rows
		c.moveFront(e)
		return
	}
	e := &cacheEnt{key: k, rows: rows}
	c.m[k] = e
	c.pushFront(e)
	c.count++
	for c.count > c.cap {
		old := c.tail
		c.unlink(old)
		delete(c.m, old.key)
		c.count--
	}
}

// dropRun evicts every cached block of a run (the run was deleted).
func (c *blockCache) dropRun(run uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.m {
		if k.run == run {
			c.unlink(e)
			delete(c.m, k)
			c.count--
		}
	}
}

func (c *blockCache) pushFront(e *cacheEnt) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *blockCache) unlink(e *cacheEnt) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *blockCache) moveFront(e *cacheEnt) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
