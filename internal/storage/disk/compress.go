// Block compression: run blocks are stored either raw (the term codec,
// unchanged from the first run format) or packed. Packing is lightweight
// and value-shaped rather than byte-oriented: integers are delta-encoded
// per column as signed varints (dense key columns collapse to one byte a
// row), atoms become uvarint references into the store's persistent
// intern dictionary (the per-block cost of a repeated atom drops from its
// bytes to 1-2 bytes), floats stay verbatim 8-byte words (NaN and ±Inf
// payloads survive bit-exactly), and HiLog compound terms recurse.
// Oversized strings stay inline so the dictionary holds atoms, not
// payloads.
//
// Every block keeps whichever encoding is smaller — a packed block that
// fails to beat raw is discarded at flush time (the "raw fallback"), so
// incompressible data costs nothing at read time. The decoded form is
// identical either way, and decoded blocks are what the block cache
// holds, so hot reads never see the difference.
package disk

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"gluenail/internal/term"
)

const (
	blockEncRaw    = 0 // uvarint nrows + term codec tuples
	blockEncPacked = 1 // uvarint nrows + packed values
)

// Packed value tags. Distinct from the term codec's tags only by
// context: a packed block is self-describing via its encoding byte.
const (
	pvInt      = 1 // svarint, delta vs the column's previous top-level int
	pvFloat    = 2 // 8 bytes LE, raw bits
	pvAtom     = 3 // uvarint intern-dictionary ID
	pvStr      = 4 // uvarint len + bytes (oversized / non-dictionary string)
	pvCompound = 5 // functor value, uvarint nargs, arg values
)

// encodeBlockPayload renders one block's payload (encoding byte + body)
// for rows, choosing packed when enabled and smaller. The raw rendering
// is sized first and only materialized if packed loses: on compressible
// data the block is written once, not twice.
func encodeBlockPayload(d *atomDict, rows []term.Tuple, compress bool) []byte {
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = blockEncRaw
	hn := 1 + binary.PutUvarint(hdr[1:], uint64(len(rows)))
	rawSize := hn
	for _, t := range rows {
		rawSize += t.EncodedSize()
	}
	if compress {
		packed := make([]byte, 0, rawSize)
		packed = append(packed, blockEncPacked)
		packed = binary.AppendUvarint(packed, uint64(len(rows)))
		var prev []int64
		if len(rows) > 0 {
			prev = make([]int64, len(rows[0]))
		}
		for _, t := range rows {
			for i := range t {
				packed = appendPacked(packed, d, &t[i], &prev[i])
			}
		}
		if len(packed) < rawSize {
			return packed
		}
	}
	raw := make([]byte, 0, rawSize)
	raw = append(raw, hdr[:hn]...)
	for _, t := range rows {
		for i := range t {
			raw = term.AppendValue(raw, t[i])
		}
	}
	return raw
}

// appendPacked encodes one value. prev tracks the column's running
// top-level integer for delta coding; nested values pass nil and encode
// absolute. v is a pointer so the per-value call doesn't copy the Value
// struct — this is the encoder's innermost loop.
func appendPacked(dst []byte, d *atomDict, v *term.Value, prev *int64) []byte {
	switch v.Kind() {
	case term.Int:
		i := v.Int()
		dst = append(dst, pvInt)
		if prev != nil {
			dst = binary.AppendVarint(dst, i-*prev)
			*prev = i
		} else {
			dst = binary.AppendVarint(dst, i)
		}
	case term.Float:
		dst = append(dst, pvFloat)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case term.Str:
		s := v.Str()
		if len(s) > internInlineLimit {
			dst = append(dst, pvStr)
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
			break
		}
		dst = append(dst, pvAtom)
		dst = binary.AppendUvarint(dst, uint64(d.idFor(*v)))
	case term.Compound:
		dst = append(dst, pvCompound)
		fn := v.Functor()
		dst = appendPacked(dst, d, &fn, nil)
		dst = binary.AppendUvarint(dst, uint64(v.NumArgs()))
		for i := 0; i < v.NumArgs(); i++ {
			a := v.Arg(i)
			dst = appendPacked(dst, d, &a, nil)
		}
	default:
		panic("disk: packing invalid value")
	}
	return dst
}

// decodeBlockPayload decodes a block payload (encoding byte + body) into
// its rows. arity sizes the tuples; both encodings intern decoded atoms,
// so rows enter the cache carrying cached hashes.
func decodeBlockPayload(d *atomDict, payload []byte, arity int) ([]term.Tuple, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("disk: empty block payload")
	}
	switch payload[0] {
	case blockEncRaw:
		return decodeRawRows(payload[1:], arity)
	case blockEncPacked:
		return decodePackedRows(d, payload[1:], arity)
	}
	return nil, fmt.Errorf("disk: bad block encoding %d", payload[0])
}

// decodeRawRows decodes a raw body: uvarint nrows then term-codec values,
// arity per row (the tuple frame is implicit — run blocks of one relation
// all share its arity).
func decodeRawRows(body []byte, arity int) ([]term.Tuple, error) {
	br := bufio.NewReader(bytes.NewReader(body))
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// The count is attacker-controlled on a corrupt block: blocks never
	// exceed rowsPerBlock rows, so anything larger is damage — reject it
	// before sizing an allocation (or looping) on it.
	if nrows > rowsPerBlock {
		return nil, fmt.Errorf("disk: block claims %d rows (max %d)", nrows, rowsPerBlock)
	}
	rows := make([]term.Tuple, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		t := make(term.Tuple, arity)
		for j := range t {
			if t[j], err = term.ReadValue(br); err != nil {
				return nil, err
			}
		}
		rows = append(rows, t)
	}
	return rows, nil
}

func decodePackedRows(d *atomDict, body []byte, arity int) ([]term.Tuple, error) {
	nrows, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("disk: truncated packed block")
	}
	if nrows > rowsPerBlock {
		return nil, fmt.Errorf("disk: block claims %d rows (max %d)", nrows, rowsPerBlock)
	}
	body = body[n:]
	rows := make([]term.Tuple, 0, nrows)
	prev := make([]int64, arity)
	var err error
	for i := uint64(0); i < nrows; i++ {
		t := make(term.Tuple, arity)
		for j := range t {
			if t[j], body, err = readPacked(d, body, &prev[j]); err != nil {
				return nil, err
			}
		}
		rows = append(rows, t)
	}
	return rows, nil
}

func readPacked(d *atomDict, body []byte, prev *int64) (term.Value, []byte, error) {
	if len(body) == 0 {
		return term.Value{}, nil, fmt.Errorf("disk: truncated packed value")
	}
	tag := body[0]
	body = body[1:]
	switch tag {
	case pvInt:
		dv, n := binary.Varint(body)
		if n <= 0 {
			return term.Value{}, nil, fmt.Errorf("disk: truncated packed int")
		}
		body = body[n:]
		if prev != nil {
			*prev += dv
			return term.NewInt(*prev), body, nil
		}
		return term.NewInt(dv), body, nil
	case pvFloat:
		if len(body) < 8 {
			return term.Value{}, nil, fmt.Errorf("disk: truncated packed float")
		}
		v := term.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(body)))
		return v, body[8:], nil
	case pvAtom:
		id, n := binary.Uvarint(body)
		if n <= 0 {
			return term.Value{}, nil, fmt.Errorf("disk: truncated packed atom")
		}
		v, ok := d.atom(uint32(id))
		if !ok {
			return term.Value{}, nil, fmt.Errorf("disk: packed atom id %d beyond intern table", id)
		}
		return v, body[n:], nil
	case pvStr:
		sz, n := binary.Uvarint(body)
		// Compare in uint64: int(sz) on a corrupt length can overflow
		// negative and sail past a len(body) < n+int(sz) check.
		if n <= 0 || sz > uint64(len(body)-n) {
			return term.Value{}, nil, fmt.Errorf("disk: truncated packed string")
		}
		s := string(body[n : n+int(sz)])
		return term.Intern(s), body[n+int(sz):], nil
	case pvCompound:
		fn, rest, err := readPacked(d, body, nil)
		if err != nil {
			return term.Value{}, nil, err
		}
		nargs, n := binary.Uvarint(rest)
		// Every arg costs at least one byte, so a count beyond the
		// remaining bytes is damage — reject before allocating on it.
		if n <= 0 || nargs > uint64(len(rest)-n) {
			return term.Value{}, nil, fmt.Errorf("disk: truncated packed compound")
		}
		rest = rest[n:]
		args := make([]term.Value, nargs)
		for i := range args {
			if args[i], rest, err = readPacked(d, rest, nil); err != nil {
				return term.Value{}, nil, err
			}
		}
		return term.NewCompound(fn, args...), rest, nil
	}
	return term.Value{}, nil, fmt.Errorf("disk: bad packed tag %d", tag)
}
