// Background compaction, size-tiered: runs are bucketed by live row count
// into geometric tiers (base 4), and the compactor merges a contiguous
// window of same-tier runs into one run of the next tier, installed in
// place in the run list. Merging only adjacent same-tier runs — never the
// whole list — bounds both the work per cycle and read amplification (at
// most threshold-1 runs per tier, O(log n) tiers), and keeps large settled
// runs from being rewritten every time small fresh ones accumulate, which
// is what made the old merge-everything policy degrade as stores grew.
//
// Correctness under concurrency rests on the install protocol: the merge
// reads immutable runs lock-free, and the install (under the relation's
// mutation lock) verifies nothing changed — the window's run pointers and
// their tombstone map pointers — and otherwise discards the merged run and
// retries on the next wake-up. Because the window is replaced in position,
// enumeration order (runs in flush order, then the memtable) is preserved
// exactly; content-preservation is what makes mid-merge readers safe: a
// reader (or snapshot) holding the old run list observes exactly the same
// visible rows in the same order as one holding the new list.
package disk

import (
	"sync/atomic"
)

// runTier buckets a run by live row count: tier t holds runs of roughly
// 4^t rows, so merging a window of tier-t runs yields a tier-(t+1) run.
func runTier(liveRows int) int {
	t := 0
	for liveRows >= 4 {
		liveRows /= 4
		t++
	}
	return t
}

// maybeCompact wakes the compactor when a relation's run count reaches the
// threshold. The goroutine starts lazily on first use, so stores that
// never flush (or are never compacted) cost nothing — and short-lived
// test systems that skip Close leak no goroutine until they actually
// spill.
func (s *Store) maybeCompact(r *Rel, nruns int) {
	if s.opts.NoCompactor || nruns < s.opts.compactAfter() || s.closed.Load() ||
		s.degraded.Load() != nil {
		return
	}
	s.compactStart.Do(func() {
		s.wg.Add(1)
		go s.compactLoop()
	})
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.compactCh:
		}
		for {
			r, lo, hi := s.pickCompactable()
			if r == nil {
				break
			}
			s.compactMu.Lock()
			if s.closed.Load() {
				s.compactMu.Unlock()
				return
			}
			progressed := s.compactOne(r, lo, hi)
			s.compactMu.Unlock()
			if !progressed {
				// Stale install (the writer interleaved): wait for the
				// next flush signal instead of spinning on retries.
				break
			}
		}
	}
}

// pickCompactable scans for a mergeable window: the longest contiguous
// stretch of same-tier runs of at least the wake threshold, preferring the
// lowest tier (fresh small runs merge first, settled large ones rarely).
// Returns the relation and the window bounds [lo, hi), or nil if no
// relation has a qualifying window.
func (s *Store) pickCompactable() (*Rel, int, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	need := s.opts.compactAfter()
	var best *Rel
	bestLo, bestHi, bestTier := 0, 0, 0
	for _, r := range s.order {
		runs := *r.runs.Load()
		if len(runs) < need {
			continue
		}
		lo := 0
		for lo < len(runs) {
			tier := runTier(runs[lo].liveNow())
			hi := lo + 1
			for hi < len(runs) && runTier(runs[hi].liveNow()) == tier {
				hi++
			}
			if hi-lo >= need {
				better := best == nil || tier < bestTier ||
					(tier == bestTier && hi-lo > bestHi-bestLo)
				if better {
					best, bestLo, bestHi, bestTier = r, lo, hi, tier
				}
			}
			lo = hi
		}
	}
	return best, bestLo, bestHi
}

// compactOne merges r's runs [lo, hi) into one, installed in place.
// Committed tombstones are dropped (new snapshots are captured at CSN >=
// their stamp and would filter them anyway; old snapshots pin the old run
// objects); uncommitted ones — a statement in flight deleted the row — are
// carried into the merged run so an abort-free install stays
// content-identical.
func (s *Store) compactOne(r *Rel, lo, hi int) bool {
	runs := *r.runs.Load()
	if hi > len(runs) || hi-lo < 2 {
		return false
	}
	window := runs[lo:hi]
	// Record the tombstone map pointers the merge is based on; any change
	// while merging invalidates the result.
	tombsAt := make([]*map[int32]uint64, len(window))
	for i, rn := range window {
		tombsAt[i] = rn.tombs.Load()
	}
	merged, err := r.mergeRuns(window, s.commitCSN.Load(), false)
	if err != nil {
		// Compaction is advisory: on error, leave the runs as they are —
		// but a disk fault still flips the store to read-only, because the
		// device that failed a merge write will fail a flush next.
		s.setDegraded(err)
		return false
	}
	r.relMu.Lock()
	cur := *r.runs.Load()
	// The window's runs must still sit at the same positions with the same
	// tombstones. Every structural change either replaces the whole list
	// (Clear, Drop, checkpoint rewrites — all of which change the window
	// elements) or appends past the end (flush), so unchanged window
	// pointers mean the prefix is intact and an install in place is sound.
	stale := hi > len(cur)
	if !stale {
		for i, rn := range window {
			if cur[lo+i] != rn || rn.tombs.Load() != tombsAt[i] {
				stale = true
				break
			}
		}
	}
	if stale {
		r.relMu.Unlock()
		if merged != nil {
			_ = s.fsys.Remove(merged.path)
			merged.release()
		}
		return false
	}
	nr := make([]*run, 0, len(cur)-len(window)+1)
	nr = append(nr, cur[:lo]...)
	if merged != nil {
		nr = append(nr, merged)
	}
	nr = append(nr, cur[hi:]...)
	r.runs.Store(&nr)
	r.relMu.Unlock()
	s.retireRuns(window)
	atomic.AddInt64(&s.stats.RunsCompacted, int64(len(window)))
	return true
}
