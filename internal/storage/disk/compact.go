// Background compaction: once a relation accumulates enough runs, a
// single background goroutine merges them into one, preserving insertion
// order and content exactly. Correctness under concurrency rests on the
// install protocol: the merge reads immutable runs lock-free, and the
// install (under the relation's mutation lock) verifies nothing changed —
// the run list pointer and every input run's tombstone map pointer — and
// otherwise discards the merged run and retries on the next wake-up.
// Content-preservation is what makes mid-merge readers safe: a reader (or
// snapshot) holding the old run list observes exactly the same visible
// rows in the same order as one holding the new list.
package disk

import (
	"os"
	"sync/atomic"
)

// maybeCompact wakes the compactor when a relation's run count reaches the
// threshold. The goroutine starts lazily on first use, so stores that
// never flush (or are never compacted) cost nothing — and short-lived
// test systems that skip Close leak no goroutine until they actually
// spill.
func (s *Store) maybeCompact(r *Rel, nruns int) {
	if s.opts.NoCompactor || nruns < s.opts.compactAfter() || s.closed.Load() {
		return
	}
	s.compactStart.Do(func() {
		s.wg.Add(1)
		go s.compactLoop()
	})
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.compactCh:
		}
		for {
			r := s.pickCompactable()
			if r == nil {
				break
			}
			s.compactMu.Lock()
			if s.closed.Load() {
				s.compactMu.Unlock()
				return
			}
			progressed := s.compactOne(r)
			s.compactMu.Unlock()
			if !progressed {
				// Stale install (the writer interleaved): wait for the
				// next flush signal instead of spinning on retries.
				break
			}
		}
	}
}

// pickCompactable returns the relation with the most runs at or above the
// threshold, or nil.
func (s *Store) pickCompactable() *Rel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *Rel
	bestN := s.opts.compactAfter()
	for _, r := range s.order {
		if n := len(*r.runs.Load()); n >= bestN {
			best, bestN = r, n+1
		}
	}
	return best
}

// compactOne merges r's current runs into one. Committed tombstones are
// dropped (new snapshots are captured at CSN >= their stamp and would
// filter them anyway; old snapshots pin the old run objects); uncommitted
// ones — a statement in flight deleted the row — are carried into the
// merged run so an abort-free install stays content-identical.
func (s *Store) compactOne(r *Rel) bool {
	runs := *r.runs.Load()
	if len(runs) < 2 {
		return false
	}
	// Record the tombstone map pointers the merge is based on; any change
	// while merging invalidates the result.
	tombsAt := make([]*map[int32]uint64, len(runs))
	for i, rn := range runs {
		tombsAt[i] = rn.tombs.Load()
	}
	merged, err := r.mergeRuns(runs, s.commitCSN.Load(), false)
	if err != nil {
		// Compaction is advisory: on error, leave the runs as they are.
		return false
	}
	r.relMu.Lock()
	cur := r.runs.Load()
	stale := len(*cur) != len(runs)
	if !stale {
		for i, rn := range *cur {
			if rn != runs[i] || rn.tombs.Load() != tombsAt[i] {
				stale = true
				break
			}
		}
	}
	if stale {
		r.relMu.Unlock()
		if merged != nil {
			os.Remove(merged.path)
			merged.release()
		}
		return false
	}
	if merged == nil {
		empty := []*run{}
		r.runs.Store(&empty)
	} else {
		nr := []*run{merged}
		r.runs.Store(&nr)
	}
	r.relMu.Unlock()
	s.retireRuns(runs)
	atomic.AddInt64(&s.stats.RunsCompacted, int64(len(runs)))
	return true
}
