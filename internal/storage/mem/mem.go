// Package mem registers the tailored main-memory engine — storage.MemStore,
// the default — under the backend name "mem", so the engine selected by
// flag or option resolves through one registry regardless of which engine
// it is. The implementation lives in the parent storage package because the
// executor's hot paths (intrusive hash chains, cached tuple hashes,
// zero-allocation dedup) are written directly against it.
package mem

import "gluenail/internal/storage"

func init() {
	storage.RegisterBackend("mem", func(cfg storage.BackendConfig) (storage.Backend, error) {
		return storage.NewMemStore(cfg.Policy), nil
	})
}
