package storage

import (
	"fmt"
	"testing"

	"gluenail/internal/term"
)

// TestBackendSeamAllocs pins the main-memory engine's hot paths at zero
// allocations per row when reached through the storage.Backend / Rel
// interface seam — the dispatch the VM actually performs. Extracting the
// backend interface must not cost the tailored engine anything: no
// boxing, no per-row temporaries from indirect calls.
func TestBackendSeamAllocs(t *testing.T) {
	var be Backend = NewMemStore(IndexAdaptive)
	rel := be.Ensure(term.Intern("edge"), 2) // interface-typed Rel
	for i := 0; i < 500; i++ {
		rel.Insert(term.Tuple{
			term.Intern(fmt.Sprintf("n%03d", i%100)),
			term.NewInt(int64(i)),
		})
	}
	rel.PrepareRead(1, 1<<20) // force the col-0 index

	var hits int
	yield := func(term.Tuple) bool { hits++; return true }
	fullKey := term.Tuple{term.Intern("n042"), term.NewInt(42)}
	colKey := term.Tuple{term.Intern("n042"), {}}
	full := uint32(3)

	if got := testing.AllocsPerRun(50, func() {
		rel.Lookup(full, fullKey, yield)
	}); got != 0 {
		t.Errorf("whole-tuple Lookup via Rel interface: %.1f allocs/probe, want 0", got)
	}
	if got := testing.AllocsPerRun(50, func() {
		rel.Lookup(1, colKey, yield)
	}); got != 0 {
		t.Errorf("indexed Lookup via Rel interface: %.1f allocs/probe, want 0", got)
	}
	if got := testing.AllocsPerRun(50, func() {
		rel.Contains(fullKey)
	}); got != 0 {
		t.Errorf("Contains via Rel interface: %.1f allocs/probe, want 0", got)
	}
	// Duplicate elimination: re-inserting an existing row probes the hash
	// chain and rejects without allocating.
	if got := testing.AllocsPerRun(50, func() {
		rel.Insert(fullKey)
	}); got != 0 {
		t.Errorf("dedup Insert via Rel interface: %.1f allocs/row, want 0", got)
	}
	if hits == 0 {
		t.Fatal("probes never matched; nothing was exercised")
	}
}
