package storage

import (
	"fmt"
	"sync"
	"testing"

	"gluenail/internal/term"
)

// stressRelation builds an nRows relation with nRows/keysPerCol distinct
// values in column 0.
func stressRelation(nRows, keys int, policy IndexPolicy, stats *Stats) *Relation {
	rel := NewRelation(term.NewString("r"), 2, policy, stats)
	for i := 0; i < nRows; i++ {
		rel.Insert(term.Tuple{term.NewInt(int64(i % keys)), term.NewInt(int64(i))})
	}
	return rel
}

// TestConcurrentLookupDuringIndexBuild hammers one adaptive relation with
// concurrent Lookups and Scans so the adaptive index build triggers while
// other readers are mid-lookup. Run under -race, this is the regression
// test for the readers-OR-writer concurrency model: every reader must see
// either the scan path or a fully published index, never a partial one.
func TestConcurrentLookupDuringIndexBuild(t *testing.T) {
	const (
		nRows      = 4000
		keys       = 100
		goroutines = 16
		lookups    = 200
	)
	for _, policy := range []IndexPolicy{IndexAdaptive, IndexAlways, IndexNever} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			stats := &Stats{}
			rel := stressRelation(nRows, keys, policy, stats)
			perKey := nRows / keys
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < lookups; i++ {
						k := (g*31 + i) % keys
						key := term.Tuple{term.NewInt(int64(k)), {}}
						got := 0
						rel.Lookup(0b01, key, func(u term.Tuple) bool {
							if u[0].Int() != int64(k) {
								errs <- fmt.Errorf("lookup %d yielded key %d", k, u[0].Int())
								return false
							}
							got++
							return true
						})
						if got != perKey {
							errs <- fmt.Errorf("lookup %d returned %d rows, want %d", k, got, perKey)
							return
						}
						if i%16 == 0 {
							n := 0
							rel.Scan(func(term.Tuple) bool { n++; return true })
							if n != nRows {
								errs <- fmt.Errorf("scan saw %d rows, want %d", n, nRows)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if policy == IndexNever && stats.IndexBuilds != 0 {
				t.Fatalf("IndexNever built %d indexes", stats.IndexBuilds)
			}
			if policy != IndexNever && stats.IndexBuilds > 1 {
				t.Fatalf("one mask was indexed %d times; the per-mask build guard must run once",
					stats.IndexBuilds)
			}
		})
	}
}

// TestPrepareRead checks that the parallel-section boundary hook builds a
// decided index up front: after PrepareRead announces enough lookups to
// pay the adaptive build cost, concurrent readers probe without triggering
// any further builds.
func TestPrepareRead(t *testing.T) {
	stats := &Stats{}
	rel := stressRelation(1000, 50, IndexAdaptive, stats)
	rel.PrepareRead(0b01, 2) // 2 lookups * 1000 rows >= adaptiveFactor * 1000
	if !rel.HasIndex(0b01) {
		t.Fatal("PrepareRead did not build the decided index")
	}
	if stats.IndexBuilds != 1 {
		t.Fatalf("IndexBuilds = %d, want 1", stats.IndexBuilds)
	}
	scannedBefore := stats.RowsScanned
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				key := term.Tuple{term.NewInt(int64(k)), {}}
				rel.Lookup(0b01, key, func(term.Tuple) bool { return true })
			}
		}()
	}
	wg.Wait()
	if stats.IndexBuilds != 1 {
		t.Fatalf("lookups after PrepareRead rebuilt the index (%d builds)", stats.IndexBuilds)
	}
	if stats.RowsScanned != scannedBefore {
		t.Fatalf("lookups fell back to scanning %d rows despite the index",
			stats.RowsScanned-scannedBefore)
	}

	// Degenerate masks are ignored.
	rel.PrepareRead(0, 100)
	rel.PrepareRead(rel.fullMask(), 100)
	if stats.IndexBuilds != 1 {
		t.Fatalf("degenerate PrepareRead masks built indexes (%d builds)", stats.IndexBuilds)
	}
}

// TestPrepareReadBelowThreshold checks that announcing too few lookups
// leaves the adaptive decision unchanged: no index, scans still answer.
func TestPrepareReadBelowThreshold(t *testing.T) {
	stats := &Stats{}
	rel := stressRelation(1000, 50, IndexAdaptive, stats)
	rel.PrepareRead(0b01, 1) // 1*1000 < adaptiveFactor*1000
	if rel.HasIndex(0b01) {
		t.Fatal("PrepareRead built an index before the adaptive threshold")
	}
	// The pre-paid credit still counts: one more scan's worth tips it over.
	rel.PrepareRead(0b01, 1)
	if !rel.HasIndex(0b01) {
		t.Fatal("accumulated PrepareRead credit did not build the index")
	}
}

// TestAdaptiveCreditAtomic hammers the adaptive credit counter itself: many
// goroutines race single Lookups on a cold mask so the per-mask atomic
// counter takes every increment concurrently. Exactly one index build must
// result, and no credit may be lost — with adaptiveFactor scans' worth of
// credit outstanding the index must exist afterwards. Run under -race this
// is the regression test for the lock-free credit path.
func TestAdaptiveCreditAtomic(t *testing.T) {
	const goroutines = 32
	for round := 0; round < 20; round++ {
		stats := &Stats{}
		rel := stressRelation(500, 25, IndexAdaptive, stats)
		var ready, done sync.WaitGroup
		start := make(chan struct{})
		ready.Add(goroutines)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				defer done.Done()
				ready.Done()
				<-start
				key := term.Tuple{term.NewInt(int64(g % 25)), {}}
				rel.Lookup(0b01, key, func(term.Tuple) bool { return true })
			}()
		}
		ready.Wait()
		close(start)
		done.Wait()
		if stats.IndexBuilds != 1 {
			t.Fatalf("round %d: IndexBuilds = %d, want exactly 1", round, stats.IndexBuilds)
		}
		if !rel.HasIndex(0b01) {
			t.Fatalf("round %d: index missing after %d concurrent lookups", round, goroutines)
		}
	}
}

// TestAdaptiveCreditNoLoss races exactly adaptiveFactor single-lookup
// PrepareRead announcements: if any concurrent increment were lost, the
// accumulated credit would fall short and no index would be built.
func TestAdaptiveCreditNoLoss(t *testing.T) {
	for round := 0; round < 200; round++ {
		rel := stressRelation(200, 10, IndexAdaptive, &Stats{})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < adaptiveFactor; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				rel.PrepareRead(0b01, 1)
			}()
		}
		close(start)
		wg.Wait()
		if !rel.HasIndex(0b01) {
			t.Fatalf("round %d: %d racing announcements lost credit; index not built",
				round, adaptiveFactor)
		}
	}
}
