// Backend seam: the contract a storage engine implements to sit under the
// executor, and the registry the public API resolves engine names through.
//
// A Backend is a Store (relation lifecycle, journal hooks) plus the
// multi-version machinery the server surface depends on: a commit sequence
// number advanced at statement boundaries and statement-boundary snapshot
// capture. The tailored main-memory MemStore is the default engine; the
// disk-resident engine lives in the storage/disk subpackage and registers
// itself under "disk". Engines register from init functions so importing a
// backend package is all it takes to make it selectable by name.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

// SnapshotStore is the read-only view a snapshot session executes against:
// a Store frozen at a statement boundary, identified by the CSN it was
// captured at. Implementations that hold resources beyond memory (open run
// files, pinned manifests) additionally implement io.Closer; sessions close
// their view when they end.
type SnapshotStore interface {
	Store
	// CSN returns the commit sequence number the view was captured at.
	CSN() uint64
}

// Backend is a full storage engine: a Store that also owns the commit
// sequence number versioning its relations and can capture consistent
// snapshot views. All CSN and snapshot methods must be called at statement
// boundaries (no writer in flight), which the public API guarantees by
// holding the system writer lock.
type Backend interface {
	Store
	// CommitCSN returns the last committed statement's sequence number.
	CommitCSN() uint64
	// AdvanceCSN publishes a statement boundary and returns the new CSN.
	AdvanceCSN() uint64
	// SnapshotView captures an immutable view of every relation at the
	// current committed CSN for a concurrent read session.
	SnapshotView() (SnapshotStore, error)
	// Close releases engine resources (file handles, background workers).
	// The store must not be used afterwards.
	Close() error
}

// BaseFlusher is implemented by engines that keep their base state outside
// the WAL snapshot image (the disk engine's runs + manifest). At checkpoint
// the WAL calls FlushBase to make the engine's own base state durable and
// then writes an empty snapshot image in its place: recovery reloads the
// base from the engine and replays only the log tail on top (storage.Load
// is additive, so the empty image is a no-op).
type BaseFlusher interface {
	// FlushBase makes all committed state durable in the engine's own
	// on-disk format. Called at a statement boundary.
	FlushBase() error
}

// MemResident is implemented by relations whose rows are not all held in
// memory (a spill-backed scratch table). The execution governor charges
// such relations their resident rows — not their total cardinality —
// against the MaxRelRows budget: rows beyond the memory budget have been
// spilled to disk, which is exactly what the budget is for.
type MemResident interface {
	// MemRows returns the number of rows currently held in memory.
	MemRows() int
}

// CostProfile describes a relation's access costs to the physical planner,
// relative to the tailored main-memory engine (1.0 = one in-memory row
// visit). The planner multiplies estimated cardinalities by these factors
// when ordering joins, so a disk-resident relation is scanned later (or
// probed instead of scanned) where an in-memory one would not care.
type CostProfile struct {
	// Engine names the backing engine ("disk"); empty means the default
	// main-memory engine and is omitted from EXPLAIN output.
	Engine string
	// Scan is the per-row cost factor of a full enumeration.
	Scan float64
	// Lookup is the per-row cost factor of an indexed probe.
	Lookup float64
}

// Coster is implemented by relations with non-default access costs. The
// main-memory Relation deliberately does not implement it: its factors are
// the 1.0 baseline, and skipping the interface keeps the planner's hot
// path free of assertions on the common engine.
type Coster interface {
	CostProfile() CostProfile
}

// BulkLoader is implemented by engines that can ingest a large batch of
// rows directly into their base storage, bypassing the per-row journal.
// The batch's durability point is the engine's own base commit (the disk
// engine's manifest), not the WAL — so callers must fence the call: rotate
// the journal to an empty tail first (the log must never replay over a
// base that already contains the batch), call BulkLoad, then flush the
// base (storage.BaseFlusher). A crash before the base flush loses exactly
// the whole batch (the statement), never a suffix of earlier statements.
type BulkLoader interface {
	// BulkLoad deduplicates rows against the relation and within the
	// batch, appends the survivors in order, and returns how many were
	// added. Must be called at a statement boundary.
	BulkLoad(name term.Value, arity int, rows []term.Tuple) (added int, err error)
}

// BulkThreshold is the batch size at which loaders prefer BulkLoad over
// row-at-a-time inserts: below it the fence (a checkpoint plus a base
// flush) costs more than the journal writes it saves.
const BulkThreshold = 4096

// BackendConfig carries the engine-independent open parameters.
type BackendConfig struct {
	// Dir is the directory a disk-resident engine keeps its state in.
	// Empty selects an ephemeral store (a private temp directory, removed
	// on Close) for engines that need a directory at all.
	Dir string
	// Policy is the adaptive-index policy relations follow.
	Policy IndexPolicy
	// CacheBlocks caps a disk-resident engine's decoded-block cache
	// (entries, not bytes); <= 0 selects the engine default.
	CacheBlocks int
	// NoCompress disables a disk-resident engine's block compression
	// (blocks are stored raw). Reads handle both forms regardless.
	NoCompress bool
	// FS routes the engine's file I/O; nil selects the real filesystem
	// (fsio.OS). Tests swap in a fault-injecting implementation.
	FS fsio.FS
	// ScrubInterval, when positive, asks a disk-resident engine to run a
	// background scrubber verifying one stored run's checksums per
	// interval. Engines without persistent runs ignore it.
	ScrubInterval time.Duration
}

var (
	backendMu sync.RWMutex
	backends  = map[string]func(BackendConfig) (Backend, error){}
)

// RegisterBackend makes a storage engine selectable by name through
// OpenBackend. Engines call it from init; registering a duplicate name
// panics (it is a programming error, not a runtime condition).
func RegisterBackend(name string, open func(BackendConfig) (Backend, error)) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		panic("storage: duplicate backend registration: " + name)
	}
	backends[name] = open
}

// OpenBackend opens the named engine. Unknown names list the registered
// engines in the error, so a typo on a -store flag is self-explaining.
func OpenBackend(name string, cfg BackendConfig) (Backend, error) {
	backendMu.RLock()
	open, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown backend %q (registered: %v)", name, BackendNames())
	}
	return open(cfg)
}

// BackendNames returns the registered engine names, sorted.
func BackendNames() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SnapshotView implements Backend for the main-memory engine.
func (s *MemStore) SnapshotView() (SnapshotStore, error) {
	return s.Snapshot(), nil
}

// Close implements Backend. The main-memory engine holds no resources
// beyond garbage-collected memory.
func (s *MemStore) Close() error { return nil }

var _ Backend = (*MemStore)(nil)

// NewRelationCSN creates an empty relation whose deletions are stamped from
// the shared commit sequence number csn — the constructor a composing
// engine (the disk engine's memtables) uses so its in-memory rows carry the
// same multi-version visibility semantics as the main-memory store's.
// stats and csn may be nil.
func NewRelationCSN(name term.Value, arity int, policy IndexPolicy, stats *Stats, csn *atomic.Uint64) *Relation {
	r := NewRelation(name, arity, policy, stats)
	r.csn = csn
	return r
}

// CaptureRel freezes a relation at snapshot CSN csn: the returned view
// reads the captured slice headers with the standard visibility rule
// (dead stamp 0 or > csn). Must be called at a statement boundary, like
// MemStore.Snapshot; stats receives the view's read accounting.
func CaptureRel(r *Relation, csn uint64, stats *Stats) Rel {
	return newSnapRel(r, csn, stats)
}

// PlaceholderRel returns an empty read-only relation: what a snapshot
// store yields for a relation that did not exist at capture. Writes panic,
// exactly as on a captured snapshot relation.
func PlaceholderRel(name term.Value, arity int, csn uint64, stats *Stats) Rel {
	return &SnapRel{name: name, arity: arity, csn: csn, stats: stats}
}

// DistinctTracker maintains per-column distinct-value estimates for an
// engine that stores rows outside a Relation (the disk engine's runs). It
// is the same digest the main-memory engine uses — exact while small, a
// linear-counting sketch beyond — behind a mutex so a snapshot session's
// planner can estimate while the writer feeds it.
type DistinctTracker struct {
	mu   sync.Mutex
	cols []colStats
}

// NewDistinctTracker returns a tracker for arity columns.
func NewDistinctTracker(arity int) *DistinctTracker {
	return &DistinctTracker{cols: make([]colStats, arity)}
}

// Add folds a tuple's column values into the digest.
func (d *DistinctTracker) Add(t term.Tuple) {
	d.mu.Lock()
	for i := range t {
		if i < len(d.cols) {
			d.cols[i].add(t[i].Hash())
		}
	}
	d.mu.Unlock()
}

// AddBatch folds a batch of tuples under one lock acquisition — the bulk
// loader's per-row Add calls were a measurable share of its profile.
func (d *DistinctTracker) AddBatch(rows []term.Tuple) {
	d.mu.Lock()
	for _, t := range rows {
		for i := range t {
			if i < len(d.cols) {
				d.cols[i].add(t[i].Hash())
			}
		}
	}
	d.mu.Unlock()
}

// Remove withdraws a tuple's column values (exact while small; the sketch
// ignores removals, like the main-memory digest).
func (d *DistinctTracker) Remove(t term.Tuple) {
	d.mu.Lock()
	for i := range t {
		if i < len(d.cols) {
			d.cols[i].remove(t[i].Hash())
		}
	}
	d.mu.Unlock()
}

// Estimate returns the distinct-value estimate for column col.
func (d *DistinctTracker) Estimate(col int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if col < 0 || col >= len(d.cols) {
		return 0
	}
	return d.cols[col].estimate()
}

// Reset clears the digest (relation Clear).
func (d *DistinctTracker) Reset() {
	d.mu.Lock()
	for i := range d.cols {
		d.cols[i] = colStats{}
	}
	d.mu.Unlock()
}

// AppendDigest serializes the tracker's per-column digests so an engine
// can persist them (the disk engine's manifest) and restore planner
// statistics on reopen without re-reading every stored row. The encoding
// is deterministic for identical contents.
func (d *DistinctTracker) AppendDigest(dst []byte) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	dst = binary.AppendUvarint(dst, uint64(len(d.cols)))
	for i := range d.cols {
		dst = d.cols[i].appendDigest(dst)
	}
	return dst
}

// ReadDigest restores digests serialized by AppendDigest, replacing the
// tracker's current state. The serialized arity must match.
func (d *DistinctTracker) ReadDigest(r *bufio.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if int(n) != len(d.cols) {
		return fmt.Errorf("storage: digest arity %d does not match tracker arity %d", n, len(d.cols))
	}
	for i := range d.cols {
		if err := d.cols[i].readDigest(r); err != nil {
			return err
		}
	}
	return nil
}
