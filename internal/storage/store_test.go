package storage

import (
	"bytes"
	"path/filepath"
	"testing"

	"gluenail/internal/term"
)

func TestMemStoreEnsureGetDrop(t *testing.T) {
	s := NewMemStore(IndexAdaptive)
	name := term.NewString("edge")
	r := s.Ensure(name, 2)
	if r.Arity() != 2 || !r.Name().Equal(name) {
		t.Errorf("Ensure returned wrong relation %v/%d", r.Name(), r.Arity())
	}
	if r2 := s.Ensure(name, 2); r2 != r {
		t.Error("Ensure should return the same relation object")
	}
	// Same name, different arity is a different relation.
	r3 := s.Ensure(name, 3)
	if r3 == r {
		t.Error("arity should distinguish relations")
	}
	if _, ok := s.Get(name, 2); !ok {
		t.Error("Get should find existing relation")
	}
	if _, ok := s.Get(term.NewString("nope"), 2); ok {
		t.Error("Get should miss absent relation")
	}
	if got := len(s.Names()); got != 2 {
		t.Errorf("Names = %d entries, want 2", got)
	}
	s.Drop(name, 2)
	if _, ok := s.Get(name, 2); ok {
		t.Error("Drop should remove the relation")
	}
	s.Drop(name, 2) // no-op
	if s.Stats().RelsCreated != 2 || s.Stats().RelsDropped != 1 {
		t.Errorf("stats: created=%d dropped=%d", s.Stats().RelsCreated, s.Stats().RelsDropped)
	}
}

func TestHiLogRelationNames(t *testing.T) {
	// students(cs99) is a legal relation name (§5).
	s := NewMemStore(IndexAdaptive)
	n1 := term.Atom("students", term.NewString("cs99"))
	n2 := term.Atom("students", term.NewString("cs101"))
	r1 := s.Ensure(n1, 1)
	r2 := s.Ensure(n2, 1)
	if r1 == r2 {
		t.Fatal("distinct compound names must map to distinct relations")
	}
	r1.Insert(term.Tuple{term.NewString("wilson")})
	if r2.Len() != 0 {
		t.Error("insert leaked across compound-named relations")
	}
}

func TestRelNameString(t *testing.T) {
	rn := RelName{Name: term.NewString("edge"), Arity: 2}
	if rn.String() != "edge/2" {
		t.Errorf("String = %q", rn.String())
	}
}

func TestMemStoreString(t *testing.T) {
	s := NewMemStore(IndexNever)
	s.Ensure(term.NewString("a"), 1)
	if got := s.String(); got != "MemStore(1 relations)" {
		t.Errorf("String = %q", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := NewMemStore(IndexAdaptive)
	edge := src.Ensure(term.NewString("edge"), 2)
	edge.Insert(term.Tuple{term.NewInt(1), term.NewInt(2)})
	edge.Insert(term.Tuple{term.NewInt(2), term.NewInt(3)})
	hilog := src.Ensure(term.Atom("students", term.NewString("cs99")), 1)
	hilog.Insert(term.Tuple{term.NewString("wilson")})
	empty := src.Ensure(term.NewString("empty"), 3)
	_ = empty

	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewMemStore(IndexAdaptive)
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	e2, ok := dst.Get(term.NewString("edge"), 2)
	if !ok || e2.Len() != 2 {
		t.Fatalf("edge not restored (ok=%v)", ok)
	}
	if !e2.Contains(term.Tuple{term.NewInt(1), term.NewInt(2)}) {
		t.Error("edge tuple missing after load")
	}
	h2, ok := dst.Get(term.Atom("students", term.NewString("cs99")), 1)
	if !ok || h2.Len() != 1 {
		t.Error("HiLog-named relation not restored")
	}
	if _, ok := dst.Get(term.NewString("empty"), 3); !ok {
		t.Error("empty relation should still be declared after load")
	}
}

func TestSaveDeterministic(t *testing.T) {
	build := func() *MemStore {
		s := NewMemStore(IndexAdaptive)
		r := s.Ensure(term.NewString("r"), 1)
		for i := int64(0); i < 50; i++ {
			r.Insert(term.Tuple{term.NewInt(i * 7 % 50)})
		}
		s.Ensure(term.NewString("a"), 2).Insert(term.Tuple{term.NewInt(1), term.NewInt(2)})
		return s
	}
	var b1, b2 bytes.Buffer
	if err := Save(&b1, build()); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("Save output should be deterministic")
	}
}

func TestLoadErrors(t *testing.T) {
	s := NewMemStore(IndexAdaptive)
	if err := Load(bytes.NewReader(nil), s); err == nil {
		t.Error("empty input should fail")
	}
	if err := Load(bytes.NewReader([]byte("NOT-AN-EDB-FILE!!")), s); err == nil {
		t.Error("bad magic should fail")
	}
	truncated := append([]byte{}, magic...)
	truncated = append(truncated, 5) // claims 5 relations, provides none
	if err := Load(bytes.NewReader(truncated), s); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edb.bin")
	src := NewMemStore(IndexAdaptive)
	src.Ensure(term.NewString("r"), 1).Insert(term.Tuple{term.NewInt(7)})
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := NewMemStore(IndexAdaptive)
	if err := LoadFile(path, dst); err != nil {
		t.Fatal(err)
	}
	r, ok := dst.Get(term.NewString("r"), 1)
	if !ok || !r.Contains(term.Tuple{term.NewInt(7)}) {
		t.Error("file round trip lost data")
	}
	if err := LoadFile(filepath.Join(dir, "missing.bin"), dst); err == nil {
		t.Error("loading a missing file should fail")
	}
}
