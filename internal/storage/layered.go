package storage

import (
	"sync"
	"sync/atomic"

	"gluenail/internal/term"
)

// LayeredStore simulates building the deductive system on top of an existing
// protected relational DBMS, the design §10 of the paper calls a mistake:
// "in a traditional relational database there are few relations, they live
// for a long time ... [deductive] relations do not need the level of
// protection that a relational database provides, and in fact the system
// wastes much of its time performing such tasks."
//
// Every operation pays for the protections a general-purpose DBMS imposes:
//
//   - a catalog probe (name resolution through a second hash table),
//   - a latch acquire/release (even though the workload is single-user),
//   - write-ahead logging of every mutation (encoded tuple appended to an
//     in-memory log, counted in Stats.LogBytes), and
//   - logged relation creation/destruction, making short-lived temporaries
//     expensive.
//
// It is functionally identical to MemStore and exists as the measured
// baseline for experiment E8.
type LayeredStore struct {
	inner   *MemStore
	catalog map[string]RelName
	mu      sync.Mutex
	log     []byte
}

// NewLayeredStore returns a layered baseline store with the given index
// policy for its underlying relations.
func NewLayeredStore(policy IndexPolicy) *LayeredStore {
	return &LayeredStore{
		inner:   NewMemStore(policy),
		catalog: make(map[string]RelName),
	}
}

// latch charges the cost of a latch acquire/release at operation entry.
// The workload is single-user (§10), so the latch is not held across scan
// callbacks — nested scans would self-deadlock — but every operation still
// pays for an uncontended lock/unlock pair, which is the cost being
// simulated.
func (s *LayeredStore) latch() func() {
	s.mu.Lock()
	atomic.AddInt64(&s.inner.stats.LatchAcquires, 1)
	s.mu.Unlock()
	return func() {}
}

// catalogLookup resolves a name through the catalog; the catalog map is
// guarded by mu so parallel pipeline readers can resolve concurrently.
func (s *LayeredStore) catalogLookup(name term.Value, arity int) string {
	k := relKey(name, arity)
	atomic.AddInt64(&s.inner.stats.CatalogProbes, 1)
	s.mu.Lock()
	if _, ok := s.catalog[k]; !ok {
		s.catalog[k] = RelName{Name: name, Arity: arity}
	}
	s.mu.Unlock()
	return k
}

func (s *LayeredStore) appendLog(op byte, name term.Value, t term.Tuple) {
	s.mu.Lock()
	s.log = append(s.log, op)
	s.log = term.AppendValue(s.log, name)
	for i := range t {
		s.log = term.AppendValue(s.log, t[i])
	}
	atomic.StoreInt64(&s.inner.stats.LogBytes, int64(len(s.log)))
	s.mu.Unlock()
}

// Ensure implements Store; creation is logged.
func (s *LayeredStore) Ensure(name term.Value, arity int) Rel {
	defer s.latch()()
	s.catalogLookup(name, arity)
	if r, ok := s.inner.Get(name, arity); ok {
		return &layeredRel{store: s, inner: r.(*Relation)}
	}
	s.appendLog('C', name, nil)
	return &layeredRel{store: s, inner: s.inner.ensure(name, arity)}
}

// Get implements Store.
func (s *LayeredStore) Get(name term.Value, arity int) (Rel, bool) {
	defer s.latch()()
	s.catalogLookup(name, arity)
	r, ok := s.inner.Get(name, arity)
	if !ok {
		return nil, false
	}
	return &layeredRel{store: s, inner: r.(*Relation)}, true
}

// Drop implements Store; destruction is logged.
func (s *LayeredStore) Drop(name term.Value, arity int) {
	defer s.latch()()
	s.catalogLookup(name, arity)
	s.appendLog('D', name, nil)
	s.inner.Drop(name, arity)
}

// Names implements Store.
func (s *LayeredStore) Names() []RelName {
	defer s.latch()()
	return s.inner.Names()
}

// Stats implements Store.
func (s *LayeredStore) Stats() *Stats { return s.inner.Stats() }

// SetJournal implements Store; the hook attaches to the underlying
// relations, so mutations made through layeredRel wrappers are observed.
func (s *LayeredStore) SetJournal(j Journal) {
	defer s.latch()()
	s.inner.SetJournal(j)
}

// layeredRel wraps a Relation, charging the DBMS toll on every operation.
type layeredRel struct {
	store *LayeredStore
	inner *Relation
}

func (r *layeredRel) Name() term.Value { return r.inner.Name() }
func (r *layeredRel) Arity() int       { return r.inner.Arity() }

func (r *layeredRel) Len() int {
	defer r.store.latch()()
	return r.inner.Len()
}

func (r *layeredRel) Version() uint64 {
	defer r.store.latch()()
	return r.inner.Version()
}

func (r *layeredRel) StatsEpoch() uint64 {
	defer r.store.latch()()
	return r.inner.StatsEpoch()
}

func (r *layeredRel) Insert(t term.Tuple) bool {
	defer r.store.latch()()
	r.store.catalogLookup(r.inner.name, r.inner.arity)
	if r.inner.Insert(t) {
		r.store.appendLog('I', r.inner.name, t)
		return true
	}
	return false
}

func (r *layeredRel) Delete(t term.Tuple) bool {
	defer r.store.latch()()
	r.store.catalogLookup(r.inner.name, r.inner.arity)
	if r.inner.Delete(t) {
		r.store.appendLog('X', r.inner.name, t)
		return true
	}
	return false
}

func (r *layeredRel) Contains(t term.Tuple) bool {
	defer r.store.latch()()
	r.store.catalogLookup(r.inner.name, r.inner.arity)
	return r.inner.Contains(t)
}

func (r *layeredRel) Clear() {
	defer r.store.latch()()
	r.store.appendLog('D', r.inner.name, nil)
	r.inner.Clear()
}

func (r *layeredRel) Scan(yield func(term.Tuple) bool) {
	defer r.store.latch()()
	r.store.catalogLookup(r.inner.name, r.inner.arity)
	r.inner.Scan(yield)
}

func (r *layeredRel) Lookup(mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	defer r.store.latch()()
	r.store.catalogLookup(r.inner.name, r.inner.arity)
	r.inner.Lookup(mask, key, yield)
}

func (r *layeredRel) PrepareRead(mask uint32, lookups int) {
	defer r.store.latch()()
	r.store.catalogLookup(r.inner.name, r.inner.arity)
	r.inner.PrepareRead(mask, lookups)
}

func (r *layeredRel) DistinctEst(col int) int {
	defer r.store.latch()()
	return r.inner.DistinctEst(col)
}

func (r *layeredRel) UnionDiff(batch []term.Tuple) []term.Tuple {
	var delta []term.Tuple
	for _, t := range batch {
		if r.Insert(t) {
			delta = append(delta, t)
		}
	}
	return delta
}

func (r *layeredRel) ModifyByKey(mask uint32, rows []term.Tuple) {
	for _, row := range rows {
		var victims []term.Tuple
		r.Lookup(mask, row, func(t term.Tuple) bool {
			victims = append(victims, t)
			return true
		})
		for _, v := range victims {
			r.Delete(v)
		}
		r.Insert(row)
	}
}

func (r *layeredRel) All() []term.Tuple {
	defer r.store.latch()()
	return r.inner.All()
}
