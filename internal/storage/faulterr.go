// Typed persistence failures. Two sentinels partition everything that
// can go wrong below the storage API once a process is past "it
// crashed": the environment refusing an operation (ErrDiskFault — EIO,
// ENOSPC, torn writes) and bytes at rest no longer being the bytes that
// were written (ErrCorrupt — failed CRCs, impossible headers). Both join
// the governor's error family: the VM converts a fault surfacing inside
// a procedure into a GovernorError with the sentinel as its limit, and
// the server maps the sentinels to their own wire codes, so a client can
// tell "the query is wrong" from "the disk is failing" without parsing
// message strings.
package storage

import (
	"errors"
	"fmt"
)

var (
	// ErrDiskFault marks an I/O operation the environment failed —
	// write errors, sync errors, rename errors. State already durable is
	// untouched; the failed statement's effects are not durable. A disk
	// engine that trips it on a write path degrades to read-only.
	ErrDiskFault = errors.New("storage: disk I/O fault")
	// ErrCorrupt marks persistent bytes that fail verification — a CRC
	// mismatch, an impossible header, a reference beyond a table. The
	// data is not trusted and never silently returned.
	ErrCorrupt = errors.New("storage: on-disk data corrupt")
)

// FaultError wraps an environment I/O error with the operation and path
// it failed at. errors.Is(err, ErrDiskFault) matches it, and Unwrap
// keeps the underlying error (say syscall.ENOSPC) reachable.
type FaultError struct {
	// Op names the logical operation: "flush", "manifest", "intern",
	// "bulk-load", "wal-commit", "checkpoint", "spill", "compact".
	Op string
	// Path is the file involved, when known.
	Path string
	// Err is the underlying error.
	Err error
}

func (e *FaultError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("disk fault during %s (%s): %v", e.Op, e.Path, e.Err)
	}
	return fmt.Sprintf("disk fault during %s: %v", e.Op, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// Is reports the ErrDiskFault sentinel so errors.Is classifies any
// FaultError without losing the wrapped cause.
func (e *FaultError) Is(target error) bool { return target == ErrDiskFault }

// IOFault classifies err as a disk fault at op/path. Errors already in
// the typed family pass through unchanged, so wrapping at every layer
// boundary is safe.
func IOFault(op, path string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrDiskFault) || errors.Is(err, ErrCorrupt) {
		return err
	}
	return &FaultError{Op: op, Path: path, Err: err}
}

// CorruptError reports verification failure of a persistent artifact,
// naming it precisely enough to find the bytes: which artifact class,
// which file, which relation/offset when known. errors.Is(err,
// ErrCorrupt) matches it.
type CorruptError struct {
	// Artifact is the damaged structure: "run-header", "run-block",
	// "run-hash-section", "run-bloom", "run-footer", "run-trailer",
	// "manifest", "intern", "wal-frame", "snapshot".
	Artifact string
	// Path is the damaged file.
	Path string
	// Relation names the owning relation, when known.
	Relation string
	// Run is the owning run sequence number, when the artifact is part
	// of a run file.
	Run uint64
	// Offset is the byte offset of the damaged region; -1 if unknown.
	Offset int64
	// Detail says what failed (checksum mismatch, bad magic, ...).
	Detail string
}

func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("corrupt %s in %s", e.Artifact, e.Path)
	if e.Relation != "" {
		msg += fmt.Sprintf(" (relation %s)", e.Relation)
	}
	if e.Run != 0 {
		msg += fmt.Sprintf(" (run %d)", e.Run)
	}
	if e.Offset >= 0 {
		msg += fmt.Sprintf(" at offset %d", e.Offset)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }
