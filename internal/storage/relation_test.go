package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gluenail/internal/term"
)

func it(vals ...int64) term.Tuple {
	t := make(term.Tuple, len(vals))
	for i, v := range vals {
		t[i] = term.NewInt(v)
	}
	return t
}

func newRel(t *testing.T, arity int, policy IndexPolicy) *Relation {
	t.Helper()
	return NewRelation(term.NewString("r"), arity, policy, nil)
}

func TestInsertDeleteContains(t *testing.T) {
	r := newRel(t, 2, IndexNever)
	if !r.Insert(it(1, 2)) {
		t.Error("first insert should report new")
	}
	if r.Insert(it(1, 2)) {
		t.Error("duplicate insert should report existing")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if !r.Contains(it(1, 2)) || r.Contains(it(2, 1)) {
		t.Error("Contains wrong")
	}
	if !r.Delete(it(1, 2)) {
		t.Error("delete of present tuple should succeed")
	}
	if r.Delete(it(1, 2)) {
		t.Error("delete of absent tuple should fail")
	}
	if r.Len() != 0 {
		t.Errorf("Len after delete = %d", r.Len())
	}
}

func TestVersionBumps(t *testing.T) {
	r := newRel(t, 1, IndexNever)
	v0 := r.Version()
	r.Insert(it(1))
	v1 := r.Version()
	if v1 == v0 {
		t.Error("insert should bump version")
	}
	r.Insert(it(1)) // duplicate: no change
	if r.Version() != v1 {
		t.Error("duplicate insert should not bump version")
	}
	r.Delete(it(2)) // absent: no change
	if r.Version() != v1 {
		t.Error("failed delete should not bump version")
	}
	r.Delete(it(1))
	if r.Version() == v1 {
		t.Error("delete should bump version")
	}
	r.Insert(it(3))
	v3 := r.Version()
	r.Clear()
	if r.Version() == v3 {
		t.Error("clear should bump version")
	}
	v4 := r.Version()
	r.Clear() // already empty
	if r.Version() != v4 {
		t.Error("clear of empty relation should not bump version")
	}
}

func TestScanVisitsAll(t *testing.T) {
	r := newRel(t, 1, IndexNever)
	for i := int64(0); i < 100; i++ {
		r.Insert(it(i))
	}
	seen := map[int64]bool{}
	r.Scan(func(tp term.Tuple) bool {
		seen[tp[0].Int()] = true
		return true
	})
	if len(seen) != 100 {
		t.Errorf("scan saw %d tuples, want 100", len(seen))
	}
	// Early termination.
	count := 0
	r.Scan(func(term.Tuple) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early-terminated scan visited %d", count)
	}
}

func TestLookupFullMask(t *testing.T) {
	r := newRel(t, 2, IndexNever)
	r.Insert(it(1, 2))
	r.Insert(it(1, 3))
	var got []term.Tuple
	r.Lookup(0b11, it(1, 2), func(tp term.Tuple) bool {
		got = append(got, tp)
		return true
	})
	if len(got) != 1 || !got[0].Equal(it(1, 2)) {
		t.Errorf("full-mask lookup = %v", got)
	}
}

func TestLookupPartialMask(t *testing.T) {
	for _, policy := range []IndexPolicy{IndexNever, IndexAdaptive, IndexAlways} {
		r := newRel(t, 2, policy)
		for i := int64(0); i < 50; i++ {
			r.Insert(it(i%5, i))
		}
		for rep := 0; rep < 5; rep++ { // repeated lookups exercise adaptive build
			n := 0
			r.Lookup(0b01, it(3, 0), func(tp term.Tuple) bool {
				if tp[0].Int() != 3 {
					t.Errorf("policy %d: lookup returned non-matching %v", policy, tp)
				}
				n++
				return true
			})
			if n != 10 {
				t.Errorf("policy %d rep %d: lookup returned %d rows, want 10", policy, rep, n)
			}
		}
	}
}

func TestLookupZeroMaskScans(t *testing.T) {
	r := newRel(t, 2, IndexAlways)
	r.Insert(it(1, 2))
	r.Insert(it(3, 4))
	n := 0
	r.Lookup(0, nil, func(term.Tuple) bool { n++; return true })
	if n != 2 {
		t.Errorf("zero-mask lookup visited %d", n)
	}
}

func TestAdaptiveIndexCrossover(t *testing.T) {
	// With the adaptive policy, an index appears only after the cumulative
	// scan cost reaches the build-cost threshold (§10).
	stats := &Stats{}
	r := NewRelation(term.NewString("r"), 2, IndexAdaptive, stats)
	for i := int64(0); i < 100; i++ {
		r.Insert(it(i, i*2))
	}
	if r.HasIndex(0b01) {
		t.Fatal("index should not exist before any lookups")
	}
	r.Lookup(0b01, it(7, 0), func(term.Tuple) bool { return true })
	if r.HasIndex(0b01) {
		t.Error("one lookup should not build the index (factor 2)")
	}
	r.Lookup(0b01, it(7, 0), func(term.Tuple) bool { return true })
	if !r.HasIndex(0b01) {
		t.Error("second lookup should cross the build threshold")
	}
	if stats.IndexBuilds != 1 {
		t.Errorf("IndexBuilds = %d, want 1", stats.IndexBuilds)
	}
	// Index stays correct under subsequent mutation.
	r.Insert(it(7, 999))
	r.Delete(it(7, 14))
	var got []int64
	r.Lookup(0b01, it(7, 0), func(tp term.Tuple) bool {
		got = append(got, tp[1].Int())
		return true
	})
	if len(got) != 1 || got[0] != 999 {
		t.Errorf("post-mutation indexed lookup = %v, want [999]", got)
	}
}

func TestIndexNeverNeverBuilds(t *testing.T) {
	stats := &Stats{}
	r := NewRelation(term.NewString("r"), 2, IndexNever, stats)
	for i := int64(0); i < 20; i++ {
		r.Insert(it(i, i))
	}
	for rep := 0; rep < 10; rep++ {
		r.Lookup(0b01, it(3, 0), func(term.Tuple) bool { return true })
	}
	if stats.IndexBuilds != 0 {
		t.Errorf("IndexNever built %d indexes", stats.IndexBuilds)
	}
}

func TestIndexAlwaysBuildsOnFirstLookup(t *testing.T) {
	stats := &Stats{}
	r := NewRelation(term.NewString("r"), 2, IndexAlways, stats)
	for i := int64(0); i < 20; i++ {
		r.Insert(it(i%4, i))
	}
	r.Lookup(0b01, it(1, 0), func(term.Tuple) bool { return true })
	if stats.IndexBuilds != 1 || !r.HasIndex(0b01) {
		t.Errorf("IndexAlways should build on first lookup (builds=%d)", stats.IndexBuilds)
	}
}

func TestClearDropsIndexes(t *testing.T) {
	r := newRel(t, 2, IndexAlways)
	r.Insert(it(1, 2))
	r.Lookup(0b01, it(1, 0), func(term.Tuple) bool { return true })
	if !r.HasIndex(0b01) {
		t.Fatal("setup: index missing")
	}
	r.Clear()
	if r.HasIndex(0b01) {
		t.Error("Clear should drop indexes")
	}
	if r.Len() != 0 {
		t.Error("Clear should empty the relation")
	}
}

func TestUnionDiff(t *testing.T) {
	r := newRel(t, 1, IndexNever)
	r.Insert(it(1))
	r.Insert(it(2))
	delta := r.UnionDiff([]term.Tuple{it(2), it(3), it(3), it(4)})
	if len(delta) != 2 {
		t.Fatalf("delta = %v, want 2 new tuples", delta)
	}
	want := map[int64]bool{3: true, 4: true}
	for _, d := range delta {
		if !want[d[0].Int()] {
			t.Errorf("unexpected delta tuple %v", d)
		}
	}
	if r.Len() != 4 {
		t.Errorf("Len after uniondiff = %d, want 4", r.Len())
	}
	if d := r.UnionDiff([]term.Tuple{it(1), it(4)}); len(d) != 0 {
		t.Errorf("second uniondiff delta = %v, want empty", d)
	}
}

func TestModifyByKey(t *testing.T) {
	// matrix(Row, Col, Val) updated by key (Row, Col), like SQL UPDATE.
	r := newRel(t, 3, IndexNever)
	r.Insert(it(1, 1, 10))
	r.Insert(it(1, 2, 20))
	r.Insert(it(2, 1, 30))
	r.ModifyByKey(0b011, []term.Tuple{it(1, 1, 99), it(3, 3, 7)})
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if !r.Contains(it(1, 1, 99)) || r.Contains(it(1, 1, 10)) {
		t.Error("ModifyByKey should replace matching-key tuple")
	}
	if !r.Contains(it(3, 3, 7)) {
		t.Error("ModifyByKey should insert tuple with fresh key")
	}
	if !r.Contains(it(1, 2, 20)) || !r.Contains(it(2, 1, 30)) {
		t.Error("ModifyByKey should leave other tuples alone")
	}
}

func TestAllAndSorted(t *testing.T) {
	r := newRel(t, 1, IndexNever)
	for _, v := range []int64{5, 1, 3} {
		r.Insert(it(v))
	}
	all := r.All()
	if len(all) != 3 {
		t.Errorf("All returned %d tuples", len(all))
	}
	sorted := Sorted(r)
	for i, want := range []int64{1, 3, 5} {
		if sorted[i][0].Int() != want {
			t.Errorf("Sorted[%d] = %v, want %d", i, sorted[i], want)
		}
	}
}

func TestQuickSetSemantics(t *testing.T) {
	// Property: a relation behaves as a set under any insert/delete
	// sequence, agreeing with a reference map implementation.
	type op struct {
		Insert bool
		A, B   int8
	}
	f := func(ops []op) bool {
		r := NewRelation(term.NewString("q"), 2, IndexAdaptive, nil)
		ref := map[[2]int8]bool{}
		for _, o := range ops {
			tp := it(int64(o.A), int64(o.B))
			k := [2]int8{o.A, o.B}
			if o.Insert {
				added := r.Insert(tp)
				if added == ref[k] {
					return false
				}
				ref[k] = true
			} else {
				removed := r.Delete(tp)
				if removed != ref[k] {
					return false
				}
				delete(ref, k)
			}
		}
		if r.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if !r.Contains(it(int64(k[0]), int64(k[1]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndexedLookupMatchesScan(t *testing.T) {
	// Property: for random data, an indexed lookup returns exactly the
	// tuples a filtered scan returns.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		indexed := NewRelation(term.NewString("a"), 2, IndexAlways, nil)
		plain := NewRelation(term.NewString("b"), 2, IndexNever, nil)
		for i := 0; i < 200; i++ {
			tp := it(int64(rng.Intn(10)), int64(rng.Intn(50)))
			indexed.Insert(tp)
			plain.Insert(tp.Clone())
		}
		for key := int64(0); key < 10; key++ {
			gather := func(r *Relation) map[int64]bool {
				out := map[int64]bool{}
				r.Lookup(0b01, it(key, 0), func(tp term.Tuple) bool {
					out[tp[1].Int()] = true
					return true
				})
				return out
			}
			a, b := gather(indexed), gather(plain)
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDistinctEstExact checks the per-column distinct estimates while the
// exact multiset is in range: inserts, duplicate values, deletes, and Clear
// must all be reflected precisely.
func TestDistinctEstExact(t *testing.T) {
	rel := NewRelation(term.NewString("d"), 2, IndexNever, &Stats{})
	for i := 0; i < 100; i++ {
		rel.Insert(term.Tuple{term.NewInt(int64(i % 5)), term.NewInt(int64(i))})
	}
	if got := rel.DistinctEst(0); got != 5 {
		t.Fatalf("DistinctEst(0) = %d, want 5", got)
	}
	if got := rel.DistinctEst(1); got != 100 {
		t.Fatalf("DistinctEst(1) = %d, want 100", got)
	}
	// Deleting one row of a duplicated value keeps the value counted;
	// deleting all rows with value 4 drops it.
	rel.Delete(term.Tuple{term.NewInt(0), term.NewInt(0)})
	if got := rel.DistinctEst(0); got != 5 {
		t.Fatalf("after one delete DistinctEst(0) = %d, want 5", got)
	}
	for i := 4; i < 100; i += 5 {
		rel.Delete(term.Tuple{term.NewInt(4), term.NewInt(int64(i))})
	}
	if got := rel.DistinctEst(0); got != 4 {
		t.Fatalf("after deleting value 4 DistinctEst(0) = %d, want 4", got)
	}
	rel.Clear()
	if got := rel.DistinctEst(0); got != 0 {
		t.Fatalf("after Clear DistinctEst(0) = %d, want 0", got)
	}
	if got := rel.DistinctEst(7); got != 0 {
		t.Fatalf("out-of-range column estimated %d, want 0", got)
	}
}

// TestDistinctEstSketch pushes a column past the exact limit and checks the
// linear-counting fallback stays within a loose relative error.
func TestDistinctEstSketch(t *testing.T) {
	rel := NewRelation(term.NewString("d"), 1, IndexNever, &Stats{})
	const n = 20000
	for i := 0; i < n; i++ {
		rel.Insert(term.Tuple{term.NewInt(int64(i))})
	}
	got := rel.DistinctEst(0)
	if got < n*8/10 || got > n*12/10 {
		t.Fatalf("sketch estimate %d for %d distinct values (want within 20%%)", got, n)
	}
}
