// Package storage implements the Glue-Nail relational back end described in
// §10 of the paper: a main-memory relation manager tailored to deductive
// database workloads. Relations are duplicate-free sets of ground tuples
// with hash-bucket storage, adaptive run-time index creation, a uniondiff
// operator supporting compiled recursive NAIL! queries, and disk persistence
// for EDB relations between runs.
//
// The package also provides a deliberately pessimized LayeredStore that
// simulates building the system on top of a protected relational DBMS
// (write-ahead logging, latching, catalog indirection per operation), the
// design the paper argues is a mistake for the hundreds of small short-lived
// temporaries a deductive program creates.
package storage

import (
	"sort"

	"gluenail/internal/term"
)

// IndexPolicy controls when a relation builds hash indexes for repeated
// column-subset lookups.
type IndexPolicy uint8

const (
	// IndexAdaptive builds an index on a column subset once the cumulative
	// cost of scanning for that subset reaches the cost of building the
	// index (§10: "an index could be created for a relation after the
	// cumulative cost of selection by scanning the relation reaches the
	// cost of creating the index").
	IndexAdaptive IndexPolicy = iota
	// IndexNever answers every lookup by scanning.
	IndexNever
	// IndexAlways builds an index on the first lookup for a column subset.
	IndexAlways
)

// adaptiveFactor scales the index build-cost estimate: with factor f, an
// index over a relation of n rows is built once roughly f*n rows have been
// scanned on its behalf.
const adaptiveFactor = 2

// Stats accumulates back-end counters; a Store shares one Stats across its
// relations so benchmarks can attribute work.
type Stats struct {
	RowsScanned   int64 // tuples visited by full scans
	RowsProbed    int64 // tuples returned through an index
	IndexBuilds   int64
	Inserts       int64
	Deletes       int64
	RelsCreated   int64
	RelsDropped   int64
	LogBytes      int64 // layered backend only
	LatchAcquires int64 // layered backend only
	CatalogProbes int64 // layered backend only
}

// Rel is the interface the executor uses to talk to a relation, satisfied by
// both the tailored main-memory implementation and the layered baseline.
type Rel interface {
	// Name returns the HiLog predicate name of the relation.
	Name() term.Value
	// Arity returns the number of columns.
	Arity() int
	// Len returns the number of tuples.
	Len() int
	// Version returns a counter bumped by every successful mutation; the
	// unchanged(P) builtin compares versions across loop iterations.
	Version() uint64
	// Insert adds t, reporting whether it was not already present. The
	// tuple is stored as given and must not be mutated afterwards.
	Insert(t term.Tuple) bool
	// Delete removes t, reporting whether it was present.
	Delete(t term.Tuple) bool
	// Contains reports membership.
	Contains(t term.Tuple) bool
	// Clear removes all tuples.
	Clear()
	// Scan visits every tuple until yield returns false. The relation must
	// not be mutated during the scan.
	Scan(yield func(term.Tuple) bool)
	// Lookup visits the tuples whose columns selected by mask equal the
	// corresponding columns of key. A zero mask degenerates to Scan.
	Lookup(mask uint32, key term.Tuple, yield func(term.Tuple) bool)
	// UnionDiff inserts every tuple of batch and returns the sub-batch of
	// tuples that were genuinely new — the delta needed by semi-naive
	// evaluation (§10's uniondiff operator).
	UnionDiff(batch []term.Tuple) []term.Tuple
	// ModifyByKey implements the +=[key] assignment: for each row, tuples
	// agreeing with it on the key columns (mask) are replaced by the row.
	ModifyByKey(mask uint32, rows []term.Tuple)
	// All returns a snapshot slice of the tuples in unspecified order.
	All() []term.Tuple
}

// Relation is the tailored main-memory implementation of Rel.
type Relation struct {
	name    term.Value
	arity   int
	buckets map[uint64][]term.Tuple
	n       int
	version uint64

	policy     IndexPolicy
	indexes    map[uint32]*hashIndex
	scanCredit map[uint32]int64
	stats      *Stats
}

type hashIndex struct {
	mask    uint32
	buckets map[uint64][]term.Tuple
}

// NewRelation creates an empty relation. stats may be nil.
func NewRelation(name term.Value, arity int, policy IndexPolicy, stats *Stats) *Relation {
	if stats == nil {
		stats = &Stats{}
	}
	return &Relation{
		name:    name,
		arity:   arity,
		buckets: make(map[uint64][]term.Tuple),
		policy:  policy,
		stats:   stats,
	}
}

// Name implements Rel.
func (r *Relation) Name() term.Value { return r.name }

// Arity implements Rel.
func (r *Relation) Arity() int { return r.arity }

// Len implements Rel.
func (r *Relation) Len() int { return r.n }

// Version implements Rel.
func (r *Relation) Version() uint64 { return r.version }

// Insert implements Rel.
func (r *Relation) Insert(t term.Tuple) bool {
	h := t.Hash()
	bucket := r.buckets[h]
	for _, u := range bucket {
		if u.Equal(t) {
			return false
		}
	}
	r.buckets[h] = append(bucket, t)
	r.n++
	r.version++
	r.stats.Inserts++
	for _, ix := range r.indexes {
		ix.add(t)
	}
	return true
}

// Delete implements Rel.
func (r *Relation) Delete(t term.Tuple) bool {
	h := t.Hash()
	bucket := r.buckets[h]
	for i, u := range bucket {
		if u.Equal(t) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket = bucket[:last]
			if len(bucket) == 0 {
				delete(r.buckets, h)
			} else {
				r.buckets[h] = bucket
			}
			r.n--
			r.version++
			r.stats.Deletes++
			for _, ix := range r.indexes {
				ix.remove(t)
			}
			return true
		}
	}
	return false
}

// Contains implements Rel.
func (r *Relation) Contains(t term.Tuple) bool {
	for _, u := range r.buckets[t.Hash()] {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

// Clear implements Rel.
func (r *Relation) Clear() {
	if r.n == 0 {
		return
	}
	r.buckets = make(map[uint64][]term.Tuple)
	r.n = 0
	r.version++
	r.indexes = nil
	r.scanCredit = nil
}

// Scan implements Rel.
func (r *Relation) Scan(yield func(term.Tuple) bool) {
	r.stats.RowsScanned += int64(r.n)
	for _, bucket := range r.buckets {
		for _, t := range bucket {
			if !yield(t) {
				return
			}
		}
	}
}

// fullMask returns the bitmask selecting every column of the relation.
func (r *Relation) fullMask() uint32 { return (uint32(1) << uint(r.arity)) - 1 }

// Lookup implements Rel. Depending on the index policy, a lookup is answered
// by an existing index, triggers index construction, or falls back to a
// scan while accruing scan credit toward adaptive construction.
func (r *Relation) Lookup(mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	if mask == 0 || r.n == 0 {
		r.Scan(yield)
		return
	}
	if mask == r.fullMask() {
		// Whole-tuple lookup: answer from the primary hash directly.
		r.stats.RowsProbed++
		for _, u := range r.buckets[key.Hash()] {
			if u.Equal(key) {
				if !yield(u) {
					return
				}
			}
		}
		return
	}
	if ix, ok := r.indexes[mask]; ok {
		r.probe(ix, mask, key, yield)
		return
	}
	build := false
	switch r.policy {
	case IndexAlways:
		build = true
	case IndexAdaptive:
		if r.scanCredit == nil {
			r.scanCredit = make(map[uint32]int64)
		}
		r.scanCredit[mask] += int64(r.n)
		build = r.scanCredit[mask] >= adaptiveFactor*int64(r.n)
	}
	if build {
		ix := r.buildIndex(mask)
		r.probe(ix, mask, key, yield)
		return
	}
	// Scan fallback with on-the-fly filtering.
	r.stats.RowsScanned += int64(r.n)
	for _, bucket := range r.buckets {
		for _, t := range bucket {
			if t.EqualCols(key, mask) {
				if !yield(t) {
					return
				}
			}
		}
	}
}

func (r *Relation) probe(ix *hashIndex, mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	for _, t := range ix.buckets[key.HashCols(mask)] {
		if t.EqualCols(key, mask) {
			r.stats.RowsProbed++
			if !yield(t) {
				return
			}
		}
	}
}

func (r *Relation) buildIndex(mask uint32) *hashIndex {
	ix := &hashIndex{mask: mask, buckets: make(map[uint64][]term.Tuple)}
	for _, bucket := range r.buckets {
		for _, t := range bucket {
			ix.add(t)
		}
	}
	if r.indexes == nil {
		r.indexes = make(map[uint32]*hashIndex)
	}
	r.indexes[mask] = ix
	r.stats.IndexBuilds++
	delete(r.scanCredit, mask)
	return ix
}

// HasIndex reports whether an index exists for the column mask; exported for
// tests and the adaptive-indexing experiment.
func (r *Relation) HasIndex(mask uint32) bool {
	_, ok := r.indexes[mask]
	return ok
}

func (ix *hashIndex) add(t term.Tuple) {
	h := t.HashCols(ix.mask)
	ix.buckets[h] = append(ix.buckets[h], t)
}

func (ix *hashIndex) remove(t term.Tuple) {
	h := t.HashCols(ix.mask)
	bucket := ix.buckets[h]
	for i, u := range bucket {
		if u.Equal(t) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket = bucket[:last]
			if len(bucket) == 0 {
				delete(ix.buckets, h)
			} else {
				ix.buckets[h] = bucket
			}
			return
		}
	}
}

// UnionDiff implements Rel.
func (r *Relation) UnionDiff(batch []term.Tuple) []term.Tuple {
	var delta []term.Tuple
	for _, t := range batch {
		if r.Insert(t) {
			delta = append(delta, t)
		}
	}
	return delta
}

// ModifyByKey implements Rel.
func (r *Relation) ModifyByKey(mask uint32, rows []term.Tuple) {
	for _, row := range rows {
		var victims []term.Tuple
		r.Lookup(mask, row, func(t term.Tuple) bool {
			victims = append(victims, t)
			return true
		})
		for _, v := range victims {
			r.Delete(v)
		}
		r.Insert(row)
	}
}

// All implements Rel.
func (r *Relation) All() []term.Tuple {
	out := make([]term.Tuple, 0, r.n)
	for _, bucket := range r.buckets {
		out = append(out, bucket...)
	}
	return out
}

// Sorted returns the tuples of rel in total order, for deterministic output.
func Sorted(rel Rel) []term.Tuple {
	out := rel.All()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
