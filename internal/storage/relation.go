// Package storage implements the Glue-Nail relational back end described in
// §10 of the paper: a main-memory relation manager tailored to deductive
// database workloads. Relations are duplicate-free sets of ground tuples
// with hash-bucket storage, adaptive run-time index creation, a uniondiff
// operator supporting compiled recursive NAIL! queries, and disk persistence
// for EDB relations between runs.
//
// Relations support any number of concurrent readers (Scan/Lookup/Contains,
// including adaptive index construction triggered by a Lookup) OR a single
// writer; readers and writers must not overlap. The executor guarantees
// this: segment pipelines only read, and all mutation happens at barriers
// and statement heads, which run sequentially.
//
// The package also provides a deliberately pessimized LayeredStore that
// simulates building the system on top of a protected relational DBMS
// (write-ahead logging, latching, catalog indirection per operation), the
// design the paper argues is a mistake for the hundreds of small short-lived
// temporaries a deductive program creates.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"gluenail/internal/term"
)

// IndexPolicy controls when a relation builds hash indexes for repeated
// column-subset lookups.
type IndexPolicy uint8

const (
	// IndexAdaptive builds an index on a column subset once the cumulative
	// cost of scanning for that subset reaches the cost of building the
	// index (§10: "an index could be created for a relation after the
	// cumulative cost of selection by scanning the relation reaches the
	// cost of creating the index").
	IndexAdaptive IndexPolicy = iota
	// IndexNever answers every lookup by scanning.
	IndexNever
	// IndexAlways builds an index on the first lookup for a column subset.
	IndexAlways
)

// adaptiveFactor scales the index build-cost estimate: with factor f, an
// index over a relation of n rows is built once roughly f*n rows have been
// scanned on its behalf.
const adaptiveFactor = 2

// Column-distinct tracking: each column keeps an exact multiset of value
// hashes while small, falling back to a fixed-size linear-counting sketch
// once the exact map outgrows distinctExactLimit. The estimates drive the
// physical planner's join-selectivity model, so they only need to be
// roughly right — the sketch ignores deletions (estimates may stay high
// until a Clear resets them), and 64-bit hash collisions conflate values
// at a negligible rate.
const (
	// distinctExactLimit caps the exact per-column hash→multiplicity map.
	distinctExactLimit = 256
	// sketchBits is the linear-counting bitmap size (bits) used past the
	// exact limit: estimate = -m·ln(zeroFraction), good to a few percent
	// up to ~m distinct values.
	sketchBits = 8192
)

// colStats estimates the number of distinct values in one column. Adds
// are buffered: the insert path only appends the value hash, and the
// map/sketch folding happens when an estimate (or a removal) actually
// needs the digest. Transient relations — query results, per-frame
// temporaries — are written once and never planned against, so they
// never pay for distinct tracking at all.
type colStats struct {
	pending []uint64          // hashes added since the last flush
	exact   map[uint64]uint32 // value hash -> multiplicity, while small
	sketch  []uint64          // linear-counting bitmap once exact overflows
	ones    int               // set bits in sketch
}

// pendingFlushLimit bounds the add buffer: a relation that is only ever
// written folds its backlog inline every so often instead of growing it
// without limit.
const pendingFlushLimit = 1024

func (c *colStats) add(h uint64) {
	c.pending = append(c.pending, h)
	if len(c.pending) >= pendingFlushLimit {
		c.flush()
	}
}

// flush folds the buffered hashes into the exact map or the sketch.
func (c *colStats) flush() {
	if len(c.pending) == 0 {
		return
	}
	for _, h := range c.pending {
		c.fold(h)
	}
	c.pending = c.pending[:0]
}

func (c *colStats) fold(h uint64) {
	if c.sketch == nil {
		if c.exact == nil {
			c.exact = make(map[uint64]uint32)
		}
		if _, ok := c.exact[h]; ok || len(c.exact) < distinctExactLimit {
			c.exact[h]++
			return
		}
		// Overflow: seed the sketch with the exact values, then fall through.
		c.sketch = make([]uint64, sketchBits/64)
		for eh := range c.exact {
			c.set(eh)
		}
		c.exact = nil
	}
	c.set(h)
}

// mix64 is the splitmix64 finalizer: FNV's low bits are too regular on
// short or sequential inputs for linear counting (the bitmap fills more
// evenly than random, inflating the estimate), so the bit position is
// drawn from a fully avalanched mix of the hash.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (c *colStats) set(h uint64) {
	bit := mix64(h) % sketchBits
	w, m := bit/64, uint64(1)<<(bit%64)
	if c.sketch[w]&m == 0 {
		c.sketch[w] |= m
		c.ones++
	}
}

func (c *colStats) remove(h uint64) {
	c.flush()
	if c.exact == nil {
		return // sketches cannot forget; Clear resets them
	}
	if n, ok := c.exact[h]; ok {
		if n <= 1 {
			delete(c.exact, h)
		} else {
			c.exact[h] = n - 1
		}
	}
}

// appendDigest serializes the column digest (flushing the pending buffer
// first): mode byte 0 = exact map (sorted hash/multiplicity pairs, so the
// encoding is deterministic), mode 1 = raw sketch bitmap. The disk
// engine's manifest persists these so reopening a store restores planner
// statistics without re-decoding every run.
func (c *colStats) appendDigest(dst []byte) []byte {
	c.flush()
	if c.sketch == nil {
		dst = append(dst, 0)
		dst = binary.AppendUvarint(dst, uint64(len(c.exact)))
		keys := make([]uint64, 0, len(c.exact))
		for h := range c.exact {
			keys = append(keys, h)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, h := range keys {
			dst = binary.AppendUvarint(dst, h)
			dst = binary.AppendUvarint(dst, uint64(c.exact[h]))
		}
		return dst
	}
	dst = append(dst, 1)
	for _, w := range c.sketch {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// readDigest restores a digest serialized by appendDigest, replacing the
// column's current state.
func (c *colStats) readDigest(r *bufio.Reader) error {
	mode, err := r.ReadByte()
	if err != nil {
		return err
	}
	*c = colStats{}
	switch mode {
	case 0:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		c.exact = make(map[uint64]uint32, n)
		for i := uint64(0); i < n; i++ {
			h, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			m, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			c.exact[h] = uint32(m)
		}
		return nil
	case 1:
		c.sketch = make([]uint64, sketchBits/64)
		var buf [8]byte
		for i := range c.sketch {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return err
			}
			c.sketch[i] = binary.LittleEndian.Uint64(buf[:])
			c.ones += bits.OnesCount64(c.sketch[i])
		}
		return nil
	}
	return fmt.Errorf("storage: bad digest mode %d", mode)
}

// estimate returns the distinct-value estimate for the column.
func (c *colStats) estimate() int {
	c.flush()
	if c.sketch == nil {
		return len(c.exact)
	}
	if c.ones >= sketchBits {
		return sketchBits // saturated; a gross underestimate, but bounded
	}
	zero := float64(sketchBits-c.ones) / float64(sketchBits)
	return int(-float64(sketchBits) * math.Log(zero))
}

// Stats accumulates back-end counters; a Store shares one Stats across its
// relations so benchmarks can attribute work. Counters are updated with
// atomic adds so concurrent readers can account their work; read a snapshot
// only after the work being measured has completed.
type Stats struct {
	RowsScanned   int64 // tuples visited by full scans
	RowsProbed    int64 // tuples returned through an index
	IndexBuilds   int64
	Inserts       int64
	Deletes       int64
	RelsCreated   int64
	RelsDropped   int64
	LogBytes      int64 // layered backend only
	LatchAcquires int64 // layered backend only
	CatalogProbes int64 // layered backend only
	RunsFlushed   int64 // disk backend: memtables written out as runs
	RunsCompacted int64 // disk backend: runs replaced by merged runs
	BlocksRead    int64 // disk backend: run blocks fetched from disk (cache misses)
	RowsSpilled   int64 // disk backend: rows written to run files
	CacheHits     int64 // disk backend: block reads served by the decoded-block cache
	BloomChecks   int64 // disk backend: run membership probes screened by a bloom filter
	BloomSkips    int64 // disk backend: probes a bloom answered "absent" (no run I/O)
	RunIndexLoads int64 // disk backend: lazy run hash-index loads after reopen
	BulkRows      int64 // disk backend: rows ingested via the WAL-bypassing bulk path
}

// TuplesInserted returns the cumulative insert count with an atomic load,
// so the execution governor can poll the tuple budget from morsel workers
// while other goroutines account their inserts.
func (s *Stats) TuplesInserted() int64 {
	return atomic.LoadInt64(&s.Inserts)
}

// Rel is the interface the executor uses to talk to a relation, satisfied by
// both the tailored main-memory implementation and the layered baseline.
type Rel interface {
	// Name returns the HiLog predicate name of the relation.
	Name() term.Value
	// Arity returns the number of columns.
	Arity() int
	// Len returns the number of tuples.
	Len() int
	// Version returns a counter bumped by every successful mutation; the
	// unchanged(P) builtin compares versions across loop iterations.
	Version() uint64
	// Insert adds t, reporting whether it was not already present. The
	// tuple is stored as given and must not be mutated afterwards.
	Insert(t term.Tuple) bool
	// Delete removes t, reporting whether it was present.
	Delete(t term.Tuple) bool
	// Contains reports membership.
	Contains(t term.Tuple) bool
	// Clear removes all tuples.
	Clear()
	// Scan visits every tuple until yield returns false. The relation must
	// not be mutated during the scan.
	Scan(yield func(term.Tuple) bool)
	// Lookup visits the tuples whose columns selected by mask equal the
	// corresponding columns of key. A zero mask degenerates to Scan.
	// Lookups from multiple goroutines are safe with each other (but not
	// with a concurrent writer).
	Lookup(mask uint32, key term.Tuple, yield func(term.Tuple) bool)
	// PrepareRead gives the relation advance notice that about `lookups`
	// Lookup calls with the given bound-column mask are imminent, possibly
	// from concurrent readers. The relation applies its index policy up
	// front, so a decided index is built once, sequentially, before the
	// readers fan out rather than racing them.
	PrepareRead(mask uint32, lookups int)
	// DistinctEst estimates the number of distinct values in column col —
	// exact while the column holds few distinct values, a fixed-size
	// sketch estimate beyond that. The physical planner reads it at
	// statement-prepare time (never concurrently with a writer, per the
	// reader/writer contract above).
	DistinctEst(col int) int
	// StatsEpoch returns a counter that advances whenever the relation's
	// statistics change *materially*: the cardinality roughly doubles or
	// halves since the last epoch, or the relation is cleared. Unlike
	// Version (bumped on every mutation), the epoch is stable across the
	// small deltas of a repeat loop's steady state, so the prepared-plan
	// cache can key plans on it without invalidating on every insert.
	StatsEpoch() uint64
	// UnionDiff inserts every tuple of batch and returns the sub-batch of
	// tuples that were genuinely new — the delta needed by semi-naive
	// evaluation (§10's uniondiff operator).
	UnionDiff(batch []term.Tuple) []term.Tuple
	// ModifyByKey implements the +=[key] assignment: for each row, tuples
	// agreeing with it on the key columns (mask) are replaced by the row.
	ModifyByKey(mask uint32, rows []term.Tuple)
	// All returns a snapshot slice of the tuples in insertion order.
	All() []term.Tuple
}

// Relation is the tailored main-memory implementation of Rel. Tuples live
// in an insertion-ordered slice; the hash buckets hold indices into it.
// Scans, lookups, and index builds all walk insertion order, so every
// enumeration is deterministic run to run — which keeps order-sensitive
// downstream work (floating-point aggregation, golden output) reproducible
// regardless of Go's randomized map iteration.
//
// Multi-version visibility: a deleted tuple is not removed from the slice
// immediately — its slot is stamped with the commit sequence number (CSN)
// of the deleting statement in the parallel dead slice and unlinked from
// its hash chain. The live view (this type's own methods) treats any
// nonzero stamp as gone; a SnapRel captured at snapshot CSN S still sees
// slots stamped dead at a CSN > S. Because snapshots capture slice
// headers and every structural rewrite (compact, Clear) builds fresh
// backing arrays, a snapshot keeps reading its own frozen arrays while
// the writer moves on — copy-on-write through the garbage collector, with
// the dead stamps as the only shared mutable cells (written and read
// atomically).
type Relation struct {
	name   term.Value
	arity  int
	tuples []term.Tuple // insertion order; dead-stamped entries are tombstones
	// hashes caches each tuple's whole-tuple hash, parallel to tuples:
	// computed once at Insert and reused by compaction, chain probes, and
	// anything else that would otherwise re-hash stored rows. A
	// tombstone's slot keeps its stale hash; live paths never read it
	// (tombstones are unlinked from their chain and skipped via the dead
	// stamp), while snapshots still use it to probe slots live in their
	// version. Only the single writer appends, like tuples itself.
	hashes []uint64
	// dead stamps each slot with the CSN at which it was deleted (0 =
	// live), parallel to tuples. The single writer stores stamps with
	// atomic writes and concurrent snapshot readers load them atomically;
	// the live paths below read them plainly — they never overlap the
	// writer by the Rel contract.
	dead []uint64
	// csn, when non-nil, points at the owning store's commit sequence
	// number: deletions are stamped csn+1, the CSN the statement in
	// flight will commit as. A standalone relation (nil csn) stamps
	// deadForever — correct for a relation that is never snapshotted.
	csn *atomic.Uint64
	// buckets chains tuples by whole-tuple hash without per-bucket slice
	// allocations: buckets[h] holds slot+1 of the most recently inserted
	// tuple hashing to h (0 = none), and next[i] holds the slot+1 of the
	// previous same-hash tuple — an intrusive chain through the parallel
	// next slice. Slots are int32 (a relation holds < 2^31 tuples).
	buckets map[uint64]int32
	next    []int32
	n       int // live tuples
	tombs   int // dead-stamped slots in tuples
	version uint64
	// statsEpoch/epochRows implement Rel.StatsEpoch: epochRows remembers
	// the cardinality at the last epoch bump, and mutations advance the
	// epoch once the live count doubles past it or falls below half of it.
	// The thresholds are geometric, so a relation growing to n rows bumps
	// O(log n) times — repeat-loop steady states keep their epoch. The
	// counter is written and read atomically: snapshot sessions plan
	// against live statistics while the writer mutates.
	statsEpoch atomic.Uint64
	epochRows  int

	policy IndexPolicy
	stats  *Stats
	// journal, when non-nil, observes successful mutations (WAL capture);
	// set through Store.SetJournal while no mutation is in flight.
	journal Journal
	// cols tracks per-column distinct-value estimates, maintained by the
	// (single) writer on Insert/Delete/Clear and read by the physical
	// planner. statsMu guards the digest on both sides: DistinctEst folds
	// the lazily buffered adds, and snapshot sessions may be estimating
	// while the writer appends — the writer takes the mutex once per
	// mutated tuple, the planner once per estimate.
	cols    []colStats
	statsMu sync.Mutex

	// mu guards indexes, scanCredit, and onces so concurrent Lookups can
	// share adaptive-index state. The write lock is held only for the
	// short bookkeeping sections, never across a scan or an index build;
	// builds are serialized per mask through onces so exactly one reader
	// constructs an index while the others either wait on the Once or
	// fall back to scanning. Scan-cost credit itself accumulates in atomic
	// counters (mu only guards the map holding them), so concurrent morsel
	// readers charge credit without losing or double-counting updates.
	mu         sync.RWMutex
	indexes    map[uint32]*hashIndex
	scanCredit map[uint32]*atomic.Int64
	onces      map[uint32]*sync.Once
}

type hashIndex struct {
	mask    uint32
	buckets map[uint64][]term.Tuple
}

// NewRelation creates an empty relation. stats may be nil.
func NewRelation(name term.Value, arity int, policy IndexPolicy, stats *Stats) *Relation {
	if stats == nil {
		stats = &Stats{}
	}
	return &Relation{
		name:    name,
		arity:   arity,
		buckets: make(map[uint64]int32),
		policy:  policy,
		stats:   stats,
		cols:    make([]colStats, arity),
	}
}

// Name implements Rel.
func (r *Relation) Name() term.Value { return r.name }

// Arity implements Rel.
func (r *Relation) Arity() int { return r.arity }

// Len implements Rel.
func (r *Relation) Len() int { return r.n }

// Version implements Rel.
func (r *Relation) Version() uint64 { return r.version }

// StatsEpoch implements Rel.
func (r *Relation) StatsEpoch() uint64 { return r.statsEpoch.Load() }

// noteEpoch advances the statistics epoch when the live tuple count has
// doubled past — or fallen below half of — the count recorded at the last
// bump. Called by the (single) writer after every cardinality change.
func (r *Relation) noteEpoch() {
	if r.n > 2*r.epochRows || 2*r.n < r.epochRows {
		r.statsEpoch.Add(1)
		r.epochRows = r.n
	}
}

// DistinctEst implements Rel.
func (r *Relation) DistinctEst(col int) int {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	if col < 0 || col >= len(r.cols) {
		return 0
	}
	return r.cols[col].estimate()
}

// deadForever marks a slot deleted in every version; stamped when the
// relation has no CSN source (standalone relations are never snapshotted,
// so any nonzero stamp works — this one also reads correctly if they are).
const deadForever = ^uint64(0)

// deadStamp returns the CSN to stamp a deletion with: the CSN the
// statement in flight will commit as (one past the last committed CSN).
func (r *Relation) deadStamp() uint64 {
	if r.csn != nil {
		return r.csn.Load() + 1
	}
	return deadForever
}

// deadAt reports whether slot i is dead in the live view (writer-side
// plain read; never concurrent with the stamping writer).
func (r *Relation) deadAt(i int) bool { return r.dead[i] != 0 }

// Insert implements Rel.
func (r *Relation) Insert(t term.Tuple) bool {
	if t == nil {
		t = term.Tuple{} // nil is reserved for tombstones
	}
	h := t.Hash()
	for i := r.buckets[h]; i != 0; i = r.next[i-1] {
		if u := r.tuples[i-1]; u != nil && u.Equal(t) {
			return false
		}
	}
	r.next = append(r.next, r.buckets[h])
	r.buckets[h] = int32(len(r.tuples)) + 1
	r.tuples = append(r.tuples, t)
	r.hashes = append(r.hashes, h)
	r.dead = append(r.dead, 0)
	r.n++
	r.version++
	r.noteEpoch()
	r.statsMu.Lock()
	for i := range t {
		if i < len(r.cols) {
			r.cols[i].add(t[i].Hash())
		}
	}
	r.statsMu.Unlock()
	atomic.AddInt64(&r.stats.Inserts, 1)
	for _, ix := range r.indexes {
		ix.add(t)
	}
	if r.journal != nil {
		r.journal.JournalInsert(r.name, r.arity, t)
	}
	return true
}

// Delete implements Rel. The tuple's slot is stamped dead at the current
// CSN so the insertion order of the survivors — and the tuple's visibility
// to older snapshots — is preserved; the slice compacts (into fresh
// backing arrays, leaving snapshots undisturbed) when tombstones outnumber
// live tuples.
func (r *Relation) Delete(t term.Tuple) bool {
	h := t.Hash()
	prev := int32(0)
	for i := r.buckets[h]; i != 0; prev, i = i, r.next[i-1] {
		u := r.tuples[i-1]
		if u == nil || !u.Equal(t) {
			continue
		}
		// Stamp, don't null: snapshots captured before this statement's
		// commit CSN still read the slot. Atomic because they may be
		// loading the stamp right now.
		atomic.StoreUint64(&r.dead[i-1], r.deadStamp())
		r.tombs++
		// Unlink the slot from its hash chain.
		if prev == 0 {
			if r.next[i-1] == 0 {
				delete(r.buckets, h)
			} else {
				r.buckets[h] = r.next[i-1]
			}
		} else {
			r.next[prev-1] = r.next[i-1]
		}
		r.n--
		r.version++
		r.noteEpoch()
		r.statsMu.Lock()
		for ci := range u {
			if ci < len(r.cols) {
				r.cols[ci].remove(u[ci].Hash())
			}
		}
		r.statsMu.Unlock()
		atomic.AddInt64(&r.stats.Deletes, 1)
		for _, ix := range r.indexes {
			ix.remove(u)
		}
		if r.tombs > r.n && r.tombs > 32 {
			r.compact()
		}
		if r.journal != nil {
			r.journal.JournalDelete(r.name, r.arity, u)
		}
		return true
	}
	return false
}

// compact rewrites the tuple slice without tombstones and rebuilds the
// buckets; survivor order is unchanged. Runs only from a writer. Every
// slice is rebuilt from scratch — snapshots holding the old backing
// arrays keep reading them until the garbage collector reclaims the
// memory once the last snapshot closes.
func (r *Relation) compact() {
	live := make([]term.Tuple, 0, r.n)
	liveHashes := make([]uint64, 0, r.n)
	liveDead := make([]uint64, 0, r.n)
	next := make([]int32, 0, r.n)
	buckets := make(map[uint64]int32, r.n)
	for i, t := range r.tuples {
		if t == nil || r.deadAt(i) {
			continue
		}
		h := r.hashes[i] // cached at Insert; no re-hashing on compaction
		next = append(next, buckets[h])
		buckets[h] = int32(len(live)) + 1
		live = append(live, t)
		liveHashes = append(liveHashes, h)
		liveDead = append(liveDead, 0)
	}
	r.tuples = live
	r.hashes = liveHashes
	r.dead = liveDead
	r.next = next
	r.buckets = buckets
	r.tombs = 0
}

// Contains implements Rel.
func (r *Relation) Contains(t term.Tuple) bool {
	for i := r.buckets[t.Hash()]; i != 0; i = r.next[i-1] {
		if u := r.tuples[i-1]; u != nil && u.Equal(t) {
			return true
		}
	}
	return false
}

// Clear implements Rel. The backing arrays are dropped, not zeroed:
// snapshots captured before the clear keep their headers and stay whole.
func (r *Relation) Clear() {
	if r.n == 0 {
		return
	}
	r.tuples = nil
	r.hashes = nil
	r.dead = nil
	r.next = nil
	r.buckets = make(map[uint64]int32)
	r.n = 0
	r.tombs = 0
	r.version++
	// Clear always opens a new epoch: every cached plan over this relation
	// was derived from statistics that no longer describe anything.
	r.statsEpoch.Add(1)
	r.epochRows = 0
	r.statsMu.Lock()
	r.cols = make([]colStats, r.arity)
	r.statsMu.Unlock()
	r.mu.Lock()
	r.indexes = nil
	r.scanCredit = nil
	r.onces = nil
	r.mu.Unlock()
	if r.journal != nil {
		r.journal.JournalClear(r.name, r.arity)
	}
}

// Scan implements Rel; tuples are visited in insertion order.
func (r *Relation) Scan(yield func(term.Tuple) bool) {
	atomic.AddInt64(&r.stats.RowsScanned, int64(r.n))
	for i, t := range r.tuples {
		if t == nil || r.deadAt(i) {
			continue
		}
		if !yield(t) {
			return
		}
	}
}

// fullMask returns the bitmask selecting every column of the relation.
func (r *Relation) fullMask() uint32 { return (uint32(1) << uint(r.arity)) - 1 }

// Lookup implements Rel. Depending on the index policy, a lookup is answered
// by an existing index, triggers index construction, or falls back to a
// scan while accruing scan credit toward adaptive construction.
func (r *Relation) Lookup(mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	if mask == 0 || r.n == 0 {
		r.Scan(yield)
		return
	}
	if mask == r.fullMask() {
		// Whole-tuple lookup: answer from the primary hash chain directly.
		atomic.AddInt64(&r.stats.RowsProbed, 1)
		for i := r.buckets[key.Hash()]; i != 0; i = r.next[i-1] {
			if u := r.tuples[i-1]; u != nil && u.Equal(key) {
				if !yield(u) {
					return
				}
			}
		}
		return
	}
	ix := r.index(mask)
	if ix == nil {
		if once := r.creditScan(mask, 1); once != nil {
			once.Do(func() { r.publishIndex(mask) })
			ix = r.index(mask)
		}
	}
	if ix != nil {
		r.probe(ix, mask, key, yield)
		return
	}
	// Scan fallback with on-the-fly filtering, in insertion order.
	atomic.AddInt64(&r.stats.RowsScanned, int64(r.n))
	for i, t := range r.tuples {
		if t != nil && !r.deadAt(i) && t.EqualCols(key, mask) {
			if !yield(t) {
				return
			}
		}
	}
}

// PrepareRead implements Rel: it pre-pays the adaptive accounting for
// `lookups` imminent Lookup calls on mask and builds the index now if the
// policy decides it should exist. Called sequentially at the boundary of a
// parallel section so concurrent readers find a published index instead of
// racing to construct one mid-scan.
func (r *Relation) PrepareRead(mask uint32, lookups int) {
	if mask == 0 || mask == r.fullMask() || r.n == 0 || lookups <= 0 {
		return
	}
	if ix := r.index(mask); ix != nil {
		return
	}
	if once := r.creditScan(mask, int64(lookups)); once != nil {
		once.Do(func() { r.publishIndex(mask) })
	}
}

// index returns the published index for mask, if any.
func (r *Relation) index(mask uint32) *hashIndex {
	r.mu.RLock()
	ix := r.indexes[mask]
	r.mu.RUnlock()
	return ix
}

// creditScan charges `scans` full scans' worth of rows toward adaptive
// index construction on mask. When the policy decides the index should now
// exist it returns the per-mask build guard; nil means keep scanning. The
// credit itself lives in an atomic counter, so concurrent morsel readers
// accrue it without losing or double-counting updates; mu is held only to
// look up or install the counter and the build guard.
func (r *Relation) creditScan(mask uint32, scans int64) *sync.Once {
	r.mu.RLock()
	if _, ok := r.indexes[mask]; ok {
		// Published while we were deciding: return the (completed) build
		// guard so the caller re-reads the index instead of rebuilding.
		once := r.onces[mask]
		r.mu.RUnlock()
		return once
	}
	c := r.scanCredit[mask]
	r.mu.RUnlock()
	switch r.policy {
	case IndexNever:
		return nil
	case IndexAlways:
		return r.buildGuard(mask)
	}
	if c == nil {
		r.mu.Lock()
		if c = r.scanCredit[mask]; c == nil {
			if r.scanCredit == nil {
				r.scanCredit = make(map[uint32]*atomic.Int64)
			}
			c = new(atomic.Int64)
			r.scanCredit[mask] = c
		}
		r.mu.Unlock()
	}
	if c.Add(scans*int64(r.n)) >= adaptiveFactor*int64(r.n) {
		return r.buildGuard(mask)
	}
	return nil
}

// buildGuard returns the per-mask sync.Once that serializes index builds,
// creating it if needed. If the index was published meanwhile, the existing
// (completed) guard is returned so callers re-read instead of rebuilding.
func (r *Relation) buildGuard(mask uint32) *sync.Once {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.onces == nil {
		r.onces = make(map[uint32]*sync.Once)
	}
	once := r.onces[mask]
	if once == nil {
		once = new(sync.Once)
		r.onces[mask] = once
	}
	return once
}

// publishIndex builds the index over the current tuples and publishes it.
// The tuple slice is read without the lock: builds run only while readers,
// never writers, are active. Exactly one goroutine runs this per mask (the
// sync.Once in creditScan), so the build itself is single-threaded. The
// build walks insertion order, so index probes also enumerate matches in
// insertion order — the same order a scan would yield them.
func (r *Relation) publishIndex(mask uint32) {
	ix := &hashIndex{mask: mask, buckets: make(map[uint64][]term.Tuple, len(r.buckets))}
	for i, t := range r.tuples {
		if t != nil && !r.deadAt(i) {
			ix.add(t)
		}
	}
	atomic.AddInt64(&r.stats.IndexBuilds, 1)
	r.mu.Lock()
	if r.indexes == nil {
		r.indexes = make(map[uint32]*hashIndex)
	}
	r.indexes[mask] = ix
	delete(r.scanCredit, mask)
	r.mu.Unlock()
}

func (r *Relation) probe(ix *hashIndex, mask uint32, key term.Tuple, yield func(term.Tuple) bool) {
	for _, t := range ix.buckets[key.HashCols(mask)] {
		if t.EqualCols(key, mask) {
			atomic.AddInt64(&r.stats.RowsProbed, 1)
			if !yield(t) {
				return
			}
		}
	}
}

// HasIndex reports whether an index exists for the column mask; exported for
// tests and the adaptive-indexing experiment.
func (r *Relation) HasIndex(mask uint32) bool {
	return r.index(mask) != nil
}

func (ix *hashIndex) add(t term.Tuple) {
	h := t.HashCols(ix.mask)
	ix.buckets[h] = append(ix.buckets[h], t)
}

func (ix *hashIndex) remove(t term.Tuple) {
	h := t.HashCols(ix.mask)
	bucket := ix.buckets[h]
	for i, u := range bucket {
		if u.Equal(t) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket = bucket[:last]
			if len(bucket) == 0 {
				delete(ix.buckets, h)
			} else {
				ix.buckets[h] = bucket
			}
			return
		}
	}
}

// UnionDiff implements Rel.
func (r *Relation) UnionDiff(batch []term.Tuple) []term.Tuple {
	var delta []term.Tuple
	for _, t := range batch {
		if r.Insert(t) {
			delta = append(delta, t)
		}
	}
	return delta
}

// ModifyByKey implements Rel.
func (r *Relation) ModifyByKey(mask uint32, rows []term.Tuple) {
	for _, row := range rows {
		var victims []term.Tuple
		r.Lookup(mask, row, func(t term.Tuple) bool {
			victims = append(victims, t)
			return true
		})
		for _, v := range victims {
			r.Delete(v)
		}
		r.Insert(row)
	}
}

// All implements Rel; the snapshot is in insertion order.
func (r *Relation) All() []term.Tuple {
	out := make([]term.Tuple, 0, r.n)
	for i, t := range r.tuples {
		if t != nil && !r.deadAt(i) {
			out = append(out, t)
		}
	}
	return out
}

// Sorted returns the tuples of rel in total order, for deterministic output.
func Sorted(rel Rel) []term.Tuple {
	out := rel.All()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
