package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

func name(s string) term.Value { return term.NewString(s) }

func tup(vals ...int64) term.Tuple {
	t := make(term.Tuple, len(vals))
	for i, v := range vals {
		t[i] = term.NewInt(v)
	}
	return t
}

// dump serializes a store deterministically for state comparison.
func dump(t *testing.T, st storage.Store) string {
	t.Helper()
	var buf bytes.Buffer
	if err := storage.Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func newStore() *storage.MemStore { return storage.NewMemStore(storage.IndexAdaptive) }

func TestCommitReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := newStore()
	log, err := Open(dir, st, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	st.SetJournal(rec)

	edge := st.Ensure(name("edge"), 2)
	edge.Insert(tup(1, 2))
	edge.Insert(tup(2, 3))
	if err := log.Commit(rec.Take()); err != nil {
		t.Fatal(err)
	}
	st.Ensure(name("node"), 1).Insert(tup(7))
	edge.Delete(tup(1, 2))
	if err := log.Commit(rec.Take()); err != nil {
		t.Fatal(err)
	}
	st.Ensure(name("scratch"), 1).Insert(tup(9))
	rel, _ := st.Get(name("scratch"), 1)
	rel.Clear()
	if err := log.Commit(rec.Take()); err != nil {
		t.Fatal(err)
	}
	want := dump(t, st)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := newStore()
	log2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if got := dump(t, st2); got != want {
		t.Errorf("recovered store differs:\ngot  %q\nwant %q", got, want)
	}
}

func TestHiLogNamesAndValuesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := newStore()
	log, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	st.SetJournal(rec)
	set := term.Atom("students", term.NewString("cs99"))
	st.Ensure(set, 1).Insert(term.Tuple{term.NewFloat(2.5)})
	st.Ensure(set, 1).Insert(term.Tuple{term.Atom("pair", term.NewInt(1), term.NewString("x"))})
	if err := log.Commit(rec.Take()); err != nil {
		t.Fatal(err)
	}
	want := dump(t, st)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := newStore()
	log2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if got := dump(t, st2); got != want {
		t.Errorf("HiLog round trip differs:\ngot  %q\nwant %q", got, want)
	}
}

func TestCheckpointRotatesGeneration(t *testing.T) {
	dir := t.TempDir()
	st := newStore()
	log, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	st.SetJournal(rec)
	st.Ensure(name("r"), 1).Insert(tup(1))
	if err := log.Commit(rec.Take()); err != nil {
		t.Fatal(err)
	}
	if err := log.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint commits land in the new segment.
	st.Ensure(name("r"), 1).Insert(tup(2))
	if err := log.Commit(rec.Take()); err != nil {
		t.Fatal(err)
	}
	want := dump(t, st)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, wals, _, err := scanDir(fsio.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != 2 || len(wals) != 1 || wals[0] != 2 {
		t.Errorf("after checkpoint want generation 2 only, got snaps %v wals %v", snaps, wals)
	}

	st2 := newStore()
	log2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if got := dump(t, st2); got != want {
		t.Errorf("post-checkpoint recovery differs:\ngot  %q\nwant %q", got, want)
	}
}

func TestShouldCheckpointThreshold(t *testing.T) {
	dir := t.TempDir()
	st := newStore()
	log, err := Open(dir, st, Options{CheckpointBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if !log.ShouldCheckpoint() {
		t.Error("threshold 1 should trigger immediately (header already exceeds it)")
	}
	log2dir := t.TempDir()
	log2, err := Open(log2dir, newStore(), Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if log2.ShouldCheckpoint() {
		t.Error("negative threshold must disable automatic checkpoints")
	}
}

func TestRecorderCoalescesBatches(t *testing.T) {
	rec := NewRecorder()
	rec.JournalCreate(name("r"), 2)
	rec.JournalInsert(name("r"), 2, tup(1, 1))
	rec.JournalInsert(name("r"), 2, tup(2, 2))
	rec.JournalDelete(name("r"), 2, tup(1, 1))
	rec.JournalInsert(name("r"), 2, tup(3, 3))
	ops := rec.Take()
	kinds := []OpKind{OpCreate, OpInsert, OpDelete, OpInsert}
	if len(ops) != len(kinds) {
		t.Fatalf("got %d ops, want %d (%+v)", len(ops), len(kinds), ops)
	}
	for i, k := range kinds {
		if ops[i].Kind != k {
			t.Errorf("op %d kind %d, want %d", i, ops[i].Kind, k)
		}
	}
	if len(ops[1].Tuples) != 2 {
		t.Errorf("adjacent same-relation inserts should coalesce: got %d tuples", len(ops[1].Tuples))
	}
	if rec.Pending() != 0 {
		t.Error("Take must drain the recorder")
	}
}

func TestForeignFileRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName(1)), []byte("not a wal, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, newStore(), Options{}); err == nil {
		t.Fatal("opening a directory with a foreign wal-1 file must fail")
	}
}

func TestCorruptSnapshotRefusedWithActionableError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapName(3)), []byte("garbage snapshot bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, newStore(), Options{})
	if err == nil {
		t.Fatal("corrupt snapshot must refuse recovery")
	}
	for _, wantSub := range []string{snapName(3), "restore"} {
		if !bytes.Contains([]byte(err.Error()), []byte(wantSub)) {
			t.Errorf("error %q should mention %q", err, wantSub)
		}
	}
}

func TestStrayLogSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	st := newStore()
	log, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
	// A segment newer than every snapshot (other than the initial one)
	// cannot come from a crash of the protocol.
	if err := os.WriteFile(filepath.Join(dir, walName(5)), walMagic, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, newStore(), Options{}); err == nil {
		t.Fatal("wal-5 without snap-5 must refuse recovery")
	}
}

func TestFsyncModesCommitDurably(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncNever} {
		dir := t.TempDir()
		st := newStore()
		log, err := Open(dir, st, Options{Fsync: mode})
		if err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder()
		st.SetJournal(rec)
		st.Ensure(name("r"), 1).Insert(tup(int64(mode)))
		if err := log.Commit(rec.Take()); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		want := dump(t, st)
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		st2 := newStore()
		log2, err := Open(dir, st2, Options{})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if got := dump(t, st2); got != want {
			t.Errorf("mode %v: recovered store differs", mode)
		}
		log2.Close()
	}
}

func TestClosedLogRefusesOperations(t *testing.T) {
	dir := t.TempDir()
	st := newStore()
	log, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Errorf("double close should be a no-op, got %v", err)
	}
	if err := log.Commit([]Op{{Kind: OpCreate, Name: name("r"), Arity: 1}}); err != ErrClosed {
		t.Errorf("Commit on closed log: got %v, want ErrClosed", err)
	}
	if err := log.Checkpoint(st); err != ErrClosed {
		t.Errorf("Checkpoint on closed log: got %v, want ErrClosed", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	st := newStore()
	st.Ensure(name("edge"), 2).Insert(tup(1, 2))
	st.Ensure(name("empty"), 3)
	path := filepath.Join(t.TempDir(), "snap.gns")
	if err := WriteSnapshot(path, st); err != nil {
		t.Fatal(err)
	}
	st2 := newStore()
	if err := ReadSnapshot(path, st2); err != nil {
		t.Fatal(err)
	}
	if got, want := dump(t, st2), dump(t, st); got != want {
		t.Errorf("snapshot round trip differs:\ngot  %q\nwant %q", got, want)
	}
	if _, ok := st2.Get(name("empty"), 3); !ok {
		t.Error("empty relations must survive snapshots")
	}
}
