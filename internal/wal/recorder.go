package wal

import (
	"sync"

	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// Recorder implements storage.Journal: it captures the EDB deltas of the
// statement in flight, coalescing runs of same-kind mutations on one
// relation into tuple batches while preserving overall mutation order.
// At a commit point the executor drains it with Take and hands the batch
// to Log.Commit.
type Recorder struct {
	mu  sync.Mutex
	ops []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

var _ storage.Journal = (*Recorder)(nil)

// JournalCreate implements storage.Journal.
func (r *Recorder) JournalCreate(name term.Value, arity int) {
	r.mu.Lock()
	r.ops = append(r.ops, Op{Kind: OpCreate, Name: name, Arity: arity})
	r.mu.Unlock()
}

// JournalClear implements storage.Journal.
func (r *Recorder) JournalClear(name term.Value, arity int) {
	r.mu.Lock()
	r.ops = append(r.ops, Op{Kind: OpClear, Name: name, Arity: arity})
	r.mu.Unlock()
}

// JournalInsert implements storage.Journal.
func (r *Recorder) JournalInsert(name term.Value, arity int, t term.Tuple) {
	r.add(OpInsert, name, arity, t)
}

// JournalDelete implements storage.Journal.
func (r *Recorder) JournalDelete(name term.Value, arity int, t term.Tuple) {
	r.add(OpDelete, name, arity, t)
}

func (r *Recorder) add(kind OpKind, name term.Value, arity int, t term.Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.ops); n > 0 {
		last := &r.ops[n-1]
		if last.Kind == kind && last.Arity == arity && last.Name.Equal(name) {
			last.Tuples = append(last.Tuples, t)
			return
		}
	}
	r.ops = append(r.ops, Op{Kind: kind, Name: name, Arity: arity, Tuples: []term.Tuple{t}})
}

// Take drains and returns the captured deltas in mutation order.
func (r *Recorder) Take() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops := r.ops
	r.ops = nil
	return ops
}

// Discard drops the deltas captured since the last Take. The executor's
// abort hook calls it when a top-level statement fails or is cancelled
// mid-flight: without the discard, the dead statement's partial deltas
// would ride along into the next statement's commit batch, and recovery
// would no longer land on a statement-boundary prefix.
func (r *Recorder) Discard() {
	r.mu.Lock()
	r.ops = nil
	r.mu.Unlock()
}

// Pending returns the number of captured, not-yet-taken delta batches.
func (r *Recorder) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
