package wal

// Fault-injection harness ("walfault"): simulate a crash at every byte
// boundary of the log — and at every phase of the checkpoint protocol —
// and prove recovery always converges to a statement-boundary prefix of
// the committed workload, never a torn state.

import (
	"os"
	"path/filepath"
	"testing"

	"gluenail/internal/storage"
	"gluenail/internal/term"
)

// faultWorkload is the scripted sequence of committed statements. Each
// step mutates the store through the journal and is sealed by one Commit,
// so each step is one statement boundary. Every step changes visible
// state, keeping the prefix states pairwise distinct (a stronger check).
var faultWorkload = []func(st storage.Store){
	func(st storage.Store) {
		e := st.Ensure(name("edge"), 2)
		e.Insert(tup(1, 2))
		e.Insert(tup(2, 3))
		e.Insert(tup(3, 4))
	},
	func(st storage.Store) {
		st.Ensure(name("node"), 1).Insert(term.Tuple{term.NewString("α-node")})
	},
	func(st storage.Store) {
		e, _ := st.Get(name("edge"), 2)
		e.Delete(tup(2, 3))
		e.Insert(tup(9, 9))
	},
	func(st storage.Store) {
		st.Ensure(name("w"), 1).Insert(term.Tuple{term.NewFloat(2.5)})
		st.Ensure(name("w"), 1).Insert(term.Tuple{term.Atom("f", term.NewInt(1))})
	},
	func(st storage.Store) {
		w, _ := st.Get(name("w"), 1)
		w.Clear()
		w.Insert(term.Tuple{term.NewInt(0)})
	},
	func(st storage.Store) {
		e, _ := st.Get(name("edge"), 2)
		e.Delete(tup(1, 2))
		e.Delete(tup(3, 4))
		st.Ensure(name("node"), 1).Insert(term.Tuple{term.NewString("z")})
	},
}

// runFaultWorkload executes the workload in dir, committing each step,
// and returns the dump after every statement boundary (index 0 = empty
// store) plus the final log bytes.
func runFaultWorkload(t *testing.T, dir string) (prefixes []string, walBytes []byte) {
	t.Helper()
	st := newStore()
	log, err := Open(dir, st, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	st.SetJournal(rec)
	prefixes = append(prefixes, dump(t, st))
	for i, step := range faultWorkload {
		step(st)
		if err := log.Commit(rec.Take()); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		d := dump(t, st)
		if d == prefixes[len(prefixes)-1] {
			t.Fatalf("step %d did not change visible state; workload steps must be distinguishable", i)
		}
		prefixes = append(prefixes, d)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err = os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return prefixes, walBytes
}

// prefixIndex locates got among the statement-boundary prefix states,
// or -1 if the recovered state is torn.
func prefixIndex(prefixes []string, got string) int {
	for i, p := range prefixes {
		if p == got {
			return i
		}
	}
	return -1
}

// recoverTruncated opens a fresh directory whose log is data and returns
// the recovered store's dump.
func recoverTruncated(t *testing.T, data []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st := newStore()
	log, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatalf("recovery must not fail on a torn tail: %v", err)
	}
	defer log.Close()
	return dump(t, st)
}

// TestKillAtEveryOffset is the core acceptance test: crash the writer at
// every byte boundary of the log and require recovery to land on a
// statement-boundary prefix, monotone in the crash offset, reaching the
// full state at the final offset.
func TestKillAtEveryOffset(t *testing.T) {
	prefixes, wal := runFaultWorkload(t, t.TempDir())
	last := 0
	for cut := 0; cut <= len(wal); cut++ {
		got := recoverTruncated(t, wal[:cut])
		idx := prefixIndex(prefixes, got)
		if idx < 0 {
			t.Fatalf("crash at offset %d/%d recovered a torn state:\n%q", cut, len(wal), got)
		}
		if idx < last {
			t.Fatalf("crash at offset %d recovered prefix %d after offset %d had already reached %d (recovery must be monotone)",
				cut, idx, cut-1, last)
		}
		last = idx
	}
	if last != len(prefixes)-1 {
		t.Fatalf("crash at the final offset recovered prefix %d, want the full state %d", last, len(prefixes)-1)
	}
}

// TestBitFlipRecoversToPrefix corrupts a single byte past the header at
// every offset; the CRC must catch it and recovery must fall back to a
// sealed prefix rather than apply damaged records.
func TestBitFlipRecoversToPrefix(t *testing.T) {
	prefixes, wal := runFaultWorkload(t, t.TempDir())
	for off := len(walMagic); off < len(wal); off++ {
		mut := append([]byte(nil), wal...)
		mut[off] ^= 0x40
		got := recoverTruncated(t, mut)
		if prefixIndex(prefixes, got) < 0 {
			t.Fatalf("bit flip at offset %d recovered a torn state:\n%q", off, got)
		}
	}
}

// TestReopenAfterCrashAcceptsAppends proves a recovered log is live: new
// commits after crash recovery are themselves durable.
func TestReopenAfterCrashAcceptsAppends(t *testing.T) {
	_, wal := runFaultWorkload(t, t.TempDir())
	// Crash in the middle of the log.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName(1)), wal[:len(wal)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st := newStore()
	log, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	st.SetJournal(rec)
	st.Ensure(name("post"), 1).Insert(tup(42))
	if err := log.Commit(rec.Take()); err != nil {
		t.Fatal(err)
	}
	want := dump(t, st)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := newStore()
	log2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if got := dump(t, st2); got != want {
		t.Errorf("append-after-recovery lost:\ngot  %q\nwant %q", got, want)
	}
}

// checkpointedDir runs the workload and a checkpoint, returning the
// directory, the pre-checkpoint (= checkpointed) state dump, and the
// snapshot bytes that the checkpoint wrote.
func checkpointedDir(t *testing.T, extra bool) (dir, state string, snap []byte) {
	t.Helper()
	dir = t.TempDir()
	st := newStore()
	log, err := Open(dir, st, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	st.SetJournal(rec)
	for _, step := range faultWorkload {
		step(st)
		if err := log.Commit(rec.Take()); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	if extra {
		st.Ensure(name("after"), 1).Insert(tup(7))
		if err := log.Commit(rec.Take()); err != nil {
			t.Fatal(err)
		}
	}
	state = dump(t, st)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err = os.ReadFile(filepath.Join(dir, snapName(2)))
	if err != nil {
		t.Fatal(err)
	}
	return dir, state, snap
}

// TestCheckpointCrashPhases simulates a crash at each phase of the
// checkpoint protocol and requires recovery to converge either to the
// pre-checkpoint state (snapshot not yet durable) or the checkpointed
// state (snapshot durable) — never anything else.
func TestCheckpointCrashPhases(t *testing.T) {
	_, state, snap := checkpointedDir(t, false)

	// Reconstruct the pre-checkpoint log bytes by re-running the workload.
	preDir := t.TempDir()
	prefixes, walBytes := runFaultWorkload(t, preDir)
	full := prefixes[len(prefixes)-1]
	if full != state {
		t.Fatal("workload is not deterministic; harness broken")
	}

	// Phase 1: crash while writing the snapshot temp file, at every
	// truncation point. The old generation is intact; recovery must land
	// on the full pre-checkpoint state.
	for _, cut := range []int{0, 1, len(snap) / 2, len(snap) - 1, len(snap)} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName(1)), walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapName(2)+".tmp"), snap[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st := newStore()
		log, err := Open(dir, st, Options{})
		if err != nil {
			t.Fatalf("tmp cut %d: %v", cut, err)
		}
		if got := dump(t, st); got != state {
			t.Errorf("tmp cut %d: recovered %q, want pre-checkpoint state", cut, got)
		}
		log.Close()
		if _, err := os.Stat(filepath.Join(dir, snapName(2)+".tmp")); !os.IsNotExist(err) {
			t.Errorf("tmp cut %d: leftover temp file must be removed", cut)
		}
	}

	// Phase 2: snapshot renamed durable, crash before the new segment
	// exists. Recovery starts generation 2 from the snapshot.
	{
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName(1)), walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapName(2)), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		st := newStore()
		log, err := Open(dir, st, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := dump(t, st); got != state {
			t.Errorf("post-rename crash: recovered %q, want checkpointed state", got)
		}
		log.Close()
		if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
			t.Error("post-rename crash: stale wal-1 must be removed after recovery")
		}
	}

	// Phase 3: new segment exists (possibly with a torn header), old
	// generation not yet removed.
	for _, hdr := range []int{0, len(walMagic) / 2, len(walMagic)} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName(1)), walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapName(1)), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapName(2)), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName(2)), walMagic[:hdr], 0o644); err != nil {
			t.Fatal(err)
		}
		st := newStore()
		log, err := Open(dir, st, Options{})
		if err != nil {
			t.Fatalf("header cut %d: %v", hdr, err)
		}
		if got := dump(t, st); got != state {
			t.Errorf("header cut %d: recovered %q, want checkpointed state", hdr, got)
		}
		log.Close()
		for _, stale := range []string{walName(1), snapName(1)} {
			if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
				t.Errorf("header cut %d: stale %s must be removed after recovery", hdr, stale)
			}
		}
	}
}

// TestCheckpointThenAppendsRecover covers the completed-checkpoint path
// with post-checkpoint commits in the new segment.
func TestCheckpointThenAppendsRecover(t *testing.T) {
	dir, state, _ := checkpointedDir(t, true)
	st := newStore()
	log, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if got := dump(t, st); got != state {
		t.Errorf("recovered %q, want checkpointed state plus post-checkpoint commits %q", got, state)
	}
}

// TestVerifyClassifiesDamage checks the offline verifier's taxonomy on a
// real log: a clean log reports nothing, a truncated tail is a benign
// torn-tail finding (crash semantics — recovery handles it), and a
// flipped bit inside a sealed frame is non-benign silent corruption
// named as a wal-frame artifact.
func TestVerifyClassifiesDamage(t *testing.T) {
	_, wal := runFaultWorkload(t, t.TempDir())

	write := func(data []byte) string {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	clean, err := Verify(write(wal))
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Fatalf("clean log has findings: %v", clean)
	}

	// Missing directory: nothing durable, nothing to report.
	none, err := Verify(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || len(none) != 0 {
		t.Fatalf("missing dir: %v, %v", none, err)
	}

	// Torn tail: cut mid-frame. Benign — a crash artifact, not rot.
	torn, err := Verify(write(wal[:len(wal)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) == 0 {
		t.Fatal("torn tail not reported")
	}
	for _, f := range torn {
		if !f.Benign {
			t.Fatalf("torn tail classified as serious: %v", f)
		}
	}
	if storage.CountSerious(torn) != 0 {
		t.Fatalf("CountSerious(%v) != 0", torn)
	}

	// A flipped bit in a sealed mid-file frame is silent corruption:
	// non-benign, named wal-frame.
	mut := append([]byte(nil), wal...)
	mut[len(walMagic)+10] ^= 0x10
	rot, err := Verify(write(mut))
	if err != nil {
		t.Fatal(err)
	}
	var serious bool
	for _, f := range rot {
		if f.Artifact == "wal-frame" && !f.Benign {
			serious = true
		}
	}
	if !serious {
		t.Fatalf("mid-file rot not reported as a serious wal-frame finding: %v", rot)
	}
}
