package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
)

// Snapshots reuse the EDB image encoding of storage.Save (relation names
// and tuples in term encoding, sorted for determinism), sealed in a
// CRC-checked envelope so a damaged checkpoint is detected rather than
// half-loaded:
//
//	magic | len(u64le) | crc32(u32le over payload) | payload(EDB image)

var snapMagic = []byte("GLUENAIL-SNAP1\n")

// encodeSnapshot serializes every relation of store into a sealed
// snapshot image.
func encodeSnapshot(store storage.Store) ([]byte, error) {
	var body bytes.Buffer
	if err := storage.Save(&body, store); err != nil {
		return nil, err
	}
	payload := body.Bytes()
	out := make([]byte, 0, len(snapMagic)+12+len(payload))
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...), nil
}

// WriteSnapshot atomically writes a sealed snapshot of store to path:
// temp file, fsync, rename. The caller fsyncs the directory.
func WriteSnapshot(path string, store storage.Store) error {
	return writeSnapshotFS(fsio.OS, path, store)
}

func writeSnapshotFS(fsys fsio.FS, path string, store storage.Store) error {
	data, err := encodeSnapshot(store)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return storage.IOFault("checkpoint", tmp, err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fsys.Remove(tmp)
		return storage.IOFault("checkpoint", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return storage.IOFault("checkpoint", path, err)
	}
	return nil
}

// ReadSnapshot verifies and loads the snapshot at path into store.
func ReadSnapshot(path string, store storage.Store) error {
	return readSnapshotFS(fsio.OS, path, store)
}

func readSnapshotFS(fsys fsio.FS, path string, store storage.Store) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return err
	}
	if err := verifySnapshot(path, data); err != nil {
		return err
	}
	head := len(snapMagic) + 12
	return storage.Load(bytes.NewReader(data[head:]), store)
}

// verifySnapshot checks the envelope of a snapshot image, returning a
// typed CorruptError naming the artifact on any mismatch.
func verifySnapshot(path string, data []byte) error {
	head := len(snapMagic) + 12
	if len(data) < head || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return &storage.CorruptError{Artifact: "snapshot", Path: path, Offset: 0,
			Detail: "not a Glue-Nail snapshot"}
	}
	plen := binary.LittleEndian.Uint64(data[len(snapMagic):])
	sum := binary.LittleEndian.Uint32(data[len(snapMagic)+8:])
	payload := data[head:]
	if uint64(len(payload)) != plen {
		return &storage.CorruptError{Artifact: "snapshot", Path: path, Offset: int64(head),
			Detail: "payload length does not match header"}
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return &storage.CorruptError{Artifact: "snapshot", Path: path, Offset: int64(head),
			Detail: "payload checksum mismatch"}
	}
	return nil
}
