package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
)

// Verify walks the durable directory's snapshot and log files checking
// every seal — snapshot envelope CRC, WAL frame CRCs — without applying
// anything. It reports one Finding per damaged region. A torn tail
// (explainable by a crash; the next Open truncates it) is reported as
// benign; a sealed frame whose checksum fails is not, because the commit
// protocol writes each batch in one call and never leaves a
// complete-length, bad-CRC record behind.
func Verify(dir string) ([]storage.Finding, error) {
	return VerifyFS(fsio.OS, dir)
}

// VerifyFS is Verify over an explicit filesystem.
func VerifyFS(fsys fsio.FS, dir string) ([]storage.Finding, error) {
	snaps, wals, _, err := scanDir(fsys, dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var findings []storage.Finding
	for _, s := range snaps {
		path := filepath.Join(dir, snapName(s))
		data, err := fsys.ReadFile(path)
		if err != nil {
			findings = append(findings, storage.Finding{
				Artifact: "snapshot", Path: path, Offset: -1,
				Detail: fmt.Sprintf("unreadable: %v", err),
			})
			continue
		}
		if err := verifySnapshot(path, data); err != nil {
			var ce *storage.CorruptError
			if errors.As(err, &ce) {
				findings = append(findings, storage.Finding{
					Artifact: ce.Artifact, Path: ce.Path, Offset: ce.Offset, Detail: ce.Detail,
				})
			} else {
				findings = append(findings, storage.Finding{
					Artifact: "snapshot", Path: path, Offset: -1, Detail: err.Error(),
				})
			}
		}
	}
	for _, w := range wals {
		path := filepath.Join(dir, walName(w))
		data, err := fsys.ReadFile(path)
		if err != nil {
			findings = append(findings, storage.Finding{
				Artifact: "wal-frame", Path: path, Offset: -1,
				Detail: fmt.Sprintf("unreadable: %v", err),
			})
			continue
		}
		findings = append(findings, verifySegment(path, data)...)
	}
	return findings, nil
}

// verifySegment checks one log segment's frames.
func verifySegment(path string, data []byte) []storage.Finding {
	var findings []storage.Finding
	if len(data) < len(walMagic) {
		// A header shorter than the magic is a torn initial write; Open
		// restarts the segment.
		findings = append(findings, storage.Finding{
			Artifact: "wal-header", Path: path, Offset: 0,
			Detail: "torn segment header", Benign: true,
		})
		return findings
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		findings = append(findings, storage.Finding{
			Artifact: "wal-header", Path: path, Offset: 0,
			Detail: "bad segment magic",
		})
		return findings
	}
	off := len(walMagic)
	for off < len(data) {
		_, _, n, ok := decodeRecord(data[off:])
		if ok {
			off += n
			continue
		}
		// Invalid region. Decide torn tail vs. rot: a complete-length
		// record whose CRC fails cannot be a crash artifact (commit
		// batches are single writes), so it is corruption; anything the
		// buffer cuts short is a tail the next Open truncates.
		findings = append(findings, classifyBadFrame(path, data, off))
		return findings
	}
	return findings
}

func classifyBadFrame(path string, data []byte, off int) storage.Finding {
	b := data[off:]
	const header = 9
	if len(b) >= header {
		plen := binary.LittleEndian.Uint32(b[1:5])
		sum := binary.LittleEndian.Uint32(b[5:9])
		if plen <= maxRecordLen && len(b) >= header+int(plen) {
			crc := crc32.NewIEEE()
			crc.Write(b[:1])
			crc.Write(b[header : header+int(plen)])
			if crc.Sum32() != sum {
				return storage.Finding{
					Artifact: "wal-frame", Path: path, Offset: int64(off),
					Detail: "frame checksum mismatch",
				}
			}
		}
	}
	return storage.Finding{
		Artifact: "wal-frame", Path: path, Offset: int64(off),
		Detail: "torn or corrupt tail", Benign: true,
	}
}
