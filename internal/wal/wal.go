// Package wal is the durability subsystem for the EDB: an append-only,
// CRC32-checksummed write-ahead log of committed deltas plus snapshot
// checkpoints. The paper's tailored back end is strictly main-memory (§6:
// "data must fit in main memory"); this package keeps that execution
// model while making the EDB survive crashes.
//
// A durable directory holds at most one generation of files at a time:
//
//	snap-%08d.gns  checkpoint: every EDB relation, CRC-sealed
//	wal-%08d.gnw   log of deltas committed since that snapshot
//
// The log is a sequence of framed records, each
//
//	kind(u8) | len(u32le) | crc32(u32le over kind+payload) | payload
//
// Delta records (insert/delete tuple batches, relation create/clear)
// carry the relation name in term encoding; a commit record seals all
// deltas since the previous commit into one atomic batch, written with a
// single write call at a top-level statement boundary. Recovery loads
// the newest snapshot, replays only sealed batches, and truncates any
// torn or corrupt tail, so a crash at any byte recovers to a
// statement-boundary prefix of the committed history. States that cannot
// be explained by a crash of this protocol (a corrupt snapshot, a log
// newer than every snapshot) are refused with actionable errors instead
// of guessed at.
//
// Fsync policy trades durability window for throughput: every commit
// (FsyncAlways), group-commit batches of bytes/commits (FsyncBatch, the
// default), or never (FsyncNever — the OS decides; Close still syncs).
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gluenail/internal/storage"
	"gluenail/internal/storage/fsio"
	"gluenail/internal/term"
)

// OpKind identifies a logged EDB delta.
type OpKind uint8

const (
	// OpInsert adds a batch of tuples to a relation.
	OpInsert OpKind = 1
	// OpDelete removes a batch of tuples from a relation.
	OpDelete OpKind = 2
	// OpCreate creates an (empty) relation.
	OpCreate OpKind = 3
	// OpClear empties a relation.
	OpClear OpKind = 4
	// opCommit seals the deltas since the previous commit record.
	opCommit OpKind = 5
)

// Op is one logged delta: a tuple batch for OpInsert/OpDelete, bare
// relation identity for OpCreate/OpClear.
type Op struct {
	Kind   OpKind
	Name   term.Value
	Arity  int
	Tuples []term.Tuple
}

// FsyncMode selects when committed log records are forced to disk.
type FsyncMode uint8

const (
	// FsyncBatch syncs once a group-commit batch of bytes or commits has
	// accumulated (and always on Close/Checkpoint): the default. A crash
	// loses at most the unsynced batch, never consistency.
	FsyncBatch FsyncMode = iota
	// FsyncAlways syncs after every commit.
	FsyncAlways
	// FsyncNever leaves flushing to the OS; Close still syncs.
	FsyncNever
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncBatch:
		return "batch"
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "none"
	}
	return fmt.Sprintf("FsyncMode(%d)", uint8(m))
}

// Defaults for Options zero values.
const (
	DefaultBatchBytes      = 256 << 10
	DefaultBatchCommits    = 64
	DefaultCheckpointBytes = 8 << 20
)

// Options tunes a Log; zero values select the documented defaults.
type Options struct {
	// Fsync is the durability mode (default FsyncBatch).
	Fsync FsyncMode
	// BatchBytes is the group-commit byte threshold for FsyncBatch.
	BatchBytes int
	// BatchCommits is the group-commit commit-count threshold for
	// FsyncBatch.
	BatchCommits int
	// CheckpointBytes is the log size at which ShouldCheckpoint reports
	// true; negative disables size-triggered checkpoints.
	CheckpointBytes int64
	// FS routes the log's file I/O; nil selects the real filesystem
	// (fsio.OS). Tests swap in a fault-injecting implementation.
	FS fsio.FS
}

func (o Options) batchBytes() int {
	if o.BatchBytes > 0 {
		return o.BatchBytes
	}
	return DefaultBatchBytes
}

func (o Options) batchCommits() int {
	if o.BatchCommits > 0 {
		return o.BatchCommits
	}
	return DefaultBatchCommits
}

func (o Options) checkpointBytes() int64 {
	if o.CheckpointBytes != 0 {
		return o.CheckpointBytes
	}
	return DefaultCheckpointBytes
}

func (o Options) fs() fsio.FS {
	if o.FS != nil {
		return o.FS
	}
	return fsio.OS
}

var walMagic = []byte("GLUENAIL-WAL1\n")

// errNotWAL reports a log file whose header is not ours (and is too long
// to be a torn header write).
var errNotWAL = errors.New("wal: file is not a Glue-Nail write-ahead log")

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log is closed")

// maxRecordLen bounds a single record so a corrupt length field cannot
// drive a huge allocation during recovery.
const maxRecordLen = 1 << 30

func walName(seq uint64) string { return fmt.Sprintf("wal-%08d.gnw", seq) }

func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.gns", seq) }

// Log is an open write-ahead log positioned to append committed deltas.
// Methods are safe for concurrent use, though the executor serializes
// commits at statement boundaries anyway.
type Log struct {
	dir  string
	opts Options
	fsys fsio.FS

	mu              sync.Mutex
	f               fsio.File
	seq             uint64
	size            int64
	unsyncedBytes   int64
	unsyncedCommits int
	buf             []byte
}

// Open recovers the durable EDB state under dir into store (newest valid
// snapshot plus the sealed log tail, truncating any torn suffix) and
// returns a Log positioned to append new commits. The store should be
// empty and must not have a journal attached yet — replayed deltas must
// not be re-journaled.
func Open(dir string, store storage.Store, opts Options) (*Log, error) {
	fsys := opts.fs()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, storage.IOFault("wal-open", dir, err)
	}
	snaps, wals, tmps, err := scanDir(fsys, dir)
	if err != nil {
		return nil, storage.IOFault("wal-open", dir, err)
	}
	// Temp files are leftovers of an interrupted checkpoint: discard.
	for _, p := range tmps {
		_ = fsys.Remove(p)
	}
	var base uint64
	if len(snaps) > 0 {
		base = snaps[len(snaps)-1]
	}
	// A log segment newer than every snapshot cannot result from a crash
	// of this protocol (segment N is created only after snapshot N is
	// durable) — except for the very first segment, which has no
	// snapshot. Refuse to guess.
	for _, w := range wals {
		if w > base && !(base == 0 && w == 1) {
			return nil, fmt.Errorf("wal: %s exists but %s is missing; the directory is not a state this recovery protocol can produce — restore the snapshot or remove the stray log segment",
				walName(w), snapName(w))
		}
	}
	seq := base
	if seq == 0 {
		seq = 1
	}
	if base > 0 {
		path := filepath.Join(dir, snapName(base))
		if err := readSnapshotFS(fsys, path, store); err != nil {
			return nil, fmt.Errorf("wal: loading snapshot %s: %w; the newest snapshot is unreadable and recovery refuses to silently fall back — restore the file, or remove it together with %s to recover from the previous generation",
				path, err, walName(base))
		}
	}
	f, size, err := recoverSegment(fsys, filepath.Join(dir, walName(seq)), store)
	if err != nil {
		return nil, err
	}
	// Recovery succeeded; stale files from before the last completed
	// checkpoint can go. Failures here are tolerable (the files are
	// ignored by recovery either way) — log and continue.
	for _, s := range snaps {
		if s < base {
			removeBestEffort(fsys, filepath.Join(dir, snapName(s)))
		}
	}
	for _, w := range wals {
		if w < seq {
			removeBestEffort(fsys, filepath.Join(dir, walName(w)))
		}
	}
	if err := fsys.SyncDir(dir); err != nil {
		_ = f.Close()
		return nil, storage.IOFault("wal-open", dir, err)
	}
	return &Log{dir: dir, opts: opts, fsys: fsys, f: f, seq: seq, size: size}, nil
}

// removeBestEffort deletes a stale generation file, logging (not
// propagating) failure: a leftover file never confuses recovery, so a
// permission error or EIO here must not abort an otherwise good open.
func removeBestEffort(fsys fsio.FS, path string) {
	if err := fsys.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		fmt.Fprintf(os.Stderr, "wal: sweeping stale %s: %v (skipped)\n", path, err)
	}
}

// recoverSegment replays the sealed prefix of the log segment at path
// into store, truncates any torn tail, and returns the segment opened
// for appending. A missing segment (or one whose header write was torn)
// is (re)created empty.
func recoverSegment(fsys fsio.FS, path string, store storage.Store) (fsio.File, int64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, 0, storage.IOFault("wal-recover", path, err)
	}
	valid := 0
	if err == nil {
		valid, err = replay(data, func(op Op) error { return apply(store, op) })
		if err != nil {
			if errors.Is(err, errNotWAL) {
				return nil, 0, &storage.CorruptError{
					Artifact: "wal-header", Path: path, Offset: 0,
					Detail: "file is not a Glue-Nail write-ahead log",
				}
			}
			return nil, 0, fmt.Errorf("wal: replaying %s: %w", path, err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, storage.IOFault("wal-recover", path, err)
	}
	if valid < len(walMagic) {
		// Fresh segment, or the initial header write itself was torn:
		// start the segment over.
		if err := f.Truncate(0); err == nil {
			_, err = f.Write(walMagic)
		}
		if err != nil {
			_ = f.Close()
			return nil, 0, storage.IOFault("wal-recover", path, err)
		}
		valid = len(walMagic)
	} else if valid < len(data) {
		// Torn or corrupt tail after the last sealed commit.
		if err := f.Truncate(int64(valid)); err != nil {
			_ = f.Close()
			return nil, 0, storage.IOFault("wal-recover", path, err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, 0, storage.IOFault("wal-recover", path, err)
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		_ = f.Close()
		return nil, 0, storage.IOFault("wal-recover", path, err)
	}
	return f, int64(valid), nil
}

// replay decodes records from data, invoking applyOp for every delta of
// every sealed batch, and returns the offset just past the last valid
// commit record. Deltas after the last commit record, torn records, and
// anything after a corrupt record are excluded. A file shorter than the
// header that is a prefix of it returns valid < len(walMagic), meaning
// the segment must be restarted.
func replay(data []byte, applyOp func(Op) error) (valid int, err error) {
	if len(data) < len(walMagic) {
		if !bytes.Equal(data, walMagic[:len(data)]) {
			return 0, errNotWAL
		}
		return 0, nil
	}
	if !bytes.Equal(data[:len(walMagic)], walMagic) {
		return 0, errNotWAL
	}
	off := len(walMagic)
	valid = off
	var pending []Op
	for off < len(data) {
		kind, payload, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		off += n
		if kind == opCommit {
			for _, op := range pending {
				if err := applyOp(op); err != nil {
					return valid, err
				}
			}
			pending = pending[:0]
			valid = off
			continue
		}
		op, ok := decodeOp(kind, payload)
		if !ok {
			break
		}
		pending = append(pending, op)
	}
	return valid, nil
}

// apply installs one replayed delta into the store.
func apply(st storage.Store, op Op) error {
	switch op.Kind {
	case OpCreate:
		st.Ensure(op.Name, op.Arity)
	case OpClear:
		st.Ensure(op.Name, op.Arity).Clear()
	case OpInsert:
		rel := st.Ensure(op.Name, op.Arity)
		for _, t := range op.Tuples {
			rel.Insert(t)
		}
	case OpDelete:
		rel := st.Ensure(op.Name, op.Arity)
		for _, t := range op.Tuples {
			rel.Delete(t)
		}
	default:
		return fmt.Errorf("replaying op kind %d", op.Kind)
	}
	return nil
}

// appendRecord frames one record onto dst.
func appendRecord(dst []byte, kind OpKind, payload []byte) []byte {
	dst = append(dst, byte(kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{byte(kind)})
	crc.Write(payload)
	dst = binary.LittleEndian.AppendUint32(dst, crc.Sum32())
	return append(dst, payload...)
}

// decodeRecord parses the record at the head of b, verifying its
// checksum. n is the record's full framed length.
func decodeRecord(b []byte) (kind OpKind, payload []byte, n int, ok bool) {
	const header = 9 // kind + len + crc
	if len(b) < header {
		return 0, nil, 0, false
	}
	kind = OpKind(b[0])
	plen := binary.LittleEndian.Uint32(b[1:5])
	sum := binary.LittleEndian.Uint32(b[5:9])
	if plen > maxRecordLen || len(b) < header+int(plen) {
		return 0, nil, 0, false
	}
	payload = b[header : header+int(plen)]
	crc := crc32.NewIEEE()
	crc.Write(b[:1])
	crc.Write(payload)
	if crc.Sum32() != sum {
		return 0, nil, 0, false
	}
	return kind, payload, header + int(plen), true
}

// appendOp frames one delta record onto dst.
func appendOp(dst []byte, op Op) []byte {
	var payload []byte
	payload = term.AppendValue(payload, op.Name)
	payload = binary.AppendUvarint(payload, uint64(op.Arity))
	switch op.Kind {
	case OpInsert, OpDelete:
		payload = binary.AppendUvarint(payload, uint64(len(op.Tuples)))
		for _, t := range op.Tuples {
			payload = binary.AppendUvarint(payload, uint64(len(t)))
			for i := range t {
				payload = term.AppendValue(payload, t[i])
			}
		}
	}
	return appendRecord(dst, op.Kind, payload)
}

// decodeOp parses a delta record payload; every byte must be consumed.
func decodeOp(kind OpKind, payload []byte) (Op, bool) {
	if kind < OpInsert || kind > OpClear {
		return Op{}, false
	}
	br := bufio.NewReader(bytes.NewReader(payload))
	name, err := term.ReadValue(br)
	if err != nil {
		return Op{}, false
	}
	arity, err := binary.ReadUvarint(br)
	if err != nil || arity > 255 {
		return Op{}, false
	}
	op := Op{Kind: kind, Name: name, Arity: int(arity)}
	if kind == OpInsert || kind == OpDelete {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > uint64(len(payload)) {
			return Op{}, false
		}
		op.Tuples = make([]term.Tuple, 0, n)
		for i := uint64(0); i < n; i++ {
			t, err := term.ReadTuple(br)
			if err != nil || len(t) != op.Arity {
				return Op{}, false
			}
			op.Tuples = append(op.Tuples, t)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return Op{}, false
	}
	return op, true
}

// Commit appends ops as one atomic batch sealed by a commit record. The
// batch is encoded into a single write call, so a crash mid-write leaves
// an unsealed (and therefore ignored) tail. An empty batch is a no-op.
func (l *Log) Commit(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	buf := l.buf[:0]
	for _, op := range ops {
		if op.Kind < OpInsert || op.Kind > OpClear {
			return fmt.Errorf("wal: committing invalid op kind %d", op.Kind)
		}
		buf = appendOp(buf, op)
	}
	buf = appendRecord(buf, opCommit, nil)
	l.buf = buf
	if _, err := l.f.Write(buf); err != nil {
		return storage.IOFault("wal-commit", walName(l.seq), err)
	}
	l.size += int64(len(buf))
	l.unsyncedBytes += int64(len(buf))
	l.unsyncedCommits++
	switch l.opts.Fsync {
	case FsyncAlways:
		return l.syncLocked()
	case FsyncBatch:
		if l.unsyncedBytes >= int64(l.opts.batchBytes()) ||
			l.unsyncedCommits >= l.opts.batchCommits() {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) syncLocked() error {
	if l.unsyncedBytes == 0 && l.unsyncedCommits == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return storage.IOFault("wal-sync", walName(l.seq), err)
	}
	l.unsyncedBytes = 0
	l.unsyncedCommits = 0
	return nil
}

// Sync forces all committed records to disk regardless of fsync mode.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	return l.syncLocked()
}

// Size returns the current log segment size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// ShouldCheckpoint reports whether the log has grown past the checkpoint
// threshold.
func (l *Log) ShouldCheckpoint() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.opts.checkpointBytes()
	return t > 0 && l.size >= t
}

// Checkpoint makes the store's state durable outside the log and rotates
// it: snapshot N+1 is made durable first, segment N+1 is created, then
// generation N is removed. A crash at any point leaves a directory Open
// recovers from. The caller must guarantee store is not mutated
// concurrently (statement boundaries satisfy this).
//
// A store that keeps its own durable base (storage.BaseFlusher — the disk
// engine's runs and manifest) flushes that base instead of serializing
// into the snapshot image: the image written is empty, and recovery
// composes by loading the engine's base before replaying the (now empty)
// image plus the log tail on top — storage.Load is additive, so the empty
// image is a no-op and replay is idempotent against the flushed base.
func (l *Log) Checkpoint(store storage.Store) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	snapStore := store
	if bf, ok := store.(storage.BaseFlusher); ok {
		if err := bf.FlushBase(); err != nil {
			return err
		}
		snapStore = storage.NewMemStore(storage.IndexAdaptive)
	}
	next := l.seq + 1
	if err := writeSnapshotFS(l.fsys, filepath.Join(l.dir, snapName(next)), snapStore); err != nil {
		return err
	}
	if err := l.fsys.SyncDir(l.dir); err != nil {
		return storage.IOFault("checkpoint", l.dir, err)
	}
	npath := filepath.Join(l.dir, walName(next))
	nf, err := l.fsys.OpenFile(npath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return storage.IOFault("checkpoint", npath, err)
	}
	if _, err := nf.Write(walMagic); err == nil {
		err = nf.Sync()
	}
	if err != nil {
		_ = nf.Close()
		return storage.IOFault("checkpoint", npath, err)
	}
	if err := l.fsys.SyncDir(l.dir); err != nil {
		_ = nf.Close()
		return storage.IOFault("checkpoint", l.dir, err)
	}
	old, oldSeq := l.f, l.seq
	l.f, l.seq, l.size = nf, next, int64(len(walMagic))
	l.unsyncedBytes, l.unsyncedCommits = 0, 0
	// The retiring segment was synced above and is about to be deleted;
	// a close failure can no longer lose data.
	_ = old.Close()
	removeBestEffort(l.fsys, filepath.Join(l.dir, walName(oldSeq)))
	removeBestEffort(l.fsys, filepath.Join(l.dir, snapName(oldSeq)))
	return nil
}

// Close syncs and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = storage.IOFault("wal-close", walName(l.seq), cerr)
	}
	l.f = nil
	return err
}

// scanDir inventories the durable directory: sorted snapshot and log
// generation numbers, plus paths of leftover temp files.
func scanDir(fsys fsio.FS, dir string) (snaps, wals []uint64, tmps []string, err error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if len(name) > 4 && name[len(name)-4:] == ".tmp" {
			tmps = append(tmps, filepath.Join(dir, name))
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "snap-%d.gns", &seq); err == nil && name == snapName(seq) {
			snaps = append(snaps, seq)
			continue
		}
		if _, err := fmt.Sscanf(name, "wal-%d.gnw", &seq); err == nil && name == walName(seq) {
			wals = append(wals, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, tmps, nil
}
