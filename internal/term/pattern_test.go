package term

import (
	"testing"
	"testing/quick"
)

func TestMatchGround(t *testing.T) {
	regs := make([]Value, 4)
	if !Ground(NewInt(3)).Match(NewInt(3), regs) {
		t.Error("ground match failed")
	}
	if Ground(NewInt(3)).Match(NewInt(4), regs) {
		t.Error("ground mismatch succeeded")
	}
}

func TestMatchVarBindAndCompare(t *testing.T) {
	regs := make([]Value, 4)
	p := Var(0)
	if !p.Match(NewString("a"), regs) {
		t.Fatal("unbound var should match")
	}
	if !regs[0].Equal(NewString("a")) {
		t.Fatalf("var not bound: %v", regs[0])
	}
	if !p.Match(NewString("a"), regs) {
		t.Error("bound var should match same value")
	}
	if p.Match(NewString("b"), regs) {
		t.Error("bound var should reject different value")
	}
}

func TestMatchWild(t *testing.T) {
	regs := make([]Value, 1)
	if !Wild().Match(NewInt(7), regs) {
		t.Error("wildcard should always match")
	}
	if !regs[0].IsZero() {
		t.Error("wildcard must not bind registers")
	}
}

func TestMatchCompound(t *testing.T) {
	// Pattern f(X, g(X, 1)) against f(a, g(a, 1)) binds X=a; against
	// f(a, g(b, 1)) fails on the repeated variable.
	p := CompAtom("f", Var(0), CompAtom("g", Var(0), Ground(NewInt(1))))
	regs := make([]Value, 1)
	ok := p.Match(Atom("f", NewString("a"), Atom("g", NewString("a"), NewInt(1))), regs)
	if !ok || !regs[0].Equal(NewString("a")) {
		t.Fatalf("match failed, regs=%v", regs)
	}
	regs = make([]Value, 1)
	if p.Match(Atom("f", NewString("a"), Atom("g", NewString("b"), NewInt(1))), regs) {
		t.Error("repeated variable mismatch should fail")
	}
	regs = make([]Value, 1)
	if p.Match(NewInt(3), regs) {
		t.Error("compound pattern should not match atom")
	}
	if p.Match(Atom("f", NewInt(1)), regs) {
		t.Error("arity mismatch should fail")
	}
}

func TestMatchHiLogFunctorVar(t *testing.T) {
	// Pattern S(X) where S is a variable over predicate names (§5): the
	// functor position is a variable pattern.
	p := Comp(Var(0), Var(1))
	regs := make([]Value, 2)
	v := NewCompound(Atom("students", NewString("cs99")), NewString("wilson"))
	if !p.Match(v, regs) {
		t.Fatal("HiLog functor-variable match failed")
	}
	if !regs[0].Equal(Atom("students", NewString("cs99"))) {
		t.Errorf("functor bound to %v", regs[0])
	}
	if !regs[1].Equal(NewString("wilson")) {
		t.Errorf("arg bound to %v", regs[1])
	}
}

func TestBuild(t *testing.T) {
	regs := []Value{NewInt(5), NewString("a")}
	p := CompAtom("f", Var(0), Var(1), Ground(NewFloat(0.5)))
	v, err := p.Build(regs)
	if err != nil {
		t.Fatal(err)
	}
	want := Atom("f", NewInt(5), NewString("a"), NewFloat(0.5))
	if !v.Equal(want) {
		t.Errorf("Build = %v, want %v", v, want)
	}
	if _, err := Var(0).Build(make([]Value, 1)); err == nil {
		t.Error("Build with unbound register should fail")
	}
	if _, err := Wild().Build(nil); err == nil {
		t.Error("Build of wildcard should fail")
	}
	if _, err := CompAtom("f", Wild()).Build(nil); err == nil {
		t.Error("Build of compound containing wildcard should fail")
	}
	if _, err := Comp(Var(0), Ground(NewInt(1))).Build(make([]Value, 1)); err == nil {
		t.Error("Build with unbound functor register should fail")
	}
}

func TestIsGroundAndRegs(t *testing.T) {
	g := CompAtom("f", Ground(NewInt(1)))
	if !g.IsGround() {
		t.Error("ground pattern reported non-ground")
	}
	cases := []Pattern{
		Var(0),
		Wild(),
		CompAtom("f", Var(0)),
		Comp(Var(0), Ground(NewInt(1))),
	}
	for _, p := range cases {
		if p.IsGround() {
			t.Errorf("%v reported ground", p)
		}
	}
	p := CompAtom("f", Var(2), CompAtom("g", Var(0), Var(2)), Var(1))
	regs := p.Regs(nil)
	want := []int{2, 0, 1}
	if len(regs) != len(want) {
		t.Fatalf("Regs = %v, want %v", regs, want)
	}
	for i := range want {
		if regs[i] != want[i] {
			t.Fatalf("Regs = %v, want %v", regs, want)
		}
	}
}

func TestPatternString(t *testing.T) {
	p := CompAtom("f", Var(0), Wild(), Ground(NewInt(3)))
	if got := p.String(); got != "f($0,_,3)" {
		t.Errorf("String = %q", got)
	}
}

func TestQuickMatchBuildRoundTrip(t *testing.T) {
	// Property: for any ground value v, matching Var(0) binds it and Build
	// reproduces it exactly.
	f := func(v Value) bool {
		regs := make([]Value, 1)
		if !Var(0).Match(v, regs) {
			return false
		}
		got, err := Var(0).Build(regs)
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickGroundPatternMatchesSelf(t *testing.T) {
	f := func(v Value) bool {
		return Ground(v).Match(v, nil) && Ground(v).IsGround()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
