package term

import (
	"testing"
	"testing/quick"
)

func tup(vs ...Value) Tuple { return Tuple(vs) }

func TestTupleEqual(t *testing.T) {
	a := tup(NewInt(1), NewString("x"))
	b := tup(NewInt(1), NewString("x"))
	c := tup(NewInt(1), NewString("y"))
	d := tup(NewInt(1))
	if !a.Equal(b) {
		t.Error("equal tuples not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal tuples reported Equal")
	}
	if !Tuple(nil).Equal(Tuple{}) {
		t.Error("nil and empty tuple should be equal")
	}
}

func TestTupleCompare(t *testing.T) {
	a := tup(NewInt(1), NewInt(2))
	b := tup(NewInt(1), NewInt(3))
	c := tup(NewInt(1))
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("element compare wrong")
	}
	if c.Compare(a) != -1 || a.Compare(c) != 1 {
		t.Error("shorter tuple should order first")
	}
}

func TestTupleHashCols(t *testing.T) {
	a := tup(NewInt(1), NewString("x"), NewInt(9))
	b := tup(NewInt(1), NewString("y"), NewInt(9))
	const mask = 0b101 // columns 0 and 2
	if a.HashCols(mask) != b.HashCols(mask) {
		t.Error("HashCols should ignore unmasked columns")
	}
	if !a.EqualCols(b, mask) {
		t.Error("EqualCols should ignore unmasked columns")
	}
	if a.EqualCols(b, 0b111) {
		t.Error("EqualCols full mask should detect difference")
	}
	if a.EqualCols(tup(NewInt(1)), mask) {
		t.Error("EqualCols with different lengths should be false")
	}
}

func TestTupleClone(t *testing.T) {
	a := tup(NewInt(1), NewInt(2))
	b := a.Clone()
	b[0] = NewInt(99)
	if a[0].Int() != 1 {
		t.Error("Clone should not share backing array")
	}
}

func TestTupleString(t *testing.T) {
	got := tup(NewInt(1), NewString("hello world")).String()
	if got != "(1,'hello world')" {
		t.Errorf("String = %q", got)
	}
	if got := (Tuple{}).String(); got != "()" {
		t.Errorf("empty tuple String = %q", got)
	}
}

func TestQuickTupleHashEqual(t *testing.T) {
	f := func(a, b Value, c, d Value) bool {
		t1, t2 := tup(a, c), tup(b, d)
		if t1.Equal(t2) && t1.Hash() != t2.Hash() {
			return false
		}
		return t1.Equal(t2) == (t1.Compare(t2) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickHashColsConsistent(t *testing.T) {
	// Property: if tuples agree on masked columns, masked hashes agree.
	f := func(a, b, c Value) bool {
		t1 := tup(a, b)
		t2 := tup(a, c)
		return t1.HashCols(0b01) == t2.HashCols(0b01) && t1.EqualCols(t2, 0b01)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
