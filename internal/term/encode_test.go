package term

import (
	"bufio"
	"bytes"
	"testing"
	"testing/quick"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		NewInt(0), NewInt(-1), NewInt(1 << 40),
		NewFloat(0), NewFloat(-2.75),
		NewString(""), NewString("hello"), NewString("with 'quote'"),
		Atom("f"),
		Atom("f", NewInt(1), NewString("x")),
		NewCompound(Atom("students", NewString("cs99")), NewString("wilson")),
	}
	for _, v := range vals {
		var buf bytes.Buffer
		if err := WriteValue(&buf, v); err != nil {
			t.Fatalf("WriteValue(%v): %v", v, err)
		}
		got, err := ReadValue(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("ReadValue(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip: got %v, want %v", got, v)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tuples := []Tuple{
		{},
		{NewInt(1)},
		{NewInt(1), NewString("a"), NewFloat(0.5)},
	}
	var buf bytes.Buffer
	for _, tp := range tuples {
		if err := WriteTuple(&buf, tp); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for _, want := range tuples {
		got, err := ReadTuple(r)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Atom("f", NewInt(1))
	b := Atom("f", NewInt(1))
	if Key(a) != Key(b) {
		t.Error("equal values must have equal keys")
	}
	if Key(NewInt(1)) == Key(NewFloat(1)) {
		t.Error("int and float keys must differ")
	}
	if Key(NewString("f")) == Key(Atom("f")) {
		t.Error("atom and 0-ary compound keys must differ")
	}
}

func TestReadValueErrors(t *testing.T) {
	bad := [][]byte{
		{},                                  // empty
		{99},                                // bad tag
		{tagStr, 5, 'a'},                    // truncated string
		{tagFloat, 1, 2},                    // truncated float
		{tagCompound, tagInt, 2, 1, tagInt}, // truncated compound arg... may vary
	}
	for _, b := range bad {
		if _, err := ReadValue(bufio.NewReader(bytes.NewReader(b))); err == nil {
			t.Errorf("ReadValue(%v) should fail", b)
		}
	}
}

func TestAppendValuePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic encoding invalid value")
		}
	}()
	AppendValue(nil, Value{})
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(v Value) bool {
		var buf bytes.Buffer
		if err := WriteValue(&buf, v); err != nil {
			return false
		}
		got, err := ReadValue(bufio.NewReader(&buf))
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	// Property: Key(a)==Key(b) iff a.Equal(b).
	f := func(a, b Value) bool {
		return (Key(a) == Key(b)) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickNonTagDisjoint(t *testing.T) {
	// Property: no value encoding begins with NonTag, so markers using it
	// (e.g. the executor's unbound-register dedup sentinel) never alias the
	// first byte of an encoded value.
	f := func(v Value) bool {
		enc := AppendValue(nil, v)
		return len(enc) > 0 && enc[0] != NonTag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
