package term

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Invalid: "invalid", Int: "int", Float: "float",
		Str: "string", Compound: "compound", Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	i := NewInt(-42)
	if i.Kind() != Int || i.Int() != -42 {
		t.Errorf("NewInt: got kind %v value %d", i.Kind(), i.Int())
	}
	f := NewFloat(2.5)
	if f.Kind() != Float || f.Float() != 2.5 {
		t.Errorf("NewFloat: got kind %v value %g", f.Kind(), f.Float())
	}
	s := NewString("hello world")
	if s.Kind() != Str || s.Str() != "hello world" {
		t.Errorf("NewString: got kind %v value %q", s.Kind(), s.Str())
	}
	c := Atom("f", NewInt(1), NewString("x"))
	if c.Kind() != Compound || c.NumArgs() != 2 {
		t.Fatalf("Atom: got kind %v arity %d", c.Kind(), c.NumArgs())
	}
	if !c.Functor().Equal(NewString("f")) {
		t.Errorf("Functor = %v, want f", c.Functor())
	}
	if !c.Arg(0).Equal(NewInt(1)) || !c.Arg(1).Equal(NewString("x")) {
		t.Errorf("Args = %v,%v", c.Arg(0), c.Arg(1))
	}
	if len(c.Args()) != 2 {
		t.Errorf("Args() len = %d", len(c.Args()))
	}
	if i.Args() != nil || i.NumArgs() != 0 {
		t.Errorf("non-compound Args should be empty")
	}
}

func TestHiLogFunctor(t *testing.T) {
	// students(cs99)(wilson): the functor is itself a compound term (§5).
	inner := Atom("students", NewString("cs99"))
	v := NewCompound(inner, NewString("wilson"))
	if !v.Functor().Equal(inner) {
		t.Errorf("HiLog functor = %v, want %v", v.Functor(), inner)
	}
	if got := v.String(); got != "students(cs99)(wilson)" {
		t.Errorf("String = %q", got)
	}
}

func TestIsZero(t *testing.T) {
	var z Value
	if !z.IsZero() {
		t.Error("zero Value should be IsZero")
	}
	if NewInt(0).IsZero() {
		t.Error("NewInt(0) should not be IsZero")
	}
}

func TestNum(t *testing.T) {
	if f, ok := NewInt(3).Num(); !ok || f != 3 {
		t.Errorf("Num(3) = %g,%v", f, ok)
	}
	if f, ok := NewFloat(1.5).Num(); !ok || f != 1.5 {
		t.Errorf("Num(1.5) = %g,%v", f, ok)
	}
	if _, ok := NewString("x").Num(); ok {
		t.Error("string should not be numeric")
	}
}

func TestAccessorPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("Int on Str", func() { NewString("x").Int() })
	expectPanic("Float on Int", func() { NewInt(1).Float() })
	expectPanic("Str on Int", func() { NewInt(1).Str() })
	expectPanic("Functor on Int", func() { NewInt(1).Functor() })
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewInt(2), false},
		{NewInt(1), NewFloat(1), false}, // ints and floats are distinct
		{NewFloat(1.5), NewFloat(1.5), true},
		{NewString("a"), NewString("a"), true},
		{NewString("a"), NewString("b"), false},
		{Atom("f", NewInt(1)), Atom("f", NewInt(1)), true},
		{Atom("f", NewInt(1)), Atom("g", NewInt(1)), false},
		{Atom("f", NewInt(1)), Atom("f", NewInt(2)), false},
		{Atom("f", NewInt(1)), Atom("f", NewInt(1), NewInt(2)), false},
		{Value{}, Value{}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal(%v,%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestCompareOrder(t *testing.T) {
	// Ascending chain across and within kinds.
	chain := []Value{
		NewInt(-5), NewInt(0), NewInt(7),
		NewFloat(-1.5), NewFloat(3.25),
		NewString(""), NewString("abc"), NewString("abd"),
		Atom("f"), Atom("a", NewInt(1)), Atom("a", NewInt(2)),
		Atom("b", NewInt(1)),
		Atom("a", NewInt(1), NewInt(1)),
	}
	for i := range chain {
		for j := range chain {
			got := chain[i].Compare(chain[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", chain[i], chain[j], got, want)
			}
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewFloat(2), "2.0"},
		{NewString("abc"), "abc"},
		{NewString("ab_c9"), "ab_c9"},
		{NewString("Abc"), "'Abc'"},
		{NewString("hello world"), "'hello world'"},
		{NewString(""), "''"},
		{NewString("it's"), `'it\'s'`},
		{Atom("f", NewInt(1), NewString("x")), "f(1,x)"},
		{Value{}, "<unbound>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

// randomValue builds a random ground value of bounded depth.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(4)
	if depth <= 0 && k == 3 {
		k = r.Intn(3)
	}
	switch k {
	case 0:
		return NewInt(int64(r.Intn(21) - 10))
	case 1:
		return NewFloat(float64(r.Intn(9)) / 2)
	case 2:
		letters := []string{"a", "bc", "def", "Xy", "hello world", ""}
		return NewString(letters[r.Intn(len(letters))])
	default:
		n := r.Intn(3)
		args := make([]Value, n)
		for i := range args {
			args[i] = randomValue(r, depth-1)
		}
		fn := randomValue(r, 0)
		return NewCompound(fn, args...)
	}
}

// Generate implements quick.Generator so Values can be used directly in
// property-based tests.
func (Value) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(randomValue(r, 3))
}

func TestQuickHashEqualConsistent(t *testing.T) {
	// Property: Equal values have equal hashes, and Equal agrees with
	// Compare==0.
	f := func(a, b Value) bool {
		if a.Equal(b) && a.Hash() != b.Hash() {
			return false
		}
		return a.Equal(b) == (a.Compare(b) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSelfEquality(t *testing.T) {
	f := func(a Value) bool {
		return a.Equal(a) && a.Compare(a) == 0 && a.Hash() == a.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b Value) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(a, b, c Value) bool {
		// Order the three values and check the chain is consistent.
		vs := []Value{a, b, c}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if vs[i].Compare(vs[j]) > 0 {
					vs[i], vs[j] = vs[j], vs[i]
				}
			}
		}
		return vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0 &&
			vs[0].Compare(vs[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashDistribution(t *testing.T) {
	// Sanity: hashes of distinct small ints should not all collide.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[NewInt(int64(i)).Hash()] = true
	}
	if len(seen) < 990 {
		t.Errorf("excessive hash collisions: %d distinct hashes of 1000", len(seen))
	}
}
