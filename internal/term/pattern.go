package term

import (
	"fmt"
	"strings"
)

// PatKind identifies the shape of a Pattern node.
type PatKind uint8

const (
	// PatGround matches a fixed ground value.
	PatGround PatKind = iota
	// PatVar matches anything, binding (or comparing against) a register.
	PatVar
	// PatWild matches anything and binds nothing ("_").
	PatWild
	// PatComp matches a compound value structurally; the functor itself is
	// a sub-pattern (HiLog), so students(ID) can appear as a pattern functor.
	PatComp
)

// Pattern is a term that may contain register-indexed variables. Patterns
// are the compiled form of source-level terms: the compiler allocates one
// register per distinct statement variable.
type Pattern struct {
	Kind PatKind
	Val  Value     // PatGround
	Reg  int       // PatVar: register index
	Fn   *Pattern  // PatComp
	Args []Pattern // PatComp
}

// Ground returns a pattern matching exactly v.
func Ground(v Value) Pattern { return Pattern{Kind: PatGround, Val: v} }

// Var returns a pattern binding register reg.
func Var(reg int) Pattern { return Pattern{Kind: PatVar, Reg: reg} }

// Wild returns the anonymous-variable pattern.
func Wild() Pattern { return Pattern{Kind: PatWild} }

// Comp returns a compound pattern with the given functor and argument
// patterns.
func Comp(fn Pattern, args ...Pattern) Pattern {
	f := fn
	return Pattern{Kind: PatComp, Fn: &f, Args: args}
}

// CompAtom returns a compound pattern with a fixed atom functor.
func CompAtom(name string, args ...Pattern) Pattern {
	return Comp(Ground(NewString(name)), args...)
}

// Match matches p against ground value v. Registers already bound (non-zero
// in regs) are compared; unbound registers are bound on success. On failure
// regs may be left partially extended; callers must restore any registers
// they care about (the executor trails bindings per tuple).
func (p Pattern) Match(v Value, regs []Value) bool {
	switch p.Kind {
	case PatGround:
		return p.Val.Equal(v)
	case PatWild:
		return true
	case PatVar:
		if regs[p.Reg].IsZero() {
			regs[p.Reg] = v
			return true
		}
		return regs[p.Reg].Equal(v)
	case PatComp:
		if v.kind != Compound || len(v.args) != len(p.Args) {
			return false
		}
		if !p.Fn.Match(*v.fn, regs) {
			return false
		}
		for i := range p.Args {
			if !p.Args[i].Match(v.args[i], regs) {
				return false
			}
		}
		return true
	}
	return false
}

// Build constructs the ground value denoted by p under the given register
// bindings. It fails if p contains an unbound register or a wildcard.
func (p Pattern) Build(regs []Value) (Value, error) {
	switch p.Kind {
	case PatGround:
		return p.Val, nil
	case PatWild:
		return Value{}, fmt.Errorf("term: cannot build value from wildcard")
	case PatVar:
		v := regs[p.Reg]
		if v.IsZero() {
			return Value{}, fmt.Errorf("term: register %d unbound", p.Reg)
		}
		return v, nil
	case PatComp:
		fn, err := p.Fn.Build(regs)
		if err != nil {
			return Value{}, err
		}
		args := make([]Value, len(p.Args))
		for i := range p.Args {
			a, err := p.Args[i].Build(regs)
			if err != nil {
				return Value{}, err
			}
			args[i] = a
		}
		return NewCompound(fn, args...), nil
	}
	return Value{}, fmt.Errorf("term: bad pattern kind %d", p.Kind)
}

// IsGround reports whether the pattern contains no variables or wildcards.
func (p Pattern) IsGround() bool {
	switch p.Kind {
	case PatGround:
		return true
	case PatVar, PatWild:
		return false
	case PatComp:
		if !p.Fn.IsGround() {
			return false
		}
		for i := range p.Args {
			if !p.Args[i].IsGround() {
				return false
			}
		}
		return true
	}
	return false
}

// Regs appends the registers mentioned by the pattern to dst, in first-use
// order, without duplicates relative to dst's existing contents.
func (p Pattern) Regs(dst []int) []int {
	switch p.Kind {
	case PatVar:
		for _, r := range dst {
			if r == p.Reg {
				return dst
			}
		}
		return append(dst, p.Reg)
	case PatComp:
		dst = p.Fn.Regs(dst)
		for i := range p.Args {
			dst = p.Args[i].Regs(dst)
		}
	}
	return dst
}

// String renders the pattern for diagnostics, showing registers as $n.
func (p Pattern) String() string {
	var sb strings.Builder
	p.appendTo(&sb)
	return sb.String()
}

func (p Pattern) appendTo(sb *strings.Builder) {
	switch p.Kind {
	case PatGround:
		p.Val.appendTo(sb)
	case PatVar:
		fmt.Fprintf(sb, "$%d", p.Reg)
	case PatWild:
		sb.WriteByte('_')
	case PatComp:
		p.Fn.appendTo(sb)
		sb.WriteByte('(')
		for i := range p.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			p.Args[i].appendTo(sb)
		}
		sb.WriteByte(')')
	}
}
