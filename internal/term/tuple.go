package term

import "strings"

// Tuple is an ordered list of ground values, the unit stored in relations.
type Tuple []Value

// Equal reports element-wise equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples by length, then lexicographically by element.
func (t Tuple) Compare(u Tuple) int {
	if d := len(t) - len(u); d != 0 {
		if d < 0 {
			return -1
		}
		return 1
	}
	for i := range t {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Hash returns a hash over all elements; equal tuples hash equal.
func (t Tuple) Hash() uint64 {
	h := uint64(fnvOffset)
	h = hashUint64(h, uint64(len(t)))
	for i := range t {
		h = t[i].hashInto(h)
	}
	return h
}

// HashCols hashes only the elements selected by the column bitmask; used by
// hash indexes over column subsets.
func (t Tuple) HashCols(mask uint32) uint64 {
	h := uint64(fnvOffset)
	for i := range t {
		if mask&(1<<uint(i)) != 0 {
			h = t[i].hashInto(h)
		}
	}
	return h
}

// EqualCols reports equality restricted to the columns in mask.
func (t Tuple) EqualCols(u Tuple, mask uint32) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if mask&(1<<uint(i)) != 0 && !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple with a fresh backing array.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// String renders the tuple as "(v1,v2,...)".
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteByte(',')
		}
		v.appendTo(&sb)
	}
	sb.WriteByte(')')
	return sb.String()
}
